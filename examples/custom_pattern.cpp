// Pattern-aware synthesis: NetSmith accepts any traffic matrix. This example
// optimizes a topology for the gem5 "shuffle" permutation (paper SV-E) and
// shows that it beats a uniform-optimized topology on shuffle traffic while
// losing a little on uniform traffic — the specialization trade-off.
//
// Build & run:  ./build/examples/custom_pattern [seconds=8]

#include <cstdio>
#include <cstdlib>

#include "core/netsmith.hpp"
#include "core/objective.hpp"
#include "topo/metrics.hpp"

using namespace netsmith;

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 8.0;
  const auto lay = topo::Layout::noi_4x5();
  const int n = lay.n();
  const auto shuffle = core::shuffle_pattern(n);

  core::SynthesisConfig base;
  base.layout = lay;
  base.link_class = topo::LinkClass::kMedium;
  base.time_limit_s = seconds;
  base.seed = 99;

  // Uniform-optimized topology.
  auto uni_cfg = base;
  uni_cfg.objective = core::Objective::kLatOp;
  const auto uni = core::synthesize(uni_cfg);

  // Shuffle-optimized topology.
  auto shuf_cfg = base;
  shuf_cfg.objective = core::Objective::kPattern;
  shuf_cfg.pattern = shuffle;
  const auto shuf = core::synthesize(shuf_cfg);

  auto report = [&](const char* name, const topo::DiGraph& g) {
    const auto dist = topo::apsp_bfs(g);
    std::printf("  %-18s avg hops (uniform) = %.3f   avg hops (shuffle) = %.3f\n",
                name, topo::average_hops(dist),
                topo::weighted_hops(dist, shuffle));
  };

  std::printf("Topology specialization on the 4x5 NoI (%.0fs each):\n\n",
              seconds);
  report("uniform-optimized", uni.graph);
  report("shuffle-optimized", shuf.graph);

  std::printf(
      "\nThe shuffle-optimized network dedicates its link budget to the\n"
      "permutation's source/destination pairs — the same effect as the\n"
      "paper's NS ShufOpt topologies in Fig. 10.\n");
  return 0;
}
