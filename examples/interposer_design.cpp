// Interposer design study: compare a NetSmith-generated topology against the
// expert-designed Folded Torus on the same 4x5 interposer, end to end —
// routing, deadlock-free VC allocation, and flit-level simulation.
//
// Build & run:  ./build/examples/interposer_design

#include <cstdio>
#include <iostream>

#include "core/netsmith.hpp"
#include "sim/sweep.hpp"
#include "topo/builders.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"
#include "topologies/registry.hpp"
#include "util/table.hpp"

using namespace netsmith;

namespace {

void study(const std::string& name, const topo::DiGraph& g,
           const topo::Layout& lay, double clock, util::TablePrinter* table) {
  const auto plan = core::plan_network(g, lay, core::RoutingPolicy::kMclb, 6);

  sim::TrafficConfig traffic;
  traffic.kind = sim::TrafficKind::kCoherence;
  sim::SimConfig cfg;
  cfg.warmup = 2000;
  cfg.measure = 6000;
  cfg.drain = 20000;

  const auto sweep = sim::sweep_to_saturation(plan, traffic, cfg, clock, 10);
  table->add_row({name, util::TablePrinter::fmt(topo::average_hops(g), 3),
                  std::to_string(topo::bisection_bandwidth(g)),
                  util::TablePrinter::fmt(plan.max_channel_load, 3),
                  std::to_string(plan.vc_layers),
                  util::TablePrinter::fmt(sweep.zero_load_latency_ns, 2),
                  util::TablePrinter::fmt(sweep.saturation_pkt_node_ns, 4)});
}

}  // namespace

int main() {
  const auto lay = topo::Layout::noi_4x5();
  const double clock = topo::clock_ghz(topo::LinkClass::kMedium);

  std::printf("Interposer design study: medium-class 4x5 NoI at %.1f GHz\n\n",
              clock);

  util::TablePrinter table({"topology", "avg hops", "bisBW", "max load",
                            "VC layers", "latency@0 (ns)", "sat (pkt/node/ns)"});

  study("FoldedTorus", topo::build_folded_torus(lay), lay, clock, &table);

  const auto cat = topologies::catalog(20);
  study("NS-LatOp", topologies::find(cat, "NS-LatOp-medium-20").graph, lay,
        clock, &table);
  study("NS-SCOp", topologies::find(cat, "NS-SCOp-medium-20").graph, lay,
        clock, &table);

  table.print(std::cout);
  std::printf(
      "\nNS topologies trade regularity for measurably lower latency and a\n"
      "higher saturation point; deadlock freedom is preserved by layered VC\n"
      "allocation (see the VC-layers column).\n");
  return 0;
}
