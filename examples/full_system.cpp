// Full-system example: a 64-core, 4-chiplet system over a 4x5 NoI (the
// paper's Table IV configuration). Runs a memory-bound PARSEC-like workload
// over two interposer topologies and reports the modeled speedup.
//
// Build & run:  ./build/examples/full_system

#include <cstdio>
#include <iostream>

#include "core/netsmith.hpp"
#include "system/workload.hpp"
#include "topo/builders.hpp"
#include "topologies/registry.hpp"
#include "util/table.hpp"

using namespace netsmith;

int main() {
  const auto lay = topo::Layout::noi_4x5();

  const auto mesh_sys = system::build_chiplet_system(topo::build_mesh(lay), lay);
  const auto ns_graph =
      topologies::find(topologies::catalog(20), "NS-LatOp-medium-20").graph;
  const auto ns_sys = system::build_chiplet_system(ns_graph, lay);

  std::printf("Full-system: %d routers (%d NoI + %d cores), %zu MCs\n\n",
              mesh_sys.graph.num_nodes(), mesh_sys.noi_n, mesh_sys.num_cores,
              mesh_sys.mc_routers.size());

  const auto mesh_plan = core::plan_network(
      mesh_sys.graph, lay, core::RoutingPolicy::kMclb, 8, 7, /*paths=*/12);
  const auto ns_plan = core::plan_network(
      ns_sys.graph, lay, core::RoutingPolicy::kMclb, 8, 7, /*paths=*/12);

  sim::SimConfig sc;
  sc.num_vcs = 8;
  sc.warmup = 1500;
  sc.measure = 5000;
  sc.drain = 20000;

  const system::PerfModel model;
  util::TablePrinter table(
      {"benchmark", "MPKI", "lat mesh (cyc)", "lat NS (cyc)", "speedup"});

  for (const auto& bench : system::parsec_benchmarks()) {
    const auto mesh_r = system::run_workload(mesh_sys, mesh_plan, bench, model, sc);
    const auto ns_r = system::run_workload(ns_sys, ns_plan, bench, model, sc);
    table.add_row({bench.name, util::TablePrinter::fmt(bench.mpki, 2),
                   util::TablePrinter::fmt(mesh_r.avg_packet_latency_cycles, 1),
                   util::TablePrinter::fmt(ns_r.avg_packet_latency_cycles, 1),
                   util::TablePrinter::fmt(mesh_r.cpi / ns_r.cpi, 4)});
  }
  table.print(std::cout);
  std::printf(
      "\nSpeedups track L2 MPKI: network-insensitive benchmarks barely move,\n"
      "memory-bound ones inherit the packet-latency reduction (paper Fig. 8).\n");
  return 0;
}
