// Full-system example: a 64-core, 4-chiplet system over a 4x5 NoI (the
// paper's Table IV configuration). Runs a memory-bound PARSEC-like workload
// over two interposer topologies and reports the modeled speedup.
//
// The chiplet systems and their routing plans come from the Study API
// (chiplet_system toggle in the spec); the PARSEC CPI model then replays
// its request/reply traffic over the cached plan artifacts.
//
// Build & run:  ./build/examples/full_system

#include <cstdio>
#include <iostream>

#include "api/study.hpp"
#include "system/workload.hpp"
#include "util/table.hpp"

using namespace netsmith;

int main() {
  // Mesh baseline vs the frozen NetSmith medium-class NoI, both wrapped
  // into the 84-router chiplet system and planned with 8 VCs / 12 paths.
  api::ExperimentSpec spec;
  spec.name = "full_system";
  api::TopologySpec mesh;
  mesh.source = api::TopologySource::kBaseline;
  mesh.baseline = "mesh:rows=4,cols=5";
  api::TopologySpec ns;
  ns.source = api::TopologySource::kCatalog;
  ns.catalog_routers = 20;
  ns.name = "NS-LatOp-medium-20";
  spec.topologies = {mesh, ns};
  spec.routing = "mclb";
  spec.num_vcs = 8;
  spec.max_paths_per_flow = 12;
  spec.chiplet_system = true;
  spec.analytic = false;
  spec.sweep.warmup = 1500;
  spec.sweep.measure = 5000;
  spec.sweep.drain = 20000;

  api::Study study(spec);
  study.run();

  const auto& mesh_art = study.plan_for(/*topology_ref=*/0);
  const auto& ns_art = study.plan_for(/*topology_ref=*/1);
  const auto& sys = mesh_art.system;
  std::printf("Full-system: %d routers (%d NoI + %d cores), %zu MCs\n\n",
              sys.graph.num_nodes(), sys.noi_n, sys.num_cores,
              sys.mc_routers.size());

  const sim::SimConfig sc = api::make_sim_config(spec);
  const system::PerfModel model;
  util::TablePrinter table(
      {"benchmark", "MPKI", "lat mesh (cyc)", "lat NS (cyc)", "speedup"});

  for (const auto& bench : system::parsec_benchmarks()) {
    const auto mesh_r = system::run_workload(mesh_art.system, mesh_art.plan,
                                             bench, model, sc);
    const auto ns_r =
        system::run_workload(ns_art.system, ns_art.plan, bench, model, sc);
    table.add_row({bench.name, util::TablePrinter::fmt(bench.mpki, 2),
                   util::TablePrinter::fmt(mesh_r.avg_packet_latency_cycles, 1),
                   util::TablePrinter::fmt(ns_r.avg_packet_latency_cycles, 1),
                   util::TablePrinter::fmt(mesh_r.cpi / ns_r.cpi, 4)});
  }
  table.print(std::cout);
  std::printf(
      "\nSpeedups track L2 MPKI: network-insensitive benchmarks barely move,\n"
      "memory-bound ones inherit the packet-latency reduction (paper Fig. 8).\n");
  return 0;
}
