// Quickstart: discover a network-on-interposer topology with NetSmith and
// inspect its analytic metrics.
//
// Build & run:  ./build/examples/quickstart [seconds=5]

#include <cstdio>
#include <cstdlib>

#include "core/netsmith.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"

using namespace netsmith;

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 5.0;

  // 1. Describe the problem: a 4x5 interposer router grid, radix-4 routers,
  //    medium link-length budget (wires may span up to 2 grid hops).
  core::SynthesisConfig cfg;
  cfg.layout = topo::Layout::noi_4x5();
  cfg.link_class = topo::LinkClass::kMedium;
  cfg.radix = 4;
  cfg.objective = core::Objective::kLatOp;  // minimize average hop count
  cfg.time_limit_s = seconds;
  cfg.seed = 2024;

  // 2. Synthesize.
  std::printf("Synthesizing a latency-optimized 4x5 NoI (%.1fs budget)...\n",
              seconds);
  const auto result = core::synthesize(cfg);

  // 3. Inspect.
  const auto& g = result.graph;
  std::printf("\nDiscovered topology (%d routers, %.0f full-duplex links):\n",
              g.num_nodes(), g.duplex_links());
  std::printf("  average hops      : %.3f (analytic lower bound %.3f)\n",
              topo::average_hops(g), result.bound);
  std::printf("  diameter          : %d\n", topo::diameter(g));
  std::printf("  bisection BW      : %d links\n", topo::bisection_bandwidth(g));
  std::printf("  sparsest cut BW   : %.4f\n", topo::sparsest_cut(g).bandwidth);

  // 4. Make it deployable: MCLB routing tables + deadlock-free VC map.
  const auto plan = core::plan_network(g, cfg.layout,
                                       core::RoutingPolicy::kMclb, 6);
  std::printf("\nRouting plan:\n");
  std::printf("  max channel load  : %.4f (normalized)\n", plan.max_channel_load);
  std::printf("  VC layers needed  : %d (of 6 VCs)\n", plan.vc_layers);

  std::printf("\nAdjacency (serialized): %s\n", g.to_string().c_str());
  return 0;
}
