// Quickstart: describe an experiment declaratively, run it through the
// Study API, and inspect the structured Report.
//
// The same spec can be written as JSON and executed with the CLI:
//   ./build/netsmith_run my_spec.json --out report.json
//
// Build & run:  ./build/examples/quickstart [seconds=5]

#include <cstdio>
#include <cstdlib>

#include "api/study.hpp"

using namespace netsmith;

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 5.0;

  // 1. Describe the experiment: synthesize a latency-optimized 4x5
  //    interposer NoI (radix-4 routers, medium link-length budget), then
  //    route it with MCLB and report analytic metrics.
  api::ExperimentSpec spec;
  spec.name = "quickstart";
  api::TopologySpec synth;
  synth.source = api::TopologySource::kSynthesize;
  synth.rows = 4;
  synth.cols = 5;
  synth.link_class = "medium";
  synth.radix = 4;
  synth.objectives = {"latop"};  // minimize average hop count
  synth.time_limit_s = seconds;
  synth.synth_seed = 2024;
  spec.topologies = {synth};
  spec.analytic = true;

  // 2. Run. (api::serialize(spec) would give the equivalent JSON document
  //    for the netsmith_run CLI.)
  std::printf("Synthesizing a latency-optimized 4x5 NoI (%.1fs budget)...\n",
              seconds);
  const api::Report report = api::run_experiment(spec);

  // 3. Inspect the structured report.
  const auto& t = report.topologies.front();
  const auto& plan = report.plans.front();
  std::printf("\nDiscovered topology (%d routers, %.0f full-duplex links):\n",
              t.routers, t.duplex_links);
  std::printf("  average hops      : %.3f (analytic lower bound %.3f)\n",
              t.avg_hops, t.bound);
  std::printf("  diameter          : %d\n", t.diameter);
  std::printf("  bisection BW      : %d links\n", t.bisection_bw);
  std::printf("  cut bound         : %.4f pkt/node/cycle\n", t.cut_bound);
  std::printf("\nRouting plan (%s, %d VCs, seed %llu):\n", plan.policy.c_str(),
              plan.num_vcs, static_cast<unsigned long long>(plan.seed));
  std::printf("  max channel load  : %.4f (normalized)\n",
              plan.max_channel_load);
  std::printf("  VC layers needed  : %d\n", plan.vc_layers);

  std::printf("\nAdjacency (serialized): %s\n", t.adjacency.c_str());

  // 4. The full report (spec + provenance + rows) serializes to JSON.
  std::printf("\nReport is %zu bytes of schema-versioned JSON (schema %d).\n",
              api::report_to_json(report).size(),
              api::report_schema_version(report));
  return 0;
}
