// Parser-hardening fuzz for the declarative experiment spec: dozens of
// truncated and mutated variants of a known-good document must all be
// rejected with a clean std::invalid_argument whose message names the spec
// layer (actionable, not a crash, not a foreign exception type).

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "api/spec.hpp"

namespace netsmith::api {
namespace {

// A full-featured valid spec (schema v2 with a faults block) used as the
// mutation baseline. Kept inline so the test is hermetic.
const char* const kGoodSpec = R"({
  "schema_version": 2,
  "name": "fuzz",
  "topologies": [
    {"source": "baseline", "baseline": "mesh:rows=3,cols=4"},
    {
      "source": "synthesize",
      "name": "synth",
      "rows": 2,
      "cols": 4,
      "link_class": "small",
      "objectives": ["latop"],
      "restarts": 1,
      "max_moves": 100,
      "synth_seed": 7
    }
  ],
  "routing": "auto",
  "num_vcs": 6,
  "seeds": [7],
  "analytic": true,
  "traffic": [
    {"kind": "coherence", "ctrl_flits": 1, "data_flits": 9, "data_fraction": 0.5}
  ],
  "sweep": {"points": 4, "warmup": 300, "measure": 800, "drain": 3000},
  "power": {"enabled": true, "flits_per_node_cycle": 0.25},
  "faults": [
    {
      "name": "cut",
      "mode": "targeted",
      "k": 1,
      "fail_at": 100,
      "recover_at": 900,
      "lossy": false,
      "repair": true
    },
    {
      "mode": "explicit",
      "events": [{"cycle": 10, "kind": "link_down", "a": 0, "b": 1}]
    }
  ]
})";

void expect_rejected(const std::string& text, const std::string& label) {
  try {
    parse_spec(text);
    FAIL() << label << ": malformed spec was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_FALSE(msg.empty()) << label;
    // Actionable: the message names the offending layer ("spec: ..." or,
    // for fault-scenario fields, "faults: ...").
    EXPECT_TRUE(msg.find("spec") != std::string::npos ||
                msg.find("faults") != std::string::npos)
        << label << ": message lacks a layer prefix: " << msg;
  } catch (const std::exception& e) {
    FAIL() << label << ": wrong exception type (" << typeid(e).name()
           << "): " << e.what();
  }
}

// Single-occurrence textual mutation; asserts the needle exists so edits to
// kGoodSpec cannot silently turn a mutation into a no-op.
std::string replaced(const std::string& from, const std::string& to) {
  const std::string base = kGoodSpec;
  const auto pos = base.find(from);
  EXPECT_NE(pos, std::string::npos) << "mutation needle missing: " << from;
  std::string out = base;
  out.replace(pos, from.size(), to);
  return out;
}

TEST(SpecFuzz, BaselineDocumentIsValid) {
  const ExperimentSpec spec = parse_spec(kGoodSpec);
  EXPECT_EQ(spec.name, "fuzz");
  EXPECT_EQ(spec.faults.size(), 2u);
  EXPECT_EQ(parse_spec(serialize(spec)), spec);
}

TEST(SpecFuzz, TruncationsAreRejectedCleanly) {
  const std::string base = kGoodSpec;
  int cases = 0;
  const std::size_t step = base.size() / 40 + 1;
  for (std::size_t len = 1; len < base.size(); len += step) {
    // A prefix that only lost trailing whitespace is still valid JSON.
    bool lost_content = false;
    for (std::size_t i = len; i < base.size(); ++i)
      if (!std::isspace(static_cast<unsigned char>(base[i]))) {
        lost_content = true;
        break;
      }
    if (!lost_content) continue;
    expect_rejected(base.substr(0, len),
                    "truncated to " + std::to_string(len) + " bytes");
    ++cases;
  }
  EXPECT_GE(cases, 25);
  expect_rejected("", "empty document");
  expect_rejected("{", "lone brace");
  expect_rejected("null", "JSON null");
  expect_rejected("[]", "array document");
}

struct Mutation {
  const char* label;
  const char* from;
  const char* to;
};

class SpecMutation : public ::testing::TestWithParam<Mutation> {};

TEST_P(SpecMutation, RejectedCleanly) {
  const auto& m = GetParam();
  expect_rejected(replaced(m.from, m.to), m.label);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SpecMutation,
    ::testing::Values(
        // Schema stamp.
        Mutation{"schema_future", "\"schema_version\": 2",
                 "\"schema_version\": 99"},
        Mutation{"schema_negative", "\"schema_version\": 2",
                 "\"schema_version\": -1"},
        Mutation{"schema_string", "\"schema_version\": 2",
                 "\"schema_version\": \"two\""},
        // Top level.
        Mutation{"name_number", "\"name\": \"fuzz\"", "\"name\": 42"},
        Mutation{"unknown_top_key", "\"routing\": \"auto\"",
                 "\"bogus\": 1, \"routing\": \"auto\""},
        Mutation{"routing_unknown", "\"routing\": \"auto\"",
                 "\"routing\": \"fastest\""},
        Mutation{"num_vcs_zero", "\"num_vcs\": 6", "\"num_vcs\": 0"},
        Mutation{"threads_negative", "\"num_vcs\": 6",
                 "\"num_vcs\": 6, \"threads\": -2"},
        Mutation{"seeds_empty", "\"seeds\": [7]", "\"seeds\": []"},
        Mutation{"analytic_string", "\"analytic\": true",
                 "\"analytic\": \"yes\""},
        // Topologies.
        Mutation{"topologies_empty", "\"topologies\": [\n    {\"source\": "
                 "\"baseline\", \"baseline\": \"mesh:rows=3,cols=4\"},",
                 "\"topologies\": [],\n  \"unused\": [\n    {\"source\": "
                 "\"baseline\", \"baseline\": \"mesh:rows=3,cols=4\"},"},
        Mutation{"source_unknown", "\"source\": \"baseline\"",
                 "\"source\": \"warp\""},
        Mutation{"objectives_empty", "\"objectives\": [\"latop\"]",
                 "\"objectives\": []"},
        Mutation{"restarts_zero", "\"restarts\": 1", "\"restarts\": 0"},
        Mutation{"rows_string", "\"rows\": 2", "\"rows\": \"two\""},
        Mutation{"max_moves_negative", "\"max_moves\": 100,",
                 "\"max_moves\": -5,"},
        Mutation{"unknown_topology_key", "\"synth_seed\": 7",
                 "\"synth_seed\": 7, \"zap\": 1"},
        // Traffic.
        Mutation{"traffic_kind_unknown", "\"kind\": \"coherence\"",
                 "\"kind\": \"chaos\""},
        Mutation{"ctrl_flits_zero", "\"ctrl_flits\": 1", "\"ctrl_flits\": 0"},
        Mutation{"data_fraction_above_one", "\"data_fraction\": 0.5",
                 "\"data_fraction\": 1.5"},
        Mutation{"data_fraction_negative", "\"data_fraction\": 0.5",
                 "\"data_fraction\": -0.1"},
        // Sweep.
        Mutation{"points_zero", "\"points\": 4", "\"points\": 0"},
        Mutation{"measure_zero", "\"measure\": 800", "\"measure\": 0"},
        Mutation{"warmup_negative", "\"warmup\": 300", "\"warmup\": -1"},
        Mutation{"drain_negative", "\"drain\": 3000", "\"drain\": -2"},
        Mutation{"hop_delay_zero", "\"points\": 4",
                 "\"points\": 4, \"router_delay\": 0, \"link_delay\": 0"},
        Mutation{"buf_flits_zero", "\"points\": 4",
                 "\"points\": 4, \"buf_flits\": 0"},
        Mutation{"io_flits_zero", "\"points\": 4",
                 "\"points\": 4, \"io_flits_per_cycle\": 0"},
        Mutation{"unknown_sweep_key", "\"points\": 4",
                 "\"points\": 4, \"zap\": 2"},
        // Power.
        Mutation{"power_enabled_number", "\"enabled\": true", "\"enabled\": 1"},
        Mutation{"power_activity_string", "\"flits_per_node_cycle\": 0.25",
                 "\"flits_per_node_cycle\": \"lots\""},
        // Faults.
        Mutation{"fault_mode_unknown", "\"mode\": \"targeted\"",
                 "\"mode\": \"spooky\""},
        Mutation{"fault_k_negative", "\"k\": 1", "\"k\": -1"},
        Mutation{"fault_fail_at_negative", "\"fail_at\": 100",
                 "\"fail_at\": -3"},
        Mutation{"fault_recover_before_fail", "\"recover_at\": 900",
                 "\"recover_at\": 50"},
        Mutation{"fault_lossy_string", "\"lossy\": false", "\"lossy\": \"no\""},
        Mutation{"fault_mtbf_negative", "\"k\": 1",
                 "\"k\": 1, \"link_mtbf\": -1"},
        Mutation{"fault_unknown_key", "\"mode\": \"targeted\"",
                 "\"mode\": \"targeted\", \"zzz\": 1"},
        Mutation{"fault_event_kind_unknown", "\"kind\": \"link_down\"",
                 "\"kind\": \"melt\""},
        Mutation{"fault_event_cycle_negative", "\"cycle\": 10",
                 "\"cycle\": -1"},
        Mutation{"fault_link_event_missing_b", "\"a\": 0, \"b\": 1",
                 "\"a\": 0"},
        Mutation{"fault_explicit_without_events",
                 "\"events\": [{\"cycle\": 10, \"kind\": \"link_down\", "
                 "\"a\": 0, \"b\": 1}]",
                 "\"events\": []"},
        // Structural damage.
        Mutation{"seeds_trailing_comma", "\"seeds\": [7]", "\"seeds\": [7,]"},
        Mutation{"unbalanced_array", "\"seeds\": [7]", "\"seeds\": [7"},
        Mutation{"garbage_value", "\"seeds\": [7]", "\"seeds\": @@"}),
    [](const ::testing::TestParamInfo<Mutation>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace netsmith::api
