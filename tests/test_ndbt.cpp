#include "routing/ndbt.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"

namespace netsmith::routing {
namespace {

const topo::Layout kLay = topo::Layout::noi_4x5();

TEST(Ndbt, StraightPathsNeverDoubleBack) {
  // Monotone +x path.
  const Path p{kLay.id(0, 0), kLay.id(0, 1), kLay.id(0, 2)};
  EXPECT_FALSE(double_backs_x(p, kLay));
  EXPECT_EQ(x_direction_changes(p, kLay), 0);
}

TEST(Ndbt, VerticalMovesAreFree) {
  const Path p{kLay.id(0, 1), kLay.id(1, 1), kLay.id(2, 1), kLay.id(2, 2)};
  EXPECT_FALSE(double_backs_x(p, kLay));
}

TEST(Ndbt, DetectsDoubleBack) {
  // +x then -x.
  const Path p{kLay.id(0, 0), kLay.id(0, 1), kLay.id(0, 0)};
  EXPECT_TRUE(double_backs_x(p, kLay));
  EXPECT_EQ(x_direction_changes(p, kLay), 1);
}

TEST(Ndbt, DetectsDoubleBackAcrossVerticalSegment) {
  // +x, then vertical, then -x: still a double back.
  const Path p{kLay.id(0, 0), kLay.id(0, 1), kLay.id(1, 1), kLay.id(1, 0)};
  EXPECT_TRUE(double_backs_x(p, kLay));
}

TEST(Ndbt, CountsMultipleChanges) {
  const Path p{kLay.id(0, 0), kLay.id(0, 1), kLay.id(0, 0), kLay.id(0, 1)};
  EXPECT_EQ(x_direction_changes(p, kLay), 2);
}

TEST(NdbtFilter, MeshPathsAllLegal) {
  // XY-monotone shortest paths in a mesh never double back.
  const auto g = topo::build_mesh(kLay);
  const auto ps = enumerate_shortest_paths(g);
  const auto f = ndbt_filter(ps, kLay);
  EXPECT_EQ(f.flows_without_legal_path, 0);
  for (int s = 0; s < 20; ++s)
    for (int d = 0; d < 20; ++d) {
      if (s == d) continue;
      EXPECT_EQ(f.paths.at(s, d).size(), ps.at(s, d).size());
    }
}

TEST(NdbtFilter, RemovesIllegalKeepsLegal) {
  // Ring in a 1x4 line with a wraparound would force double backs; build a
  // small graph where one flow's only shortest paths double back.
  const topo::Layout lay{1, 4, 2.0};
  topo::DiGraph g(4);
  g.add_duplex(0, 1);
  g.add_duplex(1, 2);
  g.add_duplex(2, 3);
  const auto ps = enumerate_shortest_paths(g);
  const auto f = ndbt_filter(ps, lay);
  EXPECT_EQ(f.flows_without_legal_path, 0);
  EXPECT_EQ(f.paths.at(0, 3).size(), 1u);
}

TEST(NdbtFilter, FallbackKeepsNetworkRoutable) {
  // Star through a center column forces some flows to reverse X when the
  // only route dips backwards: construct 3 columns where 0->2 must pass
  // through column 0 again. Use a contrived graph: 0 at col1, 1 at col0,
  // 2 at col2, edges 0-1, 1-2 only (path 0,1,2 goes -x then +x).
  const topo::Layout lay{1, 3, 2.0};
  topo::DiGraph g(3);
  // node ids = columns; route from col1 to col2 via col0 requires edges:
  g.add_duplex(1, 0);
  g.add_duplex(0, 2);  // (2,0) span
  const auto ps = enumerate_shortest_paths(g);
  const auto f = ndbt_filter(ps, lay);
  // Flow 1 -> 2 has only the double-backing path; fallback must keep it.
  EXPECT_GE(f.flows_without_legal_path, 1);
  EXPECT_FALSE(f.paths.at(1, 2).empty());
}

TEST(NdbtFilter, PreservesFlowCoverage) {
  const auto g = topo::build_folded_torus(kLay);
  const auto ps = enumerate_shortest_paths(g);
  const auto f = ndbt_filter(ps, kLay);
  EXPECT_TRUE(f.paths.all_flows_covered());
}

}  // namespace
}  // namespace netsmith::routing
