#include "core/objective.hpp"

#include <gtest/gtest.h>

namespace netsmith::core {
namespace {

TEST(UniformPattern, AllToAllExceptSelf) {
  const auto w = uniform_pattern(5);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j)
      EXPECT_DOUBLE_EQ(w(i, j), i == j ? 0.0 : 1.0);
}

TEST(ShuffleDest, MatchesPaperFormula) {
  // dest = 2*src for src < n/2; (2*src + 1) mod n otherwise (paper SV-E).
  const int n = 20;
  EXPECT_EQ(shuffle_dest(0, n), 0);
  EXPECT_EQ(shuffle_dest(1, n), 2);
  EXPECT_EQ(shuffle_dest(9, n), 18);
  EXPECT_EQ(shuffle_dest(10, n), 1);
  EXPECT_EQ(shuffle_dest(19, n), 19);
}

TEST(ShufflePattern, OneDestinationPerSource) {
  const int n = 20;
  const auto w = shuffle_pattern(n);
  for (int s = 0; s < n; ++s) {
    int dests = 0;
    for (int d = 0; d < n; ++d)
      if (w(s, d) > 0) ++dests;
    // Sources mapping to themselves (0 and n-1) have no flow.
    const int expected = shuffle_dest(s, n) == s ? 0 : 1;
    EXPECT_EQ(dests, expected) << "src " << s;
  }
}

TEST(ShufflePattern, IsBitShufflePermutationish) {
  // All flows land on distinct destinations (except the fixed points).
  const int n = 20;
  const auto w = shuffle_pattern(n);
  std::vector<int> indeg(n, 0);
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d)
      if (w(s, d) > 0) ++indeg[d];
  for (int d = 0; d < n; ++d) EXPECT_LE(indeg[d], 2);
}

}  // namespace
}  // namespace netsmith::core
