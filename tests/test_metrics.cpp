#include "topo/metrics.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace netsmith::topo {
namespace {

DiGraph line3() {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  return g;
}

TEST(Bfs, SimpleLine) {
  const auto d = bfs_distances(line3(), 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 2);
}

TEST(Bfs, UnreachableMarked) {
  const auto d = bfs_distances(line3(), 2);  // directed: 2 reaches nothing
  EXPECT_EQ(d[2], 0);
  EXPECT_EQ(d[0], kUnreachable);
  EXPECT_EQ(d[1], kUnreachable);
}

TEST(Apsp, MeshAverageHops) {
  // 4x5 mesh average hops = 3.0 (sum of Manhattan distances / 380).
  const auto g = build_mesh(Layout::noi_4x5());
  EXPECT_NEAR(average_hops(g), 3.0, 1e-12);
  EXPECT_EQ(diameter(g), 7);  // (4,3) corner-to-corner
}

TEST(Apsp, FoldedTorusMatchesTable2) {
  const auto g = build_folded_torus(Layout::noi_4x5());
  EXPECT_NEAR(average_hops(g), 880.0 / 380.0, 1e-12);  // 2.3158 -> "2.32"
  EXPECT_EQ(diameter(g), 4);
}

TEST(Apsp, DirectedAsymmetry) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // directed ring
  const auto d = apsp_bfs(g);
  EXPECT_EQ(d(0, 2), 2);
  EXPECT_EQ(d(2, 0), 1);
  EXPECT_TRUE(strongly_connected(g));
}

TEST(Apsp, DisconnectedDetected) {
  DiGraph g(4);
  g.add_duplex(0, 1);
  g.add_duplex(2, 3);
  EXPECT_FALSE(strongly_connected(g));
  EXPECT_EQ(diameter(g), kUnreachable);
}

TEST(TotalHops, CountsOrderedPairs) {
  const auto d = apsp_bfs(build_mesh(Layout{1, 3, 2.0}));
  // Line of 3: distances 1+2+1+1+2+1 = 8.
  EXPECT_EQ(total_hops(d), 8);
  EXPECT_NEAR(average_hops(d), 8.0 / 6.0, 1e-12);
}

TEST(WeightedHops, UniformEqualsAverage) {
  const auto g = build_folded_torus(Layout::noi_4x5());
  const auto d = apsp_bfs(g);
  util::Matrix<double> w(20, 20, 1.0);
  for (int i = 0; i < 20; ++i) w(i, i) = 0.0;
  EXPECT_NEAR(weighted_hops(d, w), average_hops(d), 1e-12);
}

TEST(WeightedHops, SingleFlow) {
  const auto g = build_mesh(Layout{1, 4, 2.0});
  const auto d = apsp_bfs(g);
  util::Matrix<double> w(4, 4, 0.0);
  w(0, 3) = 5.0;
  EXPECT_NEAR(weighted_hops(d, w), 3.0, 1e-12);
}

// Property: Floyd-Warshall must agree with per-source BFS on random graphs.
class ApspAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ApspAgreement, BfsEqualsFloydWarshall) {
  util::Rng rng(1000 + GetParam());
  const Layout lay{4, 4, 2.0};
  const auto g = build_random(lay, LinkClass::kMedium, 3, rng);
  const auto a = apsp_bfs(g);
  const auto b = apsp_floyd_warshall(g);
  for (int i = 0; i < g.num_nodes(); ++i)
    for (int j = 0; j < g.num_nodes(); ++j) {
      const bool a_inf = a(i, j) >= kUnreachable;
      const bool b_inf = b(i, j) >= kUnreachable;
      ASSERT_EQ(a_inf, b_inf) << i << "->" << j;
      if (!a_inf) ASSERT_EQ(a(i, j), b(i, j)) << i << "->" << j;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ApspAgreement, ::testing::Range(0, 20));

}  // namespace
}  // namespace netsmith::topo
