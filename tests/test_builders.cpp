#include "topo/builders.hpp"

#include <gtest/gtest.h>

#include "topo/metrics.hpp"

namespace netsmith::topo {
namespace {

TEST(Mesh, DegreesAndLinks) {
  const auto lay = Layout::noi_4x5();
  const auto g = build_mesh(lay);
  EXPECT_TRUE(g.is_symmetric());
  // 4x5 mesh: 4*4 horizontal + 3*5 vertical = 31 duplex links.
  EXPECT_DOUBLE_EQ(g.duplex_links(), 31.0);
  // Corner degree 2, edge 3, interior 4.
  EXPECT_EQ(g.out_degree(lay.id(0, 0)), 2);
  EXPECT_EQ(g.out_degree(lay.id(0, 1)), 3);
  EXPECT_EQ(g.out_degree(lay.id(1, 1)), 4);
  EXPECT_TRUE(strongly_connected(g));
}

TEST(Mesh, RespectsSmallClass) {
  const auto lay = Layout::noi_4x5();
  EXPECT_TRUE(respects_link_class(build_mesh(lay), lay, LinkClass::kSmall));
}

TEST(Torus, UniformDegree4) {
  const auto g = build_torus(Layout::noi_4x5());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(g.out_degree(i), 4);
    EXPECT_EQ(g.in_degree(i), 4);
  }
  EXPECT_DOUBLE_EQ(g.duplex_links(), 40.0);
}

TEST(FoldedTorus, IsMediumClass) {
  // With the folded physical arrangement, torus wraparound wires span at
  // most 2 grid positions -> medium. Adjacency-wise the wraparound links
  // span cols-1 grid cells, so we verify the *metric* contract instead:
  const auto lay = Layout::noi_4x5();
  const auto g = build_folded_torus(lay);
  EXPECT_NEAR(average_hops(g), 2.3158, 1e-3);
  EXPECT_EQ(diameter(g), 4);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(RandomBuilder, RespectsConstraints) {
  const auto lay = Layout::noi_4x5();
  util::Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    const auto g = build_random(lay, LinkClass::kMedium, 4, rng);
    EXPECT_TRUE(respects_radix(g, 4));
    EXPECT_TRUE(respects_link_class(g, lay, LinkClass::kMedium));
  }
}

TEST(RandomBuilder, NearlySaturatesRadix) {
  const auto lay = Layout::noi_4x5();
  util::Rng rng(6);
  const auto g = build_random(lay, LinkClass::kLarge, 4, rng);
  // Greedy fill can jam a few edges short of the 80-directed-edge budget
  // (matching degree constraints), but must land close; the annealer's add
  // moves close the remainder during synthesis.
  EXPECT_GE(g.num_directed_edges(), 72);
  EXPECT_LE(g.num_directed_edges(), 80);
}

TEST(RandomSymmetric, SymmetricAndConstrained) {
  const auto lay = Layout::noi_4x5();
  util::Rng rng(7);
  for (int t = 0; t < 10; ++t) {
    const auto g = build_random_symmetric(lay, LinkClass::kMedium, 4, rng);
    EXPECT_TRUE(g.is_symmetric());
    EXPECT_TRUE(respects_radix(g, 4));
    EXPECT_TRUE(respects_link_class(g, lay, LinkClass::kMedium));
  }
}

TEST(RespectsRadix, DetectsViolation) {
  DiGraph g(5);
  for (int j = 1; j < 5; ++j) g.add_edge(0, j);
  EXPECT_TRUE(respects_radix(g, 4));
  EXPECT_FALSE(respects_radix(g, 3));
}

TEST(RespectsLinkClass, DetectsViolation) {
  const auto lay = Layout::noi_4x5();
  DiGraph g(20);
  g.add_edge(lay.id(0, 0), lay.id(0, 2));  // (2,0): medium
  EXPECT_FALSE(respects_link_class(g, lay, LinkClass::kSmall));
  EXPECT_TRUE(respects_link_class(g, lay, LinkClass::kMedium));
}

}  // namespace
}  // namespace netsmith::topo
