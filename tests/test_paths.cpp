#include "routing/paths.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topo/builders.hpp"
#include "topo/metrics.hpp"
#include "util/rng.hpp"

namespace netsmith::routing {
namespace {

TEST(PathEnum, LineGraphSinglePaths) {
  topo::DiGraph g(3);
  g.add_duplex(0, 1);
  g.add_duplex(1, 2);
  const auto ps = enumerate_shortest_paths(g);
  EXPECT_TRUE(ps.all_flows_covered());
  ASSERT_EQ(ps.at(0, 2).size(), 1u);
  EXPECT_EQ(ps.at(0, 2)[0], (Path{0, 1, 2}));
  EXPECT_EQ(ps.at(2, 0)[0], (Path{2, 1, 0}));
}

TEST(PathEnum, CountsAllShortestPathsInGrid) {
  // 2x2 mesh: two shortest paths between opposite corners.
  const topo::Layout lay{2, 2, 2.0};
  const auto g = topo::build_mesh(lay);
  const auto ps = enumerate_shortest_paths(g);
  EXPECT_EQ(ps.at(lay.id(0, 0), lay.id(1, 1)).size(), 2u);
}

TEST(PathEnum, MeshCornerToCornerCounts) {
  // 3x3 mesh corner to corner: C(4,2) = 6 shortest paths.
  const topo::Layout lay{3, 3, 2.0};
  const auto g = topo::build_mesh(lay);
  const auto ps = enumerate_shortest_paths(g);
  EXPECT_EQ(ps.at(lay.id(0, 0), lay.id(2, 2)).size(), 6u);
}

TEST(PathEnum, CapLimitsEnumeration) {
  const topo::Layout lay{3, 3, 2.0};
  const auto g = topo::build_mesh(lay);
  const auto ps = enumerate_shortest_paths(g, 3);
  EXPECT_EQ(ps.at(lay.id(0, 0), lay.id(2, 2)).size(), 3u);
}

TEST(PathEnum, PathsAreUniqueAndShortest) {
  util::Rng rng(17);
  const topo::Layout lay = topo::Layout::noi_4x5();
  const auto g = topo::build_random(lay, topo::LinkClass::kMedium, 4, rng);
  const auto dist = topo::apsp_bfs(g);
  const auto ps = enumerate_shortest_paths(g);
  for (int s = 0; s < 20; ++s)
    for (int d = 0; d < 20; ++d) {
      if (s == d) continue;
      std::set<Path> seen;
      for (const auto& p : ps.at(s, d)) {
        EXPECT_TRUE(is_shortest_path(g, dist, p));
        EXPECT_EQ(p.front(), s);
        EXPECT_EQ(p.back(), d);
        EXPECT_TRUE(seen.insert(p).second) << "duplicate path";
      }
    }
}

TEST(PathEnum, DisconnectedFlowHasNoPaths) {
  topo::DiGraph g(4);
  g.add_duplex(0, 1);
  g.add_duplex(2, 3);
  const auto ps = enumerate_shortest_paths(g);
  EXPECT_FALSE(ps.all_flows_covered());
  EXPECT_TRUE(ps.at(0, 3).empty());
  EXPECT_FALSE(ps.at(0, 1).empty());
}

TEST(PathEnum, DeterministicOrder) {
  const auto g = topo::build_mesh(topo::Layout{3, 3, 2.0});
  const auto a = enumerate_shortest_paths(g);
  const auto b = enumerate_shortest_paths(g);
  for (int s = 0; s < 9; ++s)
    for (int d = 0; d < 9; ++d)
      if (s != d) EXPECT_EQ(a.at(s, d), b.at(s, d));
}

TEST(IsShortestPath, RejectsNonPathsAndNonMinimal) {
  const auto g = topo::build_mesh(topo::Layout{1, 4, 2.0});
  const auto dist = topo::apsp_bfs(g);
  EXPECT_TRUE(is_shortest_path(g, dist, {0, 1, 2}));
  EXPECT_FALSE(is_shortest_path(g, dist, {0, 2}));        // no such edge
  EXPECT_FALSE(is_shortest_path(g, dist, {0, 1, 0, 1}));  // not minimal
  EXPECT_FALSE(is_shortest_path(g, dist, {0}));           // too short
}

TEST(PathEnum, FromDistMatchesSelfComputed) {
  // The annealer hands its move's APSP to the enumerator; the result must
  // be identical to the self-computing entry point.
  util::Rng rng(29);
  const auto g = topo::build_random(topo::Layout::noi_4x5(),
                                    topo::LinkClass::kMedium, 4, rng);
  const auto dist = topo::apsp_bfs(g);
  const auto a = enumerate_shortest_paths(g, 16);
  const auto b = enumerate_shortest_paths_from_dist(g, dist, 16);
  for (int s = 0; s < 20; ++s)
    for (int d = 0; d < 20; ++d)
      if (s != d) EXPECT_EQ(a.at(s, d), b.at(s, d));
}

TEST(PathSet, TotalPathsAggregates) {
  topo::DiGraph g(3);
  g.add_duplex(0, 1);
  g.add_duplex(1, 2);
  const auto ps = enumerate_shortest_paths(g);
  EXPECT_EQ(ps.total_paths(), 6u);  // 6 ordered pairs, 1 path each
}

}  // namespace
}  // namespace netsmith::routing
