// Serving layer: persistent content-addressed artifact store (LRU, disk
// format, corruption handling), artifact payload round-trips, executor-
// backed studies on a shared pool, and the daemon's socket protocol.
//
// The contracts under test:
//  - store round-trip: stored payloads come back bit-exact, from memory and
//    from a fresh instance reading disk; corrupted or truncated entries
//    read as misses (never crash) and are rewritten by the next store
//  - LRU: the in-memory budget is respected, evicted entries survive on
//    disk
//  - warm study: a second identical run against the same store restores
//    every artifact (misses == 0, zero annealer invocations) and assembles
//    a byte-identical report
//  - serve protocol: reports stream back byte-identical to what the Study
//    produced, repeated specs answer from cache, malformed requests yield
//    structured errors without killing the connection, and concurrent
//    clients share pool and store safely

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/artifact_io.hpp"
#include "api/report.hpp"
#include "api/spec.hpp"
#include "api/study.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/store.hpp"
#include "util/json.hpp"

namespace netsmith {
namespace {

namespace fs = std::filesystem;
using util::JsonValue;

std::string temp_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "netsmith_serve_" + tag +
                          "_" + std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Deterministic across independent runs: no synthesized topology, so the
// report carries no wall-clock synthesis trace. Small enough that a full
// study is a few milliseconds.
api::ExperimentSpec baseline_spec() {
  api::ExperimentSpec spec;
  spec.name = "serve-test";
  api::TopologySpec mesh;
  mesh.source = api::TopologySource::kBaseline;
  mesh.baseline = "mesh:rows=3,cols=3";
  api::TopologySpec ring;
  ring.source = api::TopologySource::kExplicit;
  ring.name = "ring";
  ring.adjacency = "4:0>1,1>0,1>2,2>1,2>3,3>2,3>0,0>3";
  ring.rows = 2;
  ring.cols = 2;
  ring.link_class = "small";
  spec.topologies = {mesh, ring};
  spec.traffic = {api::TrafficSpec{"", "coherence"}};
  spec.sweep.points = 3;
  spec.sweep.warmup = 50;
  spec.sweep.measure = 100;
  spec.sweep.drain = 50;
  spec.threads = 2;
  return spec;
}

// Adds a (tiny) synthesized topology: exercises the annealer-skip contract
// and the synthesis-provenance round-trip (including the wall-clock trace,
// which only a cached run can reproduce bit-exactly).
api::ExperimentSpec synth_spec() {
  api::ExperimentSpec spec = baseline_spec();
  spec.name = "serve-test-synth";
  api::TopologySpec synth;
  synth.source = api::TopologySource::kSynthesize;
  synth.name = "mini";
  synth.rows = 2;
  synth.cols = 2;
  synth.link_class = "small";
  synth.objectives = {"latop"};
  synth.radix = 3;
  synth.time_limit_s = 1.0;
  synth.restarts = 1;
  synth.max_moves = 300;
  synth.synth_seed = 11;
  spec.topologies.push_back(synth);
  return spec;
}

// ----------------------------------------------------------------- store --

TEST(ArtifactStore, MemoryRoundTrip) {
  serve::ArtifactStore store(serve::StoreOptions{"", 1 << 20});
  std::string payload;
  EXPECT_FALSE(store.load("topology", "k1", payload));
  store.store("topology", "k1", "hello artifact");
  ASSERT_TRUE(store.load("topology", "k1", payload));
  EXPECT_EQ(payload, "hello artifact");
  const serve::StoreStats s = store.stats();
  EXPECT_EQ(s.mem_hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.stores, 1);
  EXPECT_EQ(s.disk_hits, 0);
  // Memory-only: nothing maps to a disk path.
  EXPECT_TRUE(store.path_for("topology", "k1").empty());
}

TEST(ArtifactStore, DiskRoundTripAcrossInstances) {
  const std::string dir = temp_dir("disk");
  const std::string big(10000, 'x');
  {
    serve::ArtifactStore store(serve::StoreOptions{dir, 1 << 20});
    store.store("plan", "some|plan;key=1", big);
    store.store("sweep", "other key", "payload two");
  }
  serve::ArtifactStore fresh(serve::StoreOptions{dir, 1 << 20});
  std::string payload;
  ASSERT_TRUE(fresh.load("plan", "some|plan;key=1", payload));
  EXPECT_EQ(payload, big);
  ASSERT_TRUE(fresh.load("sweep", "other key", payload));
  EXPECT_EQ(payload, "payload two");
  EXPECT_EQ(fresh.stats().disk_hits, 2);
  // Promoted into memory: a reload never touches disk again.
  ASSERT_TRUE(fresh.load("plan", "some|plan;key=1", payload));
  EXPECT_EQ(fresh.stats().mem_hits, 1);
  // Same hash bucket, different key (collision discipline): a different
  // key never aliases.
  EXPECT_FALSE(fresh.load("plan", "some|plan;key=2", payload));
  fs::remove_all(dir);
}

TEST(ArtifactStore, CorruptedEntryIsMissAndRewritten) {
  const std::string dir = temp_dir("corrupt");
  serve::ArtifactStore writer(serve::StoreOptions{dir, 1 << 20});
  writer.store("topology", "victim", "precious payload bytes");
  const std::string path = writer.path_for("topology", "victim");
  ASSERT_TRUE(fs::exists(path));

  // Bit-flip one payload byte in place.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    char c;
    f.seekg(-3, std::ios::end);
    f.get(c);
    f.seekp(-3, std::ios::end);
    f.put(static_cast<char>(c ^ 0x40));
  }
  serve::ArtifactStore reader(serve::StoreOptions{dir, 1 << 20});
  std::string payload;
  EXPECT_FALSE(reader.load("topology", "victim", payload));
  EXPECT_EQ(reader.stats().corrupt, 1);
  // The next store rewrites the same path; the entry heals.
  reader.store("topology", "victim", "precious payload bytes");
  serve::ArtifactStore reader2(serve::StoreOptions{dir, 1 << 20});
  ASSERT_TRUE(reader2.load("topology", "victim", payload));
  EXPECT_EQ(payload, "precious payload bytes");

  // Truncation (simulating a torn write under the final name).
  fs::resize_file(path, fs::file_size(path) / 2);
  serve::ArtifactStore reader3(serve::StoreOptions{dir, 1 << 20});
  EXPECT_FALSE(reader3.load("topology", "victim", payload));
  EXPECT_EQ(reader3.stats().corrupt, 1);

  // Garbage file.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "not an artifact at all";
  }
  serve::ArtifactStore reader4(serve::StoreOptions{dir, 1 << 20});
  EXPECT_FALSE(reader4.load("topology", "victim", payload));
  EXPECT_EQ(reader4.stats().corrupt, 1);
  fs::remove_all(dir);
}

TEST(ArtifactStore, LruRespectsByteBudget) {
  const std::string dir = temp_dir("lru");
  // Budget fits ~3 of the 1000-byte payloads.
  serve::ArtifactStore store(serve::StoreOptions{dir, 3500});
  const std::string payload(1000, 'p');
  for (int i = 0; i < 8; ++i)
    store.store("sweep", "key" + std::to_string(i), payload + char('0' + i));
  serve::StoreStats s = store.stats();
  EXPECT_LE(s.mem_bytes, 3500);
  EXPECT_EQ(s.evictions, 8 - s.mem_entries);
  EXPECT_GT(s.evictions, 0);
  // Evicted entries still load — from disk — and bytes are intact.
  std::string got;
  ASSERT_TRUE(store.load("sweep", "key0", got));
  EXPECT_EQ(got, payload + '0');
  EXPECT_GE(store.stats().disk_hits, 1);
  // An oversized payload is stored to disk but never pinned in memory.
  store.store("sweep", "huge", std::string(10000, 'h'));
  EXPECT_LE(store.stats().mem_bytes, 3500);
  ASSERT_TRUE(store.load("sweep", "huge", got));
  EXPECT_EQ(got.size(), 10000u);
  fs::remove_all(dir);
}

// ---------------------------------------------------- payload round-trip --

TEST(ArtifactPayloads, MalformedPayloadsAreMisses) {
  api::TopologyArtifact t;
  sim::SweepResult r;
  api::PlanArtifact p;
  EXPECT_FALSE(api::restore_topology_artifact("", false, t));
  EXPECT_FALSE(api::restore_topology_artifact("{not json", false, t));
  EXPECT_FALSE(api::restore_topology_artifact("{\"artifact\":\"plan\"}",
                                              false, t));
  EXPECT_FALSE(api::restore_plan_artifact("{\"artifact\":\"plan\"}", p));
  EXPECT_FALSE(api::restore_sweep_artifact("[1,2,3]", r));
  EXPECT_FALSE(api::restore_sweep_artifact(
      "{\"artifact\":\"sweep\",\"schema\":999}", r));
}

TEST(ArtifactPayloads, SweepRoundTripIsExact) {
  api::ExperimentSpec spec = baseline_spec();
  api::Study study(spec);
  const api::Report rep = study.run();
  ASSERT_TRUE(rep.failed_jobs.empty());
  // Re-run with a memory store: the second study restores sweeps from the
  // first study's payloads and must reproduce every report row bit-exactly.
  serve::ArtifactStore store(serve::StoreOptions{"", 1 << 20});
  api::StudyOptions with_cache;
  with_cache.cache = &store;
  const api::Report cold = api::run_experiment(spec, with_cache);
  const api::Report warm = api::run_experiment(spec, with_cache);
  EXPECT_EQ(api::report_to_json(rep), api::report_to_json(cold));
  EXPECT_EQ(api::report_to_json(cold), api::report_to_json(warm));
}

// ------------------------------------------------------------ warm study --

TEST(WarmStudy, SecondRunIsAllHitsAndByteIdentical) {
  const std::string dir = temp_dir("warm");
  const api::ExperimentSpec spec = synth_spec();
  std::string first_json, second_json;
  {
    serve::ArtifactStore store(serve::StoreOptions{dir, 1 << 20});
    api::StudyOptions opts;
    opts.cache = &store;
    api::Study study(spec, opts);
    first_json = api::report_to_json(study.run());
    const api::ArtifactCacheStats cs = study.artifact_cache_stats();
    EXPECT_EQ(cs.hits(), 0);
    EXPECT_GT(cs.misses(), 0);
    EXPECT_GT(cs.stores, 0);
  }
  {
    // Fresh store instance: everything must come from disk.
    serve::ArtifactStore store(serve::StoreOptions{dir, 1 << 20});
    api::StudyOptions opts;
    opts.cache = &store;
    api::Study study(spec, opts);
    second_json = api::report_to_json(study.run());
    const api::ArtifactCacheStats cs = study.artifact_cache_stats();
    EXPECT_EQ(cs.misses(), 0) << "warm run recomputed artifacts";
    EXPECT_EQ(cs.stores, 0);
    EXPECT_EQ(cs.topology_hits, 3);
    // The annealer itself never ran: all restores came from the store.
    EXPECT_EQ(store.stats().misses + store.stats().corrupt, 0);
  }
  // Byte-identical report, including the synthesis provenance trace.
  EXPECT_EQ(first_json, second_json);
  fs::remove_all(dir);
}

TEST(WarmStudy, StatsStaySchemaIdentical) {
  // syntheses_run counts resolved synthesize jobs whether the annealer ran
  // or a cached artifact was restored — the report is provenance-stable.
  const std::string dir = temp_dir("stats");
  const api::ExperimentSpec spec = synth_spec();
  serve::ArtifactStore store(serve::StoreOptions{dir, 1 << 20});
  api::StudyOptions opts;
  opts.cache = &store;
  api::Study cold(spec, opts);
  cold.run();
  api::Study warm(spec, opts);
  warm.run();
  EXPECT_EQ(cold.stats().syntheses_run, warm.stats().syntheses_run);
  EXPECT_EQ(warm.artifact_cache_stats().misses(), 0);
  fs::remove_all(dir);
}

// ------------------------------------------------------- shared executor --

TEST(SharedPoolStudy, MatchesInternalPoolReport) {
  const api::ExperimentSpec spec = baseline_spec();
  const std::string internal_json =
      api::report_to_json(api::run_experiment(spec));

  serve::SharedPool pool(4);
  api::StudyOptions opts;
  opts.executor = &pool;
  std::atomic<int> progress_calls{0};
  int last_done = 0, last_total = 0;
  opts.on_job_done = [&](const std::string&, int done, int total) {
    progress_calls.fetch_add(1);
    last_done = done;  // serialized under the DAG lock
    last_total = total;
  };
  api::Study study(spec, opts);
  const int jobs = study.stats().jobs_total;
  const std::string executor_json = api::report_to_json(study.run());

  EXPECT_EQ(executor_json, internal_json);
  EXPECT_EQ(progress_calls.load(), jobs);
  EXPECT_EQ(last_done, jobs);
  EXPECT_EQ(last_total, jobs);
}

TEST(SharedPoolStudy, ConcurrentStudiesShareStoreAndPool) {
  const std::string dir = temp_dir("concurrent");
  const api::ExperimentSpec spec = baseline_spec();
  serve::ArtifactStore store(serve::StoreOptions{dir, 1 << 20});
  serve::SharedPool pool(4);
  // Warm the store once so concurrent runs exercise the hit path.
  {
    api::StudyOptions opts;
    opts.cache = &store;
    opts.executor = &pool;
    api::run_experiment(spec, opts);
  }
  constexpr int kClients = 4;
  std::vector<std::string> reports(kClients);
  std::vector<api::ArtifactCacheStats> stats(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i)
    clients.emplace_back([&, i] {
      api::StudyOptions opts;
      opts.cache = &store;
      opts.executor = &pool;
      api::Study study(spec, opts);
      reports[static_cast<std::size_t>(i)] =
          api::report_to_json(study.run());
      stats[static_cast<std::size_t>(i)] = study.artifact_cache_stats();
    });
  for (auto& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(reports[static_cast<std::size_t>(i)], reports[0]);
    EXPECT_EQ(stats[static_cast<std::size_t>(i)].misses(), 0)
        << "client " << i << " recomputed despite a warm shared store";
  }
  fs::remove_all(dir);
}

// --------------------------------------------------------------- daemon ---

class ServeClient {
 public:
  explicit ServeClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // The daemon binds asynchronously; retry briefly.
    for (int i = 0; i < 100; ++i) {
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0)
        return;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::close(fd_);
    fd_ = -1;
  }
  ~ServeClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }
  bool send(const std::string& line) { return serve::write_line(fd_, line); }
  // Next non-empty event line parsed as JSON; null value on EOF.
  JsonValue next_event() {
    if (!reader_) reader_ = std::make_unique<serve::LineReader>(fd_);
    std::string line;
    while (reader_->next(line))
      if (!line.empty()) return JsonValue::parse(line);
    return JsonValue::null();
  }
  // Reads events until `kind` (skipping progress etc.); null on EOF.
  JsonValue wait_for(const std::string& kind) {
    for (;;) {
      JsonValue ev = next_event();
      if (ev.is_null()) return ev;
      const JsonValue* e = ev.find("event");
      if (e && e->as_string() == kind) return ev;
      if (e && e->as_string() == "error") return ev;  // fail fast
    }
  }

 private:
  int fd_ = -1;
  std::unique_ptr<serve::LineReader> reader_;
};

std::string run_request(const api::ExperimentSpec& spec) {
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::string("run"));
  req.set("spec", api::spec_to_json(spec));
  return req.dump_compact();
}

class ServeDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = temp_dir("daemon");
    socket_ = dir_ + "/serve.sock";
    serve::ServerOptions opts;
    opts.socket_path = socket_;
    opts.cache_dir = dir_ + "/cache";
    opts.threads = 4;
    server_ = std::make_unique<serve::Server>(opts);
    server_->start();
  }
  void TearDown() override {
    server_->request_stop();
    server_->wait();
    server_.reset();
    fs::remove_all(dir_);
  }
  std::string dir_, socket_;
  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServeDaemonTest, PingStatsAndShutdownOps) {
  ServeClient c(socket_);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.send("{\"op\":\"ping\"}"));
  EXPECT_EQ(c.wait_for("pong").at("event").as_string(), "pong");
  ASSERT_TRUE(c.send("{\"op\":\"stats\"}"));
  const JsonValue stats = c.wait_for("stats");
  EXPECT_EQ(stats.at("event").as_string(), "stats");
  EXPECT_GE(stats.at("requests").as_int(), 2);
  ASSERT_TRUE(c.send("{\"op\":\"shutdown\"}"));
  EXPECT_EQ(c.wait_for("accepted").at("op").as_string(), "shutdown");
}

TEST_F(ServeDaemonTest, MalformedRequestsKeepConnectionAlive) {
  ServeClient c(socket_);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.send("this is not json"));
  JsonValue err = c.next_event();
  ASSERT_FALSE(err.is_null());
  EXPECT_EQ(err.at("event").as_string(), "error");
  EXPECT_NE(err.at("message").as_string().find("malformed"),
            std::string::npos);
  ASSERT_TRUE(c.send("{\"op\":\"frobnicate\"}"));
  err = c.next_event();
  EXPECT_EQ(err.at("event").as_string(), "error");
  // A run with an invalid spec also answers in-band.
  ASSERT_TRUE(c.send("{\"op\":\"run\",\"spec\":{\"topologies\":[]}}"));
  err = c.next_event();
  EXPECT_EQ(err.at("event").as_string(), "error");
  // The connection survived all three.
  ASSERT_TRUE(c.send("{\"op\":\"ping\"}"));
  EXPECT_EQ(c.wait_for("pong").at("event").as_string(), "pong");
}

TEST_F(ServeDaemonTest, RepeatedSpecIsWarmAndByteIdentical) {
  const api::ExperimentSpec spec = synth_spec();
  ServeClient c(socket_);
  ASSERT_TRUE(c.ok());

  ASSERT_TRUE(c.send(run_request(spec)));
  const JsonValue accepted = c.wait_for("accepted");
  ASSERT_FALSE(accepted.is_null());
  EXPECT_GT(accepted.at("jobs").as_int(), 0);
  const JsonValue first = c.wait_for("report");
  ASSERT_EQ(first.at("event").as_string(), "report");
  EXPECT_FALSE(first.at("partial").as_bool());
  EXPECT_GT(first.at("cache").at("misses").as_int(), 0);

  // Same connection, same spec: answered entirely from the store.
  ASSERT_TRUE(c.send(run_request(spec)));
  const JsonValue second = c.wait_for("report");
  ASSERT_EQ(second.at("event").as_string(), "report");
  EXPECT_EQ(second.at("cache").at("misses").as_int(), 0)
      << "warm daemon recomputed artifacts";
  EXPECT_EQ(second.at("cache").at("stores").as_int(), 0);

  // Byte-identical reports, wall-clock synthesis trace included.
  EXPECT_EQ(first.at("report").as_string(), second.at("report").as_string());

  // And identical to what the library produces directly against the same
  // persistent store (this is what `netsmith_run --cache` does).
  serve::ArtifactStore store(
      serve::StoreOptions{dir_ + "/cache", 64ull << 20});
  api::StudyOptions opts;
  opts.cache = &store;
  EXPECT_EQ(first.at("report").as_string(),
            api::report_to_json(api::run_experiment(spec, opts)));
}

TEST_F(ServeDaemonTest, ConcurrentClientsGetIdenticalReports) {
  const api::ExperimentSpec spec = baseline_spec();
  // Prime the store so every client is warm.
  {
    ServeClient c(socket_);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.send(run_request(spec)));
    ASSERT_EQ(c.wait_for("report").at("event").as_string(), "report");
  }
  constexpr int kClients = 4;
  std::vector<std::string> reports(kClients);
  std::vector<long> misses(kClients, -1);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i)
    threads.emplace_back([&, i] {
      ServeClient c(socket_);
      if (!c.ok() || !c.send(run_request(spec))) return;
      const JsonValue rep = c.wait_for("report");
      if (rep.is_null() || rep.at("event").as_string() != "report") return;
      reports[static_cast<std::size_t>(i)] = rep.at("report").as_string();
      misses[static_cast<std::size_t>(i)] =
          rep.at("cache").at("misses").as_int();
    });
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    ASSERT_FALSE(reports[static_cast<std::size_t>(i)].empty())
        << "client " << i << " got no report";
    EXPECT_EQ(reports[static_cast<std::size_t>(i)], reports[0]);
    EXPECT_EQ(misses[static_cast<std::size_t>(i)], 0)
        << "client " << i << " was not served from the shared store";
  }
}

TEST(ServeSpool, DirectoryModeProducesReports) {
  const std::string dir = temp_dir("spool");
  serve::ServerOptions opts;
  opts.spool_dir = dir + "/spool";
  opts.cache_dir = dir + "/cache";
  opts.threads = 2;
  opts.spool_poll_ms = 20;
  serve::Server server(opts);
  server.start();

  const api::ExperimentSpec spec = baseline_spec();
  {
    std::ofstream f(dir + "/spool/job1.json", std::ios::binary);
    f << api::serialize(spec);
  }
  std::string report_path = dir + "/spool/job1.report.json";
  for (int i = 0; i < 500 && !fs::exists(dir + "/spool/job1.json.done"); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(fs::exists(dir + "/spool/job1.json.done"));
  ASSERT_TRUE(fs::exists(report_path));
  std::ifstream in(report_path, std::ios::binary);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(body, api::report_to_json(api::run_experiment(spec)));

  // A broken spec fails in place without touching the daemon.
  {
    std::ofstream f(dir + "/spool/bad.json", std::ios::binary);
    f << "{\"topologies\": []}";
  }
  for (int i = 0; i < 500 && !fs::exists(dir + "/spool/bad.json.failed");
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(fs::exists(dir + "/spool/bad.json.failed"));
  EXPECT_TRUE(fs::exists(dir + "/spool/bad.error.txt"));

  server.request_stop();
  server.wait();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace netsmith
