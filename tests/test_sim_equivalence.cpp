// Reference-vs-optimized simulator equivalence: the activity-driven event
// loop (active router set, cached next-hops, heap-scheduled injection) must
// produce bit-identical SimStats to the full per-cycle scan for the same
// seed — across every TrafficKind, several topologies and seeds, and on both
// sides of the saturation knee.

#include <gtest/gtest.h>

#include "core/objective.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "topo/builders.hpp"

namespace netsmith::sim {
namespace {

void expect_identical(const SimStats& ref, const SimStats& opt) {
  EXPECT_EQ(ref.total_injected, opt.total_injected);
  EXPECT_EQ(ref.total_ejected, opt.total_ejected);
  EXPECT_EQ(ref.tagged_injected, opt.tagged_injected);
  EXPECT_EQ(ref.tagged_completed, opt.tagged_completed);
  EXPECT_EQ(ref.cycles_run, opt.cycles_run);
  EXPECT_EQ(ref.saturated, opt.saturated);
  EXPECT_EQ(ref.flits_injected, opt.flits_injected);
  EXPECT_EQ(ref.flits_ejected, opt.flits_ejected);
  EXPECT_EQ(ref.flits_buffered_end, opt.flits_buffered_end);
  EXPECT_EQ(ref.flits_inflight_end, opt.flits_inflight_end);
  EXPECT_EQ(ref.source_flits_end, opt.source_flits_end);
  EXPECT_EQ(ref.credits_consistent, opt.credits_consistent);
  EXPECT_EQ(ref.owners_clear, opt.owners_clear);
  // Activity counters: the reference pre-scan and the optimized active-set
  // popcount must count exactly the same routers every cycle, and arrival
  // deliveries share one heap-driven code path.
  EXPECT_EQ(ref.active_router_cycles, opt.active_router_cycles);
  EXPECT_EQ(ref.arrival_heap_pops, opt.arrival_heap_pops);
  // Fault accounting: zero/identity on these fault-free runs, and identical
  // between modes either way.
  EXPECT_EQ(ref.flits_dropped, opt.flits_dropped);
  EXPECT_EQ(ref.packets_dropped, opt.packets_dropped);
  EXPECT_EQ(ref.tagged_dropped, opt.tagged_dropped);
  EXPECT_EQ(ref.packets_unroutable, opt.packets_unroutable);
  EXPECT_DOUBLE_EQ(ref.delivered_fraction, opt.delivered_fraction);
  EXPECT_DOUBLE_EQ(ref.latency_p50_cycles, opt.latency_p50_cycles);
  EXPECT_DOUBLE_EQ(ref.latency_p99_cycles, opt.latency_p99_cycles);
  // Same integer event history implies the exact same arithmetic.
  EXPECT_DOUBLE_EQ(ref.accepted, opt.accepted);
  EXPECT_DOUBLE_EQ(ref.avg_latency_cycles, opt.avg_latency_cycles);
  EXPECT_DOUBLE_EQ(ref.mean_source_backlog, opt.mean_source_backlog);
}

void run_both(const core::NetworkPlan& plan, const TrafficConfig& traffic,
              SimConfig cfg) {
  cfg.reference_mode = true;
  const auto ref = simulate(plan, traffic, cfg);
  cfg.reference_mode = false;
  const auto opt = simulate(plan, traffic, cfg);
  expect_identical(ref, opt);
  // Guard against vacuous equivalence (both empty).
  EXPECT_GT(ref.total_injected, 0);
  EXPECT_GT(ref.active_router_cycles, 0);
  EXPECT_GT(ref.arrival_heap_pops, 0);
}

core::NetworkPlan plan_for(const topo::DiGraph& g, const topo::Layout& lay) {
  return core::plan_network(g, lay, core::RoutingPolicy::kMclb, /*num_vcs=*/6);
}

SimConfig quick_cfg(std::uint64_t seed) {
  SimConfig cfg;
  cfg.warmup = 1000;
  cfg.measure = 3000;
  cfg.drain = 12000;
  cfg.seed = seed;
  return cfg;
}

TEST(SimEquivalence, CoherenceAcrossTopologiesAndSeeds) {
  const auto lay = topo::Layout::noi_4x5();
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.03;
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    run_both(plan_for(topo::build_folded_torus(lay), lay), t, quick_cfg(seed));
    run_both(plan_for(topo::build_mesh(lay), lay), t, quick_cfg(seed));
  }
}

TEST(SimEquivalence, MemoryRequestReply) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_folded_torus(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kMemory;
  t.mc_nodes = mc_nodes(lay);
  t.injection_rate = 0.01;
  run_both(plan, t, quick_cfg(5));
}

TEST(SimEquivalence, ShuffleTraffic) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_folded_torus(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kShuffle;
  t.injection_rate = 0.02;
  run_both(plan, t, quick_cfg(11));
}

TEST(SimEquivalence, CustomPatternTraffic) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_folded_torus(lay), lay);
  const auto traffic =
      traffic_from_pattern(core::tornado_pattern(20), /*injection_rate=*/0.02);
  run_both(plan, traffic, quick_cfg(13));
}

TEST(SimEquivalence, SaturatedPoint) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_mesh(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.6;  // far past the knee
  auto cfg = quick_cfg(3);
  cfg.drain = 3000;
  cfg.reference_mode = true;
  const auto ref = simulate(plan, t, cfg);
  cfg.reference_mode = false;
  const auto opt = simulate(plan, t, cfg);
  EXPECT_TRUE(ref.saturated);
  expect_identical(ref, opt);
}

TEST(SimEquivalence, NdbtRoutingAndNarrowIo) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = core::plan_network(topo::build_folded_torus(lay), lay,
                                       core::RoutingPolicy::kNdbt, 6);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.03;
  auto cfg = quick_cfg(29);
  cfg.io_flits_per_cycle = 1;
  run_both(plan, t, cfg);
}

TEST(SimEquivalence, TinyBuffersAndExtraDelay) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_folded_torus(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.04;
  auto cfg = quick_cfg(17);
  cfg.buf_flits = 2;
  cfg.extra_edge_delay = util::Matrix<int>(20, 20, 2);
  run_both(plan, t, cfg);
}

}  // namespace
}  // namespace netsmith::sim
