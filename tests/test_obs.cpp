// Observability layer: sharded metrics registry and trace-span recorder.
// The contracts under test: concurrent counter sums are exact, snapshots are
// name-ordered (deterministic serialization), histogram bucket edges are
// inclusive, everything is a no-op while disabled, and recorded spans come
// back as well-formed Chrome trace_event JSON.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace netsmith::obs {
namespace {

// Every test runs with a clean slate and leaves the gates off (other test
// suites in this binary assume observability is disabled).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    set_trace_enabled(true);
    reset_metrics();
    reset_trace();
  }
  void TearDown() override {
    reset_metrics();
    reset_trace();
    set_metrics_enabled(false);
    set_trace_enabled(false);
  }
};

TEST_F(ObsTest, ConcurrentCounterSumsAreExact) {
  Counter& c = counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& t : pool) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, ConcurrentHistogramCountsAreExact) {
  Histogram& h = histogram("test.hist_concurrent", {1.0, 2.0, 3.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&h, t] {
      // t + 0.5 targets bucket t (bounds are inclusive upper edges; 3.5
      // overflows), so each thread fills exactly one bucket.
      for (int i = 0; i < kPerThread; ++i) h.record(t + 0.5);
    });
  for (auto& t : pool) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  for (std::uint64_t b : h.counts()) EXPECT_EQ(b, kPerThread);
}

TEST_F(ObsTest, SnapshotIsNameOrdered) {
  counter("test.b").add(2);
  counter("test.a").add(1);
  counter("test.c").add(3);
  gauge("test.g2").set(2.0);
  gauge("test.g1").set(1.0);

  const MetricsSnapshot snap = snapshot_metrics();
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  for (std::size_t i = 1; i < snap.gauges.size(); ++i)
    EXPECT_LT(snap.gauges[i - 1].first, snap.gauges[i].first);

  // Two snapshots of the same state serialize identically.
  const std::string j1 = metrics_to_json(snap).dump();
  const std::string j2 = metrics_to_json(snapshot_metrics()).dump();
  EXPECT_EQ(j1, j2);
}

TEST_F(ObsTest, HistogramBucketBoundariesAreInclusiveUpperEdges) {
  Histogram& h = histogram("test.buckets", {0.0, 1.0, 4.0});
  h.record(-1.0);  // <= 0       -> bucket 0
  h.record(0.0);   // == 0       -> bucket 0 (inclusive edge)
  h.record(0.5);   // (0, 1]     -> bucket 1
  h.record(1.0);   // == 1       -> bucket 1 (inclusive edge)
  h.record(2.0);   // (1, 4]     -> bucket 2
  h.record(4.0);   // == 4       -> bucket 2 (inclusive edge)
  h.record(4.5);   // > last     -> overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), -1.0 + 0.0 + 0.5 + 1.0 + 2.0 + 4.0 + 4.5);

  // record_n lands n observations in one bucket.
  h.record_n(2.0, 10);
  EXPECT_EQ(h.counts()[2], 12u);
  EXPECT_EQ(h.count(), 17u);
}

TEST_F(ObsTest, DisabledMetricsRecordNothing) {
  Counter& c = counter("test.disabled");
  Gauge& g = gauge("test.disabled_gauge");
  Histogram& h = histogram("test.disabled_hist", {1.0});
  set_metrics_enabled(false);
  c.add(5);
  g.set(3.0);
  g.add(2.0);
  h.record(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsRegistrations) {
  counter("test.reset").add(7);
  gauge("test.reset_gauge").set(1.5);
  histogram("test.reset_hist", {1.0}).record(0.5);
  reset_metrics();
  const MetricsSnapshot snap = snapshot_metrics();
  for (const auto& [name, v] : snap.counters) EXPECT_EQ(v, 0u) << name;
  for (const auto& [name, v] : snap.gauges) EXPECT_DOUBLE_EQ(v, 0.0) << name;
  for (const auto& h : snap.histograms) EXPECT_EQ(h.count, 0u) << h.name;
  bool found = false;
  for (const auto& [name, v] : snap.counters)
    if (name == "test.reset") found = true;
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, SpansRecordCompleteEventsWithArgs) {
  {
    Span span("test/outer");
    span.arg("k", 42);
    span.arg("label", std::string("abc"));
    Span inner("test/inner");
  }
  trace_counter("test/value", 3.5);
  trace_instant("test/mark");

  const auto events = collect_trace_events();
  ASSERT_EQ(events.size(), 4u);
  // Sorted by timestamp: spans carry their *start* time, so outer precedes
  // inner, and both precede the post-scope samples.
  EXPECT_EQ(events[0].name, "test/outer");
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_GE(events[0].dur_us, events[1].dur_us);
  ASSERT_EQ(events[0].num_args.size(), 1u);
  EXPECT_EQ(events[0].num_args[0].first, "k");
  EXPECT_DOUBLE_EQ(events[0].num_args[0].second, 42.0);
  ASSERT_EQ(events[0].str_args.size(), 1u);
  EXPECT_EQ(events[0].str_args[0].second, "abc");
  EXPECT_EQ(events[1].name, "test/inner");
  EXPECT_EQ(events[2].name, "test/value");
  EXPECT_EQ(events[2].ph, 'C');
  EXPECT_DOUBLE_EQ(events[2].value, 3.5);
  EXPECT_EQ(events[3].ph, 'i');

  // The JSON document is parseable and wraps the same event count.
  const util::JsonValue doc = util::JsonValue::parse(trace_to_json());
  EXPECT_EQ(doc.at("traceEvents").items().size(), 4u);
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  set_trace_enabled(false);
  {
    Span span("test/ignored");
    span.arg("k", 1);
  }
  trace_counter("test/ignored", 1.0);
  trace_instant("test/ignored");
  EXPECT_TRUE(collect_trace_events().empty());
}

}  // namespace
}  // namespace netsmith::obs
