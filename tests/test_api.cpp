// Experiment API coverage: spec JSON round-trip, Study artifact caching
// (one synthesis per unique topology key), plan provenance, and Report
// determinism across runner thread counts.

#include <gtest/gtest.h>

#include "api/report.hpp"
#include "api/study.hpp"

namespace netsmith::api {
namespace {

// A spec touching every field with non-default values.
ExperimentSpec full_spec() {
  ExperimentSpec spec;
  spec.name = "round trip \"quoted\"";
  TopologySpec synth;
  synth.source = TopologySource::kSynthesize;
  synth.name = "mini";
  synth.rows = 3;
  synth.cols = 3;
  synth.link_class = "small";
  synth.objectives = {"latop", "scop"};
  synth.radix = 3;
  synth.symmetric_links = true;
  synth.diameter_bound = 5;
  synth.min_cut_bandwidth = 0.125;
  synth.load_weight = 2.5;
  synth.time_limit_s = 0.75;
  synth.synth_seed = 99;
  synth.restarts = 2;
  synth.max_moves = 500;
  TopologySpec base;
  base.source = TopologySource::kBaseline;
  base.baseline = "folded_torus:rows=3,cols=4";
  TopologySpec cat;
  cat.source = TopologySource::kCatalog;
  cat.catalog_routers = 20;
  cat.name = "Kite-small";
  TopologySpec expl;
  expl.source = TopologySource::kExplicit;
  expl.name = "tiny-ring";
  expl.adjacency = "4:0>1,1>0,1>2,2>1,2>3,3>2,3>0,0>3";
  expl.rows = 2;
  expl.cols = 2;
  expl.link_class = "small";
  spec.topologies = {synth, base, cat, expl};
  spec.routing = "mclb";
  spec.num_vcs = 4;
  spec.max_paths_per_flow = 9;
  spec.chiplet_system = true;
  spec.seeds = {3, 17};
  spec.analytic = false;
  spec.traffic = {TrafficSpec{"coh", "coherence", 2, 11, 0.75},
                  TrafficSpec{"", "memory"}};
  spec.sweep.points = 5;
  spec.sweep.max_rate = 0.35;
  spec.sweep.adaptive = false;
  spec.sweep.warmup = 123;
  spec.sweep.measure = 456;
  spec.sweep.drain = 789;
  spec.sweep.buf_flits = 5;
  spec.sweep.io_flits_per_cycle = 1;
  spec.sweep.router_delay = 3;
  spec.sweep.link_delay = 2;
  spec.sweep.sim_seed = 21;
  spec.power.enabled = true;
  spec.power.flits_per_node_cycle = 0.0625;
  spec.threads = 3;
  return spec;
}

TEST(SpecRoundTrip, ParseSerializeExact) {
  const ExperimentSpec spec = full_spec();
  const std::string json = serialize(spec);
  const ExperimentSpec back = parse_spec(json);
  EXPECT_TRUE(back == spec);
  // Serialization is canonical: a second cycle is byte-identical.
  EXPECT_EQ(serialize(back), json);
}

TEST(SpecRoundTrip, DefaultsFillIn) {
  const auto spec = parse_spec(
      R"({"topologies": [{"source": "baseline", "baseline": "mesh:rows=3,cols=3"}]})");
  EXPECT_EQ(spec.num_vcs, 6);
  EXPECT_EQ(spec.max_paths_per_flow, 48);
  EXPECT_EQ(spec.routing, "auto");
  ASSERT_EQ(spec.seeds.size(), 1u);
  EXPECT_EQ(spec.seeds[0], 7u);
  EXPECT_EQ(spec.sweep.points, 10);
  EXPECT_FALSE(spec.power.enabled);
  EXPECT_TRUE(parse_spec(serialize(spec)) == spec);
}

TEST(SpecParse, RejectsMalformed) {
  const char* ok =
      R"({"topologies": [{"source": "baseline", "baseline": "mesh:rows=3,cols=3"}]})";
  EXPECT_NO_THROW(parse_spec(ok));
  // Unknown key.
  EXPECT_THROW(
      parse_spec(
          R"({"topologies": [{"source": "baseline", "baseline": "m", "typo": 1}]})"),
      std::invalid_argument);
  EXPECT_THROW(parse_spec(R"({"topologies": [], "zzz": 1})"),
               std::invalid_argument);
  // Structural problems.
  EXPECT_THROW(parse_spec(R"({"topologies": []})"), std::invalid_argument);
  EXPECT_THROW(parse_spec(R"({"topologies": [{"source": "explicit"}]})"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_spec(
          R"({"schema_version": 99, "topologies": [{"source": "baseline", "baseline": "m"}]})"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_spec(
          R"({"routing": "magic", "topologies": [{"source": "baseline", "baseline": "m"}]})"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_spec(
          R"({"topologies": [{"source": "synthesize", "objectives": ["bogus"]}]})"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_spec(
          R"({"traffic": [{"kind": "warp"}], "topologies": [{"source": "baseline", "baseline": "m"}]})"),
      std::invalid_argument);
  // Not JSON at all.
  EXPECT_THROW(parse_spec("not json"), std::invalid_argument);
}

// One synthesis per unique topology key, however often the grid references
// it: the same synthesize entry listed twice shares one artifact, and the
// seed grid multiplies plans, not syntheses.
TEST(Study, ArtifactCacheSharesSyntheses) {
  ExperimentSpec spec;
  spec.name = "cache";
  TopologySpec synth;
  synth.source = TopologySource::kSynthesize;
  synth.rows = 3;
  synth.cols = 4;
  synth.link_class = "small";
  synth.radix = 3;
  synth.objectives = {"latop"};
  synth.restarts = 1;
  synth.max_moves = 300;  // move-budgeted: deterministic and fast
  synth.time_limit_s = 30.0;
  spec.topologies = {synth, synth};  // same key twice
  spec.seeds = {7, 11};
  spec.analytic = false;

  Study study(spec, StudyOptions{2});
  const Report report = study.run();
  const auto& st = study.stats();
  EXPECT_EQ(st.topology_refs, 2);
  EXPECT_EQ(st.unique_topologies, 1);
  EXPECT_EQ(st.topology_cache_hits, 1);
  EXPECT_EQ(st.syntheses_run, 1);  // the tentpole cache guarantee
  EXPECT_EQ(st.plan_refs, 4);      // 2 refs x 2 seeds
  EXPECT_EQ(st.unique_plans, 2);   // deduped to unique topology x seed
  EXPECT_EQ(st.plan_cache_hits, 2);
  EXPECT_EQ(st.sweep_jobs, 0);

  // Rows still appear per grid reference, sharing the cached artifacts.
  ASSERT_EQ(report.topologies.size(), 2u);
  EXPECT_EQ(report.topologies[0].key, report.topologies[1].key);
  EXPECT_EQ(report.topologies[0].adjacency, report.topologies[1].adjacency);
  EXPECT_TRUE(report.topologies[0].synthesized);
  ASSERT_EQ(report.plans.size(), 4u);
  EXPECT_EQ(report.plans[0].key, report.plans[2].key);
  EXPECT_EQ(report.plans[0].seed, 7u);
  EXPECT_EQ(report.plans[1].seed, 11u);
}

// Display-name overrides are per-row presentation: renamed duplicates still
// share one artifact, and each report row keeps its own name.
TEST(Study, RenamedDuplicatesShareArtifactKeepNames) {
  ExperimentSpec spec;
  TopologySpec a;
  a.source = TopologySource::kBaseline;
  a.baseline = "mesh:rows=3,cols=3";
  a.name = "A";
  TopologySpec b = a;
  b.name = "B";
  spec.topologies = {a, b};
  spec.analytic = false;

  Study study(spec);
  const Report report = study.run();
  EXPECT_EQ(study.stats().unique_topologies, 1);
  ASSERT_EQ(report.topologies.size(), 2u);
  EXPECT_EQ(report.topologies[0].name, "A");
  EXPECT_EQ(report.topologies[1].name, "B");
  EXPECT_EQ(report.topologies[0].key, report.topologies[1].key);
}

TEST(SpecRoundTrip, FullRangeSeeds) {
  ExperimentSpec spec;
  TopologySpec mesh;
  mesh.source = TopologySource::kBaseline;
  mesh.baseline = "mesh:rows=3,cols=3";
  spec.topologies = {mesh};
  spec.seeds = {0, 1ull << 63, ~0ull};  // above INT64_MAX included
  TopologySpec synth;
  synth.source = TopologySource::kSynthesize;
  synth.synth_seed = 0x9E3779B97F4A7C15ull;
  spec.topologies.push_back(synth);
  EXPECT_TRUE(parse_spec(serialize(spec)) == spec);
  // A raw decimal uint64 token parses too (not just the canonical form).
  const auto s = parse_spec(
      R"({"seeds": [18446744073709551615], "topologies": [{"source": "baseline", "baseline": "mesh:rows=3,cols=3"}]})");
  ASSERT_EQ(s.seeds.size(), 1u);
  EXPECT_EQ(s.seeds[0], ~0ull);
}

TEST(SpecParse, CatalogNameExcludesBaselines) {
  EXPECT_THROW(
      parse_spec(
          R"({"topologies": [{"source": "catalog", "catalog_routers": 20, "name": "Kite-small", "include_baselines": true}]})"),
      std::invalid_argument);
}

TEST(Study, PlanProvenanceAndPolicy) {
  ExperimentSpec spec;
  TopologySpec mesh;
  mesh.source = TopologySource::kBaseline;
  mesh.baseline = "mesh:rows=3,cols=4";
  spec.topologies = {mesh};
  spec.num_vcs = 4;
  spec.max_paths_per_flow = 13;
  spec.seeds = {5};
  spec.analytic = false;

  Study study(spec);
  const Report report = study.run();
  ASSERT_EQ(report.plans.size(), 1u);
  const auto& plan = report.plans[0];
  // Mesh is an expert design: paper policy under "auto" is NDBT.
  EXPECT_EQ(plan.policy, "ndbt");
  EXPECT_EQ(plan.num_vcs, 4);
  EXPECT_EQ(plan.seed, 5u);
  EXPECT_EQ(plan.max_paths_per_flow, 13);
  // plan_network filled the provenance on the artifact itself too.
  const auto& art = study.plan_for(0);
  EXPECT_EQ(art.plan.policy, core::RoutingPolicy::kNdbt);
  EXPECT_EQ(art.plan.num_vcs, 4);
  EXPECT_EQ(art.plan.seed, 5u);
  EXPECT_EQ(art.plan.max_paths_per_flow, 13);

  ExperimentSpec forced = spec;
  forced.routing = "mclb";
  const Report r2 = Study(forced).run();
  EXPECT_EQ(r2.plans[0].policy, "mclb");
}

// A fixed spec produces a byte-identical report JSON at any Study
// thread-pool width (jobs write only their own slots; assembly is in grid
// order).
TEST(Study, ReportDeterministicAcrossThreadCounts) {
  ExperimentSpec spec;
  spec.name = "determinism";
  TopologySpec mesh;
  mesh.source = TopologySource::kBaseline;
  mesh.baseline = "mesh:rows=3,cols=4";
  TopologySpec torus;
  torus.source = TopologySource::kBaseline;
  torus.baseline = "folded_torus:rows=3,cols=4";
  spec.topologies = {mesh, torus};
  spec.seeds = {7, 9};
  spec.analytic = true;
  spec.traffic = {TrafficSpec{"", "coherence"}, TrafficSpec{"", "memory"}};
  spec.sweep.points = 3;
  spec.sweep.warmup = 200;
  spec.sweep.measure = 600;
  spec.sweep.drain = 2000;
  spec.power.enabled = true;

  const std::string serial =
      report_to_json(Study(spec, StudyOptions{1}).run());
  const std::string wide = report_to_json(Study(spec, StudyOptions{4}).run());
  EXPECT_EQ(serial, wide);

  // And the sweep rows carry the OpenMP provenance they ran with.
  const Report r = Study(spec, StudyOptions{2}).run();
  ASSERT_EQ(r.sweeps.size(), 8u);  // 2 topologies x 2 seeds x 2 traffic
  for (const auto& sw : r.sweeps) {
    EXPECT_GE(sw.omp_threads, 1);
    EXPECT_EQ(sw.omp_threads, r.omp_max_threads);
  }
}

TEST(Report, EmbeddedSpecRoundTrips) {
  ExperimentSpec spec;
  TopologySpec expl;
  expl.source = TopologySource::kExplicit;
  expl.adjacency = "4:0>1,1>0,1>2,2>1,2>3,3>2,3>0,0>3";
  expl.rows = 2;
  expl.cols = 2;
  expl.link_class = "small";
  spec.topologies = {expl};
  spec.analytic = true;

  const std::string json = report_to_json(Study(spec).run());
  // A report with no resilience rows or failed jobs stamps the legacy
  // version so fault-free output stays byte-compatible.
  EXPECT_EQ(report_schema_version(json), kReportSchemaVersion - 1);
  EXPECT_TRUE(spec_from_report(json) == spec);
}

TEST(Study, RunTwiceThrows) {
  ExperimentSpec spec;
  TopologySpec mesh;
  mesh.source = TopologySource::kBaseline;
  mesh.baseline = "mesh:rows=3,cols=3";
  spec.topologies = {mesh};
  spec.analytic = false;
  Study study(spec);
  study.run();
  EXPECT_THROW(study.run(), std::logic_error);
}

TEST(Study, UnknownBaselineThrowsAtExpansion) {
  ExperimentSpec spec;
  TopologySpec bad;
  bad.source = TopologySource::kBaseline;
  bad.baseline = "warpgate:rows=3";
  spec.topologies = {bad};
  EXPECT_THROW(Study s(spec), std::invalid_argument);
}

}  // namespace
}  // namespace netsmith::api
