#include "topologies/registry.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"
#include "topologies/expert.hpp"

namespace netsmith::topologies {
namespace {

struct Expected {
  const char* name;
  double links;
  int diam;
  double avg;   // Table II, 2 decimals
  // Bisection from Table II; -1 skips the check (documented deviation).
  int bis;
};

// Paper Table II, 20-router block.
const Expected kTable2_20[] = {
    {"Kite-small", 38, 4, 2.38, 8},
    {"LPBT-Power", 33, 5, 2.59, 4},
    {"LPBT-Hops-small", 34, 6, 2.74, 4},
    {"FoldedTorus", 40, 4, 2.32, 10},
    {"Kite-medium", 40, 4, 2.25, 8},
    {"LPBT-Hops-medium", 38, 4, 2.33, 7},
    {"ButterDonut", 36, 4, 2.32, 8},
    // DoubleButterfly reconstructs at bisection 7 vs the paper's 8 (all
    // other metrics exact); documented in EXPERIMENTS.md.
    {"DoubleButterfly", 32, 4, 2.59, -1},
    {"Kite-large", 36, 5, 2.27, 8},
};

TEST(Catalog20, ExpertMetricsMatchTable2) {
  const auto cat = catalog(20);
  for (const auto& e : kTable2_20) {
    const auto t = find(cat, e.name);
    EXPECT_NEAR(t.graph.duplex_links(), e.links, 1e-9) << e.name;
    EXPECT_EQ(topo::diameter(t.graph), e.diam) << e.name;
    EXPECT_NEAR(topo::average_hops(t.graph), e.avg, 0.005) << e.name;
    if (e.bis >= 0)
      EXPECT_EQ(topo::bisection_bandwidth(t.graph), e.bis) << e.name;
  }
}

TEST(Catalog20, ExpertTopologiesAreSymmetric) {
  for (const auto& t : catalog(20)) {
    if (t.machine_generated) continue;
    EXPECT_TRUE(t.graph.is_symmetric()) << t.name;
  }
}

TEST(Catalog20, EverythingConnectedAndRadix4) {
  for (const auto& t : catalog(20)) {
    EXPECT_TRUE(topo::strongly_connected(t.graph)) << t.name;
    EXPECT_TRUE(topo::respects_radix(t.graph, 4)) << t.name;
  }
}

TEST(Catalog20, LinkClassesRespected) {
  for (const auto& t : catalog(20)) {
    if (t.name == "FoldedTorus") continue;  // folded physically, not in grid ids
    EXPECT_TRUE(topo::respects_link_class(t.graph, t.layout, t.link_class))
        << t.name;
  }
}

TEST(Catalog20, NetSmithBeatsExpertsOnLatency) {
  // Paper's headline: NS-LatOp has the lowest average hops in each class.
  const auto cat = catalog(20);
  const struct {
    const char* ns;
    const char* best_expert;
  } pairs[] = {
      {"NS-LatOp-small-20", "Kite-small"},
      {"NS-LatOp-medium-20", "Kite-medium"},
      {"NS-LatOp-large-20", "Kite-large"},
  };
  for (const auto& p : pairs) {
    const double ns = topo::average_hops(find(cat, p.ns).graph);
    const double expert = topo::average_hops(find(cat, p.best_expert).graph);
    EXPECT_LT(ns, expert + 1e-9) << p.ns << " vs " << p.best_expert;
  }
}

TEST(Catalog20, NetSmithScopBeatsExpertsOnBisection) {
  const auto cat = catalog(20);
  // Medium/large: paper reports 50%/75% bisection advantages.
  EXPECT_GE(topo::bisection_bandwidth(find(cat, "NS-SCOp-medium-20").graph),
            topo::bisection_bandwidth(find(cat, "FoldedTorus").graph));
  EXPECT_GT(topo::bisection_bandwidth(find(cat, "NS-SCOp-large-20").graph),
            topo::bisection_bandwidth(find(cat, "Kite-large").graph));
}

TEST(Catalog30, MetricsSaneAndConnected) {
  const auto cat = catalog(30);
  for (const auto& t : cat) {
    EXPECT_TRUE(topo::strongly_connected(t.graph)) << t.name;
    EXPECT_TRUE(topo::respects_radix(t.graph, 4)) << t.name;
    EXPECT_EQ(t.graph.num_nodes(), 30) << t.name;
  }
  // Spot-check the generator-exact row: Folded Torus 60 links / 2.79 / 10.
  const auto ft = find(cat, "FoldedTorus");
  EXPECT_NEAR(ft.graph.duplex_links(), 60, 1e-9);
  EXPECT_NEAR(topo::average_hops(ft.graph), 2.79, 0.005);
}

TEST(Catalog30, NetSmithStillWins) {
  const auto cat = catalog(30);
  EXPECT_LT(topo::average_hops(find(cat, "NS-LatOp-medium-30").graph),
            topo::average_hops(find(cat, "Kite-medium").graph));
  EXPECT_LT(topo::average_hops(find(cat, "NS-LatOp-large-30").graph),
            topo::average_hops(find(cat, "Kite-large").graph));
}

TEST(Catalog48, ScalabilitySet) {
  const auto cat = catalog_48();
  for (const auto& t : cat) {
    EXPECT_EQ(t.graph.num_nodes(), 48) << t.name;
    EXPECT_TRUE(topo::strongly_connected(t.graph)) << t.name;
  }
  // NS beats the stand-in expert baseline per class on hops.
  EXPECT_LE(topo::average_hops(find(cat, "NS-LatOp-medium-48").graph),
            topo::average_hops(find(cat, "Kite-like-medium-48").graph) + 1e-9);
}

TEST(Registry, FindThrowsOnUnknown) {
  EXPECT_THROW(find(catalog(20), "nope"), std::invalid_argument);
  EXPECT_THROW(catalog(21), std::invalid_argument);
}

TEST(Frozen, LookupAndErrors) {
  EXPECT_TRUE(has_frozen("NS-LatOp-medium-20"));
  EXPECT_FALSE(has_frozen("definitely-not-a-topology"));
  EXPECT_THROW(frozen("definitely-not-a-topology"), std::invalid_argument);
}

TEST(Frozen, NsShufOptVariantsExist) {
  for (const char* name : {"NS-ShufOpt-small-20", "NS-ShufOpt-medium-20",
                           "NS-ShufOpt-large-20"}) {
    const auto g = frozen(name);
    EXPECT_EQ(g.num_nodes(), 20) << name;
    EXPECT_TRUE(topo::strongly_connected(g)) << name;
  }
}

}  // namespace
}  // namespace netsmith::topologies
