#include "util/json.hpp"

#include <gtest/gtest.h>

namespace netsmith::util {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_EQ(JsonValue::parse("42").as_int(), 42);
  EXPECT_EQ(JsonValue::parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntsStayInts) {
  // "2" is an int token, "2.0" is a double token; both survive a dump/parse
  // cycle with their type (round-trip type stability).
  const auto i = JsonValue::parse("2");
  EXPECT_EQ(i.type(), JsonValue::Type::kInt);
  EXPECT_EQ(i.dump(), "2\n");
  const auto d = JsonValue::parse("2.0");
  EXPECT_EQ(d.type(), JsonValue::Type::kDouble);
  EXPECT_EQ(d.dump(), "2.0\n");
}

TEST(JsonParse, NestedDocument) {
  const auto v = JsonValue::parse(
      R"({"a": [1, 2, 3], "b": {"c": true, "d": "x"}, "e": 1.25})");
  EXPECT_EQ(v.at("a").items().size(), 3u);
  EXPECT_EQ(v.at("a").items()[1].as_int(), 2);
  EXPECT_TRUE(v.at("b").at("c").as_bool());
  EXPECT_EQ(v.at("b").at("d").as_string(), "x");
  EXPECT_DOUBLE_EQ(v.at("e").as_double(), 1.25);
  EXPECT_EQ(v.find("zzz"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  const auto v = JsonValue::parse(R"("a\"b\\c\nd\tA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\tA");
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} x"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":1,\"a\":2}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("tru"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("nan"), std::runtime_error);
}

TEST(JsonDump, RoundTripByteStable) {
  // Objects keep insertion order and doubles dump shortest-exact, so a
  // dump -> parse -> dump cycle is byte-identical.
  JsonValue o = JsonValue::object();
  o.set("name", JsonValue::string("x \"y\" \n z"));
  o.set("pi", JsonValue::number(3.141592653589793));
  o.set("tiny", JsonValue::number(1e-300));
  o.set("neg", JsonValue::integer(-123456789012345LL));
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::integer(1));
  arr.push_back(JsonValue::number(0.1));
  arr.push_back(JsonValue::boolean(false));
  o.set("arr", std::move(arr));
  JsonValue inner = JsonValue::object();
  inner.set("empty_arr", JsonValue::array());
  inner.set("empty_obj", JsonValue::object());
  o.set("inner", std::move(inner));

  const std::string once = o.dump();
  const std::string twice = JsonValue::parse(once).dump();
  EXPECT_EQ(once, twice);
}

TEST(JsonDump, DoubleExactness) {
  for (double d : {0.1, 1.0 / 3.0, 2.0, 1e17, 5e-324, -0.0}) {
    const std::string s = JsonValue::number(d).dump();
    EXPECT_DOUBLE_EQ(JsonValue::parse(s).as_double(), d) << s;
  }
}

TEST(JsonDump, CompactIsSingleLineAndExact) {
  const std::string text =
      R"({"name": "x \"q\"", "n": -3, "d": 0.1, "flag": true, "nil": null,)"
      R"( "arr": [1, 2.5, "s"], "obj": {"k": [{}]}, "empty": []})";
  const JsonValue v = JsonValue::parse(text);
  const std::string compact = v.dump_compact();
  // One line, no pretty-printing whitespace, no trailing newline.
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  EXPECT_EQ(compact,
            "{\"name\":\"x \\\"q\\\"\",\"n\":-3,\"d\":0.1,\"flag\":true,"
            "\"nil\":null,\"arr\":[1,2.5,\"s\"],\"obj\":{\"k\":[{}]},"
            "\"empty\":[]}");
  // Numbers keep dump()'s shortest-round-trip formatting: re-parsing and
  // pretty-printing matches the original's dump exactly.
  EXPECT_EQ(JsonValue::parse(compact).dump(), v.dump());
}

TEST(JsonValue, TypeErrors) {
  EXPECT_THROW(JsonValue::integer(1).as_string(), std::runtime_error);
  EXPECT_THROW(JsonValue::string("x").as_int(), std::runtime_error);
  EXPECT_THROW(JsonValue::number(1.5).as_int(), std::runtime_error);
  EXPECT_THROW(JsonValue::string("x").as_u64(), std::runtime_error);
  // Negative int tokens are the serialized form of large uint64 values.
  EXPECT_EQ(JsonValue::integer(-1).as_u64(), ~0ull);
  EXPECT_THROW(JsonValue::object().items(), std::runtime_error);
  EXPECT_THROW(JsonValue::array().at("k"), std::runtime_error);
}

TEST(JsonWriter, MatchesHandwrittenLayout) {
  // The exact shape perf_report emitted before the writer existed
  // (2-space indent, "key": value, closing brace on its own line).
  JsonWriter w;
  w.begin_object();
  w.field_int("schema", 2);
  w.field_bool("smoke", false);
  w.begin_object("anneal");
  w.field_fmt("moves_per_sec", "%.1f", 1234.56);
  w.field_fmt("accept_rate", "%.4f", 0.25);
  w.end();
  w.begin_array("tags");
  w.elem_string("a");
  w.elem_fmt("%.2f", 1.5);
  w.end();
  w.field_string("note", "x\"y");
  w.end();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"schema\": 2,\n"
            "  \"smoke\": false,\n"
            "  \"anneal\": {\n"
            "    \"moves_per_sec\": 1234.6,\n"
            "    \"accept_rate\": 0.2500\n"
            "  },\n"
            "  \"tags\": [\n"
            "    \"a\",\n"
            "    1.50\n"
            "  ],\n"
            "  \"note\": \"x\\\"y\"\n"
            "}\n");
  // And it parses.
  EXPECT_EQ(JsonValue::parse(w.str()).at("schema").as_int(), 2);
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.begin_object("o");
  w.end();
  w.begin_array("a");
  w.end();
  w.end();
  EXPECT_EQ(w.str(), "{\n  \"o\": {},\n  \"a\": []\n}\n");
}

}  // namespace
}  // namespace netsmith::util
