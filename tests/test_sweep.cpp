#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include "routing/channel_load.hpp"
#include "topo/builders.hpp"

namespace netsmith::sim {
namespace {

TEST(DefaultRates, MonotoneAndBounded) {
  const auto rates = default_rates(0.2, 10);
  ASSERT_EQ(rates.size(), 10u);
  for (std::size_t i = 1; i < rates.size(); ++i)
    EXPECT_GT(rates[i], rates[i - 1]);
  EXPECT_GT(rates.front(), 0.0);
  EXPECT_NEAR(rates.back(), 0.2, 1e-12);
}

class SweepTest : public ::testing::Test {
 protected:
  static SimConfig cfg() {
    SimConfig c;
    c.warmup = 1500;
    c.measure = 4000;
    c.drain = 10000;
    return c;
  }
};

TEST_F(SweepTest, ZeroLoadAndSaturationPopulated) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = core::plan_network(topo::build_folded_torus(lay), lay,
                                       core::RoutingPolicy::kMclb, 6);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  const auto r = sweep_to_saturation(plan, t, cfg(), 3.0, /*points=*/6);
  EXPECT_GT(r.zero_load_latency_cycles, 5.0);
  EXPECT_NEAR(r.zero_load_latency_ns, r.zero_load_latency_cycles / 3.0, 1e-9);
  EXPECT_GT(r.saturation_pkt_node_cycle, 0.0);
  EXPECT_EQ(r.points.size(), 6u);
}

TEST_F(SweepTest, SaturationBelowOccupancyBound) {
  // The measured saturation (packets/node/cycle, avg 5 flits/packet) cannot
  // exceed the flit-level occupancy bound.
  const auto lay = topo::Layout::noi_4x5();
  const auto g = topo::build_folded_torus(lay);
  const auto plan =
      core::plan_network(g, lay, core::RoutingPolicy::kMclb, 6);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  const auto r = sweep_to_saturation(plan, t, cfg(), 3.0, 6);
  const double avg_flits = 1 + 0.5 * 8;  // 50/50 ctrl(1)/data(9)
  EXPECT_LE(r.saturation_pkt_node_cycle * avg_flits,
            routing::occupancy_bound(g) * 1.15);
}

TEST_F(SweepTest, NsUnitsConsistent) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = core::plan_network(topo::build_mesh(lay), lay,
                                       core::RoutingPolicy::kMclb, 6);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  const auto r = injection_sweep(plan, t, cfg(), 2.5, {0.01, 0.02});
  for (const auto& pt : r.points) {
    EXPECT_NEAR(pt.latency_ns, pt.stats.avg_latency_cycles / 2.5, 1e-9);
    EXPECT_NEAR(pt.accepted_pkt_node_ns, pt.stats.accepted * 2.5, 1e-9);
  }
}

TEST_F(SweepTest, BetterTopologyHigherSaturation) {
  // Folded torus should saturate later than the mesh (more links, shorter
  // routes) under identical conditions.
  const auto lay = topo::Layout::noi_4x5();
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  const auto mesh = sweep_to_saturation(
      core::plan_network(topo::build_mesh(lay), lay,
                         core::RoutingPolicy::kMclb, 6),
      t, cfg(), 3.0, 8);
  const auto ft = sweep_to_saturation(
      core::plan_network(topo::build_folded_torus(lay), lay,
                         core::RoutingPolicy::kMclb, 6),
      t, cfg(), 3.0, 8);
  EXPECT_GT(ft.saturation_pkt_node_cycle, mesh.saturation_pkt_node_cycle);
}

}  // namespace
}  // namespace netsmith::sim
