#include "core/objective.hpp"

#include <gtest/gtest.h>

#include "sim/traffic.hpp"

namespace netsmith::core {
namespace {

int single_dest(const util::Matrix<double>& w, int s) {
  int dest = -1;
  for (std::size_t d = 0; d < w.cols(); ++d)
    if (w(s, d) > 0) {
      EXPECT_EQ(dest, -1) << "multiple destinations for " << s;
      dest = static_cast<int>(d);
    }
  return dest;
}

TEST(BitComplement, MirrorsIndex) {
  const auto w = bit_complement_pattern(20);
  EXPECT_EQ(single_dest(w, 0), 19);
  EXPECT_EQ(single_dest(w, 7), 12);
  EXPECT_EQ(single_dest(w, 19), 0);
}

TEST(BitComplement, IsInvolution) {
  const int n = 16;
  const auto w = bit_complement_pattern(n);
  for (int s = 0; s < n; ++s) {
    const int d = single_dest(w, s);
    if (d >= 0) EXPECT_EQ(single_dest(w, d), s);
  }
}

TEST(BitReverse, PowerOfTwoIsPermutation) {
  const int n = 16;
  const auto w = bit_reverse_pattern(n);
  std::vector<int> indeg(n, 0);
  for (int s = 0; s < n; ++s) {
    const int d = single_dest(w, s);
    if (d >= 0) ++indeg[d];
  }
  for (int d = 0; d < n; ++d) EXPECT_LE(indeg[d], 1);
  // 0b0001 -> 0b1000.
  EXPECT_EQ(bit_reverse_dest(1, 16), 8);
  EXPECT_EQ(bit_reverse_dest(3, 16), 12);
}

TEST(BitReverse, NonPowerOfTwoStaysInRange) {
  const int n = 20;
  for (int s = 0; s < n; ++s) {
    const int d = bit_reverse_dest(s, n);
    EXPECT_GE(d, 0);
    EXPECT_LT(d, n);
  }
}

TEST(Tornado, HalfwayShift) {
  const int n = 20;
  const auto w = tornado_pattern(n);
  EXPECT_EQ(single_dest(w, 0), 9);   // ceil(20/2) - 1 = 9
  EXPECT_EQ(single_dest(w, 15), 4);  // wraps
}

TEST(Neighbor, RingShift) {
  const int n = 20;
  const auto w = neighbor_pattern(n);
  for (int s = 0; s < n; ++s) EXPECT_EQ(single_dest(w, s), (s + 1) % n);
}

TEST(Transpose, SwapsGridCoordinates) {
  const auto lay = topo::Layout::noi_4x5();
  const auto w = transpose_pattern(lay);
  // (1, 2) -> (2, 1).
  EXPECT_EQ(single_dest(w, lay.id(1, 2)), lay.id(2, 1));
  // Diagonal nodes map to themselves: no flow.
  EXPECT_EQ(single_dest(w, lay.id(0, 0)), -1);
  EXPECT_EQ(single_dest(w, lay.id(3, 3)), -1);
}

TEST(Transpose, ClampsOutOfRange) {
  const auto lay = topo::Layout::noi_4x5();
  const auto w = transpose_pattern(lay);
  // Column 4 transposes to "row 4", clamped to row 3.
  const int s = lay.id(0, 4);
  EXPECT_EQ(single_dest(w, s), lay.id(3, 0));
}

TEST(TrafficFromPattern, WiresCustomConfig) {
  const int n = 20;
  const auto t = sim::traffic_from_pattern(tornado_pattern(n), 0.02);
  EXPECT_EQ(t.kind, sim::TrafficKind::kCustom);
  EXPECT_DOUBLE_EQ(t.injection_rate, 0.02);
  EXPECT_EQ(t.custom.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(t.sources.size(), static_cast<std::size_t>(n));  // tornado: all inject
  for (int s = 0; s < n; ++s) {
    ASSERT_EQ(t.custom[s].size(), 1u);
    EXPECT_EQ(t.custom[s][0].first, (s + 9) % n);
  }
}

TEST(TrafficFromPattern, IdleNodesExcluded) {
  util::Matrix<double> w(4, 4, 0.0);
  w(0, 1) = 2.0;
  const auto t = sim::traffic_from_pattern(w, 0.1);
  EXPECT_EQ(t.sources, (std::vector<int>{0}));
  EXPECT_TRUE(t.custom[1].empty());
}

}  // namespace
}  // namespace netsmith::core
