#include "power/dsent_lite.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"

namespace netsmith::power {
namespace {

const topo::Layout kLay = topo::Layout::noi_4x5();

TEST(DsentLite, MeshBaselinePositive) {
  const auto pa = estimate(topo::build_mesh(kLay), kLay, 3.6, 0.1, 6);
  EXPECT_GT(pa.dynamic_mw, 0.0);
  EXPECT_GT(pa.leakage_mw, 0.0);
  EXPECT_GT(pa.router_area_mm2, 0.0);
  EXPECT_GT(pa.wire_area_mm2, 0.0);
}

TEST(DsentLite, LeakageComparableToDynamic) {
  // Paper SV-D: "the leakage is comparable to the dynamic power".
  const auto pa = estimate(topo::build_folded_torus(kLay), kLay, 3.0, 0.1, 6);
  EXPECT_GT(pa.leakage_mw / pa.dynamic_mw, 0.2);
  EXPECT_LT(pa.leakage_mw / pa.dynamic_mw, 5.0);
}

TEST(DsentLite, WireAreaDominatesRouterArea) {
  // Paper Fig. 9: "The total wire area is the dominant fraction".
  const auto pa = estimate(topo::build_folded_torus(kLay), kLay, 3.0, 0.1, 6);
  EXPECT_GT(pa.wire_area_mm2, pa.router_area_mm2);
}

TEST(DsentLite, DynamicScalesWithClock) {
  const auto g = topo::build_folded_torus(kLay);
  const auto fast = estimate(g, kLay, 3.6, 0.1, 6);
  const auto slow = estimate(g, kLay, 2.7, 0.1, 6);
  EXPECT_NEAR(fast.dynamic_mw / slow.dynamic_mw, 3.6 / 2.7, 1e-9);
  // Leakage is clock independent.
  EXPECT_NEAR(fast.leakage_mw, slow.leakage_mw, 1e-9);
}

TEST(DsentLite, DynamicScalesWithActivity) {
  const auto g = topo::build_folded_torus(kLay);
  const auto lo = estimate(g, kLay, 3.0, 0.05, 6);
  const auto hi = estimate(g, kLay, 3.0, 0.10, 6);
  EXPECT_NEAR(hi.dynamic_mw / lo.dynamic_mw, 2.0, 1e-9);
}

TEST(DsentLite, MoreWiresMoreLeakageAndArea) {
  const auto mesh = estimate(topo::build_mesh(kLay), kLay, 3.0, 0.1, 6);
  const auto torus = estimate(topo::build_folded_torus(kLay), kLay, 3.0, 0.1, 6);
  EXPECT_GT(torus.wire_area_mm2, mesh.wire_area_mm2);
  EXPECT_GT(torus.leakage_mw, mesh.leakage_mw);
}

TEST(DsentLite, MoreVcsMoreLeakage) {
  const auto g = topo::build_mesh(kLay);
  const auto v4 = estimate(g, kLay, 3.0, 0.1, 4);
  const auto v10 = estimate(g, kLay, 3.0, 0.1, 10);
  EXPECT_GT(v10.leakage_mw, v4.leakage_mw);
}

TEST(DsentLite, NoiStaysMinimallyActive) {
  // Paper SV-D: NetSmith NoIs occupy < 3% of interposer area. Interposer
  // for a 4x5 layout at 2mm pitch is roughly (5*2)x(4*2) = 80 mm^2 per
  // quadrant scale; use the full 8x10mm = 80mm^2 x4 = 320 mm2 estimate.
  const auto pa = estimate(topo::build_folded_torus(kLay), kLay, 3.0, 0.1, 6);
  const double interposer_mm2 = (kLay.cols * kLay.pitch_mm + 2) *
                                (kLay.rows * kLay.pitch_mm + 2) * 4.0;
  EXPECT_LT(pa.router_area_mm2 / interposer_mm2, 0.03);
}

}  // namespace
}  // namespace netsmith::power
