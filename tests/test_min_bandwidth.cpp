// C7: minimum sparsest-cut bandwidth as a hard synthesis constraint
// combined with the latency objective (paper Table I, "combined measures").

#include <gtest/gtest.h>

#include "core/netsmith.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"

namespace netsmith::core {
namespace {

TEST(MinBandwidth, ConstraintHonoredOnTinyInstance) {
  SynthesisConfig cfg;
  cfg.layout = topo::Layout{2, 3, 2.0};
  cfg.link_class = topo::LinkClass::kMedium;
  cfg.radix = 3;
  cfg.objective = Objective::kLatOp;
  cfg.time_limit_s = 2.0;
  cfg.restarts = 2;
  cfg.seed = 17;

  // Unconstrained latency optimum and its bandwidth.
  const auto free_run = synthesize(cfg);
  const double free_bw = topo::sparsest_cut_exact(free_run.graph).bandwidth;

  // Achievable bandwidth ceiling from a SCOp run.
  cfg.objective = Objective::kSCOp;
  const auto scop = synthesize(cfg);
  const double max_bw = scop.objective_value;
  if (max_bw <= free_bw + 1e-9)
    GTEST_SKIP() << "latency optimum already bandwidth-optimal here";

  // Demand more bandwidth than the latency optimum provides, but an amount
  // SCOp proved achievable.
  cfg.objective = Objective::kLatOp;
  cfg.min_cut_bandwidth = 0.5 * (free_bw + max_bw);
  const auto constrained = synthesize(cfg);
  const double got = topo::sparsest_cut_exact(constrained.graph).bandwidth;
  EXPECT_GE(got + 1e-9, cfg.min_cut_bandwidth);
  // The latency can only get worse (or stay equal) under the extra
  // constraint.
  EXPECT_GE(constrained.objective_value + 1e-9, free_run.objective_value);
}

TEST(MinBandwidth, TrivialConstraintChangesNothingStructural) {
  SynthesisConfig cfg;
  cfg.layout = topo::Layout{2, 3, 2.0};
  cfg.link_class = topo::LinkClass::kMedium;
  cfg.radix = 3;
  cfg.objective = Objective::kLatOp;
  cfg.time_limit_s = 1.5;
  cfg.restarts = 2;
  cfg.seed = 18;
  cfg.min_cut_bandwidth = 0.01;  // any connected topology clears this
  const auto r = synthesize(cfg);
  EXPECT_TRUE(topo::strongly_connected(r.graph));
  EXPECT_GE(topo::sparsest_cut_exact(r.graph).bandwidth, 0.01);
}

TEST(MinBandwidth, WorksAtPaperScale) {
  SynthesisConfig cfg;
  cfg.layout = topo::Layout::noi_4x5();
  cfg.link_class = topo::LinkClass::kMedium;
  cfg.objective = Objective::kLatOp;
  cfg.time_limit_s = 6.0;
  cfg.restarts = 2;
  cfg.seed = 19;
  cfg.min_cut_bandwidth = 0.085;  // above the FT's 1/12, below the class UB
  const auto r = synthesize(cfg);
  EXPECT_GE(topo::sparsest_cut_exact(r.graph).bandwidth + 1e-9, 0.085);
  // Should still deliver decent latency (better than folded torus).
  EXPECT_LT(r.objective_value, 2.32);
}

}  // namespace
}  // namespace netsmith::core
