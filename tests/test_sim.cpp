#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"
#include "topo/metrics.hpp"
#include "vc/layers.hpp"

namespace netsmith::sim {
namespace {

core::NetworkPlan plan_for(const topo::DiGraph& g, const topo::Layout& lay,
                           core::RoutingPolicy pol = core::RoutingPolicy::kMclb) {
  return core::plan_network(g, lay, pol, /*num_vcs=*/6);
}

SimConfig quick_cfg() {
  SimConfig cfg;
  cfg.warmup = 2000;
  cfg.measure = 6000;
  cfg.drain = 20000;
  cfg.seed = 3;
  return cfg;
}

TEST(Sim, ConservationAtLowLoad) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_folded_torus(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.01;
  const auto s = simulate(plan, t, quick_cfg());
  EXPECT_GT(s.total_injected, 0);
  // All tagged packets must drain at this trivial load.
  EXPECT_EQ(s.tagged_completed, s.tagged_injected);
  EXPECT_FALSE(s.saturated);
}

TEST(Sim, ZeroLoadLatencyNearHopModel) {
  const auto lay = topo::Layout::noi_4x5();
  const auto g = topo::build_folded_torus(lay);
  const auto plan = plan_for(g, lay);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.001;
  t.data_fraction = 0.0;  // 1-flit packets only: no serialization term
  const auto s = simulate(plan, t, quick_cfg());
  // Per hop: 2-cycle router + 1-cycle link; ~avg 2.32 hops + eject cycle.
  const double hop_model = topo::average_hops(g) * 3.0;
  EXPECT_GT(s.avg_latency_cycles, hop_model * 0.8);
  EXPECT_LT(s.avg_latency_cycles, hop_model + 6.0);
}

TEST(Sim, LatencyIncreasesWithLoad) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_folded_torus(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  double last = 0.0;
  for (const double rate : {0.005, 0.03, 0.06}) {
    t.injection_rate = rate;
    const auto s = simulate(plan, t, quick_cfg());
    EXPECT_GE(s.avg_latency_cycles, last - 1.0) << "rate " << rate;
    last = s.avg_latency_cycles;
  }
}

TEST(Sim, SaturatesAtAbsurdRate) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_mesh(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.9;  // way past any bound
  auto cfg = quick_cfg();
  cfg.drain = 4000;
  const auto s = simulate(plan, t, cfg);
  EXPECT_TRUE(s.saturated);
  // Accepted throughput is bounded well below offered.
  EXPECT_LT(s.accepted, 0.5);
}

TEST(Sim, AcceptedTracksOfferedBelowSaturation) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_folded_torus(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.02;
  const auto s = simulate(plan, t, quick_cfg());
  EXPECT_NEAR(s.accepted, 0.02, 0.004);
}

TEST(Sim, MemoryTrafficGeneratesReplies) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_folded_torus(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kMemory;
  t.mc_nodes = mc_nodes(lay);
  t.injection_rate = 0.005;
  const auto s = simulate(plan, t, quick_cfg());
  // Replies double the packet count relative to requests.
  EXPECT_GT(s.total_ejected, 0);
  EXPECT_EQ(s.tagged_completed, s.tagged_injected);
  EXPECT_GT(s.tagged_injected, 0);
}

TEST(Sim, DeterministicForSeed) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_folded_torus(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.03;
  const auto a = simulate(plan, t, quick_cfg());
  const auto b = simulate(plan, t, quick_cfg());
  EXPECT_EQ(a.total_injected, b.total_injected);
  EXPECT_EQ(a.tagged_completed, b.tagged_completed);
  EXPECT_DOUBLE_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
}

TEST(Sim, ShuffleTrafficRuns) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_folded_torus(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kShuffle;
  t.injection_rate = 0.02;
  const auto s = simulate(plan, t, quick_cfg());
  EXPECT_GT(s.total_injected, 0);
  EXPECT_EQ(s.tagged_completed, s.tagged_injected);
}

TEST(Sim, NdbtPlanAlsoRuns) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan =
      plan_for(topo::build_folded_torus(lay), lay, core::RoutingPolicy::kNdbt);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.02;
  const auto s = simulate(plan, t, quick_cfg());
  EXPECT_EQ(s.tagged_completed, s.tagged_injected);
}

TEST(Sim, ExtraEdgeDelayIncreasesLatency) {
  const auto lay = topo::Layout::noi_4x5();
  const auto g = topo::build_folded_torus(lay);
  const auto plan = plan_for(g, lay);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.005;
  auto cfg = quick_cfg();
  const auto base = simulate(plan, t, cfg);
  cfg.extra_edge_delay = util::Matrix<int>(20, 20, 3);
  const auto slowed = simulate(plan, t, cfg);
  EXPECT_GT(slowed.avg_latency_cycles, base.avg_latency_cycles + 2.0);
}

TEST(Sim, VcLayeringVerifiedDeadlockFree) {
  const auto lay = topo::Layout::noi_4x5();
  const auto g = topo::build_folded_torus(lay);
  const auto plan = plan_for(g, lay);
  // The plan the simulator trusts must indeed be acyclic per layer.
  vc::VcAssignment a;
  a.num_layers = plan.vc_layers;
  a.layer.assign(20 * 20, -1);
  for (int s = 0; s < 20; ++s)
    for (int d = 0; d < 20; ++d) {
      if (s == d) continue;
      const int vcid = plan.vc_map.vc[s * 20 + d];
      a.layer[s * 20 + d] = plan.vc_map.layer_of_vc[vcid];
    }
  EXPECT_TRUE(vc::verify_acyclic(a, plan.table, g));
}

}  // namespace
}  // namespace netsmith::sim
