// Conservation invariants of the flit-level simulator, checked in both
// reference and optimized modes:
//  - always: flits injected == flits ejected + buffered + in-flight, and
//    every credit counter mirrors the free slots of its buffer,
//  - after a full drain: no residual flits anywhere, credits restored to
//    buf_flits (credits_consistent with empty buffers), all VC owners null.

#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "topo/builders.hpp"

namespace netsmith::sim {
namespace {

void expect_conservation(const SimStats& s) {
  EXPECT_EQ(s.flits_injected,
            s.flits_ejected + s.flits_buffered_end + s.flits_inflight_end);
  EXPECT_TRUE(s.credits_consistent);
}

void expect_quiesced(const SimStats& s) {
  expect_conservation(s);
  EXPECT_EQ(s.flits_buffered_end, 0);
  EXPECT_EQ(s.flits_inflight_end, 0);
  EXPECT_EQ(s.source_flits_end, 0);
  EXPECT_TRUE(s.owners_clear);
  EXPECT_EQ(s.flits_injected, s.flits_ejected);
  EXPECT_GT(s.flits_injected, 0);
}

core::NetworkPlan plan_for(const topo::DiGraph& g, const topo::Layout& lay) {
  return core::plan_network(g, lay, core::RoutingPolicy::kMclb, /*num_vcs=*/6);
}

class SimInvariants : public ::testing::TestWithParam<bool> {};

TEST_P(SimInvariants, DrainedNetworkIsQuiesced) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_folded_torus(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.02;
  SimConfig cfg;
  cfg.warmup = 1000;
  cfg.measure = 3000;
  cfg.drain = 30000;
  cfg.seed = 21;
  cfg.reference_mode = GetParam();
  const auto s = simulate(plan, t, cfg);
  ASSERT_EQ(s.tagged_completed, s.tagged_injected);
  expect_quiesced(s);
}

TEST_P(SimInvariants, MemoryTrafficDrainsWithReplies) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_folded_torus(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kMemory;
  t.mc_nodes = mc_nodes(lay);
  t.injection_rate = 0.008;
  SimConfig cfg;
  cfg.warmup = 1000;
  cfg.measure = 3000;
  cfg.drain = 30000;
  cfg.seed = 22;
  cfg.reference_mode = GetParam();
  const auto s = simulate(plan, t, cfg);
  ASSERT_EQ(s.tagged_completed, s.tagged_injected);
  expect_quiesced(s);
}

TEST_P(SimInvariants, SaturatedCutoffStillConserves) {
  // A saturated run cut off mid-flight: flits are left in buffers, on wires
  // and in source queues, but the conservation equation and credit mirror
  // must still hold exactly.
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_mesh(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.7;
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 2000;
  cfg.drain = 500;  // deliberately too short to drain
  cfg.seed = 23;
  cfg.reference_mode = GetParam();
  const auto s = simulate(plan, t, cfg);
  EXPECT_TRUE(s.saturated);
  EXPECT_GT(s.flits_buffered_end + s.flits_inflight_end + s.source_flits_end, 0);
  expect_conservation(s);
}

TEST_P(SimInvariants, TinyBuffersDrainClean) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = plan_for(topo::build_folded_torus(lay), lay);
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = 0.02;
  SimConfig cfg;
  cfg.buf_flits = 2;
  cfg.warmup = 1000;
  cfg.measure = 3000;
  cfg.drain = 40000;
  cfg.seed = 24;
  cfg.reference_mode = GetParam();
  const auto s = simulate(plan, t, cfg);
  ASSERT_EQ(s.tagged_completed, s.tagged_injected);
  expect_quiesced(s);
}

INSTANTIATE_TEST_SUITE_P(BothModes, SimInvariants, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Reference" : "Optimized";
                         });

}  // namespace
}  // namespace netsmith::sim
