// Delta-APSP correctness: under randomized single-edge and batched
// (annealer-style rewire) edit sequences, the incrementally maintained
// distance rows must stay bit-identical to a from-scratch apsp_bfs after
// every commit AND every rollback, across the one-word/multi-word BitBfs
// boundary. Landmark mode is checked against the same oracle restricted to
// the sampled sources, and the landmark-scored annealer is checked to only
// ever report exactly re-scored incumbents.

#include "topo/delta_apsp.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/anneal.hpp"
#include "topo/builders.hpp"
#include "topo/graph.hpp"
#include "topo/metrics.hpp"
#include "util/rng.hpp"

namespace netsmith::topo {
namespace {

DiGraph random_graph(int n, double p, util::Rng& rng) {
  DiGraph g(n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (i != j && rng.bernoulli(p)) g.add_edge(i, j);
  return g;
}

// Engine rows + maintained aggregates vs a from-scratch BFS oracle.
::testing::AssertionResult matches_oracle(const DeltaApsp& e,
                                          const DiGraph& g) {
  const auto oracle = apsp_bfs(g);
  std::int64_t sum = 0;
  long unreach = 0;
  for (int r = 0; r < e.num_sources(); ++r) {
    const int s = e.sources()[static_cast<std::size_t>(r)];
    for (int j = 0; j < e.num_nodes(); ++j) {
      const int got = e.rows()(static_cast<std::size_t>(r),
                               static_cast<std::size_t>(j));
      const int want = oracle(static_cast<std::size_t>(s),
                              static_cast<std::size_t>(j));
      if (got != want)
        return ::testing::AssertionFailure()
               << "row for source " << s << ", target " << j << ": got " << got
               << ", oracle " << want;
      if (j == s) continue;
      if (want >= kUnreachable)
        ++unreach;
      else
        sum += want;
    }
  }
  if (e.hop_sum() != sum)
    return ::testing::AssertionFailure()
           << "hop_sum " << e.hop_sum() << " != oracle " << sum;
  if (e.unreachable() != unreach)
    return ::testing::AssertionFailure()
           << "unreachable " << e.unreachable() << " != oracle " << unreach;
  return ::testing::AssertionSuccess();
}

// One annealer-style step: a batch of 1-2 random edits (remove and/or add),
// applied to the graph and the engine, then committed or rolled back with
// probability 1/2. Returns false if no edit was possible.
bool random_step(DiGraph& g, DeltaApsp& e, util::Rng& rng) {
  const int n = g.num_nodes();
  std::vector<DeltaApsp::EdgeChange> changes;
  const double r = rng.uniform();
  if (r < 0.7 && g.num_directed_edges() > 0) {  // remove one existing edge
    const auto edges = g.edges();
    const auto [u, v] =
        edges[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(edges.size()) - 1))];
    g.remove_edge(u, v);
    changes.push_back({u, v, false});
  }
  if (r >= 0.3) {  // add one absent edge (rewire when combined with a remove)
    for (int attempt = 0; attempt < 32; ++attempt) {
      const int u = static_cast<int>(rng.uniform_int(0, n - 1));
      const int v = static_cast<int>(rng.uniform_int(0, n - 1));
      if (u == v || g.has_edge(u, v)) continue;
      g.add_edge(u, v);
      changes.push_back({u, v, true});
      break;
    }
  }
  if (changes.empty()) return false;
  e.apply(g, changes.data(), static_cast<int>(changes.size()));
  if (rng.bernoulli(0.5)) {
    e.commit();
  } else {
    e.rollback();
    for (std::size_t i = changes.size(); i-- > 0;) {
      if (changes[i].added)
        g.remove_edge(changes[i].u, changes[i].v);
      else
        g.add_edge(changes[i].u, changes[i].v);
    }
  }
  return true;
}

class DeltaApspRandom : public ::testing::TestWithParam<int> {};

TEST_P(DeltaApspRandom, EditSequenceBitExactVsApsp) {
  const int n = GetParam();
  util::Rng rng(0xDE17A + n);
  const int steps = n <= 65 ? 120 : 40;
  const double densities[] = {1.5 / n, 3.0 / n, 0.2};
  for (int d = 0; d < 3; ++d) {
    DiGraph g = random_graph(n, densities[d], rng);
    DeltaApsp e(n);
    e.rebuild(g);
    ASSERT_TRUE(matches_oracle(e, g)) << "n=" << n << " density#" << d;
    for (int step = 0; step < steps; ++step) {
      if (!random_step(g, e, rng)) continue;
      ASSERT_TRUE(matches_oracle(e, g))
          << "n=" << n << " density#" << d << " step=" << step;
    }
  }
}

TEST_P(DeltaApspRandom, LandmarkRowsBitExactVsApsp) {
  const int n = GetParam();
  if (n < 8) GTEST_SKIP() << "landmark sampling needs k < n headroom";
  util::Rng rng(0x1A17D + n);
  // A fixed sample of k = n/4 sources, including the boundary ids.
  std::vector<int> sources{0, n - 1};
  for (int s = 3; static_cast<int>(sources.size()) < std::max(3, n / 4);
       s += 4)
    sources.push_back(s);
  DiGraph g = random_graph(n, 3.0 / n, rng);
  DeltaApsp e(n, sources);
  ASSERT_FALSE(e.full());
  e.rebuild(g);
  ASSERT_TRUE(matches_oracle(e, g));
  for (int step = 0; step < 80; ++step) {
    if (!random_step(g, e, rng)) continue;
    ASSERT_TRUE(matches_oracle(e, g)) << "n=" << n << " step=" << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeltaApspRandom,
                         ::testing::Values(7, 48, 65, 130, 260));

TEST(DeltaApsp, InitReusesStorageAcrossRestarts) {
  util::Rng rng(0xC0FFEE);
  DeltaApsp e(48);
  for (int restart = 0; restart < 3; ++restart) {
    DiGraph g = random_graph(48, 3.0 / 48, rng);
    e.init(48);  // same shape: storage reused, state reset
    e.rebuild(g);
    EXPECT_EQ(e.resweeps(), 0);  // rebuild is not counted as delta work
    for (int step = 0; step < 20; ++step) random_step(g, e, rng);
    ASSERT_TRUE(matches_oracle(e, g)) << "restart=" << restart;
  }
}

TEST(DeltaApsp, ResweepsFarBelowFullSweepEquivalent) {
  // The point of the engine: per-move row re-sweeps must be a small fraction
  // of n even on a sparse graph where single edits have wide blast radii.
  const int n = 130;
  util::Rng rng(0x5CA1E);
  DiGraph g = random_graph(n, 3.0 / n, rng);
  DeltaApsp e(n);
  e.rebuild(g);
  int applied = 0;
  for (int step = 0; step < 200; ++step)
    if (random_step(g, e, rng)) ++applied;
  ASSERT_GT(applied, 0);
  const double full_equiv = static_cast<double>(applied) * n;
  EXPECT_LT(static_cast<double>(e.resweeps()), 0.5 * full_equiv)
      << "resweeps=" << e.resweeps() << " over " << applied << " moves";
}

}  // namespace
}  // namespace topo

// --- Landmark-scored annealing: incumbents must be exact -------------------

namespace netsmith::core {
namespace {

SynthesisConfig scale_cfg(Objective obj, int rows, int cols) {
  SynthesisConfig cfg;
  cfg.layout = topo::Layout{rows, cols, 2.0};
  cfg.link_class = topo::LinkClass::kMedium;
  cfg.radix = 4;
  cfg.objective = obj;
  cfg.time_limit_s = 60.0;  // move budget terminates first
  cfg.restarts = 2;
  cfg.seed = 23;
  return cfg;
}

TEST(LandmarkAnneal, IncumbentObjectiveIsExact) {
  const auto cfg = scale_cfg(Objective::kLatOp, 8, 6);
  AnnealOptions ao;
  ao.max_moves = 4000;
  ao.landmark_sources = 12;
  const auto r = anneal_synthesize(cfg, ao);
  // The estimate only steers: the reported objective must equal the exact
  // average hops of the returned graph to the last bit, and the incumbent
  // path must actually have taken the exact-re-score branch.
  EXPECT_EQ(r.objective_value, topo::average_hops(r.graph));
  EXPECT_TRUE(topo::strongly_connected(r.graph));
  EXPECT_GT(r.exact_rescores, 0);
}

TEST(LandmarkAnneal, ParallelRestartsBitExact) {
  const auto cfg = scale_cfg(Objective::kLatOp, 8, 6);
  AnnealOptions serial;
  serial.max_moves = 3000;
  serial.landmark_sources = 12;
  serial.threads = 1;
  AnnealOptions parallel = serial;
  parallel.threads = 4;
  const auto a = anneal_synthesize(cfg, serial);
  const auto b = anneal_synthesize(cfg, parallel);
  EXPECT_TRUE(a.graph == b.graph);
  EXPECT_EQ(a.objective_value, b.objective_value);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.apsp_resweeps, b.apsp_resweeps);
  EXPECT_EQ(a.exact_rescores, b.exact_rescores);
}

TEST(LandmarkAnneal, FullModeReportsResweepAccounting) {
  const auto cfg = scale_cfg(Objective::kLatOp, 2, 3);
  AnnealOptions ao;
  ao.max_moves = 1500;
  const auto r = anneal_synthesize(cfg, ao);
  EXPECT_GT(r.apsp_resweeps, 0);
  EXPECT_EQ(r.exact_rescores, 0);  // no landmark mode, no re-score path
}

}  // namespace
}  // namespace netsmith::core
