#include "routing/channel_load.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"

namespace netsmith::routing {
namespace {

TEST(ChannelLoad, LoadsSumToTotalHops) {
  // Sum of (normalized loads) * (n-1) == total hops of all routes.
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto rt = RoutingTable::select_first(enumerate_shortest_paths(g));
  const auto a = analyze_uniform(rt);
  double sum = 0.0;
  for (int i = 0; i < 20; ++i)
    for (int j = 0; j < 20; ++j) sum += a.load(i, j);
  const auto dist = topo::apsp_bfs(g);
  EXPECT_NEAR(sum * 19.0, static_cast<double>(topo::total_hops(dist)), 1e-6);
}

TEST(ChannelLoad, FractionalSplitsEvenly) {
  // 2x2 mesh, corner flows split over two paths: each path edge gets half.
  const topo::Layout lay{2, 2, 2.0};
  const auto g = topo::build_mesh(lay);
  const auto ps = enumerate_shortest_paths(g);
  const auto a = analyze_uniform_fractional(ps);
  // Every directed mesh edge carries: 1 one-hop flow (w=1/3) + half of one
  // two-hop flow's two alternatives... total symmetric load.
  double mx = 0, mn = 1e9;
  for (const auto& [i, j] : g.edges()) {
    mx = std::max(mx, a.load(i, j));
    mn = std::min(mn, a.load(i, j));
  }
  EXPECT_NEAR(mx, mn, 1e-12);  // perfect symmetry
}

TEST(ChannelLoad, ThroughputBoundInverseOfMaxLoad) {
  const auto g = topo::build_mesh(topo::Layout::noi_4x5());
  const auto rt = RoutingTable::select_first(enumerate_shortest_paths(g));
  const auto a = analyze_uniform(rt);
  EXPECT_GT(a.max_load, 0.0);
  EXPECT_NEAR(a.throughput_bound(), 1.0 / a.max_load, 1e-12);
}

TEST(OccupancyBound, FormulaMatches) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const double expected =
      g.num_directed_edges() / (topo::average_hops(g) * g.num_nodes());
  EXPECT_NEAR(occupancy_bound(g), expected, 1e-12);
}

TEST(CutBound, FoldedTorusMatchesSparsestCut) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  EXPECT_NEAR(cut_bound(g), (1.0 / 12.0) * 19.0, 1e-9);
}

TEST(Bounds, CutNeverAboveOccupancyTimesFactorForGoodTopologies) {
  // Sanity relation on the folded torus: both bounds positive and finite.
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  EXPECT_GT(occupancy_bound(g), 0.0);
  EXPECT_GT(cut_bound(g), 0.0);
}

TEST(PatternLoad, SingleFlowLoadsItsPathOnly) {
  topo::DiGraph g(4);
  g.add_duplex(0, 1);
  g.add_duplex(1, 2);
  g.add_duplex(2, 3);
  const auto rt = RoutingTable::select_first(enumerate_shortest_paths(g));
  util::Matrix<double> w(4, 4, 0.0);
  w(0, 3) = 2.0;
  const auto a = analyze_pattern(rt, w);
  // Normalization: total weight 2 over 4 nodes -> scale = 2, so the single
  // flow carries 4 units across each of its 3 links.
  EXPECT_NEAR(a.load(0, 1), 4.0, 1e-12);
  EXPECT_NEAR(a.load(1, 2), 4.0, 1e-12);
  EXPECT_NEAR(a.load(2, 3), 4.0, 1e-12);
  EXPECT_NEAR(a.load(1, 0), 0.0, 1e-12);
  EXPECT_EQ(a.flows, 1);
}

TEST(PatternLoad, UniformPatternMatchesAnalyzeUniform) {
  const auto g = topo::build_mesh(topo::Layout{2, 3, 2.0});
  const auto rt = RoutingTable::select_first(enumerate_shortest_paths(g));
  util::Matrix<double> w(6, 6, 1.0);
  for (int i = 0; i < 6; ++i) w(i, i) = 0.0;
  const auto pat = analyze_pattern(rt, w);
  const auto uni = analyze_uniform(rt);
  // Uniform weights normalize to exactly the per-flow rate analyze_uniform
  // uses (1/(n-1)), so the load maps must coincide.
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j)
      EXPECT_NEAR(pat.load(i, j), uni.load(i, j), 1e-9);
  EXPECT_NEAR(pat.max_load, uni.max_load, 1e-9);
}

}  // namespace
}  // namespace netsmith::routing
