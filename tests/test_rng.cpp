#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace netsmith::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(4);
  double sum = 0.0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng r(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(10);
  int hits = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(11);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  r.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng r(12);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  r.shuffle(v);
  int fixed = 0;
  for (int i = 0; i < 100; ++i) fixed += v[i] == i;
  EXPECT_LT(fixed, 15);
}

TEST(Rng, PickReturnsElement) {
  Rng r(13);
  const std::vector<int> v{2, 4, 6};
  for (int i = 0; i < 100; ++i) {
    const int p = r.pick(v);
    EXPECT_TRUE(p == 2 || p == 4 || p == 6);
  }
}

TEST(SplitStream, DeterministicPureFunction) {
  EXPECT_EQ(split_stream(42, 0), split_stream(42, 0));
  EXPECT_EQ(split_stream(42, 1000), split_stream(42, 1000));
}

TEST(SplitStream, StreamsDistinctUnderOneSeed) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 4096; ++s) seeds.insert(split_stream(9, s));
  EXPECT_EQ(seeds.size(), 4096u);
}

TEST(SplitStream, SeedsDistinctForOneStream) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 4096; ++s) seeds.insert(split_stream(s, 5));
  EXPECT_EQ(seeds.size(), 4096u);
}

TEST(SplitStream, ChildStreamsDecorrelated) {
  // Adjacent streams must not produce correlated child RNG sequences: the
  // fault scheduler hands stream i to link i.
  Rng a(split_stream(7, 1)), b(split_stream(7, 2));
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(SplitStream, HighBitStreamsDistinct) {
  // Router streams live at 2^63 + r; they must not collide with link
  // streams at small indices.
  constexpr std::uint64_t kRouterBase = 0x8000000000000000ULL;
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 512; ++s) {
    seeds.insert(split_stream(3, s));
    seeds.insert(split_stream(3, kRouterBase + s));
  }
  EXPECT_EQ(seeds.size(), 1024u);
}

class RngRangeTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RngRangeTest, BoundedSamplingStaysInRange) {
  const std::int64_t hi = GetParam();
  Rng r(100 + static_cast<std::uint64_t>(hi));
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, hi);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngRangeTest,
                         ::testing::Values(1, 2, 3, 7, 10, 63, 64, 1000,
                                           1000000));

}  // namespace
}  // namespace netsmith::util
