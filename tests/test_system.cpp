#include "system/chiplet.hpp"
#include "system/workload.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"
#include "topo/metrics.hpp"

namespace netsmith::system {
namespace {

ChipletSystem default_system() {
  const auto lay = topo::Layout::noi_4x5();
  return build_chiplet_system(topo::build_folded_torus(lay), lay);
}

TEST(Chiplet, EightyFourRouters) {
  const auto sys = default_system();
  // Paper SIII-D: "the 84 router, full-system configuration".
  EXPECT_EQ(sys.graph.num_nodes(), 84);
  EXPECT_EQ(sys.noi_n, 20);
  EXPECT_EQ(sys.num_cores, 64);
  EXPECT_EQ(sys.core_routers.size(), 64u);
}

TEST(Chiplet, EightMemoryControllers) {
  const auto sys = default_system();
  EXPECT_EQ(sys.mc_routers.size(), 8u);
  for (int mc : sys.mc_routers) {
    EXPECT_LT(mc, 20);  // MCs live on NoI routers
    const int col = sys.noi_layout.col(mc);
    EXPECT_TRUE(col == 0 || col == 4);
  }
}

TEST(Chiplet, StronglyConnected) {
  EXPECT_TRUE(topo::strongly_connected(default_system().graph));
}

TEST(Chiplet, CdcLinksCarryExtraDelay) {
  const auto sys = default_system();
  int cdc_edges = 0;
  for (const auto& [u, v] : sys.graph.edges()) {
    const bool crosses = (u < sys.noi_n) != (v < sys.noi_n);
    if (crosses) {
      EXPECT_EQ(sys.extra_delay(u, v), 2);
      ++cdc_edges;
    } else {
      EXPECT_EQ(sys.extra_delay(u, v), 0);
    }
  }
  EXPECT_EQ(cdc_edges, 64 * 2);  // one duplex CDC link per core
}

TEST(Chiplet, NoiCoverageMatchesPaper) {
  // Middle three NoI columns each serve 4 cores; edge columns serve 2.
  const auto sys = default_system();
  std::vector<int> cores_per_noi(20, 0);
  for (const auto& [u, v] : sys.graph.edges()) {
    if (u >= sys.noi_n && v < sys.noi_n) ++cores_per_noi[v];
  }
  for (int r = 0; r < 20; ++r) {
    const int col = sys.noi_layout.col(r);
    EXPECT_EQ(cores_per_noi[r], (col == 0 || col == 4) ? 2 : 4) << "router " << r;
  }
}

TEST(Chiplet, MeshEdgesStayInsideChiplets) {
  const auto cfg = ChipletConfig{};
  const auto sys = default_system();
  const int core_cols = cfg.chiplet_cols * cfg.chiplets_x;
  for (const auto& [u, v] : sys.graph.edges()) {
    if (u < sys.noi_n || v < sys.noi_n) continue;  // only NoC-NoC links
    const int cu = u - sys.noi_n, cv = v - sys.noi_n;
    const int chip_u = (cu / core_cols / cfg.chiplet_rows) * cfg.chiplets_x +
                       (cu % core_cols) / cfg.chiplet_cols;
    const int chip_v = (cv / core_cols / cfg.chiplet_rows) * cfg.chiplets_x +
                       (cv % core_cols) / cfg.chiplet_cols;
    EXPECT_EQ(chip_u, chip_v) << "NoC link crosses chiplets";
  }
}

TEST(Chiplet, RejectsMismatchedLayout) {
  EXPECT_THROW(build_chiplet_system(topo::DiGraph(10), topo::Layout::noi_4x5()),
               std::invalid_argument);
}

TEST(Parsec, BenchmarksOrderedByMpki) {
  const auto& b = parsec_benchmarks();
  ASSERT_GE(b.size(), 10u);
  for (std::size_t i = 1; i < b.size(); ++i)
    EXPECT_LE(b[i - 1].mpki, b[i].mpki);
  EXPECT_EQ(b.front().name, "blackscholes");
  EXPECT_EQ(b.back().name, "canneal");
  // vips is excluded, as in the paper.
  for (const auto& bench : b) EXPECT_NE(bench.name, "vips");
}

TEST(Workload, TrafficTargetsMcsOnly) {
  const auto sys = default_system();
  const auto t = workload_traffic(sys, parsec_benchmarks()[3], PerfModel{});
  EXPECT_TRUE(t.custom_reply);
  for (int c : sys.core_routers) {
    ASSERT_EQ(t.custom[c].size(), sys.mc_routers.size());
    for (const auto& [d, w] : t.custom[c]) {
      EXPECT_LT(d, sys.noi_n);
      EXPECT_GT(w, 0.0);
    }
  }
  for (int r = 0; r < sys.noi_n; ++r) EXPECT_TRUE(t.custom[r].empty());
}

TEST(Workload, InjectionRateScalesWithMpki) {
  const auto sys = default_system();
  const PerfModel model;
  const auto low = workload_traffic(sys, {"low", 0.5}, model);
  const auto high = workload_traffic(sys, {"high", 5.0}, model);
  EXPECT_NEAR(high.injection_rate / low.injection_rate, 10.0, 1e-9);
}

TEST(Workload, CpiGrowsWithLatencyAndMpki) {
  // Pure model check (no sim): cpi = base + mpki/1000 * 2*lat / mlp.
  const PerfModel m;
  const Benchmark light{"light", 0.1}, heavy{"heavy", 9.0};
  const double lat = 50.0;
  const double cpi_light = m.cpi_base + light.mpki / 1000.0 * 2 * lat / m.mlp;
  const double cpi_heavy = m.cpi_base + heavy.mpki / 1000.0 * 2 * lat / m.mlp;
  EXPECT_GT(cpi_heavy, cpi_light);
  EXPECT_NEAR(cpi_heavy - m.cpi_base, (cpi_light - m.cpi_base) * 90.0, 1e-9);
  EXPECT_GT(cpi_light, m.cpi_base);
}

}  // namespace
}  // namespace netsmith::system
