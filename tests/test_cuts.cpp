#include "topo/cuts.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "topo/builders.hpp"

namespace netsmith::topo {
namespace {

// Brute-force reference: evaluate every partition explicitly.
Cut brute_sparsest(const DiGraph& g) {
  const int n = g.num_nodes();
  Cut best;
  best.bandwidth = std::numeric_limits<double>::infinity();
  for (std::uint64_t mask = 1; mask < (1ULL << n) - 1; ++mask) {
    const auto c = evaluate_cut(g, mask);
    if (c.bandwidth < best.bandwidth) best = c;
  }
  return best;
}

TEST(EvaluateCut, CountsDirections) {
  DiGraph g(4);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(2, 1);
  const auto c = evaluate_cut(g, 0b0011);  // U = {0,1}
  EXPECT_EQ(c.u_size, 2);
  EXPECT_EQ(c.cross_uv, 2);  // 0->2, 0->3
  EXPECT_EQ(c.cross_vu, 1);  // 2->1
  EXPECT_NEAR(c.bandwidth, 1.0 / 4.0, 1e-12);  // min(2,1)/(2*2)
}

TEST(SparsestCut, FoldedTorus4x5) {
  const auto g = build_folded_torus(Layout::noi_4x5());
  const auto c = sparsest_cut_exact(g);
  // An 8/12 split with 8 crossings is the sparsest: 8/(8*12) = 1/12.
  EXPECT_NEAR(c.bandwidth, 1.0 / 12.0, 1e-9);
}

TEST(SparsestCut, MatchesBruteForceOnSmallGraphs) {
  util::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const Layout lay{2, 4, 2.0};
    const auto g = build_random(lay, LinkClass::kMedium, 3, rng);
    const auto fast = sparsest_cut_exact(g);
    const auto ref = brute_sparsest(g);
    EXPECT_NEAR(fast.bandwidth, ref.bandwidth, 1e-12) << "trial " << trial;
  }
}

TEST(SparsestCut, DisconnectedIsZero) {
  DiGraph g(6);
  g.add_duplex(0, 1);
  g.add_duplex(1, 2);
  g.add_duplex(3, 4);
  g.add_duplex(4, 5);
  EXPECT_DOUBLE_EQ(sparsest_cut_exact(g).bandwidth, 0.0);
}

TEST(SparsestCut, RejectsOversizedExact) {
  DiGraph g(27);
  EXPECT_THROW(sparsest_cut_exact(g), std::invalid_argument);
}

// Property: the heuristic can never report a sparser cut than the exact
// minimum, and should usually find it on small instances.
class HeuristicVsExact : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicVsExact, HeuristicNeverBelowExact) {
  util::Rng rng(500 + GetParam());
  const Layout lay{3, 4, 2.0};
  const auto g = build_random(lay, LinkClass::kMedium, 3, rng);
  const auto exact = sparsest_cut_exact(g);
  util::Rng hr(GetParam());
  const auto heur = sparsest_cut_heuristic(g, hr, 32);
  EXPECT_GE(heur.bandwidth, exact.bandwidth - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, HeuristicVsExact,
                         ::testing::Range(0, 16));

TEST(TopK, SortedAndConsistent) {
  const auto g = build_folded_torus(Layout::noi_4x5());
  const auto top = sparsest_cuts_topk(g, 8);
  ASSERT_EQ(top.size(), 8u);
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_LE(top[i - 1].bandwidth, top[i].bandwidth);
  const auto best = sparsest_cut_exact(g);
  EXPECT_NEAR(top[0].bandwidth, best.bandwidth, 1e-12);
}

TEST(Bisection, FoldedTorus4x5Is10) {
  EXPECT_EQ(bisection_bandwidth(build_folded_torus(Layout::noi_4x5())), 10);
}

TEST(Bisection, Mesh4x5Is5) {
  // Horizontal cut between rows 1 and 2 crosses 5 duplex links.
  EXPECT_EQ(bisection_bandwidth(build_mesh(Layout::noi_4x5())), 5);
}

TEST(Bisection, FoldedTorus6x5Is10) {
  EXPECT_EQ(bisection_bandwidth(build_folded_torus(Layout::noi_6x5())), 10);
}

TEST(Bisection, AsymmetricUsesWeakerDirection) {
  // Ring 0->1->2->3->0 plus reverse only between 0 and 1.
  DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.add_edge(1, 0);
  // Any balanced cut crosses the one-directional ring once each way at
  // best; min direction = 1.
  EXPECT_EQ(bisection_bandwidth(g), 1);
}

}  // namespace
}  // namespace netsmith::topo
