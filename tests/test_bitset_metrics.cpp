// Randomized property tests for the word-parallel kernels: bitset BFS/APSP
// must agree with the scalar queue-based implementation, and popcount-based
// cross-edge counts must agree with a scalar membership scan, on hundreds of
// random graphs. Sizes straddle the one-word boundary (n = 65, 130 need
// multi-word bit rows).

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "topo/cuts.hpp"
#include "topo/graph.hpp"
#include "topo/metrics.hpp"
#include "util/rng.hpp"

namespace netsmith::topo {
namespace {

// Random digraph with ~p edge density (no layout constraints: the kernels
// are pure graph code).
DiGraph random_graph(int n, double p, util::Rng& rng) {
  DiGraph g(n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (i != j && rng.bernoulli(p)) g.add_edge(i, j);
  return g;
}

// Scalar oracle for cross-edge counts (the pre-bitset implementation).
std::pair<int, int> cross_counts_scalar(const DiGraph& g, std::uint64_t mask) {
  int uv = 0, vu = 0;
  for (int i = 0; i < g.num_nodes(); ++i) {
    const bool ui = mask >> i & 1;
    for (int j : g.out_neighbors(i)) {
      const bool uj = mask >> j & 1;
      if (ui && !uj) ++uv;
      else if (!ui && uj) ++vu;
    }
  }
  return {uv, vu};
}

class BitsetKernels : public ::testing::TestWithParam<int> {};

// 4 sizes x 60 graphs = 240 random graphs; densities span disconnected,
// sparse-connected and dense regimes.
TEST_P(BitsetKernels, ApspMatchesScalar) {
  const int n = GetParam();
  util::Rng rng(0xA11CE + n);
  const double densities[] = {1.5 / n, 4.0 / n, 0.3};
  for (int iter = 0; iter < 60; ++iter) {
    const auto g = random_graph(n, densities[iter % 3], rng);
    const auto bitset = apsp_bfs(g);
    const auto scalar = apsp_bfs_scalar(g);
    ASSERT_EQ(bitset, scalar) << "n=" << n << " iter=" << iter;
    ASSERT_EQ(diameter(bitset), diameter(scalar));
    // strongly_connected (bitset reachability) vs the scalar distances.
    bool scalar_sc = n > 0;
    for (int s = 0; s < n && scalar_sc; s += n - 1) {  // s = 0 and s = n-1
      for (int t = 0; t < n; ++t)
        if (scalar(s, t) >= kUnreachable || scalar(t, s) >= kUnreachable) {
          scalar_sc = false;
          break;
        }
    }
    ASSERT_EQ(strongly_connected(g), scalar_sc) << "n=" << n << " iter=" << iter;
  }
}

TEST_P(BitsetKernels, SingleSourceMatchesScalar) {
  const int n = GetParam();
  util::Rng rng(0xB0B + n);
  for (int iter = 0; iter < 20; ++iter) {
    const auto g = random_graph(n, 3.0 / n, rng);
    const int src = static_cast<int>(rng.uniform_int(0, n - 1));
    ASSERT_EQ(bfs_distances(g, src), bfs_distances_scalar(g, src));
  }
}

// Incremental maintenance: after interleaved add/remove churn, the bit rows
// must agree bit-for-bit with the byte adjacency matrix.
TEST_P(BitsetKernels, BitRowsTrackEdgeChurn) {
  const int n = GetParam();
  util::Rng rng(0xC4A0 + n);
  DiGraph g(n);
  for (int op = 0; op < 2000; ++op) {
    const int i = static_cast<int>(rng.uniform_int(0, n - 1));
    const int j = static_cast<int>(rng.uniform_int(0, n - 1));
    if (rng.bernoulli(0.6)) g.add_edge(i, j);
    else g.remove_edge(i, j);
  }
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      const bool bit = g.out_bits(i)[j >> 6] >> (j & 63) & 1;
      const bool inbit = g.in_bits(j)[i >> 6] >> (i & 63) & 1;
      ASSERT_EQ(bit, g.has_edge(i, j)) << i << "->" << j;
      ASSERT_EQ(inbit, g.has_edge(i, j)) << i << "->" << j;
    }
  // And the kernels still agree after churn.
  ASSERT_EQ(apsp_bfs(g), apsp_bfs_scalar(g));
}

INSTANTIATE_TEST_SUITE_P(WordBoundary, BitsetKernels,
                         ::testing::Values(7, 48, 65, 130));

// Popcount cross-edge counts vs scalar scan. Masks are capped at 64 bits, so
// sizes stay within one word (the cut API's own limit).
class PopcountCuts : public ::testing::TestWithParam<int> {};

TEST_P(PopcountCuts, CrossEdgeCountsMatchScalar) {
  const int n = GetParam();
  util::Rng rng(0xD1CE + n);
  const std::uint64_t width = n >= 64 ? ~0ULL : (1ULL << n) - 1;
  for (int iter = 0; iter < 100; ++iter) {
    const auto g = random_graph(n, iter % 2 ? 0.3 : 4.0 / n, rng);
    for (int m = 0; m < 8; ++m) {
      const std::uint64_t mask = rng.next() & width;
      ASSERT_EQ(cross_edge_counts(g, mask), cross_counts_scalar(g, mask))
          << "n=" << n << " mask=" << mask;
    }
  }
}

TEST_P(PopcountCuts, EvaluateCutConsistent) {
  const int n = GetParam();
  util::Rng rng(0xE4A + n);
  const std::uint64_t width = n >= 64 ? ~0ULL : (1ULL << n) - 1;
  for (int iter = 0; iter < 40; ++iter) {
    const auto g = random_graph(n, 0.2, rng);
    const std::uint64_t mask = rng.next() & width;
    const auto c = evaluate_cut(g, mask);
    const auto [uv, vu] = cross_counts_scalar(g, mask);
    EXPECT_EQ(c.cross_uv, uv);
    EXPECT_EQ(c.cross_vu, vu);
    if (c.u_size > 0 && c.u_size < n)
      EXPECT_NEAR(c.bandwidth,
                  static_cast<double>(std::min(uv, vu)) /
                      (static_cast<double>(c.u_size) * (n - c.u_size)),
                  1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(OneWord, PopcountCuts, ::testing::Values(7, 48));

// The exact enumerator (Gray-code walk + incremental popcount flips) must
// find the true optimum found by brute force over all masks.
TEST(PopcountCutsExact, MatchesBruteForce) {
  util::Rng rng(0xF00D);
  for (int iter = 0; iter < 25; ++iter) {
    const int n = 6 + iter % 4;  // 6..9
    const auto g = random_graph(n, 0.35, rng);
    const auto best = sparsest_cut_exact(g);
    double brute = std::numeric_limits<double>::infinity();
    for (std::uint64_t mask = 1; mask < (1ULL << n) - 1; ++mask) {
      const auto [uv, vu] = cross_counts_scalar(g, mask);
      const int usz = std::popcount(mask);
      brute = std::min(brute, static_cast<double>(std::min(uv, vu)) /
                                  (static_cast<double>(usz) * (n - usz)));
    }
    EXPECT_NEAR(best.bandwidth, brute, 1e-12) << "iter=" << iter;
  }
}

}  // namespace
}  // namespace netsmith::topo
