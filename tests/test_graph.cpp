#include "topo/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace netsmith::topo {
namespace {

TEST(DiGraph, StartsEmpty) {
  DiGraph g(5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_directed_edges(), 0);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j) EXPECT_FALSE(g.has_edge(i, j));
}

TEST(DiGraph, AddEdgeBasics) {
  DiGraph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_directed_edges(), 1);
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.in_degree(1), 1);
}

TEST(DiGraph, AddDuplicateRejected) {
  DiGraph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_EQ(g.num_directed_edges(), 1);
}

TEST(DiGraph, SelfLoopRejected) {
  DiGraph g(3);
  EXPECT_FALSE(g.add_edge(1, 1));
  EXPECT_EQ(g.num_directed_edges(), 0);
}

TEST(DiGraph, RemoveEdge) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.num_directed_edges(), 1);
  EXPECT_EQ(g.out_degree(0), 0);
  EXPECT_EQ(g.in_degree(1), 0);
}

TEST(DiGraph, AddDuplexAddsBoth) {
  DiGraph g(3);
  EXPECT_EQ(g.add_duplex(0, 2), 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_EQ(g.add_duplex(0, 2), 0);
  EXPECT_DOUBLE_EQ(g.duplex_links(), 1.0);
}

TEST(DiGraph, NeighborListsTrackEdges) {
  DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(3, 0);
  auto out = g.out_neighbors(0);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(g.in_neighbors(0), (std::vector<int>{3}));
}

TEST(DiGraph, EdgesDeterministicOrder) {
  DiGraph g(3);
  g.add_edge(2, 0);
  g.add_edge(0, 1);
  const auto e = g.edges();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0], std::make_pair(0, 1));
  EXPECT_EQ(e[1], std::make_pair(2, 0));
}

TEST(DiGraph, SymmetryDetection) {
  DiGraph g(3);
  g.add_duplex(0, 1);
  EXPECT_TRUE(g.is_symmetric());
  g.add_edge(1, 2);
  EXPECT_FALSE(g.is_symmetric());
}

TEST(DiGraph, ReversedFlipsEdges) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto r = g.reversed();
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_TRUE(r.has_edge(2, 1));
  EXPECT_EQ(r.num_directed_edges(), 2);
  EXPECT_FALSE(r.has_edge(0, 1));
}

TEST(DiGraph, SerializationRoundTrip) {
  DiGraph g(6);
  g.add_edge(0, 5);
  g.add_edge(5, 0);
  g.add_edge(2, 3);
  const auto s = g.to_string();
  const auto h = DiGraph::from_string(s);
  EXPECT_EQ(g, h);
  EXPECT_EQ(h.to_string(), s);
}

TEST(DiGraph, SerializationEmptyGraph) {
  DiGraph g(4);
  const auto h = DiGraph::from_string(g.to_string());
  EXPECT_EQ(g, h);
}

TEST(DiGraph, FromStringRejectsGarbage) {
  EXPECT_THROW(DiGraph::from_string("nope"), std::invalid_argument);
  EXPECT_THROW(DiGraph::from_string("3:12"), std::invalid_argument);
}

TEST(DiGraph, EqualityIsStructural) {
  DiGraph a(3), b(3);
  a.add_edge(0, 1);
  b.add_edge(0, 1);
  EXPECT_EQ(a, b);
  b.add_edge(1, 2);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace netsmith::topo
