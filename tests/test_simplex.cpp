#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace netsmith::lp {
namespace {

TEST(Simplex, BasicMaximization) {
  Model m;
  const int x = m.add_continuous(0, kInf, 3);
  const int y = m.add_continuous(0, kInf, 2);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{x, 1}, {y, 1}}, Rel::kLe, 4);
  m.add_constraint({{x, 1}, {y, 3}}, Rel::kLe, 6);
  const auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-9);
  EXPECT_NEAR(s.x[x], 4.0, 1e-9);
  EXPECT_NEAR(s.x[y], 0.0, 1e-9);
}

TEST(Simplex, BasicMinimization) {
  Model m;
  const int x = m.add_continuous(0, kInf, 2);
  const int y = m.add_continuous(0, kInf, 3);
  m.add_constraint({{x, 1}, {y, 1}}, Rel::kGe, 10);
  m.add_constraint({{x, 1}}, Rel::kLe, 6);
  const auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2 * 6 + 3 * 4, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  Model m;
  const int x = m.add_continuous(0, kInf, 1);
  const int y = m.add_continuous(0, kInf, 1);
  m.add_constraint({{x, 1}, {y, 1}}, Rel::kEq, 3);
  m.add_constraint({{x, 1}}, Rel::kGe, 1);
  const auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.add_continuous(0, 1, 1);
  m.add_constraint({{x, 1}}, Rel::kGe, 2);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleSystem) {
  Model m;
  const int x = m.add_continuous(0, kInf, 1);
  const int y = m.add_continuous(0, kInf, 1);
  m.add_constraint({{x, 1}, {y, 1}}, Rel::kLe, 1);
  m.add_constraint({{x, 1}, {y, 1}}, Rel::kGe, 2);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const int x = m.add_continuous(0, kInf, 1);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{x, -1}}, Rel::kLe, 0);  // x >= 0, no upper limit
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, VariableBoundsOnly) {
  Model m;
  const int x = m.add_continuous(2, 5, 1);
  const int y = m.add_continuous(-3, -1, 1);
  const auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
  EXPECT_NEAR(s.x[y], -3.0, 1e-9);
}

TEST(Simplex, NegativeLowerBounds) {
  Model m;
  const int x = m.add_continuous(-10, 10, -1);  // minimize -x -> x = ub
  const auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 10.0, 1e-9);
}

TEST(Simplex, BoundFlipPath) {
  // Optimum at an upper bound, reached via bound flip rather than pivot.
  Model m;
  const int x = m.add_continuous(0, 3, 5);
  const int y = m.add_continuous(0, 4, 4);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{x, 1}, {y, 1}}, Rel::kLe, 100);  // slack never binds
  const auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5 * 3 + 4 * 4, 1e-9);
}

TEST(Simplex, DegenerateProblem) {
  // Multiple constraints meet at the optimum.
  Model m;
  const int x = m.add_continuous(0, kInf, 1);
  const int y = m.add_continuous(0, kInf, 1);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{x, 1}}, Rel::kLe, 1);
  m.add_constraint({{y, 1}}, Rel::kLe, 1);
  m.add_constraint({{x, 1}, {y, 1}}, Rel::kLe, 2);
  m.add_constraint({{x, 2}, {y, 1}}, Rel::kLe, 3);
  const auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, TransportationProblem) {
  // 2 supplies x 3 demands; known optimum.
  Model m;
  // costs: s0: [4, 6, 8], s1: [5, 7, 3]; supply 10/15, demand 8/9/8.
  const double cost[2][3] = {{4, 6, 8}, {5, 7, 3}};
  int v[2][3];
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) v[i][j] = m.add_continuous(0, kInf, cost[i][j]);
  const double supply[2] = {10, 15}, demand[3] = {8, 9, 8};
  for (int i = 0; i < 2; ++i)
    m.add_constraint({{v[i][0], 1}, {v[i][1], 1}, {v[i][2], 1}}, Rel::kLe,
                     supply[i]);
  for (int j = 0; j < 3; ++j)
    m.add_constraint({{v[0][j], 1}, {v[1][j], 1}}, Rel::kGe, demand[j]);
  const auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  // Optimal: s0 ships 8 to d0 (32), s0 2 + s1 7 to d1 (12+49), s1 8 to d2 (24).
  EXPECT_NEAR(s.objective, 32 + 12 + 49 + 24, 1e-9);
  EXPECT_LE(m.max_violation(s.x), 1e-9);
}

// Property: random feasible LPs — the returned point must satisfy all
// constraints and bounds.
class RandomLp : public ::testing::TestWithParam<int> {};

TEST_P(RandomLp, SolutionsAreFeasible) {
  util::Rng rng(900 + GetParam());
  Model m;
  const int n = 6;
  std::vector<int> vars;
  for (int j = 0; j < n; ++j)
    vars.push_back(m.add_continuous(0, 5, rng.uniform() * 4 - 2));
  for (int c = 0; c < 8; ++c) {
    std::vector<Term> row;
    for (int j = 0; j < n; ++j)
      if (rng.bernoulli(0.5)) row.push_back({vars[j], rng.uniform() * 2 - 0.5});
    if (row.empty()) continue;
    // rhs chosen so x = 1 vector is feasible for <= rows.
    double lhs_at_one = 0.0;
    for (const auto& t : row) lhs_at_one += t.coef;
    m.add_constraint(std::move(row), Rel::kLe, lhs_at_one + rng.uniform() * 3);
  }
  const auto s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(s.x), 1e-7);
  // Objective must be at least as good as the feasible all-ones point.
  std::vector<double> ones(n, 1.0);
  EXPECT_LE(s.objective, m.objective_value(ones) + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLp, ::testing::Range(0, 24));

}  // namespace
}  // namespace netsmith::lp
