#include "routing/mclb.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"

namespace netsmith::routing {
namespace {

TEST(FractionalMclb, SolvesAndNormalizes) {
  const auto g = topo::build_mesh(topo::Layout{2, 3, 2.0});
  const auto ps = enumerate_shortest_paths(g);
  const auto frac = mclb_fractional(ps);
  ASSERT_TRUE(frac.solved);
  const int n = 6;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d || ps.at(s, d).empty()) continue;
      const auto& w = frac.weights[s * n + d];
      double sum = 0.0;
      for (double x : w) {
        EXPECT_GE(x, -1e-9);
        EXPECT_LE(x, 1.0 + 1e-9);
        sum += x;
      }
      EXPECT_NEAR(sum, 1.0, 1e-7) << s << "->" << d;
    }
}

TEST(FractionalMclb, LowerBoundsSinglePath) {
  // The LP relaxation optimum can never exceed the best integral routing.
  for (const auto lay : {topo::Layout{2, 3, 2.0}, topo::Layout{3, 3, 2.0}}) {
    const auto g = topo::build_mesh(lay);
    const auto ps = enumerate_shortest_paths(g);
    const auto frac = mclb_fractional(ps);
    const auto single = mclb_local_search(ps);
    ASSERT_TRUE(frac.solved);
    EXPECT_LE(frac.max_load, single.max_load + 1e-9);
  }
}

TEST(FractionalMclb, DiamondOptimumIsTwoFlows) {
  // Diamond: every directed link carries its own 1-hop flow (1.0), and the
  // four 2-hop flows add 8 link-units spread over 8 links, so no routing —
  // fractional or not — can get the max below 2 flows; the LP must achieve
  // exactly that.
  topo::DiGraph g(4);
  g.add_duplex(0, 1);
  g.add_duplex(0, 2);
  g.add_duplex(1, 3);
  g.add_duplex(2, 3);
  const auto ps = enumerate_shortest_paths(g);
  const auto frac = mclb_fractional(ps);
  ASSERT_TRUE(frac.solved);
  EXPECT_NEAR(frac.max_load * 3.0, 2.0, 1e-6);  // n-1 = 3
  // And single-path routing can also achieve 2 here, so they tie.
  const auto single = mclb_local_search(ps);
  EXPECT_EQ(single.max_flows_on_link, 2);
}

TEST(FractionalMclb, LoadAnalysisConsistent) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto ps = enumerate_shortest_paths(g, 16);
  const auto frac = mclb_fractional(ps);
  ASSERT_TRUE(frac.solved);
  const auto load = analyze_fractional_choice(ps, frac);
  // The recomputed max load matches the LP's objective.
  EXPECT_NEAR(load.max_load, frac.max_load, 1e-6);
  EXPECT_EQ(load.flows, 380);
}

TEST(FractionalMclb, TorusBeatsSinglePathOrTies) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto ps = enumerate_shortest_paths(g, 16);
  const auto frac = mclb_fractional(ps);
  const auto single = mclb_local_search(ps);
  ASSERT_TRUE(frac.solved);
  EXPECT_LE(frac.max_load, single.max_load + 1e-9);
  EXPECT_GT(frac.max_load, 0.0);
}

}  // namespace
}  // namespace netsmith::routing
