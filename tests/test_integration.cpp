// End-to-end pipeline tests: synthesize -> enumerate paths -> route (MCLB /
// NDBT) -> VC-allocate -> verify deadlock freedom -> simulate.

#include <gtest/gtest.h>

#include "core/netsmith.hpp"
#include "sim/sweep.hpp"
#include "system/workload.hpp"
#include "topo/builders.hpp"
#include "topo/metrics.hpp"
#include "topologies/registry.hpp"
#include "vc/layers.hpp"

namespace netsmith {
namespace {

TEST(Pipeline, SynthesizeRoutePlanSimulate) {
  core::SynthesisConfig cfg;
  cfg.layout = topo::Layout::noi_4x5();
  cfg.link_class = topo::LinkClass::kMedium;
  cfg.objective = core::Objective::kLatOp;
  cfg.time_limit_s = 2.0;
  cfg.restarts = 1;
  cfg.seed = 31;
  const auto synth = core::synthesize(cfg);
  ASSERT_TRUE(topo::strongly_connected(synth.graph));

  const auto plan = core::plan_network(synth.graph, cfg.layout,
                                       core::RoutingPolicy::kMclb, 6);
  EXPECT_TRUE(plan.table.consistent_with(synth.graph));
  EXPECT_TRUE(plan.table.is_minimal(synth.graph));
  EXPECT_LE(plan.vc_layers, 6);

  sim::TrafficConfig t;
  t.kind = sim::TrafficKind::kCoherence;
  t.injection_rate = 0.02;
  sim::SimConfig sc;
  sc.warmup = 1500;
  sc.measure = 4000;
  sc.drain = 15000;
  const auto stats = sim::simulate(plan, t, sc);
  EXPECT_EQ(stats.tagged_completed, stats.tagged_injected);
  EXPECT_GT(stats.avg_latency_cycles, 4.0);
  EXPECT_LT(stats.avg_latency_cycles, 60.0);
}

TEST(Pipeline, CatalogTopologiesAreAllSimulatable) {
  // Every catalogued 20-router topology must pass the full deadlock-free
  // planning pipeline under both routing policies.
  for (const auto& t : topologies::catalog(20)) {
    for (const auto pol :
         {core::RoutingPolicy::kMclb, core::RoutingPolicy::kNdbt}) {
      const auto plan = core::plan_network(t.graph, t.layout, pol, 6);
      EXPECT_TRUE(plan.table.consistent_with(t.graph)) << t.name;
      EXPECT_LE(plan.vc_layers, 6) << t.name;
    }
  }
}

TEST(Pipeline, MclbLoadNeverAboveNdbt) {
  // The point of MCLB: lower max channel load than the heuristic policy on
  // the same topology (equal at worst).
  const auto t = topologies::find(topologies::catalog(20), "Kite-large");
  const auto mclb =
      core::plan_network(t.graph, t.layout, core::RoutingPolicy::kMclb, 6);
  const auto ndbt =
      core::plan_network(t.graph, t.layout, core::RoutingPolicy::kNdbt, 6);
  EXPECT_LE(mclb.max_channel_load, ndbt.max_channel_load + 1e-9);
}

TEST(Pipeline, FullSystemWorkloadRuns) {
  const auto lay = topo::Layout::noi_4x5();
  const auto noi = topo::build_folded_torus(lay);
  const auto sys = system::build_chiplet_system(noi, lay);
  const auto plan = core::plan_network(sys.graph, lay /*unused by MCLB*/,
                                       core::RoutingPolicy::kMclb, 8);
  sim::SimConfig sc;
  sc.num_vcs = 8;
  sc.warmup = 1000;
  sc.measure = 3000;
  sc.drain = 12000;
  const auto r = system::run_workload(sys, plan, {"canneal", 9.0},
                                      system::PerfModel{}, sc);
  EXPECT_GT(r.avg_packet_latency_cycles, 5.0);
  EXPECT_GT(r.cpi, 1.0);
}

TEST(Pipeline, HigherMpkiMeansHigherCpi) {
  const auto lay = topo::Layout::noi_4x5();
  const auto sys = system::build_chiplet_system(topo::build_folded_torus(lay), lay);
  const auto plan =
      core::plan_network(sys.graph, lay, core::RoutingPolicy::kMclb, 8);
  sim::SimConfig sc;
  sc.num_vcs = 8;
  sc.warmup = 1000;
  sc.measure = 3000;
  sc.drain = 12000;
  const auto light = system::run_workload(sys, plan, {"blackscholes", 0.08},
                                          system::PerfModel{}, sc);
  const auto heavy = system::run_workload(sys, plan, {"canneal", 9.0},
                                          system::PerfModel{}, sc);
  EXPECT_GT(heavy.cpi, light.cpi);
}

TEST(Pipeline, NsTopologyOutperformsMeshLatency) {
  // The Fig. 8 mechanism in miniature: NS topology yields lower packet
  // latency than mesh on the same traffic.
  const auto lay = topo::Layout::noi_4x5();
  const auto cat = topologies::catalog(20);
  const auto ns = topologies::find(cat, "NS-LatOp-medium-20");

  sim::TrafficConfig t;
  t.kind = sim::TrafficKind::kCoherence;
  t.injection_rate = 0.03;
  sim::SimConfig sc;
  sc.warmup = 1500;
  sc.measure = 5000;
  sc.drain = 15000;

  const auto mesh_plan = core::plan_network(topo::build_mesh(lay), lay,
                                            core::RoutingPolicy::kMclb, 6);
  const auto ns_plan =
      core::plan_network(ns.graph, lay, core::RoutingPolicy::kMclb, 6);
  const auto mesh_stats = sim::simulate(mesh_plan, t, sc);
  const auto ns_stats = sim::simulate(ns_plan, t, sc);
  EXPECT_LT(ns_stats.avg_latency_cycles, mesh_stats.avg_latency_cycles);
}

}  // namespace
}  // namespace netsmith
