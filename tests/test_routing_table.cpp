#include "routing/table.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"

namespace netsmith::routing {
namespace {

TEST(RoutingTable, SelectFirstIsConsistentAndMinimal) {
  const auto g = topo::build_mesh(topo::Layout::noi_4x5());
  const auto ps = enumerate_shortest_paths(g);
  const auto rt = RoutingTable::select_first(ps);
  EXPECT_TRUE(rt.consistent_with(g));
  EXPECT_TRUE(rt.is_minimal(g));
}

TEST(RoutingTable, SelectRandomIsConsistentAndMinimal) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto ps = enumerate_shortest_paths(g);
  util::Rng rng(9);
  const auto rt = RoutingTable::select_random(ps, rng);
  EXPECT_TRUE(rt.consistent_with(g));
  EXPECT_TRUE(rt.is_minimal(g));
}

TEST(RoutingTable, NextHopFollowsPath) {
  topo::DiGraph g(4);
  g.add_duplex(0, 1);
  g.add_duplex(1, 2);
  g.add_duplex(2, 3);
  const auto rt = RoutingTable::select_first(enumerate_shortest_paths(g));
  EXPECT_EQ(rt.next_hop(0, 0, 3), 1);
  EXPECT_EQ(rt.next_hop(1, 0, 3), 2);
  EXPECT_EQ(rt.next_hop(2, 0, 3), 3);
  EXPECT_EQ(rt.next_hop(3, 0, 3), -1);  // arrived
  EXPECT_EQ(rt.next_hop(2, 0, 1), -1);  // not on route
}

TEST(RoutingTable, FromChoicePicksRequestedPath) {
  const topo::Layout lay{2, 2, 2.0};
  const auto g = topo::build_mesh(lay);
  const auto ps = enumerate_shortest_paths(g);
  const int s = lay.id(0, 0), d = lay.id(1, 1);
  ASSERT_EQ(ps.at(s, d).size(), 2u);
  std::vector<int> choice(16, 0);
  choice[s * 4 + d] = 1;
  const auto rt = RoutingTable::from_choice(ps, choice);
  EXPECT_EQ(rt.path(s, d), ps.at(s, d)[1]);
}

TEST(RoutingTable, InconsistentWhenEdgeMissing) {
  topo::DiGraph g(3);
  g.add_duplex(0, 1);
  g.add_duplex(1, 2);
  auto rt = RoutingTable(3);
  rt.path(0, 2) = {0, 2};  // no such edge
  rt.path(2, 0) = {2, 1, 0};
  rt.path(0, 1) = {0, 1};
  rt.path(1, 0) = {1, 0};
  rt.path(1, 2) = {1, 2};
  rt.path(2, 1) = {2, 1};
  EXPECT_FALSE(rt.consistent_with(g));
}

TEST(RoutingTable, NonMinimalDetected) {
  topo::DiGraph g(3);
  g.add_duplex(0, 1);
  g.add_duplex(1, 2);
  g.add_duplex(0, 2);
  auto rt = RoutingTable(3);
  for (int s = 0; s < 3; ++s)
    for (int d = 0; d < 3; ++d)
      if (s != d) rt.path(s, d) = {s, d};
  rt.path(0, 2) = {0, 1, 2};  // valid but detour
  EXPECT_TRUE(rt.consistent_with(g));
  EXPECT_FALSE(rt.is_minimal(g));
}

}  // namespace
}  // namespace netsmith::routing
