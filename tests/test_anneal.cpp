#include "core/anneal.hpp"

#include <gtest/gtest.h>

#include "core/netsmith.hpp"
#include "core/objective.hpp"
#include "routing/mclb.hpp"
#include "routing/paths.hpp"
#include "topo/builders.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"

namespace netsmith::core {
namespace {

SynthesisConfig small_cfg(Objective obj, double secs = 1.5) {
  SynthesisConfig cfg;
  cfg.layout = topo::Layout{2, 3, 2.0};
  cfg.link_class = topo::LinkClass::kMedium;
  cfg.radix = 3;
  cfg.objective = obj;
  cfg.time_limit_s = secs;
  cfg.restarts = 2;
  cfg.seed = 11;
  return cfg;
}

TEST(Anneal, ProducesValidTopology) {
  const auto cfg = small_cfg(Objective::kLatOp);
  const auto r = synthesize(cfg);
  EXPECT_TRUE(topo::strongly_connected(r.graph));
  EXPECT_TRUE(topo::respects_radix(r.graph, cfg.radix));
  EXPECT_TRUE(topo::respects_link_class(r.graph, cfg.layout, cfg.link_class));
}

TEST(Anneal, ObjectiveMatchesGraph) {
  const auto r = synthesize(small_cfg(Objective::kLatOp));
  EXPECT_NEAR(r.objective_value, topo::average_hops(r.graph), 1e-9);
}

TEST(Anneal, RespectsSymmetryConstraint) {
  auto cfg = small_cfg(Objective::kLatOp);
  cfg.symmetric_links = true;
  const auto r = synthesize(cfg);
  EXPECT_TRUE(r.graph.is_symmetric());
  EXPECT_TRUE(topo::respects_radix(r.graph, cfg.radix));
}

TEST(Anneal, TraceIncumbentMonotone) {
  const auto r = synthesize(small_cfg(Objective::kLatOp));
  ASSERT_FALSE(r.trace.empty());
  for (std::size_t i = 1; i < r.trace.size(); ++i)
    EXPECT_LE(r.trace[i].incumbent, r.trace[i - 1].incumbent + 1e-12);
  // Gap closes (or at least never goes negative nonsense).
  for (const auto& pt : r.trace) EXPECT_GE(pt.incumbent + 1e-9, pt.bound);
}

TEST(Anneal, BoundIsValidLowerBound) {
  const auto r = synthesize(small_cfg(Objective::kLatOp));
  EXPECT_GE(r.objective_value + 1e-9, r.bound);
}

TEST(Anneal, ScopMaximizesCut) {
  const auto r = synthesize(small_cfg(Objective::kSCOp, 2.0));
  EXPECT_TRUE(topo::strongly_connected(r.graph));
  const auto cut = topo::sparsest_cut_exact(r.graph);
  EXPECT_NEAR(r.objective_value, cut.bandwidth, 1e-9);
  EXPECT_LE(r.objective_value, r.bound + 1e-9);  // bound is an upper bound
  EXPECT_GT(r.objective_value, 0.0);
}

TEST(Anneal, ScopBeatsOrMatchesLatOpOnBandwidth) {
  const auto lat = synthesize(small_cfg(Objective::kLatOp, 2.0));
  const auto scp = synthesize(small_cfg(Objective::kSCOp, 2.0));
  const auto bw_lat = topo::sparsest_cut_exact(lat.graph).bandwidth;
  const auto bw_scp = topo::sparsest_cut_exact(scp.graph).bandwidth;
  EXPECT_GE(bw_scp + 1e-9, bw_lat);
}

TEST(Anneal, PatternObjectiveSpecializes) {
  auto cfg = small_cfg(Objective::kPattern, 2.0);
  const int n = cfg.layout.n();
  // Traffic only between the two far corners.
  cfg.pattern = util::Matrix<double>(n, n, 0.0);
  cfg.pattern(0, n - 1) = 1.0;
  cfg.pattern(n - 1, 0) = 1.0;
  const auto r = synthesize(cfg);
  const auto dist = topo::apsp_bfs(r.graph);
  // A medium link (2,0) exists, so corner-to-corner should be <= 2 hops on a
  // 2x3 layout once the optimizer dedicates links to the pattern.
  EXPECT_LE(dist(0, n - 1), 2);
  EXPECT_LE(dist(n - 1, 0), 2);
}

TEST(Anneal, DiameterBoundHonored) {
  auto cfg = small_cfg(Objective::kLatOp, 1.5);
  cfg.diameter_bound = 3;
  const auto r = synthesize(cfg);
  EXPECT_LE(topo::diameter(r.graph), 3);
}

TEST(Anneal, DeterministicForSeed) {
  // Time-based annealing is not bit-reproducible across runs, but the
  // *result quality* for a fixed seed and ample budget must be stable: both
  // runs reach the small-instance optimum.
  const auto a = synthesize(small_cfg(Objective::kLatOp, 1.0));
  const auto b = synthesize(small_cfg(Objective::kLatOp, 1.0));
  EXPECT_NEAR(a.objective_value, b.objective_value, 0.15);
}

// With a per-restart move budget the schedule is move-driven, so a fixed
// seed must reproduce the incumbent bit-exactly at any thread count: the
// parallel best-of reduction walks restarts in index order with the same
// strictly-better rule as the serial loop.
TEST(Anneal, ParallelRestartsBitExactLatOp) {
  auto cfg = small_cfg(Objective::kLatOp);
  cfg.restarts = 4;
  AnnealOptions serial;
  serial.threads = 1;
  serial.max_moves = 3000;
  AnnealOptions parallel = serial;
  parallel.threads = 4;
  const auto a = anneal_synthesize(cfg, serial);
  const auto b = anneal_synthesize(cfg, parallel);
  EXPECT_TRUE(a.graph == b.graph);
  EXPECT_EQ(a.objective_value, b.objective_value);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.trace.size(), b.trace.size());
}

TEST(Anneal, ParallelRestartsBitExactScop) {
  auto cfg = small_cfg(Objective::kSCOp);
  cfg.restarts = 3;
  AnnealOptions serial;
  serial.threads = 1;
  serial.max_moves = 1500;
  AnnealOptions parallel = serial;
  parallel.threads = 3;
  const auto a = anneal_synthesize(cfg, serial);
  const auto b = anneal_synthesize(cfg, parallel);
  EXPECT_TRUE(a.graph == b.graph);
  EXPECT_EQ(a.objective_value, b.objective_value);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.accepted, b.accepted);
}

// Move-budgeted runs are reproducible run-to-run (not just across thread
// counts): same seed, same graph.
TEST(Anneal, MoveBudgetDeterministicAcrossRuns) {
  auto cfg = small_cfg(Objective::kLatOp);
  cfg.restarts = 2;
  AnnealOptions opts;
  opts.max_moves = 2000;
  const auto a = anneal_synthesize(cfg, opts);
  const auto b = anneal_synthesize(cfg, opts);
  EXPECT_TRUE(a.graph == b.graph);
  EXPECT_EQ(a.objective_value, b.objective_value);
}

// MCLB max normalized channel load under full shortest-path enumeration —
// the deployment-quality routing the synthesized topology would ship with.
double routed_max_load(const topo::DiGraph& g) {
  return routing::mclb_local_search(routing::enumerate_shortest_paths(g))
      .max_load;
}

// Route-aware synthesis (paper-scale n = 20): optimizing max channel load
// directly — running the compiled path-enum -> MCLB pipeline inside every
// move — must match or beat the hop-count proxy on the load metric.
TEST(Anneal, ChannelLoadObjectiveBeatsHopProxyOnLoad) {
  SynthesisConfig cfg;
  cfg.layout = topo::Layout::noi_4x5();
  cfg.link_class = topo::LinkClass::kMedium;
  cfg.radix = 4;
  cfg.restarts = 2;
  cfg.seed = 9;
  AnnealOptions opts;
  opts.max_moves = 2500;  // move-budgeted: deterministic and load-insensitive

  cfg.objective = Objective::kLatOp;
  const auto lat = anneal_synthesize(cfg, opts);
  cfg.objective = Objective::kChannelLoad;
  const auto cl = anneal_synthesize(cfg, opts);

  EXPECT_TRUE(topo::strongly_connected(cl.graph));
  EXPECT_TRUE(topo::respects_radix(cl.graph, cfg.radix));
  EXPECT_TRUE(topo::respects_link_class(cl.graph, cfg.layout, cfg.link_class));

  EXPECT_LE(routed_max_load(cl.graph), routed_max_load(lat.graph) + 1e-12);

  // objective_value is exactly what the move evaluator saw: the capped
  // pipeline re-run on the returned graph reproduces it.
  const auto capped = routing::enumerate_shortest_paths(
      cl.graph, cfg.anneal_paths_per_flow);
  EXPECT_NEAR(cl.objective_value,
              routing::mclb_local_search(capped, {}, cfg.anneal_mclb_rounds)
                  .max_load,
              1e-12);
  EXPECT_GE(cl.objective_value + 1e-9, cl.bound);  // analytic load bound
}

TEST(Anneal, LatLoadCombinedObjectiveBalancesBoth) {
  SynthesisConfig cfg;
  cfg.layout = topo::Layout::noi_4x5();
  cfg.link_class = topo::LinkClass::kMedium;
  cfg.radix = 4;
  cfg.restarts = 2;
  cfg.seed = 9;
  AnnealOptions opts;
  opts.max_moves = 2500;

  cfg.objective = Objective::kLatOp;
  const auto lat = anneal_synthesize(cfg, opts);
  cfg.objective = Objective::kLatLoad;
  const auto ll = anneal_synthesize(cfg, opts);

  EXPECT_TRUE(topo::strongly_connected(ll.graph));
  // The combined mode may trade a little latency for load, but not much...
  EXPECT_LE(topo::average_hops(ll.graph), topo::average_hops(lat.graph) + 0.2);
  // ...and must not ship a worse bottleneck than the hop-only proxy.
  EXPECT_LE(routed_max_load(ll.graph), routed_max_load(lat.graph) + 1e-12);
}

// The route-aware scoring path must preserve the parallel-restart
// determinism contract: move-budgeted runs are bit-exact across thread
// counts.
TEST(Anneal, ParallelRestartsBitExactChannelLoad) {
  SynthesisConfig cfg;
  cfg.layout = topo::Layout{2, 3, 2.0};
  cfg.link_class = topo::LinkClass::kMedium;
  cfg.radix = 3;
  cfg.objective = Objective::kChannelLoad;
  cfg.restarts = 3;
  cfg.seed = 11;
  AnnealOptions serial;
  serial.threads = 1;
  serial.max_moves = 1200;
  AnnealOptions parallel = serial;
  parallel.threads = 3;
  const auto a = anneal_synthesize(cfg, serial);
  const auto b = anneal_synthesize(cfg, parallel);
  EXPECT_TRUE(a.graph == b.graph);
  EXPECT_EQ(a.objective_value, b.objective_value);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST(Anneal, FillsPortBudgetOnLargerInstance) {
  SynthesisConfig cfg;
  cfg.layout = topo::Layout::noi_4x5();
  cfg.link_class = topo::LinkClass::kMedium;
  cfg.objective = Objective::kLatOp;
  cfg.time_limit_s = 2.0;
  cfg.restarts = 1;
  cfg.seed = 5;
  const auto r = synthesize(cfg);
  // Paper SV-D: NetSmith "maximally uses all available router ports".
  EXPECT_GE(r.graph.num_directed_edges(), 70);  // of 80 possible
  // Even a 2-second budget must land below the folded torus (2.32); the
  // full-budget runs reach ~2.07 (Table II reproduction).
  EXPECT_LT(topo::average_hops(r.graph), 2.32);
}

}  // namespace
}  // namespace netsmith::core
