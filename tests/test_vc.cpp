#include "vc/balance.hpp"
#include "vc/cdg.hpp"
#include "vc/layers.hpp"

#include <gtest/gtest.h>

#include "routing/mclb.hpp"
#include "topo/builders.hpp"

namespace netsmith::vc {
namespace {

TEST(LinkIds, DenseAndInvertible) {
  topo::DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const LinkIds ids(g);
  EXPECT_EQ(ids.count(), 3);
  for (const auto& [u, v] : g.edges()) {
    const int e = ids.id(u, v);
    ASSERT_GE(e, 0);
    EXPECT_EQ(ids.link(e), std::make_pair(u, v));
  }
  EXPECT_EQ(ids.id(0, 2), -1);
}

TEST(Cdg, DetectsSimpleCycle) {
  Cdg cdg(3);
  EXPECT_TRUE(cdg.add_dep(0, 1));
  EXPECT_TRUE(cdg.add_dep(1, 2));
  EXPECT_FALSE(cdg.has_cycle());
  EXPECT_TRUE(cdg.add_dep(2, 0));
  EXPECT_TRUE(cdg.has_cycle());
}

TEST(Cdg, DuplicateDepsIgnored) {
  Cdg cdg(2);
  EXPECT_TRUE(cdg.add_dep(0, 1));
  EXPECT_FALSE(cdg.add_dep(0, 1));
  EXPECT_EQ(cdg.num_deps(), 1);
}

TEST(Cdg, RemoveDepsRollsBack) {
  Cdg cdg(3);
  cdg.add_dep(0, 1);
  const std::vector<std::pair<int, int>> added{{1, 2}, {2, 0}};
  for (const auto& [a, b] : added) cdg.add_dep(a, b);
  EXPECT_TRUE(cdg.has_cycle());
  cdg.remove_deps(added);
  EXPECT_FALSE(cdg.has_cycle());
  EXPECT_EQ(cdg.num_deps(), 1);
}

TEST(Cdg, AddPathCreatesConsecutiveDeps) {
  topo::DiGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const LinkIds ids(g);
  Cdg cdg(ids.count());
  const auto ins = cdg.add_path({0, 1, 2, 3}, ids);
  EXPECT_EQ(ins.size(), 2u);  // (0-1)->(1-2), (1-2)->(2-3)
  EXPECT_FALSE(cdg.has_cycle());
}

TEST(Layers, SingleLayerForMeshXy) {
  // Mesh with deterministic first-path (row-then-column or similar DFS
  // order) routing typically fits few layers; whatever the count, the
  // result must be verified acyclic.
  const auto g = topo::build_mesh(topo::Layout::noi_4x5());
  const auto rt =
      routing::RoutingTable::select_first(routing::enumerate_shortest_paths(g));
  util::Rng rng(3);
  const auto a = assign_layers(rt, g, rng);
  EXPECT_GE(a.num_layers, 1);
  EXPECT_TRUE(verify_acyclic(a, rt, g));
}

TEST(Layers, TorusNeedsMultipleLayers) {
  // Rings force cyclic dependencies: one layer cannot be enough when flows
  // wrap around. (With shortest paths on C4/C5 rings cycles arise.)
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto rt =
      routing::RoutingTable::select_first(routing::enumerate_shortest_paths(g));
  util::Rng rng(4);
  const auto a = assign_layers(rt, g, rng);
  EXPECT_TRUE(verify_acyclic(a, rt, g));
  EXPECT_GE(a.num_layers, 2);
}

TEST(Layers, AllFlowsAssigned) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto rt =
      routing::RoutingTable::select_first(routing::enumerate_shortest_paths(g));
  util::Rng rng(5);
  const auto a = assign_layers(rt, g, rng);
  for (int s = 0; s < 20; ++s)
    for (int d = 0; d < 20; ++d) {
      if (s == d) continue;
      const int l = a.layer[s * 20 + d];
      EXPECT_GE(l, 0);
      EXPECT_LT(l, a.num_layers);
    }
}

// Property: any random connected topology with MCLB routing gets a verified
// deadlock-free assignment within the paper's VC budget.
class LayerProperty : public ::testing::TestWithParam<int> {};

TEST_P(LayerProperty, AlwaysAcyclicWithinBudget) {
  util::Rng rng(700 + GetParam());
  const auto lay = topo::Layout::noi_4x5();
  const auto g = topo::build_random(lay, topo::LinkClass::kMedium, 4, rng);
  const auto ps = routing::enumerate_shortest_paths(g);
  if (!ps.all_flows_covered()) GTEST_SKIP() << "disconnected sample";
  const auto rt = routing::mclb_local_search(ps).table(ps);
  util::Rng lr(GetParam());
  const auto a = assign_layers(rt, g, lr);
  EXPECT_TRUE(verify_acyclic(a, rt, g));
  // Paper SIV-A: 4 VCs suffice for all 20-router configurations.
  EXPECT_LE(a.num_layers, 4);
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, LayerProperty,
                         ::testing::Range(0, 12));

TEST(Balance, RespectsLayerMembership) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto rt =
      routing::RoutingTable::select_first(routing::enumerate_shortest_paths(g));
  util::Rng rng(6);
  const auto a = assign_layers(rt, g, rng);
  const auto map = balance_vcs(a, rt, 6);
  EXPECT_EQ(map.num_vcs, 6);
  for (int s = 0; s < 20; ++s)
    for (int d = 0; d < 20; ++d) {
      if (s == d) continue;
      const int vc = map.vc[s * 20 + d];
      ASSERT_GE(vc, 0);
      ASSERT_LT(vc, 6);
      EXPECT_EQ(map.layer_of_vc[vc], a.layer[s * 20 + d]);
    }
}

TEST(Balance, ThrowsWhenTooFewVcs) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto rt =
      routing::RoutingTable::select_first(routing::enumerate_shortest_paths(g));
  util::Rng rng(7);
  const auto a = assign_layers(rt, g, rng);
  if (a.num_layers < 2) GTEST_SKIP();
  EXPECT_THROW(balance_vcs(a, rt, a.num_layers - 1), std::invalid_argument);
}

TEST(Balance, WeightsSpreadWithinLayers) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto rt =
      routing::RoutingTable::select_first(routing::enumerate_shortest_paths(g));
  util::Rng rng(8);
  const auto a = assign_layers(rt, g, rng);
  const auto map = balance_vcs(a, rt, 6);
  // Any layer that received >= 2 VCs should not put all weight on one VC.
  for (int layer = 0; layer < a.num_layers; ++layer) {
    std::vector<double> w;
    for (int vc = 0; vc < map.num_vcs; ++vc)
      if (map.layer_of_vc[vc] == layer) w.push_back(map.weight_of_vc[vc]);
    if (w.size() < 2) continue;
    double total = 0, mx = 0;
    for (double x : w) {
      total += x;
      mx = std::max(mx, x);
    }
    if (total > 0) EXPECT_LT(mx, total * 0.95);
  }
}

}  // namespace
}  // namespace netsmith::vc
