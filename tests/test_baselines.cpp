#include "topologies/baselines/cmesh.hpp"
#include "topologies/baselines/dragonfly.hpp"
#include "topologies/baselines/hammingmesh.hpp"

#include <gtest/gtest.h>

#include "core/netsmith.hpp"
#include "core/objective.hpp"
#include "sim/sweep.hpp"
#include "topo/builders.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"
#include "topologies/baselines/physical.hpp"
#include "topologies/registry.hpp"
#include "vc/balance.hpp"
#include "vc/layers.hpp"

namespace netsmith::topologies {
namespace {

constexpr int kSizes[] = {20, 30, 48};

// ----------------------------------------------------------- generators ---

TEST(Dragonfly, PresetParamsAndLinkCount) {
  const struct { int routers, a, g; } presets[] = {
      {20, 4, 5}, {30, 5, 6}, {48, 6, 8}};
  for (const auto& pr : presets) {
    const auto p = baselines::dragonfly_for_routers(pr.routers);
    EXPECT_EQ(p.group_size, pr.a) << pr.routers;
    EXPECT_EQ(p.groups, pr.g) << pr.routers;
    const auto g = baselines::build_dragonfly(p);
    EXPECT_EQ(g.num_nodes(), pr.routers);
    // Clique per group + one global link per group pair.
    const double expect_links =
        pr.g * (pr.a * (pr.a - 1) / 2.0) + pr.g * (pr.g - 1) / 2.0;
    EXPECT_NEAR(g.duplex_links(), expect_links, 1e-9) << pr.routers;
    // 1 local + 1 global + 1 local hop reaches any router.
    EXPECT_LE(topo::diameter(g), 3) << pr.routers;
  }
  EXPECT_THROW(baselines::dragonfly_for_routers(13), std::invalid_argument);
  EXPECT_THROW(baselines::build_dragonfly({4, 1}), std::invalid_argument);
}

TEST(CMesh, ExpressChannelsShortenMesh) {
  for (int routers : kSizes) {
    const auto p = baselines::cmesh_for_routers(routers);
    EXPECT_EQ(p.rows * p.cols, routers);
    const auto g = baselines::build_cmesh(p);
    const auto lay = baselines::cmesh_layout(p);
    const auto mesh = topo::build_mesh(lay);
    EXPECT_GT(g.duplex_links(), mesh.duplex_links()) << routers;
    EXPECT_LT(topo::diameter(g), topo::diameter(mesh)) << routers;
    // Express channels keep the class at medium (span 2, no longer wires).
    const auto phys = baselines::classify_links(g, lay);
    EXPECT_EQ(phys.link_class, topo::LinkClass::kMedium) << routers;
    EXPECT_EQ(phys.extra_edge_delay.rows(), 0u) << routers;
  }
  baselines::CMeshParams plain;
  plain.express_stride = 0;
  const auto g = baselines::build_cmesh(plain);
  EXPECT_EQ(g, topo::build_mesh(baselines::cmesh_layout(plain)));
}

TEST(HammingMesh, BoardGridStructure) {
  const struct { int routers, a, b, x, y; } presets[] = {
      {20, 2, 2, 5, 1}, {30, 2, 5, 3, 1}, {48, 2, 2, 4, 3}};
  for (const auto& pr : presets) {
    const auto p = baselines::hammingmesh_for_routers(pr.routers);
    EXPECT_EQ(p.board_rows, pr.a);
    EXPECT_EQ(p.board_cols, pr.b);
    EXPECT_EQ(p.grid_rows, pr.x);
    EXPECT_EQ(p.grid_cols, pr.y);
    const auto g = baselines::build_hammingmesh(p);
    EXPECT_EQ(g.num_nodes(), pr.routers);
    // Board-level cliques: any two boards sharing a row/column of boards are
    // directly linked, so the flattening never exceeds mesh diameter.
    const auto lay = baselines::hammingmesh_layout(p);
    EXPECT_LE(topo::diameter(g), topo::diameter(topo::build_mesh(lay)));
  }
  EXPECT_THROW(baselines::build_hammingmesh({2, 2, 1, 1}),
               std::invalid_argument);
}

// ------------------------------------------------------- metric sanity ----

TEST(BaselineCatalog, ConnectivityRadixDiameterBisection) {
  for (int routers : kSizes) {
    for (const auto& t : baseline_catalog(routers)) {
      SCOPED_TRACE(t.name + " @ " + std::to_string(routers));
      EXPECT_EQ(t.graph.num_nodes(), routers);
      EXPECT_TRUE(t.graph.is_symmetric());
      EXPECT_TRUE(topo::strongly_connected(t.graph));
      // Full-duplex degree stays within a plausible NoI router budget.
      EXPECT_TRUE(topo::respects_radix(t.graph, 8));
      EXPECT_GE(topo::diameter(t.graph), 2);
      EXPECT_LE(topo::diameter(t.graph), 8);
      EXPECT_GT(topo::average_hops(t.graph), 1.0);
      EXPECT_GE(topo::bisection_bandwidth(t.graph), 2);
      EXPECT_TRUE(t.parametric);
      EXPECT_FALSE(t.spec.empty());
    }
  }
}

TEST(BaselineCatalog, PhysicalClassificationConsistent) {
  for (int routers : kSizes) {
    for (const auto& t : baseline_catalog(routers)) {
      SCOPED_TRACE(t.name);
      EXPECT_EQ(t.layout.n(), routers);
      const auto phys = baselines::classify_links(t.graph, t.layout);
      EXPECT_EQ(phys.link_class, t.link_class);
      EXPECT_EQ(phys.extra_edge_delay.rows(), t.extra_edge_delay.rows());
      // Any link within the Kite taxonomy must carry no extra stages; any
      // beyond must carry at least one.
      if (t.extra_edge_delay.rows() > 0) {
        for (const auto& [i, j] : t.graph.edges()) {
          const bool in_class =
              topo::link_allowed(t.layout, i, j, topo::LinkClass::kLarge);
          EXPECT_EQ(t.extra_edge_delay(i, j) > 0, !in_class)
              << i << ">" << j;
        }
      }
      EXPECT_GT(phys.max_length_mm, 0.0);
    }
  }
}

TEST(Physical, DragonflyHasPipelinedWiresCMeshDoesNot) {
  const auto cat = baseline_catalog(20);
  const auto df = find(cat, "Dragonfly-20");
  EXPECT_EQ(df.link_class, topo::LinkClass::kLarge);
  EXPECT_GT(df.extra_edge_delay.rows(), 0u);  // span-3 intra-group wires
  const auto cm = find(cat, "CMesh-20");
  EXPECT_EQ(cm.extra_edge_delay.rows(), 0u);
}

// ----------------------------------------------------- factory registry ---

TEST(Factory, BuiltinFamiliesRegistered) {
  for (const char* fam : {"dragonfly", "cmesh", "hammingmesh", "mesh",
                          "folded_torus", "kite", "frozen"})
    EXPECT_TRUE(has_factory(fam)) << fam;
  EXPECT_FALSE(has_factory("hypercube"));
  EXPECT_THROW(make("hypercube"), std::invalid_argument);
  const auto names = factory_names();
  EXPECT_GE(names.size(), 7u);
}

TEST(Factory, SpecRoundTrip) {
  for (int routers : kSizes)
    for (const auto& t : baseline_catalog(routers)) {
      const auto again = make_spec(t.spec);
      EXPECT_EQ(again.graph, t.graph) << t.spec;
      EXPECT_EQ(again.name, t.name) << t.spec;
      EXPECT_EQ(again.link_class, t.link_class) << t.spec;
    }
}

TEST(Factory, ExplicitParamsAndErrors) {
  const auto df = make("dragonfly", {{"group_size", "3"}, {"groups", "4"}});
  EXPECT_EQ(df.graph.num_nodes(), 12);
  const auto cm = make_spec("cmesh:rows=3,cols=4,express_stride=0");
  EXPECT_EQ(cm.graph.num_nodes(), 12);
  EXPECT_EQ(cm.link_class, topo::LinkClass::kSmall);  // plain mesh
  EXPECT_THROW(make("dragonfly", {{"groups", "x"}}), std::invalid_argument);
  EXPECT_THROW(make_spec("cmesh:rows"), std::invalid_argument);
  EXPECT_THROW(make("frozen"), std::invalid_argument);
  // routers= is a shortcut, not a constraint: combining it with explicit
  // structural params (or passing a non-positive count) is an error, never a
  // silent fallback.
  EXPECT_THROW(make_spec("dragonfly:routers=48,group_size=4"),
               std::invalid_argument);
  EXPECT_THROW(make_spec("cmesh:routers=0"), std::invalid_argument);
  EXPECT_THROW(make_spec("hammingmesh:routers=-4"), std::invalid_argument);
  const auto frozen_ns = make_spec("frozen:name=NS-LatOp-small-20");
  EXPECT_TRUE(frozen_ns.is_netsmith);
  EXPECT_EQ(frozen_ns.graph.num_nodes(), 20);
}

TEST(Factory, EveryBuiltinFamilySpecRoundTrips) {
  const Params none;
  for (const auto& family : factory_names()) {
    if (family == "frozen") continue;  // needs a name param
    SCOPED_TRACE(family);
    const auto t = make(family, none);
    ASSERT_FALSE(t.spec.empty());
    const auto again = make_spec(t.spec);
    EXPECT_EQ(again.graph, t.graph);
  }
  const auto fz = make_spec("frozen:name=Kite-small-20");
  EXPECT_EQ(fz.spec, "frozen:name=Kite-small-20");
  EXPECT_EQ(make_spec(fz.spec).graph, fz.graph);
}

TEST(Factory, CustomFamilyRegistration) {
  register_factory("ring", [](const Params& p) {
    const int n = param_int(p, "routers", 8);
    topo::DiGraph g(n);
    for (int i = 0; i < n; ++i) g.add_duplex(i, (i + 1) % n);
    NamedTopology t;
    t.name = "Ring-" + std::to_string(n);
    t.layout = topo::Layout{1, n, 2.0};
    t.link_class = topo::LinkClass::kLarge;
    t.graph = std::move(g);
    t.parametric = true;
    t.spec = "ring:routers=" + std::to_string(n);
    return t;
  });
  const auto r = make("ring", {{"routers", "6"}});
  EXPECT_EQ(r.graph.num_nodes(), 6);
  EXPECT_NEAR(r.graph.duplex_links(), 6, 1e-9);
}

// ------------------------------------------------- deadlock freedom -------

TEST(BaselineCatalog, VcLayeringVerifiedAcyclic) {
  for (int routers : kSizes) {
    for (const auto& t : baseline_catalog(routers)) {
      SCOPED_TRACE(t.name + " @ " + std::to_string(routers));
      const auto plan = core::plan_network(
          t.graph, t.layout, core::RoutingPolicy::kMclb, 6, 7,
          /*max_paths_per_flow=*/24);
      EXPECT_TRUE(plan.table.consistent_with(t.graph));
      EXPECT_TRUE(plan.table.is_minimal(t.graph));
      EXPECT_GE(plan.vc_layers, 1);
      EXPECT_LE(plan.vc_layers, 6);
      const auto layers = vc::layer_assignment(plan.vc_map);
      EXPECT_TRUE(vc::verify_acyclic(layers, plan.table, t.graph));
    }
  }
}

// ------------------------------------------- sweeps: uniform + tornado ----

class BaselineSweep : public ::testing::Test {
 protected:
  static sim::SimConfig cfg(const NamedTopology& t) {
    sim::SimConfig c;
    c.warmup = 800;
    c.measure = 2500;
    c.drain = 9000;
    c.extra_edge_delay = t.extra_edge_delay;
    return c;
  }

  static void expect_sane(const sim::SweepResult& r, const std::string& who) {
    EXPECT_GT(r.zero_load_latency_cycles, 3.0) << who;
    EXPECT_GT(r.saturation_pkt_node_cycle, 0.0) << who;
    for (const auto& pt : r.points) {
      // Deadlock would strand packets: every point must keep ejecting.
      EXPECT_GT(pt.stats.total_ejected, 0) << who;
    }
  }
};

TEST_F(BaselineSweep, UniformAndTornadoCompleteAtAllSizes) {
  for (int routers : kSizes) {
    for (const auto& t : baseline_catalog(routers)) {
      const std::string who = t.name + " @ " + std::to_string(routers);
      const auto plan = core::plan_network(
          t.graph, t.layout, core::RoutingPolicy::kMclb, 6, 7, 24);

      sim::TrafficConfig uniform;
      uniform.kind = sim::TrafficKind::kCoherence;
      expect_sane(sim::injection_sweep(plan, uniform, cfg(t),
                                       topo::clock_ghz(t.link_class),
                                       {0.005, 0.02, 0.06}),
                  who + " uniform");

      const auto tornado = sim::traffic_from_pattern(
          core::tornado_pattern(routers), /*injection_rate=*/0.01);
      expect_sane(sim::injection_sweep(plan, tornado, cfg(t),
                                       topo::clock_ghz(t.link_class),
                                       {0.005, 0.02, 0.06}),
                  who + " tornado");
    }
  }
}

}  // namespace
}  // namespace netsmith::topologies
