#include "topo/layout.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace netsmith::topo {
namespace {

TEST(Layout, IdRowColRoundTrip) {
  const auto lay = Layout::noi_4x5();
  EXPECT_EQ(lay.n(), 20);
  for (int r = 0; r < lay.rows; ++r)
    for (int c = 0; c < lay.cols; ++c) {
      const int v = lay.id(r, c);
      EXPECT_EQ(lay.row(v), r);
      EXPECT_EQ(lay.col(v), c);
    }
}

TEST(Layout, StandardLayoutSizes) {
  EXPECT_EQ(Layout::noi_4x5().n(), 20);
  EXPECT_EQ(Layout::noi_6x5().n(), 30);
  EXPECT_EQ(Layout::noi_8x6().n(), 48);
}

TEST(Layout, ClockSpeedsMatchPaper) {
  EXPECT_DOUBLE_EQ(clock_ghz(LinkClass::kSmall), 3.6);
  EXPECT_DOUBLE_EQ(clock_ghz(LinkClass::kMedium), 3.0);
  EXPECT_DOUBLE_EQ(clock_ghz(LinkClass::kLarge), 2.7);
}

TEST(LinkClass, SmallAllowsUpTo11) {
  const auto lay = Layout::noi_4x5();
  const int a = lay.id(1, 1);
  EXPECT_TRUE(link_allowed(lay, a, lay.id(1, 2), LinkClass::kSmall));   // (1,0)
  EXPECT_TRUE(link_allowed(lay, a, lay.id(2, 1), LinkClass::kSmall));   // (0,1)
  EXPECT_TRUE(link_allowed(lay, a, lay.id(2, 2), LinkClass::kSmall));   // (1,1)
  EXPECT_FALSE(link_allowed(lay, a, lay.id(1, 3), LinkClass::kSmall));  // (2,0)
  EXPECT_FALSE(link_allowed(lay, a, lay.id(3, 2), LinkClass::kSmall));  // (1,2)
}

TEST(LinkClass, MediumAddsStraightTwo) {
  const auto lay = Layout::noi_4x5();
  const int a = lay.id(1, 1);
  EXPECT_TRUE(link_allowed(lay, a, lay.id(1, 3), LinkClass::kMedium));   // (2,0)
  EXPECT_TRUE(link_allowed(lay, a, lay.id(3, 1), LinkClass::kMedium));   // (0,2)
  EXPECT_FALSE(link_allowed(lay, a, lay.id(3, 2), LinkClass::kMedium));  // (1,2)
  EXPECT_FALSE(link_allowed(lay, a, lay.id(3, 3), LinkClass::kMedium));  // (2,2)
}

TEST(LinkClass, LargeAddsKnightLinks) {
  const auto lay = Layout::noi_4x5();
  const int a = lay.id(1, 1);
  EXPECT_TRUE(link_allowed(lay, a, lay.id(2, 3), LinkClass::kLarge));   // (2,1)
  EXPECT_TRUE(link_allowed(lay, a, lay.id(3, 2), LinkClass::kLarge));   // (1,2)
  EXPECT_FALSE(link_allowed(lay, a, lay.id(3, 3), LinkClass::kLarge));  // (2,2)
  EXPECT_FALSE(link_allowed(lay, a, lay.id(1, 4), LinkClass::kLarge));  // (3,0)
}

TEST(LinkClass, NoSelfLinks) {
  const auto lay = Layout::noi_4x5();
  for (int v = 0; v < lay.n(); ++v)
    EXPECT_FALSE(link_allowed(lay, v, v, LinkClass::kLarge));
}

TEST(LinkClass, ValidLinksAreOrderedPairsBothWays) {
  const auto lay = Layout::noi_4x5();
  for (const auto cls :
       {LinkClass::kSmall, LinkClass::kMedium, LinkClass::kLarge}) {
    const auto links = valid_links(lay, cls);
    for (const auto& [i, j] : links) {
      EXPECT_NE(i, j);
      EXPECT_TRUE(link_allowed(lay, j, i, cls));  // span is symmetric
    }
  }
}

TEST(LinkClass, ValidLinkCountsGrowWithClass) {
  const auto lay = Layout::noi_4x5();
  const auto s = valid_links(lay, LinkClass::kSmall).size();
  const auto m = valid_links(lay, LinkClass::kMedium).size();
  const auto l = valid_links(lay, LinkClass::kLarge).size();
  EXPECT_LT(s, m);
  EXPECT_LT(m, l);
  // Small 4x5: horizontal 2*(4*4)=32, vertical 2*(3*5)=30, diagonal
  // 2*2*(3*4)=48 => 110 directed.
  EXPECT_EQ(s, 110u);
}

TEST(LinkLength, EuclideanWithPitch) {
  const auto lay = Layout::noi_4x5();  // pitch 2mm
  EXPECT_DOUBLE_EQ(link_length_mm(lay, lay.id(0, 0), lay.id(0, 1)), 2.0);
  EXPECT_DOUBLE_EQ(link_length_mm(lay, lay.id(0, 0), lay.id(1, 0)), 2.0);
  EXPECT_NEAR(link_length_mm(lay, lay.id(0, 0), lay.id(1, 1)),
              2.0 * std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(link_length_mm(lay, lay.id(0, 0), lay.id(0, 2)), 4.0);
}

TEST(ClassifySpan, MatchesTaxonomy) {
  EXPECT_EQ(classify_span(1, 0), LinkClass::kSmall);
  EXPECT_EQ(classify_span(1, 1), LinkClass::kSmall);
  EXPECT_EQ(classify_span(2, 0), LinkClass::kMedium);
  EXPECT_EQ(classify_span(0, 2), LinkClass::kMedium);
  EXPECT_EQ(classify_span(2, 1), LinkClass::kLarge);
  EXPECT_EQ(classify_span(-2, 1), LinkClass::kLarge);
  EXPECT_THROW(classify_span(3, 0), std::invalid_argument);
  EXPECT_THROW(classify_span(2, 2), std::invalid_argument);
}

}  // namespace
}  // namespace netsmith::topo
