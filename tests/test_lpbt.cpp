#include "topologies/lpbt.hpp"

#include <gtest/gtest.h>

#include "core/netsmith.hpp"
#include "topo/builders.hpp"
#include "topo/metrics.hpp"

namespace netsmith::topologies {
namespace {

TEST(Lpbt, HopsObjectiveTinyLayout) {
  const topo::Layout lay{2, 2, 2.0};
  lp::MilpOptions opts;
  opts.time_limit_s = 60.0;
  const auto r = lpbt_synthesize(lay, topo::LinkClass::kSmall, 2,
                                 LpbtObjective::kHops, opts);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  EXPECT_TRUE(topo::strongly_connected(r.graph));
  EXPECT_TRUE(topo::respects_radix(r.graph, 2));
  // The flow-based objective counts total hops across all flows; it must
  // match the decoded graph's total shortest hops at the optimum.
  const auto d = topo::apsp_bfs(r.graph);
  EXPECT_NEAR(r.objective, static_cast<double>(topo::total_hops(d)), 1e-6);
}

TEST(Lpbt, PowerObjectivePrefersShortLinks) {
  const topo::Layout lay{2, 2, 2.0};
  lp::MilpOptions opts;
  opts.time_limit_s = 60.0;
  const auto r = lpbt_synthesize(lay, topo::LinkClass::kSmall, 2,
                                 LpbtObjective::kPower, opts);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  ASSERT_TRUE(topo::strongly_connected(r.graph));
  // Power-optimal connectivity avoids diagonals (length 2*sqrt(2) > 2):
  for (const auto& [i, j] : r.graph.edges())
    EXPECT_NEAR(topo::link_length_mm(lay, i, j), 2.0, 1e-9);
}

TEST(Lpbt, RefusesPaperScale) {
  EXPECT_THROW(lpbt_synthesize(topo::Layout::noi_4x5(),
                               topo::LinkClass::kSmall, 4,
                               LpbtObjective::kHops),
               std::invalid_argument);
}

TEST(LpbtModelStats, DemonstratesBlowup) {
  // The formulation's size explains the paper's 20-day solve times: at the
  // 20-router scale LPBT needs ~50k binaries vs NetSmith's ~O(n^3).
  const auto tiny = lpbt_model_stats(topo::Layout{2, 2, 2.0},
                                     topo::LinkClass::kSmall);
  const auto paper = lpbt_model_stats(topo::Layout::noi_4x5(),
                                      topo::LinkClass::kSmall);
  EXPECT_LT(tiny.binaries, 200);
  EXPECT_GT(paper.binaries, 40000);
  EXPECT_GT(paper.constraints, 40000);
}

TEST(Lpbt, MatchesNetSmithOptimumOnTinyHops) {
  // On instances both can solve exactly, the two formulations agree on the
  // optimal total-hops value (they optimize the same quantity).
  const topo::Layout lay{2, 2, 2.0};
  lp::MilpOptions opts;
  opts.time_limit_s = 60.0;
  const auto lpbt = lpbt_synthesize(lay, topo::LinkClass::kSmall, 2,
                                    LpbtObjective::kHops, opts);
  ASSERT_EQ(lpbt.status, lp::SolveStatus::kOptimal);

  core::SynthesisConfig cfg;
  cfg.layout = lay;
  cfg.link_class = topo::LinkClass::kSmall;
  cfg.radix = 2;
  cfg.diameter_bound = 3;
  const auto ns = core::synthesize_exact(cfg, opts);
  const auto ns_total = topo::total_hops(topo::apsp_bfs(ns.graph));
  EXPECT_NEAR(lpbt.objective, static_cast<double>(ns_total), 1e-6);
}

}  // namespace
}  // namespace netsmith::topologies
