#include "lp/milp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace netsmith::lp {
namespace {

TEST(Milp, Knapsack) {
  Model m;
  const int a = m.add_binary(60);
  const int b = m.add_binary(100);
  const int c = m.add_binary(120);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{a, 10}, {b, 20}, {c, 30}}, Rel::kLe, 50);
  const auto s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 220.0, 1e-9);
  EXPECT_NEAR(s.x[a], 0.0, 1e-9);
  EXPECT_NEAR(s.x[b], 1.0, 1e-9);
  EXPECT_NEAR(s.x[c], 1.0, 1e-9);
}

TEST(Milp, PureLpPassthrough) {
  Model m;
  const int x = m.add_continuous(0, 2, 1);
  m.set_sense(Sense::kMaximize);
  const auto s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
}

TEST(Milp, IntegerRounding) {
  // LP optimum at x = 2.5 -> integer optimum at 2.
  Model m;
  const int x = m.add_integer(0, 10, 1);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{x, 2}}, Rel::kLe, 5);
  const auto s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Milp, InfeasibleIntegers) {
  // 2x = 3 has no integer solution for x in [0, 5].
  Model m;
  const int x = m.add_integer(0, 5, 1);
  m.add_constraint({{x, 2}}, Rel::kEq, 3);
  EXPECT_EQ(solve_milp(m).status, SolveStatus::kInfeasible);
}

TEST(Milp, EqualityWithBinaries) {
  // Pick exactly two of four binaries at minimum cost.
  Model m;
  const double cost[4] = {5, 1, 3, 2};
  std::vector<Term> sum;
  std::vector<int> v;
  for (int i = 0; i < 4; ++i) {
    v.push_back(m.add_binary(cost[i]));
    sum.push_back({v[i], 1.0});
  }
  m.add_constraint(std::move(sum), Rel::kEq, 2);
  const auto s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);  // picks costs 1 and 2
}

TEST(Milp, BoundReportedOnOptimal) {
  Model m;
  const int a = m.add_binary(3);
  const int b = m.add_binary(4);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{a, 1}, {b, 1}}, Rel::kLe, 1);
  const auto s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
  EXPECT_NEAR(s.bound, 4.0, 1e-6);
}

TEST(Milp, ProgressCallbackFires) {
  Model m;
  std::vector<Term> row;
  util::Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    const int v = m.add_binary(1.0 + rng.uniform());
    row.push_back({v, 1.0 + rng.uniform() * 3});
  }
  m.set_sense(Sense::kMaximize);
  m.add_constraint(std::move(row), Rel::kLe, 10);
  MilpOptions opts;
  int calls = 0;
  opts.progress = [&](double, double, double) { ++calls; };
  const auto s = solve_milp(m, opts);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_GE(calls, 1);
}

// Brute-force reference for random binary programs.
double brute_force_max(const Model& m) {
  const int n = m.num_vars();
  double best = -1e18;
  for (int bits = 0; bits < (1 << n); ++bits) {
    std::vector<double> x(n);
    for (int j = 0; j < n; ++j) x[j] = (bits >> j) & 1;
    if (m.max_violation(x) > 1e-9) continue;
    best = std::max(best, m.objective_value(x));
  }
  return best;
}

class RandomBinaryProgram : public ::testing::TestWithParam<int> {};

TEST_P(RandomBinaryProgram, MatchesBruteForce) {
  util::Rng rng(40 + GetParam());
  Model m;
  const int n = 10;
  std::vector<int> v;
  for (int j = 0; j < n; ++j) v.push_back(m.add_binary(rng.uniform() * 10));
  m.set_sense(Sense::kMaximize);
  for (int c = 0; c < 4; ++c) {
    std::vector<Term> row;
    for (int j = 0; j < n; ++j)
      if (rng.bernoulli(0.6)) row.push_back({v[j], 1.0 + rng.uniform() * 4});
    if (row.empty()) continue;
    m.add_constraint(std::move(row), Rel::kLe, 4.0 + rng.uniform() * 8);
  }
  const auto s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, brute_force_max(m), 1e-6);
  EXPECT_LE(m.max_violation(s.x), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBinaryProgram, ::testing::Range(0, 16));

// Random bounded integer programs against brute force.
class RandomIntegerProgram : public ::testing::TestWithParam<int> {};

TEST_P(RandomIntegerProgram, MatchesBruteForce) {
  util::Rng rng(140 + GetParam());
  Model m;
  const int n = 4;
  std::vector<int> v;
  for (int j = 0; j < n; ++j) v.push_back(m.add_integer(0, 3, rng.uniform() * 5));
  m.set_sense(Sense::kMaximize);
  std::vector<Term> row;
  for (int j = 0; j < n; ++j) row.push_back({v[j], 1.0 + rng.uniform() * 2});
  m.add_constraint(std::move(row), Rel::kLe, 6.0);

  double best = -1e18;
  for (int a = 0; a <= 3; ++a)
    for (int b = 0; b <= 3; ++b)
      for (int c = 0; c <= 3; ++c)
        for (int d = 0; d <= 3; ++d) {
          std::vector<double> x{double(a), double(b), double(c), double(d)};
          if (m.max_violation(x) > 1e-9) continue;
          best = std::max(best, m.objective_value(x));
        }

  const auto s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIntegerProgram, ::testing::Range(0, 12));

}  // namespace
}  // namespace netsmith::lp
