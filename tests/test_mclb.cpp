#include "routing/mclb.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace netsmith::routing {
namespace {

TEST(MclbLocalSearch, ProducesValidChoice) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto ps = enumerate_shortest_paths(g);
  const auto r = mclb_local_search(ps);
  const auto rt = r.table(ps);
  EXPECT_TRUE(rt.consistent_with(g));
  EXPECT_TRUE(rt.is_minimal(g));
  EXPECT_GT(r.max_load, 0.0);
}

TEST(MclbLocalSearch, NoWorseThanFirstChoice) {
  const auto g = topo::build_mesh(topo::Layout::noi_4x5());
  const auto ps = enumerate_shortest_paths(g);
  const auto naive = analyze_uniform(RoutingTable::select_first(ps));
  const auto r = mclb_local_search(ps);
  EXPECT_LE(r.max_load, naive.max_load + 1e-12);
}

TEST(MclbLocalSearch, BeatsRandomSelectionOnIrregularTopology) {
  util::Rng rng(23);
  const auto g =
      topo::build_random(topo::Layout::noi_4x5(), topo::LinkClass::kMedium, 4, rng);
  const auto ps = enumerate_shortest_paths(g);
  if (!ps.all_flows_covered()) GTEST_SKIP() << "random graph disconnected";
  util::Rng sel(1);
  const auto rnd = analyze_uniform(RoutingTable::select_random(ps, sel));
  const auto r = mclb_local_search(ps);
  EXPECT_LE(r.max_load, rnd.max_load + 1e-12);
}

TEST(MclbExact, OptimalOnSmallDiamond) {
  // Diamond: 0 -> {1,2} -> 3 plus direct competition; two shortest paths
  // for 0->3 must split away from congested links.
  topo::DiGraph g(4);
  g.add_duplex(0, 1);
  g.add_duplex(0, 2);
  g.add_duplex(1, 3);
  g.add_duplex(2, 3);
  const auto ps = enumerate_shortest_paths(g);
  lp::MilpOptions opts;
  opts.time_limit_s = 10.0;
  const auto r = mclb_exact(ps, opts);
  EXPECT_TRUE(r.proven_optimal);
  // By symmetry the optimum puts at most 2 flows on any directed link:
  // each link carries its adjacent 1-hop flow plus at most one 2-hop flow.
  EXPECT_LE(r.max_flows_on_link, 2);
  EXPECT_TRUE(r.table(ps).consistent_with(g));
}

TEST(MclbExact, NeverWorseThanLocalSearch) {
  const topo::Layout lay{2, 3, 2.0};
  const auto g = topo::build_mesh(lay);
  const auto ps = enumerate_shortest_paths(g);
  const auto ls = mclb_local_search(ps);
  lp::MilpOptions opts;
  opts.time_limit_s = 15.0;
  const auto ex = mclb_exact(ps, opts);
  EXPECT_LE(ex.max_flows_on_link, ls.max_flows_on_link);
}

TEST(MclbRoute, DispatchesAndStaysConsistent) {
  const auto g = topo::build_mesh(topo::Layout{3, 3, 2.0});
  const auto ps = enumerate_shortest_paths(g);
  const auto r = mclb_route(ps, /*exact_path_limit=*/100000);
  EXPECT_TRUE(r.table(ps).consistent_with(g));
}

TEST(MclbExact, AcceptsCallerIncumbent) {
  // Passing the local-search incumbent must not change the optimum — it
  // only spares mclb_exact from repeating the search internally.
  const topo::Layout lay{2, 3, 2.0};
  const auto g = topo::build_mesh(lay);
  const auto ps = enumerate_shortest_paths(g);
  const auto ls = mclb_local_search(ps);
  lp::MilpOptions opts;
  opts.time_limit_s = 15.0;
  const auto with = mclb_exact(ps, opts, &ls);
  const auto without = mclb_exact(ps, opts);
  EXPECT_EQ(with.max_flows_on_link, without.max_flows_on_link);
  EXPECT_EQ(with.proven_optimal, without.proven_optimal);
  EXPECT_LE(with.max_flows_on_link, ls.max_flows_on_link);
}

TEST(MclbLocalSearch, FlatAndScanEnginesAgree) {
  // Spot check of the oracle contract on a paper-scale instance (the full
  // randomized suite lives in test_mclb_incremental.cpp).
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto ps = enumerate_shortest_paths(g);
  const auto flat = mclb_local_search(ps);
  const auto scan = mclb_local_search_scan(ps);
  EXPECT_EQ(flat.choice, scan.choice);
  EXPECT_TRUE(flat.objective.identical(scan.objective));
}

TEST(MclbWeighted, HeavyFlowAvoidsSharedLink) {
  // Two parallel routes; weighted flow should grab the dedicated one.
  topo::DiGraph g(4);
  g.add_duplex(0, 1);
  g.add_duplex(0, 2);
  g.add_duplex(1, 3);
  g.add_duplex(2, 3);
  const auto ps = enumerate_shortest_paths(g);
  std::vector<double> w(16, 1.0);
  w[0 * 4 + 3] = 10.0;  // heavy 0->3
  const auto r = mclb_local_search(ps, w);
  const auto rt = r.table(ps);
  EXPECT_TRUE(rt.consistent_with(g));
  EXPECT_GT(r.max_load, 0.0);
}

TEST(MclbResult, MaxLoadNormalization) {
  const auto g = topo::build_mesh(topo::Layout{1, 3, 2.0});
  const auto ps = enumerate_shortest_paths(g);
  const auto r = mclb_local_search(ps);
  // Line 0-1-2: link (0,1) carries flows 0->1, 0->2; (1,2) carries 0->2,
  // 1->2 => max 2 flows, n-1 = 2 -> normalized 1.0.
  EXPECT_EQ(r.max_flows_on_link, 2);
  EXPECT_NEAR(r.max_load, 1.0, 1e-12);
}

}  // namespace
}  // namespace netsmith::routing
