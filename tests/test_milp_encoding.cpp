#include "core/milp_encoding.hpp"

#include <gtest/gtest.h>

#include "core/netsmith.hpp"
#include "topo/builders.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"

namespace netsmith::core {
namespace {

TEST(MilpEncoding, LatOpTinyLayoutSolves) {
  const topo::Layout lay{2, 2, 2.0};
  auto enc = encode_latop(lay, topo::LinkClass::kSmall, 2, /*diam=*/3);
  lp::MilpOptions opts;
  opts.time_limit_s = 30.0;
  const auto sol = lp::solve_milp(enc.model, opts);
  ASSERT_EQ(sol.status, lp::SolveStatus::kOptimal);
  const auto g = decode_topology(enc, sol.x);
  EXPECT_TRUE(topo::strongly_connected(g));
  EXPECT_TRUE(topo::respects_radix(g, 2));
  // 2x2 with radix 2: every node can link to every other in small class
  // (all spans <= (1,1)); optimum is total hops 12... each node reaches 2
  // others at 1 hop and 1 at >=1: radix 2 allows out-degree 2 so one pair
  // stays at 2 hops per node: total = 12*1? Verify against the decoded
  // graph's true metric instead of a hand value:
  const auto d = topo::apsp_bfs(g);
  EXPECT_NEAR(sol.objective, static_cast<double>(topo::total_hops(d)), 1e-6);
}

TEST(MilpEncoding, DVariablesMatchTrueDistances) {
  const topo::Layout lay{2, 2, 2.0};
  auto enc = encode_latop(lay, topo::LinkClass::kSmall, 2, 3);
  lp::MilpOptions opts;
  opts.time_limit_s = 60.0;
  const auto sol = lp::solve_milp(enc.model, opts);
  ASSERT_EQ(sol.status, lp::SolveStatus::kOptimal);
  const auto g = decode_topology(enc, sol.x);
  const auto dist = topo::apsp_bfs(g);
  const int n = lay.n();
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const int dv = enc.d_var[i * n + j];
      // At the optimum the D variables equal the decoded graph's true
      // shortest distances (the core soundness claim of the C4/C5 encoding).
      EXPECT_NEAR(sol.x[dv], static_cast<double>(dist(i, j)), 1e-6)
          << i << "->" << j;
    }
}

TEST(MilpEncoding, MatchesAnnealerOnProvenTinyInstance) {
  // 2x2 is small enough for the MILP to prove optimality; the annealer must
  // match the proven optimum.
  const topo::Layout lay{2, 2, 2.0};
  SynthesisConfig cfg;
  cfg.layout = lay;
  cfg.link_class = topo::LinkClass::kSmall;
  cfg.radix = 2;
  cfg.diameter_bound = 3;
  cfg.objective = Objective::kLatOp;
  lp::MilpOptions opts;
  opts.time_limit_s = 60.0;
  const auto exact = synthesize_exact(cfg, opts);
  cfg.time_limit_s = 2.0;
  cfg.restarts = 2;
  cfg.seed = 2;
  const auto anneal = synthesize(cfg);
  EXPECT_NEAR(anneal.objective_value, exact.objective_value, 1e-9)
      << "annealer missed the proven optimum on a tiny instance";
}

TEST(MilpEncoding, AnytimeIncumbentCrossValidatesAnnealer) {
  // 2x3/medium cannot be *proven* optimal quickly (the big-M relaxation is
  // weak — the same reason the paper's Gurobi runs plateau in Fig. 5), but
  // the solver's anytime incumbent and the annealer should land on equally
  // good topologies.
  const topo::Layout lay{2, 3, 2.0};
  SynthesisConfig cfg;
  cfg.layout = lay;
  cfg.link_class = topo::LinkClass::kMedium;
  cfg.radix = 2;
  cfg.diameter_bound = 4;
  cfg.objective = Objective::kLatOp;
  lp::MilpOptions opts;
  opts.time_limit_s = 20.0;
  const auto milp = synthesize_exact(cfg, opts);  // anytime incumbent
  cfg.time_limit_s = 3.0;
  cfg.restarts = 3;
  cfg.seed = 2;
  const auto anneal = synthesize(cfg);
  // Annealer is at least as good as the MILP incumbent, and both respect
  // the MILP's proven lower bound.
  EXPECT_LE(anneal.objective_value, milp.objective_value + 1e-9);
  EXPECT_GE(anneal.objective_value + 1e-9, milp.bound);
}

TEST(MilpEncoding, SymmetryConstraintHolds) {
  const topo::Layout lay{2, 2, 2.0};
  auto enc = encode_latop(lay, topo::LinkClass::kSmall, 2, 3,
                          /*symmetric=*/true);
  lp::MilpOptions opts;
  opts.time_limit_s = 30.0;
  const auto sol = lp::solve_milp(enc.model, opts);
  ASSERT_EQ(sol.status, lp::SolveStatus::kOptimal);
  EXPECT_TRUE(decode_topology(enc, sol.x).is_symmetric());
}

TEST(MilpEncoding, ScopMaximizesSparsestCut) {
  const topo::Layout lay{2, 2, 2.0};
  auto enc = encode_scop(lay, topo::LinkClass::kSmall, 2, 3);
  lp::MilpOptions opts;
  opts.time_limit_s = 60.0;
  const auto sol = lp::solve_milp(enc.model, opts);
  ASSERT_EQ(sol.status, lp::SolveStatus::kOptimal);
  const auto g = decode_topology(enc, sol.x);
  ASSERT_TRUE(topo::strongly_connected(g));
  const auto cut = topo::sparsest_cut_exact(g);
  // The model's B variable must equal the decoded graph's true sparsest cut.
  EXPECT_NEAR(sol.x[enc.b_var], cut.bandwidth, 1e-6);
  // Radix 2, 4 nodes: the ring achieves B = min over cuts; a 1v3 cut gives
  // 2/(1*3) = 2/3, a 2v2 cut gives 2/4 = 1/2 -> optimum 1/2.
  EXPECT_NEAR(cut.bandwidth, 0.5, 1e-6);
}

TEST(MilpEncoding, RejectsOversizedLayouts) {
  EXPECT_THROW(
      encode_latop(topo::Layout::noi_4x5(), topo::LinkClass::kSmall, 4, 5),
      std::invalid_argument);
}

TEST(MilpEncoding, PatternObjectiveRejectedByExactPath) {
  SynthesisConfig cfg;
  cfg.layout = topo::Layout{2, 2, 2.0};
  cfg.objective = Objective::kPattern;
  EXPECT_THROW(synthesize_exact(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace netsmith::core
