// Fault injection & graceful degradation (fault/model.hpp, routing/repair.hpp,
// the simulator's fault semantics, and the Study resilience pipeline):
//  - the fault-free hot path is bit-identical with and without an (empty)
//    fault plan attached,
//  - schedules are deterministic functions of the scenario,
//  - repair reroutes every severable flow and counts the unroutable rest,
//  - conservation holds under both degradation contracts: lossless strands
//    (injected == ejected after recovery + drain) and lossy drops
//    (injected == ejected + dropped), in reference and optimized modes,
//  - resilience reports are byte-identical across Study thread widths, and
//    failed jobs degrade the report instead of aborting the study.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/report.hpp"
#include "api/study.hpp"
#include "fault/model.hpp"
#include "routing/repair.hpp"
#include "sim/network.hpp"
#include "topo/builders.hpp"

namespace netsmith {
namespace {

using fault::FaultEvent;
using fault::FaultEventKind;
using fault::FaultScenarioSpec;
using sim::SimConfig;
using sim::SimStats;
using sim::TrafficConfig;
using sim::TrafficKind;

core::NetworkPlan mesh_plan(int rows = 3, int cols = 4) {
  const topo::Layout lay{rows, cols, 2.0};
  return core::plan_network(topo::build_mesh(lay), lay,
                            core::RoutingPolicy::kMclb, /*num_vcs=*/6);
}

TrafficConfig coherence(double rate) {
  TrafficConfig t;
  t.kind = TrafficKind::kCoherence;
  t.injection_rate = rate;
  return t;
}

SimConfig base_cfg(std::uint64_t seed = 21) {
  SimConfig cfg;
  cfg.warmup = 1000;
  cfg.measure = 3000;
  cfg.drain = 30000;
  cfg.seed = seed;
  return cfg;
}

long horizon(const SimConfig& cfg) {
  return cfg.warmup + cfg.measure + cfg.drain;
}

// Every SimStats field. Doubles compare exactly: identical integer event
// histories imply the exact same arithmetic.
void expect_stats_equal(const SimStats& a, const SimStats& b) {
  EXPECT_DOUBLE_EQ(a.offered, b.offered);
  EXPECT_DOUBLE_EQ(a.accepted, b.accepted);
  EXPECT_DOUBLE_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
  EXPECT_EQ(a.tagged_injected, b.tagged_injected);
  EXPECT_EQ(a.tagged_completed, b.tagged_completed);
  EXPECT_EQ(a.total_injected, b.total_injected);
  EXPECT_EQ(a.total_ejected, b.total_ejected);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_DOUBLE_EQ(a.mean_source_backlog, b.mean_source_backlog);
  EXPECT_EQ(a.cycles_run, b.cycles_run);
  EXPECT_EQ(a.flits_injected, b.flits_injected);
  EXPECT_EQ(a.flits_ejected, b.flits_ejected);
  EXPECT_EQ(a.flits_buffered_end, b.flits_buffered_end);
  EXPECT_EQ(a.flits_inflight_end, b.flits_inflight_end);
  EXPECT_EQ(a.source_flits_end, b.source_flits_end);
  EXPECT_EQ(a.credits_consistent, b.credits_consistent);
  EXPECT_EQ(a.owners_clear, b.owners_clear);
  EXPECT_EQ(a.active_router_cycles, b.active_router_cycles);
  EXPECT_EQ(a.arrival_heap_pops, b.arrival_heap_pops);
  EXPECT_EQ(a.flits_dropped, b.flits_dropped);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.tagged_dropped, b.tagged_dropped);
  EXPECT_EQ(a.packets_unroutable, b.packets_unroutable);
  EXPECT_DOUBLE_EQ(a.latency_p50_cycles, b.latency_p50_cycles);
  EXPECT_DOUBLE_EQ(a.latency_p99_cycles, b.latency_p99_cycles);
  EXPECT_DOUBLE_EQ(a.delivered_fraction, b.delivered_fraction);
}

// Conservation with the fault term; quiesced additionally demands a fully
// drained network.
void expect_fault_conservation(const SimStats& s) {
  EXPECT_EQ(s.flits_injected, s.flits_ejected + s.flits_dropped +
                                  s.flits_buffered_end + s.flits_inflight_end);
  EXPECT_TRUE(s.credits_consistent);
}

void expect_quiesced(const SimStats& s) {
  expect_fault_conservation(s);
  EXPECT_EQ(s.flits_buffered_end, 0);
  EXPECT_EQ(s.flits_inflight_end, 0);
  EXPECT_EQ(s.source_flits_end, 0);
  EXPECT_TRUE(s.owners_clear);
  EXPECT_GT(s.flits_injected, 0);
}

// Runs the same faulted simulation in reference and optimized modes and
// checks both produce the exact same stats (the fault machinery must not
// break the active-set equivalence).
SimStats run_both_modes(const core::NetworkPlan& plan,
                        const TrafficConfig& traffic, SimConfig cfg,
                        const fault::FaultPlan& fp) {
  cfg.faults = &fp;
  cfg.reference_mode = true;
  const auto ref = sim::simulate(plan, traffic, cfg);
  cfg.reference_mode = false;
  const auto opt = sim::simulate(plan, traffic, cfg);
  expect_stats_equal(ref, opt);
  return opt;
}

// ------------------------------------------------- fault-free bit-identity --

TEST(FaultFree, EmptyPlanPreservesStatsBitForBit) {
  const auto plan = mesh_plan();
  const auto traffic = coherence(0.05);
  for (const bool reference : {false, true}) {
    SimConfig cfg = base_cfg();
    cfg.reference_mode = reference;
    const auto bare = sim::simulate(plan, traffic, cfg);

    // Null plan pointer and a prepared-but-empty plan must both leave the
    // hot path untouched.
    const fault::FaultPlan empty;
    cfg.faults = &empty;
    expect_stats_equal(bare, sim::simulate(plan, traffic, cfg));

    FaultScenarioSpec none;
    none.mode = "targeted";
    none.k = 0;
    const auto prepared = fault::prepare_fault_plan(plan, none, horizon(cfg));
    EXPECT_TRUE(prepared.empty());
    cfg.faults = &prepared;
    expect_stats_equal(bare, sim::simulate(plan, traffic, cfg));

    EXPECT_EQ(bare.flits_dropped, 0);
    EXPECT_EQ(bare.packets_unroutable, 0);
    EXPECT_DOUBLE_EQ(bare.delivered_fraction, 1.0);
  }
}

// ------------------------------------------------------ schedule building --

TEST(FaultSchedule, TargetedFailsKDuplexLinks) {
  const auto plan = mesh_plan();
  FaultScenarioSpec sc;
  sc.mode = "targeted";
  sc.k = 2;
  sc.fail_at = 100;
  sc.recover_at = 900;
  const auto sched = fault::build_fault_schedule(sc, plan, /*horizon=*/5000);
  int down = 0, up = 0;
  for (const auto& e : sched.events) {
    if (e.kind == FaultEventKind::kLinkDown) {
      EXPECT_EQ(e.cycle, 100);
      ++down;
    } else if (e.kind == FaultEventKind::kLinkUp) {
      EXPECT_EQ(e.cycle, 900);
      ++up;
    }
  }
  EXPECT_EQ(down, 4);  // 2 duplex links = 4 directed edges
  EXPECT_EQ(up, 4);
}

TEST(FaultSchedule, DeterministicAcrossCalls) {
  const auto plan = mesh_plan();
  FaultScenarioSpec sc;
  sc.mode = "random";
  sc.link_mtbf = 4000;
  sc.link_mttr = 800;
  sc.router_mtbf = 20000;
  sc.router_mttr = 1000;
  sc.seed = 99;
  const auto a = fault::build_fault_schedule(sc, plan, 30000);
  const auto b = fault::build_fault_schedule(sc, plan, 30000);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.events, b.events);
  // A different fault seed yields a different outage draw.
  sc.seed = 100;
  EXPECT_NE(fault::build_fault_schedule(sc, plan, 30000).events, a.events);
}

TEST(FaultSchedule, ExplicitEventsValidated) {
  const auto plan = mesh_plan();
  FaultScenarioSpec sc;
  sc.mode = "explicit";
  sc.events = {{10, FaultEventKind::kLinkDown, 0, 11}};  // absent edge
  EXPECT_THROW(fault::build_fault_schedule(sc, plan, 5000),
               std::invalid_argument);
  sc.events = {{10, FaultEventKind::kRouterDown, 99, -1}};  // absent router
  EXPECT_THROW(fault::build_fault_schedule(sc, plan, 5000),
               std::invalid_argument);
}

// --------------------------------------------------------------- repair ---

TEST(Repair, ReroutesEveryFlowAroundACut) {
  const auto plan = mesh_plan();
  // A 3x4 mesh stays connected after losing any single duplex link, so a
  // repair must reroute every affected flow.
  const std::vector<std::pair<int, int>> down = {{0, 1}, {1, 0}};
  const auto rr = routing::repair_routes(plan.graph, plan.table, down);
  EXPECT_GT(rr.flows_affected, 0);
  EXPECT_EQ(rr.flows_unroutable, 0);
  EXPECT_EQ(rr.flows_rerouted, rr.flows_affected);
  // No repaired route may cross the failed edge, in either direction.
  const int n = plan.graph.num_nodes();
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      int cur = s, hops = 0;
      while (cur != d) {
        const int nxt = rr.table.next_hop(cur, s, d);
        ASSERT_GE(nxt, 0);
        EXPECT_FALSE((cur == 0 && nxt == 1) || (cur == 1 && nxt == 0))
            << "flow " << s << "->" << d << " crosses the failed link";
        cur = nxt;
        ASSERT_LT(++hops, n);
      }
    }
  }
}

TEST(Repair, CountsUnroutableFlowsAcrossABridge) {
  // Line 0 - 1 - 2: cutting the (1,2) duplex link strands router 2 entirely.
  const auto g = topo::DiGraph::from_string("3:0>1,1>0,1>2,2>1");
  const topo::Layout lay{1, 3, 2.0};
  const auto plan =
      core::plan_network(g, lay, core::RoutingPolicy::kMclb, /*num_vcs=*/6);
  const std::vector<std::pair<int, int>> down = {{1, 2}, {2, 1}};
  const auto rr = routing::repair_routes(plan.graph, plan.table, down);
  EXPECT_EQ(rr.flows_affected, 4);  // 0->2, 1->2, 2->0, 2->1
  EXPECT_EQ(rr.flows_unroutable, 4);
  EXPECT_EQ(rr.flows_rerouted, 0);
}

TEST(Repair, UntouchedFlowsKeepTheirIncumbentPaths) {
  const auto plan = mesh_plan();
  const std::vector<std::pair<int, int>> down = {{0, 1}, {1, 0}};
  const auto rr = routing::repair_routes(plan.graph, plan.table, down);
  const int n = plan.graph.num_nodes();
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      // A flow whose base route avoids the cut keeps it hop for hop.
      int cur = s;
      bool crosses = false;
      while (cur != d) {
        const int nxt = plan.table.next_hop(cur, s, d);
        if ((cur == 0 && nxt == 1) || (cur == 1 && nxt == 0)) crosses = true;
        cur = nxt;
      }
      if (crosses) continue;
      cur = s;
      while (cur != d) {
        EXPECT_EQ(rr.table.next_hop(cur, s, d), plan.table.next_hop(cur, s, d));
        cur = plan.table.next_hop(cur, s, d);
      }
    }
  }
}

// --------------------------------------------------- simulator semantics ---

TEST(FaultSim, LosslessLinkFlapRecoversAndDrains) {
  const auto plan = mesh_plan();
  SimConfig cfg = base_cfg();
  FaultScenarioSpec sc;
  sc.mode = "targeted";
  sc.k = 1;
  sc.fail_at = 500;
  sc.recover_at = 2500;
  sc.lossy = false;
  sc.repair = false;  // strand flits on the wire until the link recovers
  const auto fp = fault::prepare_fault_plan(plan, sc, horizon(cfg));
  const auto s = run_both_modes(plan, coherence(0.02), cfg, fp);
  expect_quiesced(s);
  EXPECT_EQ(s.flits_dropped, 0);
  EXPECT_EQ(s.packets_dropped, 0);
  EXPECT_EQ(s.flits_injected, s.flits_ejected);
  EXPECT_DOUBLE_EQ(s.delivered_fraction, 1.0);
}

TEST(FaultSim, LossyPermanentFailureDropsAndConserves) {
  const auto plan = mesh_plan();
  SimConfig cfg = base_cfg();
  // Long wires (think CDC-retimed interposer crossings) so the failing links
  // are guaranteed to be carrying worms when they go down.
  const auto n = static_cast<std::size_t>(plan.graph.num_nodes());
  cfg.extra_edge_delay = util::Matrix<int>(n, n, 8);
  FaultScenarioSpec sc;
  sc.mode = "targeted";
  sc.k = 4;
  sc.fail_at = 1500;  // mid-measurement: worms are on the wire
  // Recovery lets pre-fault packets whose pinned route crosses the failed
  // links (stalled, not dropped — only wire-caught worms are purged) finish,
  // so the network fully drains.
  sc.recover_at = 2600;
  sc.lossy = true;
  sc.repair = true;
  const auto fp = fault::prepare_fault_plan(plan, sc, horizon(cfg));
  const auto s = run_both_modes(plan, coherence(0.05), cfg, fp);
  expect_quiesced(s);
  EXPECT_GT(s.packets_dropped, 0);
  EXPECT_GT(s.flits_dropped, 0);
  EXPECT_EQ(s.flits_injected, s.flits_ejected + s.flits_dropped);
  EXPECT_LT(s.delivered_fraction, 1.0);
  EXPECT_LE(s.latency_p50_cycles, s.latency_p99_cycles);
}

TEST(FaultSim, RouterDownQuiescesAndRecovers) {
  const auto plan = mesh_plan();
  SimConfig cfg = base_cfg();
  FaultScenarioSpec sc;
  sc.mode = "explicit";
  sc.events = {{500, FaultEventKind::kRouterDown, 5, -1},
               {2500, FaultEventKind::kRouterUp, 5, -1}};
  const auto fp = fault::prepare_fault_plan(plan, sc, horizon(cfg));
  EXPECT_EQ(fp.max_routers_down, 1);
  // A down router refuses injection and ejection but still forwards, so
  // after recovery everything drains.
  const auto s = run_both_modes(plan, coherence(0.02), cfg, fp);
  expect_quiesced(s);
  EXPECT_EQ(s.flits_injected, s.flits_ejected);
}

TEST(FaultSim, RepairThenRecoverRoundTrip) {
  const auto plan = mesh_plan();
  SimConfig cfg = base_cfg();
  FaultScenarioSpec sc;
  sc.mode = "targeted";
  sc.k = 1;
  sc.fail_at = 500;
  sc.recover_at = 2500;
  sc.lossy = false;
  sc.repair = true;
  const auto fp = fault::prepare_fault_plan(plan, sc, horizon(cfg));
  // Three epochs: pre-fault, degraded (repaired), recovered.
  ASSERT_EQ(fp.epochs.size(), 3u);
  EXPECT_EQ(fp.epochs[0].cycle, 0);
  EXPECT_EQ(fp.epochs[1].cycle, 500);
  EXPECT_EQ(fp.epochs[2].cycle, 2500);
  EXPECT_TRUE(fp.epochs[1].repaired);
  EXPECT_GT(fp.flows_rerouted, 0);
  EXPECT_EQ(fp.flows_unroutable, 0);
  const auto s = run_both_modes(plan, coherence(0.02), cfg, fp);
  expect_quiesced(s);
  EXPECT_EQ(s.flits_dropped, 0);
  EXPECT_EQ(s.flits_injected, s.flits_ejected);
}

TEST(FaultSim, RandomScheduleConservesInBothContracts) {
  const auto plan = mesh_plan();
  SimConfig cfg = base_cfg(33);
  FaultScenarioSpec sc;
  sc.mode = "random";
  sc.link_mtbf = 6000;
  sc.link_mttr = 600;
  sc.seed = 5;
  for (const bool lossy : {false, true}) {
    sc.lossy = lossy;
    const auto fp = fault::prepare_fault_plan(plan, sc, horizon(cfg));
    ASSERT_FALSE(fp.empty());
    const auto s = run_both_modes(plan, coherence(0.03), cfg, fp);
    expect_fault_conservation(s);
    if (!lossy) EXPECT_EQ(s.flits_dropped, 0);
  }
}

// ------------------------------------------------------- Study / Report ---

api::ExperimentSpec resilience_spec() {
  api::ExperimentSpec spec;
  spec.name = "resilience-test";
  api::TopologySpec mesh;
  mesh.source = api::TopologySource::kBaseline;
  mesh.baseline = "mesh:rows=3,cols=4";
  spec.topologies = {mesh};
  spec.routing = "mclb";
  spec.traffic = {api::TrafficSpec{}};
  spec.sweep.points = 2;
  spec.sweep.warmup = 300;
  spec.sweep.measure = 600;
  spec.sweep.drain = 3000;
  spec.sweep.adaptive = false;
  FaultScenarioSpec cut;
  cut.name = "cut-1";
  cut.mode = "targeted";
  cut.k = 1;
  FaultScenarioSpec flap;
  flap.name = "flap-lossy";
  flap.mode = "targeted";
  flap.k = 2;
  flap.fail_at = 400;
  flap.recover_at = 1200;
  flap.lossy = true;
  flap.repair = false;
  spec.faults = {cut, flap};
  return spec;
}

TEST(Resilience, ReportByteIdenticalAcrossThreadWidths) {
  const auto spec = resilience_spec();
  const auto r1 = api::run_experiment(spec, api::StudyOptions{1});
  const auto r4 = api::run_experiment(spec, api::StudyOptions{4});
  EXPECT_EQ(api::report_to_json(r1), api::report_to_json(r4));
  ASSERT_EQ(r1.resilience.size(), 2u);
  EXPECT_EQ(r1.failed_jobs.size(), 0u);
}

TEST(Resilience, RowsCarryDegradationMetrics) {
  const auto rep = api::run_experiment(resilience_spec(), api::StudyOptions{2});
  ASSERT_EQ(rep.resilience.size(), 2u);
  const auto& cut = rep.resilience[0];
  EXPECT_EQ(cut.scenario, "cut-1");
  EXPECT_EQ(cut.links_down, 2);  // one duplex link = 2 directed edges
  EXPECT_TRUE(cut.repair);
  EXPECT_GT(cut.flows_rerouted, 0);
  EXPECT_GT(cut.baseline_saturation_pkt_node_cycle, 0.0);
  // A repaired single-link cut cannot beat the fault-free plan.
  EXPECT_LE(cut.saturation_pkt_node_cycle,
            cut.baseline_saturation_pkt_node_cycle);
  const auto& flap = rep.resilience[1];
  EXPECT_EQ(flap.scenario, "flap-lossy");
  EXPECT_TRUE(flap.lossy);
  EXPECT_FALSE(flap.repair);
  ASSERT_FALSE(flap.points.empty());
  for (const auto& pt : flap.points) {
    EXPECT_GE(pt.delivered_fraction, 0.0);
    EXPECT_LE(pt.delivered_fraction, 1.0);
    EXPECT_LE(pt.latency_p50_cycles, pt.latency_p99_cycles);
  }
  // The schema only advances when the resilience block is present.
  EXPECT_EQ(api::report_schema_version(rep), 3);
  EXPECT_NE(api::report_to_json(rep).find("\"resilience\""), std::string::npos);
}

TEST(Resilience, FaultFreeReportKeepsLegacySchema) {
  auto spec = resilience_spec();
  spec.faults.clear();
  const auto rep = api::run_experiment(spec, api::StudyOptions{2});
  EXPECT_EQ(api::report_schema_version(rep), 2);
  EXPECT_EQ(api::spec_schema_version(spec), 1);
  const auto json = api::report_to_json(rep);
  EXPECT_EQ(json.find("\"resilience\""), std::string::npos);
  EXPECT_EQ(json.find("\"failed_jobs\""), std::string::npos);
  EXPECT_EQ(json.find("\"faults\""), std::string::npos);
}

TEST(Resilience, SpecWithFaultsRoundTrips) {
  const auto spec = resilience_spec();
  EXPECT_EQ(api::spec_schema_version(spec), 2);
  const auto round = api::parse_spec(api::serialize(spec));
  EXPECT_EQ(round, spec);
}

TEST(Resilience, FailedJobDegradesReportInsteadOfAborting) {
  auto spec = resilience_spec();
  spec.num_vcs = 1;  // balance_vcs cannot honor 1 VC for a layered mesh plan
  const auto rep = api::run_experiment(spec, api::StudyOptions{2});
  // One failed plan job, three skipped dependents (sweep + 2 resilience).
  ASSERT_EQ(rep.failed_jobs.size(), 4u);
  EXPECT_FALSE(rep.failed_jobs[0].skipped);
  EXPECT_NE(rep.failed_jobs[0].job.find("plan:"), std::string::npos);
  EXPECT_FALSE(rep.failed_jobs[0].reason.empty());
  for (std::size_t i = 1; i < rep.failed_jobs.size(); ++i) {
    EXPECT_TRUE(rep.failed_jobs[i].skipped);
    EXPECT_NE(rep.failed_jobs[i].reason.find("dependency"), std::string::npos);
  }
  EXPECT_EQ(rep.stats.failed_jobs, 4);
  EXPECT_EQ(api::report_schema_version(rep), 3);
  // Rows for the failed jobs exist with default values (partial report).
  EXPECT_EQ(rep.resilience.size(), 2u);
  EXPECT_NE(api::report_to_json(rep).find("\"failed_jobs\""),
            std::string::npos);
}

}  // namespace
}  // namespace netsmith
