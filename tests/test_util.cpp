#include "util/matrix.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

namespace netsmith::util {
namespace {

TEST(Matrix, InitAndAccess) {
  Matrix<int> m(3, 4, 7);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 7);
  m(2, 3) = -1;
  EXPECT_EQ(m(2, 3), -1);
}

TEST(Matrix, FillResets) {
  Matrix<double> m(2, 2, 1.5);
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
}

TEST(Matrix, EqualityStructural) {
  Matrix<int> a(2, 2, 1), b(2, 2, 1), c(2, 3, 1);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  b(0, 1) = 2;
  EXPECT_FALSE(a == b);
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix<int> m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"long-name-here", "1"});
  t.add_row({"x", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  // Every value column starts at the same offset.
  const auto lines_start = s.find("name");
  ASSERT_NE(lines_start, std::string::npos);
  EXPECT_NE(s.find("long-name-here"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TablePrinter, FmtPrecision) {
  EXPECT_EQ(TablePrinter::fmt(2.3456, 2), "2.35");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::fmt(-1.5, 1), "-1.5");
}

TEST(TablePrinter, ShortRowsTolerated) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);  // must not crash or read out of bounds
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(WallTimer, MeasuresElapsed) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.seconds(), 0.015);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

}  // namespace
}  // namespace netsmith::util
