#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include "core/netsmith.hpp"
#include "topo/builders.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"

namespace netsmith::core {
namespace {

TEST(HopBound, BelowFoldedTorus) {
  const auto lay = topo::Layout::noi_4x5();
  const auto lb = average_hops_lower_bound(lay, topo::LinkClass::kMedium, 4);
  // The folded torus is a valid medium topology -> bound must not exceed it.
  EXPECT_LE(lb, topo::average_hops(topo::build_folded_torus(lay)) + 1e-12);
  EXPECT_GT(lb, 1.0);  // radix 4 cannot make everything one hop away
}

TEST(HopBound, TightensWithRadix) {
  const auto lay = topo::Layout::noi_4x5();
  const auto lb4 = average_hops_lower_bound(lay, topo::LinkClass::kLarge, 4);
  const auto lb8 = average_hops_lower_bound(lay, topo::LinkClass::kLarge, 8);
  EXPECT_GE(lb4, lb8);  // more ports -> potentially lower hops
}

TEST(HopBound, LoosensWithLinkClass) {
  const auto lay = topo::Layout::noi_4x5();
  const auto s = average_hops_lower_bound(lay, topo::LinkClass::kSmall, 4);
  const auto m = average_hops_lower_bound(lay, topo::LinkClass::kMedium, 4);
  const auto l = average_hops_lower_bound(lay, topo::LinkClass::kLarge, 4);
  EXPECT_GE(s, m);
  EXPECT_GE(m, l);
}

TEST(HopBound, BelowEveryAchievedTopology) {
  // Any synthesized topology must respect the bound (soundness).
  const auto lay = topo::Layout::noi_4x5();
  for (const auto cls : {topo::LinkClass::kSmall, topo::LinkClass::kMedium}) {
    SynthesisConfig cfg;
    cfg.layout = lay;
    cfg.link_class = cls;
    cfg.time_limit_s = 1.0;
    cfg.restarts = 1;
    cfg.seed = 99;
    const auto r = synthesize(cfg);
    EXPECT_GE(topo::average_hops(r.graph) + 1e-9,
              average_hops_lower_bound(lay, cls, 4));
  }
}

TEST(CutBound, AboveFoldedTorus) {
  const auto lay = topo::Layout::noi_4x5();
  const auto ub = sparsest_cut_upper_bound(lay, topo::LinkClass::kMedium, 4);
  const auto ft = topo::sparsest_cut_exact(topo::build_folded_torus(lay));
  EXPECT_GE(ub + 1e-12, ft.bandwidth);
}

TEST(CutBound, GrowsWithLinkClass) {
  const auto lay = topo::Layout::noi_4x5();
  const auto s = sparsest_cut_upper_bound(lay, topo::LinkClass::kSmall, 4);
  const auto m = sparsest_cut_upper_bound(lay, topo::LinkClass::kMedium, 4);
  const auto l = sparsest_cut_upper_bound(lay, topo::LinkClass::kLarge, 4);
  EXPECT_LE(s, m + 1e-12);
  EXPECT_LE(m, l + 1e-12);
}

TEST(CutBound, RadixLimitsCapacity) {
  const auto lay = topo::Layout::noi_4x5();
  const auto r2 = sparsest_cut_upper_bound(lay, topo::LinkClass::kLarge, 2);
  const auto r4 = sparsest_cut_upper_bound(lay, topo::LinkClass::kLarge, 4);
  EXPECT_LE(r2, r4 + 1e-12);
}

TEST(TotalHopBound, ScalesWithLayout) {
  const auto lb20 =
      total_hops_lower_bound(topo::Layout::noi_4x5(), topo::LinkClass::kMedium, 4);
  const auto lb30 =
      total_hops_lower_bound(topo::Layout::noi_6x5(), topo::LinkClass::kMedium, 4);
  EXPECT_GT(lb30, lb20);
}

}  // namespace
}  // namespace netsmith::core
