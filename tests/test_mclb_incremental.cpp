// Randomized equivalence suite for the flat incremental MCLB engine
// (routing/mclb.cpp, FlatEvaluator) against the retained scan-based oracle:
// identical decision sequences must produce bit-identical path choices and
// bit-identical LoadObjective values, and the incrementally maintained
// objective must equal a fresh LoadObjective::of scan of the final loads.
//
// Weights in the weighted configs are dyadic rationals (multiples of 0.5),
// so every load, delta and sum-of-squares is exactly representable and the
// bit-identity contract holds (see the LoadObjective header comment).

#include "routing/mclb.hpp"

#include <gtest/gtest.h>

#include "routing/compiled.hpp"
#include "topo/builders.hpp"
#include "topo/metrics.hpp"
#include "util/rng.hpp"

namespace netsmith::routing {
namespace {

// Loads recomputed from scratch (sum over chosen paths in flow order) —
// independent of the add/remove history either engine went through.
std::vector<double> loads_of_choice(const CompiledPathSet& cps,
                                    const std::vector<int>& choice,
                                    const std::vector<double>& flow_weight) {
  std::vector<double> loads(cps.num_edges, 0.0);
  for (int f = 0; f < cps.num_flows(); ++f) {
    const int s = cps.flow_s[f], d = cps.flow_d[f];
    const double w =
        flow_weight.empty()
            ? 1.0
            : flow_weight[static_cast<std::size_t>(s) * cps.n + d];
    const int p = cps.path_begin[f] + choice[static_cast<std::size_t>(s) * cps.n + d];
    const std::int32_t* e = cps.edges_of(p);
    for (int i = 0; i < cps.path_length(p); ++i) loads[e[i]] += w;
  }
  return loads;
}

void expect_equivalent(const topo::DiGraph& g, int max_paths_per_flow,
                       const std::vector<double>& flow_weight,
                       const std::string& tag) {
  const auto ps = enumerate_shortest_paths(g, max_paths_per_flow);
  const auto cps = compile_paths(ps);

  const auto flat = mclb_local_search(cps, flow_weight);
  const auto scan = mclb_local_search_scan(cps, flow_weight);

  // Bit-identical decisions and iteration trajectory.
  EXPECT_EQ(flat.choice, scan.choice) << tag;
  EXPECT_EQ(flat.iterations, scan.iterations) << tag;

  // Bit-identical objectives (max, at_max, sumsq all exact).
  EXPECT_TRUE(flat.objective.identical(scan.objective))
      << tag << ": flat(" << flat.objective.max << "," << flat.objective.at_max
      << "," << flat.objective.sumsq << ") scan(" << scan.objective.max << ","
      << scan.objective.at_max << "," << scan.objective.sumsq << ")";
  EXPECT_EQ(flat.max_load, scan.max_load) << tag;
  EXPECT_EQ(flat.max_flows_on_link, scan.max_flows_on_link) << tag;

  // The incremental state equals a from-scratch scan of the final loads.
  const auto fresh = LoadObjective::of(loads_of_choice(cps, flat.choice,
                                                       flow_weight));
  EXPECT_TRUE(flat.objective.identical(fresh)) << tag << " (vs fresh scan)";
}

TEST(MclbIncrementalEquivalence, RandomGraphsAllConfigs) {
  // >= 100 random graphs x {uniform, weighted, capped-path}. Mixed layouts
  // and radixes so path multiplicity, load levels and histogram churn vary;
  // includes disconnected graphs (flows without candidates are skipped by
  // both engines identically).
  const topo::Layout layouts[] = {{3, 4, 2.0}, {4, 4, 2.0}, {4, 5, 2.0}};
  util::Rng wrng(0xBADBEEF);
  int graphs = 0;
  for (int iter = 0; iter < 102; ++iter) {
    const auto& lay = layouts[iter % 3];
    const int radix = 3 + iter % 2;
    util::Rng rng(1000 + iter);
    const auto g = topo::build_random(lay, topo::LinkClass::kMedium, radix, rng);
    ++graphs;
    const std::string tag = "graph " + std::to_string(iter);

    // Uniform all-to-all (unit weights -> dense integer histogram path).
    expect_equivalent(g, 64, {}, tag + " uniform");

    // Weighted: dyadic weights (k * 0.5, k in 1..6) -> ordered-bucket path.
    const int n = lay.n();
    std::vector<double> w(static_cast<std::size_t>(n) * n, 0.0);
    for (int s = 0; s < n; ++s)
      for (int d = 0; d < n; ++d)
        if (s != d) w[static_cast<std::size_t>(s) * n + d] =
            0.5 * static_cast<double>(wrng.uniform_int(1, 6));
    expect_equivalent(g, 64, w, tag + " weighted");

    // Capped path set (4 per flow): different candidate geometry, more
    // contention per kept path.
    expect_equivalent(g, 4, {}, tag + " capped");
  }
  EXPECT_GE(graphs, 100);
}

TEST(MclbIncrementalEquivalence, HistogramCrossesBucketBoundaries) {
  // A 2xN mesh funnels many flows through few vertical links: the greedy
  // construction stacks loads level by level and the improvement rounds
  // drain maximal channels back down, so the histogram's running max both
  // grows past freshly allocated buckets and steps down across emptied
  // ones. The dense integer path (uniform) and the ordered-bucket path
  // (weighted) must both track it exactly.
  const auto g = topo::build_mesh(topo::Layout{2, 6, 2.0});
  expect_equivalent(g, 64, {}, "2x6 mesh uniform");

  const int n = 12;
  std::vector<double> w(static_cast<std::size_t>(n) * n, 1.0);
  // One very heavy corner-to-corner flow plus a few half-weight flows.
  w[0 * n + (n - 1)] = 8.0;
  w[(n - 1) * n + 0] = 8.0;
  for (int d = 1; d < n; d += 3) w[0 * n + d] = 0.5;
  expect_equivalent(g, 64, w, "2x6 mesh weighted");
}

TEST(MclbIncrementalEquivalence, FlatMatchesLegacyPathSetEntryPoint) {
  // The PathSet-level entry points must agree with the compiled-level ones.
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto ps = enumerate_shortest_paths(g);
  const auto a = mclb_local_search(ps);
  const auto b = mclb_local_search(compile_paths(ps));
  EXPECT_EQ(a.choice, b.choice);
  EXPECT_TRUE(a.objective.identical(b.objective));
  EXPECT_TRUE(a.table(ps).consistent_with(g));
}

TEST(PathCompiler, MatchesPathSetCompileAndReusesScratch) {
  // The annealer's per-move enumerator must produce a CompiledPathSet
  // identical to the two-step PathSet route, including across reused calls
  // on different graphs and caps (stale state from a previous move must not
  // leak).
  routing::PathCompiler pc;
  CompiledPathSet reused;
  const int caps[] = {4, 64, 8};
  for (int iter = 0; iter < 12; ++iter) {
    util::Rng rng(7000 + iter);
    const auto g = topo::build_random(topo::Layout{4, 5, 2.0},
                                      topo::LinkClass::kMedium, 4, rng);
    const auto dist = topo::apsp_bfs(g);
    const int cap = caps[iter % 3];
    const auto ref =
        compile_paths(enumerate_shortest_paths_from_dist(g, dist, cap));
    pc.enumerate(g, dist, cap, reused);
    EXPECT_EQ(reused.n, ref.n);
    EXPECT_EQ(reused.num_edges, ref.num_edges);
    EXPECT_EQ(reused.edge_src, ref.edge_src);
    EXPECT_EQ(reused.edge_dst, ref.edge_dst);
    EXPECT_EQ(reused.edge_id, ref.edge_id);
    EXPECT_EQ(reused.flow_s, ref.flow_s);
    EXPECT_EQ(reused.flow_d, ref.flow_d);
    EXPECT_EQ(reused.flow_of_pair, ref.flow_of_pair);
    EXPECT_EQ(reused.path_begin, ref.path_begin);
    EXPECT_EQ(reused.edge_begin, ref.edge_begin);
    EXPECT_EQ(reused.path_edges, ref.path_edges);
  }
}

TEST(LoadObjectiveTolerance, RelativeToleranceAbsorbsLargeWeightNoise) {
  // Regression (satellite): with flow weights spanning {1e-6, 1, 1e6} the
  // loads sit at ~1e6 where one ulp is ~1.2e-10. An absolute 1e-12 epsilon
  // treats that summation noise as a genuine improvement; the
  // weight-relative tolerance must not.
  LoadObjective a{1e6, 3, 5e12};
  LoadObjective b{1e6 + 1e-9, 3, 5e12};
  // Old absolute-epsilon behavior: float noise looks like an improvement.
  EXPECT_TRUE(a.better_than(b, 1e-12));
  // Relative tolerance: neither dominates.
  const double eps = LoadObjective::tolerance(1e6);
  EXPECT_FALSE(a.better_than(b, eps));
  EXPECT_FALSE(b.better_than(a, eps));
  // Same guard on the sumsq tie-break, whose noise is quadratic in load.
  LoadObjective c{1e6, 3, 5e12 + 1e-3};
  EXPECT_FALSE(a.better_than(c, eps));
  EXPECT_FALSE(c.better_than(a, eps));
  // Genuine improvements still register.
  LoadObjective better{1e6 - 10.0, 1, 4e12};
  EXPECT_TRUE(better.better_than(a, eps));
  EXPECT_FALSE(a.better_than(better, eps));
}

TEST(LoadObjectiveTolerance, ExtremeWeightSpanSearchStaysStable) {
  // End-to-end regression: weights {1e-6, 1.0, 1e6} on a diamond with two
  // route choices per long flow. Both engines must terminate with the same
  // choices (the relative tolerance keeps them from churning on noise) and
  // the heavy flows must not share a channel when parallel routes exist.
  topo::DiGraph g(4);
  g.add_duplex(0, 1);
  g.add_duplex(0, 2);
  g.add_duplex(1, 3);
  g.add_duplex(2, 3);
  const int n = 4;
  std::vector<double> w(16, 1.0);
  w[0 * n + 3] = 1e6;   // heavy forward
  w[3 * n + 0] = 1e6;   // heavy reverse
  w[1 * n + 2] = 1e-6;  // featherweight cross flows
  w[2 * n + 1] = 1e-6;

  const auto ps = enumerate_shortest_paths(g);
  const auto flat = mclb_local_search(ps, w);
  const auto scan = mclb_local_search_scan(ps, w);
  EXPECT_EQ(flat.choice, scan.choice);
  EXPECT_EQ(flat.iterations, scan.iterations);
  EXPECT_TRUE(flat.table(ps).consistent_with(g));
  // The two heavy 2-hop flows take opposite parallel routes, so the
  // bottleneck carries exactly one heavy flow (plus sub-1.0 extras).
  EXPECT_LT(flat.objective.max, 1e6 + 2.0);
  EXPECT_GE(flat.objective.max, 1e6);
}

}  // namespace
}  // namespace netsmith::routing
