// Stress/property tests for the flit-level simulator: conservation under
// drain, deadlock freedom with tiny buffers, and parameter sweeps across
// topology x buffer-depth x VC-count combinations.

#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "topo/builders.hpp"
#include "topologies/registry.hpp"

namespace netsmith::sim {
namespace {

struct StressParam {
  const char* topology;
  int buf_flits;
  int num_vcs;
  double rate;
};

class SimStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(SimStress, ConservationAndDrain) {
  const auto p = GetParam();
  const auto cat = topologies::catalog(20);
  const auto t = topologies::find(cat, p.topology);
  const auto plan = core::plan_network(t.graph, t.layout,
                                       core::RoutingPolicy::kMclb, p.num_vcs);
  ASSERT_LE(plan.vc_layers, p.num_vcs);

  TrafficConfig traffic;
  traffic.kind = TrafficKind::kCoherence;
  traffic.injection_rate = p.rate;

  SimConfig cfg;
  cfg.num_vcs = p.num_vcs;
  cfg.buf_flits = p.buf_flits;
  cfg.warmup = 1000;
  cfg.measure = 3000;
  cfg.drain = 60000;
  cfg.seed = 99;

  const auto s = simulate(plan, traffic, cfg);
  ASSERT_GT(s.tagged_injected, 0);
  // Below-saturation loads must fully drain: every tagged packet ejects.
  // (Wormhole + acyclic per-VC CDG = deadlock-free, so nothing can wedge.)
  EXPECT_EQ(s.tagged_completed, s.tagged_injected)
      << p.topology << " buf=" << p.buf_flits << " vcs=" << p.num_vcs;
  EXPECT_GT(s.avg_latency_cycles, 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SimStress,
    ::testing::Values(
        // Tiny buffers: wormhole with multi-flit packets spanning routers.
        StressParam{"FoldedTorus", 2, 6, 0.02},
        StressParam{"NS-LatOp-medium-20", 2, 6, 0.02},
        StressParam{"Kite-large", 2, 6, 0.02},
        // Minimum VCs that still cover the layer count.
        StressParam{"FoldedTorus", 4, 3, 0.02},
        StressParam{"NS-SCOp-large-20", 4, 3, 0.02},
        // Deep buffers, moderate load.
        StressParam{"NS-LatOp-small-20", 16, 6, 0.05},
        StressParam{"ButterDonut", 8, 4, 0.03},
        StressParam{"LPBT-Power", 8, 6, 0.02}));

TEST(SimStress, HeavyLoadStillConservesEventually) {
  // Near saturation with a long drain: tagged packets may be many, but the
  // deadlock-free network must still deliver every one of them.
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = core::plan_network(topo::build_folded_torus(lay), lay,
                                       core::RoutingPolicy::kMclb, 6);
  TrafficConfig traffic;
  traffic.kind = TrafficKind::kCoherence;
  traffic.injection_rate = 0.10;
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 2000;
  cfg.drain = 200000;
  const auto s = simulate(plan, traffic, cfg);
  EXPECT_EQ(s.tagged_completed, s.tagged_injected);
}

TEST(SimStress, ZeroRateInjectsNothing) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = core::plan_network(topo::build_mesh(lay), lay,
                                       core::RoutingPolicy::kMclb, 6);
  TrafficConfig traffic;
  traffic.kind = TrafficKind::kCoherence;
  traffic.injection_rate = 0.0;
  SimConfig cfg;
  cfg.warmup = 100;
  cfg.measure = 500;
  cfg.drain = 100;
  const auto s = simulate(plan, traffic, cfg);
  EXPECT_EQ(s.total_injected, 0);
  EXPECT_EQ(s.total_ejected, 0);
  EXPECT_FALSE(s.saturated);
}

TEST(SimStress, SeedsChangeArrivalsNotConservation) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = core::plan_network(topo::build_folded_torus(lay), lay,
                                       core::RoutingPolicy::kMclb, 6);
  TrafficConfig traffic;
  traffic.kind = TrafficKind::kCoherence;
  traffic.injection_rate = 0.03;
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 2000;
  cfg.drain = 30000;
  long first_injected = -1;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    cfg.seed = seed;
    const auto s = simulate(plan, traffic, cfg);
    EXPECT_EQ(s.tagged_completed, s.tagged_injected) << "seed " << seed;
    if (first_injected < 0) first_injected = s.total_injected;
  }
}

}  // namespace
}  // namespace netsmith::sim
