// netsmith_serve: memory-resident study daemon. Accepts ExperimentSpec jobs
// over a Unix-domain socket (newline-delimited JSON, see src/serve/
// protocol.hpp) and/or a spool directory, runs them on one shared thread
// pool, and answers repeated specs from a persistent content-addressed
// artifact store — a warm identical spec performs zero synthesis, planning
// or simulation work.
//
//   netsmith_serve --socket PATH [--spool DIR] [--cache DIR] [--lru-mb N]
//                  [--threads N] [--metrics]
//
//   --socket PATH  Unix socket to listen on (removed on exit)
//   --spool DIR    also poll DIR for "*.json" specs; each produces
//                  "<stem>.report.json" and the input is renamed ".done"
//   --cache DIR    persist artifacts under DIR (default: memory-only)
//   --lru-mb N     in-memory LRU budget in MiB (default 64)
//   --threads N    shared pool width (0 = hardware concurrency)
//   --metrics      enable the obs registry (off by default so served
//                  reports stay byte-identical to netsmith_run's, whose
//                  metrics block is {} unless --metrics is passed there too)
//
// SIGINT/SIGTERM (or a client "shutdown" op) drain and exit. At least one
// of --socket/--spool is required.
//
// Exit status: 0 = clean shutdown, 1 = startup error, 2 = usage.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "serve/server.hpp"

using namespace netsmith;

namespace {

serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server) g_server->request_stop();
}

int usage() {
  std::fprintf(stderr,
               "usage: netsmith_serve --socket PATH [--spool DIR] "
               "[--cache DIR] [--lru-mb N] [--threads N] [--metrics]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions opts;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--socket") && i + 1 < argc) {
      opts.socket_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--spool") && i + 1 < argc) {
      opts.spool_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--cache") && i + 1 < argc) {
      opts.cache_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--lru-mb") && i + 1 < argc) {
      opts.lru_bytes = static_cast<std::size_t>(std::atol(argv[++i])) << 20;
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      opts.threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--metrics")) {
      metrics = true;
    } else {
      return usage();
    }
  }
  if (opts.socket_path.empty() && opts.spool_dir.empty()) return usage();

  if (metrics) obs::set_metrics_enabled(true);
  try {
    serve::Server server(opts);
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);  // dead clients surface as write errors
    server.start();
    std::fprintf(stderr, "netsmith_serve: listening%s%s%s%s (cache: %s)\n",
                 opts.socket_path.empty() ? "" : " on ",
                 opts.socket_path.c_str(),
                 opts.spool_dir.empty() ? "" : ", spooling ",
                 opts.spool_dir.c_str(),
                 opts.cache_dir.empty() ? "memory-only"
                                        : opts.cache_dir.c_str());
    server.wait();
    const serve::StoreStats s = server.store().stats();
    std::fprintf(stderr,
                 "netsmith_serve: exiting after %ld request(s); store: "
                 "%ld mem hits, %ld disk hits, %ld misses, %ld corrupt, "
                 "%ld stores, %ld evictions\n",
                 server.requests_handled(), s.mem_hits, s.disk_hits, s.misses,
                 s.corrupt, s.stores, s.evictions);
    g_server = nullptr;
    return 0;
  } catch (const std::exception& e) {
    g_server = nullptr;
    std::fprintf(stderr, "netsmith_serve: %s\n", e.what());
    return 1;
  }
}
