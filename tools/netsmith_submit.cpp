// netsmith_submit: thin client for the netsmith_serve daemon. Sends one
// ExperimentSpec over the daemon's Unix socket, relays progress to stderr,
// and writes the returned report — byte-identical to what netsmith_run
// would emit for the same spec — to stdout or --out.
//
//   netsmith_submit <spec.json> --socket PATH [--out PATH] [--quiet]
//                   [--expect-warm]
//   netsmith_submit --ping --socket PATH
//   netsmith_submit --stats --socket PATH
//   netsmith_submit --shutdown --socket PATH
//
//   --out PATH      write the report to PATH (default: stdout)
//   --quiet         suppress progress lines on stderr
//   --expect-warm   fail (exit 4) unless the daemon answered entirely from
//                   its artifact cache (cache.misses == 0) — CI uses this
//                   to prove a repeated spec did zero recomputation
//   --ping/--stats/--shutdown
//                   control ops; the daemon's JSON reply goes to stdout
//
// Exit status: 0 = success, 1 = error (daemon unreachable, run failed),
// 2 = usage, 3 = report received but partial (failed jobs inside),
// 4 = --expect-warm violated (the daemon recomputed something).

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/protocol.hpp"
#include "util/json.hpp"

using namespace netsmith;
using util::JsonValue;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: netsmith_submit <spec.json> --socket PATH [--out PATH]"
               " [--quiet] [--expect-warm]\n"
               "       netsmith_submit --ping|--stats|--shutdown --socket "
               "PATH\n");
  return 2;
}

int connect_to(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    errno = ENAMETOOLONG;
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

long field_int(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v && v->is_number() ? static_cast<long>(v->as_int()) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, socket_path, out_path, control_op;
  bool quiet = false, expect_warm = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--socket") && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--quiet")) {
      quiet = true;
    } else if (!std::strcmp(argv[i], "--expect-warm")) {
      expect_warm = true;
    } else if (!std::strcmp(argv[i], "--ping") ||
               !std::strcmp(argv[i], "--stats") ||
               !std::strcmp(argv[i], "--shutdown")) {
      control_op = argv[i] + 2;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (spec_path.empty()) {
      spec_path = argv[i];
    } else {
      return usage();
    }
  }
  if (socket_path.empty()) return usage();
  if (control_op.empty() == spec_path.empty()) return usage();

  const int fd = connect_to(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "netsmith_submit: cannot connect to %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    return 1;
  }

  std::string request;
  if (!control_op.empty()) {
    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::string(control_op));
    request = req.dump_compact();
  } else {
    std::ifstream in(spec_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "netsmith_submit: cannot open %s\n",
                   spec_path.c_str());
      ::close(fd);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    JsonValue spec;
    try {
      spec = JsonValue::parse(ss.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "netsmith_submit: %s: %s\n", spec_path.c_str(),
                   e.what());
      ::close(fd);
      return 1;
    }
    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::string("run"));
    req.set("spec", spec);
    request = req.dump_compact();
  }

  if (!serve::write_line(fd, request)) {
    std::fprintf(stderr, "netsmith_submit: cannot write request\n");
    ::close(fd);
    return 1;
  }

  serve::LineReader reader(fd);
  std::string line;
  int rc = 1;  // no report/reply = error
  while (reader.next(line)) {
    if (line.empty()) continue;
    JsonValue ev;
    try {
      ev = JsonValue::parse(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "netsmith_submit: bad event from daemon: %s\n",
                   e.what());
      break;
    }
    const JsonValue* kind = ev.find("event");
    const std::string event =
        kind && kind->type() == JsonValue::Type::kString ? kind->as_string()
                                                         : "";
    if (event == "error") {
      const JsonValue* msg = ev.find("message");
      std::fprintf(stderr, "netsmith_submit: daemon error: %s\n",
                   msg ? msg->as_string().c_str() : "(no message)");
      rc = 1;
      break;
    }
    if (!control_op.empty()) {
      // Control replies are single events; print verbatim and stop.
      std::printf("%s\n", line.c_str());
      rc = 0;
      break;
    }
    if (event == "accepted") {
      if (!quiet)
        std::fprintf(stderr, "netsmith_submit: accepted (%ld jobs)\n",
                     field_int(ev, "jobs"));
    } else if (event == "progress") {
      if (!quiet) {
        const JsonValue* label = ev.find("label");
        std::fprintf(stderr, "netsmith_submit: [%ld/%ld] %s\n",
                     field_int(ev, "done"), field_int(ev, "total"),
                     label ? label->as_string().c_str() : "");
      }
    } else if (event == "report") {
      const JsonValue* report = ev.find("report");
      if (!report) {
        std::fprintf(stderr, "netsmith_submit: report event without body\n");
        break;
      }
      const std::string& body = report->as_string();
      if (out_path.empty()) {
        std::fwrite(body.data(), 1, body.size(), stdout);
      } else {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "netsmith_submit: cannot write %s\n",
                       out_path.c_str());
          break;
        }
        out << body;
      }
      const JsonValue* partial = ev.find("partial");
      rc = partial && partial->as_bool() ? 3 : 0;
      const JsonValue* cache = ev.find("cache");
      if (cache) {
        const long hits = field_int(*cache, "hits");
        const long misses = field_int(*cache, "misses");
        if (!quiet)
          std::fprintf(stderr,
                       "netsmith_submit: done (cache: %ld hits, %ld misses)"
                       "%s%s\n",
                       hits, misses, out_path.empty() ? "" : " -> ",
                       out_path.c_str());
        if (expect_warm && misses > 0) {
          std::fprintf(stderr,
                       "netsmith_submit: expected a warm cache but the "
                       "daemon recomputed %ld artifact(s)\n",
                       misses);
          rc = 4;
        }
      }
      break;
    }
  }
  ::close(fd);
  return rc;
}
