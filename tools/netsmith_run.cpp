// netsmith_run: execute a declarative experiment spec and emit the report.
//
//   netsmith_run <spec.json> [--out PATH] [--threads N]
//   netsmith_run <spec.json> --validate
//
//   --out PATH    write the JSON report to PATH (default: stdout)
//   --threads N   Study thread-pool override (0 = hardware concurrency)
//   --validate    parse + round-trip the spec and exit without running
//   --trace PATH  record trace spans and write Chrome trace_event JSON
//                 (load in chrome://tracing or https://ui.perfetto.dev)
//   --metrics     collect the obs counter/gauge/histogram registry; the
//                 snapshot lands in the report's "metrics" block
//   --cache DIR   persistent artifact store (shared with netsmith_serve):
//                 topology/plan/sweep artifacts are looked up before
//                 computing and persisted after, so a repeated spec is
//                 answered almost entirely from disk. Reports are
//                 byte-identical with and without the cache.
//
// The report is schema-versioned and embeds the spec verbatim; after
// writing, the tool re-parses its own output (spec_from_report) and checks
// it equals the input spec, so a zero exit status certifies the round-trip.
// A human-readable summary goes to stderr; only JSON touches stdout.
//
// Exit status: 0 = success, 1 = error (no report), 2 = usage, 3 = the report
// was written but is partial — some jobs failed or were skipped (listed on
// stderr and in the report's provenance.failed_jobs).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "api/report.hpp"
#include "api/study.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/store.hpp"
#include "util/timer.hpp"

using namespace netsmith;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: netsmith_run <spec.json> [--out PATH] [--threads N] "
               "[--validate] [--trace PATH] [--metrics] [--cache DIR]\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, out_path, trace_path, cache_dir;
  int threads = -1;
  bool validate_only = false;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cache") && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--validate")) {
      validate_only = true;
    } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--metrics")) {
      metrics = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (spec_path.empty()) {
      spec_path = argv[i];
    } else {
      return usage();
    }
  }
  if (spec_path.empty()) return usage();

  try {
    const std::string text = read_file(spec_path);
    const api::ExperimentSpec spec = api::parse_spec(text);
    if (api::parse_spec(api::serialize(spec)) != spec)
      throw std::runtime_error("spec does not round-trip (parser bug)");
    if (validate_only) {
      std::fprintf(stderr, "netsmith_run: %s is valid (schema %d, %zu "
                   "topologies, round-trip OK)\n",
                   spec_path.c_str(), api::spec_schema_version(spec),
                   spec.topologies.size());
      return 0;
    }

    util::WallTimer timer;
    if (metrics) obs::set_metrics_enabled(true);
    if (!trace_path.empty()) obs::set_trace_enabled(true);
    serve::ArtifactStore cache(
        serve::StoreOptions{cache_dir, serve::StoreOptions{}.lru_bytes});
    api::StudyOptions sopts;
    sopts.threads = threads;
    if (!cache_dir.empty()) sopts.cache = &cache;
    api::Study study(spec, sopts);
    const api::Report report = study.run();
    const std::string json = api::report_to_json(report);

    if (!trace_path.empty()) {
      obs::write_trace(trace_path);
      std::fprintf(stderr, "netsmith_run: trace -> %s\n", trace_path.c_str());
    }

    // Self-check: the emitted report's embedded spec must parse back to the
    // exact input spec.
    if (api::spec_from_report(json) != spec)
      throw std::runtime_error("report spec does not round-trip");

    if (out_path.empty()) {
      std::fwrite(json.data(), 1, json.size(), stdout);
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) throw std::runtime_error("cannot write " + out_path);
      out << json;
    }

    const auto& st = study.stats();
    std::fprintf(stderr,
                 "netsmith_run: %s: %d topologies (%d unique, %d synthesized),"
                 " %d plans (%d unique), %d sweeps, %d resilience rows,"
                 " %d power rows in %.1f s [schema %d, spec round-trip OK]%s%s\n",
                 spec.name.c_str(), st.topology_refs, st.unique_topologies,
                 st.syntheses_run, st.plan_refs, st.unique_plans,
                 st.sweep_jobs, st.resilience_jobs, st.power_jobs,
                 timer.seconds(), api::report_schema_version(report),
                 out_path.empty() ? "" : " -> ",
                 out_path.c_str());

    if (!cache_dir.empty()) {
      const api::ArtifactCacheStats cs = study.artifact_cache_stats();
      std::fprintf(stderr,
                   "netsmith_run: cache %s: %ld hits (%ld topology, %ld plan,"
                   " %ld sweep), %ld misses, %ld stored\n",
                   cache_dir.c_str(), cs.hits(), cs.topology_hits,
                   cs.plan_hits, cs.sweep_hits, cs.misses(), cs.stores);
    }

    // Partial report: the study degraded instead of aborting. Surface every
    // failure and exit 3 so scripts can tell "complete" from "degraded".
    if (!report.failed_jobs.empty()) {
      std::fprintf(stderr,
                   "netsmith_run: WARNING: %zu job(s) failed or were skipped;"
                   " the report is partial:\n",
                   report.failed_jobs.size());
      for (const auto& f : report.failed_jobs)
        std::fprintf(stderr, "  %s %s: %s\n",
                     f.skipped ? "[skipped]" : "[failed] ", f.job.c_str(),
                     f.reason.c_str());
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "netsmith_run: %s\n", e.what());
    return 1;
  }
}
