// Offline tool: generates the NS-* topologies (NetSmith outputs) with fixed
// seeds and emits FrozenEntry lines for src/topologies/frozen_data.inc,
// along with their analytic metrics for EXPERIMENTS.md. Also produces the
// short-budget symmetric "Kite-like-48" stand-ins used by the Fig. 11 bench.
//
// Usage: generate_ns [scale=1.0]   (scale multiplies all time budgets)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/netsmith.hpp"
#include "core/objective.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"

using namespace netsmith;

namespace {

void emit(const std::string& name, const core::SynthesisResult& r) {
  const auto& g = r.graph;
  std::printf("    {\"%s\",\n     \"%s\"},\n", name.c_str(),
              g.to_string().c_str());
  std::fprintf(stderr,
               "// %-24s links=%.0f diam=%d avg=%.3f bis=%d bound=%.3f\n",
               name.c_str(), g.duplex_links(), topo::diameter(g),
               topo::average_hops(g), topo::bisection_bandwidth(g), r.bound);
  std::fflush(stdout);
  std::fflush(stderr);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  using LC = topo::LinkClass;
  const LC classes[] = {LC::kSmall, LC::kMedium, LC::kLarge};

  struct SizeSpec {
    int routers;
    topo::Layout lay;
    double budget;
  };
  const SizeSpec sizes[] = {
      {20, topo::Layout::noi_4x5(), 20.0},
      {30, topo::Layout::noi_6x5(), 45.0},
      {48, topo::Layout::noi_8x6(), 70.0},
  };

  for (const auto& sz : sizes) {
    for (LC cls : classes) {
      // NS-LatOp at every size.
      {
        core::SynthesisConfig cfg;
        cfg.layout = sz.lay;
        cfg.link_class = cls;
        cfg.objective = core::Objective::kLatOp;
        cfg.time_limit_s = sz.budget * scale;
        cfg.restarts = 3;
        cfg.seed = 0x100 + sz.routers * 8 + static_cast<int>(cls);
        emit("NS-LatOp-" + topo::to_string(cls) + "-" +
                 std::to_string(sz.routers),
             core::synthesize(cfg));
      }
      // NS-SCOp and NS-ShufOpt only for the 20-router study.
      if (sz.routers == 20) {
        {
          core::SynthesisConfig cfg;
          cfg.layout = sz.lay;
          cfg.link_class = cls;
          cfg.objective = core::Objective::kSCOp;
          cfg.time_limit_s = sz.budget * scale;
          cfg.restarts = 3;
          cfg.seed = 0x200 + static_cast<int>(cls);
          emit("NS-SCOp-" + topo::to_string(cls) + "-20",
               core::synthesize(cfg));
        }
        {
          core::SynthesisConfig cfg;
          cfg.layout = sz.lay;
          cfg.link_class = cls;
          cfg.objective = core::Objective::kPattern;
          cfg.pattern = core::shuffle_pattern(sz.lay.n());
          cfg.time_limit_s = sz.budget * 0.6 * scale;
          cfg.restarts = 3;
          cfg.seed = 0x300 + static_cast<int>(cls);
          emit("NS-ShufOpt-" + topo::to_string(cls) + "-20",
               core::synthesize(cfg));
        }
      }
      // Kite-like-48: symmetric short-budget stand-in expert baseline.
      if (sz.routers == 48) {
        core::SynthesisConfig cfg;
        cfg.layout = sz.lay;
        cfg.link_class = cls;
        cfg.objective = core::Objective::kLatOp;
        cfg.symmetric_links = true;
        cfg.time_limit_s = 6.0 * scale;
        cfg.restarts = 2;
        cfg.seed = 0x400 + static_cast<int>(cls);
        emit("Kite-like-" + topo::to_string(cls) + "-48",
             core::synthesize(cfg));
      }
    }
  }
  return 0;
}
