// Offline tool: reconstructs expert-designed topologies (Kite, Butter Donut,
// Double Butterfly, LPBT outputs) whose adjacency the source papers publish
// only as figures. Searches symmetric link sets under the correct layout /
// link-class / radix rules until the published Table II metrics (#links,
// diameter, average hops, bisection bandwidth) match exactly, then emits
// FrozenEntry lines for src/topologies/frozen_data.inc.
//
// Usage: reconstruct [time_limit_per_target_s]

#include <array>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "topo/builders.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace netsmith;

namespace {

struct Target {
  std::string name;
  topo::Layout lay;
  topo::LinkClass cls;
  int links;   // full-duplex links
  int diam;
  double avg;  // Table II average hops (2 decimals)
  int bis;     // Table II bisection bandwidth
};

int exact_or_heuristic_bisection(const topo::DiGraph& g) {
  if (g.num_nodes() <= 24) return topo::bisection_bandwidth(g);
  return topo::bisection_bandwidth(g);  // >24 dispatches to heuristic inside
}

struct Searcher {
  const Target& t;
  util::Rng rng;
  int n;
  std::vector<std::pair<int, int>> duplex_candidates;  // i<j class-valid both ways

  explicit Searcher(const Target& target, std::uint64_t seed)
      : t(target), rng(seed), n(target.lay.n()) {
    for (const auto& [i, j] : topo::valid_links(target.lay, target.cls))
      if (i < j) duplex_candidates.emplace_back(i, j);
  }

  // Score: distance of total hops from the 2-decimal band around t.avg,
  // plus diameter mismatch. Zero score == analytic-metrics candidate.
  double score(const topo::DiGraph& g, int* out_diam) {
    const auto dist = topo::apsp_bfs(g);
    const long N = static_cast<long>(n) * (n - 1);
    long total = 0;
    int diam = 0;
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const int d = dist(i, j);
        if (d >= topo::kUnreachable) return 1e7;
        total += d;
        diam = std::max(diam, d);
      }
    *out_diam = diam;
    const double lo = (t.avg - 0.005) * N, hi = (t.avg + 0.005) * N;
    double s = 0.0;
    if (total < lo) s += lo - total;
    else if (total > hi) s += total - hi;
    s += 40.0 * std::abs(diam - t.diam);
    return s;
  }

  bool removable(const topo::DiGraph& g, int i, int j) {
    return g.has_edge(i, j) && g.has_edge(j, i);
  }
  bool addable(const topo::DiGraph& g, int i, int j, int radix = 4) {
    return !g.has_edge(i, j) && g.out_degree(i) < radix &&
           g.in_degree(i) < radix && g.out_degree(j) < radix &&
           g.in_degree(j) < radix;
  }

  // Degree-preserving double-edge swap: (a,b),(c,d) -> (a,c),(b,d) or
  // (a,d),(b,c). Essential when the target link count saturates the class's
  // degree budget (e.g. 38 small-class links on 4x5), where single rewires
  // have no legal addition and the space would otherwise freeze.
  bool try_swap(topo::DiGraph& g, std::array<std::pair<int, int>, 2>* removed,
                std::array<std::pair<int, int>, 2>* added) {
    const auto& e1 = rng.pick(duplex_candidates);
    const auto& e2 = rng.pick(duplex_candidates);
    if (!removable(g, e1.first, e1.second) || !removable(g, e2.first, e2.second))
      return false;
    const int a = e1.first, b = e1.second, c = e2.first, d = e2.second;
    if (a == c || a == d || b == c || b == d) return false;
    int na1, nb1, na2, nb2;
    if (rng.bernoulli(0.5)) {
      na1 = a; nb1 = c; na2 = b; nb2 = d;
    } else {
      na1 = a; nb1 = d; na2 = b; nb2 = c;
    }
    auto valid = [&](int x, int y) {
      return topo::link_allowed(t.lay, x, y, t.cls) && !g.has_edge(x, y);
    };
    if (!valid(na1, nb1) || !valid(na2, nb2)) return false;
    g.remove_edge(a, b); g.remove_edge(b, a);
    g.remove_edge(c, d); g.remove_edge(d, c);
    g.add_duplex(na1, nb1);
    g.add_duplex(na2, nb2);
    (*removed)[0] = {a, b};
    (*removed)[1] = {c, d};
    (*added)[0] = {na1, nb1};
    (*added)[1] = {na2, nb2};
    return true;
  }

  topo::DiGraph initial() {
    topo::DiGraph g(n);
    auto cands = duplex_candidates;
    rng.shuffle(cands);
    for (const auto& [i, j] : cands) {
      if (static_cast<int>(g.duplex_links()) >= t.links) break;
      if (addable(g, i, j)) g.add_duplex(i, j);
    }
    // Greedy fill can jam below the target when the class is nearly
    // saturated (e.g. 38 of max 40 small-class links): repair by randomly
    // removing a blocking link and retrying additions.
    long guard = 0;
    while (static_cast<int>(g.duplex_links()) < t.links && guard++ < 200000) {
      bool added = false;
      for (int k = 0; k < 24 && !added; ++k) {
        const auto& c = rng.pick(duplex_candidates);
        if (addable(g, c.first, c.second)) {
          g.add_duplex(c.first, c.second);
          added = true;
        }
      }
      if (!added) {
        const auto& r = rng.pick(duplex_candidates);
        if (removable(g, r.first, r.second)) {
          g.remove_edge(r.first, r.second);
          g.remove_edge(r.second, r.first);
        }
      }
    }
    return g;
  }

  // Returns true on exact match; otherwise *out holds the closest-bisection
  // zero-score candidate found (if any) and *achieved_bis its bisection.
  bool run(double budget_s, topo::DiGraph* out, int* achieved_bis) {
    util::WallTimer timer;
    std::set<std::string> checked;
    bool have_any = false;
    int best_gap = 1 << 20;

    auto check_candidate = [&](const topo::DiGraph& g) -> bool {
      const std::string key = g.to_string();
      if (checked.count(key)) return false;
      checked.insert(key);
      const int bis = exact_or_heuristic_bisection(g);
      const int gap = std::abs(bis - t.bis);
      if (!have_any || gap < best_gap) {
        have_any = true;
        best_gap = gap;
        *out = g;
        *achieved_bis = bis;
      }
      return gap == 0;
    };

    while (timer.seconds() < budget_s) {
      topo::DiGraph g = initial();
      if (static_cast<int>(g.duplex_links()) != t.links) continue;
      int diam = 0;
      double cur = score(g, &diam);
      double temp_hi = 30.0, temp_lo = 0.3;
      const double inner_budget = std::min(10.0, budget_s / 6.0);
      util::WallTimer inner;
      long plateau_steps = 0;
      while (inner.seconds() < inner_budget && timer.seconds() < budget_s) {
        const double frac = inner.seconds() / inner_budget;
        const double temp = temp_hi * std::pow(temp_lo / temp_hi, frac);

        // Move: degree-preserving double swap (works even when the link
        // budget saturates the class) or single rewire.
        int move_kind = 0;  // 1 = rewire, 2 = swap
        std::pair<int, int> rem1, add1;
        std::array<std::pair<int, int>, 2> sw_rm, sw_ad;
        if (rng.bernoulli(0.6)) {
          if (!try_swap(g, &sw_rm, &sw_ad)) continue;
          move_kind = 2;
        } else {
          const auto& rem = rng.pick(duplex_candidates);
          if (!removable(g, rem.first, rem.second)) continue;
          g.remove_edge(rem.first, rem.second);
          g.remove_edge(rem.second, rem.first);
          const auto& add = rng.pick(duplex_candidates);
          if (!addable(g, add.first, add.second) ||
              (add.first == rem.first && add.second == rem.second)) {
            g.add_duplex(rem.first, rem.second);
            continue;
          }
          g.add_duplex(add.first, add.second);
          move_kind = 1;
          rem1 = rem;
          add1 = add;
        }

        auto undo = [&]() {
          if (move_kind == 1) {
            g.remove_edge(add1.first, add1.second);
            g.remove_edge(add1.second, add1.first);
            g.add_duplex(rem1.first, rem1.second);
          } else {
            for (const auto& [x, y] : sw_ad) {
              g.remove_edge(x, y);
              g.remove_edge(y, x);
            }
            for (const auto& [x, y] : sw_rm) g.add_duplex(x, y);
          }
        };

        int nd = 0;
        const double cand = score(g, &nd);
        // Plateau mode: once inside the metric band, only walk within it so
        // every visited state is a bisection candidate.
        const bool accept =
            cur == 0.0
                ? cand == 0.0
                : (cand <= cur || rng.uniform() < std::exp((cur - cand) / temp));
        if (accept) {
          cur = cand;
          diam = nd;
          if (cur == 0.0) {
            ++plateau_steps;
            if (check_candidate(g)) return true;
            // Kick out of exhausted plateaus.
            if (plateau_steps > 20000) break;
          }
        } else {
          undo();
        }
      }
    }
    return false;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 90.0;
  const auto l45 = topo::Layout::noi_4x5();
  const auto l65 = topo::Layout::noi_6x5();
  using LC = topo::LinkClass;

  const std::vector<Target> targets = {
      {"Kite-small-20", l45, LC::kSmall, 38, 4, 2.38, 8},
      {"LPBT-Power-small-20", l45, LC::kSmall, 33, 5, 2.59, 4},
      {"LPBT-Hops-small-20", l45, LC::kSmall, 34, 6, 2.74, 4},
      {"Kite-medium-20", l45, LC::kMedium, 40, 4, 2.25, 8},
      {"LPBT-Hops-medium-20", l45, LC::kMedium, 38, 4, 2.33, 7},
      {"ButterDonut-20", l45, LC::kLarge, 36, 4, 2.32, 8},
      {"DoubleButterfly-20", l45, LC::kLarge, 32, 4, 2.59, 8},
      {"Kite-large-20", l45, LC::kLarge, 36, 5, 2.27, 8},
      {"Kite-small-30", l65, LC::kSmall, 58, 5, 2.91, 10},
      {"Kite-medium-30", l65, LC::kMedium, 60, 5, 2.66, 10},
      {"ButterDonut-30", l65, LC::kLarge, 44, 10, 3.71, 8},
      {"DoubleButterfly-30", l65, LC::kLarge, 48, 5, 2.90, 8},
      {"Kite-large-30", l65, LC::kLarge, 56, 5, 2.69, 10},
  };

  // Optional filter: only reconstruct targets whose name contains argv[2].
  const std::string filter = argc > 2 ? argv[2] : "";

  for (const auto& t : targets) {
    if (!filter.empty() && t.name.find(filter) == std::string::npos) continue;
    Searcher s(t, 0xABCD1234 + std::hash<std::string>{}(t.name));
    topo::DiGraph g;
    int bis = -1;
    if (s.run(budget, &g, &bis)) {
      std::printf("    {\"%s\",\n     \"%s\"},\n", t.name.c_str(),
                  g.to_string().c_str());
    } else if (bis >= 0) {
      std::printf("// CLOSEST (bis=%d, target %d): %s\n    {\"%s\",\n     \"%s\"},\n",
                  bis, t.bis, t.name.c_str(), t.name.c_str(),
                  g.to_string().c_str());
    } else {
      std::printf("// FAILED: %s (links=%d diam=%d avg=%.2f bis=%d)\n",
                  t.name.c_str(), t.links, t.diam, t.avg, t.bis);
    }
    std::fflush(stdout);
  }
  return 0;
}
