#pragma once
// Fault injection & graceful degradation (DESIGN.md "Fault injection").
//
// A FaultScenarioSpec names WHAT fails (adversarial top-k loaded links,
// random per-component MTBF/MTTR processes, or an explicit event list) and
// build_fault_schedule expands it deterministically into a FaultSchedule of
// timed kLinkDown/kLinkUp/kRouterDown/kRouterUp events against a concrete
// NetworkPlan. prepare_fault_plan then folds the schedule into a FaultPlan:
// per fault epoch (the interval between consecutive event cycles) the set of
// failed components plus — when repair is on — a routing table and VC map
// rebuilt against the surviving subgraph (routing/repair.hpp). The simulator
// consumes the FaultPlan read-only via SimConfig::faults; packets route by
// the table of the epoch they were injected in, so in-flight wormholes are
// never split by a table swap.
//
// Determinism: schedules derive from the scenario's own seed through
// util::split_stream (one stream per link / per router), never from the
// simulator's traffic RNG, so attaching a fault plan cannot perturb the
// injection sequence of a fault-free arm.

#include <cstdint>
#include <string>
#include <vector>

#include "core/netsmith.hpp"

namespace netsmith::fault {

enum class FaultEventKind { kLinkDown, kLinkUp, kRouterDown, kRouterUp };

const char* to_string(FaultEventKind k);
FaultEventKind fault_event_kind_from_string(const std::string& s);

// One timed event. Link events name a directed edge (a -> b); duplex
// failures are two events at the same cycle. Router events use a only.
struct FaultEvent {
  long cycle = 0;
  FaultEventKind kind = FaultEventKind::kLinkDown;
  int a = 0;
  int b = -1;

  bool operator==(const FaultEvent&) const = default;
};

// Declarative scenario (the spec `faults` block; api/spec.cpp serializes it).
struct FaultScenarioSpec {
  std::string name;               // report row label; empty = derived
  std::string mode = "targeted";  // targeted | random | explicit

  // targeted: fail the k most-loaded duplex links (channel-load pipeline,
  // deterministic tie-break) at fail_at, recovering at recover_at (< 0 =
  // permanent).
  int k = 1;
  long fail_at = 0;
  long recover_at = -1;

  // random: per-component alternating exponential up/down processes with
  // the given mean cycles (0 disables that component class).
  double link_mtbf = 0.0;
  double link_mttr = 0.0;
  double router_mtbf = 0.0;
  double router_mttr = 0.0;
  std::uint64_t seed = 1;

  // Degradation contract: lossy drops flits caught on a failing wire (whole
  // packets, counted); lossless strands them until the link recovers. repair
  // rebuilds affected flows' routes per epoch against the survivors.
  bool lossy = false;
  bool repair = true;

  // explicit mode: the schedule verbatim (validated against the plan).
  std::vector<FaultEvent> events;

  bool operator==(const FaultScenarioSpec&) const = default;

  std::string label() const;
  // Canonical artifact key (same treatment as topology/plan keys): every
  // semantic field, so caches never alias scenarios built differently.
  std::string canonical_key() const;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;  // sorted by (cycle, kind, a, b)
  bool empty() const { return events.empty(); }
};

// Expands the scenario against a concrete plan. Throws std::invalid_argument
// on events naming absent edges/routers or malformed scenario parameters.
FaultSchedule build_fault_schedule(const FaultScenarioSpec& scenario,
                                   const core::NetworkPlan& plan,
                                   long horizon);

// One interval between consecutive fault-event cycles, with the routing the
// simulator uses for packets injected during it.
struct FaultEpoch {
  long cycle = 0;  // first cycle this epoch is active
  int links_down = 0;    // directed edges down during the epoch
  int routers_down = 0;
  // When repair ran and changed anything: the repaired table + VC map
  // (deadlock-free: re-layered via vc::assign_layers). Otherwise the base
  // plan's are used and these stay empty.
  bool repaired = false;
  routing::RoutingTable table;
  vc::VcMap vc_map;
  int flows_rerouted = 0;
  int flows_unroutable = 0;  // degraded: no path in the surviving subgraph
};

// Precomputed fault state for one simulation run. Immutable while simulating
// (sweep points share it across OpenMP threads).
struct FaultPlan {
  bool lossy = false;
  std::vector<FaultEvent> events;  // sorted; applied at cycle boundaries
  std::vector<FaultEpoch> epochs;  // epochs[0].cycle == 0 (pre-fault state)
  int max_links_down = 0;     // peak concurrent directed-edge failures
  int max_routers_down = 0;
  int flows_rerouted = 0;     // summed over repaired epochs
  int flows_unroutable = 0;   // peak over epochs

  bool empty() const { return events.empty(); }
};

// build_fault_schedule + epoch construction + per-epoch route repair.
// Repair latency is recorded through the obs layer (fault/repair spans,
// fault.repair_us counter) and deliberately kept out of the plan so results
// stay byte-deterministic. Throws on invalid scenarios and on repairs whose
// VC re-layering exceeds the plan's VC budget (the Study runner records the
// job as failed and degrades to a partial report).
FaultPlan prepare_fault_plan(const core::NetworkPlan& plan,
                             const FaultScenarioSpec& scenario, long horizon);

}  // namespace netsmith::fault
