#include "fault/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <tuple>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/channel_load.hpp"
#include "routing/repair.hpp"
#include "util/rng.hpp"

namespace netsmith::fault {

const char* to_string(FaultEventKind k) {
  switch (k) {
    case FaultEventKind::kLinkDown: return "link_down";
    case FaultEventKind::kLinkUp: return "link_up";
    case FaultEventKind::kRouterDown: return "router_down";
    case FaultEventKind::kRouterUp: return "router_up";
  }
  return "?";
}

FaultEventKind fault_event_kind_from_string(const std::string& s) {
  if (s == "link_down") return FaultEventKind::kLinkDown;
  if (s == "link_up") return FaultEventKind::kLinkUp;
  if (s == "router_down") return FaultEventKind::kRouterDown;
  if (s == "router_up") return FaultEventKind::kRouterUp;
  throw std::invalid_argument("faults: unknown event kind '" + s + "'");
}

namespace {

std::string fmt_double(double d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

// Canonical event ordering: cycle first so the simulator applies them as a
// stream; within a cycle downs sort before ups (enum order), so a
// zero-length outage resolves to "up" deterministically.
bool event_less(const FaultEvent& x, const FaultEvent& y) {
  return std::tie(x.cycle, x.kind, x.a, x.b) <
         std::tie(y.cycle, y.kind, y.a, y.b);
}

void validate_scenario(const FaultScenarioSpec& sc) {
  if (sc.mode != "targeted" && sc.mode != "random" && sc.mode != "explicit")
    throw std::invalid_argument("faults: mode must be targeted, random or "
                                "explicit, got '" + sc.mode + "'");
  if (sc.k < 0)
    throw std::invalid_argument("faults: k must be >= 0");
  if (sc.fail_at < 0)
    throw std::invalid_argument("faults: fail_at must be >= 0");
  if (sc.recover_at >= 0 && sc.recover_at <= sc.fail_at)
    throw std::invalid_argument("faults: recover_at must be > fail_at "
                                "(or < 0 for a permanent failure)");
  if (sc.link_mtbf < 0 || sc.link_mttr < 0 || sc.router_mtbf < 0 ||
      sc.router_mttr < 0)
    throw std::invalid_argument("faults: MTBF/MTTR values must be >= 0");
  if (sc.mode == "random" && sc.link_mtbf > 0 && sc.link_mttr <= 0)
    throw std::invalid_argument(
        "faults: random mode with link_mtbf > 0 requires link_mttr > 0");
  if (sc.mode == "random" && sc.router_mtbf > 0 && sc.router_mttr <= 0)
    throw std::invalid_argument(
        "faults: random mode with router_mtbf > 0 requires router_mttr > 0");
}

// Alternating up/down renewal process for one component: exponential
// holding times with the given means, quantized to cycle boundaries.
// Emits (down_cycle, up_cycle<0 = permanent) outages within [0, horizon).
void draw_outages(util::Rng& rng, double mtbf, double mttr, long horizon,
                  std::vector<std::pair<long, long>>& out) {
  double t = 0.0;
  while (true) {
    t += -mtbf * std::log(1.0 - rng.uniform());
    if (t >= static_cast<double>(horizon)) return;
    const long down = static_cast<long>(std::ceil(t));
    t += -mttr * std::log(1.0 - rng.uniform());
    if (t >= static_cast<double>(horizon)) {
      out.emplace_back(down, -1);
      return;
    }
    const long up = static_cast<long>(std::ceil(t));
    if (up > down) out.emplace_back(down, up);
  }
}

}  // namespace

std::string FaultScenarioSpec::label() const {
  if (!name.empty()) return name;
  std::string l;
  if (mode == "targeted") {
    l = "targeted-k" + std::to_string(k);
  } else if (mode == "random") {
    l = "random-s" + std::to_string(seed);
  } else {
    l = "explicit-" + std::to_string(events.size()) + "ev";
  }
  if (lossy) l += "-lossy";
  if (!repair) l += "-norepair";
  return l;
}

std::string FaultScenarioSpec::canonical_key() const {
  std::string key = "fault:mode=" + mode + ";k=" + std::to_string(k) +
                    ";fail_at=" + std::to_string(fail_at) +
                    ";recover_at=" + std::to_string(recover_at) +
                    ";link_mtbf=" + fmt_double(link_mtbf) +
                    ";link_mttr=" + fmt_double(link_mttr) +
                    ";router_mtbf=" + fmt_double(router_mtbf) +
                    ";router_mttr=" + fmt_double(router_mttr) +
                    ";seed=" + std::to_string(seed) +
                    ";lossy=" + (lossy ? "1" : "0") +
                    ";repair=" + (repair ? "1" : "0");
  if (!events.empty()) {
    key += ";events=";
    for (std::size_t i = 0; i < events.size(); ++i) {
      const FaultEvent& e = events[i];
      if (i) key += ',';
      key += std::to_string(e.cycle) + ':' + to_string(e.kind) + ':' +
             std::to_string(e.a) + ':' + std::to_string(e.b);
    }
  }
  return key;
}

FaultSchedule build_fault_schedule(const FaultScenarioSpec& scenario,
                                   const core::NetworkPlan& plan,
                                   long horizon) {
  validate_scenario(scenario);
  const topo::DiGraph& g = plan.graph;
  const int n = g.num_nodes();
  FaultSchedule sched;

  // Duplex links in deterministic (u, v) order; both modes fail a link's
  // two directions together (a cable cut, or a power-gated SerDes pair).
  std::vector<std::pair<int, int>> duplex;
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (g.has_edge(u, v) || g.has_edge(v, u)) duplex.emplace_back(u, v);

  auto down_both = [&](long cycle, int u, int v) {
    if (g.has_edge(u, v))
      sched.events.push_back({cycle, FaultEventKind::kLinkDown, u, v});
    if (g.has_edge(v, u))
      sched.events.push_back({cycle, FaultEventKind::kLinkDown, v, u});
  };
  auto up_both = [&](long cycle, int u, int v) {
    if (g.has_edge(u, v))
      sched.events.push_back({cycle, FaultEventKind::kLinkUp, u, v});
    if (g.has_edge(v, u))
      sched.events.push_back({cycle, FaultEventKind::kLinkUp, v, u});
  };

  if (scenario.mode == "targeted") {
    // Adversarial: the k duplex links carrying the most routed load (summed
    // over both directions), per the channel-load pipeline. Ties break on
    // (u, v) so the selection is engine- and thread-independent.
    const routing::LoadAnalysis la = routing::analyze_uniform(plan.table);
    std::vector<std::pair<double, std::size_t>> ranked;
    ranked.reserve(duplex.size());
    for (std::size_t i = 0; i < duplex.size(); ++i) {
      const auto [u, v] = duplex[i];
      double load = 0.0;
      if (g.has_edge(u, v)) load += la.load(u, v);
      if (g.has_edge(v, u)) load += la.load(v, u);
      ranked.emplace_back(load, i);
    }
    std::sort(ranked.begin(), ranked.end(), [&](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return duplex[a.second] < duplex[b.second];
    });
    const std::size_t kk =
        std::min<std::size_t>(static_cast<std::size_t>(scenario.k),
                              ranked.size());
    for (std::size_t i = 0; i < kk; ++i) {
      const auto [u, v] = duplex[ranked[i].second];
      if (scenario.fail_at < horizon) down_both(scenario.fail_at, u, v);
      if (scenario.recover_at >= 0 && scenario.recover_at < horizon)
        up_both(scenario.recover_at, u, v);
    }
  } else if (scenario.mode == "random") {
    // Per-component renewal processes on split RNG streams: stream i for
    // duplex link i, high-bit streams for routers, all children of the
    // scenario seed — never of the traffic seed.
    std::vector<std::pair<long, long>> outages;
    if (scenario.link_mtbf > 0) {
      for (std::size_t i = 0; i < duplex.size(); ++i) {
        util::Rng rng(util::split_stream(scenario.seed, i));
        outages.clear();
        draw_outages(rng, scenario.link_mtbf, scenario.link_mttr, horizon,
                     outages);
        for (const auto& [down, up] : outages) {
          down_both(down, duplex[i].first, duplex[i].second);
          if (up >= 0) up_both(up, duplex[i].first, duplex[i].second);
        }
      }
    }
    if (scenario.router_mtbf > 0) {
      for (int r = 0; r < n; ++r) {
        util::Rng rng(util::split_stream(
            scenario.seed, 0x8000000000000000ULL + static_cast<std::uint64_t>(r)));
        outages.clear();
        draw_outages(rng, scenario.router_mtbf, scenario.router_mttr, horizon,
                     outages);
        for (const auto& [down, up] : outages) {
          sched.events.push_back({down, FaultEventKind::kRouterDown, r, -1});
          if (up >= 0)
            sched.events.push_back({up, FaultEventKind::kRouterUp, r, -1});
        }
      }
    }
  } else {  // explicit
    for (const FaultEvent& e : scenario.events) {
      if (e.cycle < 0)
        throw std::invalid_argument("faults: event cycle must be >= 0");
      const bool link = e.kind == FaultEventKind::kLinkDown ||
                        e.kind == FaultEventKind::kLinkUp;
      if (link) {
        if (e.a < 0 || e.a >= n || e.b < 0 || e.b >= n || !g.has_edge(e.a, e.b))
          throw std::invalid_argument(
              "faults: event names absent edge " + std::to_string(e.a) +
              " -> " + std::to_string(e.b));
      } else {
        if (e.a < 0 || e.a >= n)
          throw std::invalid_argument("faults: event names absent router " +
                                      std::to_string(e.a));
      }
      if (e.cycle < horizon) sched.events.push_back(e);
    }
  }

  std::sort(sched.events.begin(), sched.events.end(), event_less);
  return sched;
}

FaultPlan prepare_fault_plan(const core::NetworkPlan& plan,
                             const FaultScenarioSpec& scenario, long horizon) {
  obs::Span span("fault/prepare");
  FaultPlan fp;
  fp.lossy = scenario.lossy;
  fp.events = build_fault_schedule(scenario, plan, horizon).events;

  const int n = plan.graph.num_nodes();
  std::vector<std::uint8_t> link_down(static_cast<std::size_t>(n) * n, 0);
  std::vector<std::uint8_t> router_down(static_cast<std::size_t>(n), 0);
  int links = 0, routers = 0;

  fp.epochs.push_back({});  // pre-fault epoch at cycle 0, base routing

  std::size_t i = 0;
  while (i < fp.events.size()) {
    const long cycle = fp.events[i].cycle;
    bool links_changed = false;
    for (; i < fp.events.size() && fp.events[i].cycle == cycle; ++i) {
      const FaultEvent& e = fp.events[i];
      switch (e.kind) {
        case FaultEventKind::kLinkDown: {
          auto& bit = link_down[static_cast<std::size_t>(e.a) * n + e.b];
          if (!bit) { bit = 1; ++links; links_changed = true; }
          break;
        }
        case FaultEventKind::kLinkUp: {
          auto& bit = link_down[static_cast<std::size_t>(e.a) * n + e.b];
          if (bit) { bit = 0; --links; links_changed = true; }
          break;
        }
        case FaultEventKind::kRouterDown: {
          auto& bit = router_down[static_cast<std::size_t>(e.a)];
          if (!bit) { bit = 1; ++routers; }
          break;
        }
        case FaultEventKind::kRouterUp: {
          auto& bit = router_down[static_cast<std::size_t>(e.a)];
          if (bit) { bit = 0; --routers; }
          break;
        }
      }
    }

    FaultEpoch ep;
    ep.cycle = cycle;
    ep.links_down = links;
    ep.routers_down = routers;

    // Router faults are endpoint (NI) faults — the crossbar still forwards —
    // so routing only reacts to the link set. An unchanged link set reuses
    // the previous epoch's tables verbatim.
    if (!links_changed && fp.epochs.size() > 1) {
      const FaultEpoch& prev = fp.epochs.back();
      ep.repaired = prev.repaired;
      ep.table = prev.table;
      ep.vc_map = prev.vc_map;
      ep.flows_unroutable = prev.flows_unroutable;
    } else if (scenario.repair && links > 0) {
      obs::WallTimer timer;
      std::vector<std::pair<int, int>> down_edges;
      for (int u = 0; u < n; ++u)
        for (int v = 0; v < n; ++v)
          if (link_down[static_cast<std::size_t>(u) * n + v])
            down_edges.emplace_back(u, v);
      routing::RepairResult rr = routing::repair_routes(
          plan.graph, plan.table, down_edges, plan.max_paths_per_flow);
      if (rr.flows_affected > 0) {
        ep.repaired = true;
        ep.table = std::move(rr.table);
        // Re-layer for deadlock freedom: the repaired routes are new channel
        // dependencies, so the old VC layering is not valid for them.
        util::Rng rng(scenario.seed);
        const vc::VcAssignment a = vc::assign_layers(ep.table, plan.graph, rng);
        ep.vc_map = vc::balance_vcs(a, ep.table, plan.num_vcs);
        ep.flows_rerouted = rr.flows_rerouted;
        ep.flows_unroutable = rr.flows_unroutable;
        fp.flows_rerouted += rr.flows_rerouted;
      }
      if (obs::metrics_enabled())
        obs::counter("fault.repair_us")
            .add(static_cast<std::uint64_t>(timer.seconds() * 1e6));
    }

    fp.max_links_down = std::max(fp.max_links_down, links);
    fp.max_routers_down = std::max(fp.max_routers_down, routers);
    fp.flows_unroutable = std::max(fp.flows_unroutable, ep.flows_unroutable);
    fp.epochs.push_back(std::move(ep));
  }

  if (obs::metrics_enabled()) {
    obs::counter("fault.links_down")
        .add(static_cast<std::uint64_t>(fp.max_links_down));
    obs::counter("fault.routers_down")
        .add(static_cast<std::uint64_t>(fp.max_routers_down));
  }
  return fp;
}

}  // namespace netsmith::fault
