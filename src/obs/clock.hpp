#pragma once
// Timing primitives shared by the observability layer and every bench /
// solver-trace harness. One steady-clock timebase for the whole process:
// WallTimer measures intervals, now_us() stamps trace events against a
// process-wide origin so spans from different threads land on one timeline.

#include <chrono>

namespace netsmith::obs {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Microseconds since the first call in this process (steady clock). Chrome
// trace_event timestamps are microseconds; a process-relative origin keeps
// them small and diff-friendly.
double now_us();

}  // namespace netsmith::obs
