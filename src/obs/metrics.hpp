#pragma once
// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms, designed so instrumentation can live inside the synthesis /
// routing / simulation hot paths without measurably slowing them.
//
// Overhead contract (see DESIGN.md "Observability"):
//  - Disabled (the default), every record call is one relaxed atomic load
//    and a predictable branch. Nothing else runs.
//  - Enabled, counter increments go to one of kMetricShards cache-line-
//    padded slots chosen per thread, so concurrent writers do not bounce a
//    shared line. Hot loops are still expected to accumulate locally and
//    flush once per unit of work (per restart, per search, per sim run) —
//    the registry makes flushes cheap, it does not make per-cycle atomics
//    free.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// process lifetime; callers cache them (typically in a function-local
// static). snapshot() aggregates across shards into name-ordered vectors,
// so serializing a snapshot is deterministic given the same recorded
// values. reset_metrics() zeroes values but keeps registrations — tests and
// repeated in-process runs use it to scope measurements.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace netsmith::obs {

// --------------------------------------------------------------- gating ---

// One process-wide atomic flag; relaxed loads on the hot path.
bool metrics_enabled();
void set_metrics_enabled(bool on);

inline constexpr int kMetricShards = 16;

namespace detail {
struct alignas(64) CounterSlot {
  std::atomic<std::uint64_t> v{0};
};
// Per-thread shard index (round-robin assignment on first use).
int shard_index();
}  // namespace detail

// -------------------------------------------------------------- counters ---

// Monotonic counter. add() is wait-free: one relaxed fetch_add on a
// per-thread-sharded slot.
class Counter {
 public:
  void add(std::uint64_t v) {
    if (!metrics_enabled()) return;
    slots_[detail::shard_index()].v.fetch_add(v, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  std::uint64_t value() const;
  void reset();

 private:
  detail::CounterSlot slots_[kMetricShards];
};

// ---------------------------------------------------------------- gauges ---

// Last-written value (set) or accumulated value (add); doubles.
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    bits_.store(encode(v), std::memory_order_relaxed);
  }
  void add(double v);
  double value() const;
  void reset() { bits_.store(0, std::memory_order_relaxed); }

 private:
  static std::uint64_t encode(double v);
  static double decode(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};  // bit-cast double; 0 encodes 0.0
};

// ------------------------------------------------------------ histograms ---

// Fixed-bucket histogram: bounds are inclusive upper edges in ascending
// order; values above the last bound land in an overflow bucket. Bucket
// counts are sharded like Counter slots; sum/count ride along for means.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double v) { record_n(v, 1); }
  // Bulk insert: `n` observations of value `v` in one shot. Hot loops build
  // a local histogram and flush it through this once per run.
  void record_n(double v, std::uint64_t n);

  const std::vector<double>& bounds() const { return bounds_; }
  // Aggregated counts, one per bound plus the overflow bucket.
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const;
  double sum() const;
  void reset();

 private:
  int bucket_of(double v) const;

  std::vector<double> bounds_;
  // shard-major layout: shard s, bucket b at [s * num_buckets + b].
  std::vector<detail::CounterSlot> cells_;
  detail::CounterSlot counts_total_[kMetricShards];
  Gauge sum_;
};

// -------------------------------------------------------------- registry ---

// Named lookup; registers on first use, returns the existing entry after.
// A histogram's bounds are fixed by its first registration.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name, std::vector<double> bounds);

// --------------------------------------------------------------- snapshot ---

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
};

// Name-ordered aggregation of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

MetricsSnapshot snapshot_metrics();

// Zeroes every registered metric's value; registrations (and histogram
// bounds) survive.
void reset_metrics();

// {"counters": {...}, "gauges": {...}, "histograms": {name: {bounds,
// counts, count, sum}}} — ordered keys, suitable for the Report `metrics`
// block.
util::JsonValue metrics_to_json(const MetricsSnapshot& snap);

}  // namespace netsmith::obs
