#pragma once
// Scoped trace-span recorder emitting Chrome trace_event JSON.
//
// Usage:
//   obs::Span span("anneal/restart");
//   span.arg("restart", r);
//   ... work ...
//   // destructor records a complete ("ph":"X") event with begin ts + dur
//
//   obs::trace_counter("anneal/incumbent", primary);   // "ph":"C" sample
//
// Runtime-gated like the metrics registry: when tracing is disabled (the
// default) Span's constructor is one relaxed atomic load and every other
// member is a no-op — no clock read, no allocation. Enabled, events append
// to per-thread buffers (one uncontended mutex each, locked only against
// the dump path), so worker threads never serialize on a shared log.
//
// Timestamps are microseconds from the process-wide steady-clock origin
// (obs::now_us); thread ids are small sequential integers assigned on first
// use, so a written trace loads in chrome://tracing / Perfetto with one
// track per worker.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace netsmith::obs {

bool trace_enabled();
void set_trace_enabled(bool on);

struct TraceEvent {
  std::string name;
  char ph = 'X';  // 'X' complete span, 'C' counter sample, 'i' instant
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;  // 'X' only
  double value = 0.0;   // 'C' only
  std::vector<std::pair<std::string, double>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attach args (shown in the trace viewer's detail pane). No-ops when the
  // span was constructed with tracing disabled.
  void arg(const char* key, double v);
  void arg(const char* key, long long v) { arg(key, static_cast<double>(v)); }
  void arg(const char* key, long v) { arg(key, static_cast<double>(v)); }
  void arg(const char* key, int v) { arg(key, static_cast<double>(v)); }
  void arg(const char* key, const std::string& v);

 private:
  const char* name_;
  double start_us_ = 0.0;
  bool live_ = false;
  std::vector<std::pair<std::string, double>> num_args_;
  std::vector<std::pair<std::string, std::string>> str_args_;
};

// One counter sample ("ph":"C"): the viewer renders these as a stepped
// value track — e.g. the annealer's objective trajectory.
void trace_counter(const char* name, double value);

// Zero-duration instant event.
void trace_instant(const char* name);

// Merged copy of every recorded event, sorted by (ts, tid, name) so output
// is deterministic given the same events. Intended for end-of-run dumping
// and tests; spans still open are not included.
std::vector<TraceEvent> collect_trace_events();

// Chrome trace_event JSON document: {"traceEvents": [...], ...}.
std::string trace_to_json();

// Writes trace_to_json() to `path`; throws std::runtime_error on I/O error.
void write_trace(const std::string& path);

// Drops all recorded events (buffers stay registered).
void reset_trace();

}  // namespace netsmith::obs
