#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "obs/clock.hpp"
#include "util/json.hpp"

namespace netsmith::obs {

double now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return std::chrono::duration<double, std::micro>(clock::now() - origin)
      .count();
}

namespace {

std::atomic<bool> g_trace_enabled{false};

struct ThreadBuf {
  int tid = 0;
  // The owning thread appends; the dump path reads from any thread. Both
  // take this mutex — appends are uncontended except while dumping.
  std::mutex mu;
  std::vector<TraceEvent> events;
};

struct TraceState {
  std::mutex mu;  // guards bufs registration
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  std::atomic<int> next_tid{0};
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: outlives teardown
  return *s;
}

ThreadBuf& thread_buf() {
  thread_local ThreadBuf* buf = [] {
    TraceState& s = state();
    auto owned = std::make_unique<ThreadBuf>();
    owned->tid = s.next_tid.fetch_add(1, std::memory_order_relaxed);
    ThreadBuf* raw = owned.get();
    std::lock_guard<std::mutex> lock(s.mu);
    s.bufs.push_back(std::move(owned));
    return raw;
  }();
  return *buf;
}

void append(TraceEvent ev) {
  ThreadBuf& buf = thread_buf();
  ev.tid = buf.tid;
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(ev));
}

}  // namespace

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

Span::Span(const char* name) : name_(name) {
  if (!trace_enabled()) return;
  live_ = true;
  start_us_ = now_us();
}

Span::~Span() {
  if (!live_) return;
  TraceEvent ev;
  ev.name = name_;
  ev.ph = 'X';
  ev.ts_us = start_us_;
  ev.dur_us = now_us() - start_us_;
  ev.num_args = std::move(num_args_);
  ev.str_args = std::move(str_args_);
  append(std::move(ev));
}

void Span::arg(const char* key, double v) {
  if (live_) num_args_.emplace_back(key, v);
}

void Span::arg(const char* key, const std::string& v) {
  if (live_) str_args_.emplace_back(key, v);
}

void trace_counter(const char* name, double value) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.ph = 'C';
  ev.ts_us = now_us();
  ev.value = value;
  append(std::move(ev));
}

void trace_instant(const char* name) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.ph = 'i';
  ev.ts_us = now_us();
  append(std::move(ev));
}

std::vector<TraceEvent> collect_trace_events() {
  TraceState& s = state();
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& buf : s.bufs) {
      std::lock_guard<std::mutex> bl(buf->mu);
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.ts_us, a.tid, a.name) <
                     std::tie(b.ts_us, b.tid, b.name);
            });
  return all;
}

std::string trace_to_json() {
  using util::JsonValue;
  JsonValue events = JsonValue::array();
  for (const auto& ev : collect_trace_events()) {
    JsonValue o = JsonValue::object();
    o.set("name", JsonValue::string(ev.name));
    o.set("ph", JsonValue::string(std::string(1, ev.ph)));
    o.set("pid", JsonValue::integer(1));
    o.set("tid", JsonValue::integer(ev.tid));
    o.set("ts", JsonValue::number(ev.ts_us));
    if (ev.ph == 'X') o.set("dur", JsonValue::number(ev.dur_us));
    if (ev.ph == 'i') o.set("s", JsonValue::string("t"));
    JsonValue args = JsonValue::object();
    if (ev.ph == 'C') args.set("value", JsonValue::number(ev.value));
    for (const auto& [k, v] : ev.num_args) args.set(k, JsonValue::number(v));
    for (const auto& [k, v] : ev.str_args) args.set(k, JsonValue::string(v));
    if (ev.ph == 'C' || !ev.num_args.empty() || !ev.str_args.empty())
      o.set("args", std::move(args));
    events.push_back(std::move(o));
  }
  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", JsonValue::string("ms"));
  return doc.dump();
}

void write_trace(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << trace_to_json();
  if (!out) throw std::runtime_error("write failed: " + path);
}

void reset_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& buf : s.bufs) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->events.clear();
  }
}

}  // namespace netsmith::obs
