#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <mutex>

namespace netsmith::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {

int shard_index() {
  static std::atomic<unsigned> next{0};
  thread_local const int idx = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards);
  return idx;
}

}  // namespace detail

// -------------------------------------------------------------- counters ---

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& s : slots_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (auto& s : slots_) s.v.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- gauges ---

std::uint64_t Gauge::encode(double v) { return std::bit_cast<std::uint64_t>(v); }

double Gauge::decode(std::uint64_t bits) {
  return bits == 0 ? 0.0 : std::bit_cast<double>(bits);
}

void Gauge::add(double v) {
  if (!metrics_enabled()) return;
  std::uint64_t cur = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(cur, encode(decode(cur) + v),
                                      std::memory_order_relaxed)) {
  }
}

double Gauge::value() const {
  return decode(bits_.load(std::memory_order_relaxed));
}

// ------------------------------------------------------------ histograms ---

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  cells_ = std::vector<detail::CounterSlot>(
      static_cast<std::size_t>(kMetricShards) * (bounds_.size() + 1));
}

int Histogram::bucket_of(double v) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<int>(it - bounds_.begin());  // == size() -> overflow
}

void Histogram::record_n(double v, std::uint64_t n) {
  if (!metrics_enabled() || n == 0) return;
  const int s = detail::shard_index();
  const std::size_t buckets = bounds_.size() + 1;
  cells_[s * buckets + bucket_of(v)].v.fetch_add(n,
                                                 std::memory_order_relaxed);
  counts_total_[s].v.fetch_add(n, std::memory_order_relaxed);
  sum_.add(v * static_cast<double>(n));
}

std::vector<std::uint64_t> Histogram::counts() const {
  const std::size_t buckets = bounds_.size() + 1;
  std::vector<std::uint64_t> out(buckets, 0);
  for (int s = 0; s < kMetricShards; ++s)
    for (std::size_t b = 0; b < buckets; ++b)
      out[b] += cells_[s * buckets + b].v.load(std::memory_order_relaxed);
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& s : counts_total_)
    total += s.v.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const { return sum_.value(); }

void Histogram::reset() {
  for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  for (auto& c : counts_total_) c.v.store(0, std::memory_order_relaxed);
  sum_.reset();
}

// -------------------------------------------------------------- registry ---

namespace {

// One mutex-guarded map per metric kind; values are heap entries so handles
// stay stable across rehashes. Registration is cold (callers cache handles).
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static teardown
  return *r;
}

}  // namespace

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& histogram(const std::string& name, std::vector<double> bounds) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

// --------------------------------------------------------------- snapshot ---

MetricsSnapshot snapshot_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  MetricsSnapshot snap;
  for (const auto& [name, c] : r.counters)
    snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : r.gauges)
    snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : r.histograms) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.counts = h->counts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

util::JsonValue metrics_to_json(const MetricsSnapshot& snap) {
  using util::JsonValue;
  JsonValue o = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, v] : snap.counters)
    counters.set(name, JsonValue::integer(static_cast<long long>(v)));
  o.set("counters", std::move(counters));
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, v] : snap.gauges)
    gauges.set(name, JsonValue::number(v));
  o.set("gauges", std::move(gauges));
  JsonValue hists = JsonValue::object();
  for (const auto& h : snap.histograms) {
    JsonValue ho = JsonValue::object();
    JsonValue bounds = JsonValue::array();
    for (double b : h.bounds) bounds.push_back(JsonValue::number(b));
    ho.set("bounds", std::move(bounds));
    JsonValue counts = JsonValue::array();
    for (std::uint64_t c : h.counts)
      counts.push_back(JsonValue::integer(static_cast<long long>(c)));
    ho.set("counts", std::move(counts));
    ho.set("count", JsonValue::integer(static_cast<long long>(h.count)));
    ho.set("sum", JsonValue::number(h.sum));
    hists.set(h.name, std::move(ho));
  }
  o.set("histograms", std::move(hists));
  return o;
}

}  // namespace netsmith::obs
