#pragma once
// DSENT-lite: analytic power/area model for NoI routers and interposer wires
// (paper SV-D, Fig. 9; DSENT substitution documented in DESIGN.md).
//
// Router energy scales with radix (crossbar ~ radix^2, buffers ~ VCs*depth);
// wire energy/area scale with length * width * activity. Leakage is charged
// per router and per mm of repeated wire. All Fig. 9 outputs are normalized
// to the mesh topology, so only the *relative* calibration matters.

#include "topo/graph.hpp"
#include "topo/layout.hpp"

namespace netsmith::power {

struct TechParams {
  // 22 nm-ish bulk LVT flavour.
  double router_energy_base_pj = 0.45;      // per flit through a router
  double router_energy_per_port_pj = 0.07;  // crossbar term, x radix
  double buffer_energy_pj = 0.25;           // write+read per flit
  double wire_energy_pj_per_mm = 0.55;      // 64-bit flit, per mm
  double router_leakage_mw = 1.6;           // per router
  double buffer_leakage_mw_per_vc = 0.22;
  double wire_leakage_mw_per_mm = 0.35;     // repeaters
  double router_area_mm2 = 0.082;           // radix-6-ish VC router
  double router_area_per_port_mm2 = 0.011;
  double wire_area_mm2_per_mm = 0.135;      // 64 wires + spacing/repeaters
};

struct PowerArea {
  double dynamic_mw = 0.0;
  double leakage_mw = 0.0;
  double router_area_mm2 = 0.0;
  double wire_area_mm2 = 0.0;
  double total_power_mw() const { return dynamic_mw + leakage_mw; }
  double total_area_mm2() const { return router_area_mm2 + wire_area_mm2; }
};

// `flits_per_node_cycle` is the average injected flit rate per router
// (activity); hop counts distribute that activity over routers and wires.
PowerArea estimate(const topo::DiGraph& g, const topo::Layout& layout,
                   double clock_ghz, double flits_per_node_cycle, int num_vcs,
                   const TechParams& tech = {});

}  // namespace netsmith::power
