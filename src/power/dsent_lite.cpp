#include "power/dsent_lite.hpp"

#include <algorithm>

#include "topo/metrics.hpp"

namespace netsmith::power {

PowerArea estimate(const topo::DiGraph& g, const topo::Layout& layout,
                   double clock_ghz, double flits_per_node_cycle, int num_vcs,
                   const TechParams& tech) {
  const int n = g.num_nodes();
  PowerArea pa;

  double total_wire_mm = 0.0;
  // Each directed link is half of a full-duplex wire bundle; charge each
  // direction its own wires (asymmetric links use the same resources as a
  // symmetric pair, as the paper notes).
  for (const auto& [i, j] : g.edges())
    total_wire_mm += topo::link_length_mm(layout, i, j);

  const double avg_hops = topo::average_hops(g);
  // Flit-hops per second across the whole NoI.
  const double flit_hops_per_s =
      flits_per_node_cycle * n * (avg_hops + 1.0) * clock_ghz * 1e9;

  // Energy per flit-hop: one router traversal + buffer write/read + the
  // average wire length.
  double max_radix = 0.0;
  for (int i = 0; i < n; ++i)
    max_radix = std::max(max_radix,
                         static_cast<double>(std::max(g.out_degree(i), g.in_degree(i))));
  const double avg_wire_mm =
      g.num_directed_edges() > 0 ? total_wire_mm / g.num_directed_edges() : 0.0;
  const double e_per_hop_pj = tech.router_energy_base_pj +
                              tech.router_energy_per_port_pj * max_radix +
                              tech.buffer_energy_pj +
                              tech.wire_energy_pj_per_mm * avg_wire_mm;

  pa.dynamic_mw = flit_hops_per_s * e_per_hop_pj * 1e-12 * 1e3;  // pJ/s -> mW

  pa.leakage_mw = n * (tech.router_leakage_mw +
                       tech.buffer_leakage_mw_per_vc * num_vcs) +
                  total_wire_mm * tech.wire_leakage_mw_per_mm;

  pa.router_area_mm2 =
      n * (tech.router_area_mm2 + tech.router_area_per_port_mm2 * max_radix);
  pa.wire_area_mm2 = total_wire_mm * tech.wire_area_mm2_per_mm;
  return pa;
}

}  // namespace netsmith::power
