#include "util/json.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace netsmith::util {

// ------------------------------------------------------------ JsonValue ---

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::integer(long long i) {
  JsonValue v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.type_ = Type::kDouble;
  v.dbl_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

namespace {

[[noreturn]] void type_error(const char* want, JsonValue::Type got) {
  static const char* kNames[] = {"null",   "bool",  "int",   "double",
                                 "string", "array", "object"};
  throw std::runtime_error(std::string("json: expected ") + want + ", got " +
                           kNames[static_cast<int>(got)]);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

long long JsonValue::as_int() const {
  if (type_ != Type::kInt) type_error("int", type_);
  return int_;
}

std::uint64_t JsonValue::as_u64() const {
  // Two's-complement bit-cast: values above INT64_MAX serialize as negative
  // int tokens and round-trip exactly through this cast (64-bit seeds).
  if (type_ != Type::kInt) type_error("int", type_);
  return static_cast<std::uint64_t>(int_);
}

double JsonValue::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ != Type::kDouble) type_error("number", type_);
  return dbl_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return items_;
}

void JsonValue::push_back(JsonValue v) {
  if (type_ != Type::kArray) type_error("array", type_);
  items_.push_back(std::move(v));
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) type_error("object", type_);
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (!v) throw std::runtime_error("json: missing key '" + key + "'");
  return *v;
}

void JsonValue::set(const std::string& key, JsonValue v) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, old] : members_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

// -------------------------------------------------------------- dumping ---

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void append_double(std::string& out, double d) {
  // Shortest representation that parses back to the same double; keeps
  // spec round-trips exact. NaN/inf have no JSON form -> null.
  if (d != d || d == 1.0 / 0.0 || d == -1.0 / 0.0) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, res.ptr);
  // Ensure the token re-parses as a double, not an int (round-trip type
  // stability for whole-valued doubles like 2.0 -> "2.0").
  std::string_view tok(buf, static_cast<std::size_t>(res.ptr - buf));
  if (tok.find('.') == std::string_view::npos &&
      tok.find('e') == std::string_view::npos &&
      tok.find('E') == std::string_view::npos)
    out += ".0";
}

void indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kInt: out += std::to_string(int_); return;
    case Type::kDouble: append_double(out, dbl_); return;
    case Type::kString: out += json_quote(str_); return;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      // Arrays of scalars print inline; arrays with any container member
      // print one element per line.
      bool scalar = true;
      for (const auto& v : items_)
        if (v.type_ == Type::kArray || v.type_ == Type::kObject) scalar = false;
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        if (scalar) {
          if (i) out += ' ';
        } else {
          out += '\n';
          indent(out, depth + 1);
        }
        items_[i].dump_to(out, depth + 1);
      }
      if (!scalar) {
        out += '\n';
        indent(out, depth);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        out += '\n';
        indent(out, depth + 1);
        out += json_quote(members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, depth + 1);
      }
      out += '\n';
      indent(out, depth);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

void JsonValue::dump_compact_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kInt: out += std::to_string(int_); return;
    case Type::kDouble: append_double(out, dbl_); return;
    case Type::kString: out += json_quote(str_); return;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        items_[i].dump_compact_to(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        out += json_quote(members_[i].first);
        out += ':';
        members_[i].second.dump_compact_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump_compact() const {
  std::string out;
  dump_compact_to(out);
  return out;
}

// -------------------------------------------------------------- parsing ---

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (literal("true")) return JsonValue::boolean(true);
        fail("bad literal");
      case 'f':
        if (literal("false")) return JsonValue::boolean(false);
        fail("bad literal");
      case 'n':
        if (literal("null")) return JsonValue::null();
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    if (consume('}')) return obj;
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      if (obj.find(key)) fail("duplicate key '" + key + "'");
      obj.set(key, parse_value());
      if (consume('}')) return obj;
      expect(',');
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    if (consume(']')) return arr;
    while (true) {
      arr.push_back(parse_value());
      if (consume(']')) return arr;
      expect(',');
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Encode the code point as UTF-8 (no surrogate-pair handling; the
          // basic multilingual plane covers every spec/report field).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool is_int = true;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_int = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected value");
    const std::string tok = s_.substr(start, pos_ - start);
    if (is_int) {
      try {
        std::size_t used = 0;
        const long long v = std::stoll(tok, &used);
        if (used == tok.size()) return JsonValue::integer(v);
      } catch (const std::exception&) {
        // Positive tokens up to UINT64_MAX still land in the int slot via
        // the same bit-cast as_u64 undoes; anything wider becomes a double.
        if (tok[0] != '-') {
          try {
            std::size_t used = 0;
            const unsigned long long v = std::stoull(tok, &used);
            if (used == tok.size())
              return JsonValue::integer(static_cast<long long>(v));
          } catch (const std::exception&) {
          }
        }
      }
    }
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (!end || *end != '\0') fail("bad number '" + tok + "'");
    return JsonValue::number(d);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

// ----------------------------------------------------------- JsonWriter ---

void JsonWriter::prefix(const char* key) {
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
    out_ += '\n';
    out_.append(first_.size() * 2, ' ');
  }
  if (key) {
    out_ += json_quote(key);
    out_ += ": ";
  }
}

void JsonWriter::open(char c, const char* key) {
  prefix(key);
  out_ += c;
  first_.push_back(true);
  closer_.push_back(c == '{' ? '}' : ']');
}

void JsonWriter::end() {
  const bool empty = first_.back();
  first_.pop_back();
  if (!empty) {
    out_ += '\n';
    out_.append(first_.size() * 2, ' ');
  }
  out_ += closer_.back();
  closer_.pop_back();
  if (first_.empty()) out_ += '\n';
}

void JsonWriter::field_int(const char* key, long long v) {
  prefix(key);
  out_ += std::to_string(v);
}

void JsonWriter::field_bool(const char* key, bool v) {
  prefix(key);
  out_ += v ? "true" : "false";
}

void JsonWriter::field_string(const char* key, const std::string& v) {
  prefix(key);
  out_ += json_quote(v);
}

void JsonWriter::field_fmt(const char* key, const char* fmt, double v) {
  prefix(key);
  if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0) {
    out_ += "null";  // NaN/inf have no JSON number form
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  out_ += buf;
}

void JsonWriter::elem_fmt(const char* fmt, double v) {
  prefix(nullptr);
  if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  out_ += buf;
}

void JsonWriter::elem_string(const std::string& v) {
  prefix(nullptr);
  out_ += json_quote(v);
}

}  // namespace netsmith::util
