#pragma once
// Column-aligned ASCII table printer used by every bench harness so the
// regenerated tables/figures read like the paper's.

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace netsmith::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Convenience: formats doubles with fixed precision.
  static std::string fmt(double v, int prec = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());

    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string();
        os << std::left << std::setw(static_cast<int>(width[c]) + 2) << s;
      }
      os << '\n';
    };
    line(headers_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace netsmith::util
