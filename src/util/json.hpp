#pragma once
// Minimal JSON support shared by the experiment API and the perf harness.
//
// Two layers:
//  - JsonValue: an ordered-object DOM with parse() and dump(). Objects keep
//    insertion order, integers stay integers, and doubles are emitted with
//    shortest round-trippable formatting, so serialize -> parse -> serialize
//    is byte-stable. This backs ExperimentSpec/Report serialization.
//  - JsonWriter: a streaming writer with caller-controlled printf formatting
//    for numbers (2-space pretty printing, same layout as dump()). This backs
//    BENCH_perf.json, whose fields are fixed-precision by contract.
//
// Deliberately small: no comments, no trailing commas, UTF-8 passthrough
// with \uXXXX decoding. Parse errors throw std::runtime_error with a byte
// offset.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace netsmith::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue integer(long long i);
  static JsonValue number(double d);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }

  // Typed accessors; throw std::runtime_error on type mismatch (kInt is
  // accepted by as_double, and a mathematically integral kDouble is not).
  // as_u64 bit-casts the int slot, so full-range 64-bit values round-trip
  // (above INT64_MAX they serialize as negative int tokens).
  bool as_bool() const;
  long long as_int() const;
  std::uint64_t as_u64() const;
  double as_double() const;
  const std::string& as_string() const;

  // Array access.
  const std::vector<JsonValue>& items() const;
  void push_back(JsonValue v);

  // Object access (insertion-ordered).
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  // Null when the key is absent.
  const JsonValue* find(const std::string& key) const;
  // find() that throws with the key name when absent.
  const JsonValue& at(const std::string& key) const;
  void set(const std::string& key, JsonValue v);  // append or replace

  // Pretty-printed (2-space indent) serialization with trailing newline.
  std::string dump() const;

  // Single-line serialization (no whitespace, no trailing newline). Number
  // formatting matches dump(), so parse(dump_compact(v)) == v with the same
  // exactness guarantees. This backs the serve layer's newline-delimited
  // protocol, where every message must be one complete line.
  std::string dump_compact() const;

  // Strict parse of a complete document (throws std::runtime_error).
  static JsonValue parse(const std::string& text);

 private:
  void dump_to(std::string& out, int depth) const;
  void dump_compact_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  long long int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Escapes and quotes `s` as a JSON string token.
std::string json_quote(const std::string& s);

// Streaming pretty-printer. Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.field_int("schema", 2);
//   w.begin_object("anneal");
//   w.field_fmt("moves_per_sec", "%.1f", mps);
//   w.end();   // anneal
//   w.end();   // root (appends the trailing newline)
//   write(w.str());
class JsonWriter {
 public:
  void begin_object() { open('{', nullptr); }
  void begin_object(const char* key) { open('{', key); }
  void begin_array() { open('[', nullptr); }
  void begin_array(const char* key) { open('[', key); }
  void end();

  void field_int(const char* key, long long v);
  void field_bool(const char* key, bool v);
  void field_string(const char* key, const std::string& v);
  // printf-formatted number (fmt must produce a bare JSON number token).
  void field_fmt(const char* key, const char* fmt, double v);
  // Array elements.
  void elem_fmt(const char* fmt, double v);
  void elem_string(const std::string& v);

  const std::string& str() const { return out_; }

 private:
  void open(char c, const char* key);
  void prefix(const char* key);  // separator + indent + optional "key":

  std::string out_;
  // One frame per open container: first flag for comma placement plus the
  // matching closer character.
  std::vector<bool> first_;
  std::vector<char> closer_;
};

}  // namespace netsmith::util
