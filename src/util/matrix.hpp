#pragma once
// Dense row-major matrix with bounds-checked access in debug builds.

#include <cassert>
#include <cstddef>
#include <vector>

namespace netsmith::util {

template <class T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  T& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  void fill(T v) { data_.assign(data_.size(), v); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<T> data_;
};

}  // namespace netsmith::util
