#pragma once
// Back-compat alias: the wall-clock timer moved into the observability
// layer (obs/clock.hpp) so benches, solver traces and the trace-span
// recorder share one steady-clock timebase. Include obs/clock.hpp in new
// code; this header remains for the existing util::WallTimer spelling.

#include "obs/clock.hpp"

namespace netsmith::util {

using WallTimer = obs::WallTimer;

}  // namespace netsmith::util
