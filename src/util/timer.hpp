#pragma once
// Wall-clock timer for solver traces and bench harnesses.

#include <chrono>

namespace netsmith::util {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace netsmith::util
