#pragma once
// Deterministic, fast pseudo-random number generation for reproducible
// experiments. xoshiro256** seeded via SplitMix64; satisfies
// UniformRandomBitGenerator so it can drive <random> distributions too.

#include <cstdint>
#include <limits>
#include <vector>
#include <cassert>

namespace netsmith::util {

// SplitMix64: used to expand a single 64-bit seed into a full generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Derives a decorrelated child seed for substream `stream` of `seed`.
// Consumers that must not perturb each other's draw sequences (the fault
// schedule generator vs the simulator's traffic sampler, per-link failure
// processes) each seed their own Rng from a distinct stream id: the mapping
// (seed, stream) -> child is pure, so any consumer can be added, removed or
// re-ordered without shifting another stream's sequence.
inline std::uint64_t split_stream(std::uint64_t seed, std::uint64_t stream) {
  SplitMix64 outer(seed);
  SplitMix64 inner(outer.next() ^
                   (stream * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL));
  return inner.next();
}

// xoshiro256**: high-quality, small-state generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() { return (next() >> 11) * (1.0 / 9007199254740992.0); }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * span;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < span) {
      const std::uint64_t t = (0 - span) % span;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * span;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  bool bernoulli(double p) { return uniform() < p; }

  template <class T>
  const T& pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace netsmith::util
