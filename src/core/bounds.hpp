#pragma once
// Analytic bounds on the best achievable objectives under a (layout, link
// class, radix) budget. These are the "any possible optimal solution" side
// of the objective-bounds gap the paper's Fig. 5 traces; MIP solvers get
// them from LP relaxations, we get them from combinatorial arguments:
//
//  - Total hops: for each source, the k-th nearest router is at distance at
//    least max(d_L(s, k-th), moore(k)) where d_L is the BFS distance in the
//    graph of ALL class-valid links and moore(k) is the radius needed for a
//    radix-r out-tree to cover k nodes (r + r^2 + ... + r^t >= k).
//  - Sparsest cut: any fixed partition upper-bounds the achievable minimum;
//    we evaluate the capacity-saturated value of grid row/column cuts and
//    of balanced random partitions.

#include <cstdint>

#include "topo/layout.hpp"

namespace netsmith::core {

// Lower bound on sum of all-pairs distances for any topology satisfying the
// constraints.
std::int64_t total_hops_lower_bound(const topo::Layout& layout,
                                    topo::LinkClass cls, int radix);

// Same, expressed as average hops.
double average_hops_lower_bound(const topo::Layout& layout,
                                topo::LinkClass cls, int radix);

// Upper bound on the sparsest-cut bandwidth any valid topology can achieve.
double sparsest_cut_upper_bound(const topo::Layout& layout,
                                topo::LinkClass cls, int radix);

}  // namespace netsmith::core
