#pragma once
// Anytime topology search: simulated annealing over the space of link sets
// that satisfy the layout / link-class / radix / (optional) symmetry
// constraints of Table I.
//
// This is the Gurobi-substitute backend at the paper's scales (20/30/48
// routers). Like a MIP solver it maintains an incumbent and reports a trace
// of (time, incumbent, analytic bound) pairs whose gap narrows over time
// (Fig. 5). The SCOp objective is evaluated through a lazily grown cache of
// worst cuts (cutting-plane style): cheap surrogate evaluations against the
// cached partitions, with periodic exact sparsest-cut refreshes that insert
// newly violated partitions. The route-aware objectives (kChannelLoad,
// kLatLoad) score every move by running the compiled shortest-path-enum ->
// flat MCLB pipeline on the candidate graph, reusing the move's APSP for
// the shortest-path DAG (see DESIGN.md "Channel-load-aware annealing").
//
// Restarts are independent searches: each owns its RNG (seeded from
// cfg.seed and the restart index), objective engine, cut cache and
// incumbent, so they can run on `threads` worker threads. The best-of
// reduction walks restarts in index order with the same strictly-better
// comparison the serial loop uses, which makes the parallel result
// bit-identical to the serial one. With `max_moves > 0` the temperature
// schedule and termination are driven by the move counter instead of the
// wall clock, so a fixed seed reproduces the exact same topology at any
// thread count.

#include "core/config.hpp"

namespace netsmith::core {

struct AnnealOptions {
  // Temperature schedule (geometric in elapsed-time or elapsed-move
  // fraction, see max_moves).
  double t0 = 8.0;
  double t1 = 0.02;
  int cut_cache_size = 320;
  int cut_refresh_accepts = 500;  // exact-cut refresh cadence for SCOp
  int max_trace_points = 512;
  // Restart parallelism: 1 = serial, 0 = hardware_concurrency, k > 1 = k
  // worker threads. The result is bit-identical across thread counts when
  // max_moves > 0 (deterministic schedule).
  int threads = 1;
  // Per-restart move budget; 0 = wall-clock budget (time_limit_s /
  // restarts per restart, not bit-reproducible across runs).
  long max_moves = 0;
  // Landmark objective estimation for large-n synthesis: when > 0 and
  // smaller than n, the hop-based objectives (kLatOp, kPattern) score moves
  // from this many sampled sources instead of all n. The sample is a
  // deterministic function of (cfg.seed, restart index), so move-budgeted
  // runs stay bit-identical across thread counts and runs. Estimates only
  // steer the search: every incumbent candidate is exactly re-scored (full
  // APSP) before being compared or stored, so objective_value and the
  // returned graph are always exact. SCOp and the route-aware objectives
  // (which need the full distance matrix anyway) ignore this option.
  int landmark_sources = 0;
};

SynthesisResult anneal_synthesize(const SynthesisConfig& cfg,
                                  const AnnealOptions& opts = {});

}  // namespace netsmith::core
