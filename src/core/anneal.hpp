#pragma once
// Anytime topology search: simulated annealing over the space of link sets
// that satisfy the layout / link-class / radix / (optional) symmetry
// constraints of Table I.
//
// This is the Gurobi-substitute backend at the paper's scales (20/30/48
// routers). Like a MIP solver it maintains an incumbent and reports a trace
// of (time, incumbent, analytic bound) pairs whose gap narrows over time
// (Fig. 5). The SCOp objective is evaluated through a lazily grown cache of
// worst cuts (cutting-plane style): cheap surrogate evaluations against the
// cached partitions, with periodic exact sparsest-cut refreshes that insert
// newly violated partitions.

#include "core/config.hpp"

namespace netsmith::core {

struct AnnealOptions {
  // Temperature schedule (geometric in elapsed-time fraction).
  double t0 = 8.0;
  double t1 = 0.02;
  int cut_cache_size = 320;
  int cut_refresh_accepts = 500;  // exact-cut refresh cadence for SCOp
  int max_trace_points = 512;
};

SynthesisResult anneal_synthesize(const SynthesisConfig& cfg,
                                  const AnnealOptions& opts = {});

}  // namespace netsmith::core
