#pragma once
// NetSmith public facade: topology synthesis plus the full post-synthesis
// pipeline (shortest-path enumeration -> MCLB routing -> deadlock-free VC
// allocation), mirroring how the paper deploys generated topologies.

#include <string>

#include "core/anneal.hpp"
#include "core/config.hpp"
#include "core/milp_encoding.hpp"
#include "routing/mclb.hpp"
#include "routing/table.hpp"
#include "vc/balance.hpp"
#include "vc/layers.hpp"

namespace netsmith::core {

// Anytime synthesis (the default backend at paper scales).
SynthesisResult synthesize(const SynthesisConfig& cfg);

// Exact synthesis through the MILP encoding; n <= ~10. Throws on larger
// layouts. Returns the proven-optimal topology (or best within limits).
SynthesisResult synthesize_exact(const SynthesisConfig& cfg,
                                 const lp::MilpOptions& opts = {});

enum class RoutingPolicy { kMclb, kNdbt };

const char* to_string(RoutingPolicy p);

// Everything the simulator needs to run a topology deadlock-free.
struct NetworkPlan {
  topo::DiGraph graph;
  routing::RoutingTable table;
  vc::VcMap vc_map;
  double max_channel_load = 0.0;  // normalized, from the chosen routing
  int vc_layers = 0;
  int ndbt_fallback_flows = 0;  // NDBT only: flows that needed the fallback
  // Provenance: how plan_network built this plan. Reports key result rows on
  // these fields and artifact caches key plan reuse on them.
  RoutingPolicy policy = RoutingPolicy::kMclb;
  int num_vcs = 0;
  std::uint64_t seed = 0;
  int max_paths_per_flow = 0;
};

// Builds routing tables + VC allocation for an arbitrary topology.
//  - kMclb: MCLB path selection over all shortest paths (NetSmith's choice).
//  - kNdbt: no-double-back-turns with random selection among legal paths
//    (the expert topologies' published scheme).
NetworkPlan plan_network(const topo::DiGraph& g, const topo::Layout& layout,
                         RoutingPolicy policy, int num_vcs,
                         std::uint64_t seed = 7, int max_paths_per_flow = 48);

}  // namespace netsmith::core
