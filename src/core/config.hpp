#pragma once
// NetSmith synthesis configuration and result types (paper SIII, Table I).

#include <cstdint>
#include <vector>

#include "topo/graph.hpp"
#include "topo/layout.hpp"
#include "util/matrix.hpp"

namespace netsmith::core {

// Which objective/constraint subset of Table I drives the search.
enum class Objective {
  kLatOp,    // O1: minimize total (average) hop count
  kSCOp,     // O2: maximize sparsest-cut bandwidth (ties broken on hops)
  kPattern,  // weighted hops for an explicit traffic matrix (e.g. shuffle)
  // Route-aware objectives: every move is scored by running the compiled
  // shortest-path-enumeration -> MCLB pipeline (flat incremental engine,
  // routing/mclb.hpp) on the candidate graph, reusing the move's APSP.
  kChannelLoad,  // minimize MCLB max normalized channel load (ties: hops)
  kLatLoad,      // combined: avg hops + load_weight * max channel load
};

struct SynthesisConfig {
  topo::Layout layout = topo::Layout::noi_4x5();
  topo::LinkClass link_class = topo::LinkClass::kMedium;
  int radix = 4;                  // C2: per-direction port budget
  bool symmetric_links = false;   // C9 (optional); paper defaults to asymmetric
  Objective objective = Objective::kLatOp;
  util::Matrix<double> pattern;   // used when objective == kPattern
  int diameter_bound = 0;         // C8 (optional), 0 = unbounded
  // C7 (optional): minimum sparsest-cut bandwidth the topology must keep
  // while optimizing the primary objective ("combined measures", SI).
  // 0 = unconstrained.
  double min_cut_bandwidth = 0.0;
  // kLatLoad only: weight on the MCLB max normalized channel load relative
  // to average hops in the combined score.
  double load_weight = 1.0;
  // kChannelLoad / kLatLoad: budget of the per-move routing pipeline. Path
  // enumeration is capped per flow and the MCLB improvement loop gets a
  // fixed round budget; both trade move-evaluation fidelity for throughput.
  int anneal_paths_per_flow = 8;
  int anneal_mclb_rounds = 8;

  double time_limit_s = 10.0;
  std::uint64_t seed = 1;
  int restarts = 3;
};

struct ProgressPoint {
  double seconds = 0.0;
  double incumbent = 0.0;  // objective of the best topology found so far
  double bound = 0.0;      // analytic bound on any achievable objective
  // Objective-bounds gap as MIP solvers report it (paper Fig. 5).
  double gap() const {
    if (incumbent == 0.0) return 0.0;
    return std::abs(incumbent - bound) / std::abs(incumbent);
  }
};

struct SynthesisResult {
  topo::DiGraph graph;
  // For kLatOp/kPattern: average hops (lower is better).
  // For kSCOp: exact sparsest-cut bandwidth (higher is better).
  // For kChannelLoad: MCLB max normalized channel load (lower is better).
  // For kLatLoad: avg hops + load_weight * max channel load (lower).
  double objective_value = 0.0;
  double bound = 0.0;
  std::vector<ProgressPoint> trace;
  long moves = 0;
  long accepted = 0;
  // Delta-APSP accounting: distance-matrix rows re-swept by the incremental
  // engine across all scored moves. The full re-sweep equivalent is
  // (sources tracked) x (scored moves); the ratio is the per-move APSP
  // saving (bench/fig_scale.cpp reports it per n).
  long apsp_resweeps = 0;
  // Landmark mode only: exact full-APSP re-scores of incumbent candidates
  // (0 when landmark estimation is off).
  long exact_rescores = 0;
};

}  // namespace netsmith::core
