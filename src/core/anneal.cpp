#include "core/anneal.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/bounds.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/compiled.hpp"
#include "routing/mclb.hpp"
#include "routing/paths.hpp"
#include "topo/builders.hpp"
#include "topo/cuts.hpp"
#include "topo/delta_apsp.hpp"
#include "topo/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace netsmith::core {

namespace {

constexpr double kDisconnected = 1e9;

// One-shot weighted-hops evaluation for the analytic bound (the per-move hop
// path now reads the incrementally maintained topo::DeltaApsp rows instead).
// Unreachable pairs contribute a kDisconnected-scaled penalty so the search
// gradient points toward connectivity.
class HopEvaluator {
 public:
  explicit HopEvaluator(int n) : n_(n), bfs_(n), dist_(n) {}

  double weighted_hops(const topo::DiGraph& g, const util::Matrix<double>& w) {
    double total = 0.0, wsum = 0.0;
    long unreachable = 0;
    for (int s = 0; s < n_; ++s) {
      bfs_.distances(g, s, dist_.data());
      for (int j = 0; j < n_; ++j) {
        if (j == s || w(s, j) <= 0.0) continue;
        if (dist_[j] >= topo::kUnreachable) {
          ++unreachable;
        } else {
          total += w(s, j) * dist_[j];
          wsum += w(s, j);
        }
      }
    }
    if (unreachable > 0) return kDisconnected * unreachable;
    return wsum > 0.0 ? total / wsum : 0.0;
  }

 private:
  int n_;
  topo::BitBfs bfs_;
  std::vector<int> dist_;
};

// Lazily grown cache of the most binding cuts for the SCOp surrogate.
class CutCache {
 public:
  CutCache(int n, int cap) : n_(n), cap_(cap) {}

  double cached_bandwidth(const topo::DiGraph& g) const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto mask : masks_) best = std::min(best, bw(g, mask));
    return best;
  }

  // Soft objective: weighted sum of the k sparsest cached cuts. Improving
  // near-minimal cuts is rewarded before the minimum itself moves, which
  // gives the annealer a gradient across the plateau.
  double soft_bandwidth(const topo::DiGraph& g) const {
    constexpr int kTop = 4;
    double smallest[kTop];
    int cnt = 0;
    for (const auto mask : masks_) {
      double v = bw(g, mask);
      for (int i = 0; i < cnt; ++i)
        if (v < smallest[i]) std::swap(v, smallest[i]);
      if (cnt < kTop) smallest[cnt++] = v;
    }
    static constexpr double kW[kTop] = {1.0, 0.2, 0.08, 0.04};
    double s = 0.0;
    for (int i = 0; i < cnt; ++i) s += kW[i] * smallest[i];
    return s;
  }

  // Refresh against the exact sparsest cut; returns the exact bandwidth.
  double refresh(const topo::DiGraph& g) {
    const auto cut = n_ <= 26 ? topo::sparsest_cut_exact(g)
                              : heuristic_cut(g);
    insert(cut.u_mask);
    return cut.bandwidth;
  }

  bool empty() const { return masks_.empty(); }

 private:
  topo::Cut heuristic_cut(const topo::DiGraph& g) const {
    util::Rng rng(0x5EED + masks_.size());
    return topo::sparsest_cut_heuristic(g, rng, 48);
  }

  // Popcount evaluation of a cached cut via the shared word-parallel
  // cross-edge counter in topo/cuts.
  double bw(const topo::DiGraph& g, std::uint64_t mask) const {
    const int usz = std::popcount(mask);
    if (usz == 0 || usz == n_) return std::numeric_limits<double>::infinity();
    const auto [uv, vu] = topo::cross_edge_counts(g, mask);
    return static_cast<double>(std::min(uv, vu)) /
           (static_cast<double>(usz) * (n_ - usz));
  }

  void insert(std::uint64_t mask) {
    if (std::find(masks_.begin(), masks_.end(), mask) != masks_.end()) return;
    // FIFO eviction: a still-binding cut will be re-inserted by the next
    // exact refresh.
    if (static_cast<int>(masks_.size()) >= cap_) masks_.erase(masks_.begin());
    masks_.push_back(mask);
  }

  int n_;
  int cap_;
  std::vector<std::uint64_t> masks_;
};

// Mutable edge list paired with the graph for O(1) random edge selection.
struct EdgePool {
  std::vector<std::pair<int, int>> edges;  // duplex pairs (i<j) in symmetric mode

  void rebuild(const topo::DiGraph& g, bool symmetric) {
    edges.clear();
    for (const auto& [i, j] : g.edges()) {
      if (symmetric) {
        if (i < j) edges.emplace_back(i, j);
      } else {
        edges.emplace_back(i, j);
      }
    }
  }
};

// Per-worker-thread scratch reused across restarts: at n = 1024 the distance
// matrix alone is 4 MB, so re-allocating it (plus the BFS bitsets and the
// compiled path arrays) per restart churns the allocator for nothing.
struct RestartWorkspace {
  topo::DeltaApsp engine;        // maintained distance rows + hop aggregates
  topo::BitBfs bfs{0};           // exact-re-score sweeps (landmark mode)
  int bfs_n = 0;
  util::Matrix<int> exact_dist;  // full APSP scratch for exact re-scores
  routing::PathCompiler path_compiler;
  routing::CompiledPathSet cps;
  EdgePool pool;

  void ensure_exact(int n) {
    if (bfs_n != n) {
      bfs = topo::BitBfs(n);
      bfs_n = n;
    }
    if (static_cast<int>(exact_dist.rows()) != n)
      exact_dist = util::Matrix<int>(static_cast<std::size_t>(n),
                                     static_cast<std::size_t>(n), 0);
  }
};

// Deterministic k-subset of sources for landmark estimation: a dedicated RNG
// stream keyed on (seed, restart), so enabling landmarks never perturbs the
// move RNG sequence and the sample is identical at any thread count.
std::vector<int> landmark_sample(int n, int k, std::uint64_t seed,
                                 int restart) {
  std::vector<int> ids(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  util::Rng rng(seed * 0xC2B2AE3D27D4EB4FULL +
                0x165667B19E3779F9ULL * (static_cast<std::uint64_t>(restart) + 1));
  for (int i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        i + rng.uniform_int(0, static_cast<std::int64_t>(n) - 1 - i));
    std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
  }
  ids.resize(static_cast<std::size_t>(k));
  std::sort(ids.begin(), ids.end());  // ascending = cache-friendly sweeps
  return ids;
}

// Shared, immutable search inputs (candidate link set, analytic bound).
struct SearchContext {
  SynthesisConfig cfg;
  AnnealOptions opts;
  int n = 0;
  std::vector<std::vector<int>> out_cand;  // candidate link set L (C3)
  double bound = 0.0;
  // Landmark estimation is only wired to the hop-based objectives: SCOp
  // scores through the cut cache, and the route-aware objectives need the
  // full distance matrix for path enumeration anyway.
  int landmarks = 0;  // 0 = exact full-row scoring

  SearchContext(const SynthesisConfig& c, const AnnealOptions& o)
      : cfg(c), opts(o), n(c.layout.n()) {
    if (o.landmark_sources > 0 && o.landmark_sources < n &&
        (cfg.objective == Objective::kLatOp ||
         cfg.objective == Objective::kPattern))
      landmarks = o.landmark_sources;
    out_cand.resize(n);
    for (const auto& [i, j] : topo::valid_links(cfg.layout, cfg.link_class)) {
      if (cfg.symmetric_links && i > j) continue;
      out_cand[i].push_back(j);
    }
    switch (cfg.objective) {
      case Objective::kLatOp:
        bound = average_hops_lower_bound(cfg.layout, cfg.link_class, cfg.radix);
        break;
      case Objective::kSCOp:
        bound = sparsest_cut_upper_bound(cfg.layout, cfg.link_class, cfg.radix);
        break;
      case Objective::kPattern: {
        // Weighted-hops bound: distances in the all-valid-links graph.
        topo::DiGraph pot(n);
        for (const auto& [i, j] : topo::valid_links(cfg.layout, cfg.link_class))
          pot.add_edge(i, j);
        HopEvaluator eval(n);
        bound = eval.weighted_hops(pot, cfg.pattern);
        break;
      }
      case Objective::kChannelLoad:
      case Objective::kLatLoad: {
        // Uniform demand puts sum(normalized loads) = n * avg_hops across at
        // most n*radix directed links, so the max normalized load of ANY
        // routing is at least avg_hops_lb / radix.
        const double h =
            average_hops_lower_bound(cfg.layout, cfg.link_class, cfg.radix);
        const double load_lb = h / cfg.radix;
        bound = cfg.objective == Objective::kChannelLoad
                    ? load_lb
                    : h + cfg.load_weight * load_lb;
        break;
      }
    }
  }

  // Primary objective in *reporting* units: avg hops (min), exact cut
  // bandwidth (max), max normalized channel load (min), or the combined
  // hops+load score (min). Secondary: avg hops for SCOp/kChannelLoad
  // tie-breaks.
  bool better(double p, double s, double bp, double bs) const {
    if (cfg.objective == Objective::kSCOp) {
      if (p != bp) return p > bp;
      return s < bs;
    }
    if (cfg.objective == Objective::kChannelLoad) {
      if (p != bp) return p < bp;
      return s < bs;
    }
    return p < bp;
  }
};

// Everything one restart produces; merged by the deterministic reduction.
struct RestartOutcome {
  bool have = false;
  double primary = 0.0, secondary = 0.0;
  topo::DiGraph graph;
  struct TracePt {
    double seconds, primary, secondary;
  };
  std::vector<TracePt> trace;
  long moves = 0, accepted = 0;
  long resweeps = 0, rescores = 0;
  double duration_s = 0.0;
};

// One restart: fully self-contained state (RNG, cut cache, incumbent) plus a
// borrowed per-worker workspace holding the incrementally maintained
// distance rows, so restarts are trivially parallel and the search
// trajectory depends only on (cfg, opts, restart index).
//
// Move protocol: propose_and_apply mutates the graph, sync_engine() replays
// the edit batch into the delta-APSP engine (journaling the overwritten
// rows), search_score() is then a pure read of the maintained aggregates,
// and accept/reject becomes engine.commit()/engine.rollback(). A rejected
// move therefore costs a few row memcpys instead of an n-source BFS sweep.
class RestartRun {
 public:
  RestartRun(const SearchContext& ctx, int restart, RestartWorkspace& ws)
      : ctx_(ctx),
        cfg_(ctx.cfg),
        restart_(restart),
        n_(ctx.n),
        rng_(cfg_.seed * 0x9E3779B9 + restart * 1234567 + 1),
        cuts_(n_, ctx.opts.cut_cache_size),
        ws_(ws),
        landmark_(ctx.landmarks > 0),
        scale_(landmark_ ? static_cast<double>(ctx.n) / ctx.landmarks : 1.0) {}

  RestartOutcome run() {
    util::WallTimer timer;
    RestartOutcome out;
    obs::Span span("anneal/restart");
    span.arg("restart", restart_);
    span.arg("n", n_);

    topo::DiGraph g =
        cfg_.symmetric_links
            ? topo::build_random_symmetric(cfg_.layout, cfg_.link_class,
                                           cfg_.radix, rng_)
            : topo::build_random(cfg_.layout, cfg_.link_class, cfg_.radix, rng_);
    // The greedy radix fill can strand a node with no out-links on large
    // grids (its candidates' in-degrees all saturated). A full-mode search
    // recovers through the unreachability penalty, but a landmark-scored run
    // is blind to pairs outside its sample and would then never produce an
    // exactly-verified incumbent. Redraw until strongly connected — two BFS
    // per check, and the extra rng_ draws only happen in the (rare)
    // disconnected case, so existing trajectories are untouched.
    for (int redraw = 0; redraw < 32 && !topo::strongly_connected(g); ++redraw)
      g = cfg_.symmetric_links
              ? topo::build_random_symmetric(cfg_.layout, cfg_.link_class,
                                             cfg_.radix, rng_)
              : topo::build_random(cfg_.layout, cfg_.link_class, cfg_.radix,
                                   rng_);
    ws_.pool.rebuild(g, cfg_.symmetric_links);
    if (landmark_) {
      ws_.engine.init(
          n_, landmark_sample(n_, ctx_.landmarks, cfg_.seed, restart_));
      ws_.ensure_exact(n_);  // incumbent re-scores need a full APSP
    } else {
      ws_.engine.init(n_);
    }
    ws_.engine.rebuild(g);

    const double budget_s = cfg_.time_limit_s / std::max(1, cfg_.restarts);
    const long budget_moves = ctx_.opts.max_moves;
    long moves_done = 0;

    double score = search_score(g);
    long accepts_since_refresh = 0;

    // Landmark mode: seed the incumbent with the (connected) start graph
    // through the exact re-score path. Estimate-accepted moves can be
    // invisibly disconnected outside the sampled sources, so without this a
    // short large-n run may finish with no exactly-verified incumbent at
    // all. Full mode keeps its original behavior (first accepted connected
    // state wins), so existing trajectories are untouched.
    if (landmark_) maybe_update_incumbent(g, out, timer, &score);

    for (;;) {
      double frac;
      if (budget_moves > 0) {
        if (moves_done >= budget_moves) break;
        frac = static_cast<double>(moves_done) / budget_moves;
      } else {
        const double el = timer.seconds();
        if (el >= budget_s) break;
        frac = el / budget_s;
      }
      const double temp =
          ctx_.opts.t0 * std::pow(ctx_.opts.t1 / ctx_.opts.t0, frac);

      for (int inner = 0; inner < 200; ++inner) {
        if (budget_moves > 0 && moves_done >= budget_moves) break;
        ++out.moves;
        ++moves_done;
        if (!propose_and_apply(g, ws_.pool)) continue;
        sync_engine(g);
        const double cand = search_score(g);
        const double delta = cand - score;
        if (delta <= 0.0 || rng_.uniform() < std::exp(-delta / temp)) {
          ws_.engine.commit();
          score = cand;
          ++out.accepted;
          ++accepts_since_refresh;
        } else {
          ws_.engine.rollback();
          undo(g, ws_.pool);
          continue;
        }

        // Candidate incumbent: exact objective, behind a cheap reject gate.
        maybe_update_incumbent(g, out, timer, &score);

        const bool uses_cut_cache =
            cfg_.objective == Objective::kSCOp ||
            (cfg_.min_cut_bandwidth > 0.0 && n_ > 12);
        if (uses_cut_cache &&
            accepts_since_refresh >= ctx_.opts.cut_refresh_accepts) {
          accepts_since_refresh = 0;
          cuts_.refresh(g);
          score = search_score(g);
        }
      }
    }
    out.duration_s = timer.seconds();
    out.resweeps = static_cast<long>(ws_.engine.resweeps());
    out.rescores = exact_rescores_;
    span.arg("moves", out.moves);
    span.arg("accepted", out.accepted);
    span.arg("incumbents", incumbent_updates_);
    span.arg("resweeps", out.resweeps);
    // Per-restart flush: the hot loop above touches no shared state; the
    // registry sees a handful of adds per restart.
    if (obs::metrics_enabled()) {
      obs::counter("anneal.restarts").inc();
      obs::counter("anneal.moves").add(static_cast<std::uint64_t>(out.moves));
      obs::counter("anneal.accepted")
          .add(static_cast<std::uint64_t>(out.accepted));
      obs::counter("anneal.incumbent_updates")
          .add(static_cast<std::uint64_t>(incumbent_updates_));
      obs::counter("anneal.incumbent_fast_rejects")
          .add(static_cast<std::uint64_t>(fast_rejects_));
      obs::counter("anneal.apsp_resweeps")
          .add(static_cast<std::uint64_t>(out.resweeps));
      obs::counter("anneal.exact_rescores")
          .add(static_cast<std::uint64_t>(out.rescores));
    }
    return out;
  }

 private:
  // Replay the move's edit batch into the delta-APSP engine. Removals and
  // additions are detected against the pre-move rows (the union rule in
  // topo/delta_apsp.hpp), so the entry order is immaterial.
  void sync_engine(const topo::DiGraph& g) {
    topo::DeltaApsp::EdgeChange ch[4];
    int c = 0;
    if (delta_.removed) {
      ch[c++] = {delta_.rem.first, delta_.rem.second, false};
      if (cfg_.symmetric_links)
        ch[c++] = {delta_.rem.second, delta_.rem.first, false};
    }
    if (delta_.added) {
      ch[c++] = {delta_.add.first, delta_.add.second, true};
      if (cfg_.symmetric_links)
        ch[c++] = {delta_.add.second, delta_.add.first, true};
    }
    ws_.engine.apply(g, ch, c);
  }

  // Hop total of the current graph from the maintained aggregates. Integer
  // row sums are associative, so in full mode this is bit-identical to the
  // old per-move n-source re-sweep; in landmark mode it is the sampled sum
  // scaled by n/k (an estimate — never stored in an incumbent).
  double hops_total() const {
    const long unreach = ws_.engine.unreachable();
    if (unreach > 0) return kDisconnected * unreach;
    return static_cast<double>(ws_.engine.hop_sum()) * scale_;
  }

  // Pattern-weighted hops over the maintained rows, accumulated in the same
  // (source-major, target-inner) order as the pre-delta evaluator so
  // full-mode values are bit-identical.
  double weighted_hops_now(const util::Matrix<double>& w) const {
    double total = 0.0, wsum = 0.0;
    long unreachable = 0;
    const auto& d = ws_.engine.rows();
    const auto& srcs = ws_.engine.sources();
    const int k = ws_.engine.num_sources();
    for (int r = 0; r < k; ++r) {
      const int s = srcs[static_cast<std::size_t>(r)];
      for (int j = 0; j < n_; ++j) {
        if (j == s || w(s, j) <= 0.0) continue;
        if (d(static_cast<std::size_t>(r), static_cast<std::size_t>(j)) >=
            topo::kUnreachable) {
          ++unreachable;
        } else {
          total += w(s, j) *
                   d(static_cast<std::size_t>(r), static_cast<std::size_t>(j));
          wsum += w(s, j);
        }
      }
    }
    if (unreachable > 0) return kDisconnected * unreachable;
    return wsum > 0.0 ? total / wsum : 0.0;
  }

  // C7 penalty: shortfall against the minimum sparsest-cut bandwidth,
  // evaluated exactly for tiny n and through the cut cache otherwise.
  double bandwidth_penalty(const topo::DiGraph& g) {
    if (cfg_.min_cut_bandwidth <= 0.0) return 0.0;
    const double bw = n_ <= 12 ? topo::sparsest_cut_exact(g).bandwidth
                               : (cuts_.empty() ? cuts_.refresh(g)
                                                : cuts_.cached_bandwidth(g));
    return std::max(0.0, cfg_.min_cut_bandwidth - bw) * 50000.0;
  }

  // Pure read of the engine aggregates (+ cut cache / MCLB pipeline): the
  // delta-APSP apply already happened in sync_engine, so re-scoring the same
  // graph (e.g. after a cut refresh) is safe and cheap. Also records the
  // hops (and pattern-weighted hops) of the scored graph in last_hops_ /
  // last_weighted_ for the incumbent check below.
  double search_score(const topo::DiGraph& g) {
    switch (cfg_.objective) {
      case Objective::kLatOp:
        last_hops_ = hops_total();
        return last_hops_ + bandwidth_penalty(g);
      case Objective::kPattern: {
        // Primary: pattern-weighted hops. Secondary (small weight): uniform
        // total hops, which keeps the spare port budget working for the
        // traffic the pattern doesn't exercise instead of leaving links
        // unplaced.
        last_hops_ = hops_total();
        if (last_hops_ >= kDisconnected) return last_hops_;
        last_weighted_ = weighted_hops_now(cfg_.pattern);
        return last_weighted_ * static_cast<double>(n_) * (n_ - 1) +
               0.05 * last_hops_ + bandwidth_penalty(g);
      }
      case Objective::kSCOp: {
        last_hops_ = hops_total();
        if (last_hops_ >= kDisconnected) return last_hops_;
        const double avg = last_hops_ / (static_cast<double>(n_) * (n_ - 1));
        // Tiny instances: the exact sparsest cut is cheap enough to evaluate
        // on every move; the cut-cache surrogate is for paper-scale n.
        if (n_ <= 12)
          return -topo::sparsest_cut_exact(g).bandwidth * 2000.0 + avg;
        if (cuts_.empty()) cuts_.refresh(g);
        const double soft = cuts_.soft_bandwidth(g);
        return -soft * 2000.0 + avg;
      }
      case Objective::kChannelLoad:
      case Objective::kLatLoad: {
        // Route-aware scoring: the maintained full distance matrix feeds
        // both the hop term and the shortest-path DAG the MCLB pipeline
        // routes over (no BFS at all on most moves).
        last_hops_ = hops_total();
        if (last_hops_ >= kDisconnected) return last_hops_;
        last_load_ = route_max_load(g);
        const double avg = last_hops_ / (static_cast<double>(n_) * (n_ - 1));
        if (cfg_.objective == Objective::kChannelLoad)
          // Units of "flows on the bottleneck link" (delta of one rerouted
          // flow = 1.0), with average hops as a mild tie-break so equal-load
          // candidates still feel a latency gradient.
          return last_load_ * (n_ - 1) + 0.01 * avg + bandwidth_penalty(g);
        return (avg + cfg_.load_weight * last_load_) *
                   (static_cast<double>(n_) * (n_ - 1)) +
               bandwidth_penalty(g);
      }
    }
    return 0.0;
  }

  // MCLB max normalized channel load of g, routed over the maintained
  // shortest-path matrix (route-aware objectives always run the engine in
  // full mode). The compiler enumerates straight into the persistent
  // compiled set, so the enumeration half of the per-move pipeline reuses
  // its arrays instead of reallocating a ragged PathSet every move.
  double route_max_load(const topo::DiGraph& g) {
    ws_.path_compiler.enumerate(g, ws_.engine.rows(),
                                cfg_.anneal_paths_per_flow, ws_.cps);
    return routing::mclb_local_search(ws_.cps, {}, cfg_.anneal_mclb_rounds)
        .max_load;
  }

  // True when the accepted move's already-computed scores prove it cannot
  // beat this restart's incumbent (the fast path the expensive incumbent
  // verification never runs for). In landmark mode `avg` is the sampled
  // estimate — a gate only; survivors are exactly re-scored below.
  bool cheap_reject(const topo::DiGraph& g, const RestartOutcome& out,
                    double avg) const {
    switch (cfg_.objective) {
      case Objective::kLatOp:
        return avg >= out.primary;
      case Objective::kPattern:
        return last_weighted_ >= out.primary;
      case Objective::kSCOp: {
        // Only pay for an exact cut when the surrogate looks competitive.
        const double surrogate = cuts_.cached_bandwidth(g);
        return surrogate < out.primary ||
               (surrogate == out.primary && avg >= out.secondary);
      }
      case Objective::kChannelLoad:
        return last_load_ > out.primary ||
               (last_load_ == out.primary && avg >= out.secondary);
      case Objective::kLatLoad:
        return avg + cfg_.load_weight * last_load_ >= out.primary;
    }
    return false;
  }

  // Landmark mode: full APSP of the candidate into ws_.exact_dist. Returns
  // false when any pair is unreachable — the sampled estimate cannot see
  // disconnection among non-sampled sources, so this is also the incumbent's
  // connectivity check. On success *exact_avg (and for kPattern
  // *exact_weighted, same loop order as weighted_hops_now in full mode) hold
  // the exact objective values.
  bool exact_rescore(const topo::DiGraph& g, double* exact_avg,
                     double* exact_weighted) {
    double total = 0.0;
    long unreachable = 0;
    for (int s = 0; s < n_; ++s) {
      int* row = &ws_.exact_dist(static_cast<std::size_t>(s), 0);
      ws_.bfs.distances(g, s, row);
      for (int j = 0; j < n_; ++j) {
        if (j == s) continue;
        if (row[j] >= topo::kUnreachable)
          ++unreachable;
        else
          total += row[j];
      }
    }
    if (unreachable > 0) return false;
    *exact_avg = total / (static_cast<double>(n_) * (n_ - 1));
    if (cfg_.objective == Objective::kPattern) {
      double t = 0.0, wsum = 0.0;
      for (int s = 0; s < n_; ++s) {
        for (int j = 0; j < n_; ++j) {
          if (j == s || cfg_.pattern(s, j) <= 0.0) continue;
          t += cfg_.pattern(s, j) *
               ws_.exact_dist(static_cast<std::size_t>(s),
                              static_cast<std::size_t>(j));
          wsum += cfg_.pattern(s, j);
        }
      }
      *exact_weighted = wsum > 0.0 ? t / wsum : 0.0;
    }
    return true;
  }

  void maybe_update_incumbent(const topo::DiGraph& g, RestartOutcome& out,
                              const util::WallTimer& timer, double* score) {
    // last_hops_ is the maintained hop total of the accepted move (sampled
    // estimate in landmark mode): no all-pairs traversal here.
    const double hops = last_hops_;
    if (hops >= kDisconnected) return;
    const double avg = hops / (static_cast<double>(n_) * (n_ - 1));

    // Cheap reject: skip the diameter / exact-cut / exact-re-score work
    // whenever the accepted score cannot beat this restart's incumbent.
    if (out.have && cheap_reject(g, out, avg)) {
      ++fast_rejects_;
      return;
    }

    // Landmark mode: the estimate above only gates. Exactly re-score before
    // anything is compared against or stored in the incumbent, so the
    // outcome (and the parallel-restart reduction) is identical to what an
    // exact-scoring run would keep for this graph.
    double exact_avg = avg, exact_weighted = last_weighted_;
    if (landmark_) {
      if (!exact_rescore(g, &exact_avg, &exact_weighted)) return;
      ++exact_rescores_;
      if (out.have) {
        const bool lose = cfg_.objective == Objective::kPattern
                              ? exact_weighted >= out.primary
                              : exact_avg >= out.primary;
        if (lose) {
          ++fast_rejects_;
          return;
        }
      }
    }

    if (cfg_.diameter_bound > 0) {
      // Connectivity was already established, so the max entry of the
      // maintained (or just re-scored) matrix is the graph diameter.
      const auto& d = landmark_ ? ws_.exact_dist : ws_.engine.rows();
      if (topo::diameter(d) > cfg_.diameter_bound) return;
    }
    double verified_bw = -1.0;  // exact cut from the C7 check, if it ran
    if (cfg_.min_cut_bandwidth > 0.0) {
      // The cached bandwidth upper-bounds the exact sparsest cut, so a
      // cached violation already proves C7 infeasibility — no enumeration.
      if (!cuts_.empty() &&
          cuts_.cached_bandwidth(g) + 1e-12 < cfg_.min_cut_bandwidth)
        return;
      // C7 is a hard constraint on incumbents: verify with the exact cut
      // (refresh() also inserts it into the cache, so a violated cut is
      // caught by the cheap cached check from then on).
      const double bw = cuts_.refresh(g);
      verified_bw = bw;
      if (bw + 1e-12 < cfg_.min_cut_bandwidth) {
        // The cache just learned why this candidate is infeasible; re-score
        // the current graph so the search feels the violation.
        *score = search_score(g);
        return;
      }
    }

    double primary, secondary;
    if (cfg_.objective == Objective::kSCOp) {
      // Exact value (also tightens the cache); the C7 check above may have
      // just computed it for this same graph.
      primary = verified_bw >= 0.0 ? verified_bw : cuts_.refresh(g);
      secondary = avg;
    } else if (cfg_.objective == Objective::kPattern) {
      primary = exact_weighted;
      secondary = exact_avg;
    } else if (cfg_.objective == Objective::kChannelLoad) {
      primary = last_load_;
      secondary = avg;
    } else if (cfg_.objective == Objective::kLatLoad) {
      primary = avg + cfg_.load_weight * last_load_;
      secondary = avg;
    } else {
      primary = exact_avg;
      secondary = exact_avg;
    }

    if (!out.have || ctx_.better(primary, secondary, out.primary, out.secondary)) {
      out.have = true;
      out.primary = primary;
      out.secondary = secondary;
      out.graph = g;
      ++incumbent_updates_;
      // Objective-trajectory sample: one counter track per run in the trace
      // viewer (Fig. 5's incumbent curve, live).
      obs::trace_counter("anneal/incumbent", primary);
      if (static_cast<int>(out.trace.size()) < ctx_.opts.max_trace_points)
        out.trace.push_back({timer.seconds(), primary, secondary});
    }
  }

  // --- Move machinery. A move removes up to one edge and adds up to one
  // edge (duplex pairs in symmetric mode); `undo` restores the previous
  // state exactly.
  struct Delta {
    bool removed = false, added = false;
    std::pair<int, int> rem, add;
  };

  bool degree_ok_add(const topo::DiGraph& g, int i, int j) const {
    if (cfg_.symmetric_links)
      return g.out_degree(i) < cfg_.radix && g.in_degree(i) < cfg_.radix &&
             g.out_degree(j) < cfg_.radix && g.in_degree(j) < cfg_.radix;
    return g.out_degree(i) < cfg_.radix && g.in_degree(j) < cfg_.radix;
  }

  void do_add(topo::DiGraph& g, EdgePool& pool, int i, int j) {
    g.add_edge(i, j);
    if (cfg_.symmetric_links) g.add_edge(j, i);
    pool.edges.emplace_back(i, j);
  }

  void do_remove(topo::DiGraph& g, EdgePool& pool, std::size_t idx) {
    const auto [i, j] = pool.edges[idx];
    g.remove_edge(i, j);
    if (cfg_.symmetric_links) g.remove_edge(j, i);
    pool.edges[idx] = pool.edges.back();
    pool.edges.pop_back();
  }

  bool try_random_add(topo::DiGraph& g, EdgePool& pool) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const int i = static_cast<int>(rng_.uniform_int(0, n_ - 1));
      if (ctx_.out_cand[i].empty()) continue;
      const int j = rng_.pick(ctx_.out_cand[i]);
      if (g.has_edge(i, j) || (cfg_.symmetric_links && g.has_edge(j, i)))
        continue;
      if (!degree_ok_add(g, i, j)) continue;
      do_add(g, pool, i, j);
      delta_.added = true;
      delta_.add = {i, j};
      return true;
    }
    return false;
  }

  bool propose_and_apply(topo::DiGraph& g, EdgePool& pool) {
    delta_ = Delta{};
    const double r = rng_.uniform();
    if (r < 0.15) {
      // Pure add (fills radix slack).
      return try_random_add(g, pool);
    }
    if (pool.edges.empty()) return false;
    const std::size_t idx = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(pool.edges.size()) - 1));
    const auto rem = pool.edges[idx];
    do_remove(g, pool, idx);
    delta_.removed = true;
    delta_.rem = rem;
    if (r < 0.25) return true;  // pure remove
    // Rewire: remove + add elsewhere.
    if (try_random_add(g, pool)) return true;
    // Could not re-add: keep as a pure remove (still a valid move).
    return true;
  }

  void undo(topo::DiGraph& g, EdgePool& pool) {
    if (delta_.added) {
      // The added edge is the last pool entry.
      g.remove_edge(delta_.add.first, delta_.add.second);
      if (cfg_.symmetric_links)
        g.remove_edge(delta_.add.second, delta_.add.first);
      pool.edges.pop_back();
    }
    if (delta_.removed) {
      g.add_edge(delta_.rem.first, delta_.rem.second);
      if (cfg_.symmetric_links) g.add_edge(delta_.rem.second, delta_.rem.first);
      pool.edges.push_back(delta_.rem);
    }
  }

  const SearchContext& ctx_;
  const SynthesisConfig& cfg_;
  int restart_;
  int n_;
  util::Rng rng_;
  CutCache cuts_;
  RestartWorkspace& ws_;
  bool landmark_;
  double scale_;  // n / k in landmark mode, 1.0 otherwise
  double last_hops_ = 0.0;
  double last_weighted_ = 0.0;
  double last_load_ = 0.0;
  long incumbent_updates_ = 0;  // accepted incumbents (obs flush per restart)
  long fast_rejects_ = 0;       // cheap-reject gate hits
  long exact_rescores_ = 0;     // landmark-mode full re-scores
  Delta delta_;
};

int resolve_threads(int requested, int restarts) {
  int t = requested;
  if (t == 0) t = static_cast<int>(std::thread::hardware_concurrency());
  if (t < 1) t = 1;
  return std::min(t, restarts);
}

}  // namespace

SynthesisResult anneal_synthesize(const SynthesisConfig& cfg,
                                  const AnnealOptions& opts) {
  const SearchContext ctx(cfg, opts);
  const int restarts = std::max(1, cfg.restarts);
  const int threads = resolve_threads(opts.threads, restarts);

  obs::Span span("anneal/synthesize");
  span.arg("n", ctx.n);
  span.arg("restarts", restarts);
  span.arg("threads", threads);

  std::vector<RestartOutcome> outcomes(restarts);
  if (threads <= 1) {
    RestartWorkspace ws;  // reused across restarts (reserve/clear, no churn)
    for (int r = 0; r < restarts; ++r)
      outcomes[r] = RestartRun(ctx, r, ws).run();
  } else {
    std::atomic<int> next{0};
    std::exception_ptr error;
    std::mutex error_mu;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        RestartWorkspace ws;  // per-worker, reused across its restarts
        for (;;) {
          const int r = next.fetch_add(1);
          if (r >= restarts) return;
          try {
            outcomes[r] = RestartRun(ctx, r, ws).run();
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!error) error = std::current_exception();
            return;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    if (error) std::rethrow_exception(error);
  }

  // Deterministic best-of reduction: walk restarts in index order with the
  // same strictly-better comparison the serial incumbent loop applies, so
  // the winner (and the merged monotone trace) is independent of thread
  // scheduling.
  SynthesisResult result;
  result.bound = ctx.bound;
  const double per_restart = cfg.time_limit_s / restarts;

  bool have = false;
  double bp = 0.0, bs = 0.0;
  int best_restart = -1;
  for (int r = 0; r < restarts; ++r) {
    const auto& out = outcomes[r];
    result.moves += out.moves;
    result.accepted += out.accepted;
    result.apsp_resweeps += out.resweeps;
    result.exact_rescores += out.rescores;
    if (out.have &&
        (!have || ctx.better(out.primary, out.secondary, bp, bs))) {
      have = true;
      bp = out.primary;
      bs = out.secondary;
      best_restart = r;
    }
  }

  // Merged monotone trace: keep only the points that improved on every
  // earlier restart's incumbent, exactly as a serial global-incumbent loop
  // would have logged them. Restart r's points are offset as if restarts ran
  // back-to-back: by the nominal time slice in wall-clock mode, and by the
  // sum of actual durations in move-budget mode (where a restart may run
  // past time_limit_s / restarts), keeping the x-axis monotone.
  bool thave = false;
  double tp = 0.0, ts = 0.0;
  double offset = 0.0;
  for (int r = 0; r < restarts; ++r) {
    for (const auto& pt : outcomes[r].trace) {
      if (thave && !ctx.better(pt.primary, pt.secondary, tp, ts)) continue;
      thave = true;
      tp = pt.primary;
      ts = pt.secondary;
      if (static_cast<int>(result.trace.size()) < opts.max_trace_points) {
        ProgressPoint p;
        p.seconds = pt.seconds + offset;
        p.incumbent = pt.primary;
        p.bound = ctx.bound;
        result.trace.push_back(p);
      }
    }
    offset += opts.max_moves > 0 ? outcomes[r].duration_s : per_restart;
  }

  if (!have || best_restart < 0)
    throw std::runtime_error(
        "anneal_synthesize: no topology satisfying the constraints "
        "(diameter / min-bandwidth) was found within the time budget");

  result.graph = outcomes[best_restart].graph;
  result.objective_value = outcomes[best_restart].primary;
  return result;
}

}  // namespace netsmith::core
