#include "core/anneal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/bounds.hpp"
#include "topo/builders.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace netsmith::core {

namespace {

constexpr double kDisconnected = 1e9;

// Scratch-buffer BFS evaluation: total hops, or kDisconnected-scaled penalty
// counting unreachable pairs so the search gradient points toward
// connectivity.
class HopEvaluator {
 public:
  explicit HopEvaluator(int n) : n_(n), dist_(n), queue_(n) {}

  // Returns {total_hops (or penalty), ok}.
  double total_hops(const topo::DiGraph& g) {
    double total = 0.0;
    long unreachable = 0;
    for (int s = 0; s < n_; ++s) {
      bfs(g, s);
      for (int j = 0; j < n_; ++j) {
        if (j == s) continue;
        if (dist_[j] < 0)
          ++unreachable;
        else
          total += dist_[j];
      }
    }
    if (unreachable > 0) return kDisconnected * unreachable;
    return total;
  }

  double weighted_hops(const topo::DiGraph& g, const util::Matrix<double>& w) {
    double total = 0.0, wsum = 0.0;
    long unreachable = 0;
    for (int s = 0; s < n_; ++s) {
      bfs(g, s);
      for (int j = 0; j < n_; ++j) {
        if (j == s || w(s, j) <= 0.0) continue;
        if (dist_[j] < 0) {
          ++unreachable;
        } else {
          total += w(s, j) * dist_[j];
          wsum += w(s, j);
        }
      }
    }
    if (unreachable > 0) return kDisconnected * unreachable;
    return wsum > 0.0 ? total / wsum : 0.0;
  }

 private:
  void bfs(const topo::DiGraph& g, int s) {
    std::fill(dist_.begin(), dist_.end(), -1);
    int head = 0, tail = 0;
    dist_[s] = 0;
    queue_[tail++] = s;
    while (head < tail) {
      const int u = queue_[head++];
      for (int v : g.out_neighbors(u)) {
        if (dist_[v] < 0) {
          dist_[v] = dist_[u] + 1;
          queue_[tail++] = v;
        }
      }
    }
  }

  int n_;
  std::vector<int> dist_;
  std::vector<int> queue_;
};

// Lazily grown cache of the most binding cuts for the SCOp surrogate.
class CutCache {
 public:
  CutCache(int n, int cap) : n_(n), cap_(cap) {}

  double cached_bandwidth(const topo::DiGraph& g) const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto mask : masks_) best = std::min(best, bw(g, mask));
    return best;
  }

  // Soft objective: weighted sum of the k sparsest cached cuts. Improving
  // near-minimal cuts is rewarded before the minimum itself moves, which
  // gives the annealer a gradient across the plateau.
  double soft_bandwidth(const topo::DiGraph& g) const {
    constexpr int kTop = 4;
    double smallest[kTop];
    int cnt = 0;
    for (const auto mask : masks_) {
      double v = bw(g, mask);
      for (int i = 0; i < cnt; ++i)
        if (v < smallest[i]) std::swap(v, smallest[i]);
      if (cnt < kTop) smallest[cnt++] = v;
    }
    static constexpr double kW[kTop] = {1.0, 0.2, 0.08, 0.04};
    double s = 0.0;
    for (int i = 0; i < cnt; ++i) s += kW[i] * smallest[i];
    return s;
  }

  // Refresh against the exact sparsest cut; returns the exact bandwidth.
  double refresh(const topo::DiGraph& g) {
    const auto cut = n_ <= 26 ? topo::sparsest_cut_exact(g)
                              : heuristic_cut(g);
    insert(cut.u_mask);
    return cut.bandwidth;
  }

  bool empty() const { return masks_.empty(); }

 private:
  topo::Cut heuristic_cut(const topo::DiGraph& g) const {
    util::Rng rng(0x5EED + masks_.size());
    return topo::sparsest_cut_heuristic(g, rng, 48);
  }

  double bw(const topo::DiGraph& g, std::uint64_t mask) const {
    int uv = 0, vu = 0, usz = 0;
    for (int i = 0; i < n_; ++i) usz += static_cast<int>(mask >> i & 1);
    if (usz == 0 || usz == n_) return std::numeric_limits<double>::infinity();
    for (int i = 0; i < n_; ++i) {
      const bool ui = mask >> i & 1;
      for (int j : g.out_neighbors(i)) {
        const bool uj = mask >> j & 1;
        if (ui && !uj) ++uv;
        else if (!ui && uj) ++vu;
      }
    }
    return static_cast<double>(std::min(uv, vu)) /
           (static_cast<double>(usz) * (n_ - usz));
  }

  void insert(std::uint64_t mask) {
    if (std::find(masks_.begin(), masks_.end(), mask) != masks_.end()) return;
    // FIFO eviction: a still-binding cut will be re-inserted by the next
    // exact refresh.
    if (static_cast<int>(masks_.size()) >= cap_) masks_.erase(masks_.begin());
    masks_.push_back(mask);
  }

  int n_;
  int cap_;
  std::vector<std::uint64_t> masks_;
};

// Mutable edge list paired with the graph for O(1) random edge selection.
struct EdgePool {
  std::vector<std::pair<int, int>> edges;  // duplex pairs (i<j) in symmetric mode

  void rebuild(const topo::DiGraph& g, bool symmetric) {
    edges.clear();
    for (const auto& [i, j] : g.edges()) {
      if (symmetric) {
        if (i < j) edges.emplace_back(i, j);
      } else {
        edges.emplace_back(i, j);
      }
    }
  }
};

class Annealer {
 public:
  Annealer(const SynthesisConfig& cfg, const AnnealOptions& opts)
      : cfg_(cfg),
        opts_(opts),
        n_(cfg.layout.n()),
        rng_(cfg.seed),
        hop_eval_(n_),
        cuts_(n_, opts.cut_cache_size) {
    // Candidate link set L (C3), organized per node for move proposals.
    out_cand_.resize(n_);
    for (const auto& [i, j] : topo::valid_links(cfg.layout, cfg.link_class)) {
      if (cfg.symmetric_links && i > j) continue;
      out_cand_[i].push_back(j);
    }
    if (cfg.objective == Objective::kLatOp) {
      bound_ = average_hops_lower_bound(cfg.layout, cfg.link_class, cfg.radix);
    } else if (cfg.objective == Objective::kSCOp) {
      bound_ = sparsest_cut_upper_bound(cfg.layout, cfg.link_class, cfg.radix);
    } else {
      // Weighted-hops bound: distances in the all-valid-links graph.
      topo::DiGraph pot(n_);
      for (const auto& [i, j] : topo::valid_links(cfg.layout, cfg.link_class))
        pot.add_edge(i, j);
      bound_ = hop_eval_.weighted_hops(pot, cfg_.pattern);
    }
  }

  SynthesisResult run() {
    SynthesisResult result;
    result.bound = bound_;
    const double per_restart =
        cfg_.time_limit_s / std::max(1, cfg_.restarts);

    bool have_best = false;
    double best_primary = 0.0, best_secondary = 0.0;
    topo::DiGraph best_graph;

    for (int restart = 0; restart < std::max(1, cfg_.restarts); ++restart) {
      run_one(per_restart, restart, result, have_best, best_primary,
              best_secondary, best_graph);
    }

    if (!have_best)
      throw std::runtime_error(
          "anneal_synthesize: no topology satisfying the constraints "
          "(diameter / min-bandwidth) was found within the time budget");

    result.graph = best_graph;
    result.objective_value = best_primary;
    if (cfg_.objective == Objective::kLatOp ||
        cfg_.objective == Objective::kPattern)
      result.objective_value = best_primary;  // average / weighted hops
    return result;
  }

 private:
  // Primary objective in *reporting* units: avg hops (min) or exact cut
  // bandwidth (max). Secondary: avg hops for SCOp tie-breaks.
  bool better(double p, double s, double bp, double bs) const {
    if (cfg_.objective == Objective::kSCOp) {
      if (p != bp) return p > bp;
      return s < bs;
    }
    return p < bp;
  }

  // C7 penalty: shortfall against the minimum sparsest-cut bandwidth,
  // evaluated exactly for tiny n and through the cut cache otherwise.
  double bandwidth_penalty(const topo::DiGraph& g) {
    if (cfg_.min_cut_bandwidth <= 0.0) return 0.0;
    const double bw = n_ <= 12 ? topo::sparsest_cut_exact(g).bandwidth
                               : (cuts_.empty() ? cuts_.refresh(g)
                                                : cuts_.cached_bandwidth(g));
    return std::max(0.0, cfg_.min_cut_bandwidth - bw) * 50000.0;
  }

  double search_score(const topo::DiGraph& g) {
    switch (cfg_.objective) {
      case Objective::kLatOp:
        return hop_eval_.total_hops(g) + bandwidth_penalty(g);
      case Objective::kPattern: {
        // Primary: pattern-weighted hops. Secondary (small weight): uniform
        // total hops, which keeps the spare port budget working for the
        // traffic the pattern doesn't exercise instead of leaving links
        // unplaced.
        const double uniform = hop_eval_.total_hops(g);
        if (uniform >= kDisconnected) return uniform;
        return hop_eval_.weighted_hops(g, cfg_.pattern) *
                   static_cast<double>(n_) * (n_ - 1) +
               0.05 * uniform + bandwidth_penalty(g);
      }
      case Objective::kSCOp: {
        const double hops = hop_eval_.total_hops(g);
        if (hops >= kDisconnected) return hops;
        const double avg = hops / (static_cast<double>(n_) * (n_ - 1));
        // Tiny instances: the exact sparsest cut is cheap enough to evaluate
        // on every move; the cut-cache surrogate is for paper-scale n.
        if (n_ <= 12)
          return -topo::sparsest_cut_exact(g).bandwidth * 2000.0 + avg;
        if (cuts_.empty()) cuts_.refresh(g);
        const double soft = cuts_.soft_bandwidth(g);
        return -soft * 2000.0 + avg;
      }
    }
    return 0.0;
  }

  void run_one(double budget_s, int restart, SynthesisResult& result,
               bool& have_best, double& best_primary, double& best_secondary,
               topo::DiGraph& best_graph) {
    util::WallTimer timer;
    rng_.reseed(cfg_.seed * 0x9E3779B9 + restart * 1234567 + 1);

    topo::DiGraph g =
        cfg_.symmetric_links
            ? topo::build_random_symmetric(cfg_.layout, cfg_.link_class,
                                           cfg_.radix, rng_)
            : topo::build_random(cfg_.layout, cfg_.link_class, cfg_.radix, rng_);
    EdgePool pool;
    pool.rebuild(g, cfg_.symmetric_links);

    double score = search_score(g);
    long accepts_since_refresh = 0;

    while (timer.seconds() < budget_s) {
      const double frac = timer.seconds() / budget_s;
      const double temp = opts_.t0 * std::pow(opts_.t1 / opts_.t0, frac);

      for (int inner = 0; inner < 200; ++inner) {
        ++result.moves;
        if (!propose_and_apply(g, pool)) continue;
        const double cand = search_score(g);
        const double delta = cand - score;
        if (delta <= 0.0 || rng_.uniform() < std::exp(-delta / temp)) {
          score = cand;
          ++result.accepted;
          ++accepts_since_refresh;
        } else {
          undo(g, pool);
          continue;
        }

        // Candidate incumbent: compute the exact objective.
        maybe_update_incumbent(g, result, have_best, best_primary,
                               best_secondary, best_graph, restart, timer);

        const bool uses_cut_cache =
            cfg_.objective == Objective::kSCOp ||
            (cfg_.min_cut_bandwidth > 0.0 && n_ > 12);
        if (uses_cut_cache &&
            accepts_since_refresh >= opts_.cut_refresh_accepts) {
          accepts_since_refresh = 0;
          cuts_.refresh(g);
          score = search_score(g);
        }
      }
    }
  }

  void maybe_update_incumbent(const topo::DiGraph& g, SynthesisResult& result,
                              bool& have_best, double& best_primary,
                              double& best_secondary, topo::DiGraph& best_graph,
                              int restart, const util::WallTimer& timer) {
    const double hops = hop_eval_.total_hops(g);
    if (hops >= kDisconnected) return;
    if (cfg_.diameter_bound > 0 && topo::diameter(g) > cfg_.diameter_bound)
      return;
    if (cfg_.min_cut_bandwidth > 0.0) {
      // C7 is a hard constraint on incumbents: verify with the exact cut.
      const double bw = n_ <= 26
                            ? topo::sparsest_cut_exact(g).bandwidth
                            : cuts_.refresh(g);
      if (bw + 1e-12 < cfg_.min_cut_bandwidth) return;
    }
    const double avg = hops / (static_cast<double>(n_) * (n_ - 1));

    double primary, secondary;
    if (cfg_.objective == Objective::kSCOp) {
      // Only pay for an exact cut when the surrogate looks competitive.
      const double surrogate = cuts_.cached_bandwidth(g);
      if (have_best &&
          (surrogate < best_primary ||
           (surrogate == best_primary && avg >= best_secondary)))
        return;
      primary = cuts_.refresh(g);  // exact value, also tightens the cache
      secondary = avg;
    } else if (cfg_.objective == Objective::kPattern) {
      primary = hop_eval_.weighted_hops(g, cfg_.pattern);
      secondary = avg;
    } else {
      primary = avg;
      secondary = avg;
    }

    if (!have_best || better(primary, secondary, best_primary, best_secondary)) {
      have_best = true;
      best_primary = primary;
      best_secondary = secondary;
      best_graph = g;
      if (static_cast<int>(result.trace.size()) < opts_.max_trace_points) {
        ProgressPoint pt;
        pt.seconds = timer.seconds() +
                     restart * (cfg_.time_limit_s / std::max(1, cfg_.restarts));
        pt.incumbent = primary;
        pt.bound = bound_;
        result.trace.push_back(pt);
      }
    }
  }

  // --- Move machinery. A move removes up to one edge and adds up to one
  // edge (duplex pairs in symmetric mode); `undo` restores the previous
  // state exactly.
  struct Delta {
    bool removed = false, added = false;
    std::pair<int, int> rem, add;
  };

  bool degree_ok_add(const topo::DiGraph& g, int i, int j) const {
    if (cfg_.symmetric_links)
      return g.out_degree(i) < cfg_.radix && g.in_degree(i) < cfg_.radix &&
             g.out_degree(j) < cfg_.radix && g.in_degree(j) < cfg_.radix;
    return g.out_degree(i) < cfg_.radix && g.in_degree(j) < cfg_.radix;
  }

  void do_add(topo::DiGraph& g, EdgePool& pool, int i, int j) {
    g.add_edge(i, j);
    if (cfg_.symmetric_links) g.add_edge(j, i);
    pool.edges.emplace_back(i, j);
  }

  void do_remove(topo::DiGraph& g, EdgePool& pool, std::size_t idx) {
    const auto [i, j] = pool.edges[idx];
    g.remove_edge(i, j);
    if (cfg_.symmetric_links) g.remove_edge(j, i);
    pool.edges[idx] = pool.edges.back();
    pool.edges.pop_back();
  }

  bool try_random_add(topo::DiGraph& g, EdgePool& pool) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const int i = static_cast<int>(rng_.uniform_int(0, n_ - 1));
      if (out_cand_[i].empty()) continue;
      const int j = rng_.pick(out_cand_[i]);
      if (g.has_edge(i, j) || (cfg_.symmetric_links && g.has_edge(j, i)))
        continue;
      if (!degree_ok_add(g, i, j)) continue;
      do_add(g, pool, i, j);
      delta_.added = true;
      delta_.add = {i, j};
      return true;
    }
    return false;
  }

  bool propose_and_apply(topo::DiGraph& g, EdgePool& pool) {
    delta_ = Delta{};
    const double r = rng_.uniform();
    if (r < 0.15) {
      // Pure add (fills radix slack).
      return try_random_add(g, pool);
    }
    if (pool.edges.empty()) return false;
    const std::size_t idx = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(pool.edges.size()) - 1));
    const auto rem = pool.edges[idx];
    do_remove(g, pool, idx);
    delta_.removed = true;
    delta_.rem = rem;
    if (r < 0.25) return true;  // pure remove
    // Rewire: remove + add elsewhere.
    if (try_random_add(g, pool)) return true;
    // Could not re-add: keep as a pure remove (still a valid move).
    return true;
  }

  void undo(topo::DiGraph& g, EdgePool& pool) {
    if (delta_.added) {
      // The added edge is the last pool entry.
      g.remove_edge(delta_.add.first, delta_.add.second);
      if (cfg_.symmetric_links)
        g.remove_edge(delta_.add.second, delta_.add.first);
      pool.edges.pop_back();
    }
    if (delta_.removed) {
      g.add_edge(delta_.rem.first, delta_.rem.second);
      if (cfg_.symmetric_links) g.add_edge(delta_.rem.second, delta_.rem.first);
      pool.edges.push_back(delta_.rem);
    }
  }

  SynthesisConfig cfg_;
  AnnealOptions opts_;
  int n_;
  util::Rng rng_;
  HopEvaluator hop_eval_;
  CutCache cuts_;
  std::vector<std::vector<int>> out_cand_;
  double bound_ = 0.0;
  Delta delta_;
};

}  // namespace

SynthesisResult anneal_synthesize(const SynthesisConfig& cfg,
                                  const AnnealOptions& opts) {
  Annealer a(cfg, opts);
  return a.run();
}

}  // namespace netsmith::core
