#include "core/objective.hpp"

#include <algorithm>

namespace netsmith::core {

util::Matrix<double> uniform_pattern(int n) {
  util::Matrix<double> w(n, n, 1.0);
  for (int i = 0; i < n; ++i) w(i, i) = 0.0;
  return w;
}

int shuffle_dest(int src, int n) {
  if (src < n / 2) return 2 * src;
  return (2 * src + 1) % n;
}

util::Matrix<double> shuffle_pattern(int n) {
  util::Matrix<double> w(n, n, 0.0);
  for (int s = 0; s < n; ++s) {
    const int d = shuffle_dest(s, n);
    if (d != s) w(s, d) = 1.0;
  }
  return w;
}

namespace {

util::Matrix<double> permutation_pattern(int n, int (*dest)(int, int)) {
  util::Matrix<double> w(n, n, 0.0);
  for (int s = 0; s < n; ++s) {
    const int d = dest(s, n);
    if (d != s && d >= 0 && d < n) w(s, d) = 1.0;
  }
  return w;
}

}  // namespace

util::Matrix<double> bit_complement_pattern(int n) {
  return permutation_pattern(n, [](int s, int nn) { return nn - 1 - s; });
}

int bit_reverse_dest(int src, int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  int r = 0;
  for (int b = 0; b < bits; ++b)
    if (src >> b & 1) r |= 1 << (bits - 1 - b);
  return r < n ? r : src;  // out-of-range reversals stay put (no flow)
}

util::Matrix<double> bit_reverse_pattern(int n) {
  return permutation_pattern(n, bit_reverse_dest);
}

util::Matrix<double> tornado_pattern(int n) {
  return permutation_pattern(
      n, [](int s, int nn) { return (s + (nn + 1) / 2 - 1) % nn; });
}

util::Matrix<double> neighbor_pattern(int n) {
  return permutation_pattern(n, [](int s, int nn) { return (s + 1) % nn; });
}

util::Matrix<double> transpose_pattern(const topo::Layout& layout) {
  const int n = layout.n();
  util::Matrix<double> w(n, n, 0.0);
  for (int s = 0; s < n; ++s) {
    const int r = layout.row(s), c = layout.col(s);
    const int tr = std::min(c, layout.rows - 1);
    const int tc = std::min(r, layout.cols - 1);
    const int d = layout.id(tr, tc);
    if (d != s) w(s, d) = 1.0;
  }
  return w;
}

}  // namespace netsmith::core
