#pragma once
// Traffic patterns used as optimization inputs and by the simulator.

#include "topo/layout.hpp"
#include "util/matrix.hpp"

namespace netsmith::core {

// Uniform all-to-all: every (s, d), s != d, equally likely (paper SII-B).
util::Matrix<double> uniform_pattern(int n);

// gem5 "shuffle" (paper SV-E): dest = 2*src for src < n/2,
// (2*src + 1) mod n otherwise.
util::Matrix<double> shuffle_pattern(int n);
int shuffle_dest(int src, int n);

// Further standard gem5/Garnet synthetic permutations, usable both as
// synthesis objectives (Objective::kPattern) and as simulator traffic
// (sim::traffic_from_pattern). Destinations mapping to the source itself
// carry no flow.
util::Matrix<double> bit_complement_pattern(int n);  // dest = n-1-src
util::Matrix<double> bit_reverse_pattern(int n);     // reverse ceil(lg n) bits
util::Matrix<double> tornado_pattern(int n);         // dest = src + ceil(n/2)-1
util::Matrix<double> neighbor_pattern(int n);        // dest = src + 1 (mod n)
// Grid transpose: (r, c) -> (c, r) when in range, clamped to the grid
// otherwise (non-square layouts fold the tail coordinates).
util::Matrix<double> transpose_pattern(const topo::Layout& layout);

int bit_reverse_dest(int src, int n);

}  // namespace netsmith::core
