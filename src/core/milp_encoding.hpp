#pragma once
// Exact MILP encoding of NetSmith's Table I for the in-tree solver.
//
// This is the paper's formulation made concrete: connectivity map M (C1-C3,
// C9), one-hop distances O folded into big-M rows (C4), shortest-path
// distances D via the triangle-inequality/min encoding (C5) with indicator
// variables selecting each pair's predecessor, radix rows (C2), optional
// diameter bound (C8), and either the total-hops objective (O1) or the
// exhaustively enumerated sparsest-cut objective (O2 via C6/C7).
//
// The encoding is exact but sized for small instances (n <= ~10): the D/min
// construction uses O(n^3) indicator binaries, and the sparsest-cut rows
// enumerate all 2^(n-1) partitions. Tests use it to verify that the anytime
// annealer reaches the true optimum on small layouts.

#include "core/config.hpp"
#include "lp/milp.hpp"

namespace netsmith::core {

struct MilpEncoding {
  lp::Model model;
  // Var ids: m_var[i*n+j] for (i,j) in the valid link set, else -1.
  std::vector<int> m_var;
  std::vector<int> d_var;  // d_var[i*n+j], -1 on diagonal
  int b_var = -1;          // sparsest-cut bandwidth variable (SCOp only)
  int n = 0;
};

MilpEncoding encode_latop(const topo::Layout& layout, topo::LinkClass cls,
                          int radix, int diameter_bound,
                          bool symmetric_links = false);

// SCOp: maximize B subject to every partition's bandwidth >= B (C6/C7 as
// row generation done eagerly — all partitions enumerated up front).
MilpEncoding encode_scop(const topo::Layout& layout, topo::LinkClass cls,
                         int radix, int diameter_bound,
                         bool symmetric_links = false);

// Reads the connectivity map out of a MILP solution.
topo::DiGraph decode_topology(const MilpEncoding& enc,
                              const std::vector<double>& x);

}  // namespace netsmith::core
