#include "core/netsmith.hpp"

#include <stdexcept>

#include "routing/channel_load.hpp"
#include "routing/ndbt.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"

namespace netsmith::core {

SynthesisResult synthesize(const SynthesisConfig& cfg) {
  return anneal_synthesize(cfg);
}

SynthesisResult synthesize_exact(const SynthesisConfig& cfg,
                                 const lp::MilpOptions& opts) {
  MilpEncoding enc;
  switch (cfg.objective) {
    case Objective::kLatOp:
      enc = encode_latop(cfg.layout, cfg.link_class, cfg.radix,
                         cfg.diameter_bound, cfg.symmetric_links);
      break;
    case Objective::kSCOp:
      enc = encode_scop(cfg.layout, cfg.link_class, cfg.radix,
                        cfg.diameter_bound, cfg.symmetric_links);
      break;
    case Objective::kPattern:
    case Objective::kChannelLoad:
    case Objective::kLatLoad:
      throw std::invalid_argument(
          "synthesize_exact: pattern/route-aware objectives are anneal-only");
  }

  lp::MilpOptions o = opts;
  if (o.time_limit_s <= 0) o.time_limit_s = cfg.time_limit_s;
  const auto sol = lp::solve_milp(enc.model, o);
  if (sol.x.empty())
    throw std::runtime_error("synthesize_exact: no feasible topology found (" +
                             lp::to_string(sol.status) + ")");

  SynthesisResult result;
  result.graph = decode_topology(enc, sol.x);
  const int n = result.graph.num_nodes();
  if (cfg.objective == Objective::kLatOp) {
    result.objective_value = topo::average_hops(result.graph);
    result.bound = sol.bound / (static_cast<double>(n) * (n - 1));
  } else {
    result.objective_value = topo::sparsest_cut(result.graph).bandwidth;
    result.bound = sol.bound;
  }
  ProgressPoint pt;
  pt.incumbent = result.objective_value;
  pt.bound = result.bound;
  result.trace.push_back(pt);
  return result;
}

const char* to_string(RoutingPolicy p) {
  return p == RoutingPolicy::kMclb ? "mclb" : "ndbt";
}

NetworkPlan plan_network(const topo::DiGraph& g, const topo::Layout& layout,
                         RoutingPolicy policy, int num_vcs,
                         std::uint64_t seed, int max_paths_per_flow) {
  NetworkPlan plan;
  plan.graph = g;
  plan.policy = policy;
  plan.num_vcs = num_vcs;
  plan.seed = seed;
  plan.max_paths_per_flow = max_paths_per_flow;

  const auto all_paths = routing::enumerate_shortest_paths(g, max_paths_per_flow);
  util::Rng rng(seed);

  if (policy == RoutingPolicy::kMclb) {
    // Deterministic local search only: abl_mclb shows it matches the exact
    // Table III MILP on these instances at a fraction of the cost.
    const auto mclb = routing::mclb_local_search(all_paths);
    plan.table = mclb.table(all_paths);
    plan.max_channel_load = mclb.max_load;
  } else {
    const auto filtered = routing::ndbt_filter(all_paths, layout);
    plan.ndbt_fallback_flows = filtered.flows_without_legal_path;
    plan.table = routing::RoutingTable::select_random(filtered.paths, rng);
    plan.max_channel_load = routing::analyze_uniform(plan.table).max_load;
  }

  const auto layers = vc::assign_layers(plan.table, g, rng);
  plan.vc_layers = layers.num_layers;
  plan.vc_map = vc::balance_vcs(layers, plan.table, num_vcs);
  return plan;
}

}  // namespace netsmith::core
