#include "core/milp_encoding.hpp"

#include <cmath>
#include <stdexcept>

namespace netsmith::core {

namespace {

// Shared skeleton: M variables + radix rows + D variables with the C4/C5
// shortest-path construction.
MilpEncoding encode_common(const topo::Layout& layout, topo::LinkClass cls,
                           int radix, int diameter_bound, bool symmetric) {
  const int n = layout.n();
  if (n > 12)
    throw std::invalid_argument(
        "milp encoding: exact formulation is sized for n <= 12");

  MilpEncoding enc;
  enc.n = n;
  lp::Model& m = enc.model;

  const int diam = diameter_bound > 0 ? diameter_bound : n - 1;
  // Tightest valid big-M: every D is in [1, diam], so slack of `diam` covers
  // both the <= rows (D <= D + 1 + M) and the >= rows (D >= D + 1 - M).
  // A tight M is what keeps the LP relaxation strong enough to prune.
  const double big_m = static_cast<double>(diam);

  // C1/C3: connectivity map over the valid link set only.
  enc.m_var.assign(static_cast<std::size_t>(n) * n, -1);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      if (!topo::link_allowed(layout, i, j, cls)) continue;
      enc.m_var[static_cast<std::size_t>(i) * n + j] = m.add_binary();
    }

  // C9 (optional): symmetric links.
  if (symmetric) {
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) {
        const int mij = enc.m_var[static_cast<std::size_t>(i) * n + j];
        const int mji = enc.m_var[static_cast<std::size_t>(j) * n + i];
        if (mij < 0 || mji < 0) continue;
        m.add_constraint({{mij, 1.0}, {mji, -1.0}}, lp::Rel::kEq, 0.0);
      }
  }

  // C2: out/in radix.
  for (int i = 0; i < n; ++i) {
    std::vector<lp::Term> out_row, in_row;
    for (int j = 0; j < n; ++j) {
      const int mij = enc.m_var[static_cast<std::size_t>(i) * n + j];
      const int mji = enc.m_var[static_cast<std::size_t>(j) * n + i];
      if (mij >= 0) out_row.push_back({mij, 1.0});
      if (mji >= 0) in_row.push_back({mji, 1.0});
    }
    if (!out_row.empty())
      m.add_constraint(std::move(out_row), lp::Rel::kLe, radix);
    if (!in_row.empty())
      m.add_constraint(std::move(in_row), lp::Rel::kLe, radix);
  }

  // D variables (C8 folds into the upper bound => connectivity guaranteed).
  enc.d_var.assign(static_cast<std::size_t>(n) * n, -1);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      enc.d_var[static_cast<std::size_t>(i) * n + j] =
          m.add_integer(1.0, diam);
    }
  auto D = [&](int i, int j) {
    return enc.d_var[static_cast<std::size_t>(i) * n + j];
  };
  auto M = [&](int i, int j) {
    return enc.m_var[static_cast<std::size_t>(i) * n + j];
  };

  // C4 upper side: D(i,j) <= 1 + big_m * (1 - M(i,j)) when (i,j) in L.
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j || M(i, j) < 0) continue;
      m.add_constraint({{D(i, j), 1.0}, {M(i, j), big_m}}, lp::Rel::kLe,
                       1.0 + big_m);
    }

  // C5: D(i,j) == min over predecessors k of D(i,k) + O(k,j).
  //  - Upper: D(i,j) <= D(i,k) + 1 + big_m*(1 - M(k,j))   for all k != i, j.
  //  - Lower: indicator y picks one predecessor with a real link:
  //      sum_k y(i,j,k) = 1;  y(i,j,k) <= M(k,j);
  //      D(i,j) >= D(i,k) + 1 - big_m*(1 - y(i,j,k)).
  //    The k == i case degenerates to the direct link (D(i,i) = 0 by C1).
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      std::vector<lp::Term> pick;
      for (int k = 0; k < n; ++k) {
        if (k == j) continue;
        const int mkj = M(k, j);
        if (mkj < 0) continue;  // predecessor needs a potential link k -> j
        if (k != i) {
          // Upper triangle rows tighten the relaxation.
          m.add_constraint(
              {{D(i, j), 1.0}, {D(i, k), -1.0}, {mkj, big_m}}, lp::Rel::kLe,
              1.0 + big_m);
        }
        const int y = m.add_binary();
        pick.push_back({y, 1.0});
        m.add_constraint({{y, 1.0}, {mkj, -1.0}}, lp::Rel::kLe, 0.0);
        if (k == i) {
          // D(i,j) >= 1 - big_m*(1-y): trivially true (D >= 1), so only the
          // upper side matters; keep the row for uniformity.
          m.add_constraint({{D(i, j), 1.0}, {y, -big_m}}, lp::Rel::kGe,
                           1.0 - big_m);
        } else {
          m.add_constraint({{D(i, j), 1.0}, {D(i, k), -1.0}, {y, -big_m}},
                           lp::Rel::kGe, 1.0 - big_m);
        }
      }
      if (pick.empty())
        throw std::invalid_argument(
            "milp encoding: node unreachable under the link class");
      m.add_constraint(std::move(pick), lp::Rel::kEq, 1.0);
    }

  return enc;
}

}  // namespace

MilpEncoding encode_latop(const topo::Layout& layout, topo::LinkClass cls,
                          int radix, int diameter_bound, bool symmetric_links) {
  MilpEncoding enc =
      encode_common(layout, cls, radix, diameter_bound, symmetric_links);
  const int n = enc.n;
  // O1: minimize sum of D.
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      const int d = enc.d_var[static_cast<std::size_t>(i) * n + j];
      if (d >= 0) enc.model.var(d).obj = 1.0;
    }
  enc.model.set_sense(lp::Sense::kMinimize);
  return enc;
}

MilpEncoding encode_scop(const topo::Layout& layout, topo::LinkClass cls,
                         int radix, int diameter_bound, bool symmetric_links) {
  MilpEncoding enc =
      encode_common(layout, cls, radix, diameter_bound, symmetric_links);
  const int n = enc.n;
  lp::Model& m = enc.model;

  // O2 via C6/C7: B <= (crossings of every partition, each direction),
  // scaled by 1/(|U||V|). All 2^(n-1)-1 partitions enumerated.
  enc.b_var = m.add_continuous(0.0, static_cast<double>(n), 1.0);
  // Node n-1 stays in V so each unordered partition appears once.
  for (std::uint64_t mask = 1; mask < (1ULL << (n - 1)); ++mask) {
    int usz = 0;
    for (int i = 0; i < n; ++i) usz += static_cast<int>(mask >> i & 1);
    if (usz == 0 || usz == n) continue;
    const double scale = static_cast<double>(usz) * (n - usz);
    std::vector<lp::Term> uv{{enc.b_var, -scale}};
    std::vector<lp::Term> vu{{enc.b_var, -scale}};
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        const int mij = enc.m_var[static_cast<std::size_t>(i) * n + j];
        if (mij < 0) continue;
        const bool ui = mask >> i & 1, uj = mask >> j & 1;
        if (ui && !uj) uv.push_back({mij, 1.0});
        else if (!ui && uj) vu.push_back({mij, 1.0});
      }
    m.add_constraint(std::move(uv), lp::Rel::kGe, 0.0);
    m.add_constraint(std::move(vu), lp::Rel::kGe, 0.0);
  }
  m.set_sense(lp::Sense::kMaximize);
  return enc;
}

topo::DiGraph decode_topology(const MilpEncoding& enc,
                              const std::vector<double>& x) {
  topo::DiGraph g(enc.n);
  for (int i = 0; i < enc.n; ++i)
    for (int j = 0; j < enc.n; ++j) {
      const int v = enc.m_var[static_cast<std::size_t>(i) * enc.n + j];
      if (v >= 0 && x[v] > 0.5) g.add_edge(i, j);
    }
  return g;
}

}  // namespace netsmith::core
