#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "topo/builders.hpp"
#include "topo/metrics.hpp"

namespace netsmith::core {

namespace {

// Distance needed for a radix-r out-tree to reach the k-th node (k >= 1).
int moore_distance(int k, int radix) {
  int reach = 0;
  long frontier = 1;
  int t = 0;
  while (reach < k) {
    ++t;
    frontier *= radix;
    reach += static_cast<int>(std::min<long>(frontier, 1 << 20));
  }
  return t;
}

// The "potential graph": every class-valid link present.
topo::DiGraph potential_graph(const topo::Layout& layout, topo::LinkClass cls) {
  topo::DiGraph g(layout.n());
  for (const auto& [i, j] : topo::valid_links(layout, cls)) g.add_edge(i, j);
  return g;
}

}  // namespace

std::int64_t total_hops_lower_bound(const topo::Layout& layout,
                                    topo::LinkClass cls, int radix) {
  const int n = layout.n();
  const auto pot = potential_graph(layout, cls);
  std::int64_t total = 0;
  for (int s = 0; s < n; ++s) {
    auto d = topo::bfs_distances(pot, s);
    std::vector<int> others;
    others.reserve(n - 1);
    for (int j = 0; j < n; ++j)
      if (j != s) others.push_back(d[j]);
    std::sort(others.begin(), others.end());
    for (int k = 1; k <= n - 1; ++k) {
      total += std::max(others[k - 1], moore_distance(k, radix));
    }
  }
  return total;
}

double average_hops_lower_bound(const topo::Layout& layout,
                                topo::LinkClass cls, int radix) {
  const int n = layout.n();
  if (n < 2) return 0.0;
  return static_cast<double>(total_hops_lower_bound(layout, cls, radix)) /
         (static_cast<double>(n) * (n - 1));
}

double sparsest_cut_upper_bound(const topo::Layout& layout,
                                topo::LinkClass cls, int radix) {
  const int n = layout.n();
  const auto pot = potential_graph(layout, cls);

  // Capacity of a fixed partition when every router saturates its radix:
  // each U-router can contribute at most min(radix, valid neighbours in V)
  // outgoing crossings, and symmetrically for the V side's inputs.
  auto partition_capacity = [&](const std::vector<std::uint8_t>& in_u) {
    int usz = 0;
    for (int i = 0; i < n; ++i) usz += in_u[i];
    if (usz == 0 || usz == n) return 1e30;
    long out_side = 0, in_side = 0;
    for (int i = 0; i < n; ++i) {
      if (in_u[i]) {
        int nbrs = 0;
        for (int j : pot.out_neighbors(i)) nbrs += !in_u[j];
        out_side += std::min(radix, nbrs);
      } else {
        int nbrs = 0;
        for (int j : pot.in_neighbors(i)) nbrs += in_u[j];
        in_side += std::min(radix, nbrs);
      }
    }
    const double cap = static_cast<double>(std::min(out_side, in_side));
    return cap / (static_cast<double>(usz) * (n - usz));
  };

  double best = 1e30;
  // Column sweeps: U = columns [0, c].
  for (int c = 0; c + 1 < layout.cols; ++c) {
    std::vector<std::uint8_t> in_u(n, 0);
    for (int r = 0; r < layout.rows; ++r)
      for (int cc = 0; cc <= c; ++cc) in_u[layout.id(r, cc)] = 1;
    best = std::min(best, partition_capacity(in_u));
  }
  // Row sweeps.
  for (int r = 0; r + 1 < layout.rows; ++r) {
    std::vector<std::uint8_t> in_u(n, 0);
    for (int rr = 0; rr <= r; ++rr)
      for (int c = 0; c < layout.cols; ++c) in_u[layout.id(rr, c)] = 1;
    best = std::min(best, partition_capacity(in_u));
  }
  // Single-node cuts (ejection-style bound).
  {
    std::vector<std::uint8_t> in_u(n, 0);
    in_u[0] = 1;
    best = std::min(best, partition_capacity(in_u));
  }
  return best;
}

}  // namespace netsmith::core
