#pragma once
// Maps acyclic layers onto the available virtual channels and balances flows
// across each layer's VC group using path-length-weighted occupancy (paper
// SIV-A: "a path traversing three links has a weight of three").

#include <vector>

#include "routing/table.hpp"
#include "vc/layers.hpp"

namespace netsmith::vc {

struct VcMap {
  int num_vcs = 0;
  int num_layers = 0;
  // Per flow f = s*n + d: virtual channel id (constant along the route,
  // i.e. layered routing), or -1 for absent flows.
  std::vector<int> vc;
  // Per VC: which layer it belongs to (VC -> layer is many-to-one).
  std::vector<int> layer_of_vc;
  // Per VC: total path-length weight assigned (for diagnostics/tests).
  std::vector<double> weight_of_vc;
};

// Requires num_vcs >= assignment.num_layers. VCs are apportioned to layers
// proportionally to each layer's total weight (at least one each), then
// flows are spread within their layer's VC group by longest-processing-time
// scheduling on path length.
VcMap balance_vcs(const VcAssignment& a, const routing::RoutingTable& rt,
                  int num_vcs);

// Recovers the per-flow layer assignment a VcMap was balanced from (flow ->
// layer of its VC), so callers holding only a planned network can re-verify
// deadlock freedom via vc::verify_acyclic.
VcAssignment layer_assignment(const VcMap& m);

}  // namespace netsmith::vc
