#pragma once
// DFSSSP-style path-to-VC-layer partitioning (paper SIV-A, following Domke
// et al.): partition the chosen shortest paths into layers such that each
// layer's channel dependency graph is acyclic; each layer maps to (a group
// of) virtual channels. The paper found random back-edge selection gives
// sufficiently few layers; we take randomized path orders over several
// restarts and keep the best, which is the same mechanism.

#include <vector>

#include "routing/table.hpp"
#include "util/rng.hpp"
#include "vc/cdg.hpp"

namespace netsmith::vc {

struct VcAssignment {
  int num_layers = 0;
  // Per flow f = s*n + d: layer id, or -1 for absent flows (s == d).
  std::vector<int> layer;
};

// Greedy layered assignment with rollback on cycle creation.
VcAssignment assign_layers(const routing::RoutingTable& rt,
                           const topo::DiGraph& g, util::Rng& rng,
                           int restarts = 8, int max_layers = 16);

// Verifies that every layer's CDG is acyclic (the deadlock-freedom
// condition); used by tests and asserted before simulation.
bool verify_acyclic(const VcAssignment& a, const routing::RoutingTable& rt,
                    const topo::DiGraph& g);

}  // namespace netsmith::vc
