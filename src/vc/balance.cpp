#include "vc/balance.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace netsmith::vc {

VcMap balance_vcs(const VcAssignment& a, const routing::RoutingTable& rt,
                  int num_vcs) {
  const int n = rt.num_nodes();
  const int layers = a.num_layers;
  if (num_vcs < layers)
    throw std::invalid_argument("balance_vcs: fewer VCs than required layers");

  // Layer weights: sum of (path length) over flows in the layer.
  std::vector<double> layer_weight(layers, 0.0);
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const int l = a.layer[static_cast<std::size_t>(s) * n + d];
      if (l < 0) continue;
      layer_weight[l] += static_cast<double>(rt.path(s, d).size()) - 1.0;
    }

  // Apportion VCs: one per layer, then largest-remainder on weight.
  std::vector<int> vcs_of_layer(layers, 1);
  int left = num_vcs - layers;
  const double total_weight =
      std::max(1e-9, std::accumulate(layer_weight.begin(), layer_weight.end(), 0.0));
  while (left > 0) {
    // Give the next VC to the layer with the highest weight per VC.
    int best = 0;
    double best_ratio = -1.0;
    for (int l = 0; l < layers; ++l) {
      const double ratio = layer_weight[l] / vcs_of_layer[l];
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = l;
      }
    }
    ++vcs_of_layer[best];
    --left;
  }
  (void)total_weight;

  VcMap map;
  map.num_vcs = num_vcs;
  map.num_layers = layers;
  map.vc.assign(static_cast<std::size_t>(n) * n, -1);
  map.layer_of_vc.assign(num_vcs, -1);
  map.weight_of_vc.assign(num_vcs, 0.0);

  std::vector<int> first_vc(layers, 0);
  {
    int next = 0;
    for (int l = 0; l < layers; ++l) {
      first_vc[l] = next;
      for (int k = 0; k < vcs_of_layer[l]; ++k) map.layer_of_vc[next + k] = l;
      next += vcs_of_layer[l];
    }
  }

  // LPT within each layer: longest paths placed first on the least-loaded VC
  // of the layer's group.
  struct FlowRef {
    int s, d, layer;
    double w;
  };
  std::vector<FlowRef> flows;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const int l = a.layer[static_cast<std::size_t>(s) * n + d];
      if (l < 0) continue;
      flows.push_back({s, d, l, static_cast<double>(rt.path(s, d).size()) - 1.0});
    }
  std::sort(flows.begin(), flows.end(), [](const FlowRef& x, const FlowRef& y) {
    if (x.w != y.w) return x.w > y.w;
    if (x.s != y.s) return x.s < y.s;
    return x.d < y.d;
  });

  for (const auto& f : flows) {
    const int base = first_vc[f.layer];
    const int cnt = vcs_of_layer[f.layer];
    int best = base;
    for (int k = 1; k < cnt; ++k)
      if (map.weight_of_vc[base + k] < map.weight_of_vc[best]) best = base + k;
    map.vc[static_cast<std::size_t>(f.s) * n + f.d] = best;
    map.weight_of_vc[best] += f.w;
  }
  return map;
}

VcAssignment layer_assignment(const VcMap& m) {
  VcAssignment a;
  a.num_layers = m.num_layers;
  a.layer.resize(m.vc.size(), -1);
  for (std::size_t f = 0; f < m.vc.size(); ++f)
    if (m.vc[f] >= 0) a.layer[f] = m.layer_of_vc[m.vc[f]];
  return a;
}

}  // namespace netsmith::vc
