#include "vc/cdg.hpp"

#include <algorithm>

namespace netsmith::vc {

LinkIds::LinkIds(const topo::DiGraph& g) : n_(g.num_nodes()) {
  id_.assign(static_cast<std::size_t>(n_) * n_, -1);
  for (const auto& [u, v] : g.edges()) {
    id_[static_cast<std::size_t>(u) * n_ + v] = static_cast<int>(links_.size());
    links_.emplace_back(u, v);
  }
}

Cdg::Cdg(int num_links) : adj_(num_links) {}

bool Cdg::add_dep(int from, int to) {
  auto& a = adj_[from];
  if (std::find(a.begin(), a.end(), to) != a.end()) return false;
  a.push_back(to);
  ++deps_;
  return true;
}

void Cdg::remove_dep(int from, int to) {
  auto& a = adj_[from];
  auto it = std::find(a.begin(), a.end(), to);
  if (it != a.end()) {
    a.erase(it);
    --deps_;
  }
}

std::vector<std::pair<int, int>> Cdg::add_path(const routing::Path& p,
                                               const LinkIds& ids) {
  std::vector<std::pair<int, int>> inserted;
  for (std::size_t i = 0; i + 2 < p.size(); ++i) {
    const int e1 = ids.id(p[i], p[i + 1]);
    const int e2 = ids.id(p[i + 1], p[i + 2]);
    if (e1 < 0 || e2 < 0) continue;
    if (add_dep(e1, e2)) inserted.emplace_back(e1, e2);
  }
  return inserted;
}

void Cdg::remove_deps(const std::vector<std::pair<int, int>>& deps) {
  for (const auto& [from, to] : deps) remove_dep(from, to);
}

bool Cdg::has_cycle() const {
  const int n = num_links();
  // Iterative DFS with colors: 0 white, 1 on stack, 2 done.
  std::vector<std::int8_t> color(n, 0);
  std::vector<std::pair<int, std::size_t>> stack;
  for (int s = 0; s < n; ++s) {
    if (color[s] != 0) continue;
    stack.emplace_back(s, 0);
    color[s] = 1;
    while (!stack.empty()) {
      auto& [u, idx] = stack.back();
      if (idx < adj_[u].size()) {
        const int v = adj_[u][idx++];
        if (color[v] == 1) return true;
        if (color[v] == 0) {
          color[v] = 1;
          stack.emplace_back(v, 0);
        }
      } else {
        color[u] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace netsmith::vc
