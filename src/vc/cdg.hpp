#pragma once
// Channel dependency graph (Dally & Seitz): nodes are the network's directed
// links; an edge (e1 -> e2) exists when some route occupies e1 and then e2
// consecutively. A routing subfunction is deadlock-free on a VC if the CDG
// restricted to that VC's routes is acyclic (paper SII-F).

#include <utility>
#include <vector>

#include "routing/paths.hpp"
#include "topo/graph.hpp"

namespace netsmith::vc {

// Maps directed links to dense ids.
class LinkIds {
 public:
  explicit LinkIds(const topo::DiGraph& g);

  int id(int u, int v) const { return id_[static_cast<std::size_t>(u) * n_ + v]; }
  int count() const { return static_cast<int>(links_.size()); }
  std::pair<int, int> link(int e) const { return links_[e]; }

 private:
  int n_ = 0;
  std::vector<int> id_;  // -1 when no such link
  std::vector<std::pair<int, int>> links_;
};

class Cdg {
 public:
  explicit Cdg(int num_links);

  // Adds a dependency edge; duplicates ignored. Returns true if new.
  bool add_dep(int from, int to);
  void remove_dep(int from, int to);

  // Adds every consecutive-link dependency of the path. Returns the list of
  // (from, to) pairs actually inserted, so the caller can roll back.
  std::vector<std::pair<int, int>> add_path(const routing::Path& p,
                                            const LinkIds& ids);
  void remove_deps(const std::vector<std::pair<int, int>>& deps);

  bool has_cycle() const;
  int num_deps() const { return deps_; }
  int num_links() const { return static_cast<int>(adj_.size()); }

 private:
  std::vector<std::vector<int>> adj_;
  int deps_ = 0;
};

}  // namespace netsmith::vc
