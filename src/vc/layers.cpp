#include "vc/layers.hpp"

#include <stdexcept>

namespace netsmith::vc {

namespace {

struct FlowRef {
  int s, d;
};

VcAssignment try_assign(const routing::RoutingTable& rt, const topo::DiGraph& g,
                        std::vector<FlowRef> order, int max_layers) {
  const int n = rt.num_nodes();
  const LinkIds ids(g);
  VcAssignment a;
  a.layer.assign(static_cast<std::size_t>(n) * n, -1);

  std::vector<FlowRef> pending = std::move(order);
  int layer = 0;
  while (!pending.empty()) {
    if (layer >= max_layers) {
      a.num_layers = -1;  // signal failure
      return a;
    }
    Cdg cdg(ids.count());
    std::vector<FlowRef> deferred;
    for (const auto& f : pending) {
      const auto& p = rt.path(f.s, f.d);
      const auto inserted = cdg.add_path(p, ids);
      if (cdg.has_cycle()) {
        // This path closes a cycle in the current layer: defer it. This is
        // the DFSSSP move of peeling the cycle-forming route into a new VC.
        cdg.remove_deps(inserted);
        deferred.push_back(f);
      } else {
        a.layer[static_cast<std::size_t>(f.s) * n + f.d] = layer;
      }
    }
    pending = std::move(deferred);
    ++layer;
  }
  a.num_layers = layer;
  return a;
}

}  // namespace

VcAssignment assign_layers(const routing::RoutingTable& rt,
                           const topo::DiGraph& g, util::Rng& rng,
                           int restarts, int max_layers) {
  const int n = rt.num_nodes();
  std::vector<FlowRef> flows;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d)
      if (s != d && rt.path(s, d).size() >= 2) flows.push_back({s, d});

  VcAssignment best;
  best.num_layers = -1;
  for (int r = 0; r < restarts; ++r) {
    std::vector<FlowRef> order = flows;
    if (r > 0) rng.shuffle(order);
    const auto a = try_assign(rt, g, std::move(order), max_layers);
    if (a.num_layers < 0) continue;
    if (best.num_layers < 0 || a.num_layers < best.num_layers) best = a;
    if (best.num_layers == 1) break;
  }
  if (best.num_layers < 0)
    throw std::runtime_error("assign_layers: exceeded max_layers");
  return best;
}

bool verify_acyclic(const VcAssignment& a, const routing::RoutingTable& rt,
                    const topo::DiGraph& g) {
  const int n = rt.num_nodes();
  const LinkIds ids(g);
  for (int layer = 0; layer < a.num_layers; ++layer) {
    Cdg cdg(ids.count());
    for (int s = 0; s < n; ++s)
      for (int d = 0; d < n; ++d) {
        if (s == d) continue;
        if (a.layer[static_cast<std::size_t>(s) * n + d] != layer) continue;
        cdg.add_path(rt.path(s, d), ids);
      }
    if (cdg.has_cycle()) return false;
  }
  return true;
}

}  // namespace netsmith::vc
