#include "serve/store.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "obs/metrics.hpp"

namespace netsmith::serve {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

constexpr const char* kMagic = "netsmith-artifact v1";

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string map_key_of(const std::string& kind, const std::string& key) {
  std::string mk = kind;
  mk.push_back('\0');
  mk += key;
  return mk;
}

struct FileCloser {
  std::FILE* f;
  ~FileCloser() {
    if (f) std::fclose(f);
  }
};

}  // namespace

ArtifactStore::ArtifactStore(StoreOptions opts) : opts_(std::move(opts)) {}

std::string ArtifactStore::path_for(const std::string& kind,
                                    const std::string& key) const {
  if (opts_.dir.empty()) return {};
  return opts_.dir + "/" + kind + "/" + hex64(fnv1a64(key)) + ".art";
}

void ArtifactStore::put_mem_locked(const std::string& map_key,
                                   const std::string& payload) {
  if (payload.size() > opts_.lru_bytes) return;
  auto it = index_.find(map_key);
  if (it != index_.end()) {
    mem_bytes_ -= it->second->payload.size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{map_key, payload});
  index_[map_key] = lru_.begin();
  mem_bytes_ += payload.size();
  while (mem_bytes_ > opts_.lru_bytes && !lru_.empty()) {
    const Entry& victim = lru_.back();
    mem_bytes_ -= victim.payload.size();
    index_.erase(victim.map_key);
    lru_.pop_back();
    ++stats_.evictions;
    obs::counter("serve.cache.evictions").inc();
  }
  stats_.mem_bytes = static_cast<long long>(mem_bytes_);
  stats_.mem_entries = static_cast<long>(lru_.size());
  obs::gauge("serve.store.mem_bytes").set(static_cast<double>(mem_bytes_));
  obs::gauge("serve.store.mem_entries").set(static_cast<double>(lru_.size()));
}

bool ArtifactStore::read_disk(const std::string& kind, const std::string& key,
                              std::string& payload) {
  const std::string path = path_for(kind, key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.misses;
    obs::counter("serve.cache.misses").inc();
    return false;
  }
  FileCloser closer{f};
  const auto corrupt = [&] {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.corrupt;
    obs::counter("serve.cache.corrupt").inc();
    return false;
  };
  char line[4096];
  if (!std::fgets(line, sizeof(line), f) ||
      std::string(line) != std::string(kMagic) + "\n")
    return corrupt();
  // Key line: "key <key>\n". Keys are canonical single-line strings; a
  // different key under the same hash is a collision and reads as a miss.
  std::string key_line;
  {
    if (!std::fgets(line, sizeof(line), f)) return corrupt();
    key_line = line;
    while (!key_line.empty() && key_line.back() != '\n') {
      if (!std::fgets(line, sizeof(line), f)) return corrupt();
      key_line += line;
    }
  }
  if (key_line != "key " + key + "\n") return corrupt();
  if (!std::fgets(line, sizeof(line), f)) return corrupt();
  unsigned long long size = 0;
  char hash_hex[32] = {0};
  if (std::sscanf(line, "size %llu hash %16s", &size, hash_hex) != 2)
    return corrupt();
  if (size > (1ull << 32)) return corrupt();
  std::string data(static_cast<std::size_t>(size), '\0');
  if (size > 0 && std::fread(data.data(), 1, data.size(), f) != data.size())
    return corrupt();
  // Anything after the payload means the file is not what we wrote.
  if (std::fgetc(f) != EOF) return corrupt();
  if (hex64(fnv1a64(data)) != hash_hex) return corrupt();
  payload = std::move(data);
  return true;
}

bool ArtifactStore::write_disk(const std::string& kind, const std::string& key,
                               const std::string& payload) {
  static std::atomic<unsigned long long> seq{0};
  const std::string path = path_for(kind, key);
  std::error_code ec;
  fs::create_directories(opts_.dir + "/" + kind, ec);
  if (ec) return false;
  const std::string tmp =
      path + ".tmp." + std::to_string(seq.fetch_add(1)) + "." +
      hex64(fnv1a64(key + std::to_string(
                              reinterpret_cast<std::uintptr_t>(&seq))));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  bool ok;
  {
    FileCloser closer{f};
    const std::string header = std::string(kMagic) + "\nkey " + key +
                               "\nsize " + std::to_string(payload.size()) +
                               " hash " + hex64(fnv1a64(payload)) + "\n";
    ok = std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
         (payload.empty() ||
          std::fwrite(payload.data(), 1, payload.size(), f) == payload.size());
    ok = (std::fflush(f) == 0) && ok;
  }
  if (ok) {
    fs::rename(tmp, path, ec);
    ok = !ec;
  }
  if (!ok) fs::remove(tmp, ec);
  return ok;
}

bool ArtifactStore::load(const std::string& kind, const std::string& key,
                         std::string& payload) {
  const std::string mk = map_key_of(kind, key);
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = index_.find(mk);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      payload = it->second->payload;
      ++stats_.mem_hits;
      obs::counter("serve.cache.mem_hits").inc();
      return true;
    }
  }
  if (opts_.dir.empty()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.misses;
    obs::counter("serve.cache.misses").inc();
    return false;
  }
  if (!read_disk(kind, key, payload)) return false;  // miss/corrupt counted
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.disk_hits;
  obs::counter("serve.cache.disk_hits").inc();
  put_mem_locked(mk, payload);
  return true;
}

void ArtifactStore::store(const std::string& kind, const std::string& key,
                          const std::string& payload) {
  try {
    bool wrote_ok = true;
    if (!opts_.dir.empty()) wrote_ok = write_disk(kind, key, payload);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.stores;
    obs::counter("serve.store.writes").inc();
    if (!wrote_ok) {
      ++stats_.write_errors;
      obs::counter("serve.store.write_errors").inc();
    }
    put_mem_locked(map_key_of(kind, key), payload);
  } catch (...) {
    // Best-effort by contract: a full disk or permission error must never
    // take down the study that tried to populate the cache.
  }
}

StoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace netsmith::serve
