#pragma once
// Wire protocol for the netsmith serve daemon: newline-delimited JSON over a
// Unix-domain stream socket. Every message — request or response — is one
// complete JSON document on one line (JsonValue::dump_compact), so framing
// is just line splitting and a client can stream events with a line reader.
//
// Requests:
//   {"op":"run","spec":{...ExperimentSpec...}}
//   {"op":"ping"}            liveness probe
//   {"op":"stats"}           store/request counters without running anything
//   {"op":"shutdown"}        ask the daemon to exit after draining
//
// Response events for "run" (in order):
//   {"event":"accepted","op":"run","name":...,"jobs":N}
//   {"event":"progress","done":k,"total":N,"label":...}   (per job)
//   {"event":"report","partial":bool,"report":"<json text>",
//    "cache":{...},"store":{...}}
// The report rides as an escaped STRING, not an embedded object: the client
// recovers the exact bytes report_to_json produced, so a served report can
// be byte-compared against netsmith_run output. "cache" is this study's
// artifact-cache traffic (api::ArtifactCacheStats); a fully warm request
// shows misses == 0 there. "store" is the daemon-lifetime StoreStats.
//
// Any failure produces {"event":"error","message":...} and the connection
// stays open for the next request; protocol errors never kill the daemon.

#include <functional>
#include <string>

#include "api/artifact_cache.hpp"
#include "serve/store.hpp"
#include "util/json.hpp"

namespace netsmith::serve {

struct Request {
  std::string op;        // "run" | "ping" | "stats" | "shutdown"
  util::JsonValue spec;  // op == "run" only
};

// Parses one request line; throws std::invalid_argument with a client-facing
// message on malformed JSON, missing/unknown op, or a missing spec.
Request parse_request(const std::string& line);

// Event builders. Each returns one complete line WITHOUT the trailing
// newline; write_line appends it.
std::string accepted_event(const std::string& op, const std::string& name,
                           int jobs_total);
std::string progress_event(const std::string& label, int done, int total);
std::string report_event(const std::string& report_json, bool partial,
                         const api::ArtifactCacheStats& cache,
                         const StoreStats& store);
std::string error_event(const std::string& message);
std::string pong_event();
std::string stats_event(const StoreStats& store, long requests_handled);

util::JsonValue cache_stats_json(const api::ArtifactCacheStats& s);
util::JsonValue store_stats_json(const StoreStats& s);

// ---------------------------------------------------------- socket I/O ---

// Writes `line` plus '\n'; retries on partial writes / EINTR. False on a
// closed or broken peer (callers treat that as "client went away").
bool write_line(int fd, const std::string& line);

// Incremental line splitter over a blocking fd. When the fd carries an
// SO_RCVTIMEO, each timeout invokes `stop` (if set); a true return abandons
// the read — this is how daemon connection handlers notice a shutdown while
// parked on an idle client.
class LineReader {
 public:
  explicit LineReader(int fd, std::function<bool()> stop = {})
      : fd_(fd), stop_(std::move(stop)) {}
  // Next complete line (without '\n'); false on EOF or read error. A final
  // unterminated chunk before EOF is returned as a line.
  bool next(std::string& line);

 private:
  int fd_;
  std::function<bool()> stop_;
  std::string buf_;
  bool eof_ = false;
};

}  // namespace netsmith::serve
