#include "serve/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <stdexcept>

namespace netsmith::serve {

using util::JsonValue;

Request parse_request(const std::string& line) {
  JsonValue root;
  try {
    root = JsonValue::parse(line);
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("malformed request JSON: ") +
                                e.what());
  }
  if (!root.is_object())
    throw std::invalid_argument("request must be a JSON object");
  const JsonValue* op = root.find("op");
  if (!op || op->type() != JsonValue::Type::kString)
    throw std::invalid_argument("request missing string field \"op\"");
  Request req;
  req.op = op->as_string();
  if (req.op == "run") {
    const JsonValue* spec = root.find("spec");
    if (!spec || !spec->is_object())
      throw std::invalid_argument("\"run\" request missing object \"spec\"");
    req.spec = *spec;
  } else if (req.op != "ping" && req.op != "stats" && req.op != "shutdown") {
    throw std::invalid_argument("unknown op \"" + req.op + "\"");
  }
  return req;
}

std::string accepted_event(const std::string& op, const std::string& name,
                           int jobs_total) {
  JsonValue e = JsonValue::object();
  e.set("event", JsonValue::string("accepted"));
  e.set("op", JsonValue::string(op));
  if (!name.empty()) e.set("name", JsonValue::string(name));
  if (jobs_total >= 0) e.set("jobs", JsonValue::integer(jobs_total));
  return e.dump_compact();
}

std::string progress_event(const std::string& label, int done, int total) {
  JsonValue e = JsonValue::object();
  e.set("event", JsonValue::string("progress"));
  e.set("done", JsonValue::integer(done));
  e.set("total", JsonValue::integer(total));
  e.set("label", JsonValue::string(label));
  return e.dump_compact();
}

util::JsonValue cache_stats_json(const api::ArtifactCacheStats& s) {
  JsonValue v = JsonValue::object();
  v.set("topology_hits", JsonValue::integer(s.topology_hits));
  v.set("topology_misses", JsonValue::integer(s.topology_misses));
  v.set("plan_hits", JsonValue::integer(s.plan_hits));
  v.set("plan_misses", JsonValue::integer(s.plan_misses));
  v.set("sweep_hits", JsonValue::integer(s.sweep_hits));
  v.set("sweep_misses", JsonValue::integer(s.sweep_misses));
  v.set("stores", JsonValue::integer(s.stores));
  v.set("hits", JsonValue::integer(s.hits()));
  v.set("misses", JsonValue::integer(s.misses()));
  return v;
}

util::JsonValue store_stats_json(const StoreStats& s) {
  JsonValue v = JsonValue::object();
  v.set("mem_hits", JsonValue::integer(s.mem_hits));
  v.set("disk_hits", JsonValue::integer(s.disk_hits));
  v.set("misses", JsonValue::integer(s.misses));
  v.set("corrupt", JsonValue::integer(s.corrupt));
  v.set("stores", JsonValue::integer(s.stores));
  v.set("evictions", JsonValue::integer(s.evictions));
  v.set("write_errors", JsonValue::integer(s.write_errors));
  v.set("mem_bytes", JsonValue::integer(s.mem_bytes));
  v.set("mem_entries", JsonValue::integer(s.mem_entries));
  return v;
}

std::string report_event(const std::string& report_json, bool partial,
                         const api::ArtifactCacheStats& cache,
                         const StoreStats& store) {
  JsonValue e = JsonValue::object();
  e.set("event", JsonValue::string("report"));
  e.set("partial", JsonValue::boolean(partial));
  e.set("cache", cache_stats_json(cache));
  e.set("store", store_stats_json(store));
  e.set("report", JsonValue::string(report_json));
  return e.dump_compact();
}

std::string error_event(const std::string& message) {
  JsonValue e = JsonValue::object();
  e.set("event", JsonValue::string("error"));
  e.set("message", JsonValue::string(message));
  return e.dump_compact();
}

std::string pong_event() {
  JsonValue e = JsonValue::object();
  e.set("event", JsonValue::string("pong"));
  return e.dump_compact();
}

std::string stats_event(const StoreStats& store, long requests_handled) {
  JsonValue e = JsonValue::object();
  e.set("event", JsonValue::string("stats"));
  e.set("requests", JsonValue::integer(requests_handled));
  e.set("store", store_stats_json(store));
  return e.dump_compact();
}

bool write_line(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool LineReader::next(std::string& line) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    if (eof_) {
      if (buf_.empty()) return false;
      line = std::move(buf_);
      buf_.clear();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
    } else if (n == 0) {
      eof_ = true;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (stop_ && stop_()) eof_ = true;  // shutdown while client is idle
    } else if (errno != EINTR) {
      eof_ = true;  // read error: surface whatever is buffered, then stop
    }
  }
}

}  // namespace netsmith::serve
