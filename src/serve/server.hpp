#pragma once
// netsmith serve daemon: a memory-resident study service. One process holds
// a SharedPool (the job executor every request's Study runs on) and an
// ArtifactStore (persistent, content-addressed), so concurrent requests
// share compute fairly and repeated specs are answered from cache — a warm
// identical spec performs zero synthesis/plan/sweep work.
//
// Front ends, both optional and composable:
//  - Unix-domain socket (ServerOptions::socket_path): newline-delimited
//    JSON protocol (serve/protocol.hpp), one connection-handler thread per
//    client, progress events streamed as jobs retire.
//  - Spool directory (ServerOptions::spool_dir): polled for "*.json" specs;
//    each produces "<stem>.report.json" and the input is renamed to
//    "<input>.done" (or ".failed" plus "<stem>.error.txt"). Lets scripts
//    use the daemon without speaking the socket protocol.
//
// Deadlock rule: pool tasks never block on other tasks. The Study's
// executor-backed DAG (run_dag_on) only ever submits ready jobs, and the
// thread that waits for a study to finish is a connection handler, never a
// pool worker — so N concurrent studies share one pool of any width.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/executor.hpp"
#include "serve/store.hpp"
#include "util/json.hpp"

namespace netsmith::serve {

// Fixed-width worker pool implementing api::JobExecutor. submit() enqueues
// and never runs inline; the destructor drains every queued task, then
// joins. Width governs study parallelism for every request sharing it.
class SharedPool final : public api::JobExecutor {
 public:
  // width <= 0 picks hardware concurrency (min 1).
  explicit SharedPool(int width = 0);
  ~SharedPool() override;
  SharedPool(const SharedPool&) = delete;
  SharedPool& operator=(const SharedPool&) = delete;

  void submit(std::function<void()> task) override;
  int width() const { return static_cast<int>(workers_.size()); }

 private:
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

struct ServerOptions {
  std::string socket_path;  // empty = no socket listener
  std::string spool_dir;    // empty = no spool watcher
  std::string cache_dir;    // empty = memory-only store
  std::size_t lru_bytes = 64ull << 20;
  int threads = 0;  // SharedPool width; 0 = hardware concurrency
  int spool_poll_ms = 200;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket and launches the listener/spool threads. Throws
  // std::runtime_error when the socket cannot be bound.
  void start();
  // Blocks until request_stop() (e.g. from a signal handler or a client
  // "shutdown" op), then joins every thread. The socket file is unlinked.
  void wait();
  // Async-signal-unfriendly parts (joins) happen in wait(); this only flags
  // and wakes, so it is safe to call from anywhere including handlers.
  void request_stop();
  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  ArtifactStore& store() { return store_; }
  long requests_handled() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void handle_connection(int fd);
  void handle_run(int fd, const util::JsonValue& spec_json);
  void spool_loop();
  // Shared by socket and spool paths: run one spec on the shared pool with
  // the shared store. Returns false + message on any failure.
  bool run_spec_json(const util::JsonValue& spec_json,
                     const std::function<void(const std::string&, int, int)>&
                         on_job_done,
                     std::string& report_json, bool& partial,
                     api::ArtifactCacheStats& cache_stats,
                     std::string& error);

  ServerOptions opts_;
  ArtifactStore store_;
  SharedPool pool_;
  std::atomic<bool> stop_{false};
  std::atomic<long> requests_{0};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread spool_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool started_ = false;
};

}  // namespace netsmith::serve
