#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "api/report.hpp"
#include "api/spec.hpp"
#include "api/study.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"

namespace netsmith::serve {

namespace fs = std::filesystem;
using util::JsonValue;

// ------------------------------------------------------------ SharedPool --

SharedPool::SharedPool(int width) {
  if (width <= 0) width = static_cast<int>(std::thread::hardware_concurrency());
  if (width <= 0) width = 1;
  workers_.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    workers_.emplace_back([this] {
      for (;;) {
        std::function<void()> task;
        {
          std::unique_lock<std::mutex> lk(mu_);
          cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
          if (queue_.empty()) return;  // stop requested and fully drained
          task = std::move(queue_.front());
          queue_.pop_front();
        }
        task();
      }
    });
  }
}

SharedPool::~SharedPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void SharedPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

// ---------------------------------------------------------------- Server --

namespace {

void set_recv_timeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << data;
  return static_cast<bool>(out);
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      store_(StoreOptions{opts_.cache_dir, opts_.lru_bytes}),
      pool_(opts_.threads) {}

Server::~Server() {
  if (started_) {
    request_stop();
    wait();
  }
}

void Server::start() {
  if (!opts_.socket_path.empty()) {
    ::unlink(opts_.socket_path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
      throw std::runtime_error("serve: socket(): " +
                               std::string(std::strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.socket_path.size() >= sizeof(addr.sun_path))
      throw std::runtime_error("serve: socket path too long: " +
                               opts_.socket_path);
    std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      const std::string err = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("serve: cannot listen on " +
                               opts_.socket_path + ": " + err);
    }
    // accept() honors SO_RCVTIMEO; the loop wakes periodically to observe a
    // stop request instead of parking forever.
    set_recv_timeout(listen_fd_, 200);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
  if (!opts_.spool_dir.empty()) {
    std::error_code ec;
    fs::create_directories(opts_.spool_dir, ec);
    spool_thread_ = std::thread([this] { spool_loop(); });
  }
  started_ = true;
}

void Server::request_stop() {
  stop_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lk(stop_mu_);
  stop_cv_.notify_all();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lk(stop_mu_);
    stop_cv_.wait(lk, [this] { return stop_requested(); });
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (auto& t : conn_threads_)
      if (t.joinable()) t.join();
    conn_threads_.clear();
  }
  if (spool_thread_.joinable()) spool_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opts_.socket_path.c_str());
  }
  started_ = false;
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stop_requested()) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED)
        continue;
      return;  // listener is gone; wait() reaps us
    }
    set_recv_timeout(fd, 500);
    std::lock_guard<std::mutex> lk(conn_mu_);
    conn_threads_.emplace_back([this, fd] {
      handle_connection(fd);
      ::close(fd);
    });
  }
}

void Server::handle_connection(int fd) {
  LineReader reader(fd, [this] { return stop_requested(); });
  std::string line;
  while (reader.next(line)) {
    if (line.empty()) continue;
    obs::Span span("serve/request");
    requests_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.requests").inc();
    Request req;
    try {
      req = parse_request(line);
    } catch (const std::exception& e) {
      obs::counter("serve.requests_bad").inc();
      // Protocol errors are answered, not fatal: the connection stays open
      // so one bad line cannot wedge a client's session.
      if (!write_line(fd, error_event(e.what()))) return;
      continue;
    }
    span.arg("op", req.op);
    if (req.op == "ping") {
      if (!write_line(fd, pong_event())) return;
    } else if (req.op == "stats") {
      if (!write_line(fd, stats_event(store_.stats(),
                                      requests_.load(std::memory_order_relaxed))))
        return;
    } else if (req.op == "shutdown") {
      write_line(fd, accepted_event("shutdown", "", -1));
      request_stop();
      return;
    } else {  // "run"
      handle_run(fd, req.spec);
    }
  }
}

void Server::handle_run(int fd, const JsonValue& spec_json) {
  // Progress events are produced under the study's DAG bookkeeping lock on
  // pool workers; they must never block on the client socket. The callback
  // only enqueues — this handler thread owns every socket write.
  struct ProgressQueue {
    std::mutex m;
    std::condition_variable cv;
    std::deque<std::string> lines;
    bool done = false;
  } prog;

  api::ExperimentSpec spec;
  std::unique_ptr<api::Study> study;
  try {
    spec = api::spec_from_json(spec_json);
    api::StudyOptions sopts;
    sopts.cache = &store_;
    sopts.executor = &pool_;
    sopts.on_job_done = [&prog](const std::string& label, int done,
                                int total) {
      {
        std::lock_guard<std::mutex> lk(prog.m);
        prog.lines.push_back(progress_event(label, done, total));
      }
      prog.cv.notify_one();
    };
    study = std::make_unique<api::Study>(spec, sopts);
  } catch (const std::exception& e) {
    write_line(fd, error_event(e.what()));
    return;
  }
  if (!write_line(fd, accepted_event("run", spec.name,
                                     study->stats().jobs_total)))
    return;

  api::Report report;
  std::string run_error;
  std::thread runner([&] {
    try {
      report = study->run();
    } catch (const std::exception& e) {
      run_error = e.what();
      if (run_error.empty()) run_error = "study failed";
    }
    {
      std::lock_guard<std::mutex> lk(prog.m);
      prog.done = true;
    }
    prog.cv.notify_one();
  });

  // Drain progress until the study retires. A dead client stops the writes
  // but never the study: cache population must finish either way.
  bool io_ok = true;
  {
    std::unique_lock<std::mutex> lk(prog.m);
    for (;;) {
      prog.cv.wait(lk, [&] { return prog.done || !prog.lines.empty(); });
      while (!prog.lines.empty()) {
        const std::string ev = std::move(prog.lines.front());
        prog.lines.pop_front();
        lk.unlock();
        if (io_ok) io_ok = write_line(fd, ev);
        lk.lock();
      }
      if (prog.done) break;
    }
  }
  runner.join();

  if (!run_error.empty()) {
    write_line(fd, error_event(run_error));
    return;
  }
  if (!io_ok) return;
  write_line(fd, report_event(api::report_to_json(report),
                              !report.failed_jobs.empty(),
                              study->artifact_cache_stats(), store_.stats()));
}

bool Server::run_spec_json(
    const JsonValue& spec_json,
    const std::function<void(const std::string&, int, int)>& on_job_done,
    std::string& report_json, bool& partial,
    api::ArtifactCacheStats& cache_stats, std::string& error) {
  try {
    const api::ExperimentSpec spec = api::spec_from_json(spec_json);
    api::StudyOptions sopts;
    sopts.cache = &store_;
    sopts.executor = &pool_;
    sopts.on_job_done = on_job_done;
    api::Study study(spec, sopts);
    const api::Report report = study.run();
    report_json = api::report_to_json(report);
    partial = !report.failed_jobs.empty();
    cache_stats = study.artifact_cache_stats();
    return true;
  } catch (const std::exception& e) {
    error = e.what();
    if (error.empty()) error = "study failed";
    return false;
  }
}

void Server::spool_loop() {
  while (!stop_requested()) {
    std::vector<std::string> inputs;
    {
      std::error_code ec;
      for (fs::directory_iterator it(opts_.spool_dir, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec)) continue;
        const std::string name = it->path().filename().string();
        if (name.size() < 6 || name.substr(name.size() - 5) != ".json")
          continue;
        if (name.size() >= 12 &&
            name.substr(name.size() - 12) == ".report.json")
          continue;
        inputs.push_back(it->path().string());
      }
    }
    std::sort(inputs.begin(), inputs.end());
    for (const std::string& path : inputs) {
      if (stop_requested()) break;
      obs::Span span("serve/request");
      span.arg("op", "spool");
      requests_.fetch_add(1, std::memory_order_relaxed);
      obs::counter("serve.requests").inc();
      const std::string stem = path.substr(0, path.size() - 5);
      std::string report_json, error;
      bool partial = false;
      api::ArtifactCacheStats cache_stats;
      bool ok;
      try {
        ok = run_spec_json(JsonValue::parse(read_file(path)),
                           std::function<void(const std::string&, int, int)>(),
                           report_json, partial, cache_stats, error);
      } catch (const std::exception& e) {
        ok = false;
        error = e.what();
      }
      std::error_code ec;
      if (ok && write_file(stem + ".report.json", report_json)) {
        fs::rename(path, path + ".done", ec);
      } else {
        if (error.empty()) error = "cannot write report";
        write_file(stem + ".error.txt", error + "\n");
        fs::rename(path, path + ".failed", ec);
      }
    }
    std::unique_lock<std::mutex> lk(stop_mu_);
    stop_cv_.wait_for(lk, std::chrono::milliseconds(opts_.spool_poll_ms),
                      [this] { return stop_requested(); });
  }
}

}  // namespace netsmith::serve
