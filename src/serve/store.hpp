#pragma once
// Persistent content-addressed artifact store behind the api::ArtifactCache
// interface: a byte-budgeted in-memory LRU fronting an on-disk layout of
// <dir>/<kind>/<fnv1a64(key)>.art files. Designed for the serve daemon
// (shared across concurrent studies) and `netsmith_run --cache DIR`.
//
// Disk format (see DESIGN.md "Serving layer"): a text header carrying the
// full key, payload size and payload hash, then the payload bytes. Loads
// verify all three; ANY anomaly — short file, header mismatch, key
// collision, payload hash mismatch — reads as a miss (counted in
// stats().corrupt) and the entry is rewritten on the next store. Writes go
// to a unique temp file in the same directory and are renamed into place,
// so concurrent writers and crashed processes never leave a torn entry
// under the final name.
//
// Thread safety: all members are safe to call concurrently. The LRU mutex
// is never held across file I/O.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/artifact_cache.hpp"

namespace netsmith::serve {

std::uint64_t fnv1a64(const std::string& s);

struct StoreOptions {
  // Root directory for persisted artifacts; empty = memory-only (the LRU
  // still works, nothing survives the process).
  std::string dir;
  // In-memory LRU budget over payload bytes. Payloads larger than the
  // budget are served straight from disk and never pinned in memory.
  std::size_t lru_bytes = 64ull << 20;
};

struct StoreStats {
  long mem_hits = 0;    // served from the LRU
  long disk_hits = 0;   // read + verified from disk (then promoted to LRU)
  long misses = 0;      // not present anywhere
  long corrupt = 0;     // present on disk but failed verification (= miss)
  long stores = 0;      // store() calls accepted
  long evictions = 0;   // LRU entries dropped to respect the byte budget
  long write_errors = 0;  // best-effort disk writes that failed
  long long mem_bytes = 0;
  long mem_entries = 0;
  long hits() const { return mem_hits + disk_hits; }
};

class ArtifactStore final : public api::ArtifactCache {
 public:
  explicit ArtifactStore(StoreOptions opts = {});

  // api::ArtifactCache: corrupt or absent = false; store never throws.
  bool load(const std::string& kind, const std::string& key,
            std::string& payload) override;
  void store(const std::string& kind, const std::string& key,
             const std::string& payload) override;

  StoreStats stats() const;
  const std::string& dir() const { return opts_.dir; }
  // On-disk location an artifact maps to (exists or not). Empty when the
  // store is memory-only. Tests use this to corrupt entries in place.
  std::string path_for(const std::string& kind, const std::string& key) const;

 private:
  struct Entry {
    std::string map_key;  // kind + '\0' + key
    std::string payload;
  };

  // Callers hold mu_. Inserts/refreshes `map_key` at the MRU end and
  // evicts from the LRU end until the budget holds.
  void put_mem_locked(const std::string& map_key, const std::string& payload);
  bool read_disk(const std::string& kind, const std::string& key,
                 std::string& payload);
  bool write_disk(const std::string& kind, const std::string& key,
                  const std::string& payload);

  StoreOptions opts_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t mem_bytes_ = 0;
  StoreStats stats_;
};

}  // namespace netsmith::serve
