#pragma once
// Cut-based throughput bounds (paper SII-D, SIII-A-e).
//
// The sparsest cut is the tightest cut-based upper bound on uniform-traffic
// saturation throughput: B(U,V) = (# directed links crossing U->V) / (|U||V|),
// minimized over all 2-partitions. For asymmetric (unidirectional) links we
// take the minimum of the two directions, as the paper specifies. The exact
// computation enumerates every partition (the paper does the same for 20
// routers); a Kernighan-Lin-style heuristic with restarts covers larger
// networks, and property tests guarantee heuristic >= exact.

#include <cstdint>
#include <vector>

#include "topo/graph.hpp"
#include "util/rng.hpp"

namespace netsmith::topo {

struct Cut {
  std::uint64_t u_mask = 0;   // bit i set => router i in U
  int u_size = 0;
  int cross_uv = 0;           // directed edges U -> V
  int cross_vu = 0;           // directed edges V -> U
  double bandwidth = 0.0;     // min(cross_uv, cross_vu) / (|U| * |V|)
};

// Cross-edge counts {U->V, V->U} for an explicit partition mask, counted
// word-parallel: per node one AND + popcount against its adjacency bit row
// (requires n <= 64).
std::pair<int, int> cross_edge_counts(const DiGraph& g, std::uint64_t u_mask);

// Evaluates B(U,V) for an explicit partition mask.
Cut evaluate_cut(const DiGraph& g, std::uint64_t u_mask);

// Exhaustive sparsest cut; requires n <= 26 (2^(n-1) partitions, enumerated
// incrementally via Gray code and parallelized with OpenMP).
Cut sparsest_cut_exact(const DiGraph& g);

// Local-search heuristic: random subsets refined by single-node moves.
// Returns the sparsest cut found; its bandwidth is >= the exact optimum.
Cut sparsest_cut_heuristic(const DiGraph& g, util::Rng& rng, int restarts = 64);

// Dispatches to exact for n <= 22, heuristic otherwise (deterministic seed).
Cut sparsest_cut(const DiGraph& g);

// The K sparsest cuts (by bandwidth, distinct masks). Used as the lazy cut
// cache in SCOp synthesis (cutting-plane style surrogate). Exact for n <= 26.
std::vector<Cut> sparsest_cuts_topk(const DiGraph& g, int k);

// Bisection bandwidth: min over (near-)balanced partitions of the
// min-direction crossing link count (Table II "Bi. BW" uses full-duplex link
// counts, i.e. directed crossings in the weaker direction for asymmetric
// graphs, which equals the bidirectional crossing count for symmetric ones).
// Exact for n <= 24; heuristic with restarts beyond.
int bisection_bandwidth(const DiGraph& g);

}  // namespace netsmith::topo
