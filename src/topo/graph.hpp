#pragma once
// Directed graph over integer-labelled routers. This is NetSmith's
// "connectivity map" M (paper Table I): element (i, j) set iff a
// unidirectional link connects router i to router j. Symmetric (full-duplex)
// links are simply a pair of opposing directed edges; NetSmith counts one
// full-duplex-equivalent "link" per two directed edges when reporting.
//
// Besides the byte matrix and neighbour lists, the graph maintains packed
// adjacency *bit rows* (one row of ceil(n/64) uint64 words per node, for both
// out- and in-edges), updated incrementally in add_edge/remove_edge. These
// back the word-parallel BFS/APSP kernels in topo/metrics and the
// popcount-based cross-edge counts in topo/cuts: at paper scale (n <= 64) a
// whole BFS frontier fits in a single machine word.

#include <cstdint>
#include <string>
#include <vector>

namespace netsmith::topo {

class DiGraph {
 public:
  DiGraph() = default;
  explicit DiGraph(int n);

  int num_nodes() const { return n_; }

  bool has_edge(int i, int j) const { return adj_[idx(i, j)] != 0; }

  // Returns true if the edge was newly inserted.
  bool add_edge(int i, int j);
  // Returns true if the edge existed and was removed.
  bool remove_edge(int i, int j);
  // Adds both directions; returns number of directed edges inserted (0-2).
  int add_duplex(int i, int j);

  const std::vector<int>& out_neighbors(int i) const { return out_[i]; }
  const std::vector<int>& in_neighbors(int i) const { return in_[i]; }
  int out_degree(int i) const { return static_cast<int>(out_[i].size()); }
  int in_degree(int i) const { return static_cast<int>(in_[i].size()); }

  int num_directed_edges() const { return edges_; }
  // Paper Table II "# Links": full-duplex-equivalent links = directed / 2.
  double duplex_links() const { return edges_ / 2.0; }

  // All directed edges as (src, dst) pairs in deterministic order.
  std::vector<std::pair<int, int>> edges() const;

  bool is_symmetric() const;
  DiGraph reversed() const;

  // Raw adjacency row (n bytes, 0/1) for hot loops (cut enumeration).
  const std::uint8_t* row(int i) const { return &adj_[static_cast<std::size_t>(i) * n_]; }

  // --- Packed bit rows (word-parallel kernels) ---------------------------
  // Words per bit row: ceil(n / 64).
  int bit_words() const { return words_; }
  // Out-adjacency bit row of i: bit j set iff edge i -> j.
  const std::uint64_t* out_bits(int i) const {
    return &out_bits_[static_cast<std::size_t>(i) * words_];
  }
  // In-adjacency bit row of j: bit i set iff edge i -> j.
  const std::uint64_t* in_bits(int j) const {
    return &in_bits_[static_cast<std::size_t>(j) * words_];
  }

  bool operator==(const DiGraph& o) const { return n_ == o.n_ && adj_ == o.adj_; }

  // Compact textual form "n:i>j,i>j,..." for goldens/serialization.
  std::string to_string() const;
  static DiGraph from_string(const std::string& s);

 private:
  std::size_t idx(int i, int j) const {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(j);
  }
  std::size_t bidx(int i, int j) const {
    return static_cast<std::size_t>(i) * words_ +
           static_cast<std::size_t>(j >> 6);
  }
  int n_ = 0;
  int words_ = 0;
  int edges_ = 0;
  std::vector<std::uint8_t> adj_;
  std::vector<std::uint64_t> out_bits_, in_bits_;
  std::vector<std::vector<int>> out_, in_;
};

}  // namespace netsmith::topo
