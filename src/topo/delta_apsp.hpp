#pragma once
// Delta-APSP: incrementally maintained BFS distance rows under single-edge
// graph edits. This is what makes the synthesis hot loop sub-linear in n per
// move at large scale: instead of re-running the full n-source APSP sweep
// after every candidate move, only the rows whose BFS tree can have changed
// are re-swept.
//
// Affected-source detection uses the maintained (pre-edit) distance matrix:
//  - adding directed edge (u, v) can only change row s when it creates a
//    shortcut, i.e. D(s,u) + 1 < D(s,v);
//  - removing directed edge (u, v) can only change row s when the edge lies
//    on some shortest path from s, i.e. D(s,u) + 1 == D(s,v), AND no other
//    in-neighbor p of v survives with D(s,p) + 1 == D(s,v). A surviving
//    equal-level predecessor proves the whole row unchanged: D(s,v) is still
//    achieved via p (the s->p shortest path is one hop shorter than any walk
//    through v or u->v, so it avoids the removed edge(s)), and every target
//    whose shortest path crossed (u, v) reroutes s->p->v + old v-suffix at
//    equal length. This predecessor filter is what keeps the affected
//    fraction small on radix-bounded graphs, where most removed edges have
//    equal-length siblings; it is proven for batches with at most one
//    removed edge or a symmetric twin pair {(u,v), (v,u)} — the shapes the
//    annealer emits — and apply() falls back to the plain on-some-shortest-
//    path rule for any other batch.
// For a batch of edits applied together (the annealer's remove+add rewire
// move, doubled in symmetric mode), the union of the per-edit affected sets
// — all evaluated against the pre-move matrix — is re-swept once on the
// post-move graph. A minimal-counterexample argument shows this is exact:
// an unaffected row keeps, for every target, a shortest path avoiding every
// removed edge, and no combination of non-shortcut additions can shorten it.
// Rows are therefore bit-identical to a from-scratch apsp_bfs at all times
// (asserted under randomized edit sequences in tests/test_delta_apsp.cpp).
//
// Each apply() journals the previous contents of the re-swept rows, so a
// rejected annealer move rolls back with a handful of row memcpys instead of
// re-running BFS.
//
// The engine also powers landmark estimation: constructed with a subset of
// sources it maintains only those rows (a k x n matrix), and hop_sum() over
// the sample scaled by n/k estimates the full total — the annealer's cheap
// move score at large n (exact re-scoring of incumbents stays with the
// caller; see core/anneal.cpp).

#include <cstdint>
#include <vector>

#include "topo/graph.hpp"
#include "topo/metrics.hpp"
#include "util/matrix.hpp"

namespace netsmith::topo {

class DeltaApsp {
 public:
  // One directed-edge edit; `g` passed to apply() must already reflect it.
  struct EdgeChange {
    int u = 0, v = 0;
    bool added = false;  // false = removed
  };

  DeltaApsp() = default;
  // Full mode: one row per source, rows() is the complete APSP matrix.
  explicit DeltaApsp(int n) { init(n); }
  // Landmark mode: rows only for the listed sources (order preserved).
  DeltaApsp(int n, std::vector<int> sources) { init(n, std::move(sources)); }

  // Re-initialize, reusing existing storage where shapes match (the annealer
  // hoists one engine per worker thread across restarts).
  void init(int n);
  void init(int n, std::vector<int> sources);

  // Full sweep of every tracked row; discards any pending journal.
  void rebuild(const DiGraph& g);

  // Incremental update for a batch of edge edits already applied to g.
  // Journals overwritten rows; returns the number of rows re-swept. A
  // previous apply() must have been committed or rolled back first.
  int apply(const DiGraph& g, const EdgeChange* changes, int count);

  void commit();    // accept the last apply (drop the journal)
  void rollback();  // undo the last apply (restore journaled rows)

  // Aggregates over the tracked rows, maintained incrementally. hop_sum is
  // the sum of finite distances; unreachable counts (source, target) pairs
  // with no path (target != source).
  std::int64_t hop_sum() const { return hop_sum_; }
  long unreachable() const { return unreachable_; }

  int num_nodes() const { return n_; }
  int num_sources() const { return static_cast<int>(sources_.size()); }
  bool full() const { return num_sources() == n_; }
  const std::vector<int>& sources() const { return sources_; }

  // k x n distance matrix; row r holds distances from sources()[r]. In full
  // mode sources()[r] == r, so this is exactly apsp_bfs(g).
  const util::Matrix<int>& rows() const { return dist_; }

  // Cumulative rows re-swept by apply() since init (perf accounting: the
  // full re-sweep equivalent is num_sources() per move).
  std::int64_t resweeps() const { return resweeps_; }

 private:
  void sweep_row(const DiGraph& g, int r);

  int n_ = 0;
  std::vector<int> sources_;
  util::Matrix<int> dist_;            // k x n
  std::vector<std::int64_t> row_sum_; // finite distances per row
  std::vector<int> row_unreach_;      // unreachable targets per row
  std::int64_t hop_sum_ = 0;
  long unreachable_ = 0;

  BitBfs bfs_{0};

  // Affected-set dedup across the edits of one apply().
  std::vector<std::uint32_t> mark_;
  std::uint32_t epoch_ = 0;
  std::vector<int> affected_;

  // Journal of the last apply(): row payloads + aggregate deltas.
  struct Saved {
    int row;
    std::int64_t sum;
    int unreach;
  };
  std::vector<Saved> journal_;
  std::vector<int> journal_rows_;  // concatenated old row contents
  bool pending_ = false;

  std::int64_t resweeps_ = 0;
};

}  // namespace netsmith::topo
