#include "topo/layout.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace netsmith::topo {

std::string to_string(LinkClass c) {
  switch (c) {
    case LinkClass::kSmall: return "small";
    case LinkClass::kMedium: return "medium";
    case LinkClass::kLarge: return "large";
  }
  return "?";
}

double clock_ghz(LinkClass c) {
  switch (c) {
    case LinkClass::kSmall: return 3.6;
    case LinkClass::kMedium: return 3.0;
    case LinkClass::kLarge: return 2.7;
  }
  return 3.0;
}

bool link_allowed(const Layout& layout, int i, int j, LinkClass c) {
  if (i == j) return false;
  const int dx = std::abs(layout.col(i) - layout.col(j));
  const int dy = std::abs(layout.row(i) - layout.row(j));
  if (dx == 0 && dy == 0) return false;
  // Small: Manhattan neighbourhood up to (1,1).
  if (dx <= 1 && dy <= 1) return true;
  if (c == LinkClass::kSmall) return false;
  // Medium additionally allows straight 2-hop links.
  if ((dx == 2 && dy == 0) || (dx == 0 && dy == 2)) return true;
  if (c == LinkClass::kMedium) return false;
  // Large additionally allows knight-style (2,1) links.
  if ((dx == 2 && dy == 1) || (dx == 1 && dy == 2)) return true;
  return false;
}

std::vector<std::pair<int, int>> valid_links(const Layout& layout, LinkClass c) {
  std::vector<std::pair<int, int>> links;
  const int n = layout.n();
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (link_allowed(layout, i, j, c)) links.emplace_back(i, j);
  return links;
}

double link_length_mm(const Layout& layout, int i, int j) {
  const double dx = (layout.col(i) - layout.col(j)) * layout.pitch_mm;
  const double dy = (layout.row(i) - layout.row(j)) * layout.pitch_mm;
  return std::sqrt(dx * dx + dy * dy);
}

LinkClass classify_span(int dx, int dy) {
  dx = std::abs(dx);
  dy = std::abs(dy);
  if (dx <= 1 && dy <= 1) return LinkClass::kSmall;
  if ((dx == 2 && dy == 0) || (dx == 0 && dy == 2)) return LinkClass::kMedium;
  if ((dx == 2 && dy == 1) || (dx == 1 && dy == 2)) return LinkClass::kLarge;
  throw std::invalid_argument("span exceeds the large link class");
}

}  // namespace netsmith::topo
