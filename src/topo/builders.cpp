#include "topo/builders.hpp"

#include <algorithm>

namespace netsmith::topo {

DiGraph build_mesh(const Layout& layout) {
  DiGraph g(layout.n());
  for (int r = 0; r < layout.rows; ++r)
    for (int c = 0; c < layout.cols; ++c) {
      if (c + 1 < layout.cols) g.add_duplex(layout.id(r, c), layout.id(r, c + 1));
      if (r + 1 < layout.rows) g.add_duplex(layout.id(r, c), layout.id(r + 1, c));
    }
  return g;
}

DiGraph build_torus(const Layout& layout) {
  DiGraph g(layout.n());
  for (int r = 0; r < layout.rows; ++r)
    for (int c = 0; c < layout.cols; ++c) {
      g.add_duplex(layout.id(r, c), layout.id(r, (c + 1) % layout.cols));
      g.add_duplex(layout.id(r, c), layout.id((r + 1) % layout.rows, c));
    }
  return g;
}

DiGraph build_folded_torus(const Layout& layout) { return build_torus(layout); }

DiGraph build_random(const Layout& layout, LinkClass cls, int radix,
                     util::Rng& rng) {
  DiGraph g(layout.n());
  auto links = valid_links(layout, cls);
  rng.shuffle(links);
  for (const auto& [i, j] : links) {
    if (g.out_degree(i) < radix && g.in_degree(j) < radix) g.add_edge(i, j);
  }
  return g;
}

DiGraph build_random_symmetric(const Layout& layout, LinkClass cls, int radix,
                               util::Rng& rng) {
  DiGraph g(layout.n());
  std::vector<std::pair<int, int>> links;
  for (const auto& [i, j] : valid_links(layout, cls))
    if (i < j) links.emplace_back(i, j);
  rng.shuffle(links);
  for (const auto& [i, j] : links) {
    if (g.out_degree(i) < radix && g.in_degree(i) < radix &&
        g.out_degree(j) < radix && g.in_degree(j) < radix)
      g.add_duplex(i, j);
  }
  return g;
}

bool respects_link_class(const DiGraph& g, const Layout& layout, LinkClass cls) {
  for (const auto& [i, j] : g.edges())
    if (!link_allowed(layout, i, j, cls)) return false;
  return true;
}

bool respects_radix(const DiGraph& g, int radix) {
  for (int i = 0; i < g.num_nodes(); ++i)
    if (g.out_degree(i) > radix || g.in_degree(i) > radix) return false;
  return true;
}

}  // namespace netsmith::topo
