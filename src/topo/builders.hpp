#pragma once
// Generator-exact topology builders: the regular networks whose adjacency
// follows directly from a published rule (mesh, torus, folded torus,
// concentrated mesh) plus random graphs for tests.

#include "topo/graph.hpp"
#include "topo/layout.hpp"
#include "util/rng.hpp"

namespace netsmith::topo {

// 2-D mesh with full-duplex nearest-neighbour links.
DiGraph build_mesh(const Layout& layout);

// 2-D torus (wraparound rings in both dimensions). With the folded physical
// arrangement every wire spans at most 2 grid hops, so a folded torus is a
// "medium" network in the Kite taxonomy the paper uses.
DiGraph build_torus(const Layout& layout);

// Alias documenting intent: the folded torus has torus adjacency; folding is
// purely physical (link-length classification).
DiGraph build_folded_torus(const Layout& layout);

// Random topology: repeatedly adds valid directed links (per link class)
// while respecting the radix; used by tests and as annealer seeds.
DiGraph build_random(const Layout& layout, LinkClass cls, int radix,
                     util::Rng& rng);

// Random *symmetric* topology under the same constraints.
DiGraph build_random_symmetric(const Layout& layout, LinkClass cls, int radix,
                               util::Rng& rng);

// True iff every edge of g is permitted by the link class on this layout.
bool respects_link_class(const DiGraph& g, const Layout& layout, LinkClass cls);

// True iff all out-degrees and in-degrees are <= radix (constraint C2).
bool respects_radix(const DiGraph& g, int radix);

}  // namespace netsmith::topo
