#include "topo/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace netsmith::topo {

// --- Word-parallel BFS engine ---------------------------------------------

BitBfs::BitBfs(int n)
    : n_(n),
      words_((n + 63) / 64),
      frontier_(words_, 0),
      next_(words_, 0),
      visited_(words_, 0) {}

// Runs a level-synchronous BFS; per_level(level, new_words) is invoked with
// the freshly reached bitset (already merged into visited) for each level.
template <class PerLevel>
void BitBfs::run(const DiGraph& g, int src, bool forward, PerLevel&& per_level) {
  assert(g.num_nodes() == n_ && g.bit_words() == words_);
  std::fill(frontier_.begin(), frontier_.end(), 0);
  std::fill(visited_.begin(), visited_.end(), 0);
  frontier_[src >> 6] = 1ULL << (src & 63);
  visited_[src >> 6] = frontier_[src >> 6];

  int level = 0;
  bool any = true;
  while (any) {
    ++level;
    std::fill(next_.begin(), next_.end(), 0);
    for (int w = 0; w < words_; ++w) {
      std::uint64_t m = frontier_[w];
      while (m) {
        const int u = (w << 6) + std::countr_zero(m);
        m &= m - 1;
        const std::uint64_t* row = forward ? g.out_bits(u) : g.in_bits(u);
        for (int k = 0; k < words_; ++k) next_[k] |= row[k];
      }
    }
    any = false;
    for (int w = 0; w < words_; ++w) {
      next_[w] &= ~visited_[w];
      if (next_[w]) {
        visited_[w] |= next_[w];
        any = true;
      }
    }
    if (any) per_level(level, next_.data());
    frontier_.swap(next_);
  }
}

void BitBfs::distances(const DiGraph& g, int src, int* dist) {
  std::fill(dist, dist + n_, kUnreachable);
  dist[src] = 0;
  if (words_ == 1) {
    // Single-word fast path (n <= 64): the whole frontier lives in one
    // register and rows[u] is a direct array load. Each visited node is
    // extracted exactly once: the same pass that assigns its distance also
    // ORs its row into the next level's candidate set.
    const std::uint64_t* rows = g.out_bits(0);
    std::uint64_t visited = 1ULL << src;
    std::uint64_t acc = rows[src];  // candidates for the next level
    int level = 0;
    for (;;) {
      std::uint64_t fresh = acc & ~visited;
      if (!fresh) return;
      ++level;
      visited |= fresh;
      acc = 0;
      do {
        const int j = std::countr_zero(fresh);
        fresh &= fresh - 1;
        dist[j] = level;
        acc |= rows[j];
      } while (fresh);
    }
  }
  run(g, src, /*forward=*/true, [&](int level, const std::uint64_t* fresh) {
    for (int w = 0; w < words_; ++w) {
      std::uint64_t m = fresh[w];
      while (m) {
        dist[(w << 6) + std::countr_zero(m)] = level;
        m &= m - 1;
      }
    }
  });
}

std::int64_t BitBfs::sum_from(const DiGraph& g, int src, int* unreached) {
  std::int64_t total = 0;
  int reached = 1;  // src itself
  if (words_ == 1) {
    const std::uint64_t* rows = g.out_bits(0);
    std::uint64_t visited = 1ULL << src;
    std::uint64_t acc = rows[src];
    int level = 0;
    for (;;) {
      std::uint64_t fresh = acc & ~visited;
      if (!fresh) break;
      ++level;
      visited |= fresh;
      const int cnt = std::popcount(fresh);
      total += static_cast<std::int64_t>(level) * cnt;
      reached += cnt;
      acc = 0;
      do {
        acc |= rows[std::countr_zero(fresh)];
        fresh &= fresh - 1;
      } while (fresh);
    }
    *unreached = n_ - reached;
    return total;
  }
  run(g, src, /*forward=*/true, [&](int level, const std::uint64_t* fresh) {
    int cnt = 0;
    for (int w = 0; w < words_; ++w) cnt += std::popcount(fresh[w]);
    total += static_cast<std::int64_t>(level) * cnt;
    reached += cnt;
  });
  *unreached = n_ - reached;
  return total;
}

int BitBfs::reach_count(const DiGraph& g, int src, bool forward) {
  int reached = 1;
  if (words_ == 1) {
    const std::uint64_t* rows = forward ? g.out_bits(0) : g.in_bits(0);
    std::uint64_t visited = 1ULL << src;
    std::uint64_t acc = rows[src];
    for (;;) {
      std::uint64_t fresh = acc & ~visited;
      if (!fresh) break;
      visited |= fresh;
      acc = 0;
      do {
        acc |= rows[std::countr_zero(fresh)];
        fresh &= fresh - 1;
      } while (fresh);
    }
    return std::popcount(visited);
  }
  run(g, src, forward, [&](int, const std::uint64_t* fresh) {
    for (int w = 0; w < words_; ++w) reached += std::popcount(fresh[w]);
  });
  return reached;
}

// --- Free functions -------------------------------------------------------

std::vector<int> bfs_distances(const DiGraph& g, int src) {
  const int n = g.num_nodes();
  std::vector<int> dist(n, kUnreachable);
  if (n == 0) return dist;
  BitBfs bfs(n);
  bfs.distances(g, src, dist.data());
  return dist;
}

std::vector<int> bfs_distances_scalar(const DiGraph& g, int src) {
  const int n = g.num_nodes();
  std::vector<int> dist(n, kUnreachable);
  std::vector<int> queue;
  queue.reserve(n);
  dist[src] = 0;
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    const int du = dist[u];
    for (int v : g.out_neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = du + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

util::Matrix<int> apsp_bfs(const DiGraph& g) {
  const int n = g.num_nodes();
  util::Matrix<int> d(n, n, 0);
  BitBfs bfs(n);
  for (int s = 0; s < n; ++s) bfs.distances(g, s, &d(s, 0));
  return d;
}

util::Matrix<int> apsp_bfs_scalar(const DiGraph& g) {
  const int n = g.num_nodes();
  util::Matrix<int> d(n, n, 0);
  for (int s = 0; s < n; ++s) {
    const auto row = bfs_distances_scalar(g, s);
    for (int t = 0; t < n; ++t) d(s, t) = row[t];
  }
  return d;
}

util::Matrix<int> apsp_floyd_warshall(const DiGraph& g) {
  const int n = g.num_nodes();
  util::Matrix<int> d(n, n, kUnreachable);
  for (int i = 0; i < n; ++i) d(i, i) = 0;
  for (const auto& [i, j] : g.edges()) d(i, j) = 1;
  for (int k = 0; k < n; ++k)
    for (int i = 0; i < n; ++i) {
      const int dik = d(i, k);
      if (dik >= kUnreachable) continue;
      for (int j = 0; j < n; ++j) {
        const int via = dik + d(k, j);
        if (via < d(i, j)) d(i, j) = via;
      }
    }
  return d;
}

std::int64_t total_hops(const util::Matrix<int>& dist) {
  const std::size_t n = dist.rows();
  std::int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      total += dist(i, j);
    }
  return total;
}

double average_hops(const util::Matrix<int>& dist) {
  const auto n = static_cast<std::int64_t>(dist.rows());
  if (n < 2) return 0.0;
  return static_cast<double>(total_hops(dist)) / static_cast<double>(n * (n - 1));
}

double average_hops(const DiGraph& g) { return average_hops(apsp_bfs(g)); }

int diameter(const util::Matrix<int>& dist) {
  const std::size_t n = dist.rows();
  int d = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) d = std::max(d, dist(i, j));
  return d;
}

int diameter(const DiGraph& g) { return diameter(apsp_bfs(g)); }

bool strongly_connected(const DiGraph& g) {
  const int n = g.num_nodes();
  if (n == 0) return true;
  // Forward reachability over out-rows, backward over in-rows: no reversed()
  // graph materialization.
  BitBfs bfs(n);
  if (bfs.reach_count(g, 0, /*forward=*/true) < n) return false;
  return bfs.reach_count(g, 0, /*forward=*/false) == n;
}

double weighted_hops(const util::Matrix<int>& dist, const util::Matrix<double>& weight) {
  assert(dist.rows() == weight.rows() && dist.cols() == weight.cols());
  const std::size_t n = dist.rows();
  double total = 0.0, wsum = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double w = weight(i, j);
      if (w <= 0.0) continue;
      total += w * dist(i, j);
      wsum += w;
    }
  return wsum > 0.0 ? total / wsum : 0.0;
}

}  // namespace netsmith::topo
