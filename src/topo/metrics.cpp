#include "topo/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace netsmith::topo {

std::vector<int> bfs_distances(const DiGraph& g, int src) {
  const int n = g.num_nodes();
  std::vector<int> dist(n, kUnreachable);
  std::vector<int> queue;
  queue.reserve(n);
  dist[src] = 0;
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    const int du = dist[u];
    for (int v : g.out_neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = du + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

util::Matrix<int> apsp_bfs(const DiGraph& g) {
  const int n = g.num_nodes();
  util::Matrix<int> d(n, n, 0);
  for (int s = 0; s < n; ++s) {
    const auto row = bfs_distances(g, s);
    for (int t = 0; t < n; ++t) d(s, t) = row[t];
  }
  return d;
}

util::Matrix<int> apsp_floyd_warshall(const DiGraph& g) {
  const int n = g.num_nodes();
  util::Matrix<int> d(n, n, kUnreachable);
  for (int i = 0; i < n; ++i) d(i, i) = 0;
  for (const auto& [i, j] : g.edges()) d(i, j) = 1;
  for (int k = 0; k < n; ++k)
    for (int i = 0; i < n; ++i) {
      const int dik = d(i, k);
      if (dik >= kUnreachable) continue;
      for (int j = 0; j < n; ++j) {
        const int via = dik + d(k, j);
        if (via < d(i, j)) d(i, j) = via;
      }
    }
  return d;
}

std::int64_t total_hops(const util::Matrix<int>& dist) {
  const std::size_t n = dist.rows();
  std::int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      total += dist(i, j);
    }
  return total;
}

double average_hops(const util::Matrix<int>& dist) {
  const auto n = static_cast<std::int64_t>(dist.rows());
  if (n < 2) return 0.0;
  return static_cast<double>(total_hops(dist)) / static_cast<double>(n * (n - 1));
}

double average_hops(const DiGraph& g) { return average_hops(apsp_bfs(g)); }

int diameter(const util::Matrix<int>& dist) {
  const std::size_t n = dist.rows();
  int d = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) d = std::max(d, dist(i, j));
  return d;
}

int diameter(const DiGraph& g) { return diameter(apsp_bfs(g)); }

bool strongly_connected(const DiGraph& g) {
  const int n = g.num_nodes();
  if (n == 0) return true;
  auto reaches_all = [n](const std::vector<int>& dist) {
    return std::all_of(dist.begin(), dist.end(),
                       [](int d) { return d < kUnreachable; });
  };
  if (!reaches_all(bfs_distances(g, 0))) return false;
  return reaches_all(bfs_distances(g.reversed(), 0));
}

double weighted_hops(const util::Matrix<int>& dist, const util::Matrix<double>& weight) {
  assert(dist.rows() == weight.rows() && dist.cols() == weight.cols());
  const std::size_t n = dist.rows();
  double total = 0.0, wsum = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double w = weight(i, j);
      if (w <= 0.0) continue;
      total += w * dist(i, j);
      wsum += w;
    }
  return wsum > 0.0 ? total / wsum : 0.0;
}

}  // namespace netsmith::topo
