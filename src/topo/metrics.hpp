#pragma once
// Graph distance metrics: the latency-side quantities NetSmith optimizes.
// Average hop count under uniform all-to-all traffic (paper SII-C) and the
// network diameter (constraint C8).
//
// The default BFS/APSP kernels are word-parallel: a frontier is a packed
// bitset of ceil(n/64) uint64 words and one expansion step is
// `next |= out_bits(u)` per frontier node followed by a masked merge, so at
// paper scale (n <= 64) the whole frontier lives in one machine word. The
// scalar queue-based kernels are kept both as the oracle for property tests
// and for head-to-head benchmarking (bench/micro_kernels.cpp,
// bench/perf_report.cpp).

#include <cstdint>
#include <limits>
#include <vector>

#include "topo/graph.hpp"
#include "util/matrix.hpp"

namespace netsmith::topo {

inline constexpr int kUnreachable = std::numeric_limits<int>::max() / 4;

// Single-source BFS hop distances; unreachable nodes get kUnreachable.
// Word-parallel frontier expansion over the graph's adjacency bit rows.
std::vector<int> bfs_distances(const DiGraph& g, int src);

// Scalar queue-based reference implementation (test oracle / benchmarks).
std::vector<int> bfs_distances_scalar(const DiGraph& g, int src);

// All-pairs shortest hop distances via n word-parallel BFS traversals.
util::Matrix<int> apsp_bfs(const DiGraph& g);

// Scalar reference APSP (n queue-based BFS traversals, O(n*(n+m))).
util::Matrix<int> apsp_bfs_scalar(const DiGraph& g);

// All-pairs shortest hop distances via Floyd-Warshall; used as an
// independent oracle in property tests.
util::Matrix<int> apsp_floyd_warshall(const DiGraph& g);

// Sum of D(s,d) over all ordered pairs s != d (objective O1 in Table I).
// Returns a kUnreachable-scaled huge value if the graph is not strongly
// connected, so disconnected candidates always lose.
std::int64_t total_hops(const util::Matrix<int>& dist);

// total_hops / (n*(n-1)); matches Table II "Avg. Hops".
double average_hops(const DiGraph& g);
double average_hops(const util::Matrix<int>& dist);

// Max finite distance; kUnreachable if disconnected.
int diameter(const util::Matrix<int>& dist);
int diameter(const DiGraph& g);

bool strongly_connected(const DiGraph& g);

// Traffic-weighted average hops: sum_{s,d} w(s,d) * D(s,d) / sum w. Used for
// pattern-optimized synthesis (paper SV-E, shuffle).
double weighted_hops(const util::Matrix<int>& dist, const util::Matrix<double>& weight);

// Reusable word-parallel BFS engine: allocates the frontier/visited scratch
// once and amortizes it across calls. This is what the annealer's objective
// engine drives on every move; the free functions above wrap it.
class BitBfs {
 public:
  explicit BitBfs(int n);

  // Fills dist[0..n) with hop counts from src (kUnreachable when unreached).
  void distances(const DiGraph& g, int src, int* dist);

  // Sum of hop counts from src to every reached node, without materializing
  // per-node distances; *unreached gets the count of unreachable targets
  // (excluding src itself).
  std::int64_t sum_from(const DiGraph& g, int src, int* unreached);

  // Number of nodes reachable from src (including src), following out-edges
  // when forward, in-edges otherwise.
  int reach_count(const DiGraph& g, int src, bool forward);

 private:
  template <class PerLevel>
  void run(const DiGraph& g, int src, bool forward, PerLevel&& per_level);

  int n_ = 0;
  int words_ = 0;
  std::vector<std::uint64_t> frontier_, next_, visited_;
};

}  // namespace netsmith::topo
