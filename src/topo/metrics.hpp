#pragma once
// Graph distance metrics: the latency-side quantities NetSmith optimizes.
// Average hop count under uniform all-to-all traffic (paper SII-C) and the
// network diameter (constraint C8).

#include <cstdint>
#include <limits>
#include <vector>

#include "topo/graph.hpp"
#include "util/matrix.hpp"

namespace netsmith::topo {

inline constexpr int kUnreachable = std::numeric_limits<int>::max() / 4;

// Single-source BFS hop distances; unreachable nodes get kUnreachable.
std::vector<int> bfs_distances(const DiGraph& g, int src);

// All-pairs shortest hop distances via n BFS traversals (O(n*(n+m))).
util::Matrix<int> apsp_bfs(const DiGraph& g);

// All-pairs shortest hop distances via Floyd-Warshall; used as an
// independent oracle in property tests.
util::Matrix<int> apsp_floyd_warshall(const DiGraph& g);

// Sum of D(s,d) over all ordered pairs s != d (objective O1 in Table I).
// Returns a kUnreachable-scaled huge value if the graph is not strongly
// connected, so disconnected candidates always lose.
std::int64_t total_hops(const util::Matrix<int>& dist);

// total_hops / (n*(n-1)); matches Table II "Avg. Hops".
double average_hops(const DiGraph& g);
double average_hops(const util::Matrix<int>& dist);

// Max finite distance; kUnreachable if disconnected.
int diameter(const util::Matrix<int>& dist);
int diameter(const DiGraph& g);

bool strongly_connected(const DiGraph& g);

// Traffic-weighted average hops: sum_{s,d} w(s,d) * D(s,d) / sum w. Used for
// pattern-optimized synthesis (paper SV-E, shuffle).
double weighted_hops(const util::Matrix<int>& dist, const util::Matrix<double>& weight);

}  // namespace netsmith::topo
