#include "topo/graph.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace netsmith::topo {

DiGraph::DiGraph(int n)
    : n_(n),
      words_((n + 63) / 64),
      adj_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0),
      out_bits_(static_cast<std::size_t>(n) * words_, 0),
      in_bits_(static_cast<std::size_t>(n) * words_, 0),
      out_(n),
      in_(n) {
  assert(n >= 0);
}

bool DiGraph::add_edge(int i, int j) {
  assert(i >= 0 && i < n_ && j >= 0 && j < n_);
  if (i == j || adj_[idx(i, j)]) return false;
  adj_[idx(i, j)] = 1;
  out_bits_[bidx(i, j)] |= 1ULL << (j & 63);
  in_bits_[bidx(j, i)] |= 1ULL << (i & 63);
  out_[i].push_back(j);
  in_[j].push_back(i);
  ++edges_;
  return true;
}

bool DiGraph::remove_edge(int i, int j) {
  assert(i >= 0 && i < n_ && j >= 0 && j < n_);
  if (!adj_[idx(i, j)]) return false;
  adj_[idx(i, j)] = 0;
  out_bits_[bidx(i, j)] &= ~(1ULL << (j & 63));
  in_bits_[bidx(j, i)] &= ~(1ULL << (i & 63));
  auto& o = out_[i];
  o.erase(std::find(o.begin(), o.end(), j));
  auto& in = in_[j];
  in.erase(std::find(in.begin(), in.end(), i));
  --edges_;
  return true;
}

int DiGraph::add_duplex(int i, int j) {
  return static_cast<int>(add_edge(i, j)) + static_cast<int>(add_edge(j, i));
}

std::vector<std::pair<int, int>> DiGraph::edges() const {
  std::vector<std::pair<int, int>> e;
  e.reserve(static_cast<std::size_t>(edges_));
  for (int i = 0; i < n_; ++i)
    for (int j = 0; j < n_; ++j)
      if (adj_[idx(i, j)]) e.emplace_back(i, j);
  return e;
}

bool DiGraph::is_symmetric() const {
  for (int i = 0; i < n_; ++i)
    for (int j = i + 1; j < n_; ++j)
      if (adj_[idx(i, j)] != adj_[idx(j, i)]) return false;
  return true;
}

DiGraph DiGraph::reversed() const {
  DiGraph r(n_);
  for (int i = 0; i < n_; ++i)
    for (int j : out_[i]) r.add_edge(j, i);
  return r;
}

std::string DiGraph::to_string() const {
  std::ostringstream os;
  os << n_ << ':';
  bool first = true;
  for (const auto& [i, j] : edges()) {
    if (!first) os << ',';
    first = false;
    os << i << '>' << j;
  }
  return os.str();
}

DiGraph DiGraph::from_string(const std::string& s) {
  const auto colon = s.find(':');
  if (colon == std::string::npos) throw std::invalid_argument("DiGraph: missing ':'");
  const int n = std::stoi(s.substr(0, colon));
  DiGraph g(n);
  std::size_t pos = colon + 1;
  while (pos < s.size()) {
    auto gt = s.find('>', pos);
    if (gt == std::string::npos) throw std::invalid_argument("DiGraph: missing '>'");
    auto comma = s.find(',', gt);
    if (comma == std::string::npos) comma = s.size();
    const int i = std::stoi(s.substr(pos, gt - pos));
    const int j = std::stoi(s.substr(gt + 1, comma - gt - 1));
    g.add_edge(i, j);
    pos = comma + 1;
  }
  return g;
}

}  // namespace netsmith::topo
