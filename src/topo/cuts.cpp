#include "topo/cuts.hpp"

#include <omp.h>

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace netsmith::topo {

namespace {

double ratio(int cross_uv, int cross_vu, int u_size, int n) {
  const int v_size = n - u_size;
  const int cap = std::min(cross_uv, cross_vu);
  return static_cast<double>(cap) /
         (static_cast<double>(u_size) * static_cast<double>(v_size));
}

// Counts cross edges for an explicit membership vector.
void count_cross(const DiGraph& g, const std::vector<std::uint8_t>& in_u,
                 int* cross_uv, int* cross_vu) {
  int uv = 0, vu = 0;
  const int n = g.num_nodes();
  for (int i = 0; i < n; ++i) {
    for (int j : g.out_neighbors(i)) {
      if (in_u[i] && !in_u[j]) ++uv;
      else if (!in_u[i] && in_u[j]) ++vu;
    }
  }
  *cross_uv = uv;
  *cross_vu = vu;
}

Cut make_cut(const DiGraph& g, std::uint64_t mask) {
  const int n = g.num_nodes();
  std::vector<std::uint8_t> in_u(n, 0);
  int usz = 0;
  for (int i = 0; i < n; ++i)
    if (mask >> i & 1) {
      in_u[i] = 1;
      ++usz;
    }
  Cut c;
  c.u_mask = mask;
  c.u_size = usz;
  count_cross(g, in_u, &c.cross_uv, &c.cross_vu);
  c.bandwidth = (usz == 0 || usz == n)
                    ? std::numeric_limits<double>::infinity()
                    : ratio(c.cross_uv, c.cross_vu, usz, n);
  return c;
}

// Flips node b's membership and updates cross counts in O(deg(b)).
void flip_node(const DiGraph& g, std::vector<std::uint8_t>& in_u, int b,
               int* cross_uv, int* cross_vu, int* u_size) {
  const bool entering_u = !in_u[b];
  // Remove b's current contribution, then re-add with flipped membership.
  for (int x : g.out_neighbors(b)) {
    // Edge b -> x.
    if (in_u[b] && !in_u[x]) --*cross_uv;
    else if (!in_u[b] && in_u[x]) --*cross_vu;
  }
  for (int x : g.in_neighbors(b)) {
    // Edge x -> b.
    if (in_u[x] && !in_u[b]) --*cross_uv;
    else if (!in_u[x] && in_u[b]) --*cross_vu;
  }
  in_u[b] = entering_u ? 1 : 0;
  *u_size += entering_u ? 1 : -1;
  for (int x : g.out_neighbors(b)) {
    if (in_u[b] && !in_u[x]) ++*cross_uv;
    else if (!in_u[b] && in_u[x]) ++*cross_vu;
  }
  for (int x : g.in_neighbors(b)) {
    if (in_u[x] && !in_u[b]) ++*cross_uv;
    else if (!in_u[x] && in_u[b]) ++*cross_vu;
  }
}

}  // namespace

Cut evaluate_cut(const DiGraph& g, std::uint64_t u_mask) {
  return make_cut(g, u_mask);
}

Cut sparsest_cut_exact(const DiGraph& g) {
  const int n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("sparsest_cut_exact: n < 2");
  if (n > 26) throw std::invalid_argument("sparsest_cut_exact: n > 26");
  // Fix node n-1 in V so every unordered partition is visited exactly once.
  const std::uint64_t total = 1ULL << (n - 1);

  Cut best;
  best.bandwidth = std::numeric_limits<double>::infinity();

#pragma omp parallel
  {
    Cut local_best;
    local_best.bandwidth = std::numeric_limits<double>::infinity();

    const int threads = omp_get_num_threads();
    const int tid = omp_get_thread_num();
    const std::uint64_t chunk = (total + threads - 1) / threads;
    const std::uint64_t lo = std::max<std::uint64_t>(1, tid * chunk);
    const std::uint64_t hi = std::min(total, (tid + 1) * chunk);

    if (lo < hi) {
      // Gray-code walk: gray(i) and gray(i+1) differ in bit ctz(i+1).
      std::uint64_t gray = lo ^ (lo >> 1);
      std::vector<std::uint8_t> in_u(n, 0);
      int usz = 0, uv = 0, vu = 0;
      for (int b = 0; b < n - 1; ++b)
        if (gray >> b & 1) {
          in_u[b] = 1;
          ++usz;
        }
      count_cross(g, in_u, &uv, &vu);

      for (std::uint64_t i = lo;; ++i) {
        if (usz > 0) {
          const double bw = ratio(uv, vu, usz, n);
          if (bw < local_best.bandwidth) {
            local_best.bandwidth = bw;
            local_best.u_mask = gray;
            local_best.u_size = usz;
            local_best.cross_uv = uv;
            local_best.cross_vu = vu;
          }
        }
        if (i + 1 >= hi) break;
        const int flip = std::countr_zero(i + 1);
        gray ^= 1ULL << flip;
        flip_node(g, in_u, flip, &uv, &vu, &usz);
      }
    }

#pragma omp critical
    {
      if (local_best.bandwidth < best.bandwidth ||
          (local_best.bandwidth == best.bandwidth &&
           local_best.u_mask < best.u_mask))
        best = local_best;
    }
  }
  return best;
}

Cut sparsest_cut_heuristic(const DiGraph& g, util::Rng& rng, int restarts) {
  const int n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("sparsest_cut_heuristic: n < 2");
  Cut best;
  best.bandwidth = std::numeric_limits<double>::infinity();

  for (int r = 0; r < restarts; ++r) {
    std::vector<std::uint8_t> in_u(n, 0);
    int usz = 0;
    // Random initial subset of random target size in [1, n-1].
    const int target = static_cast<int>(rng.uniform_int(1, n - 1));
    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) perm[i] = i;
    rng.shuffle(perm);
    for (int i = 0; i < target; ++i) {
      in_u[perm[i]] = 1;
      ++usz;
    }
    int uv = 0, vu = 0;
    count_cross(g, in_u, &uv, &vu);

    // Steepest single-node moves until a local minimum of the ratio.
    bool improved = true;
    while (improved) {
      improved = false;
      double cur = ratio(uv, vu, usz, n);
      int best_node = -1;
      double best_bw = cur;
      for (int b = 0; b < n; ++b) {
        // Don't empty either side.
        if ((in_u[b] && usz == 1) || (!in_u[b] && usz == n - 1)) continue;
        flip_node(g, in_u, b, &uv, &vu, &usz);
        const double bw = ratio(uv, vu, usz, n);
        if (bw < best_bw - 1e-12) {
          best_bw = bw;
          best_node = b;
        }
        flip_node(g, in_u, b, &uv, &vu, &usz);  // undo
      }
      if (best_node >= 0) {
        flip_node(g, in_u, best_node, &uv, &vu, &usz);
        improved = true;
      }
    }

    const double bw = ratio(uv, vu, usz, n);
    if (bw < best.bandwidth) {
      std::uint64_t mask = 0;
      for (int i = 0; i < n; ++i)
        if (in_u[i]) mask |= 1ULL << i;
      best.bandwidth = bw;
      best.u_mask = mask;
      best.u_size = usz;
      best.cross_uv = uv;
      best.cross_vu = vu;
    }
  }
  return best;
}

Cut sparsest_cut(const DiGraph& g) {
  if (g.num_nodes() <= 22) return sparsest_cut_exact(g);
  util::Rng rng(0xC0FFEE);
  return sparsest_cut_heuristic(g, rng, 128);
}

std::vector<Cut> sparsest_cuts_topk(const DiGraph& g, int k) {
  const int n = g.num_nodes();
  if (n > 26) throw std::invalid_argument("sparsest_cuts_topk: n > 26");
  const std::uint64_t total = 1ULL << (n - 1);

  // Per-thread top-k kept as a sorted vector (k is small).
  std::vector<std::vector<Cut>> partial;
#pragma omp parallel
  {
#pragma omp single
    partial.resize(omp_get_num_threads());
    auto& local = partial[omp_get_thread_num()];

    const int threads = omp_get_num_threads();
    const int tid = omp_get_thread_num();
    const std::uint64_t chunk = (total + threads - 1) / threads;
    const std::uint64_t lo = std::max<std::uint64_t>(1, tid * chunk);
    const std::uint64_t hi = std::min(total, (tid + 1) * chunk);

    if (lo < hi) {
      std::uint64_t gray = lo ^ (lo >> 1);
      std::vector<std::uint8_t> in_u(n, 0);
      int usz = 0, uv = 0, vu = 0;
      for (int b = 0; b < n - 1; ++b)
        if (gray >> b & 1) {
          in_u[b] = 1;
          ++usz;
        }
      count_cross(g, in_u, &uv, &vu);

      auto consider = [&](std::uint64_t mask, int s, int cuv, int cvu) {
        if (s == 0) return;
        const double bw = ratio(cuv, cvu, s, n);
        if (static_cast<int>(local.size()) == k && bw >= local.back().bandwidth)
          return;
        Cut c{mask, s, cuv, cvu, bw};
        auto it = std::lower_bound(
            local.begin(), local.end(), c,
            [](const Cut& a, const Cut& b) { return a.bandwidth < b.bandwidth; });
        local.insert(it, c);
        if (static_cast<int>(local.size()) > k) local.pop_back();
      };

      for (std::uint64_t i = lo;; ++i) {
        consider(gray, usz, uv, vu);
        if (i + 1 >= hi) break;
        const int flip = std::countr_zero(i + 1);
        gray ^= 1ULL << flip;
        flip_node(g, in_u, flip, &uv, &vu, &usz);
      }
    }
  }

  std::vector<Cut> merged;
  for (auto& p : partial) merged.insert(merged.end(), p.begin(), p.end());
  std::sort(merged.begin(), merged.end(), [](const Cut& a, const Cut& b) {
    if (a.bandwidth != b.bandwidth) return a.bandwidth < b.bandwidth;
    return a.u_mask < b.u_mask;
  });
  if (static_cast<int>(merged.size()) > k) merged.resize(k);
  return merged;
}

int bisection_bandwidth(const DiGraph& g) {
  const int n = g.num_nodes();
  if (n < 2) return 0;
  const int half = n / 2;

  if (n <= 24) {
    // Enumerate subsets of size `half` with node n-1 fixed in V (for even n
    // this visits each unordered bisection once; for odd n, U is the smaller
    // side).
    int best = std::numeric_limits<int>::max();
    std::vector<std::uint8_t> in_u(n, 0);
    // Iterate combinations of {0..n-2} choose half via bit tricks.
    std::uint64_t comb = (1ULL << half) - 1;
    const std::uint64_t limit = 1ULL << (n - 1);
    while (comb < limit) {
      std::fill(in_u.begin(), in_u.end(), 0);
      for (int i = 0; i < n - 1; ++i)
        if (comb >> i & 1) in_u[i] = 1;
      int uv = 0, vu = 0;
      count_cross(g, in_u, &uv, &vu);
      best = std::min(best, std::min(uv, vu));
      // Gosper's hack: next combination with the same popcount.
      const std::uint64_t c = comb & (~comb + 1);
      const std::uint64_t r = comb + c;
      comb = (((r ^ comb) >> 2) / c) | r;
    }
    return best;
  }

  // Heuristic: random balanced partitions + pair-swap refinement.
  util::Rng rng(0xB15EC7);
  int best = std::numeric_limits<int>::max();
  for (int restart = 0; restart < 96; ++restart) {
    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) perm[i] = i;
    rng.shuffle(perm);
    std::vector<std::uint8_t> in_u(n, 0);
    for (int i = 0; i < half; ++i) in_u[perm[i]] = 1;
    int uv = 0, vu = 0;
    count_cross(g, in_u, &uv, &vu);
    bool improved = true;
    while (improved) {
      improved = false;
      int usz = half;
      for (int a = 0; a < n && !improved; ++a) {
        if (!in_u[a]) continue;
        for (int b = 0; b < n && !improved; ++b) {
          if (in_u[b]) continue;
          const int before = std::min(uv, vu);
          flip_node(g, in_u, a, &uv, &vu, &usz);
          flip_node(g, in_u, b, &uv, &vu, &usz);
          if (std::min(uv, vu) < before) {
            improved = true;
          } else {
            flip_node(g, in_u, b, &uv, &vu, &usz);
            flip_node(g, in_u, a, &uv, &vu, &usz);
          }
        }
      }
    }
    best = std::min(best, std::min(uv, vu));
  }
  return best;
}

}  // namespace netsmith::topo
