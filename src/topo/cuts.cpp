#include "topo/cuts.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace netsmith::topo {

namespace {

#if !defined(_OPENMP)
// Serial fallbacks so the enumeration loops below compile unchanged when
// OpenMP is unavailable (the pragmas are then no-ops).
int omp_get_num_threads() { return 1; }
int omp_get_thread_num() { return 0; }
#endif

double ratio(int cross_uv, int cross_vu, int u_size, int n) {
  const int v_size = n - u_size;
  const int cap = std::min(cross_uv, cross_vu);
  return static_cast<double>(cap) /
         (static_cast<double>(u_size) * static_cast<double>(v_size));
}

// Word-parallel cross-edge count: for each node one AND + popcount against
// its out-adjacency bit row. O(n) popcounts instead of O(m) branches.
void count_cross(const DiGraph& g, std::uint64_t mask, int* cross_uv,
                 int* cross_vu) {
  int uv = 0, vu = 0;
  const int n = g.num_nodes();
  for (int i = 0; i < n; ++i) {
    const std::uint64_t row = g.out_bits(i)[0];
    if (mask >> i & 1)
      uv += std::popcount(row & ~mask);
    else
      vu += std::popcount(row & mask);
  }
  *cross_uv = uv;
  *cross_vu = vu;
}

// Flips node b's membership and updates cross counts with four popcounts
// over b's own bit rows (out- and in-adjacency vs. the current mask).
void flip_node(const DiGraph& g, std::uint64_t& mask, int b, int* cross_uv,
               int* cross_vu, int* u_size) {
  const std::uint64_t out = g.out_bits(b)[0];
  const std::uint64_t in = g.in_bits(b)[0];
  // Self-loops are impossible, so bit b never appears in b's own rows and
  // the popcounts below are unaffected by b's side of the mask.
  if (mask >> b & 1) {
    *cross_uv -= std::popcount(out & ~mask);
    *cross_vu -= std::popcount(in & ~mask);
    mask &= ~(1ULL << b);
    --*u_size;
    *cross_vu += std::popcount(out & mask);
    *cross_uv += std::popcount(in & mask);
  } else {
    *cross_vu -= std::popcount(out & mask);
    *cross_uv -= std::popcount(in & mask);
    mask |= 1ULL << b;
    ++*u_size;
    *cross_uv += std::popcount(out & ~mask);
    *cross_vu += std::popcount(in & ~mask);
  }
}

// Clears mask bits at or above n (callers may pass unnormalized masks).
std::uint64_t clip_mask(std::uint64_t mask, int n) {
  return n >= 64 ? mask : mask & ((1ULL << n) - 1);
}

Cut make_cut(const DiGraph& g, std::uint64_t mask) {
  const int n = g.num_nodes();
  mask = clip_mask(mask, n);
  const int usz = std::popcount(mask);
  Cut c;
  c.u_mask = mask;
  c.u_size = usz;
  count_cross(g, mask, &c.cross_uv, &c.cross_vu);
  c.bandwidth = (usz == 0 || usz == n)
                    ? std::numeric_limits<double>::infinity()
                    : ratio(c.cross_uv, c.cross_vu, usz, n);
  return c;
}

void require_mask_width(const DiGraph& g, const char* who) {
  if (g.num_nodes() > 64)
    throw std::invalid_argument(std::string(who) +
                                ": n > 64 exceeds the uint64 partition mask");
}

// Scalar membership-vector variants for graphs wider than one mask word
// (bisection_bandwidth supports arbitrary n; masks cap the other APIs).
void count_cross_scalar(const DiGraph& g, const std::vector<std::uint8_t>& in_u,
                        int* cross_uv, int* cross_vu) {
  int uv = 0, vu = 0;
  const int n = g.num_nodes();
  for (int i = 0; i < n; ++i) {
    for (int j : g.out_neighbors(i)) {
      if (in_u[i] && !in_u[j]) ++uv;
      else if (!in_u[i] && in_u[j]) ++vu;
    }
  }
  *cross_uv = uv;
  *cross_vu = vu;
}

void flip_node_scalar(const DiGraph& g, std::vector<std::uint8_t>& in_u, int b,
                      int* cross_uv, int* cross_vu, int* u_size) {
  const bool entering_u = !in_u[b];
  // Remove b's current contribution, then re-add with flipped membership.
  for (int x : g.out_neighbors(b)) {
    if (in_u[b] && !in_u[x]) --*cross_uv;
    else if (!in_u[b] && in_u[x]) --*cross_vu;
  }
  for (int x : g.in_neighbors(b)) {
    if (in_u[x] && !in_u[b]) --*cross_uv;
    else if (!in_u[x] && in_u[b]) --*cross_vu;
  }
  in_u[b] = entering_u ? 1 : 0;
  *u_size += entering_u ? 1 : -1;
  for (int x : g.out_neighbors(b)) {
    if (in_u[b] && !in_u[x]) ++*cross_uv;
    else if (!in_u[b] && in_u[x]) ++*cross_vu;
  }
  for (int x : g.in_neighbors(b)) {
    if (in_u[x] && !in_u[b]) ++*cross_uv;
    else if (!in_u[x] && in_u[b]) ++*cross_vu;
  }
}

// Heuristic bisection for n > 64: the pre-bitset implementation over a
// membership vector (no mask-width limit).
int bisection_heuristic_scalar(const DiGraph& g) {
  const int n = g.num_nodes();
  const int half = n / 2;
  util::Rng rng(0xB15EC7);
  int best = std::numeric_limits<int>::max();
  for (int restart = 0; restart < 96; ++restart) {
    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) perm[i] = i;
    rng.shuffle(perm);
    std::vector<std::uint8_t> in_u(n, 0);
    for (int i = 0; i < half; ++i) in_u[perm[i]] = 1;
    int uv = 0, vu = 0;
    count_cross_scalar(g, in_u, &uv, &vu);
    bool improved = true;
    while (improved) {
      improved = false;
      int usz = half;
      for (int a = 0; a < n && !improved; ++a) {
        if (!in_u[a]) continue;
        for (int b = 0; b < n && !improved; ++b) {
          if (in_u[b]) continue;
          const int before = std::min(uv, vu);
          flip_node_scalar(g, in_u, a, &uv, &vu, &usz);
          flip_node_scalar(g, in_u, b, &uv, &vu, &usz);
          if (std::min(uv, vu) < before) {
            improved = true;
          } else {
            flip_node_scalar(g, in_u, b, &uv, &vu, &usz);
            flip_node_scalar(g, in_u, a, &uv, &vu, &usz);
          }
        }
      }
    }
    best = std::min(best, std::min(uv, vu));
  }
  return best;
}

}  // namespace

std::pair<int, int> cross_edge_counts(const DiGraph& g, std::uint64_t u_mask) {
  require_mask_width(g, "cross_edge_counts");
  int uv = 0, vu = 0;
  count_cross(g, clip_mask(u_mask, g.num_nodes()), &uv, &vu);
  return {uv, vu};
}

Cut evaluate_cut(const DiGraph& g, std::uint64_t u_mask) {
  require_mask_width(g, "evaluate_cut");
  return make_cut(g, u_mask);
}

Cut sparsest_cut_exact(const DiGraph& g) {
  const int n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("sparsest_cut_exact: n < 2");
  if (n > 26) throw std::invalid_argument("sparsest_cut_exact: n > 26");
  // Fix node n-1 in V so every unordered partition is visited exactly once.
  const std::uint64_t total = 1ULL << (n - 1);

  Cut best;
  best.bandwidth = std::numeric_limits<double>::infinity();

#pragma omp parallel
  {
    Cut local_best;
    local_best.bandwidth = std::numeric_limits<double>::infinity();

    const int threads = omp_get_num_threads();
    const int tid = omp_get_thread_num();
    const std::uint64_t chunk = (total + threads - 1) / threads;
    const std::uint64_t lo = std::max<std::uint64_t>(1, tid * chunk);
    const std::uint64_t hi = std::min(total, (tid + 1) * chunk);

    if (lo < hi) {
      // Gray-code walk: gray(i) and gray(i+1) differ in bit ctz(i+1).
      std::uint64_t gray = lo ^ (lo >> 1);
      std::uint64_t mask = gray;
      int usz = std::popcount(mask), uv = 0, vu = 0;
      count_cross(g, mask, &uv, &vu);

      for (std::uint64_t i = lo;; ++i) {
        if (usz > 0) {
          const double bw = ratio(uv, vu, usz, n);
          if (bw < local_best.bandwidth) {
            local_best.bandwidth = bw;
            local_best.u_mask = gray;
            local_best.u_size = usz;
            local_best.cross_uv = uv;
            local_best.cross_vu = vu;
          }
        }
        if (i + 1 >= hi) break;
        const int flip = std::countr_zero(i + 1);
        gray ^= 1ULL << flip;
        flip_node(g, mask, flip, &uv, &vu, &usz);
      }
    }

#pragma omp critical
    {
      if (local_best.bandwidth < best.bandwidth ||
          (local_best.bandwidth == best.bandwidth &&
           local_best.u_mask < best.u_mask))
        best = local_best;
    }
  }
  return best;
}

Cut sparsest_cut_heuristic(const DiGraph& g, util::Rng& rng, int restarts) {
  const int n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("sparsest_cut_heuristic: n < 2");
  require_mask_width(g, "sparsest_cut_heuristic");
  Cut best;
  best.bandwidth = std::numeric_limits<double>::infinity();

  for (int r = 0; r < restarts; ++r) {
    std::uint64_t mask = 0;
    int usz = 0;
    // Random initial subset of random target size in [1, n-1].
    const int target = static_cast<int>(rng.uniform_int(1, n - 1));
    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) perm[i] = i;
    rng.shuffle(perm);
    for (int i = 0; i < target; ++i) {
      mask |= 1ULL << perm[i];
      ++usz;
    }
    int uv = 0, vu = 0;
    count_cross(g, mask, &uv, &vu);

    // Steepest single-node moves until a local minimum of the ratio.
    bool improved = true;
    while (improved) {
      improved = false;
      double cur = ratio(uv, vu, usz, n);
      int best_node = -1;
      double best_bw = cur;
      for (int b = 0; b < n; ++b) {
        const bool in_u = mask >> b & 1;
        // Don't empty either side.
        if ((in_u && usz == 1) || (!in_u && usz == n - 1)) continue;
        flip_node(g, mask, b, &uv, &vu, &usz);
        const double bw = ratio(uv, vu, usz, n);
        if (bw < best_bw - 1e-12) {
          best_bw = bw;
          best_node = b;
        }
        flip_node(g, mask, b, &uv, &vu, &usz);  // undo
      }
      if (best_node >= 0) {
        flip_node(g, mask, best_node, &uv, &vu, &usz);
        improved = true;
      }
    }

    const double bw = ratio(uv, vu, usz, n);
    if (bw < best.bandwidth) {
      best.bandwidth = bw;
      best.u_mask = mask;
      best.u_size = usz;
      best.cross_uv = uv;
      best.cross_vu = vu;
    }
  }
  return best;
}

Cut sparsest_cut(const DiGraph& g) {
  if (g.num_nodes() <= 22) return sparsest_cut_exact(g);
  util::Rng rng(0xC0FFEE);
  return sparsest_cut_heuristic(g, rng, 128);
}

std::vector<Cut> sparsest_cuts_topk(const DiGraph& g, int k) {
  const int n = g.num_nodes();
  if (n > 26) throw std::invalid_argument("sparsest_cuts_topk: n > 26");
  const std::uint64_t total = 1ULL << (n - 1);

  // Per-thread top-k kept as a sorted vector (k is small).
  std::vector<std::vector<Cut>> partial;
#pragma omp parallel
  {
#pragma omp single
    partial.resize(omp_get_num_threads());
    auto& local = partial[omp_get_thread_num()];

    const int threads = omp_get_num_threads();
    const int tid = omp_get_thread_num();
    const std::uint64_t chunk = (total + threads - 1) / threads;
    const std::uint64_t lo = std::max<std::uint64_t>(1, tid * chunk);
    const std::uint64_t hi = std::min(total, (tid + 1) * chunk);

    if (lo < hi) {
      std::uint64_t gray = lo ^ (lo >> 1);
      std::uint64_t mask = gray;
      int usz = std::popcount(mask), uv = 0, vu = 0;
      count_cross(g, mask, &uv, &vu);

      auto consider = [&](std::uint64_t m, int s, int cuv, int cvu) {
        if (s == 0) return;
        const double bw = ratio(cuv, cvu, s, n);
        if (static_cast<int>(local.size()) == k && bw >= local.back().bandwidth)
          return;
        Cut c{m, s, cuv, cvu, bw};
        auto it = std::lower_bound(
            local.begin(), local.end(), c,
            [](const Cut& a, const Cut& b) { return a.bandwidth < b.bandwidth; });
        local.insert(it, c);
        if (static_cast<int>(local.size()) > k) local.pop_back();
      };

      for (std::uint64_t i = lo;; ++i) {
        consider(gray, usz, uv, vu);
        if (i + 1 >= hi) break;
        const int flip = std::countr_zero(i + 1);
        gray ^= 1ULL << flip;
        flip_node(g, mask, flip, &uv, &vu, &usz);
      }
    }
  }

  std::vector<Cut> merged;
  for (auto& p : partial) merged.insert(merged.end(), p.begin(), p.end());
  std::sort(merged.begin(), merged.end(), [](const Cut& a, const Cut& b) {
    if (a.bandwidth != b.bandwidth) return a.bandwidth < b.bandwidth;
    return a.u_mask < b.u_mask;
  });
  if (static_cast<int>(merged.size()) > k) merged.resize(k);
  return merged;
}

int bisection_bandwidth(const DiGraph& g) {
  const int n = g.num_nodes();
  if (n < 2) return 0;
  // Wider than one mask word: scalar membership-vector heuristic (the
  // parametric baselines generate graphs at arbitrary router counts).
  if (n > 64) return bisection_heuristic_scalar(g);
  const int half = n / 2;

  if (n <= 24) {
    // Enumerate subsets of size `half` with node n-1 fixed in V (for even n
    // this visits each unordered bisection once; for odd n, U is the smaller
    // side).
    int best = std::numeric_limits<int>::max();
    // Iterate combinations of {0..n-2} choose half via bit tricks.
    std::uint64_t comb = (1ULL << half) - 1;
    const std::uint64_t limit = 1ULL << (n - 1);
    while (comb < limit) {
      int uv = 0, vu = 0;
      count_cross(g, comb, &uv, &vu);
      best = std::min(best, std::min(uv, vu));
      // Gosper's hack: next combination with the same popcount.
      const std::uint64_t c = comb & (~comb + 1);
      const std::uint64_t r = comb + c;
      comb = (((r ^ comb) >> 2) / c) | r;
    }
    return best;
  }

  // Heuristic: random balanced partitions + pair-swap refinement.
  util::Rng rng(0xB15EC7);
  int best = std::numeric_limits<int>::max();
  for (int restart = 0; restart < 96; ++restart) {
    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) perm[i] = i;
    rng.shuffle(perm);
    std::uint64_t mask = 0;
    for (int i = 0; i < half; ++i) mask |= 1ULL << perm[i];
    int uv = 0, vu = 0;
    count_cross(g, mask, &uv, &vu);
    bool improved = true;
    while (improved) {
      improved = false;
      int usz = half;
      for (int a = 0; a < n && !improved; ++a) {
        if (!(mask >> a & 1)) continue;
        for (int b = 0; b < n && !improved; ++b) {
          if (mask >> b & 1) continue;
          const int before = std::min(uv, vu);
          flip_node(g, mask, a, &uv, &vu, &usz);
          flip_node(g, mask, b, &uv, &vu, &usz);
          if (std::min(uv, vu) < before) {
            improved = true;
          } else {
            flip_node(g, mask, b, &uv, &vu, &usz);
            flip_node(g, mask, a, &uv, &vu, &usz);
          }
        }
      }
    }
    best = std::min(best, std::min(uv, vu));
  }
  return best;
}

}  // namespace netsmith::topo
