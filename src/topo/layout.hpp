#pragma once
// Physical router placement and link-length classes.
//
// Routers sit on a rows x cols grid on the interposer (paper Fig. 2(b): the
// 20-router NoI is 4 rows x 5 columns). Links are classified by the grid hops
// they span in X and Y, following the Kite taxonomy the paper adopts
// (Fig. 3): a "small" network may only use links spanning up to (1,1); a
// "medium" network additionally allows (2,0); a "large" network additionally
// allows (2,1). The class determines the fastest safe clock for the NoI
// (paper SIV: 3.6 / 3.0 / 2.7 GHz).

#include <string>
#include <utility>
#include <vector>

namespace netsmith::topo {

struct Layout {
  int rows = 0;
  int cols = 0;
  double pitch_mm = 2.0;  // grid pitch used by the wire delay/power models

  int n() const { return rows * cols; }
  int id(int r, int c) const { return r * cols + c; }
  int row(int v) const { return v / cols; }
  int col(int v) const { return v % cols; }

  static Layout noi_4x5() { return Layout{4, 5, 2.0}; }
  static Layout noi_6x5() { return Layout{6, 5, 2.0}; }
  static Layout noi_8x6() { return Layout{8, 6, 2.0}; }
};

enum class LinkClass { kSmall, kMedium, kLarge };

std::string to_string(LinkClass c);

// Highest safe NoI clock for the given longest-link class (paper SIV).
double clock_ghz(LinkClass c);

// True iff a link between routers i and j respects the class's span limit.
// Spans are cumulative: small = {(1,0),(0,1),(1,1)}, medium adds (2,0)/(0,2),
// large adds (2,1)/(1,2).
bool link_allowed(const Layout& layout, int i, int j, LinkClass c);

// All ordered router pairs (i, j), i != j, that the class permits. This is
// the valid-link set L of constraint C3 in the paper's Table I.
std::vector<std::pair<int, int>> valid_links(const Layout& layout, LinkClass c);

// Euclidean wire length in mm (used by delay verification and DSENT-lite).
double link_length_mm(const Layout& layout, int i, int j);

// Smallest class that admits every edge of the given span list; used to
// classify reconstructed expert topologies.
LinkClass classify_span(int dx, int dy);

}  // namespace netsmith::topo
