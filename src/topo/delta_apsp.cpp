#include "topo/delta_apsp.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace netsmith::topo {

void DeltaApsp::init(int n) {
  std::vector<int> all(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
  init(n, std::move(all));
}

void DeltaApsp::init(int n, std::vector<int> sources) {
  assert(n >= 0);
  const bool regrow =
      n != n_ || sources.size() != sources_.size();
  n_ = n;
  sources_ = std::move(sources);
  const std::size_t k = sources_.size();
  if (regrow) {
    dist_ = util::Matrix<int>(k, static_cast<std::size_t>(n_), kUnreachable);
    bfs_ = BitBfs(n_);
  }
  row_sum_.assign(k, 0);
  row_unreach_.assign(k, 0);
  mark_.assign(k, 0);
  epoch_ = 0;
  hop_sum_ = 0;
  unreachable_ = 0;
  journal_.clear();
  journal_rows_.clear();
  pending_ = false;
  resweeps_ = 0;
}

void DeltaApsp::sweep_row(const DiGraph& g, int r) {
  const int src = sources_[static_cast<std::size_t>(r)];
  int* row = &dist_(static_cast<std::size_t>(r), 0);
  bfs_.distances(g, src, row);
  std::int64_t sum = 0;
  int unreach = 0;
  for (int j = 0; j < n_; ++j) {
    if (j == src) continue;
    if (row[j] >= kUnreachable)
      ++unreach;
    else
      sum += row[j];
  }
  hop_sum_ += sum - row_sum_[static_cast<std::size_t>(r)];
  unreachable_ += unreach - row_unreach_[static_cast<std::size_t>(r)];
  row_sum_[static_cast<std::size_t>(r)] = sum;
  row_unreach_[static_cast<std::size_t>(r)] = unreach;
  ++resweeps_;
}

void DeltaApsp::rebuild(const DiGraph& g) {
  assert(g.num_nodes() == n_);
  journal_.clear();
  journal_rows_.clear();
  pending_ = false;
  const auto saved = resweeps_;  // rebuild sweeps are not "delta" work
  for (int r = 0; r < num_sources(); ++r) sweep_row(g, r);
  resweeps_ = saved;
}

int DeltaApsp::apply(const DiGraph& g, const EdgeChange* changes, int count) {
  assert(g.num_nodes() == n_);
  assert(!pending_ && "apply() without commit()/rollback()");
  if (count <= 0) return 0;

  // The surviving-predecessor filter for removals is only proven for the
  // move shapes the annealer emits: at most one removed edge, or a
  // symmetric twin pair {(u,v), (v,u)} (see header). Any other batch falls
  // back to the plain on-some-shortest-path rule.
  int removed = 0, r0 = -1, r1 = -1;
  for (int c = 0; c < count; ++c) {
    if (changes[c].added) continue;
    (removed == 0 ? r0 : r1) = c;
    ++removed;
  }
  const bool sharp =
      removed <= 1 ||
      (removed == 2 && changes[r0].u == changes[r1].v &&
       changes[r0].v == changes[r1].u);

  // Union of per-edit affected sets, detected against the pre-edit rows.
  ++epoch_;
  affected_.clear();
  const int k = num_sources();
  for (int c = 0; c < count; ++c) {
    const int u = changes[c].u, v = changes[c].v;
    const bool added = changes[c].added;
    const auto& preds = g.in_neighbors(v);  // post-edit: u already absent
    for (int r = 0; r < k; ++r) {
      if (mark_[static_cast<std::size_t>(r)] == epoch_) continue;
      const int du = dist_(static_cast<std::size_t>(r), u);
      const int dv = dist_(static_cast<std::size_t>(r), v);
      bool hit = added ? du + 1 < dv : du + 1 == dv;
      if (hit && !added && sharp) {
        for (const int p : preds) {
          if (dist_(static_cast<std::size_t>(r), p) + 1 == dv) {
            hit = false;  // equal-length surviving predecessor: row intact
            break;
          }
        }
      }
      if (hit) {
        mark_[static_cast<std::size_t>(r)] = epoch_;
        affected_.push_back(r);
      }
    }
  }
  if (affected_.empty()) {
    pending_ = true;  // an empty journal still satisfies commit()/rollback()
    return 0;
  }

  // Journal the rows about to be overwritten, then re-sweep them on the
  // post-edit graph.
  for (const int r : affected_) {
    journal_.push_back({r, row_sum_[static_cast<std::size_t>(r)],
                        row_unreach_[static_cast<std::size_t>(r)]});
    const int* row = &dist_(static_cast<std::size_t>(r), 0);
    journal_rows_.insert(journal_rows_.end(), row, row + n_);
    sweep_row(g, r);
  }
  pending_ = true;
  return static_cast<int>(affected_.size());
}

void DeltaApsp::commit() {
  assert(pending_);
  journal_.clear();
  journal_rows_.clear();
  pending_ = false;
}

void DeltaApsp::rollback() {
  assert(pending_);
  for (std::size_t i = journal_.size(); i-- > 0;) {
    const Saved& s = journal_[i];
    hop_sum_ += s.sum - row_sum_[static_cast<std::size_t>(s.row)];
    unreachable_ += s.unreach - row_unreach_[static_cast<std::size_t>(s.row)];
    row_sum_[static_cast<std::size_t>(s.row)] = s.sum;
    row_unreach_[static_cast<std::size_t>(s.row)] = s.unreach;
    std::memcpy(&dist_(static_cast<std::size_t>(s.row), 0),
                journal_rows_.data() + i * static_cast<std::size_t>(n_),
                static_cast<std::size_t>(n_) * sizeof(int));
  }
  journal_.clear();
  journal_rows_.clear();
  pending_ = false;
}

}  // namespace netsmith::topo
