#include "routing/repair.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topo/metrics.hpp"

namespace netsmith::routing {

namespace {

// Dense directed-edge membership for O(1) "does this route cross a failed
// edge" probes.
struct EdgeSet {
  int n = 0;
  std::vector<std::uint8_t> bits;
  explicit EdgeSet(int n_) : n(n_), bits(static_cast<std::size_t>(n_) * n_) {}
  void insert(int u, int v) { bits[static_cast<std::size_t>(u) * n + v] = 1; }
  bool contains(int u, int v) const {
    return bits[static_cast<std::size_t>(u) * n + v] != 0;
  }
};

bool crosses(const Path& p, const EdgeSet& down) {
  for (std::size_t i = 0; i + 1 < p.size(); ++i)
    if (down.contains(p[i], p[i + 1])) return true;
  return false;
}

}  // namespace

RepairResult repair_routes(const topo::DiGraph& base_graph,
                           const RoutingTable& base_table,
                           const std::vector<std::pair<int, int>>& down_edges,
                           int max_paths_per_flow) {
  obs::Span span("routing/repair");
  const int n = base_graph.num_nodes();
  RepairResult r;

  EdgeSet down(n);
  topo::DiGraph degraded = base_graph;
  for (const auto& [u, v] : down_edges)
    if (degraded.remove_edge(u, v)) down.insert(u, v);

  std::vector<std::uint8_t> affected(static_cast<std::size_t>(n) * n, 0);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const Path& p = base_table.path(s, d);
      if (!p.empty() && crosses(p, down)) {
        affected[static_cast<std::size_t>(s) * n + d] = 1;
        ++r.flows_affected;
      }
    }
  }
  if (r.flows_affected == 0) {
    r.table = base_table;
    return r;
  }

  // Candidate sets: incumbent path only for survivors (pins them — MCLB's
  // choice-0 initial state is then exactly the pre-fault routing, so the
  // search starts at the incumbent load profile and only moves severed
  // flows), fresh degraded-graph shortest paths for the affected flows.
  const util::Matrix<int> dist = topo::apsp_bfs(degraded);
  PathSet ps(n);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const std::size_t f = static_cast<std::size_t>(s) * n + d;
      if (!affected[f]) {
        const Path& p = base_table.path(s, d);
        if (!p.empty()) ps.at(s, d) = {p};
        continue;
      }
      ps.at(s, d) = enumerate_flow_paths(degraded, dist, s, d,
                                         max_paths_per_flow);
      if (ps.at(s, d).empty())
        ++r.flows_unroutable;
      else
        ++r.flows_rerouted;
    }
  }

  MclbResult m = mclb_local_search(ps);
  r.table = m.table(ps);
  r.objective = m.objective;
  r.iterations = m.iterations;

  if (obs::metrics_enabled()) {
    obs::counter("fault.flows_rerouted")
        .add(static_cast<std::uint64_t>(r.flows_rerouted));
    obs::counter("fault.flows_unroutable")
        .add(static_cast<std::uint64_t>(r.flows_unroutable));
  }
  return r;
}

}  // namespace netsmith::routing
