#pragma once
// Channel-load analysis and analytic saturation-throughput bounds
// (paper SII-D and Fig. 7).
//
// Units: uniform all-to-all traffic where every node injects lambda
// packets/cycle, each destined uniformly among the n-1 other nodes. The
// normalized load of a channel is (flows crossing it) / (n-1): the channel's
// occupancy per unit lambda. Saturation bounds, in packets/node/cycle:
//   routed bound     = 1 / max normalized channel load
//   occupancy bound  = E / (n * avg_hops)          (best over ALL routings)
//   cut bound        = sparsest_cut_bandwidth * (n-1)

#include "routing/paths.hpp"
#include "routing/table.hpp"
#include "util/matrix.hpp"

namespace netsmith::routing {

struct LoadAnalysis {
  util::Matrix<double> load;  // normalized per directed link (n x n)
  double max_load = 0.0;
  int flows = 0;

  // Packets/node/cycle at which the maximally loaded channel saturates.
  double throughput_bound() const {
    return max_load > 0.0 ? 1.0 / max_load : 0.0;
  }
};

// Load of single-path routing under uniform traffic.
LoadAnalysis analyze_uniform(const RoutingTable& rt);

// Load when each flow splits uniformly across all its listed paths (models
// the "random selection among valid choices" policy in expectation).
LoadAnalysis analyze_uniform_fractional(const PathSet& ps);

// Load for an arbitrary traffic matrix (weight(s,d) = relative packet rate;
// normalized so the average row sum is 1 packet/cycle per node).
LoadAnalysis analyze_pattern(const RoutingTable& rt,
                             const util::Matrix<double>& weight);

// Occupancy-based bound: total channel capacity / total channel demand.
double occupancy_bound(const topo::DiGraph& g);

// Cut-based bound from the sparsest cut.
double cut_bound(const topo::DiGraph& g);

}  // namespace netsmith::routing
