#include "routing/paths.hpp"

#include <algorithm>

#include "topo/metrics.hpp"

namespace netsmith::routing {

std::size_t PathSet::total_paths() const {
  std::size_t total = 0;
  for (const auto& p : paths_) total += p.size();
  return total;
}

bool PathSet::all_flows_covered() const {
  for (int s = 0; s < n_; ++s)
    for (int d = 0; d < n_; ++d)
      if (s != d && at(s, d).empty()) return false;
  return true;
}

namespace {

// Depth-first enumeration over the shortest-path DAG for flow (s, d). adj
// holds each node's out-neighbours presorted once per enumeration (sorted
// order keeps enumeration deterministic without re-sorting on every visit).
void dfs_paths(const std::vector<std::vector<int>>& adj,
               const util::Matrix<int>& dist, int d, int cap, Path& prefix,
               std::vector<Path>& out) {
  const int u = prefix.back();
  if (u == d) {
    out.push_back(prefix);
    return;
  }
  if (static_cast<int>(out.size()) >= cap) return;
  const int s = prefix.front();
  for (int v : adj[u]) {
    if (dist(s, u) + 1 + dist(v, d) != dist(s, d)) continue;
    if (dist(s, v) != dist(s, u) + 1) continue;
    prefix.push_back(v);
    dfs_paths(adj, dist, d, cap, prefix, out);
    prefix.pop_back();
    if (static_cast<int>(out.size()) >= cap) return;
  }
}

}  // namespace

PathSet enumerate_shortest_paths_from_dist(const topo::DiGraph& g,
                                           const util::Matrix<int>& dist,
                                           int max_paths_per_flow) {
  const int n = g.num_nodes();
  std::vector<std::vector<int>> adj(n);
  for (int u = 0; u < n; ++u) {
    adj[u] = g.out_neighbors(u);
    std::sort(adj[u].begin(), adj[u].end());
  }
  PathSet ps(n);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d || dist(s, d) >= topo::kUnreachable) continue;
      Path prefix{s};
      dfs_paths(adj, dist, d, max_paths_per_flow, prefix, ps.at(s, d));
    }
  }
  return ps;
}

std::vector<Path> enumerate_flow_paths(const topo::DiGraph& g,
                                       const util::Matrix<int>& dist, int s,
                                       int d, int max_paths_per_flow) {
  std::vector<Path> out;
  if (s == d || dist(s, d) >= topo::kUnreachable) return out;
  const int n = g.num_nodes();
  std::vector<std::vector<int>> adj(n);
  for (int u = 0; u < n; ++u) {
    adj[u] = g.out_neighbors(u);
    std::sort(adj[u].begin(), adj[u].end());
  }
  Path prefix{s};
  dfs_paths(adj, dist, d, max_paths_per_flow, prefix, out);
  return out;
}

PathSet enumerate_shortest_paths(const topo::DiGraph& g, int max_paths_per_flow) {
  return enumerate_shortest_paths_from_dist(g, topo::apsp_bfs(g),
                                            max_paths_per_flow);
}

bool is_shortest_path(const topo::DiGraph& g, const util::Matrix<int>& dist,
                      const Path& p) {
  if (p.size() < 2) return false;
  for (std::size_t i = 0; i + 1 < p.size(); ++i)
    if (!g.has_edge(p[i], p[i + 1])) return false;
  return static_cast<int>(p.size()) - 1 == dist(p.front(), p.back());
}

}  // namespace netsmith::routing
