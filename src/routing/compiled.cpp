#include "routing/compiled.hpp"

#include <algorithm>

#include "topo/metrics.hpp"

namespace netsmith::routing {

namespace {

int intern_edge(CompiledPathSet& c, int u, int v) {
  int& id = c.edge_id[static_cast<std::size_t>(u) * c.n + v];
  if (id < 0) {
    id = c.num_edges++;
    c.edge_src.push_back(u);
    c.edge_dst.push_back(v);
  }
  return id;
}

}  // namespace

CompiledPathSet compile_paths(const PathSet& ps) {
  const int n = ps.num_nodes();
  CompiledPathSet c;
  c.n = n;
  c.edge_id.assign(static_cast<std::size_t>(n) * n, -1);
  c.flow_of_pair.assign(static_cast<std::size_t>(n) * n, -1);

  c.path_begin.push_back(0);
  c.edge_begin.push_back(0);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& alts = ps.at(s, d);
      if (alts.empty()) continue;
      c.flow_of_pair[static_cast<std::size_t>(s) * n + d] = c.num_flows();
      c.flow_s.push_back(s);
      c.flow_d.push_back(d);
      for (const Path& p : alts) {
        for (std::size_t i = 0; i + 1 < p.size(); ++i)
          c.path_edges.push_back(intern_edge(c, p[i], p[i + 1]));
        c.edge_begin.push_back(static_cast<std::int32_t>(c.path_edges.size()));
      }
      c.path_begin.push_back(c.num_paths());
    }
  }
  return c;
}

// Mirrors dfs_paths in routing/paths.cpp exactly (same pruning, same
// sorted-neighbour order, same cap semantics), but emits interned edge ids
// instead of router-sequence Paths.
void PathCompiler::dfs(const util::Matrix<int>& dist, int d, int cap,
                       CompiledPathSet& out) {
  const int u = prefix_.back();
  if (u == d) {
    for (std::size_t i = 0; i + 1 < prefix_.size(); ++i)
      out.path_edges.push_back(intern_edge(out, prefix_[i], prefix_[i + 1]));
    out.edge_begin.push_back(static_cast<std::int32_t>(out.path_edges.size()));
    ++emitted_;
    return;
  }
  if (emitted_ >= cap) return;
  const int s = prefix_.front();
  for (int v : adj_[u]) {
    if (dist(s, u) + 1 + dist(v, d) != dist(s, d)) continue;
    if (dist(s, v) != dist(s, u) + 1) continue;
    prefix_.push_back(v);
    dfs(dist, d, cap, out);
    prefix_.pop_back();
    if (emitted_ >= cap) return;
  }
}

void PathCompiler::enumerate(const topo::DiGraph& g,
                             const util::Matrix<int>& dist,
                             int max_paths_per_flow, CompiledPathSet& out) {
  const int n = g.num_nodes();
  if (static_cast<int>(adj_.size()) != n) adj_.resize(n);
  for (int u = 0; u < n; ++u) {
    const auto& nbrs = g.out_neighbors(u);
    adj_[u].assign(nbrs.begin(), nbrs.end());
    std::sort(adj_[u].begin(), adj_[u].end());
  }

  out.n = n;
  out.num_edges = 0;
  out.edge_src.clear();
  out.edge_dst.clear();
  out.edge_id.assign(static_cast<std::size_t>(n) * n, -1);
  out.flow_s.clear();
  out.flow_d.clear();
  out.flow_of_pair.assign(static_cast<std::size_t>(n) * n, -1);
  out.path_begin.clear();
  out.path_begin.push_back(0);
  out.edge_begin.clear();
  out.edge_begin.push_back(0);
  out.path_edges.clear();

  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d || dist(s, d) >= topo::kUnreachable) continue;
      const int before = out.num_paths();
      prefix_.clear();
      prefix_.push_back(s);
      emitted_ = 0;
      dfs(dist, d, max_paths_per_flow, out);
      if (out.num_paths() > before) {
        out.flow_of_pair[static_cast<std::size_t>(s) * n + d] =
            out.num_flows();
        out.flow_s.push_back(s);
        out.flow_d.push_back(d);
        out.path_begin.push_back(out.num_paths());
      }
    }
  }
}

}  // namespace netsmith::routing
