#include "routing/channel_load.hpp"

#include <algorithm>

#include "topo/cuts.hpp"
#include "topo/metrics.hpp"

namespace netsmith::routing {

namespace {

void add_path_load(util::Matrix<double>& load, const Path& p, double w) {
  for (std::size_t i = 0; i + 1 < p.size(); ++i)
    load(p[i], p[i + 1]) += w;
}

LoadAnalysis finish(util::Matrix<double> load, int flows) {
  LoadAnalysis a;
  a.flows = flows;
  a.max_load = 0.0;
  for (std::size_t i = 0; i < load.rows(); ++i)
    for (std::size_t j = 0; j < load.cols(); ++j)
      a.max_load = std::max(a.max_load, load(i, j));
  a.load = std::move(load);
  return a;
}

}  // namespace

LoadAnalysis analyze_uniform(const RoutingTable& rt) {
  const int n = rt.num_nodes();
  util::Matrix<double> load(n, n, 0.0);
  const double w = 1.0 / (n - 1);
  int flows = 0;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const Path& p = rt.path(s, d);
      if (p.size() < 2) continue;
      add_path_load(load, p, w);
      ++flows;
    }
  return finish(std::move(load), flows);
}

LoadAnalysis analyze_uniform_fractional(const PathSet& ps) {
  const int n = ps.num_nodes();
  util::Matrix<double> load(n, n, 0.0);
  const double w = 1.0 / (n - 1);
  int flows = 0;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& alts = ps.at(s, d);
      if (alts.empty()) continue;
      const double share = w / static_cast<double>(alts.size());
      for (const auto& p : alts) add_path_load(load, p, share);
      ++flows;
    }
  return finish(std::move(load), flows);
}

LoadAnalysis analyze_pattern(const RoutingTable& rt,
                             const util::Matrix<double>& weight) {
  const int n = rt.num_nodes();
  util::Matrix<double> load(n, n, 0.0);
  // Normalize: average outgoing weight per node = 1.
  double total = 0.0;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d)
      if (s != d) total += weight(s, d);
  if (total <= 0.0) return finish(std::move(load), 0);
  const double scale = static_cast<double>(n) / total;
  int flows = 0;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d || weight(s, d) <= 0.0) continue;
      const Path& p = rt.path(s, d);
      if (p.size() < 2) continue;
      add_path_load(load, p, weight(s, d) * scale);
      ++flows;
    }
  return finish(std::move(load), flows);
}

double occupancy_bound(const topo::DiGraph& g) {
  const double h = topo::average_hops(g);
  if (h <= 0.0) return 0.0;
  return g.num_directed_edges() / (h * g.num_nodes());
}

double cut_bound(const topo::DiGraph& g) {
  const auto cut = topo::sparsest_cut(g);
  return cut.bandwidth * (g.num_nodes() - 1);
}

}  // namespace netsmith::routing
