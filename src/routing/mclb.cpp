#include "routing/mclb.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

namespace netsmith::routing {

namespace {

struct Flow {
  int s = 0, d = 0;
  double weight = 1.0;
  int choice = 0;
};

// Edge-id mapping over the links that appear in at least one path.
struct EdgeIndex {
  std::map<std::pair<int, int>, int> id;
  int intern(int u, int v) {
    auto [it, inserted] = id.emplace(std::make_pair(u, v),
                                     static_cast<int>(id.size()));
    return it->second;
  }
};

// Sorted-load-profile objective: (max, #links at max, sum of squares).
struct LoadObjective {
  double max = 0.0;
  int at_max = 0;
  double sumsq = 0.0;

  static LoadObjective of(const std::vector<double>& loads) {
    LoadObjective o;
    for (double v : loads) {
      o.sumsq += v * v;
      if (v > o.max + 1e-12) {
        o.max = v;
        o.at_max = 1;
      } else if (v > o.max - 1e-12) {
        ++o.at_max;
      }
    }
    return o;
  }

  bool better_than(const LoadObjective& o) const {
    if (max < o.max - 1e-12) return true;
    if (max > o.max + 1e-12) return false;
    if (at_max != o.at_max) return at_max < o.at_max;
    return sumsq < o.sumsq - 1e-12;
  }
};

void apply_path(std::vector<double>& loads, const EdgeIndex& ei, const Path& p,
                double w) {
  for (std::size_t i = 0; i + 1 < p.size(); ++i)
    loads[ei.id.at({p[i], p[i + 1]})] += w;
}

}  // namespace

MclbResult mclb_local_search(const PathSet& ps,
                             const std::vector<double>& flow_weight,
                             int max_rounds) {
  const int n = ps.num_nodes();
  MclbResult result;
  result.choice.assign(static_cast<std::size_t>(n) * n, 0);

  // Collect flows and intern every edge used by any candidate path.
  std::vector<Flow> flows;
  EdgeIndex ei;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d || ps.at(s, d).empty()) continue;
      Flow f;
      f.s = s;
      f.d = d;
      if (!flow_weight.empty())
        f.weight = flow_weight[static_cast<std::size_t>(s) * n + d];
      flows.push_back(f);
      for (const auto& p : ps.at(s, d))
        for (std::size_t i = 0; i + 1 < p.size(); ++i) ei.intern(p[i], p[i + 1]);
    }

  std::vector<double> loads(ei.id.size(), 0.0);

  // Greedy construction: longest flows first (hardest to place).
  std::vector<int> order(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto la = ps.at(flows[a].s, flows[a].d)[0].size();
    const auto lb = ps.at(flows[b].s, flows[b].d)[0].size();
    if (la != lb) return la > lb;
    return a < b;
  });

  for (int fi : order) {
    Flow& f = flows[fi];
    const auto& alts = ps.at(f.s, f.d);
    int best_k = 0;
    LoadObjective best_obj;
    bool first = true;
    for (int k = 0; k < static_cast<int>(alts.size()); ++k) {
      apply_path(loads, ei, alts[k], f.weight);
      const auto obj = LoadObjective::of(loads);
      apply_path(loads, ei, alts[k], -f.weight);
      if (first || obj.better_than(best_obj)) {
        best_obj = obj;
        best_k = k;
        first = false;
      }
    }
    f.choice = best_k;
    apply_path(loads, ei, alts[best_k], f.weight);
  }

  // Improvement: reroute flows crossing maximally loaded channels.
  long iters = 0;
  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    LoadObjective cur = LoadObjective::of(loads);
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      Flow& f = flows[fi];
      const auto& alts = ps.at(f.s, f.d);
      if (alts.size() < 2) continue;
      // Only consider flows that currently touch a maximal channel.
      bool on_max = false;
      const auto& curp = alts[f.choice];
      for (std::size_t i = 0; i + 1 < curp.size() && !on_max; ++i)
        if (loads[ei.id.at({curp[i], curp[i + 1]})] > cur.max - 1e-12)
          on_max = true;
      if (!on_max) continue;

      apply_path(loads, ei, curp, -f.weight);
      int best_k = f.choice;
      LoadObjective best_obj = cur;
      for (int k = 0; k < static_cast<int>(alts.size()); ++k) {
        if (k == f.choice) continue;
        ++iters;
        apply_path(loads, ei, alts[k], f.weight);
        const auto obj = LoadObjective::of(loads);
        apply_path(loads, ei, alts[k], -f.weight);
        if (obj.better_than(best_obj)) {
          best_obj = obj;
          best_k = k;
        }
      }
      apply_path(loads, ei, alts[best_k], f.weight);
      if (best_k != f.choice) {
        f.choice = best_k;
        cur = best_obj;
        improved = true;
      }
    }
    if (!improved) break;
  }

  for (const Flow& f : flows)
    result.choice[static_cast<std::size_t>(f.s) * n + f.d] = f.choice;
  result.max_flows_on_link = static_cast<int>(
      std::lround(*std::max_element(loads.begin(), loads.end())));
  result.max_load = *std::max_element(loads.begin(), loads.end()) / (n - 1);
  result.iterations = iters;
  return result;
}

MclbResult mclb_exact(const PathSet& ps, const lp::MilpOptions& opts) {
  const int n = ps.num_nodes();

  lp::Model m;
  // One binary per candidate path; channel-load rows reference them.
  struct PathVar {
    int var;
    int s, d, k;
  };
  std::vector<PathVar> pvars;
  std::map<std::pair<int, int>, std::vector<int>> link_paths;  // link -> vars

  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& alts = ps.at(s, d);
      if (alts.empty()) continue;
      std::vector<lp::Term> one;
      for (int k = 0; k < static_cast<int>(alts.size()); ++k) {
        const int v = m.add_binary(0.0);
        pvars.push_back({v, s, d, k});
        one.push_back({v, 1.0});
        for (std::size_t i = 0; i + 1 < alts[k].size(); ++i)
          link_paths[{alts[k][i], alts[k][i + 1]}].push_back(v);
      }
      // C4: exactly one path per flow.
      m.add_constraint(std::move(one), lp::Rel::kEq, 1.0);
    }

  // Uniform demand => integral channel loads; integer t tightens the search.
  const int t = m.add_integer(0.0, lp::kInf, 1.0);
  for (const auto& [link, vars] : link_paths) {
    std::vector<lp::Term> row;
    row.reserve(vars.size() + 1);
    for (int v : vars) row.push_back({v, 1.0});
    row.push_back({t, -1.0});
    // C1/O1: cload[i][j] <= t.
    m.add_constraint(std::move(row), lp::Rel::kLe, 0.0);
  }
  m.set_sense(lp::Sense::kMinimize);

  // Seed the bound with the local-search incumbent (valid upper bound).
  const auto ls = mclb_local_search(ps);
  m.var(t).ub = ls.max_flows_on_link;

  const auto sol = lp::solve_milp(m, opts);

  MclbResult result;
  result.choice.assign(static_cast<std::size_t>(n) * n, 0);
  if (sol.status != lp::SolveStatus::kOptimal || sol.x.empty()) {
    // Fall back to the local-search answer.
    MclbResult fallback = ls;
    fallback.proven_optimal = false;
    return fallback;
  }
  for (const auto& pv : pvars)
    if (sol.x[pv.var] > 0.5)
      result.choice[static_cast<std::size_t>(pv.s) * n + pv.d] = pv.k;
  result.max_flows_on_link = static_cast<int>(std::lround(sol.x[t]));
  result.max_load = sol.x[t] / (n - 1);
  result.iterations = sol.iterations;
  result.proven_optimal = true;
  return result;
}

FractionalMclbResult mclb_fractional(const PathSet& ps,
                                     const lp::SimplexOptions& opts) {
  const int n = ps.num_nodes();

  lp::Model m;
  struct PathVar {
    int var;
    int s, d, k;
  };
  std::vector<PathVar> pvars;
  std::map<std::pair<int, int>, std::vector<int>> link_paths;

  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& alts = ps.at(s, d);
      if (alts.empty()) continue;
      std::vector<lp::Term> one;
      for (int k = 0; k < static_cast<int>(alts.size()); ++k) {
        const int v = m.add_continuous(0.0, 1.0);
        pvars.push_back({v, s, d, k});
        one.push_back({v, 1.0});
        for (std::size_t i = 0; i + 1 < alts[k].size(); ++i)
          link_paths[{alts[k][i], alts[k][i + 1]}].push_back(v);
      }
      m.add_constraint(std::move(one), lp::Rel::kEq, 1.0);
    }

  const int t = m.add_continuous(0.0, lp::kInf, 1.0);
  for (const auto& [link, vars] : link_paths) {
    std::vector<lp::Term> row;
    row.reserve(vars.size() + 1);
    for (int v : vars) row.push_back({v, 1.0});
    row.push_back({t, -1.0});
    m.add_constraint(std::move(row), lp::Rel::kLe, 0.0);
  }
  m.set_sense(lp::Sense::kMinimize);

  const auto sol = lp::solve_lp(m, opts);

  FractionalMclbResult r;
  r.weights.assign(static_cast<std::size_t>(n) * n, {});
  r.iterations = sol.iterations;
  if (sol.status != lp::SolveStatus::kOptimal) return r;
  r.solved = true;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      r.weights[static_cast<std::size_t>(s) * n + d].assign(
          ps.at(s, d).size(), 0.0);
    }
  for (const auto& pv : pvars)
    r.weights[static_cast<std::size_t>(pv.s) * n + pv.d][pv.k] = sol.x[pv.var];
  r.max_load = sol.x[t] / (n - 1);
  return r;
}

LoadAnalysis analyze_fractional_choice(const PathSet& ps,
                                       const FractionalMclbResult& frac) {
  const int n = ps.num_nodes();
  util::Matrix<double> load(n, n, 0.0);
  const double unit = 1.0 / (n - 1);
  int flows = 0;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& alts = ps.at(s, d);
      const auto& w = frac.weights[static_cast<std::size_t>(s) * n + d];
      if (alts.empty() || w.empty()) continue;
      ++flows;
      for (std::size_t k = 0; k < alts.size(); ++k) {
        if (w[k] <= 0.0) continue;
        const auto& p = alts[k];
        for (std::size_t i = 0; i + 1 < p.size(); ++i)
          load(p[i], p[i + 1]) += w[k] * unit;
      }
    }
  LoadAnalysis a;
  a.flows = flows;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) a.max_load = std::max(a.max_load, load(i, j));
  a.load = std::move(load);
  return a;
}

MclbResult mclb_route(const PathSet& ps, int exact_path_limit) {
  const auto ls = mclb_local_search(ps);
  if (static_cast<int>(ps.total_paths()) > exact_path_limit) return ls;
  lp::MilpOptions opts;
  opts.time_limit_s = 20.0;
  opts.lp.time_limit_s = 20.0;
  const auto exact = mclb_exact(ps, opts);
  return exact.max_flows_on_link <= ls.max_flows_on_link ? exact : ls;
}

}  // namespace netsmith::routing
