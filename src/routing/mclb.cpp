#include "routing/mclb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <tuple>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace netsmith::routing {

LoadObjective LoadObjective::of(const std::vector<double>& loads) {
  LoadObjective o;
  for (double v : loads) {
    o.sumsq += v * v;
    if (v > o.max) {
      o.max = v;
      o.at_max = 1;
    } else if (v == o.max) {
      ++o.at_max;
    }
  }
  return o;
}

namespace {

// ---------------------------------------------------------------------------
// Objective evaluators. Both run on the compiled path set and expose the
// same interface to the shared local-search driver:
//   current()         objective of the present loads
//   eval_add(p, w)    objective if path p gained w more load (pure, w >= 0)
//   apply(p, w)       commit w (possibly negative) along path p
//   load(e)           present load of dense edge e
// The *only* difference between them is evaluation strategy, which is what
// makes the scan engine a faithful oracle for the incremental one.

// Scan engine: eval_add walks every interned edge (O(links)), overlaying +w
// on the candidate path's edges during the scan. The overlay reads
// loads[e] + w exactly like a mutated array would, but never writes, so the
// loads array sees only committed ±w operations — identical history to the
// flat engine's.
class ScanEvaluator {
 public:
  explicit ScanEvaluator(const CompiledPathSet& cps)
      : cps_(cps), loads_(cps.num_edges, 0.0), on_path_(cps.num_edges, 0) {}

  double load(int e) const { return loads_[e]; }

  LoadObjective current() const { return LoadObjective::of(loads_); }

  LoadObjective eval_add(int p, double w) {
    const std::int32_t* e = cps_.edges_of(p);
    const int len = cps_.path_length(p);
    for (int i = 0; i < len; ++i) on_path_[e[i]] = 1;
    LoadObjective o;
    for (int idx = 0; idx < cps_.num_edges; ++idx) {
      const double v = on_path_[idx] ? loads_[idx] + w : loads_[idx];
      o.sumsq += v * v;
      if (v > o.max) {
        o.max = v;
        o.at_max = 1;
      } else if (v == o.max) {
        ++o.at_max;
      }
    }
    for (int i = 0; i < len; ++i) on_path_[e[i]] = 0;
    return o;
  }

  void apply(int p, double w) {
    const std::int32_t* e = cps_.edges_of(p);
    const int len = cps_.path_length(p);
    for (int i = 0; i < len; ++i) loads_[e[i]] += w;
  }

 private:
  const CompiledPathSet& cps_;
  std::vector<double> loads_;
  std::vector<std::uint8_t> on_path_;
};

// Flat incremental engine: maintains (max, at_max, sumsq) under ±w edge
// deltas through a load histogram, so eval_add costs O(path length).
//
//  - Uniform unit-weight searches (the default everywhere: empty
//    flow_weight means every flow weighs exactly 1.0) keep a dense integer
//    histogram hist[level] = #edges carrying exactly `level` flows; loads
//    are exact small integers, updates are O(1), and the running max only
//    ever steps down one level at a time (amortized O(1)).
//  - General weights fall back to an ordered bucket map keyed by the exact
//    load value (loads are sums of subsets of the flow weights, so the
//    bucket count stays tiny); updates are O(log #distinct values).
//
// Invariants after every apply():
//   obj_.max    == max(loads_)                  (exactly)
//   obj_.at_max == #{e : loads_[e] == obj_.max} (exact double equality)
//   obj_.sumsq  == sum loads² up to float associativity; bit-equal to a
//                  fresh scan whenever weights and loads are exactly
//                  representable (integers / dyadic rationals).
class FlatEvaluator {
 public:
  FlatEvaluator(const CompiledPathSet& cps, bool unit_weights)
      : cps_(cps), loads_(cps.num_edges, 0.0), unit_(unit_weights) {
    obj_.max = 0.0;
    obj_.at_max = cps_.num_edges;
    obj_.sumsq = 0.0;
    if (unit_) {
      level_.assign(cps_.num_edges, 0);
      hist_.assign(1, cps_.num_edges);
      max_level_ = 0;
    } else {
      buckets_[0.0] = cps_.num_edges;
    }
  }

  double load(int e) const { return loads_[e]; }

  // Times the dense level histogram had to grow (unit mode only) — a proxy
  // for how often the incremental engine re-shapes its load index.
  long hist_grows() const { return hist_grows_; }

  const LoadObjective& current() const { return obj_; }

  LoadObjective eval_add(int p, double w) {
    const int len = cps_.path_length(p);
    if (w == 0.0 || len == 0) return obj_;
    const std::int32_t* e = cps_.edges_of(p);
    LoadObjective o = obj_;
    // A shortest path never repeats an edge, so the per-edge deltas below
    // are independent.
    double m = -std::numeric_limits<double>::infinity();
    for (int i = 0; i < len; ++i) {
      const double old = loads_[e[i]];
      const double nv = old + w;
      o.sumsq += nv * nv - old * old;
      if (nv > m) m = nv;
    }
    if (m > obj_.max) {
      // New global max: only path edges can reach it (w > 0 lifted them).
      int c = 0;
      for (int i = 0; i < len; ++i)
        if (loads_[e[i]] + w == m) ++c;
      o.max = m;
      o.at_max = c;
    } else if (m == obj_.max) {
      // Path edges landing exactly on the standing max join at_max; none of
      // them was there before (their old load is strictly below nv <= max).
      int c = 0;
      for (int i = 0; i < len; ++i)
        if (loads_[e[i]] + w == m) ++c;
      o.at_max += c;
    }
    // m < max: no path edge was at the max (old < nv <= m < max), so max
    // and at_max are untouched.
    return o;
  }

  void apply(int p, double w) {
    const std::int32_t* e = cps_.edges_of(p);
    const int len = cps_.path_length(p);
    for (int i = 0; i < len; ++i) add(e[i], w);
  }

 private:
  void add(int e, double w) {
    const double old = loads_[e];
    const double nv = old + w;
    loads_[e] = nv;
    obj_.sumsq += nv * nv - old * old;
    if (unit_) {
      // w is exactly ±1.0 here.
      const int ol = level_[e];
      const int nl = w > 0.0 ? ol + 1 : ol - 1;
      level_[e] = nl;
      --hist_[ol];
      if (nl >= static_cast<int>(hist_.size())) {
        hist_.resize(nl + 1, 0);
        ++hist_grows_;
      }
      ++hist_[nl];
      if (nl > max_level_) {
        max_level_ = nl;
      } else if (ol == max_level_ && hist_[ol] == 0) {
        while (max_level_ > 0 && hist_[max_level_] == 0) --max_level_;
      }
      obj_.max = static_cast<double>(max_level_);
      obj_.at_max = hist_[max_level_];
    } else {
      const auto it = buckets_.find(old);
      if (--(it->second) == 0) buckets_.erase(it);
      ++buckets_[nv];
      const auto top = buckets_.begin();
      obj_.max = top->first;
      obj_.at_max = top->second;
    }
  }

  const CompiledPathSet& cps_;
  std::vector<double> loads_;
  LoadObjective obj_;
  bool unit_;
  std::vector<int> level_;  // unit mode: flows on edge (== load exactly)
  std::vector<int> hist_;
  int max_level_ = 0;
  long hist_grows_ = 0;
  std::map<double, int, std::greater<double>> buckets_;  // general mode
};

// Per-flow weights in compiled flow order; returns (weights, wmax).
std::pair<std::vector<double>, double> flow_weights(
    const CompiledPathSet& cps, const std::vector<double>& flow_weight) {
  const int f_count = cps.num_flows();
  std::vector<double> w(f_count, 1.0);
  if (!flow_weight.empty())
    for (int f = 0; f < f_count; ++f)
      w[f] = flow_weight[static_cast<std::size_t>(cps.flow_s[f]) * cps.n +
                         cps.flow_d[f]];
  double wmax = 0.0;
  for (double v : w) wmax = std::max(wmax, v);
  return {std::move(w), wmax};
}

// Shared local-search driver. The decision sequence (greedy construction
// order, candidate order, comparisons) is fully determined by (cps, w, eps)
// and the objective tuples the evaluator returns — run it with the scan and
// the flat evaluator and any divergence is an incremental-maintenance bug.
template <class Eval>
MclbResult run_local_search(const CompiledPathSet& cps,
                            const std::vector<double>& w, double eps,
                            int max_rounds, Eval& ev) {
  const int n = cps.n;
  const int f_count = cps.num_flows();

  std::vector<int> choice(f_count, 0);

  // Greedy construction: longest flows first (hardest to place), ties by
  // flow index.
  std::vector<int> order(f_count);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int la = cps.path_length(cps.path_begin[a]);
    const int lb = cps.path_length(cps.path_begin[b]);
    if (la != lb) return la > lb;
    return a < b;
  });

  long greedy_evals = 0;
  for (int f : order) {
    const int pb = cps.path_begin[f], pe = cps.path_begin[f + 1];
    int best_k = 0;
    LoadObjective best;
    bool first = true;
    for (int p = pb; p < pe; ++p) {
      ++greedy_evals;
      const auto obj = ev.eval_add(p, w[f]);
      if (first || obj.better_than(best, eps)) {
        best = obj;
        best_k = p - pb;
        first = false;
      }
    }
    choice[f] = best_k;
    ev.apply(pb + best_k, w[f]);
  }

  // Improvement: reroute flows crossing maximally loaded channels; accept
  // only lexicographic improvements of the load profile, so it terminates.
  long iters = 0;
  int rounds_run = 0;
  for (int round = 0; round < max_rounds; ++round) {
    ++rounds_run;
    bool improved = false;
    LoadObjective cur = ev.current();
    for (int f = 0; f < f_count; ++f) {
      const int pb = cps.path_begin[f], pe = cps.path_begin[f + 1];
      if (pe - pb < 2) continue;
      const int curp = pb + choice[f];
      const std::int32_t* ce = cps.edges_of(curp);
      const int clen = cps.path_length(curp);
      bool on_max = false;
      for (int i = 0; i < clen && !on_max; ++i)
        if (ev.load(ce[i]) > cur.max - eps) on_max = true;
      if (!on_max) continue;

      ev.apply(curp, -w[f]);
      int best_k = choice[f];
      LoadObjective best = cur;
      for (int p = pb; p < pe; ++p) {
        if (p - pb == choice[f]) continue;
        ++iters;
        const auto obj = ev.eval_add(p, w[f]);
        if (obj.better_than(best, eps)) {
          best = obj;
          best_k = p - pb;
        }
      }
      ev.apply(pb + best_k, w[f]);
      if (best_k != choice[f]) {
        choice[f] = best_k;
        cur = best;
        improved = true;
      }
    }
    if (!improved) break;
  }

  MclbResult result;
  result.choice.assign(static_cast<std::size_t>(n) * n, 0);
  for (int f = 0; f < f_count; ++f)
    result.choice[static_cast<std::size_t>(cps.flow_s[f]) * n +
                  cps.flow_d[f]] = choice[f];
  result.objective = ev.current();
  result.max_flows_on_link = static_cast<int>(std::lround(result.objective.max));
  result.max_load = result.objective.max / (n - 1);
  result.iterations = iters;
  // One flush per search: the annealer runs this on every candidate move, so
  // the hot loops above must stay free of shared-state traffic, and the
  // handle lookups are cached (a name lookup per search would already cost
  // percents at ~10k searches/s).
  if (obs::metrics_enabled()) {
    static obs::Counter& searches = obs::counter("mclb.searches");
    static obs::Counter& rounds = obs::counter("mclb.rounds");
    static obs::Counter& evals = obs::counter("mclb.candidate_evals");
    searches.inc();
    rounds.add(static_cast<std::uint64_t>(rounds_run));
    evals.add(static_cast<std::uint64_t>(greedy_evals + iters));
  }
  return result;
}

bool all_unit(const std::vector<double>& w) {
  for (double v : w)
    if (v != 1.0) return false;
  return true;
}

// Load profile of a unit-weight choice vector, recomputed from scratch
// (used to report the MILP solution's objective in the same terms the
// local-search engines maintain). Interns candidate edges directly — links
// that appear only on unchosen paths carry zero load but still count in
// at_max, exactly as in the search engines' edge universe.
LoadObjective objective_of_choice(const PathSet& ps,
                                  const std::vector<int>& choice) {
  const int n = ps.num_nodes();
  std::vector<int> id(static_cast<std::size_t>(n) * n, -1);
  std::vector<double> loads;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      for (const Path& p : ps.at(s, d))
        for (std::size_t i = 0; i + 1 < p.size(); ++i) {
          int& e = id[static_cast<std::size_t>(p[i]) * n + p[i + 1]];
          if (e < 0) {
            e = static_cast<int>(loads.size());
            loads.push_back(0.0);
          }
        }
    }
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& alts = ps.at(s, d);
      if (alts.empty()) continue;
      const Path& p = alts[choice[static_cast<std::size_t>(s) * n + d]];
      for (std::size_t i = 0; i + 1 < p.size(); ++i)
        loads[id[static_cast<std::size_t>(p[i]) * n + p[i + 1]]] += 1.0;
    }
  return LoadObjective::of(loads);
}

}  // namespace

MclbResult mclb_local_search(const CompiledPathSet& cps,
                             const std::vector<double>& flow_weight,
                             int max_rounds) {
  auto [w, wmax] = flow_weights(cps, flow_weight);
  FlatEvaluator ev(cps, all_unit(w));
  MclbResult r = run_local_search(cps, w, LoadObjective::tolerance(wmax),
                                  max_rounds, ev);
  if (obs::metrics_enabled()) {
    static obs::Counter& rebuilds = obs::counter("mclb.hist_rebuilds");
    rebuilds.add(static_cast<std::uint64_t>(ev.hist_grows()));
  }
  return r;
}

MclbResult mclb_local_search(const PathSet& ps,
                             const std::vector<double>& flow_weight,
                             int max_rounds) {
  // Plan-level entry point (one call per routed topology, not per annealer
  // move), so a span per call is cheap.
  obs::Span span("routing/mclb_local_search");
  MclbResult r = mclb_local_search(compile_paths(ps), flow_weight, max_rounds);
  span.arg("n", ps.num_nodes());
  span.arg("iterations", r.iterations);
  span.arg("max_load", r.max_load);
  return r;
}

MclbResult mclb_local_search_scan(const CompiledPathSet& cps,
                                  const std::vector<double>& flow_weight,
                                  int max_rounds) {
  auto [w, wmax] = flow_weights(cps, flow_weight);
  ScanEvaluator ev(cps);
  return run_local_search(cps, w, LoadObjective::tolerance(wmax), max_rounds,
                          ev);
}

MclbResult mclb_local_search_scan(const PathSet& ps,
                                  const std::vector<double>& flow_weight,
                                  int max_rounds) {
  obs::Span span("routing/mclb_local_search_scan");
  MclbResult r =
      mclb_local_search_scan(compile_paths(ps), flow_weight, max_rounds);
  span.arg("n", ps.num_nodes());
  span.arg("iterations", r.iterations);
  return r;
}

MclbResult mclb_exact(const PathSet& ps, const lp::MilpOptions& opts,
                      const MclbResult* incumbent) {
  const int n = ps.num_nodes();

  lp::Model m;
  // One binary per candidate path; channel-load rows reference them.
  struct PathVar {
    int var;
    int s, d, k;
  };
  std::vector<PathVar> pvars;
  std::map<std::pair<int, int>, std::vector<int>> link_paths;  // link -> vars

  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& alts = ps.at(s, d);
      if (alts.empty()) continue;
      std::vector<lp::Term> one;
      for (int k = 0; k < static_cast<int>(alts.size()); ++k) {
        const int v = m.add_binary(0.0);
        pvars.push_back({v, s, d, k});
        one.push_back({v, 1.0});
        for (std::size_t i = 0; i + 1 < alts[k].size(); ++i)
          link_paths[{alts[k][i], alts[k][i + 1]}].push_back(v);
      }
      // C4: exactly one path per flow.
      m.add_constraint(std::move(one), lp::Rel::kEq, 1.0);
    }

  // Uniform demand => integral channel loads; integer t tightens the search.
  const int t = m.add_integer(0.0, lp::kInf, 1.0);
  for (const auto& [link, vars] : link_paths) {
    std::vector<lp::Term> row;
    row.reserve(vars.size() + 1);
    for (int v : vars) row.push_back({v, 1.0});
    row.push_back({t, -1.0});
    // C1/O1: cload[i][j] <= t.
    m.add_constraint(std::move(row), lp::Rel::kLe, 0.0);
  }
  m.set_sense(lp::Sense::kMinimize);

  // Seed the bound with the local-search incumbent (valid upper bound) —
  // the caller's, when provided, so mclb_route's search is not repeated.
  const MclbResult ls = incumbent ? *incumbent : mclb_local_search(ps);
  m.var(t).ub = ls.max_flows_on_link;

  const auto sol = lp::solve_milp(m, opts);

  MclbResult result;
  result.choice.assign(static_cast<std::size_t>(n) * n, 0);
  if (sol.status != lp::SolveStatus::kOptimal || sol.x.empty()) {
    // Fall back to the local-search answer.
    MclbResult fallback = ls;
    fallback.proven_optimal = false;
    return fallback;
  }
  for (const auto& pv : pvars)
    if (sol.x[pv.var] > 0.5)
      result.choice[static_cast<std::size_t>(pv.s) * n + pv.d] = pv.k;
  result.max_flows_on_link = static_cast<int>(std::lround(sol.x[t]));
  result.max_load = sol.x[t] / (n - 1);
  result.objective = objective_of_choice(ps, result.choice);
  result.iterations = sol.iterations;
  result.proven_optimal = true;
  return result;
}

FractionalMclbResult mclb_fractional(const PathSet& ps,
                                     const lp::SimplexOptions& opts) {
  const int n = ps.num_nodes();

  lp::Model m;
  struct PathVar {
    int var;
    int s, d, k;
  };
  std::vector<PathVar> pvars;
  std::map<std::pair<int, int>, std::vector<int>> link_paths;

  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& alts = ps.at(s, d);
      if (alts.empty()) continue;
      std::vector<lp::Term> one;
      for (int k = 0; k < static_cast<int>(alts.size()); ++k) {
        const int v = m.add_continuous(0.0, 1.0);
        pvars.push_back({v, s, d, k});
        one.push_back({v, 1.0});
        for (std::size_t i = 0; i + 1 < alts[k].size(); ++i)
          link_paths[{alts[k][i], alts[k][i + 1]}].push_back(v);
      }
      m.add_constraint(std::move(one), lp::Rel::kEq, 1.0);
    }

  const int t = m.add_continuous(0.0, lp::kInf, 1.0);
  for (const auto& [link, vars] : link_paths) {
    std::vector<lp::Term> row;
    row.reserve(vars.size() + 1);
    for (int v : vars) row.push_back({v, 1.0});
    row.push_back({t, -1.0});
    m.add_constraint(std::move(row), lp::Rel::kLe, 0.0);
  }
  m.set_sense(lp::Sense::kMinimize);

  const auto sol = lp::solve_lp(m, opts);

  FractionalMclbResult r;
  r.weights.assign(static_cast<std::size_t>(n) * n, {});
  r.iterations = sol.iterations;
  if (sol.status != lp::SolveStatus::kOptimal) return r;
  r.solved = true;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      r.weights[static_cast<std::size_t>(s) * n + d].assign(
          ps.at(s, d).size(), 0.0);
    }
  for (const auto& pv : pvars)
    r.weights[static_cast<std::size_t>(pv.s) * n + pv.d][pv.k] = sol.x[pv.var];
  r.max_load = sol.x[t] / (n - 1);
  return r;
}

LoadAnalysis analyze_fractional_choice(const PathSet& ps,
                                       const FractionalMclbResult& frac) {
  const int n = ps.num_nodes();
  util::Matrix<double> load(n, n, 0.0);
  const double unit = 1.0 / (n - 1);
  int flows = 0;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& alts = ps.at(s, d);
      const auto& w = frac.weights[static_cast<std::size_t>(s) * n + d];
      if (alts.empty() || w.empty()) continue;
      ++flows;
      for (std::size_t k = 0; k < alts.size(); ++k) {
        if (w[k] <= 0.0) continue;
        const auto& p = alts[k];
        for (std::size_t i = 0; i + 1 < p.size(); ++i)
          load(p[i], p[i + 1]) += w[k] * unit;
      }
    }
  LoadAnalysis a;
  a.flows = flows;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) a.max_load = std::max(a.max_load, load(i, j));
  a.load = std::move(load);
  return a;
}

MclbResult mclb_route(const PathSet& ps, int exact_path_limit) {
  const auto ls = mclb_local_search(ps);
  if (static_cast<int>(ps.total_paths()) > exact_path_limit) return ls;
  lp::MilpOptions opts;
  opts.time_limit_s = 20.0;
  opts.lp.time_limit_s = 20.0;
  const auto exact = mclb_exact(ps, opts, &ls);
  return exact.max_flows_on_link <= ls.max_flows_on_link ? exact : ls;
}

}  // namespace netsmith::routing
