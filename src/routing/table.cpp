#include "routing/table.hpp"

#include <algorithm>
#include <cassert>

#include "topo/metrics.hpp"

namespace netsmith::routing {

int RoutingTable::next_hop(int cur, int s, int d) const {
  const Path& p = path(s, d);
  for (std::size_t i = 0; i + 1 < p.size(); ++i)
    if (p[i] == cur) return p[i + 1];
  return -1;
}

RoutingTable RoutingTable::from_choice(const PathSet& ps,
                                       const std::vector<int>& choice) {
  const int n = ps.num_nodes();
  RoutingTable rt(n);
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& alts = ps.at(s, d);
      if (alts.empty()) continue;
      const int c = choice[static_cast<std::size_t>(s) * n + d];
      assert(c >= 0 && c < static_cast<int>(alts.size()));
      rt.path(s, d) = alts[c];
    }
  return rt;
}

RoutingTable RoutingTable::select_first(const PathSet& ps) {
  const int n = ps.num_nodes();
  std::vector<int> choice(static_cast<std::size_t>(n) * n, 0);
  return from_choice(ps, choice);
}

RoutingTable RoutingTable::select_random(const PathSet& ps, util::Rng& rng) {
  const int n = ps.num_nodes();
  std::vector<int> choice(static_cast<std::size_t>(n) * n, 0);
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d || ps.at(s, d).empty()) continue;
      choice[static_cast<std::size_t>(s) * n + d] = static_cast<int>(
          rng.uniform_int(0, static_cast<std::int64_t>(ps.at(s, d).size()) - 1));
    }
  return from_choice(ps, choice);
}

bool RoutingTable::consistent_with(const topo::DiGraph& g) const {
  for (int s = 0; s < n_; ++s)
    for (int d = 0; d < n_; ++d) {
      if (s == d) continue;
      const Path& p = path(s, d);
      if (p.size() < 2 || p.front() != s || p.back() != d) return false;
      for (std::size_t i = 0; i + 1 < p.size(); ++i)
        if (!g.has_edge(p[i], p[i + 1])) return false;
    }
  return true;
}

bool RoutingTable::is_minimal(const topo::DiGraph& g) const {
  const auto dist = topo::apsp_bfs(g);
  for (int s = 0; s < n_; ++s)
    for (int d = 0; d < n_; ++d) {
      if (s == d) continue;
      const Path& p = path(s, d);
      if (static_cast<int>(p.size()) - 1 != dist(s, d)) return false;
    }
  return true;
}

}  // namespace netsmith::routing
