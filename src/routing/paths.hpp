#pragma once
// Shortest-path enumeration (paper SIII-D): the set P of all minimal paths
// between every source and destination, computed statically from the
// topology. This set is the only input the MCLB formulation needs.

#include <vector>

#include "topo/graph.hpp"
#include "util/matrix.hpp"

namespace netsmith::routing {

using Path = std::vector<int>;  // router sequence, path.front()==s, back()==d

class PathSet {
 public:
  PathSet() = default;
  explicit PathSet(int n) : n_(n), paths_(static_cast<std::size_t>(n) * n) {}

  int num_nodes() const { return n_; }

  const std::vector<Path>& at(int s, int d) const {
    return paths_[static_cast<std::size_t>(s) * n_ + d];
  }
  std::vector<Path>& at(int s, int d) {
    return paths_[static_cast<std::size_t>(s) * n_ + d];
  }

  // Total enumerated paths across all flows.
  std::size_t total_paths() const;

  // True iff every s != d flow has at least one path.
  bool all_flows_covered() const;

 private:
  int n_ = 0;
  std::vector<std::vector<Path>> paths_;
};

// Enumerates shortest paths per flow by DFS over the shortest-path DAG
// (edge (u,v) lies on a shortest s->d path iff
// dist(s,u) + 1 + dist(v,d) == dist(s,d)). Deterministic neighbour order
// (adjacency is sorted once per enumeration, not per DFS visit); at most
// max_paths_per_flow paths are kept per flow.
PathSet enumerate_shortest_paths(const topo::DiGraph& g,
                                 int max_paths_per_flow = 64);

// Same, but reuses a caller-provided APSP matrix (dist(i, j) = hop count,
// topo::kUnreachable when disconnected) instead of running a second BFS
// sweep — the annealer's channel-load move evaluator already has the
// accepted move's APSP in hand. dist must match g.
PathSet enumerate_shortest_paths_from_dist(const topo::DiGraph& g,
                                           const util::Matrix<int>& dist,
                                           int max_paths_per_flow = 64);

// Shortest paths for the single flow (s, d) — the per-flow building block
// of the full enumeration above, exposed so route repair can re-enumerate
// only the flows a fault actually severed instead of all n^2. Returns empty
// when d is unreachable from s under dist.
std::vector<Path> enumerate_flow_paths(const topo::DiGraph& g,
                                       const util::Matrix<int>& dist, int s,
                                       int d, int max_paths_per_flow = 64);

// True iff p is a path in g (consecutive nodes linked) of length
// dist(s,d) — i.e. a genuine shortest path.
bool is_shortest_path(const topo::DiGraph& g, const util::Matrix<int>& dist,
                      const Path& p);

}  // namespace netsmith::routing
