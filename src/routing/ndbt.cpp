#include "routing/ndbt.hpp"

#include <algorithm>
#include <limits>

namespace netsmith::routing {

int x_direction_changes(const Path& p, const topo::Layout& layout) {
  int changes = 0;
  int last_sign = 0;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    const int dx = layout.col(p[i + 1]) - layout.col(p[i]);
    if (dx == 0) continue;
    const int sign = dx > 0 ? 1 : -1;
    if (last_sign != 0 && sign != last_sign) ++changes;
    last_sign = sign;
  }
  return changes;
}

bool double_backs_x(const Path& p, const topo::Layout& layout) {
  return x_direction_changes(p, layout) > 0;
}

NdbtFilterResult ndbt_filter(const PathSet& ps, const topo::Layout& layout) {
  const int n = ps.num_nodes();
  NdbtFilterResult result;
  result.paths = PathSet(n);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& all = ps.at(s, d);
      if (all.empty()) continue;
      auto& keep = result.paths.at(s, d);
      for (const auto& p : all)
        if (!double_backs_x(p, layout)) keep.push_back(p);
      if (keep.empty()) {
        // Fallback: minimal direction changes.
        int best = std::numeric_limits<int>::max();
        for (const auto& p : all)
          best = std::min(best, x_direction_changes(p, layout));
        for (const auto& p : all)
          if (x_direction_changes(p, layout) == best) keep.push_back(p);
        ++result.flows_without_legal_path;
      }
    }
  }
  return result;
}

}  // namespace netsmith::routing
