#pragma once
// Compiled (flat, interned) form of a PathSet for the MCLB routing engine.
//
// enumerate_shortest_paths produces a ragged vector-of-vectors-of-Paths;
// walking it during routing costs a std::map edge lookup per edge per
// candidate per round. Compiling interns every candidate path once into
// contiguous arrays:
//
//   - a dense edge index: every directed link that appears on at least one
//     candidate path gets a small integer id (first-use order), with an
//     n*n lookup table for interning and edge_src/edge_dst for the reverse
//     mapping;
//   - flows (ordered (s, d) row-major, only s != d pairs with >= 1
//     candidate) with CSR offsets into a path table;
//   - paths as CSR offsets into one flat array of edge ids, so "apply this
//     path" is a linear walk over a few ints in one cache line.
//
// The compiled form is immutable; both the flat incremental engine and the
// retained scan-based oracle in routing/mclb run on it, which keeps their
// decision sequences trivially comparable.

#include <cstdint>
#include <vector>

#include "routing/paths.hpp"

namespace netsmith::routing {

struct CompiledPathSet {
  int n = 0;          // routers
  int num_edges = 0;  // distinct directed edges used by any candidate path

  // Dense edge interning: edge id -> endpoints, and an n*n lookup table
  // (-1 = the link is on no candidate path).
  std::vector<int> edge_src, edge_dst;
  std::vector<int> edge_id;

  // Flows in (s, d) row-major order; flow_of_pair[s*n+d] = flow index or -1.
  std::vector<int> flow_s, flow_d;
  std::vector<int> flow_of_pair;

  // CSR layout: paths of flow f are path indices [path_begin[f],
  // path_begin[f+1]); edges of path p are path_edges[edge_begin[p] ..
  // edge_begin[p+1]). Path k of flow f is path index path_begin[f] + k,
  // matching PathSet::at(s, d)[k].
  std::vector<int> path_begin;
  std::vector<std::int32_t> edge_begin;
  std::vector<std::int32_t> path_edges;

  int num_flows() const { return static_cast<int>(flow_s.size()); }
  int num_paths() const { return static_cast<int>(edge_begin.size()) - 1; }
  int paths_of(int f) const { return path_begin[f + 1] - path_begin[f]; }
  int path_length(int p) const { return edge_begin[p + 1] - edge_begin[p]; }
  const std::int32_t* edges_of(int p) const {
    return path_edges.data() + edge_begin[p];
  }

  int lookup_edge(int u, int v) const {
    return edge_id[static_cast<std::size_t>(u) * n + v];
  }
};

// Interns every candidate path of ps; deterministic (first-use edge order,
// row-major flow order, PathSet path order).
CompiledPathSet compile_paths(const PathSet& ps);

// Scratch-reusing enumerate+compile: DFSes the shortest-path DAG straight
// into the compiled CSR arrays, skipping the intermediate ragged PathSet
// entirely. Produces a CompiledPathSet identical to
// compile_paths(enumerate_shortest_paths_from_dist(g, dist, cap)), but a
// persistent PathCompiler + output object amortize all allocation across
// calls — this is what the annealer's route-aware objectives run once per
// scored move.
class PathCompiler {
 public:
  void enumerate(const topo::DiGraph& g, const util::Matrix<int>& dist,
                 int max_paths_per_flow, CompiledPathSet& out);

 private:
  void dfs(const util::Matrix<int>& dist, int d, int cap,
           CompiledPathSet& out);

  std::vector<std::vector<int>> adj_;  // presorted out-neighbours
  std::vector<int> prefix_;
  int emitted_ = 0;  // paths emitted for the current flow
};

}  // namespace netsmith::routing
