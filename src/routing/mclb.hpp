#pragma once
// MCLB: "maximum channel load bottleneck" routing (paper SIII-D, Table III).
//
// Given the flat list P of all shortest paths per flow, select exactly one
// path per flow such that the maximum channel load is minimized. Two
// backends:
//   - mclb_exact: the Table III MILP (binary path_used variables, channel
//     load rows, minmax objective) solved with the in-tree MILP engine.
//     Because paths are pre-enumerated, the link_used/path_used AND-chains
//     of Table III collapse into plain column membership, exactly as the
//     paper notes ("the set of all valid paths is provided as input and the
//     formulation simply selects").
//   - mclb_local_search: a deterministic min-max local search that repeatedly
//     reroutes flows off maximally loaded channels; accepts only
//     lexicographic improvements of the sorted load profile, so it
//     terminates. Scales to the 84-router full-system configuration.

#include <vector>

#include "lp/milp.hpp"
#include "routing/channel_load.hpp"
#include "routing/paths.hpp"
#include "routing/table.hpp"

namespace netsmith::routing {

struct MclbResult {
  std::vector<int> choice;  // per flow f = s*n + d, index into ps.at(s,d)
  double max_load = 0.0;    // normalized (per unit packets/node/cycle)
  int max_flows_on_link = 0;
  long iterations = 0;
  bool proven_optimal = false;
  RoutingTable table(const PathSet& ps) const {
    return RoutingTable::from_choice(ps, choice);
  }
};

// Optional per-flow demand weights (uniform all-to-all when empty).
MclbResult mclb_local_search(const PathSet& ps,
                             const std::vector<double>& flow_weight = {},
                             int max_rounds = 64);

MclbResult mclb_exact(const PathSet& ps, const lp::MilpOptions& opts = {});

// Convenience: local search, then exact refinement when the instance is
// small enough (total paths <= exact_path_limit).
MclbResult mclb_route(const PathSet& ps, int exact_path_limit = 800);

// Fractional (multi-path) MCLB: the Table III formulation with the
// integrality of path_used relaxed, exactly the generalization the paper
// names in SIII-D-d. Solved as a pure LP; its optimum lower-bounds every
// single-path routing's max channel load and is the throughput-optimal
// traffic split when the network supports per-flow multipath.
struct FractionalMclbResult {
  // Per flow f = s*n + d: weight per candidate path (sums to 1).
  std::vector<std::vector<double>> weights;
  double max_load = 0.0;  // normalized, same units as MclbResult::max_load
  bool solved = false;
  long iterations = 0;
};

FractionalMclbResult mclb_fractional(const PathSet& ps,
                                     const lp::SimplexOptions& opts = {});

// Expected channel loads induced by a fractional routing.
LoadAnalysis analyze_fractional_choice(const PathSet& ps,
                                       const FractionalMclbResult& frac);

}  // namespace netsmith::routing
