#pragma once
// MCLB: "maximum channel load bottleneck" routing (paper SIII-D, Table III).
//
// Given the flat list P of all shortest paths per flow, select exactly one
// path per flow such that the maximum channel load is minimized. Backends:
//   - mclb_local_search: the default engine — a deterministic min-max local
//     search over the *compiled* path set (routing/compiled.hpp) with
//     incremental LoadObjective maintenance: candidate evaluation costs
//     O(path length) instead of O(links), which makes the search cheap
//     enough to run inside the annealer's move loop
//     (core::Objective::kChannelLoad).
//   - mclb_local_search_scan: the retained scan-based engine — identical
//     decision sequence, but every candidate objective is recomputed by a
//     full O(links) scan. It is the test oracle for the incremental engine
//     (tests/test_mclb_incremental.cpp) and the baseline the perf-report
//     speedup gate measures against.
//   - mclb_exact: the Table III MILP (binary path_used variables, channel
//     load rows, minmax objective) solved with the in-tree MILP engine.
//     Because paths are pre-enumerated, the link_used/path_used AND-chains
//     of Table III collapse into plain column membership, exactly as the
//     paper notes ("the set of all valid paths is provided as input and the
//     formulation simply selects"). Accepts the local-search incumbent as
//     an upper bound so callers never pay for the same search twice.

#include <vector>

#include "lp/milp.hpp"
#include "routing/channel_load.hpp"
#include "routing/compiled.hpp"
#include "routing/paths.hpp"
#include "routing/table.hpp"

namespace netsmith::routing {

// Sorted-load-profile objective: (max, #links exactly at max, sum of
// squares), compared lexicographically. at_max counts *exact* double
// equality — load values are sums of flow weights evolved by the same ±w
// sequence in every engine, so equality is well-defined and engine-
// independent; with integer or dyadic-rational weights (uniform traffic is
// weight 1.0) every quantity below is exact in double arithmetic and the
// incremental maintenance is bit-identical to a fresh scan.
struct LoadObjective {
  double max = 0.0;
  int at_max = 0;
  double sumsq = 0.0;

  // Full-scan evaluation (the oracle the incremental engine is tested
  // against).
  static LoadObjective of(const std::vector<double>& loads);

  // Comparison tolerance for a search whose largest flow weight is wmax.
  // Absolute 1e-12 misbehaves when weights span orders of magnitude (at
  // wmax = 1e6 a one-ulp summation difference is ~1e-10, which an absolute
  // 1e-12 test treats as a real improvement and the improvement loop churns
  // on float noise); scaling by wmax keeps the tolerance meaningful across
  // weight scales.
  static double tolerance(double wmax) {
    return 1e-12 * (wmax > 1.0 ? wmax : 1.0);
  }

  // Lexicographic strictly-better with tolerance eps on max; the sumsq
  // tie-break uses eps scaled by the load magnitude (sumsq is quadratic in
  // the loads, so its float noise is too).
  bool better_than(const LoadObjective& o, double eps = 1e-12) const {
    if (max < o.max - eps) return true;
    if (max > o.max + eps) return false;
    if (at_max != o.at_max) return at_max < o.at_max;
    return sumsq < o.sumsq - eps * (1.0 + max + o.max);
  }

  bool identical(const LoadObjective& o) const {
    return max == o.max && at_max == o.at_max && sumsq == o.sumsq;
  }
};

struct MclbResult {
  std::vector<int> choice;  // per flow f = s*n + d, index into ps.at(s,d)
  double max_load = 0.0;    // normalized (per unit packets/node/cycle)
  int max_flows_on_link = 0;
  LoadObjective objective;  // final load profile objective (weight units)
  long iterations = 0;
  bool proven_optimal = false;
  RoutingTable table(const PathSet& ps) const {
    return RoutingTable::from_choice(ps, choice);
  }
};

// Optional per-flow demand weights (uniform all-to-all when empty).
// Default engine: flat incremental (see header comment). The PathSet
// overloads compile internally; callers routing the same path set many
// times should compile once and use the CompiledPathSet overloads.
MclbResult mclb_local_search(const PathSet& ps,
                             const std::vector<double>& flow_weight = {},
                             int max_rounds = 64);
MclbResult mclb_local_search(const CompiledPathSet& cps,
                             const std::vector<double>& flow_weight = {},
                             int max_rounds = 64);

// Retained scan-based oracle: same decisions, O(links) per candidate.
MclbResult mclb_local_search_scan(const PathSet& ps,
                                  const std::vector<double>& flow_weight = {},
                                  int max_rounds = 64);
MclbResult mclb_local_search_scan(const CompiledPathSet& cps,
                                  const std::vector<double>& flow_weight = {},
                                  int max_rounds = 64);

// incumbent, when given, seeds the MILP's upper bound (and the fallback
// answer) instead of re-running the local search internally.
MclbResult mclb_exact(const PathSet& ps, const lp::MilpOptions& opts = {},
                      const MclbResult* incumbent = nullptr);

// Convenience: local search, then exact refinement when the instance is
// small enough (total paths <= exact_path_limit). The local-search
// incumbent is passed into mclb_exact, not recomputed.
MclbResult mclb_route(const PathSet& ps, int exact_path_limit = 800);

// Fractional (multi-path) MCLB: the Table III formulation with the
// integrality of path_used relaxed, exactly the generalization the paper
// names in SIII-D-d. Solved as a pure LP; its optimum lower-bounds every
// single-path routing's max channel load and is the throughput-optimal
// traffic split when the network supports per-flow multipath.
struct FractionalMclbResult {
  // Per flow f = s*n + d: weight per candidate path (sums to 1).
  std::vector<std::vector<double>> weights;
  double max_load = 0.0;  // normalized, same units as MclbResult::max_load
  bool solved = false;
  long iterations = 0;
};

FractionalMclbResult mclb_fractional(const PathSet& ps,
                                     const lp::SimplexOptions& opts = {});

// Expected channel loads induced by a fractional routing.
LoadAnalysis analyze_fractional_choice(const PathSet& ps,
                                       const FractionalMclbResult& frac);

}  // namespace netsmith::routing
