#pragma once
// Route repair: rebuild only the flows a fault actually severed, against the
// surviving subgraph, warm-started from the incumbent routing.
//
// The repair contract keeps the common case cheap: flows whose route avoids
// every failed edge keep their exact incumbent path (they enter the MCLB
// search as single-candidate flows, so the engine's choice-0 initial state
// IS the incumbent and the load profile starts from the pre-fault
// LoadObjective). Only severed flows get fresh shortest-path candidates
// enumerated on the degraded graph; flows the failure disconnects entirely
// are reported unroutable — the caller counts them degraded rather than
// failing the run.

#include <utility>
#include <vector>

#include "routing/mclb.hpp"
#include "routing/table.hpp"
#include "topo/graph.hpp"

namespace netsmith::routing {

struct RepairResult {
  RoutingTable table;       // repaired routing (unroutable flows keep no path)
  int flows_affected = 0;   // routes crossing at least one failed edge
  int flows_rerouted = 0;   // affected flows that found a surviving path
  int flows_unroutable = 0; // affected flows with no path in the subgraph
  LoadObjective objective;  // post-repair load profile
  long iterations = 0;      // MCLB improvement iterations spent
};

// Repairs `base_table` for the failure of `down_edges` (directed edges of
// `base_graph`; duplicates and already-absent edges are ignored). The
// returned table equals the base table on unaffected flows. An empty
// down_edges list returns the base table unchanged with zero counts.
RepairResult repair_routes(const topo::DiGraph& base_graph,
                           const RoutingTable& base_table,
                           const std::vector<std::pair<int, int>>& down_edges,
                           int max_paths_per_flow = 48);

}  // namespace netsmith::routing
