#pragma once
// Table-based routing: one chosen shortest path per flow (paper SII-E uses
// table-based routing for interposer networks; MCLB's output is exactly one
// path per flow). The table is what the simulator consumes.

#include <vector>

#include "routing/paths.hpp"
#include "util/rng.hpp"

namespace netsmith::routing {

class RoutingTable {
 public:
  RoutingTable() = default;
  explicit RoutingTable(int n) : n_(n), route_(static_cast<std::size_t>(n) * n) {}

  int num_nodes() const { return n_; }

  const Path& path(int s, int d) const {
    return route_[static_cast<std::size_t>(s) * n_ + d];
  }
  Path& path(int s, int d) { return route_[static_cast<std::size_t>(s) * n_ + d]; }

  // Next router after `cur` on the (s, d) route; -1 when cur == d or the
  // router is not on the route.
  int next_hop(int cur, int s, int d) const;

  // Builds a table by picking paths[choice[f]] for every flow f = s*n + d.
  static RoutingTable from_choice(const PathSet& ps, const std::vector<int>& choice);

  // Picks the first (deterministic) path of every flow.
  static RoutingTable select_first(const PathSet& ps);

  // Random selection among the valid choices (the paper's NDBT policy).
  static RoutingTable select_random(const PathSet& ps, util::Rng& rng);

  // Every route exists, uses graph edges, starts at s and ends at d.
  bool consistent_with(const topo::DiGraph& g) const;

  // True iff every route has length dist(s,d) (minimal routing).
  bool is_minimal(const topo::DiGraph& g) const;

 private:
  int n_ = 0;
  std::vector<Path> route_;
};

}  // namespace netsmith::routing
