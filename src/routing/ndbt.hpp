#pragma once
// "No double-back turns" routing (paper SII-E): the shortest-path routing +
// turn-based deadlock-avoidance rule used by the expert-designed topologies
// (Kite, Butter Donut, Double Butterfly, Folded Torus). A route may never
// reverse its direction of travel along the horizontal (column) axis.

#include "routing/paths.hpp"
#include "topo/layout.hpp"

namespace netsmith::routing {

// True iff the path changes horizontal direction (+x after -x or vice versa).
bool double_backs_x(const Path& p, const topo::Layout& layout);

// Number of horizontal sign changes (0 for NDBT-legal paths).
int x_direction_changes(const Path& p, const topo::Layout& layout);

struct NdbtFilterResult {
  PathSet paths;
  int flows_without_legal_path = 0;  // flows that needed the fallback
};

// Keeps only NDBT-legal paths per flow. If a flow has no legal shortest
// path, falls back to the paths with the fewest direction changes so the
// network stays routable (the count is reported for diagnostics; the expert
// topologies' published designs guarantee zero).
NdbtFilterResult ndbt_filter(const PathSet& ps, const topo::Layout& layout);

}  // namespace netsmith::routing
