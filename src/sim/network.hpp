#pragma once
// Flit-level NoI simulator (HeteroGarnet substitute, see DESIGN.md).
//
// Cycle-driven, input-queued virtual-channel wormhole network with
// credit-based flow control, table-based routing (one path per flow) and
// layered VC assignment (a packet keeps its VC end-to-end; deadlock freedom
// follows from each VC layer's acyclic CDG, which callers verify via
// vc::verify_acyclic before simulating). Per-hop latency = router pipeline +
// wire (+ CDC) cycles. Injection/ejection are 1 flit/cycle per node.

#include <cstdint>

#include "core/netsmith.hpp"
#include "sim/traffic.hpp"
#include "util/matrix.hpp"

namespace netsmith::fault {
struct FaultPlan;
}

namespace netsmith::sim {

struct SimConfig {
  int num_vcs = 6;
  int buf_flits = 8;     // per-VC input buffer depth in flits
  int router_delay = 2;  // cycles (paper Table IV: 2-cycle routers)
  int link_delay = 1;
  // Injection/ejection bandwidth in flits/cycle/node. The paper (SII-D)
  // notes local port bottlenecks are "straightforward to provision" away;
  // 2 keeps the topology, not the NI, as the binding constraint.
  int io_flits_per_cycle = 2;
  long warmup = 5000;
  long measure = 20000;
  long drain = 40000;
  std::uint64_t seed = 1;
  // Optional per-edge extra delay (e.g. 2-cycle CDC crossings); empty = 0.
  util::Matrix<int> extra_edge_delay;
  // Oracle mode: evaluate every router and output every cycle (the original
  // full-scan loop) instead of only the members of the active set. Both modes
  // share buffers, routing caches and the injection-gap sampler, so they
  // produce bit-identical SimStats for the same seed; the equivalence tests
  // assert exactly that.
  bool reference_mode = false;
  // Optional fault plan (fault/model.hpp), not owned; null or empty keeps the
  // fault-free hot path bit-identical (test_fault asserts that). Events apply
  // at cycle boundaries: a down link accepts no new flits and strands its
  // in-flight ones (lossy plans drop the affected packets instead), a down
  // router refuses injection and ejection but still forwards, and packets
  // injected during a repaired epoch route by that epoch's table.
  const fault::FaultPlan* faults = nullptr;
};

struct SimStats {
  double offered = 0.0;   // packets/node/cycle requested
  double accepted = 0.0;  // packets/node/cycle ejected during the window
  double avg_latency_cycles = 0.0;  // tagged packets, source-queue inclusive
  long tagged_injected = 0;
  long tagged_completed = 0;
  long total_injected = 0;
  long total_ejected = 0;
  bool saturated = false;
  double mean_source_backlog = 0.0;  // packets per node at window end
  long cycles_run = 0;  // simulated cycles (< horizon when drain exits early)
  // End-of-run flit accounting for the conservation invariant
  //   flits_injected == flits_ejected + flits_buffered_end + flits_inflight_end
  // (test_sim_invariants). A fully drained network additionally has the
  // *_end terms at zero, all credits restored and all VC owners null.
  long flits_injected = 0;      // flits switched out of a source NI
  long flits_ejected = 0;       // flits ejected at their destination
  long flits_buffered_end = 0;  // still in VC input buffers at exit
  long flits_inflight_end = 0;  // still on a wire at exit
  long source_flits_end = 0;    // unsent flits queued in source NIs at exit
  bool credits_consistent = true;  // credits mirror free buffer slots at exit
  bool owners_clear = true;        // no VC held by a packet at exit
  // Activity accounting, identical in reference and optimized modes (the
  // equivalence tests assert this): sum over cycles of the number of routers
  // with work pending at the start of the switch phase (buffered input flit
  // or queued source packet), and total arrival-event pops off the
  // per-channel wire heap.
  long active_router_cycles = 0;
  long arrival_heap_pops = 0;
  // Fault accounting (all zero / identity on fault-free runs). With faults
  // the conservation invariant gains a term:
  //   flits_injected == flits_ejected + flits_dropped
  //                     + flits_buffered_end + flits_inflight_end
  long flits_dropped = 0;     // purged by lossy link failures
  long packets_dropped = 0;   // whole packets purged (worm-granular)
  long tagged_dropped = 0;    // dropped packets from the measurement window
  long packets_unroutable = 0;  // offered to a flow with no surviving route
  // Tagged-packet latency percentiles and packet delivery fraction — the
  // resilience metrics the Report surfaces per fault-severity step.
  double latency_p50_cycles = 0.0;
  double latency_p99_cycles = 0.0;
  double delivered_fraction = 1.0;  // total_ejected / total_injected
};

// Runs one simulation at a fixed injection rate. The plan's VC map must use
// <= cfg.num_vcs channels.
SimStats simulate(const core::NetworkPlan& plan, const TrafficConfig& traffic,
                  const SimConfig& cfg);

}  // namespace netsmith::sim
