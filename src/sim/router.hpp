#pragma once
// Per-channel simulator state: input-queued virtual-channel wormhole
// switching with credit-based flow control.
//
// Each directed link owns (a) a per-VC input FIFO at its head router,
// (b) a per-VC credit counter at its tail router mirroring free downstream
// buffer slots, (c) a fixed-latency in-flight pipeline, and (d) a per-VC
// wormhole owner: once a head flit is switched onto (link, vc), that packet
// holds the VC until its tail passes (no flit interleaving within a VC).

#include <deque>
#include <vector>

#include "sim/packet.hpp"

namespace netsmith::sim {

struct InFlight {
  long arrive = 0;
  Flit flit;
  int vc = 0;
};

// State of one directed link.
struct Channel {
  int src = 0, dst = 0;
  int latency = 3;  // router pipeline + wire (+ CDC) cycles
  std::vector<std::deque<Flit>> in_buf;  // per VC, at the downstream router
  std::vector<int> credits;              // per VC, at the upstream router
  std::vector<Packet*> owner;            // per VC wormhole allocation
  std::deque<InFlight> flight;           // flits on the wire (FIFO: fixed lat)
  std::vector<int> rr;                   // round-robin pointers (per VC group)

  void init(int vcs, int buf_flits) {
    in_buf.assign(vcs, {});
    credits.assign(vcs, buf_flits);
    owner.assign(vcs, nullptr);
  }
};

// Per-node injection state: an unbounded source queue (NI) feeding the
// router at a configurable flits/cycle bandwidth.
struct SourceQueue {
  std::deque<Packet*> packets;
  long bw_cycle = -1;       // cycle the counter refers to
  int flits_this_cycle = 0; // flits injected in bw_cycle
};

}  // namespace netsmith::sim
