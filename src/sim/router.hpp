#pragma once
// Per-channel simulator state: input-queued virtual-channel wormhole
// switching with credit-based flow control.
//
// Each directed link owns (a) a per-VC input FIFO at its head router,
// (b) a per-VC credit counter at its tail router mirroring free downstream
// buffer slots, (c) a fixed-latency in-flight pipeline, and (d) a per-VC
// wormhole owner: once a head flit is switched onto (link, vc), that packet
// holds the VC until its tail passes (no flit interleaving within a VC).
//
// All FIFOs are fixed-capacity flat ring buffers: credits bound the per-VC
// input occupancy at buf_flits, and the wire carries at most one flit per
// cycle for `latency` cycles, so both capacities are known at init time and
// the simulator performs no steady-state allocation.

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/packet.hpp"

namespace netsmith::sim {

struct InFlight {
  long arrive = 0;
  Flit flit;
  int vc = 0;
};

// State of one directed link.
struct Channel {
  int src = 0, dst = 0;
  int latency = 3;  // router pipeline + wire (+ CDC) cycles
  int vcs = 0, cap = 0;
  int k_at_dst = 0;  // position of this channel among dst's in-edges

  std::vector<Flit> buf;             // flat per-VC rings: slot vc*cap + i
  std::vector<std::uint16_t> head;   // per-VC ring head
  std::vector<std::uint16_t> count;  // per-VC occupancy
  std::vector<int> credits;          // per VC, at the upstream router
  std::vector<Packet*> owner;        // per VC wormhole allocation

  std::vector<InFlight> wire;  // flight ring (FIFO: fixed latency)
  int wire_head = 0, wire_count = 0;

  // Requires `latency` to be set first (sizes the wire ring).
  void init(int num_vcs, int buf_flits) {
    assert(latency >= 1);
    vcs = num_vcs;
    cap = buf_flits;
    buf.assign(static_cast<std::size_t>(vcs) * cap, {});
    head.assign(vcs, 0);
    count.assign(vcs, 0);
    credits.assign(vcs, buf_flits);
    owner.assign(vcs, nullptr);
    wire.assign(static_cast<std::size_t>(latency) + 1, {});
    wire_head = wire_count = 0;
  }

  bool empty(int vc) const { return count[vc] == 0; }
  Flit& front(int vc) {
    return buf[static_cast<std::size_t>(vc) * cap + head[vc]];
  }
  void push(int vc, const Flit& f) {
    assert(count[vc] < cap);  // credits guarantee a free slot
    buf[static_cast<std::size_t>(vc) * cap + (head[vc] + count[vc]) % cap] = f;
    ++count[vc];
  }
  void pop(int vc) {
    assert(count[vc] > 0);
    head[vc] = static_cast<std::uint16_t>((head[vc] + 1) % cap);
    --count[vc];
  }

  bool wire_empty() const { return wire_count == 0; }
  InFlight& wire_front() { return wire[wire_head]; }
  void wire_push(const InFlight& f) {
    assert(wire_count < static_cast<int>(wire.size()));
    wire[(wire_head + wire_count) % wire.size()] = f;
    ++wire_count;
  }
  void wire_pop() {
    assert(wire_count > 0);
    wire_head = static_cast<int>((wire_head + 1) % wire.size());
    --wire_count;
  }
};

// Per-node injection state: an unbounded source queue (NI) feeding the
// router at a configurable flits/cycle bandwidth.
struct SourceQueue {
  std::deque<Packet*> packets;
  long bw_cycle = -1;       // cycle the counter refers to
  int flits_this_cycle = 0; // flits injected in bw_cycle
};

}  // namespace netsmith::sim
