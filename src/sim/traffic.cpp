#include "sim/traffic.hpp"

namespace netsmith::sim {

std::vector<int> mc_nodes(const topo::Layout& layout) {
  std::vector<int> mcs;
  for (int r = 0; r < layout.rows; ++r) {
    mcs.push_back(layout.id(r, 0));
    mcs.push_back(layout.id(r, layout.cols - 1));
  }
  return mcs;
}

TrafficConfig traffic_from_pattern(const util::Matrix<double>& weight,
                                   double injection_rate) {
  const int n = static_cast<int>(weight.rows());
  TrafficConfig t;
  t.kind = TrafficKind::kCustom;
  t.injection_rate = injection_rate;
  t.custom.assign(n, {});
  t.sources.clear();
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d || weight(s, d) <= 0.0) continue;
      t.custom[s].emplace_back(d, weight(s, d));
    }
    if (!t.custom[s].empty()) t.sources.push_back(s);
  }
  return t;
}

}  // namespace netsmith::sim
