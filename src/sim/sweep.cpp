#include "sim/sweep.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace netsmith::sim {

namespace {

// Latency blowing past this multiple of zero-load marks saturation.
constexpr double kSaturationLatencyFactor = 6.0;

}  // namespace

std::vector<double> default_rates(double max_rate, int points) {
  std::vector<double> rates;
  rates.reserve(points);
  // Denser near the knee: quadratic spacing.
  for (int i = 1; i <= points; ++i) {
    const double f = static_cast<double>(i) / points;
    rates.push_back(max_rate * f * f * 0.3 + max_rate * f * 0.7);
  }
  return rates;
}

SweepResult injection_sweep(const core::NetworkPlan& plan,
                            const TrafficConfig& traffic, const SimConfig& cfg,
                            double clock_ghz,
                            const std::vector<double>& rates,
                            const SweepOptions& opt) {
  SweepResult result;
  if (rates.empty()) return result;
  result.points.resize(rates.size());

  obs::Span span("sim/sweep");
  span.arg("points", static_cast<int>(rates.size()));
  span.arg("max_rate", rates.back());

  // Job 0 is the zero-load reference run; job i >= 1 is rate point i - 1.
  // Jobs run in ascending-rate waves sized to the thread team: each wave is
  // one parallel region, and truncation for a wave depends only on completed
  // waves, so the sweep stays deterministic per thread count while the
  // zero-load run and the low-rate points still overlap.
  SimStats zero_stats;
#if defined(_OPENMP)
  const std::size_t wave = static_cast<std::size_t>(
      std::max(1, omp_get_max_threads()));
#else
  const std::size_t wave = 1;
#endif
  result.omp_threads = static_cast<int>(wave);
  const std::size_t total = rates.size() + 1;
  bool saturated_seen = false;
  for (std::size_t begin = 0; begin < total; begin += wave) {
    const std::size_t end = std::min(total, begin + wave);
    const bool truncate = opt.adaptive && saturated_seen;
#pragma omp parallel for schedule(dynamic)
    for (std::size_t job = begin; job < end; ++job) {
      if (job == 0) {
        TrafficConfig t0 = traffic;
        t0.injection_rate = std::max(1e-4, rates.front() * 0.05);
        zero_stats = simulate(plan, t0, cfg);
        continue;
      }
      const std::size_t i = job - 1;
      TrafficConfig t = traffic;
      t.injection_rate = rates[i];
      SimConfig c = cfg;
      c.seed = cfg.seed + 1000 + i;  // independent streams per point
      if (truncate) {
        // Floors keep short-window estimates usable, but never let the
        // "truncated" window exceed what the caller configured.
        c.measure = std::min(cfg.measure, std::max(opt.min_measure,
                                                   cfg.measure / opt.truncate_factor));
        c.drain = std::min(cfg.drain, std::max(opt.min_drain,
                                               cfg.drain / opt.truncate_factor));
      }
      SweepPoint pt;
      pt.offered_pkt_node_cycle = rates[i];
      pt.stats = simulate(plan, t, c);
      pt.latency_ns = pt.stats.avg_latency_cycles / clock_ghz;
      pt.accepted_pkt_node_ns = pt.stats.accepted * clock_ghz;
      result.points[i] = pt;
    }
    for (std::size_t job = std::max<std::size_t>(begin, 1); job < end; ++job)
      if (result.points[job - 1].stats.saturated) saturated_seen = true;
  }
  result.zero_load_latency_cycles = zero_stats.avg_latency_cycles;
  result.zero_load_latency_ns = zero_stats.avg_latency_cycles / clock_ghz;

  // Saturation throughput: the highest accepted rate before the latency
  // threshold (or explicit saturation flag) trips.
  const double threshold =
      result.zero_load_latency_cycles * kSaturationLatencyFactor;
  for (const auto& pt : result.points) {
    const bool sat = pt.stats.saturated ||
                     (pt.stats.avg_latency_cycles > threshold &&
                      result.zero_load_latency_cycles > 0.0);
    if (!sat)
      result.saturation_pkt_node_cycle =
          std::max(result.saturation_pkt_node_cycle, pt.stats.accepted);
    else
      // Accepted throughput at/after saturation is still a valid measure of
      // delivered bandwidth (input-queued networks can deliver slightly more
      // under overload).
      result.saturation_pkt_node_cycle =
          std::max(result.saturation_pkt_node_cycle,
                   std::min(pt.stats.accepted, pt.offered_pkt_node_cycle));
  }
  result.saturation_pkt_node_ns = result.saturation_pkt_node_cycle * clock_ghz;
  return result;
}

SweepResult sweep_to_saturation(const core::NetworkPlan& plan,
                                const TrafficConfig& traffic,
                                const SimConfig& cfg, double clock_ghz,
                                int points, double max_rate_override,
                                const SweepOptions& opt) {
  double max_rate = max_rate_override;
  if (max_rate <= 0.0) {
    // The routed channel-load bound caps useful offered rates.
    max_rate = 0.5;
    if (plan.max_channel_load > 0.0)
      max_rate = std::min(1.0, 1.6 / plan.max_channel_load);
    // Account for multi-flit packets: rates are packets/node/cycle but links
    // carry flits; the average packet is (1 + data_fraction*(data-1)) flits.
    const double avg_flits =
        traffic.kind == TrafficKind::kMemory
            ? 0.5 * (traffic.ctrl_flits + traffic.data_flits)
            : traffic.ctrl_flits + traffic.data_fraction *
                                       (traffic.data_flits - traffic.ctrl_flits);
    max_rate /= std::max(1.0, avg_flits);
  }
  return injection_sweep(plan, traffic, cfg, clock_ghz,
                         default_rates(max_rate, points), opt);
}

}  // namespace netsmith::sim
