#pragma once
// Synthetic traffic models (paper SIV/SV):
//  - kCoherence: uniform random destinations, control/data mixed with equal
//    likelihood (Fig. 6a "coherence traffic").
//  - kMemory: request/reply to memory-controller routers (Fig. 6b); MCs sit
//    on the leftmost and rightmost NoI columns. A 1-flit request ejected at
//    an MC generates a 9-flit data reply to the requester.
//  - kShuffle: the gem5 shuffle permutation (Fig. 10).
//  - kCustom: explicit destination list per source (full-system module).

#include <vector>

#include "topo/layout.hpp"
#include "util/matrix.hpp"

namespace netsmith::sim {

enum class TrafficKind { kCoherence, kMemory, kShuffle, kCustom };

struct TrafficConfig {
  TrafficKind kind = TrafficKind::kCoherence;
  double injection_rate = 0.01;  // offered packets / node / cycle
  int ctrl_flits = 1;
  int data_flits = 9;
  double data_fraction = 0.5;  // coherence/shuffle packet mix
  std::vector<int> mc_nodes;   // kMemory destinations
  // kCustom: per source, list of (dst, relative weight); empty = idle node.
  std::vector<std::vector<std::pair<int, double>>> custom;
  // kCustom request/reply: if true, ejection of a request at dst generates a
  // data reply to src.
  bool custom_reply = false;
  // Sources that inject (empty = all nodes).
  std::vector<int> sources;
};

// Memory-controller routers for the NoI layout: left and right columns.
std::vector<int> mc_nodes(const topo::Layout& layout);

// Wraps an arbitrary traffic matrix (e.g. core::tornado_pattern) as kCustom
// traffic: node s picks destination d with probability proportional to
// weight(s, d). Nodes with no outgoing weight stay idle.
TrafficConfig traffic_from_pattern(const util::Matrix<double>& weight,
                                   double injection_rate);

}  // namespace netsmith::sim
