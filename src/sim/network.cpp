#include "sim/network.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/objective.hpp"
#include "fault/model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/router.hpp"
#include "util/rng.hpp"

namespace netsmith::sim {

namespace {

// Activity-driven flit simulator. The per-cycle loop touches only
//  (a) channels with a flit arriving now (per-channel arrival min-heap),
//  (b) routers in the active set (any buffered input flit or queued source
//      packet; re-armed on arrival/injection, retired when both drain), and
//  (c) sources whose pre-sampled geometric injection gap expires now.
// Idle routers and idle sources therefore cost zero work per cycle, which is
// the common case over the low-rate half of every injection sweep.
//
// cfg.reference_mode keeps the original full-scan loop (every router, every
// output, every cycle; per-cycle linear scan of the injection schedule) as a
// bit-exact oracle: skipping a router with no buffered flits and no queued
// packets is a no-op (round-robin pointers only move on grants), and routers
// are visited in ascending index order in both modes, so instantaneous
// credit returns are observed identically.
class Simulator {
 public:
  Simulator(const core::NetworkPlan& plan, const TrafficConfig& traffic,
            const SimConfig& cfg)
      : plan_(plan), traffic_(traffic), cfg_(cfg), n_(plan.graph.num_nodes()),
        rng_(cfg.seed) {
    build_channels();
    sources_.resize(n_);
    eject_rr_.assign(n_, 0);
    last_input_pop_.assign(channels_.size(), -1);
    in_buffered_.assign(n_, 0);
    active_words_.assign((static_cast<std::size_t>(n_) + 63) / 64, 0);
    // An absent or empty fault plan leaves faults_ null, and every fault
    // branch below is a single predictable `if (faults_)` — the fault-free
    // hot path runs the exact pre-fault instruction stream.
    if (cfg.faults != nullptr && !cfg.faults->empty()) {
      faults_ = cfg.faults;
      link_down_.assign(channels_.size(), 0);
      wire_armed_.assign(channels_.size(), 0);
      router_down_.assign(static_cast<std::size_t>(n_), 0);
      // Route-of-record per epoch: unrepaired epochs point at the base plan.
      epoch_tables_.reserve(faults_->epochs.size());
      epoch_vcs_.reserve(faults_->epochs.size());
      for (const fault::FaultEpoch& ep : faults_->epochs) {
        epoch_tables_.push_back(ep.repaired ? &ep.table : &plan_.table);
        epoch_vcs_.push_back(ep.repaired ? &ep.vc_map : &plan_.vc_map);
      }
    }
    prepare_traffic();
    schedule_initial_injections();
  }

  SimStats run() {
    const long horizon = cfg_.warmup + cfg_.measure + cfg_.drain;
    const long window_end = cfg_.warmup + cfg_.measure;

    obs::Span span("sim/run");
    span.arg("n", n_);
    span.arg("rate", traffic_.injection_rate);
    // Sampled once per run: the per-cycle loop below must not re-read the
    // global gate.
    metrics_on_ = obs::metrics_enabled();

    stats_.cycles_run = horizon;
    for (long cycle = 0; cycle < horizon; ++cycle) {
      if (faults_) apply_fault_events(cycle);
      deliver_arrivals(cycle);
      if (cfg_.reference_mode)
        switch_all(cycle);
      else
        switch_active(cycle);
      if (cycle < window_end) generate_traffic(cycle);
      if (cycle == window_end - 1) record_backlog();
      // Early exit once every tagged packet has drained (dropped packets
      // count as resolved — they will never complete).
      if (cycle >= window_end &&
          stats_.tagged_completed + stats_.tagged_dropped ==
              stats_.tagged_injected &&
          stats_.tagged_injected > 0 && pending_replies_ == 0) {
        stats_.cycles_run = cycle + 1;
        break;
      }
    }

    stats_.offered = traffic_.injection_rate;
    stats_.accepted = static_cast<double>(ejected_in_window_) /
                      (static_cast<double>(active_sources_.size()) *
                       static_cast<double>(cfg_.measure));
    if (stats_.tagged_completed > 0)
      stats_.avg_latency_cycles =
          static_cast<double>(latency_sum_) / stats_.tagged_completed;
    // Saturation: backlog piled up, or tagged traffic failed to drain.
    const double drained =
        stats_.tagged_injected > 0
            ? static_cast<double>(stats_.tagged_completed) / stats_.tagged_injected
            : 1.0;
    stats_.saturated = stats_.mean_source_backlog > 4.0 || drained < 0.95;
    stats_.delivered_fraction =
        stats_.total_injected > 0
            ? static_cast<double>(stats_.total_ejected) / stats_.total_injected
            : 1.0;
    if (!latencies_.empty()) {
      std::sort(latencies_.begin(), latencies_.end());
      stats_.latency_p50_cycles =
          static_cast<double>(latencies_[(latencies_.size() - 1) / 2]);
      stats_.latency_p99_cycles = static_cast<double>(
          latencies_[(latencies_.size() - 1) * 99 / 100]);
    }
    record_residuals();
    span.arg("cycles", stats_.cycles_run);
    span.arg("accepted", stats_.accepted);
    span.arg("avg_latency", stats_.avg_latency_cycles);
    if (metrics_on_) flush_metrics();
    return stats_;
  }

 private:
  // --- Setup -------------------------------------------------------------
  void build_channels() {
    // No dense (u, v) -> channel map: lookups go through the per-router
    // adjacency lists, and an n^2-int table would dominate the simulator's
    // footprint at n = 1024 (4 MB for a graph with ~4n channels).
    out_edges_.resize(n_);
    in_edges_.resize(n_);
    for (const auto& [u, v] : plan_.graph.edges()) {
      Channel ch;
      ch.src = u;
      ch.dst = v;
      ch.latency = cfg_.router_delay + cfg_.link_delay;
      if (cfg_.extra_edge_delay.rows() == static_cast<std::size_t>(n_))
        ch.latency += cfg_.extra_edge_delay(u, v);
      ch.init(cfg_.num_vcs, cfg_.buf_flits);
      ch.k_at_dst = static_cast<int>(in_edges_[v].size());
      const int id = static_cast<int>(channels_.size());
      out_edges_[u].push_back(id);
      in_edges_[v].push_back(id);
      channels_.push_back(std::move(ch));
    }
    out_rr_.assign(channels_.size(), 0);
    // Per-router occupancy bitmask over (input k, vc) slots, so arbitration
    // visits only non-empty slots. Usable when every slot index — including
    // the injection input at k == in_degree — fits in one word.
    buf_mask_.assign(n_, 0);
    mask_ok_.resize(n_);
    for (int u = 0; u < n_; ++u)
      mask_ok_[u] = (in_edges_[u].size() + 1) * cfg_.num_vcs <= 64;
  }

  void prepare_traffic() {
    if (traffic_.sources.empty()) {
      for (int i = 0; i < n_; ++i) active_sources_.push_back(i);
    } else {
      active_sources_ = traffic_.sources;
    }
    if (traffic_.kind == TrafficKind::kMemory && traffic_.mc_nodes.empty())
      throw std::invalid_argument("memory traffic requires mc_nodes");
    if (traffic_.kind == TrafficKind::kCustom) {
      if (traffic_.custom.size() != static_cast<std::size_t>(n_))
        throw std::invalid_argument("custom traffic needs per-node entries");
      cum_.resize(n_);
      for (int s = 0; s < n_; ++s) {
        double acc = 0.0;
        for (const auto& [d, w] : traffic_.custom[s]) {
          acc += w;
          cum_[s].emplace_back(acc, d);
        }
      }
    }
  }

  // --- Traffic generation -------------------------------------------------
  // Per-source Bernoulli(p) injection, sampled as geometric inter-arrival
  // gaps: one RNG draw per injected packet instead of one per source per
  // cycle, so idle sources cost nothing. Both modes share the sampler (and
  // hence the RNG stream); they differ only in how due sources are found
  // (reference: linear scan of next_inject_; optimized: (cycle, idx) min-heap,
  // which pops equal-cycle entries in ascending source order — the same order
  // the linear scan visits them).
  void schedule_initial_injections() {
    const long window_end = cfg_.warmup + cfg_.measure;
    next_inject_.assign(active_sources_.size(), window_end);
    if (traffic_.injection_rate <= 0.0) return;
    for (std::size_t i = 0; i < active_sources_.size(); ++i) {
      next_inject_[i] = next_injection_after(-1);
      if (!cfg_.reference_mode && next_inject_[i] < window_end)
        inject_heap_.emplace(next_inject_[i], static_cast<int>(i));
    }
  }

  // First Bernoulli(p) success strictly after `cycle` (inverse-CDF geometric
  // sampling), clamped to the horizon.
  long next_injection_after(long cycle) {
    const double p = traffic_.injection_rate;
    if (p >= 1.0) return cycle + 1;
    const double gap =
        1.0 + std::floor(std::log1p(-rng_.uniform()) / std::log1p(-p));
    const long horizon = cfg_.warmup + cfg_.measure + cfg_.drain;
    const double next = static_cast<double>(cycle) + gap;
    return next >= static_cast<double>(horizon) ? horizon : static_cast<long>(next);
  }

  int pick_dest(int src) {
    switch (traffic_.kind) {
      case TrafficKind::kCoherence: {
        int d = static_cast<int>(rng_.uniform_int(0, n_ - 2));
        if (d >= src) ++d;
        return d;
      }
      case TrafficKind::kShuffle: {
        const int d = core::shuffle_dest(src, n_);
        return d == src ? -1 : d;
      }
      case TrafficKind::kMemory: {
        for (int attempt = 0; attempt < 8; ++attempt) {
          const int d = traffic_.mc_nodes[static_cast<std::size_t>(rng_.uniform_int(
              0, static_cast<std::int64_t>(traffic_.mc_nodes.size()) - 1))];
          if (d != src) return d;
        }
        return -1;
      }
      case TrafficKind::kCustom: {
        const auto& c = cum_[src];
        if (c.empty()) return -1;
        const double r = rng_.uniform() * c.back().first;
        const auto it = std::lower_bound(
            c.begin(), c.end(), r,
            [](const std::pair<double, int>& e, double v) { return e.first < v; });
        const int d = it == c.end() ? c.back().second : it->second;
        return d == src ? -1 : d;
      }
    }
    return -1;
  }

  int packet_size(bool is_request) {
    if (traffic_.kind == TrafficKind::kMemory)
      return is_request ? traffic_.ctrl_flits : traffic_.data_flits;
    return rng_.uniform() < traffic_.data_fraction ? traffic_.data_flits
                                                   : traffic_.ctrl_flits;
  }

  Packet* make_packet(int src, int dst, int flits, long cycle, bool request) {
    // New packets route by the current epoch's table; the epoch index is
    // pinned into the packet so later repairs never re-route it mid-flight.
    const routing::RoutingTable& table =
        faults_ ? *epoch_tables_[cur_epoch_] : plan_.table;
    const vc::VcMap& vcm = faults_ ? *epoch_vcs_[cur_epoch_] : plan_.vc_map;
    const int vc = vcm.vc[static_cast<std::size_t>(src) * n_ + dst];
    if (vc < 0) {
      // No route: a fault disconnected the flow (counted degraded), or the
      // base plan is malformed (shouldn't happen when connected).
      if (faults_) ++stats_.packets_unroutable;
      return nullptr;
    }
    Packet* p;
    if (!freelist_.empty()) {
      p = freelist_.back();
      freelist_.pop_back();
      *p = Packet{};
    } else {
      arena_.emplace_back();
      p = &arena_.back();
    }
    p->id = next_id_++;
    p->src = src;
    p->dst = dst;
    p->flits = flits;
    p->vc = vc;
    p->src_next = table.next_hop(src, src, dst);
    p->epoch = static_cast<int>(cur_epoch_);
    p->inject_cycle = cycle;
    p->tagged = cycle >= cfg_.warmup && cycle < cfg_.warmup + cfg_.measure;
    p->is_request = request;
    return p;
  }

  void inject_from(int idx, long cycle) {
    const int s = active_sources_[idx];
    const int d = pick_dest(s);
    if (d < 0) return;
    const bool request = traffic_.kind == TrafficKind::kMemory ||
                         (traffic_.kind == TrafficKind::kCustom &&
                          traffic_.custom_reply);
    Packet* p = make_packet(s, d, packet_size(request), cycle, request);
    if (!p) return;
    sources_[s].packets.push_back(p);
    activate(s);
    ++stats_.total_injected;
    if (p->tagged) ++stats_.tagged_injected;
    if (p->is_request) ++pending_replies_;
  }

  void generate_traffic(long cycle) {
    if (traffic_.injection_rate <= 0.0) return;
    if (cfg_.reference_mode) {
      for (std::size_t i = 0; i < active_sources_.size(); ++i) {
        if (next_inject_[i] != cycle) continue;
        inject_from(static_cast<int>(i), cycle);
        next_inject_[i] = next_injection_after(cycle);
      }
      return;
    }
    const long window_end = cfg_.warmup + cfg_.measure;
    while (!inject_heap_.empty() && inject_heap_.top().first <= cycle) {
      const int i = inject_heap_.top().second;
      inject_heap_.pop();
      inject_from(i, cycle);
      const long next = next_injection_after(cycle);
      next_inject_[static_cast<std::size_t>(i)] = next;
      if (next < window_end) inject_heap_.emplace(next, i);
    }
  }

  // --- Active set ----------------------------------------------------------
  void activate(int u) {
    active_words_[static_cast<std::size_t>(u) >> 6] |= 1ULL << (u & 63);
  }

  // --- Fault injection -----------------------------------------------------
  // Everything in this section runs only when faults_ is set; the fault-free
  // path never reaches it.

  int channel_id(int u, int v) const {
    for (int id : out_edges_[u])
      if (channels_[id].dst == v) return id;
    return -1;
  }

  // The routing a packet was injected under (its epoch of record).
  const routing::RoutingTable& table_for(const Packet* p) const {
    return faults_ ? *epoch_tables_[static_cast<std::size_t>(p->epoch)]
                   : plan_.table;
  }

  // Applies all fault events due at `cycle` (idempotent per component), then
  // advances the current routing epoch. Runs before delivery/switching, so a
  // link failing at cycle c carries nothing during c and a recovering link
  // delivers its stranded flits the same cycle it comes back.
  void apply_fault_events(long cycle) {
    const auto& evs = faults_->events;
    while (next_event_ < evs.size() && evs[next_event_].cycle <= cycle) {
      const fault::FaultEvent& e = evs[next_event_++];
      switch (e.kind) {
        case fault::FaultEventKind::kLinkDown: {
          const int id = channel_id(e.a, e.b);
          if (id >= 0 && !link_down_[id]) {
            link_down_[id] = 1;
            if (faults_->lossy) drop_wire_packets(id);
          }
          break;
        }
        case fault::FaultEventKind::kLinkUp: {
          const int id = channel_id(e.a, e.b);
          if (id >= 0 && link_down_[id]) {
            link_down_[id] = 0;
            Channel& ch = channels_[id];
            // Stranded flits resume: re-arm the arrival heap unless an entry
            // for this channel is already pending.
            if (!ch.wire_empty() && !wire_armed_[id]) {
              arrival_heap_.emplace(std::max(ch.wire_front().arrive, cycle),
                                    id);
              wire_armed_[id] = 1;
            }
          }
          break;
        }
        case fault::FaultEventKind::kRouterDown:
          router_down_[static_cast<std::size_t>(e.a)] = 1;
          break;
        case fault::FaultEventKind::kRouterUp:
          router_down_[static_cast<std::size_t>(e.a)] = 0;
          activate(e.a);  // resume refused injection/ejection work
          break;
      }
    }
    while (cur_epoch_ + 1 < faults_->epochs.size() &&
           faults_->epochs[cur_epoch_ + 1].cycle <= cycle)
      ++cur_epoch_;
  }

  // Lossy link failure: every packet with a flit in flight on the failing
  // wire is purged whole — worm-granular, because dropping part of a worm
  // would leave downstream VC owners held forever. Flits are removed from
  // every wire and buffer in the network, their reserved credits returned,
  // and the packet recycled; counts land in the dropped stats.
  void drop_wire_packets(int id) {
    Channel& ch = channels_[id];
    if (ch.wire_empty()) return;
    std::vector<Packet*> victims;
    for (int j = 0; j < ch.wire_count; ++j) {
      Packet* p =
          ch.wire[(ch.wire_head + j) % ch.wire.size()].flit.pkt;
      if (!p->dropped) {
        p->dropped = true;
        victims.push_back(p);
      }
    }
    purge_dropped();
    for (Packet* p : victims) {
      ++stats_.packets_dropped;
      if (p->tagged) ++stats_.tagged_dropped;
      if (p->is_request) --pending_replies_;
      // A victim with unsent flits is necessarily its source queue's front
      // (later packets have sent nothing, so they have no wire presence).
      auto& sq = sources_[p->src];
      if (!sq.packets.empty() && sq.packets.front() == p)
        sq.packets.pop_front();
      p->dropped = false;
      freelist_.push_back(p);
    }
  }

  // Removes every flit of dropped packets from all wire and buffer rings,
  // restoring the credits those flits held and clearing their VC ownership.
  void purge_dropped() {
    for (std::size_t id = 0; id < channels_.size(); ++id) {
      Channel& ch = channels_[id];
      if (ch.wire_count > 0) {
        const int w = ch.wire_count;
        const std::size_t ring = ch.wire.size();
        int kept = 0;
        for (int j = 0; j < w; ++j) {
          const InFlight f = ch.wire[(ch.wire_head + j) % ring];
          if (f.flit.pkt->dropped) {
            ++ch.credits[f.vc];  // reserved downstream slot, never filled
            ++stats_.flits_dropped;
          } else {
            ch.wire[(ch.wire_head + kept) % ring] = f;
            ++kept;
          }
        }
        ch.wire_count = kept;
        // A now-stale heap entry self-corrects: its pop delivers nothing and
        // re-arms from the surviving front (see deliver_arrivals).
      }
      for (int vc = 0; vc < ch.vcs; ++vc) {
        if (ch.count[vc] > 0) {
          const int c = ch.count[vc];
          int kept = 0;
          for (int j = 0; j < c; ++j) {
            const Flit f =
                ch.buf[static_cast<std::size_t>(vc) * ch.cap +
                       (ch.head[vc] + j) % ch.cap];
            if (f.pkt->dropped) {
              ++ch.credits[vc];
              --in_buffered_[ch.dst];
              ++stats_.flits_dropped;
            } else {
              ch.buf[static_cast<std::size_t>(vc) * ch.cap +
                     (ch.head[vc] + kept) % ch.cap] = f;
              ++kept;
            }
          }
          ch.count[vc] = kept;
          if (kept == 0 && mask_ok_[ch.dst])
            buf_mask_[ch.dst] &=
                ~(1ULL << (ch.k_at_dst * cfg_.num_vcs + vc));
        }
        if (ch.owner[vc] != nullptr && ch.owner[vc]->dropped)
          ch.owner[vc] = nullptr;
      }
    }
  }

  // --- Flit movement -------------------------------------------------------
  // Event-driven delivery: instead of scanning every channel every cycle, a
  // min-heap holds one (earliest in-flight arrival, channel) entry per
  // channel with flits on the wire. Per-channel arrivals are monotone (FIFO
  // wire, fixed latency), so the invariant "in the heap iff flight
  // non-empty" survives pops and re-arms. Every delivery re-arms the
  // downstream router's active bit.
  void deliver_arrivals(long cycle) {
    while (!arrival_heap_.empty() && arrival_heap_.top().first <= cycle) {
      const int id = arrival_heap_.top().second;
      arrival_heap_.pop();
      ++stats_.arrival_heap_pops;
      Channel& ch = channels_[id];
      if (faults_) {
        wire_armed_[id] = 0;
        // A down link strands its in-flight flits: no delivery, no re-arm
        // (kLinkUp re-arms). Drops the heap entry on the floor.
        if (link_down_[id]) continue;
      }
      bool delivered = false;
      while (!ch.wire_empty() && ch.wire_front().arrive <= cycle) {
        const InFlight& f = ch.wire_front();
        ch.push(f.vc, f.flit);
        if (mask_ok_[ch.dst])
          buf_mask_[ch.dst] |=
              1ULL << (ch.k_at_dst * cfg_.num_vcs + f.vc);
        ch.wire_pop();
        ++in_buffered_[ch.dst];
        delivered = true;
      }
      // Fault-free, every pop delivers (the heap invariant guarantees a due
      // front), so the guard never changes behavior; it exists for stale
      // entries left by lossy purges and link-up re-arms.
      if (delivered) activate(ch.dst);
      if (!ch.wire_empty()) {
        arrival_heap_.emplace(ch.wire_front().arrive, id);
        if (faults_) wire_armed_[id] = 1;
      }
    }
  }

  void switch_router(int u, long cycle) {
    ejection(u, cycle);
    for (int eid : out_edges_[u]) arbitrate_output(u, eid, cycle);
  }

  // Per-cycle activity accounting. The SimStats sum is always maintained
  // (the equivalence tests compare it across modes); the power-of-two
  // occupancy histogram accumulates locally and flushes once per run.
  void count_occupancy(long active) {
    stats_.active_router_cycles += active;
    if (!metrics_on_) return;
    int b = 0;
    while (b < kOccBuckets - 1 && active > kOccBounds[b]) ++b;
    ++occ_counts_[b];
  }

  void flush_metrics() {
    obs::counter("sim.runs").inc();
    obs::counter("sim.cycles")
        .add(static_cast<std::uint64_t>(stats_.cycles_run));
    obs::counter("sim.flits_injected")
        .add(static_cast<std::uint64_t>(flits_injected_));
    obs::counter("sim.flits_ejected")
        .add(static_cast<std::uint64_t>(flits_ejected_));
    obs::counter("sim.arrival_heap_pops")
        .add(static_cast<std::uint64_t>(stats_.arrival_heap_pops));
    obs::counter("sim.active_router_cycles")
        .add(static_cast<std::uint64_t>(stats_.active_router_cycles));
    auto& h = obs::histogram(
        "sim.active_routers",
        std::vector<double>(kOccBounds, kOccBounds + kOccBuckets - 1));
    for (int b = 0; b < kOccBuckets; ++b) {
      // bounds are inclusive upper edges, so bound b lands in bucket b; the
      // overflow bucket takes anything past the last bound.
      const double rep =
          b < kOccBuckets - 1 ? kOccBounds[b] : kOccBounds[kOccBuckets - 2] + 1;
      h.record_n(rep, static_cast<std::uint64_t>(occ_counts_[b]));
    }
  }

  // Reference mode: visit every router every cycle, ascending. The occupancy
  // pre-scan applies the retire predicate directly; in optimized mode the
  // same number falls out of the active bitmap (activations always accompany
  // new work and retirement only happens on drain, so at the start of the
  // switch phase the active set IS the predicate-true set).
  void switch_all(long cycle) {
    current_cycle_ = cycle;
    long active = 0;
    for (int u = 0; u < n_; ++u)
      if (in_buffered_[u] > 0 || !sources_[u].packets.empty()) ++active;
    count_occupancy(active);
    for (int u = 0; u < n_; ++u) switch_router(u, cycle);
  }

  // Optimized mode: visit only active routers, still in ascending order (the
  // word loop re-reads active_words_[w] so a router activated mid-cycle by an
  // earlier router — a reply enqueued at an ejecting node — is still visited
  // this cycle, exactly as the full scan would). A router retires from the
  // set only when it holds no buffered flit and no queued source packet;
  // anything blocked on credits or bandwidth stays in.
  void switch_active(long cycle) {
    current_cycle_ = cycle;
    long active = 0;
    for (std::uint64_t w : active_words_) active += std::popcount(w);
    count_occupancy(active);
    for (std::size_t w = 0; w < active_words_.size(); ++w) {
      std::uint64_t done = 0;
      while (std::uint64_t pending = active_words_[w] & ~done) {
        const int bit = std::countr_zero(pending);
        done |= 1ULL << bit;
        const int u = static_cast<int>(w << 6) + bit;
        switch_router(u, cycle);
        if (in_buffered_[u] == 0 && sources_[u].packets.empty())
          active_words_[w] &= ~(1ULL << bit);
      }
    }
  }

  // Head flit of (input source k, vc) at router u, or nullptr.
  Flit* peek(int u, std::size_t k, int vc) {
    const auto& ins = in_edges_[u];
    if (k < ins.size()) {
      Channel& ch = channels_[ins[k]];
      return ch.empty(vc) ? nullptr : &ch.front(vc);
    }
    // Injection source: synthesize the next flit view of the head packet.
    // A down router's NI refuses injection; its queue backs up instead.
    if (faults_ && router_down_[static_cast<std::size_t>(u)]) return nullptr;
    auto& sq = sources_[u];
    if (sq.packets.empty() || !source_bw_free(sq)) return nullptr;
    Packet* p = sq.packets.front();
    if (p->vc != vc) return nullptr;
    inject_view_.pkt = p;
    inject_view_.head = p->flits_sent == 0;
    inject_view_.tail = p->flits_sent == p->flits - 1;
    inject_view_.next = p->src_next;
    return &inject_view_;
  }

  void pop(int u, std::size_t k, int vc, long cycle) {
    const auto& ins = in_edges_[u];
    if (k < ins.size()) {
      Channel& ch = channels_[ins[k]];
      ch.pop(vc);
      if (ch.empty(vc) && mask_ok_[u])
        buf_mask_[u] &= ~(1ULL << (ch.k_at_dst * cfg_.num_vcs + vc));
      ++ch.credits[vc];  // instantaneous credit return (simplification)
      --in_buffered_[u];
      last_input_pop_[ins[k]] = cycle;
    } else {
      auto& sq = sources_[u];
      Packet* p = sq.packets.front();
      ++p->flits_sent;
      ++flits_injected_;
      if (sq.bw_cycle != cycle) {
        sq.bw_cycle = cycle;
        sq.flits_this_cycle = 0;
      }
      ++sq.flits_this_cycle;
      if (p->flits_sent == p->flits) sq.packets.pop_front();
    }
  }

  bool source_bw_free(const SourceQueue& sq) const {
    return sq.bw_cycle != current_cycle_ ||
           sq.flits_this_cycle < cfg_.io_flits_per_cycle;
  }

  bool input_port_free(int u, std::size_t k, long cycle) const {
    const auto& ins = in_edges_[u];
    if (k < ins.size()) return last_input_pop_[ins[k]] != cycle;
    return source_bw_free(sources_[u]);
  }

  void arbitrate_output(int u, int eid, long cycle) {
    if (faults_ && link_down_[eid]) return;  // down links accept no flits
    Channel& out = channels_[eid];
    const std::size_t num_inputs = in_edges_[u].size() + 1;
    const std::size_t slots = num_inputs * cfg_.num_vcs;
    int& rr = out_rr_[eid];

    // Returns true when the slot wins the output this cycle.
    const auto try_slot = [&](std::size_t slot) {
      const std::size_t k = slot / cfg_.num_vcs;
      const int vc = static_cast<int>(slot % cfg_.num_vcs);
      if (!input_port_free(u, k, cycle)) return false;
      Flit* f = peek(u, k, vc);
      if (!f) return false;
      Packet* p = f->pkt;
      if (cfg_.reference_mode) {
        // Oracle: route from the table per candidate, as the original scan
        // did. f->next caches exactly this lookup (-1 when p->dst == u).
        if (p->dst == u) return false;  // belongs to the ejection port
        if (table_for(p).next_hop(u, p->src, p->dst) != out.dst) return false;
      } else if (f->next != out.dst) {
        return false;
      }
      // Wormhole VC allocation + credit check.
      if (out.owner[vc] != nullptr && out.owner[vc] != p) return false;
      if (out.owner[vc] == nullptr && !f->head) return false;
      if (out.credits[vc] <= 0) return false;

      // Grant: route the flit for its next router once, here.
      Flit sent = *f;
      sent.next = p->dst == out.dst
                      ? -1
                      : table_for(p).next_hop(out.dst, p->src, p->dst);
      pop(u, k, vc, cycle);
      --out.credits[vc];
      out.owner[vc] = sent.tail ? nullptr : p;
      if (out.wire_empty() && (!faults_ || !wire_armed_[eid])) {
        arrival_heap_.emplace(cycle + out.latency, eid);
        if (faults_) wire_armed_[eid] = 1;
      }
      out.wire_push({cycle + out.latency, sent, vc});
      rr = static_cast<int>((slot + 1) % slots);
      return true;  // one flit per output per cycle
    };

    if (!cfg_.reference_mode && mask_ok_[u]) {
      // Visit only occupied slots, in the same cyclic order the full scan
      // uses — empty slots can never be granted, so grants (and hence the
      // round-robin pointer) are identical.
      std::uint64_t m = buf_mask_[u];
      const auto& sq = sources_[u];
      if (!sq.packets.empty())
        m |= 1ULL << (in_edges_[u].size() * cfg_.num_vcs +
                      sq.packets.front()->vc);
      if (m == 0) return;
      const std::uint64_t below_rr = (1ULL << rr) - 1;
      for (std::uint64_t part : {m & ~below_rr, m & below_rr})
        while (part) {
          const int slot = std::countr_zero(part);
          part &= part - 1;
          if (try_slot(static_cast<std::size_t>(slot))) return;
        }
      return;
    }
    for (std::size_t step = 0; step < slots; ++step)
      if (try_slot((rr + step) % slots)) return;
  }

  void ejection(int u, long cycle) {
    if (faults_ && router_down_[static_cast<std::size_t>(u)]) return;
    const auto& ins = in_edges_[u];
    const std::size_t slots = ins.size() * cfg_.num_vcs;
    if (slots == 0) return;
    int& rr = eject_rr_[u];

    const auto try_slot = [&](std::size_t slot) {
      const std::size_t k = slot / cfg_.num_vcs;
      const int vc = static_cast<int>(slot % cfg_.num_vcs);
      if (!input_port_free(u, k, cycle)) return false;
      Channel& ch = channels_[ins[k]];
      if (ch.empty(vc)) return false;
      const Flit f = ch.front(vc);
      if (f.pkt->dst != u) return false;
      pop(u, k, vc, cycle);
      ++flits_ejected_;
      if (f.tail) complete_packet(f.pkt, cycle);
      rr = static_cast<int>((slot + 1) % slots);
      return true;
    };

    for (int granted = 0; granted < cfg_.io_flits_per_cycle; ++granted) {
      bool any = false;
      if (!cfg_.reference_mode && mask_ok_[u]) {
        // Reload the mask each grant: the pop above may have emptied a slot.
        const std::uint64_t m = buf_mask_[u];
        const std::uint64_t below_rr = (1ULL << rr) - 1;
        for (std::uint64_t part : {m & ~below_rr, m & below_rr}) {
          while (part && !any) {
            const int slot = std::countr_zero(part);
            part &= part - 1;
            any = try_slot(static_cast<std::size_t>(slot));
          }
          if (any) break;
        }
      } else {
        for (std::size_t step = 0; step < slots && !any; ++step)
          any = try_slot((rr + step) % slots);
      }
      if (!any) return;
    }
  }

  void complete_packet(Packet* p, long cycle) {
    ++stats_.total_ejected;
    if (cycle >= cfg_.warmup && cycle < cfg_.warmup + cfg_.measure)
      ++ejected_in_window_;
    if (p->tagged) {
      ++stats_.tagged_completed;
      latency_sum_ += cycle - p->inject_cycle + 1;
      latencies_.push_back(cycle - p->inject_cycle + 1);
    }
    if (p->is_request) {
      --pending_replies_;  // the request itself
      // Generate the data reply (memory / custom request-reply traffic).
      Packet* reply = make_packet(p->dst, p->src, traffic_.data_flits, cycle,
                                  /*request=*/false);
      if (reply) {
        reply->tagged = p->tagged;
        if (reply->tagged) ++stats_.tagged_injected;
        ++stats_.total_injected;
        sources_[reply->src].packets.push_back(reply);
        activate(reply->src);
      }
    }
    // The tail just ejected, so no buffer, wire or VC owner references p any
    // more: recycle it. (Long saturated drains no longer hold every packet
    // ever injected.)
    freelist_.push_back(p);
  }

  void record_backlog() {
    long total = 0;
    for (const auto& sq : sources_)
      total += static_cast<long>(sq.packets.size());
    stats_.mean_source_backlog =
        static_cast<double>(total) / std::max<std::size_t>(1, active_sources_.size());
  }

  // End-of-run accounting backing the conservation invariant tests.
  void record_residuals() {
    stats_.flits_injected = flits_injected_;
    stats_.flits_ejected = flits_ejected_;
    std::vector<int> wire_vc;
    for (const auto& ch : channels_) {
      // A credit is claimed when the flit enters the wire, so it mirrors the
      // downstream slots that are occupied *or reserved by an in-flight flit*.
      wire_vc.assign(ch.vcs, 0);
      for (int j = 0; j < ch.wire_count; ++j)
        ++wire_vc[ch.wire[(ch.wire_head + j) % ch.wire.size()].vc];
      for (int vc = 0; vc < ch.vcs; ++vc) {
        stats_.flits_buffered_end += ch.count[vc];
        if (ch.credits[vc] != cfg_.buf_flits - ch.count[vc] - wire_vc[vc])
          stats_.credits_consistent = false;
        if (ch.owner[vc] != nullptr) stats_.owners_clear = false;
      }
      stats_.flits_inflight_end += ch.wire_count;
    }
    for (const auto& sq : sources_)
      for (const Packet* p : sq.packets)
        stats_.source_flits_end += p->flits - p->flits_sent;
  }

  const core::NetworkPlan& plan_;
  TrafficConfig traffic_;
  SimConfig cfg_;
  int n_;
  util::Rng rng_;

  std::vector<Channel> channels_;
  // One (earliest arrival, channel id) entry per channel with in-flight
  // flits; see deliver_arrivals.
  std::priority_queue<std::pair<long, int>, std::vector<std::pair<long, int>>,
                      std::greater<>>
      arrival_heap_;
  std::vector<std::vector<int>> out_edges_, in_edges_;
  std::vector<int> out_rr_, eject_rr_;
  std::vector<long> last_input_pop_;
  std::vector<SourceQueue> sources_;
  std::vector<int> active_sources_;
  std::vector<std::vector<std::pair<double, int>>> cum_;

  // Active-set state: one bit per router, plus the number of flits buffered
  // across the router's input VCs (maintained by deliver/pop).
  std::vector<std::uint64_t> active_words_;
  std::vector<int> in_buffered_;
  // Observability: gate sampled once per run; per-cycle active-router counts
  // binned into power-of-two buckets, flushed to the registry at run end.
  static constexpr double kOccBounds[] = {0,  1,  2,   4,   8,   16,
                                          32, 64, 128, 256, 512, 1024};
  static constexpr int kOccBuckets =
      static_cast<int>(sizeof(kOccBounds) / sizeof(kOccBounds[0])) + 1;
  bool metrics_on_ = false;
  long occ_counts_[kOccBuckets] = {};
  // Per-router (input k, vc) slot occupancy for mask-driven arbitration;
  // usable while the slot space fits one word (mask_ok_).
  std::vector<std::uint64_t> buf_mask_;
  std::vector<bool> mask_ok_;

  // Injection schedule: next injection cycle per source index, mirrored in a
  // (cycle, idx) min-heap in optimized mode.
  std::vector<long> next_inject_;
  std::priority_queue<std::pair<long, int>, std::vector<std::pair<long, int>>,
                      std::greater<>>
      inject_heap_;

  // Fault state (sized only when a non-empty plan is attached). wire_armed_
  // mirrors "this channel has an arrival-heap entry pending" — the fault
  // paths (stranding, purges, link-up re-arms) break the fault-free
  // invariant that an entry exists iff the wire is non-empty, so re-arming
  // needs an explicit flag to stay duplicate-free.
  const fault::FaultPlan* faults_ = nullptr;
  std::size_t next_event_ = 0;
  std::size_t cur_epoch_ = 0;
  std::vector<const routing::RoutingTable*> epoch_tables_;
  std::vector<const vc::VcMap*> epoch_vcs_;
  std::vector<std::uint8_t> link_down_;    // per channel id
  std::vector<std::uint8_t> router_down_;  // per router
  std::vector<std::uint8_t> wire_armed_;   // per channel id
  std::vector<long> latencies_;  // tagged completion latencies (percentiles)

  std::deque<Packet> arena_;        // stable storage; grows only when the
  std::vector<Packet*> freelist_;   // freelist of completed packets is empty
  Flit inject_view_;
  long next_id_ = 0;
  long current_cycle_ = -1;
  long latency_sum_ = 0;
  long ejected_in_window_ = 0;
  long pending_replies_ = 0;
  long flits_injected_ = 0;
  long flits_ejected_ = 0;

  SimStats stats_;
};

}  // namespace

SimStats simulate(const core::NetworkPlan& plan, const TrafficConfig& traffic,
                  const SimConfig& cfg) {
  Simulator s(plan, traffic, cfg);
  return s.run();
}

}  // namespace netsmith::sim
