#include "sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/objective.hpp"
#include "sim/router.hpp"
#include "util/rng.hpp"

namespace netsmith::sim {

namespace {

class Simulator {
 public:
  Simulator(const core::NetworkPlan& plan, const TrafficConfig& traffic,
            const SimConfig& cfg)
      : plan_(plan), traffic_(traffic), cfg_(cfg), n_(plan.graph.num_nodes()),
        rng_(cfg.seed) {
    build_channels();
    sources_.resize(n_);
    eject_rr_.assign(n_, 0);
    last_input_pop_.assign(channels_.size(), -1);
    prepare_traffic();
  }

  SimStats run() {
    const long horizon = cfg_.warmup + cfg_.measure + cfg_.drain;
    const long window_end = cfg_.warmup + cfg_.measure;

    for (long cycle = 0; cycle < horizon; ++cycle) {
      deliver_arrivals(cycle);
      switch_allocation(cycle);
      if (cycle < window_end) generate_traffic(cycle);
      if (cycle == window_end - 1) record_backlog();
      // Early exit once every tagged packet has drained.
      if (cycle >= window_end && stats_.tagged_completed == stats_.tagged_injected &&
          stats_.tagged_injected > 0 && pending_replies_ == 0)
        break;
    }

    stats_.offered = traffic_.injection_rate;
    stats_.accepted = static_cast<double>(ejected_in_window_) /
                      (static_cast<double>(active_sources_.size()) *
                       static_cast<double>(cfg_.measure));
    if (stats_.tagged_completed > 0)
      stats_.avg_latency_cycles =
          static_cast<double>(latency_sum_) / stats_.tagged_completed;
    // Saturation: backlog piled up, or tagged traffic failed to drain.
    const double drained =
        stats_.tagged_injected > 0
            ? static_cast<double>(stats_.tagged_completed) / stats_.tagged_injected
            : 1.0;
    stats_.saturated = stats_.mean_source_backlog > 4.0 || drained < 0.95;
    return stats_;
  }

 private:
  // --- Setup -------------------------------------------------------------
  void build_channels() {
    edge_id_.assign(static_cast<std::size_t>(n_) * n_, -1);
    out_edges_.resize(n_);
    in_edges_.resize(n_);
    for (const auto& [u, v] : plan_.graph.edges()) {
      Channel ch;
      ch.src = u;
      ch.dst = v;
      ch.latency = cfg_.router_delay + cfg_.link_delay;
      if (cfg_.extra_edge_delay.rows() == static_cast<std::size_t>(n_))
        ch.latency += cfg_.extra_edge_delay(u, v);
      ch.init(cfg_.num_vcs, cfg_.buf_flits);
      const int id = static_cast<int>(channels_.size());
      edge_id_[static_cast<std::size_t>(u) * n_ + v] = id;
      out_edges_[u].push_back(id);
      in_edges_[v].push_back(id);
      channels_.push_back(std::move(ch));
    }
    out_rr_.assign(channels_.size(), 0);
  }

  void prepare_traffic() {
    if (traffic_.sources.empty()) {
      for (int i = 0; i < n_; ++i) active_sources_.push_back(i);
    } else {
      active_sources_ = traffic_.sources;
    }
    if (traffic_.kind == TrafficKind::kMemory && traffic_.mc_nodes.empty())
      throw std::invalid_argument("memory traffic requires mc_nodes");
    if (traffic_.kind == TrafficKind::kCustom) {
      if (traffic_.custom.size() != static_cast<std::size_t>(n_))
        throw std::invalid_argument("custom traffic needs per-node entries");
      cum_.resize(n_);
      for (int s = 0; s < n_; ++s) {
        double acc = 0.0;
        for (const auto& [d, w] : traffic_.custom[s]) {
          acc += w;
          cum_[s].emplace_back(acc, d);
        }
      }
    }
  }

  // --- Traffic generation -------------------------------------------------
  int pick_dest(int src) {
    switch (traffic_.kind) {
      case TrafficKind::kCoherence: {
        int d = static_cast<int>(rng_.uniform_int(0, n_ - 2));
        if (d >= src) ++d;
        return d;
      }
      case TrafficKind::kShuffle: {
        const int d = core::shuffle_dest(src, n_);
        return d == src ? -1 : d;
      }
      case TrafficKind::kMemory: {
        for (int attempt = 0; attempt < 8; ++attempt) {
          const int d = traffic_.mc_nodes[static_cast<std::size_t>(rng_.uniform_int(
              0, static_cast<std::int64_t>(traffic_.mc_nodes.size()) - 1))];
          if (d != src) return d;
        }
        return -1;
      }
      case TrafficKind::kCustom: {
        const auto& c = cum_[src];
        if (c.empty()) return -1;
        const double r = rng_.uniform() * c.back().first;
        for (const auto& [acc, d] : c)
          if (r <= acc) return d == src ? -1 : d;
        return c.back().second == src ? -1 : c.back().second;
      }
    }
    return -1;
  }

  int packet_size(bool is_request) {
    if (traffic_.kind == TrafficKind::kMemory)
      return is_request ? traffic_.ctrl_flits : traffic_.data_flits;
    return rng_.uniform() < traffic_.data_fraction ? traffic_.data_flits
                                                   : traffic_.ctrl_flits;
  }

  Packet* make_packet(int src, int dst, int flits, long cycle, bool request) {
    const int vc = plan_.vc_map.vc[static_cast<std::size_t>(src) * n_ + dst];
    if (vc < 0) return nullptr;  // no route (shouldn't happen when connected)
    arena_.emplace_back();
    Packet* p = &arena_.back();
    p->id = next_id_++;
    p->src = src;
    p->dst = dst;
    p->flits = flits;
    p->vc = vc;
    p->inject_cycle = cycle;
    p->tagged = cycle >= cfg_.warmup && cycle < cfg_.warmup + cfg_.measure;
    p->is_request = request;
    return p;
  }

  void generate_traffic(long cycle) {
    for (int s : active_sources_) {
      if (!rng_.bernoulli(traffic_.injection_rate)) continue;
      const int d = pick_dest(s);
      if (d < 0) continue;
      const bool request = traffic_.kind == TrafficKind::kMemory ||
                           (traffic_.kind == TrafficKind::kCustom &&
                            traffic_.custom_reply);
      Packet* p = make_packet(s, d, packet_size(request), cycle, request);
      if (!p) continue;
      sources_[s].packets.push_back(p);
      ++stats_.total_injected;
      if (p->tagged) ++stats_.tagged_injected;
      if (p->is_request) ++pending_replies_;
    }
  }

  // --- Flit movement -------------------------------------------------------
  // Event-driven delivery: instead of scanning every channel every cycle, a
  // min-heap holds one (earliest in-flight arrival, channel) entry per
  // channel with flits on the wire. Per-channel arrivals are monotone (FIFO
  // wire, fixed latency), so the invariant "in the heap iff flight
  // non-empty" survives pops and re-arms.
  void deliver_arrivals(long cycle) {
    while (!arrival_heap_.empty() && arrival_heap_.top().first <= cycle) {
      const int id = arrival_heap_.top().second;
      arrival_heap_.pop();
      Channel& ch = channels_[id];
      while (!ch.flight.empty() && ch.flight.front().arrive <= cycle) {
        auto& f = ch.flight.front();
        ch.in_buf[f.vc].push_back(f.flit);
        ch.flight.pop_front();
      }
      if (!ch.flight.empty())
        arrival_heap_.emplace(ch.flight.front().arrive, id);
    }
  }

  // Input sources of router u are its in-edges plus the injection queue
  // (index == in_edges_[u].size()).
  void switch_allocation(long cycle) {
    current_cycle_ = cycle;
    for (int u = 0; u < n_; ++u) {
      ejection(u, cycle);
      for (int eid : out_edges_[u]) arbitrate_output(u, eid, cycle);
    }
  }

  // Head flit of (input source k, vc) at router u, or nullptr.
  Flit* peek(int u, std::size_t k, int vc) {
    const auto& ins = in_edges_[u];
    if (k < ins.size()) {
      auto& buf = channels_[ins[k]].in_buf[vc];
      return buf.empty() ? nullptr : &buf.front();
    }
    // Injection source: synthesize the next flit view of the head packet.
    auto& sq = sources_[u];
    if (sq.packets.empty() || !source_bw_free(sq)) return nullptr;
    Packet* p = sq.packets.front();
    if (p->vc != vc) return nullptr;
    inject_view_.pkt = p;
    inject_view_.head = p->flits_sent == 0;
    inject_view_.tail = p->flits_sent == p->flits - 1;
    return &inject_view_;
  }

  void pop(int u, std::size_t k, int vc, long cycle) {
    const auto& ins = in_edges_[u];
    if (k < ins.size()) {
      Channel& ch = channels_[ins[k]];
      ch.in_buf[vc].pop_front();
      ++ch.credits[vc];  // instantaneous credit return (simplification)
      last_input_pop_[ins[k]] = cycle;
    } else {
      auto& sq = sources_[u];
      Packet* p = sq.packets.front();
      ++p->flits_sent;
      if (sq.bw_cycle != cycle) {
        sq.bw_cycle = cycle;
        sq.flits_this_cycle = 0;
      }
      ++sq.flits_this_cycle;
      if (p->flits_sent == p->flits) sq.packets.pop_front();
    }
  }

  bool source_bw_free(const SourceQueue& sq) const {
    return sq.bw_cycle != current_cycle_ ||
           sq.flits_this_cycle < cfg_.io_flits_per_cycle;
  }

  bool input_port_free(int u, std::size_t k, long cycle) const {
    const auto& ins = in_edges_[u];
    if (k < ins.size()) return last_input_pop_[ins[k]] != cycle;
    return source_bw_free(sources_[u]);
  }

  void arbitrate_output(int u, int eid, long cycle) {
    Channel& out = channels_[eid];
    const std::size_t num_inputs = in_edges_[u].size() + 1;
    const std::size_t slots = num_inputs * cfg_.num_vcs;
    int& rr = out_rr_[eid];

    for (std::size_t step = 0; step < slots; ++step) {
      const std::size_t slot = (rr + step) % slots;
      const std::size_t k = slot / cfg_.num_vcs;
      const int vc = static_cast<int>(slot % cfg_.num_vcs);
      if (!input_port_free(u, k, cycle)) continue;
      Flit* f = peek(u, k, vc);
      if (!f) continue;
      Packet* p = f->pkt;
      if (p->dst == u) continue;  // belongs to the ejection port
      const int next = plan_.table.next_hop(u, p->src, p->dst);
      if (next != out.dst) continue;
      // Wormhole VC allocation + credit check.
      if (out.owner[vc] != nullptr && out.owner[vc] != p) continue;
      if (out.owner[vc] == nullptr && !f->head) continue;
      if (out.credits[vc] <= 0) continue;

      // Grant.
      Flit sent = *f;
      pop(u, k, vc, cycle);
      --out.credits[vc];
      out.owner[vc] = sent.tail ? nullptr : p;
      if (out.flight.empty())
        arrival_heap_.emplace(cycle + out.latency, eid);
      out.flight.push_back({cycle + out.latency, sent, vc});
      rr = static_cast<int>((slot + 1) % slots);
      return;  // one flit per output per cycle
    }
  }

  void ejection(int u, long cycle) {
    const auto& ins = in_edges_[u];
    const std::size_t slots = ins.size() * cfg_.num_vcs;
    if (slots == 0) return;
    int& rr = eject_rr_[u];
    for (int granted = 0; granted < cfg_.io_flits_per_cycle; ++granted) {
      bool any = false;
      for (std::size_t step = 0; step < slots; ++step) {
        const std::size_t slot = (rr + step) % slots;
        const std::size_t k = slot / cfg_.num_vcs;
        const int vc = static_cast<int>(slot % cfg_.num_vcs);
        if (!input_port_free(u, k, cycle)) continue;
        auto& buf = channels_[ins[k]].in_buf[vc];
        if (buf.empty()) continue;
        Flit f = buf.front();
        if (f.pkt->dst != u) continue;
        pop(u, k, vc, cycle);
        if (f.tail) complete_packet(f.pkt, cycle);
        rr = static_cast<int>((slot + 1) % slots);
        any = true;
        break;
      }
      if (!any) return;
    }
  }

  void complete_packet(Packet* p, long cycle) {
    ++stats_.total_ejected;
    if (cycle >= cfg_.warmup && cycle < cfg_.warmup + cfg_.measure)
      ++ejected_in_window_;
    if (p->tagged) {
      ++stats_.tagged_completed;
      latency_sum_ += cycle - p->inject_cycle + 1;
    }
    if (p->is_request) {
      --pending_replies_;  // the request itself
      // Generate the data reply (memory / custom request-reply traffic).
      Packet* reply = make_packet(p->dst, p->src, traffic_.data_flits, cycle,
                                  /*request=*/false);
      if (reply) {
        reply->tagged = p->tagged;
        if (reply->tagged) ++stats_.tagged_injected;
        ++stats_.total_injected;
        sources_[p->dst].packets.push_back(reply);
      }
    }
  }

  void record_backlog() {
    long total = 0;
    for (const auto& sq : sources_)
      total += static_cast<long>(sq.packets.size());
    stats_.mean_source_backlog =
        static_cast<double>(total) / std::max<std::size_t>(1, active_sources_.size());
  }

  const core::NetworkPlan& plan_;
  TrafficConfig traffic_;
  SimConfig cfg_;
  int n_;
  util::Rng rng_;

  std::vector<Channel> channels_;
  // One (earliest arrival, channel id) entry per channel with in-flight
  // flits; see deliver_arrivals.
  std::priority_queue<std::pair<long, int>, std::vector<std::pair<long, int>>,
                      std::greater<>>
      arrival_heap_;
  std::vector<int> edge_id_;
  std::vector<std::vector<int>> out_edges_, in_edges_;
  std::vector<int> out_rr_, eject_rr_;
  std::vector<long> last_input_pop_;
  std::vector<SourceQueue> sources_;
  std::vector<int> active_sources_;
  std::vector<std::vector<std::pair<double, int>>> cum_;

  std::deque<Packet> arena_;
  Flit inject_view_;
  long next_id_ = 0;
  long current_cycle_ = -1;
  long latency_sum_ = 0;
  long ejected_in_window_ = 0;
  long pending_replies_ = 0;

  SimStats stats_;
};

}  // namespace

SimStats simulate(const core::NetworkPlan& plan, const TrafficConfig& traffic,
                  const SimConfig& cfg) {
  Simulator s(plan, traffic, cfg);
  return s.run();
}

}  // namespace netsmith::sim
