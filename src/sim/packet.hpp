#pragma once
// Packet/flit types for the flit-level NoI simulator.

#include <cstdint>

namespace netsmith::sim {

struct Packet {
  long id = 0;
  int src = 0;
  int dst = 0;
  int flits = 1;          // 1-flit control or 9-flit data (8B links, 72B data)
  int vc = 0;             // layered routing: constant along the route
  int src_next = -1;      // next hop out of src (routed once at creation)
  long inject_cycle = 0;  // when the packet entered the source queue
  bool tagged = false;    // injected inside the measurement window
  bool is_request = false;  // memory traffic: triggers a reply at ejection
  int flits_sent = 0;       // progress at the current router
  // Fault-injection state (untouched on fault-free runs). epoch pins the
  // routing table the packet was injected under — in-flight wormholes keep
  // their route of record across repairs, so a table swap never splits a
  // worm. dropped marks a packet being purged by a lossy link failure.
  int epoch = 0;
  bool dropped = false;
};

struct Flit {
  Packet* pkt = nullptr;
  bool head = false;
  bool tail = false;
  // Next hop from the router whose input buffer holds this flit (-1 = eject
  // here). Routed once when the flit is switched onto a link, so arbitration
  // never walks the routing table per candidate slot per cycle.
  int next = -1;
};

}  // namespace netsmith::sim
