#pragma once
// Packet/flit types for the flit-level NoI simulator.

#include <cstdint>

namespace netsmith::sim {

struct Packet {
  long id = 0;
  int src = 0;
  int dst = 0;
  int flits = 1;          // 1-flit control or 9-flit data (8B links, 72B data)
  int vc = 0;             // layered routing: constant along the route
  long inject_cycle = 0;  // when the packet entered the source queue
  bool tagged = false;    // injected inside the measurement window
  bool is_request = false;  // memory traffic: triggers a reply at ejection
  int flits_sent = 0;       // progress at the current router
};

struct Flit {
  Packet* pkt = nullptr;
  bool head = false;
  bool tail = false;
};

}  // namespace netsmith::sim
