#pragma once
// Injection-rate sweeps and saturation-throughput extraction (paper Figs. 6,
// 10, 11). Sweep points are independent simulations and run in parallel
// with OpenMP. Cross-class comparisons use absolute units: latency in ns and
// throughput in packets/node/ns at the class clock (paper SIV: small/medium/
// large NoIs run at 3.6/3.0/2.7 GHz).
//
// Sweeps are adaptive by default: points run in ascending-rate waves (one
// wave per OpenMP thread team), and once a completed wave contains a
// saturated point, every later point runs with a truncated measure/drain
// window. Saturated points are the expensive ones — they never take the
// early drain exit — and past the knee only the saturated flag and a rough
// accepted throughput matter. Truncation decisions depend only on completed
// waves, so results are deterministic for a fixed thread count.

#include <vector>

#include "sim/network.hpp"

namespace netsmith::sim {

struct SweepPoint {
  double offered_pkt_node_cycle = 0.0;
  SimStats stats;
  double latency_ns = 0.0;
  double accepted_pkt_node_ns = 0.0;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  double zero_load_latency_cycles = 0.0;
  double zero_load_latency_ns = 0.0;
  // Highest accepted throughput with latency below the saturation threshold.
  double saturation_pkt_node_cycle = 0.0;
  double saturation_pkt_node_ns = 0.0;
  // OpenMP thread count the sweep ran with. Adaptive truncation decisions
  // depend on the wave size (= thread count), so results are only
  // reproducible for the same value; reports surface it as provenance.
  int omp_threads = 1;
};

// Geometric-ish grid of offered rates up to max_rate.
std::vector<double> default_rates(double max_rate, int points = 14);

struct SweepOptions {
  bool adaptive = true;  // truncate windows past the first saturated wave
  int truncate_factor = 4;
  long min_measure = 1000;  // truncated windows never shrink below these
  long min_drain = 2000;
};

SweepResult injection_sweep(const core::NetworkPlan& plan,
                            const TrafficConfig& traffic, const SimConfig& cfg,
                            double clock_ghz, const std::vector<double>& rates,
                            const SweepOptions& opt = {});

// Convenience: sweeps up to slightly above the analytic routed bound (which
// assumes uniform traffic). For other patterns pass max_rate_override, e.g.
// from routing::analyze_pattern on the pattern's weight matrix.
SweepResult sweep_to_saturation(const core::NetworkPlan& plan,
                                const TrafficConfig& traffic,
                                const SimConfig& cfg, double clock_ghz,
                                int points = 14,
                                double max_rate_override = 0.0,
                                const SweepOptions& opt = {});

}  // namespace netsmith::sim
