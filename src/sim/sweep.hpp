#pragma once
// Injection-rate sweeps and saturation-throughput extraction (paper Figs. 6,
// 10, 11). Sweep points are independent simulations and run in parallel
// with OpenMP. Cross-class comparisons use absolute units: latency in ns and
// throughput in packets/node/ns at the class clock (paper SIV: small/medium/
// large NoIs run at 3.6/3.0/2.7 GHz).

#include <vector>

#include "sim/network.hpp"

namespace netsmith::sim {

struct SweepPoint {
  double offered_pkt_node_cycle = 0.0;
  SimStats stats;
  double latency_ns = 0.0;
  double accepted_pkt_node_ns = 0.0;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  double zero_load_latency_cycles = 0.0;
  double zero_load_latency_ns = 0.0;
  // Highest accepted throughput with latency below the saturation threshold.
  double saturation_pkt_node_cycle = 0.0;
  double saturation_pkt_node_ns = 0.0;
};

// Geometric-ish grid of offered rates up to max_rate.
std::vector<double> default_rates(double max_rate, int points = 14);

SweepResult injection_sweep(const core::NetworkPlan& plan,
                            const TrafficConfig& traffic, const SimConfig& cfg,
                            double clock_ghz, const std::vector<double>& rates);

// Convenience: sweeps up to slightly above the analytic routed bound (which
// assumes uniform traffic). For other patterns pass max_rate_override, e.g.
// from routing::analyze_pattern on the pattern's weight matrix.
SweepResult sweep_to_saturation(const core::NetworkPlan& plan,
                                const TrafficConfig& traffic,
                                const SimConfig& cfg, double clock_ghz,
                                int points = 14,
                                double max_rate_override = 0.0);

}  // namespace netsmith::sim
