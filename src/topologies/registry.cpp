#include "topologies/registry.hpp"

#include <stdexcept>

#include "topo/builders.hpp"
#include "topologies/expert.hpp"

namespace netsmith::topologies {

namespace {

NamedTopology make(std::string name, const topo::Layout& layout,
                   topo::LinkClass cls, topo::DiGraph g, bool machine,
                   bool netsmith_gen) {
  NamedTopology t;
  t.name = std::move(name);
  t.layout = layout;
  t.link_class = cls;
  t.graph = std::move(g);
  t.machine_generated = machine;
  t.is_netsmith = netsmith_gen;
  return t;
}

NamedTopology ns(const std::string& name, const topo::Layout& layout,
                 topo::LinkClass cls) {
  return make(name, layout, cls, frozen(name), true, true);
}

}  // namespace

std::vector<NamedTopology> catalog(int routers) {
  using topo::LinkClass;
  std::vector<NamedTopology> cat;
  if (routers == 20) {
    const auto lay = topo::Layout::noi_4x5();
    // --- Small (Table II top block).
    cat.push_back(make("Kite-small", lay, LinkClass::kSmall, kite(20, LinkClass::kSmall), false, false));
    cat.push_back(make("LPBT-Power", lay, LinkClass::kSmall, lpbt_power_small(20), true, false));
    cat.push_back(make("LPBT-Hops-small", lay, LinkClass::kSmall, lpbt_hops(20, LinkClass::kSmall), true, false));
    cat.push_back(ns("NS-LatOp-small-20", lay, LinkClass::kSmall));
    cat.push_back(ns("NS-SCOp-small-20", lay, LinkClass::kSmall));
    // --- Medium.
    cat.push_back(make("FoldedTorus", lay, LinkClass::kMedium, topo::build_folded_torus(lay), false, false));
    cat.push_back(make("Kite-medium", lay, LinkClass::kMedium, kite(20, LinkClass::kMedium), false, false));
    cat.push_back(make("LPBT-Hops-medium", lay, LinkClass::kMedium, lpbt_hops(20, LinkClass::kMedium), true, false));
    cat.push_back(ns("NS-LatOp-medium-20", lay, LinkClass::kMedium));
    cat.push_back(ns("NS-SCOp-medium-20", lay, LinkClass::kMedium));
    // --- Large.
    cat.push_back(make("ButterDonut", lay, LinkClass::kLarge, butter_donut(20), false, false));
    cat.push_back(make("DoubleButterfly", lay, LinkClass::kLarge, double_butterfly(20), false, false));
    cat.push_back(make("Kite-large", lay, LinkClass::kLarge, kite(20, LinkClass::kLarge), false, false));
    cat.push_back(ns("NS-LatOp-large-20", lay, LinkClass::kLarge));
    cat.push_back(ns("NS-SCOp-large-20", lay, LinkClass::kLarge));
    return cat;
  }
  if (routers == 30) {
    const auto lay = topo::Layout::noi_6x5();
    cat.push_back(make("Kite-small", lay, LinkClass::kSmall, kite(30, LinkClass::kSmall), false, false));
    cat.push_back(ns("NS-LatOp-small-30", lay, LinkClass::kSmall));
    cat.push_back(make("FoldedTorus", lay, LinkClass::kMedium, topo::build_folded_torus(lay), false, false));
    cat.push_back(make("Kite-medium", lay, LinkClass::kMedium, kite(30, LinkClass::kMedium), false, false));
    cat.push_back(ns("NS-LatOp-medium-30", lay, LinkClass::kMedium));
    cat.push_back(make("ButterDonut", lay, LinkClass::kLarge, butter_donut(30), false, false));
    cat.push_back(make("DoubleButterfly", lay, LinkClass::kLarge, double_butterfly(30), false, false));
    cat.push_back(make("Kite-large", lay, LinkClass::kLarge, kite(30, LinkClass::kLarge), false, false));
    cat.push_back(ns("NS-LatOp-large-30", lay, LinkClass::kLarge));
    return cat;
  }
  throw std::invalid_argument("catalog: only 20- and 30-router sets exist");
}

std::vector<NamedTopology> catalog_48() {
  using topo::LinkClass;
  const auto lay = topo::Layout::noi_8x6();
  std::vector<NamedTopology> cat;
  // Expert baselines that scale by rule (paper SV-E: Kite-Large and LPBT do
  // not scale; Kite-like-48 entries are short-budget symmetric searches that
  // stand in for the missing published designs — see EXPERIMENTS.md).
  cat.push_back(make("Mesh-48", lay, LinkClass::kSmall, topo::build_mesh(lay), false, false));
  cat.push_back(make("Kite-like-small-48", lay, LinkClass::kSmall, frozen("Kite-like-small-48"), false, false));
  cat.push_back(make("FoldedTorus-48", lay, LinkClass::kMedium, topo::build_folded_torus(lay), false, false));
  cat.push_back(make("Kite-like-medium-48", lay, LinkClass::kMedium, frozen("Kite-like-medium-48"), false, false));
  cat.push_back(make("Kite-like-large-48", lay, LinkClass::kLarge, frozen("Kite-like-large-48"), false, false));
  cat.push_back(ns("NS-LatOp-small-48", lay, LinkClass::kSmall));
  cat.push_back(ns("NS-LatOp-medium-48", lay, LinkClass::kMedium));
  cat.push_back(ns("NS-LatOp-large-48", lay, LinkClass::kLarge));
  return cat;
}

NamedTopology find(const std::vector<NamedTopology>& cat,
                   const std::string& name) {
  for (const auto& t : cat)
    if (t.name == name) return t;
  throw std::invalid_argument("registry: no topology named '" + name + "'");
}

}  // namespace netsmith::topologies
