#include "topologies/registry.hpp"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "topo/builders.hpp"
#include "topologies/baselines/cmesh.hpp"
#include "topologies/baselines/dragonfly.hpp"
#include "topologies/baselines/hammingmesh.hpp"
#include "topologies/baselines/physical.hpp"
#include "topologies/expert.hpp"

namespace netsmith::topologies {

namespace {

NamedTopology make_entry(std::string name, const topo::Layout& layout,
                         topo::LinkClass cls, topo::DiGraph g, bool machine,
                         bool netsmith_gen) {
  NamedTopology t;
  t.name = std::move(name);
  t.layout = layout;
  t.link_class = cls;
  t.graph = std::move(g);
  t.machine_generated = machine;
  t.is_netsmith = netsmith_gen;
  return t;
}

NamedTopology ns(const std::string& name, const topo::Layout& layout,
                 topo::LinkClass cls) {
  return make_entry(name, layout, cls, frozen(name), true, true);
}

topo::Layout noi_layout(int routers) {
  switch (routers) {
    case 20: return topo::Layout::noi_4x5();
    case 30: return topo::Layout::noi_6x5();
    case 48: return topo::Layout::noi_8x6();
  }
  throw std::invalid_argument("no standard NoI layout for " +
                              std::to_string(routers) + " routers");
}

topo::LinkClass parse_class(const std::string& s) {
  if (s == "small") return topo::LinkClass::kSmall;
  if (s == "medium") return topo::LinkClass::kMedium;
  if (s == "large") return topo::LinkClass::kLarge;
  throw std::invalid_argument("unknown link class '" + s + "'");
}

// Finishes a parametric entry: derives the clocking class and wire retiming
// from the generated graph + layout (baselines::classify_links).
NamedTopology finish_parametric(std::string name, std::string spec,
                                const topo::Layout& layout,
                                topo::DiGraph graph) {
  const auto phys = baselines::classify_links(graph, layout);
  NamedTopology t;
  t.name = std::move(name);
  t.layout = layout;
  t.link_class = phys.link_class;
  t.graph = std::move(graph);
  t.parametric = true;
  t.spec = std::move(spec);
  t.extra_edge_delay = phys.extra_edge_delay;
  return t;
}

// ------------------------------------------------- built-in factories -----

// Presence-tested "routers" shortcut: positive when given (and then explicit
// structural params are rejected as conflicting), 0 when absent.
int opt_routers(const Params& p, const std::string& family,
                std::initializer_list<const char*> structural) {
  if (!p.count("routers")) return 0;
  const int r = param_int(p, "routers", 0);
  if (r <= 0)
    throw std::invalid_argument(family + ": routers must be positive");
  for (const char* key : structural)
    if (p.count(key))
      throw std::invalid_argument(family + ": routers= conflicts with explicit " +
                                  key + "=");
  return r;
}

NamedTopology make_dragonfly(const Params& p) {
  baselines::DragonflyParams dp;
  const int routers = opt_routers(p, "dragonfly", {"group_size", "groups"});
  if (routers > 0) {
    dp = baselines::dragonfly_for_routers(routers);
  } else {
    dp.group_size = param_int(p, "group_size", dp.group_size);
    dp.groups = param_int(p, "groups", dp.groups);
  }
  const auto lay = baselines::dragonfly_layout(dp);
  return finish_parametric(
      "Dragonfly-" + std::to_string(lay.n()),
      "dragonfly:group_size=" + std::to_string(dp.group_size) +
          ",groups=" + std::to_string(dp.groups),
      lay, baselines::build_dragonfly(dp));
}

NamedTopology make_cmesh(const Params& p) {
  baselines::CMeshParams cp;
  // concentration / express_stride are tuning knobs and compose with either
  // sizing form; only the grid shape conflicts with routers=.
  const int routers = opt_routers(p, "cmesh", {"rows", "cols"});
  if (routers > 0) {
    cp = baselines::cmesh_for_routers(routers);
  } else {
    cp.rows = param_int(p, "rows", cp.rows);
    cp.cols = param_int(p, "cols", cp.cols);
  }
  cp.concentration = param_int(p, "concentration", cp.concentration);
  cp.express_stride = param_int(p, "express_stride", cp.express_stride);
  const auto lay = baselines::cmesh_layout(cp);
  return finish_parametric(
      "CMesh-" + std::to_string(lay.n()),
      "cmesh:rows=" + std::to_string(cp.rows) +
          ",cols=" + std::to_string(cp.cols) +
          ",concentration=" + std::to_string(cp.concentration) +
          ",express_stride=" + std::to_string(cp.express_stride),
      lay, baselines::build_cmesh(cp));
}

NamedTopology make_hammingmesh(const Params& p) {
  baselines::HammingMeshParams hp;
  const int routers = opt_routers(
      p, "hammingmesh", {"board_rows", "board_cols", "grid_rows", "grid_cols"});
  if (routers > 0) {
    hp = baselines::hammingmesh_for_routers(routers);
  } else {
    hp.board_rows = param_int(p, "board_rows", hp.board_rows);
    hp.board_cols = param_int(p, "board_cols", hp.board_cols);
    hp.grid_rows = param_int(p, "grid_rows", hp.grid_rows);
    hp.grid_cols = param_int(p, "grid_cols", hp.grid_cols);
  }
  const auto lay = baselines::hammingmesh_layout(hp);
  return finish_parametric(
      "HammingMesh-" + std::to_string(lay.n()),
      "hammingmesh:board_rows=" + std::to_string(hp.board_rows) +
          ",board_cols=" + std::to_string(hp.board_cols) +
          ",grid_rows=" + std::to_string(hp.grid_rows) +
          ",grid_cols=" + std::to_string(hp.grid_cols),
      lay, baselines::build_hammingmesh(hp));
}

topo::Layout grid_params(const Params& p, int def_rows, int def_cols) {
  const int rows = param_int(p, "rows", def_rows);
  const int cols = param_int(p, "cols", def_cols);
  if (rows < 2 || cols < 2)
    throw std::invalid_argument("registry: grid needs rows, cols >= 2 (got " +
                                std::to_string(rows) + "x" +
                                std::to_string(cols) + ")");
  return topo::Layout{rows, cols, 2.0};
}

NamedTopology with_spec(NamedTopology t, std::string spec) {
  t.spec = std::move(spec);
  return t;
}

NamedTopology make_mesh(const Params& p) {
  const auto lay = grid_params(p, 4, 5);
  return with_spec(
      make_entry("Mesh-" + std::to_string(lay.n()), lay,
                 topo::LinkClass::kSmall, topo::build_mesh(lay), false, false),
      "mesh:rows=" + std::to_string(lay.rows) +
          ",cols=" + std::to_string(lay.cols));
}

NamedTopology make_folded_torus(const Params& p) {
  const auto lay = grid_params(p, 4, 5);
  return with_spec(
      make_entry("FoldedTorus-" + std::to_string(lay.n()), lay,
                 topo::LinkClass::kMedium, topo::build_folded_torus(lay),
                 false, false),
      "folded_torus:rows=" + std::to_string(lay.rows) +
          ",cols=" + std::to_string(lay.cols));
}

NamedTopology make_kite(const Params& p) {
  const int routers = param_int(p, "routers", 20);
  const auto cls = parse_class(param_str(p, "size", "small"));
  return with_spec(make_entry("Kite-" + topo::to_string(cls),
                              noi_layout(routers), cls, kite(routers, cls),
                              false, false),
                   "kite:routers=" + std::to_string(routers) +
                       ",size=" + topo::to_string(cls));
}

NamedTopology make_butter_donut(const Params& p) {
  const int routers = param_int(p, "routers", 20);
  return with_spec(make_entry("ButterDonut", noi_layout(routers),
                              topo::LinkClass::kLarge, butter_donut(routers),
                              false, false),
                   "butter_donut:routers=" + std::to_string(routers));
}

NamedTopology make_double_butterfly(const Params& p) {
  const int routers = param_int(p, "routers", 20);
  return with_spec(make_entry("DoubleButterfly", noi_layout(routers),
                              topo::LinkClass::kLarge,
                              double_butterfly(routers), false, false),
                   "double_butterfly:routers=" + std::to_string(routers));
}

NamedTopology make_lpbt_power(const Params& p) {
  const int routers = param_int(p, "routers", 20);
  return with_spec(make_entry("LPBT-Power", noi_layout(routers),
                              topo::LinkClass::kSmall,
                              lpbt_power_small(routers), true, false),
                   "lpbt_power:routers=" + std::to_string(routers));
}

NamedTopology make_lpbt_hops(const Params& p) {
  const int routers = param_int(p, "routers", 20);
  const auto cls = parse_class(param_str(p, "size", "small"));
  return with_spec(make_entry("LPBT-Hops-" + topo::to_string(cls),
                              noi_layout(routers), cls,
                              lpbt_hops(routers, cls), true, false),
                   "lpbt_hops:routers=" + std::to_string(routers) +
                       ",size=" + topo::to_string(cls));
}

NamedTopology make_frozen(const Params& p) {
  const std::string name = param_str(p, "name", "");
  if (name.empty())
    throw std::invalid_argument("frozen: requires name=<frozen entry>");
  auto g = frozen(name);
  // Frozen entries use the standard NoI grid for their size; their class is
  // whatever their links need.
  const auto lay = noi_layout(g.num_nodes());
  const auto phys = baselines::classify_links(g, lay);
  const bool netsmith_gen = name.rfind("NS-", 0) == 0;
  const bool machine = netsmith_gen || name.rfind("LPBT-", 0) == 0;
  auto t = make_entry(name, lay, phys.link_class, std::move(g), machine,
                      netsmith_gen);
  t.extra_edge_delay = phys.extra_edge_delay;
  t.spec = "frozen:name=" + name;
  return t;
}

// ----------------------------------------------------- factory registry ---

std::map<std::string, Factory>& registry() {
  // Magic-static initialization is thread-safe; the mutex below guards
  // post-init mutation (register_factory) against concurrent lookups.
  static std::map<std::string, Factory> families = {
      {"dragonfly", make_dragonfly},
      {"cmesh", make_cmesh},
      {"hammingmesh", make_hammingmesh},
      {"mesh", make_mesh},
      {"torus", make_folded_torus},
      {"folded_torus", make_folded_torus},
      {"kite", make_kite},
      {"butter_donut", make_butter_donut},
      {"double_butterfly", make_double_butterfly},
      {"lpbt_power", make_lpbt_power},
      {"lpbt_hops", make_lpbt_hops},
      {"frozen", make_frozen},
  };
  return families;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void register_factory(const std::string& family, Factory factory) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[family] = std::move(factory);
}

bool has_factory(const std::string& family) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  return registry().count(family) != 0;
}

std::vector<std::string> factory_names() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

NamedTopology make(const std::string& family, const Params& params) {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    const auto it = registry().find(family);
    if (it == registry().end())
      throw std::invalid_argument("registry: no factory family '" + family +
                                  "'");
    factory = it->second;
  }
  return factory(params);
}

NamedTopology make_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string family = spec.substr(0, colon);
  Params params;
  if (colon != std::string::npos) {
    std::size_t pos = colon + 1;
    while (pos < spec.size()) {
      auto comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      const std::string kv = spec.substr(pos, comma - pos);
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0)
        throw std::invalid_argument("registry: bad spec fragment '" + kv +
                                    "' in '" + spec + "'");
      params[kv.substr(0, eq)] = kv.substr(eq + 1);
      pos = comma + 1;
    }
  }
  return make(family, params);
}

int param_int(const Params& p, const std::string& key, int fallback) {
  const auto it = p.find(key);
  if (it == p.end()) return fallback;
  try {
    std::size_t used = 0;
    const int v = std::stoi(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("registry: param " + key + "='" + it->second +
                                "' is not an integer");
  }
}

std::string param_str(const Params& p, const std::string& key,
                      const std::string& fallback) {
  const auto it = p.find(key);
  return it == p.end() ? fallback : it->second;
}

// --------------------------------------------------------- catalogs -------

std::vector<NamedTopology> catalog(int routers) {
  using topo::LinkClass;
  std::vector<NamedTopology> cat;
  if (routers == 20) {
    const auto lay = topo::Layout::noi_4x5();
    // --- Small (Table II top block).
    cat.push_back(make_entry("Kite-small", lay, LinkClass::kSmall, kite(20, LinkClass::kSmall), false, false));
    cat.push_back(make_entry("LPBT-Power", lay, LinkClass::kSmall, lpbt_power_small(20), true, false));
    cat.push_back(make_entry("LPBT-Hops-small", lay, LinkClass::kSmall, lpbt_hops(20, LinkClass::kSmall), true, false));
    cat.push_back(ns("NS-LatOp-small-20", lay, LinkClass::kSmall));
    cat.push_back(ns("NS-SCOp-small-20", lay, LinkClass::kSmall));
    // --- Medium.
    cat.push_back(make_entry("FoldedTorus", lay, LinkClass::kMedium, topo::build_folded_torus(lay), false, false));
    cat.push_back(make_entry("Kite-medium", lay, LinkClass::kMedium, kite(20, LinkClass::kMedium), false, false));
    cat.push_back(make_entry("LPBT-Hops-medium", lay, LinkClass::kMedium, lpbt_hops(20, LinkClass::kMedium), true, false));
    cat.push_back(ns("NS-LatOp-medium-20", lay, LinkClass::kMedium));
    cat.push_back(ns("NS-SCOp-medium-20", lay, LinkClass::kMedium));
    // --- Large.
    cat.push_back(make_entry("ButterDonut", lay, LinkClass::kLarge, butter_donut(20), false, false));
    cat.push_back(make_entry("DoubleButterfly", lay, LinkClass::kLarge, double_butterfly(20), false, false));
    cat.push_back(make_entry("Kite-large", lay, LinkClass::kLarge, kite(20, LinkClass::kLarge), false, false));
    cat.push_back(ns("NS-LatOp-large-20", lay, LinkClass::kLarge));
    cat.push_back(ns("NS-SCOp-large-20", lay, LinkClass::kLarge));
    return cat;
  }
  if (routers == 30) {
    const auto lay = topo::Layout::noi_6x5();
    cat.push_back(make_entry("Kite-small", lay, LinkClass::kSmall, kite(30, LinkClass::kSmall), false, false));
    cat.push_back(ns("NS-LatOp-small-30", lay, LinkClass::kSmall));
    cat.push_back(make_entry("FoldedTorus", lay, LinkClass::kMedium, topo::build_folded_torus(lay), false, false));
    cat.push_back(make_entry("Kite-medium", lay, LinkClass::kMedium, kite(30, LinkClass::kMedium), false, false));
    cat.push_back(ns("NS-LatOp-medium-30", lay, LinkClass::kMedium));
    cat.push_back(make_entry("ButterDonut", lay, LinkClass::kLarge, butter_donut(30), false, false));
    cat.push_back(make_entry("DoubleButterfly", lay, LinkClass::kLarge, double_butterfly(30), false, false));
    cat.push_back(make_entry("Kite-large", lay, LinkClass::kLarge, kite(30, LinkClass::kLarge), false, false));
    cat.push_back(ns("NS-LatOp-large-30", lay, LinkClass::kLarge));
    return cat;
  }
  throw std::invalid_argument("catalog: only 20- and 30-router sets exist");
}

std::vector<NamedTopology> catalog_48() {
  using topo::LinkClass;
  const auto lay = topo::Layout::noi_8x6();
  std::vector<NamedTopology> cat;
  // Expert baselines that scale by rule (paper SV-E: Kite-Large and LPBT do
  // not scale; Kite-like-48 entries are short-budget symmetric searches that
  // stand in for the missing published designs — see EXPERIMENTS.md).
  cat.push_back(make_entry("Mesh-48", lay, LinkClass::kSmall, topo::build_mesh(lay), false, false));
  cat.push_back(make_entry("Kite-like-small-48", lay, LinkClass::kSmall, frozen("Kite-like-small-48"), false, false));
  cat.push_back(make_entry("FoldedTorus-48", lay, LinkClass::kMedium, topo::build_folded_torus(lay), false, false));
  cat.push_back(make_entry("Kite-like-medium-48", lay, LinkClass::kMedium, frozen("Kite-like-medium-48"), false, false));
  cat.push_back(make_entry("Kite-like-large-48", lay, LinkClass::kLarge, frozen("Kite-like-large-48"), false, false));
  cat.push_back(ns("NS-LatOp-small-48", lay, LinkClass::kSmall));
  cat.push_back(ns("NS-LatOp-medium-48", lay, LinkClass::kMedium));
  cat.push_back(ns("NS-LatOp-large-48", lay, LinkClass::kLarge));
  return cat;
}

std::vector<NamedTopology> baseline_catalog(int routers) {
  const Params p{{"routers", std::to_string(routers)}};
  return {make("dragonfly", p), make("cmesh", p), make("hammingmesh", p)};
}

NamedTopology find(const std::vector<NamedTopology>& cat,
                   const std::string& name) {
  for (const auto& t : cat)
    if (t.name == name) return t;
  throw std::invalid_argument("registry: no topology named '" + name + "'");
}

}  // namespace netsmith::topologies
