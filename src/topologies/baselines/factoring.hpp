#pragma once
// Shared sizing helper for the *_for_routers preset functions: the baseline
// families all pick the most "square" factorization of a router count.

#include <cmath>
#include <cstdlib>

namespace netsmith::topologies::baselines {

// Divisor of n closest to sqrt(n) with divisor >= min_factor and
// n / divisor >= min_factor; -1 when no such factorization exists.
inline int closest_divisor(int n, int min_factor) {
  const double root = std::sqrt(static_cast<double>(n));
  int best = -1;
  for (int d = min_factor; d * min_factor <= n; ++d) {
    if (n % d != 0) continue;
    if (best < 0 || std::abs(d - root) < std::abs(best - root)) best = d;
  }
  return best;
}

}  // namespace netsmith::topologies::baselines
