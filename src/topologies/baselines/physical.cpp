#include "topologies/baselines/physical.hpp"

#include <algorithm>
#include <cmath>

namespace netsmith::topologies::baselines {

namespace {

// Grid reach of the large class: the (2,1) knight link, sqrt(5) pitch units.
// Wires no longer than this run in the base link_delay at the class clock;
// longer wires are segmented into ceil(len/reach) pipeline stages.
constexpr double kLargeReachUnits = 2.2360679774997896;

}  // namespace

LinkPhysics classify_links(const topo::DiGraph& g, const topo::Layout& layout) {
  LinkPhysics phys;
  const int n = g.num_nodes();
  bool small = true, medium = true, large = true;
  bool any_extra = false;
  util::Matrix<int> extra(n, n, 0);

  for (const auto& [i, j] : g.edges()) {
    const bool in_small = topo::link_allowed(layout, i, j, topo::LinkClass::kSmall);
    const bool in_medium = topo::link_allowed(layout, i, j, topo::LinkClass::kMedium);
    const bool in_large = topo::link_allowed(layout, i, j, topo::LinkClass::kLarge);
    small &= in_small;
    medium &= in_medium;
    large &= in_large;

    phys.max_length_mm =
        std::max(phys.max_length_mm, topo::link_length_mm(layout, i, j));
    if (!in_large) {
      const double len_units =
          topo::link_length_mm(layout, i, j) / layout.pitch_mm;
      const int stages =
          static_cast<int>(std::ceil(len_units / kLargeReachUnits));
      extra(i, j) = std::max(0, stages - 1);
      ++phys.pipelined_edges;
      any_extra = true;
    }
  }

  phys.link_class = small    ? topo::LinkClass::kSmall
                    : medium ? topo::LinkClass::kMedium
                             : topo::LinkClass::kLarge;
  (void)large;  // beyond-large edges are clamped to kLarge + extra stages
  if (any_extra) phys.extra_edge_delay = std::move(extra);
  return phys;
}

}  // namespace netsmith::topologies::baselines
