#pragma once
// Parametric Dragonfly baseline (Kim et al., ISCA'08), flattened to the
// router level for NoI comparison: `groups` groups of `group_size` routers;
// every group is a clique, and each ordered group pair is joined by exactly
// one global full-duplex link whose endpoints rotate round-robin over the
// group members (the "absolute" global arrangement booksim uses). Terminals
// (the p concentration) are the NoI's per-router chiplets and do not appear
// in the graph.
//
// Physical placement: group j occupies column j of a group_size x groups
// interposer grid, so local links are vertical wires within a column and
// global links cross columns. Link classification / wire retiming comes from
// baselines::classify_links.

#include "topo/graph.hpp"
#include "topo/layout.hpp"

namespace netsmith::topologies::baselines {

struct DragonflyParams {
  int group_size = 4;  // routers per group (a)
  int groups = 5;      // number of groups (g); needs >= 2
};

// Grid with one column per group.
topo::Layout dragonfly_layout(const DragonflyParams& p);

// Builds the router-level dragonfly; throws std::invalid_argument on
// degenerate parameters (group_size < 1 or groups < 2).
topo::DiGraph build_dragonfly(const DragonflyParams& p);

// Balanced parameters for an arbitrary router count: picks the divisor pair
// a * g = routers with a closest to sqrt(routers) (a >= 2, g >= 2); throws if
// routers has no such factorization (e.g. primes). 20 -> 4x5, 30 -> 5x6,
// 48 -> 6x8.
DragonflyParams dragonfly_for_routers(int routers);

}  // namespace netsmith::topologies::baselines
