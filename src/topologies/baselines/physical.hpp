#pragma once
// Physical link classification for parametric baseline topologies.
//
// The expert / NetSmith catalog obeys the Kite link taxonomy by construction
// (spans up to (2,1), paper Fig. 3), so its clocking class is an input. The
// parametric baseline families (Dragonfly, CMesh, HammingMesh) are defined by
// their published connectivity rules and may place wires of any length on the
// interposer grid. This module derives the physical story from the generated
// graph + layout: the smallest Kite class that admits every link, clamped to
// "large" when links exceed the taxonomy, plus per-edge pipeline stages for
// the overlength wires (repeated interposer wires retimed every large-class
// reach, i.e. sqrt(5) grid units). The class feeds the clocking model
// (topo::clock_ghz) and the extra stages feed SimConfig::extra_edge_delay;
// power::dsent_lite reads wire lengths straight from the layout either way.

#include "topo/graph.hpp"
#include "topo/layout.hpp"
#include "util/matrix.hpp"

namespace netsmith::topologies::baselines {

struct LinkPhysics {
  topo::LinkClass link_class = topo::LinkClass::kSmall;  // clocking class
  // Extra pipeline cycles per directed edge for wires beyond the class reach
  // (n x n, zero where none). Empty when no edge needs retiming.
  util::Matrix<int> extra_edge_delay;
  double max_length_mm = 0.0;
  int pipelined_edges = 0;  // directed edges with >= 1 extra cycle
};

// Classifies every edge of g against the layout's grid spans.
LinkPhysics classify_links(const topo::DiGraph& g, const topo::Layout& layout);

}  // namespace netsmith::topologies::baselines
