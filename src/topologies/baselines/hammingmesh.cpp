#include "topologies/baselines/hammingmesh.hpp"

#include <stdexcept>
#include <string>

#include "topologies/baselines/factoring.hpp"

namespace netsmith::topologies::baselines {

namespace {

void check(const HammingMeshParams& p) {
  if (p.board_rows < 1 || p.board_cols < 1 || p.grid_rows < 1 ||
      p.grid_cols < 1)
    throw std::invalid_argument("hammingmesh: all dimensions must be >= 1");
  if (p.grid_rows * p.grid_cols < 2)
    throw std::invalid_argument("hammingmesh: need at least two boards");
}

}  // namespace

topo::Layout hammingmesh_layout(const HammingMeshParams& p) {
  check(p);
  return topo::Layout{p.board_rows * p.grid_rows,
                      p.board_cols * p.grid_cols, 2.0};
}

topo::DiGraph build_hammingmesh(const HammingMeshParams& p) {
  check(p);
  const auto lay = hammingmesh_layout(p);
  const int a = p.board_rows, b = p.board_cols;
  topo::DiGraph g(lay.n());

  // Per-board 2-D meshes.
  for (int bx = 0; bx < p.grid_rows; ++bx)
    for (int by = 0; by < p.grid_cols; ++by)
      for (int r = 0; r < a; ++r)
        for (int c = 0; c < b; ++c) {
          const int gr = bx * a + r, gc = by * b + c;
          if (c + 1 < b) g.add_duplex(lay.id(gr, gc), lay.id(gr, gc + 1));
          if (r + 1 < a) g.add_duplex(lay.id(gr, gc), lay.id(gr + 1, gc));
        }

  // Row networks: per global row, board-level clique across the board row.
  for (int gr = 0; gr < lay.rows; ++gr)
    for (int bp = 0; bp < p.grid_cols; ++bp)
      for (int bq = bp + 1; bq < p.grid_cols; ++bq)
        g.add_duplex(lay.id(gr, bp * b + (b - 1)), lay.id(gr, bq * b));

  // Column networks: per global column, board-level clique down the column.
  for (int gc = 0; gc < lay.cols; ++gc)
    for (int bp = 0; bp < p.grid_rows; ++bp)
      for (int bq = bp + 1; bq < p.grid_rows; ++bq)
        g.add_duplex(lay.id(bp * a + (a - 1), gc), lay.id(bq * a, gc));

  return g;
}

HammingMeshParams hammingmesh_for_routers(int routers) {
  if (routers == 20) return HammingMeshParams{2, 2, 5, 1};
  if (routers == 30) return HammingMeshParams{2, 5, 3, 1};
  if (routers == 48) return HammingMeshParams{2, 2, 4, 3};
  if (routers < 8 || routers % 4 != 0)
    throw std::invalid_argument("hammingmesh: no standard configuration for " +
                                std::to_string(routers) + " routers");
  const int boards = routers / 4;
  const int best = closest_divisor(boards, 1);
  return HammingMeshParams{2, 2, best, boards / best};
}

}  // namespace netsmith::topologies::baselines
