#pragma once
// Parametric HammingMesh baseline (Hoefler et al., SC'22), flattened to the
// router level for NoI comparison. The system is a grid_rows x grid_cols
// array of boards, each board a board_rows x board_cols 2-D mesh. In the
// original design every row of boards is stitched by per-row "Hamming"
// networks (and columns likewise) giving single-hop board-to-board reach;
// flattened here, for every global router row the boards sharing that row
// form a clique at board granularity: each board pair (p < q) adds a link
// from p's rightmost router in the row to q's leftmost (columns symmetric,
// bottom row to top row). Adjacent-board links coincide with mesh seams;
// non-adjacent pairs become the long "flyover" wires that classify_links
// turns into pipelined interposer wires.

#include "topo/graph.hpp"
#include "topo/layout.hpp"

namespace netsmith::topologies::baselines {

struct HammingMeshParams {
  int board_rows = 2;  // a: router rows per board
  int board_cols = 2;  // b: router columns per board
  int grid_rows = 2;   // x: board rows in the system
  int grid_cols = 2;   // y: board columns in the system
};

// (board_rows * grid_rows) x (board_cols * grid_cols) router grid.
topo::Layout hammingmesh_layout(const HammingMeshParams& p);

// Builds the flattened HammingMesh; throws std::invalid_argument on
// degenerate parameters (any dimension < 1 or a 1x1 board grid).
topo::DiGraph build_hammingmesh(const HammingMeshParams& p);

// Standard configurations for the paper's router counts (20 -> Hx(2,2;5,1),
// 30 -> Hx(2,5;3,1), 48 -> Hx(2,2;4,3)); for other counts, 2x2 boards on the
// most square board grid with grid_rows*grid_cols = routers/4. Throws when no
// such configuration exists.
HammingMeshParams hammingmesh_for_routers(int routers);

}  // namespace netsmith::topologies::baselines
