#pragma once
// Parametric Concentrated Mesh baseline (Balfour & Dally, ICS'06; booksim's
// cmesh generator). At the NoI router level: a rows x cols mesh where every
// router concentrates `concentration` chiplet endpoints, plus the CMesh-X
// express channels — links of span `express_stride` along the perimeter rows
// and columns that let perimeter traffic skip over intermediate routers.
// Concentration does not change the router graph (endpoints are the NoI's
// chiplets); it is carried in the params so traffic/power models can scale
// per-router activity.

#include "topo/graph.hpp"
#include "topo/layout.hpp"

namespace netsmith::topologies::baselines {

struct CMeshParams {
  int rows = 4;
  int cols = 5;
  int concentration = 4;   // chiplet endpoints per router (metadata)
  int express_stride = 2;  // express-channel span; 0 disables (plain mesh)
};

topo::Layout cmesh_layout(const CMeshParams& p);

// Mesh + perimeter express channels; throws std::invalid_argument on
// degenerate parameters (rows/cols < 2 or negative stride).
topo::DiGraph build_cmesh(const CMeshParams& p);

// Near-square grid for an arbitrary router count (prefers the paper's NoI
// aspect: 20 -> 4x5, 30 -> 6x5, 48 -> 8x6); throws if routers has no
// rows*cols factorization with both >= 2.
CMeshParams cmesh_for_routers(int routers);

}  // namespace netsmith::topologies::baselines
