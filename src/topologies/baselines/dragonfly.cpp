#include "topologies/baselines/dragonfly.hpp"

#include <stdexcept>
#include <string>

#include "topologies/baselines/factoring.hpp"

namespace netsmith::topologies::baselines {

namespace {

void check(const DragonflyParams& p) {
  if (p.group_size < 1 || p.groups < 2)
    throw std::invalid_argument("dragonfly: need group_size >= 1, groups >= 2");
}

}  // namespace

topo::Layout dragonfly_layout(const DragonflyParams& p) {
  check(p);
  return topo::Layout{p.group_size, p.groups, 2.0};
}

topo::DiGraph build_dragonfly(const DragonflyParams& p) {
  check(p);
  const auto lay = dragonfly_layout(p);
  const int a = p.group_size, g = p.groups;
  topo::DiGraph graph(lay.n());

  // Local links: each group (column) is a clique.
  for (int c = 0; c < g; ++c)
    for (int r1 = 0; r1 < a; ++r1)
      for (int r2 = r1 + 1; r2 < a; ++r2)
        graph.add_duplex(lay.id(r1, c), lay.id(r2, c));

  // Global links: one per group pair; the hosting member in each group is
  // the peer's index (skipping self) modulo the group size, so global ports
  // spread evenly over members.
  for (int gi = 0; gi < g; ++gi)
    for (int gj = gi + 1; gj < g; ++gj) {
      const int peer_j_in_i = gj - 1;           // gj > gi, skip self
      const int peer_i_in_j = gi;               // gi < gj
      graph.add_duplex(lay.id(peer_j_in_i % a, gi),
                       lay.id(peer_i_in_j % a, gj));
    }
  return graph;
}

DragonflyParams dragonfly_for_routers(int routers) {
  if (routers < 4)
    throw std::invalid_argument("dragonfly: need at least 4 routers");
  const int best_a = closest_divisor(routers, 2);
  if (best_a < 0)
    throw std::invalid_argument("dragonfly: " + std::to_string(routers) +
                                " routers has no a*g factorization (a,g >= 2)");
  return DragonflyParams{best_a, routers / best_a};
}

}  // namespace netsmith::topologies::baselines
