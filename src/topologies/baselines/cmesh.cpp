#include "topologies/baselines/cmesh.hpp"

#include <stdexcept>
#include <string>

#include "topologies/baselines/factoring.hpp"

namespace netsmith::topologies::baselines {

namespace {

void check(const CMeshParams& p) {
  if (p.rows < 2 || p.cols < 2)
    throw std::invalid_argument("cmesh: need rows, cols >= 2");
  if (p.express_stride < 0)
    throw std::invalid_argument("cmesh: express_stride must be >= 0");
  if (p.concentration < 1)
    throw std::invalid_argument("cmesh: concentration must be >= 1");
}

}  // namespace

topo::Layout cmesh_layout(const CMeshParams& p) {
  check(p);
  return topo::Layout{p.rows, p.cols, 2.0};
}

topo::DiGraph build_cmesh(const CMeshParams& p) {
  check(p);
  const auto lay = cmesh_layout(p);
  topo::DiGraph g(lay.n());

  for (int r = 0; r < p.rows; ++r)
    for (int c = 0; c < p.cols; ++c) {
      if (c + 1 < p.cols) g.add_duplex(lay.id(r, c), lay.id(r, c + 1));
      if (r + 1 < p.rows) g.add_duplex(lay.id(r, c), lay.id(r + 1, c));
    }

  const int s = p.express_stride;
  if (s >= 2) {
    // Express channels hop `s` routers at a time along the perimeter rows
    // and columns (CMesh-X). Chains run from both corners so the far end of
    // a dimension not divisible by the stride still gets express coverage
    // (when it is divisible the reverse chain duplicates and dedups away).
    for (int r : {0, p.rows - 1}) {
      for (int c = 0; c + s < p.cols; c += s)
        g.add_duplex(lay.id(r, c), lay.id(r, c + s));
      for (int c = p.cols - 1; c - s >= 0; c -= s)
        g.add_duplex(lay.id(r, c - s), lay.id(r, c));
    }
    for (int c : {0, p.cols - 1}) {
      for (int r = 0; r + s < p.rows; r += s)
        g.add_duplex(lay.id(r, c), lay.id(r + s, c));
      for (int r = p.rows - 1; r - s >= 0; r -= s)
        g.add_duplex(lay.id(r - s, c), lay.id(r, c));
    }
  }
  return g;
}

CMeshParams cmesh_for_routers(int routers) {
  CMeshParams p;
  // Match the paper's NoI grids exactly so head-to-head layouts align.
  if (routers == 20) { p.rows = 4; p.cols = 5; return p; }
  if (routers == 30) { p.rows = 6; p.cols = 5; return p; }
  if (routers == 48) { p.rows = 8; p.cols = 6; return p; }
  const int best = closest_divisor(routers, 2);
  if (best < 0)
    throw std::invalid_argument("cmesh: " + std::to_string(routers) +
                                " routers has no rows*cols grid (>= 2 each)");
  p.rows = best;
  p.cols = routers / best;
  return p;
}

}  // namespace netsmith::topologies::baselines
