#pragma once
// LPBT: reimplementation of the linear-programming-based NoC synthesis of
// Srinivasan, Chatha & Konjevod (paper's prior-art baseline [46]).
//
// The formulation routes every flow explicitly through per-link binary
// variables with flow-conservation rows — the paper contrasts this with
// NetSmith's triangle-inequality distance encoding and shows it is orders of
// magnitude slower (20 days for a first 20-router candidate on the authors'
// machines). We reproduce the formulation shape so the comparison is
// faithful; it is exactly solvable here for small n and used by the
// abl_solver bench to demonstrate the solve-time gap.

#include "lp/milp.hpp"
#include "topo/graph.hpp"
#include "topo/layout.hpp"

namespace netsmith::topologies {

enum class LpbtObjective {
  kPower,  // minimize total used wire length (the power proxy)
  kHops,   // minimize total hops (the paper's "latency" modification)
};

struct LpbtResult {
  topo::DiGraph graph;
  lp::SolveStatus status = lp::SolveStatus::kIterLimit;
  double objective = 0.0;
  long nodes = 0;
};

// Builds and solves the LPBT MILP. Feasible to optimality only for small
// layouts (n <= ~8) with the in-tree solver.
LpbtResult lpbt_synthesize(const topo::Layout& layout, topo::LinkClass cls,
                           int radix, LpbtObjective obj,
                           const lp::MilpOptions& opts = {});

// Model statistics without solving (for the solver-effort comparison).
struct LpbtModelStats {
  int variables = 0;
  int binaries = 0;
  int constraints = 0;
};
LpbtModelStats lpbt_model_stats(const topo::Layout& layout, topo::LinkClass cls);

}  // namespace netsmith::topologies
