#include "topologies/lpbt.hpp"

#include <stdexcept>
#include <vector>

namespace netsmith::topologies {

namespace {

struct LpbtModel {
  lp::Model model;
  std::vector<int> m_var;  // link existence, -1 outside the valid set
  int n = 0;

  int M(int i, int j) const {
    return m_var[static_cast<std::size_t>(i) * n + j];
  }
};

// Flow variables f[s][d][(i,j)]: does flow (s,d) traverse link (i,j)?
// Conservation at every node; a traversed link must exist; link existence
// is capped by the radix. This is the per-flow port-mapping style of [46]:
// the solver must discover every flow's route, which is what blows up the
// search compared to NetSmith's distance encoding.
LpbtModel build(const topo::Layout& layout, topo::LinkClass cls, int radix,
                LpbtObjective obj) {
  const int n = layout.n();
  LpbtModel out;
  out.n = n;
  lp::Model& m = out.model;

  const auto links = topo::valid_links(layout, cls);

  out.m_var.assign(static_cast<std::size_t>(n) * n, -1);
  for (const auto& [i, j] : links) {
    double cost = 0.0;
    if (obj == LpbtObjective::kPower)
      cost = topo::link_length_mm(layout, i, j);
    out.m_var[static_cast<std::size_t>(i) * n + j] = m.add_binary(cost);
  }

  // Radix rows.
  for (int i = 0; i < n; ++i) {
    std::vector<lp::Term> out_row, in_row;
    for (int j = 0; j < n; ++j) {
      if (out.M(i, j) >= 0) out_row.push_back({out.M(i, j), 1.0});
      if (out.M(j, i) >= 0) in_row.push_back({out.M(j, i), 1.0});
    }
    if (!out_row.empty()) m.add_constraint(std::move(out_row), lp::Rel::kLe, radix);
    if (!in_row.empty()) m.add_constraint(std::move(in_row), lp::Rel::kLe, radix);
  }

  // Per-flow routing variables and conservation.
  const double hop_cost = obj == LpbtObjective::kHops ? 1.0 : 0.0;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      std::vector<int> f(links.size());
      for (std::size_t e = 0; e < links.size(); ++e) {
        f[e] = m.add_binary(hop_cost);
        // f <= M: can only use existing links.
        m.add_constraint({{f[e], 1.0},
                          {out.M(links[e].first, links[e].second), -1.0}},
                         lp::Rel::kLe, 0.0);
      }
      // Conservation: out - in = +1 at s, -1 at d, 0 elsewhere.
      for (int v = 0; v < n; ++v) {
        std::vector<lp::Term> row;
        for (std::size_t e = 0; e < links.size(); ++e) {
          if (links[e].first == v) row.push_back({f[e], 1.0});
          else if (links[e].second == v) row.push_back({f[e], -1.0});
        }
        const double rhs = v == s ? 1.0 : (v == d ? -1.0 : 0.0);
        m.add_constraint(std::move(row), lp::Rel::kEq, rhs);
      }
    }

  m.set_sense(lp::Sense::kMinimize);
  return out;
}

}  // namespace

LpbtResult lpbt_synthesize(const topo::Layout& layout, topo::LinkClass cls,
                           int radix, LpbtObjective obj,
                           const lp::MilpOptions& opts) {
  if (layout.n() > 10)
    throw std::invalid_argument(
        "lpbt_synthesize: formulation tractable only for n <= 10 with the "
        "in-tree solver (the original needed ~20 days at n = 20)");
  auto built = build(layout, cls, radix, obj);
  const auto sol = lp::solve_milp(built.model, opts);

  LpbtResult r;
  r.status = sol.status;
  r.objective = sol.objective;
  r.nodes = sol.nodes;
  if (!sol.x.empty()) {
    topo::DiGraph g(built.n);
    for (int i = 0; i < built.n; ++i)
      for (int j = 0; j < built.n; ++j)
        if (built.M(i, j) >= 0 && sol.x[built.M(i, j)] > 0.5) g.add_edge(i, j);
    r.graph = g;
  }
  return r;
}

LpbtModelStats lpbt_model_stats(const topo::Layout& layout,
                                topo::LinkClass cls) {
  const int n = layout.n();
  const int links = static_cast<int>(topo::valid_links(layout, cls).size());
  LpbtModelStats s;
  s.binaries = links + n * (n - 1) * links;
  s.variables = s.binaries;
  s.constraints = 2 * n                       // radix
                  + n * (n - 1) * links       // f <= M
                  + n * (n - 1) * n;          // conservation
  return s;
}

}  // namespace netsmith::topologies
