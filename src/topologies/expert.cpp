#include "topologies/expert.hpp"

#include <stdexcept>

#include "topologies/frozen_data.inc"

namespace netsmith::topologies {

namespace {

const FrozenEntry* find_entry(const std::string& name) {
  for (const auto& e : kFrozen)
    if (name == e.name) return &e;
  return nullptr;
}

std::string size_suffix(topo::LinkClass cls) { return topo::to_string(cls); }

}  // namespace

bool has_frozen(const std::string& name) { return find_entry(name) != nullptr; }

topo::DiGraph frozen(const std::string& name) {
  const FrozenEntry* e = find_entry(name);
  if (!e)
    throw std::invalid_argument("no frozen topology named '" + name +
                                "' (run tools/reconstruct to regenerate)");
  return topo::DiGraph::from_string(e->adjacency);
}

topo::DiGraph kite(int routers, topo::LinkClass size) {
  return frozen("Kite-" + size_suffix(size) + "-" + std::to_string(routers));
}

topo::DiGraph butter_donut(int routers) {
  return frozen("ButterDonut-" + std::to_string(routers));
}

topo::DiGraph double_butterfly(int routers) {
  return frozen("DoubleButterfly-" + std::to_string(routers));
}

topo::DiGraph lpbt_power_small(int routers) {
  return frozen("LPBT-Power-small-" + std::to_string(routers));
}

topo::DiGraph lpbt_hops(int routers, topo::LinkClass size) {
  return frozen("LPBT-Hops-" + size_suffix(size) + "-" + std::to_string(routers));
}

}  // namespace netsmith::topologies
