#pragma once
// Expert-designed baseline topologies (paper SII-A, Table II): Mesh,
// Folded Torus, the Kite family, Butter Donut, Double Butterfly — plus the
// LPBT machine-synthesized baselines of Srinivasan et al.
//
// Mesh and Folded Torus follow directly from their published rules
// (topo/builders). Kite / Butter Donut / Double Butterfly / LPBT adjacency
// is published only as figures, so this module carries *reconstructions*:
// symmetric link sets searched offline (tools/reconstruct) to satisfy the
// published structural rules (link-length class, radix 4, misaligned 4x5 or
// 6x5 placement) and to match Table II's metrics (#links, diameter, average
// hops, bisection bandwidth) exactly. The frozen adjacency lists live in
// expert.cpp; tests/test_topologies.cpp asserts the metric match.

#include <string>

#include "topo/graph.hpp"
#include "topo/layout.hpp"

namespace netsmith::topologies {

// Reconstructed expert topologies. `routers` selects the 20 (4x5) or
// 30 (6x5) variant; throws if no reconstruction exists for that size.
topo::DiGraph kite(int routers, topo::LinkClass size);
topo::DiGraph butter_donut(int routers);
topo::DiGraph double_butterfly(int routers);

// Reconstructed LPBT outputs (the paper's prior-art synthesis baseline,
// 20 routers only; at 30+ the paper reports LPBT failed to produce a
// connected graph).
topo::DiGraph lpbt_power_small(int routers);
topo::DiGraph lpbt_hops(int routers, topo::LinkClass size);

// Access to the raw frozen table (name -> adjacency), for docs/tools.
topo::DiGraph frozen(const std::string& name);
bool has_frozen(const std::string& name);

}  // namespace netsmith::topologies
