#include "lp/milp.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "util/timer.hpp"

namespace netsmith::lp {

namespace {

struct Node {
  // Bound overrides relative to the root model, sparse: (var, lb, ub).
  std::vector<std::array<double, 2>> bounds;  // indexed in parallel with vars_
  std::vector<int> vars;
  double bound = 0.0;  // parent LP objective (in minimization sense)
  int depth = 0;
};

struct NodeCmp {
  bool operator()(const std::shared_ptr<Node>& a,
                  const std::shared_ptr<Node>& b) const {
    if (a->bound != b->bound) return a->bound > b->bound;  // min-heap on bound
    return a->depth < b->depth;  // deeper first among equals (plunge-like)
  }
};

bool is_int_var(const VarDef& v) { return v.type != VarType::kContinuous; }

}  // namespace

Solution solve_milp(const Model& model, const MilpOptions& opts) {
  util::WallTimer timer;
  const double sign = model.sense() == Sense::kMinimize ? 1.0 : -1.0;

  if (!model.has_integers()) return solve_lp(model, opts.lp);

  Solution best;
  best.status = SolveStatus::kInfeasible;
  double incumbent = std::numeric_limits<double>::infinity();  // min-sense
  long nodes = 0;
  long iterations = 0;

  // Working copy whose bounds we mutate per node.
  Model work = model;

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>,
                      NodeCmp>
      open;
  auto root = std::make_shared<Node>();
  root->bound = -std::numeric_limits<double>::infinity();
  open.push(root);

  double global_bound = -std::numeric_limits<double>::infinity();
  SolveStatus final_status = SolveStatus::kOptimal;

  auto report = [&]() {
    if (!opts.progress) return;
    const double inc = std::isfinite(incumbent) ? sign * incumbent
                                                : std::numeric_limits<double>::quiet_NaN();
    opts.progress(timer.seconds(), inc, sign * global_bound);
  };

  // Solves the LP under a node's bound overrides (applied then restored in
  // LIFO order — a variable branched on twice records its earlier state
  // after later overrides, so only reverse restoration is correct).
  auto solve_node = [&](const Node& node) -> Solution {
    std::vector<std::array<double, 2>> saved(node.vars.size());
    bool bounds_ok = true;
    for (std::size_t k = 0; k < node.vars.size(); ++k) {
      auto& v = work.var(node.vars[k]);
      saved[k] = {v.lb, v.ub};
      v.lb = std::max(v.lb, node.bounds[k][0]);
      v.ub = std::min(v.ub, node.bounds[k][1]);
      if (v.lb > v.ub + 1e-12) bounds_ok = false;
    }
    Solution lp;
    if (bounds_ok) {
      lp = solve_lp(work, opts.lp);
      iterations += lp.iterations;
    } else {
      lp.status = SolveStatus::kInfeasible;
    }
    ++nodes;
    for (std::size_t k = node.vars.size(); k-- > 0;) {
      auto& v = work.var(node.vars[k]);
      v.lb = saved[k][0];
      v.ub = saved[k][1];
    }
    return lp;
  };

  auto most_fractional = [&](const std::vector<double>& x) {
    int frac_var = -1;
    double best_score = 1.0;
    for (int j = 0; j < model.num_vars(); ++j) {
      if (!is_int_var(model.var(j))) continue;
      const double dist = std::abs(x[j] - std::round(x[j]));
      if (dist <= opts.int_tol) continue;
      const double score = std::abs(dist - 0.5);
      if (frac_var < 0 || score < best_score) {
        frac_var = j;
        best_score = score;
      }
    }
    return frac_var;
  };

  bool done = false;
  while (!open.empty() && !done) {
    auto node = open.top();
    open.pop();
    global_bound = node->bound;
    if (std::isfinite(incumbent)) {
      const double gap = (incumbent - global_bound) /
                         std::max(1.0, std::abs(incumbent));
      if (gap <= opts.gap_tol) {
        global_bound = incumbent;
        break;
      }
    }
    if (node->bound >= incumbent - 1e-12 && std::isfinite(incumbent)) continue;

    // Plunge: follow the branch child nearer the LP value depth-first,
    // queueing the far child. This finds incumbents quickly so best-first
    // pruning has something to prune against.
    std::shared_ptr<Node> cur = node;
    while (cur) {
      if (timer.seconds() > opts.time_limit_s) {
        final_status = SolveStatus::kTimeLimit;
        done = true;
        break;
      }
      if (nodes > opts.node_limit) {
        final_status = SolveStatus::kNodeLimit;
        done = true;
        break;
      }

      const Solution lp = solve_node(*cur);
      if (lp.status == SolveStatus::kInfeasible) break;
      if (lp.status == SolveStatus::kUnbounded) {
        final_status = SolveStatus::kUnbounded;
        done = true;
        break;
      }
      if (lp.status != SolveStatus::kOptimal) {
        final_status = lp.status;
        done = true;
        break;
      }

      const double lp_obj = sign * lp.objective;  // minimization sense
      if (lp_obj >= incumbent - 1e-12) break;     // bound prune

      const int frac_var = most_fractional(lp.x);
      if (frac_var < 0) {
        // Integral: new incumbent (strictly better, by the prune above).
        incumbent = lp_obj;
        best.status = SolveStatus::kOptimal;
        best.x = lp.x;
        for (int j = 0; j < model.num_vars(); ++j)
          if (is_int_var(model.var(j))) best.x[j] = std::round(best.x[j]);
        best.objective = model.objective_value(best.x);
        report();
        break;
      }

      const double v = lp.x[frac_var];
      auto make_child = [&](double new_lb, double new_ub) {
        auto child = std::make_shared<Node>(*cur);
        child->vars.push_back(frac_var);
        child->bounds.push_back({new_lb, new_ub});
        child->bound = lp_obj;
        child->depth = cur->depth + 1;
        return child;
      };
      auto down = make_child(-kInf, std::floor(v));  // x <= floor(v)
      auto up = make_child(std::ceil(v), kInf);      // x >= ceil(v)
      // Near child continues the plunge; far child goes to the queue.
      if (v - std::floor(v) <= 0.5) {
        open.push(std::move(up));
        cur = std::move(down);
      } else {
        open.push(std::move(down));
        cur = std::move(up);
      }
    }
  }

  if (open.empty()) global_bound = std::isfinite(incumbent) ? incumbent : global_bound;

  best.nodes = nodes;
  best.iterations = iterations;
  if (std::isfinite(incumbent)) {
    if (final_status != SolveStatus::kOptimal) best.status = final_status;
    // A found incumbent with exhausted queue is proven optimal.
    if (open.empty() && final_status == SolveStatus::kOptimal)
      best.status = SolveStatus::kOptimal;
    best.bound = sign * std::min(global_bound, incumbent);
    return best;
  }

  best.status = final_status == SolveStatus::kOptimal ? SolveStatus::kInfeasible
                                                      : final_status;
  best.bound = sign * global_bound;
  return best;
}

}  // namespace netsmith::lp
