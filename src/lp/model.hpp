#pragma once
// Linear / mixed-integer model builder. This is the Gurobi-substitute
// substrate: NetSmith's Table I synthesis encoding, the MCLB routing
// formulation (Table III), and the LPBT baseline all build lp::Model
// instances and hand them to SimplexSolver / MilpSolver.

#include <limits>
#include <string>
#include <vector>

namespace netsmith::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kMinimize, kMaximize };
enum class Rel { kLe, kGe, kEq };
enum class VarType { kContinuous, kInteger, kBinary };

struct Term {
  int var = 0;
  double coef = 0.0;
};

struct VarDef {
  double lb = 0.0;
  double ub = kInf;
  double obj = 0.0;
  VarType type = VarType::kContinuous;
  std::string name;
};

struct ConstraintDef {
  std::vector<Term> terms;
  Rel rel = Rel::kLe;
  double rhs = 0.0;
  std::string name;
};

class Model {
 public:
  int add_var(double lb, double ub, double obj, VarType type,
              std::string name = {});
  int add_binary(double obj = 0.0, std::string name = {}) {
    return add_var(0.0, 1.0, obj, VarType::kBinary, std::move(name));
  }
  int add_continuous(double lb, double ub, double obj = 0.0,
                     std::string name = {}) {
    return add_var(lb, ub, obj, VarType::kContinuous, std::move(name));
  }
  int add_integer(double lb, double ub, double obj = 0.0,
                  std::string name = {}) {
    return add_var(lb, ub, obj, VarType::kInteger, std::move(name));
  }

  void add_constraint(std::vector<Term> terms, Rel rel, double rhs,
                      std::string name = {});

  void set_sense(Sense s) { sense_ = s; }
  Sense sense() const { return sense_; }

  int num_vars() const { return static_cast<int>(vars_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }
  const VarDef& var(int j) const { return vars_[j]; }
  VarDef& var(int j) { return vars_[j]; }
  const ConstraintDef& constraint(int i) const { return constraints_[i]; }
  const std::vector<VarDef>& vars() const { return vars_; }
  const std::vector<ConstraintDef>& constraints() const { return constraints_; }

  bool has_integers() const;

  // Evaluates the objective for a full assignment.
  double objective_value(const std::vector<double>& x) const;
  // Max constraint violation of an assignment (for verification in tests).
  double max_violation(const std::vector<double>& x) const;

 private:
  Sense sense_ = Sense::kMinimize;
  std::vector<VarDef> vars_;
  std::vector<ConstraintDef> constraints_;
};

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterLimit,
  kTimeLimit,
  kNodeLimit,
};

std::string to_string(SolveStatus s);

struct Solution {
  SolveStatus status = SolveStatus::kIterLimit;
  std::vector<double> x;
  double objective = 0.0;
  // Dual (best possible) bound: for MILP, the proven bound on the optimum;
  // equals objective when status == kOptimal.
  double bound = 0.0;
  long nodes = 0;       // branch-and-bound nodes explored
  long iterations = 0;  // total simplex iterations
};

}  // namespace netsmith::lp
