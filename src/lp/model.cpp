#include "lp/model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace netsmith::lp {

int Model::add_var(double lb, double ub, double obj, VarType type,
                   std::string name) {
  assert(lb <= ub);
  if (type == VarType::kBinary) {
    lb = std::max(lb, 0.0);
    ub = std::min(ub, 1.0);
  }
  vars_.push_back(VarDef{lb, ub, obj, type, std::move(name)});
  return static_cast<int>(vars_.size()) - 1;
}

void Model::add_constraint(std::vector<Term> terms, Rel rel, double rhs,
                           std::string name) {
  for ([[maybe_unused]] const auto& t : terms)
    assert(t.var >= 0 && t.var < num_vars());
  constraints_.push_back(ConstraintDef{std::move(terms), rel, rhs, std::move(name)});
}

bool Model::has_integers() const {
  return std::any_of(vars_.begin(), vars_.end(), [](const VarDef& v) {
    return v.type != VarType::kContinuous;
  });
}

double Model::objective_value(const std::vector<double>& x) const {
  double v = 0.0;
  for (int j = 0; j < num_vars(); ++j) v += vars_[j].obj * x[j];
  return v;
}

double Model::max_violation(const std::vector<double>& x) const {
  double worst = 0.0;
  for (const auto& c : constraints_) {
    double lhs = 0.0;
    for (const auto& t : c.terms) lhs += t.coef * x[t.var];
    double viol = 0.0;
    switch (c.rel) {
      case Rel::kLe: viol = lhs - c.rhs; break;
      case Rel::kGe: viol = c.rhs - lhs; break;
      case Rel::kEq: viol = std::abs(lhs - c.rhs); break;
    }
    worst = std::max(worst, viol);
  }
  for (int j = 0; j < num_vars(); ++j) {
    worst = std::max(worst, vars_[j].lb - x[j]);
    worst = std::max(worst, x[j] - vars_[j].ub);
  }
  return worst;
}

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterLimit: return "iteration-limit";
    case SolveStatus::kTimeLimit: return "time-limit";
    case SolveStatus::kNodeLimit: return "node-limit";
  }
  return "?";
}

}  // namespace netsmith::lp
