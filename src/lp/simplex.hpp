#pragma once
// Dense two-phase primal simplex with bounded variables.
//
// Handles general variable bounds [lb, ub] natively (nonbasic-at-lower /
// nonbasic-at-upper with bound flips), converts all constraints to equalities
// with slacks, and uses artificial variables only for rows whose slack cannot
// absorb the initial residual. Dantzig pricing with a Bland's-rule fallback
// guards against cycling. Intended problem sizes are the paper's: hundreds to
// a few thousand variables/rows (NetSmith Table I at small n, MCLB routing,
// LPBT baseline), where a dense tableau is simple and fast enough.

#include "lp/model.hpp"

namespace netsmith::lp {

struct SimplexOptions {
  long max_iterations = 200000;
  double time_limit_s = 60.0;
  double pivot_tol = 1e-9;
  double cost_tol = 1e-7;
  // After this many iterations switch from Dantzig to Bland's rule.
  long bland_after = 20000;
};

// Solves the LP relaxation of `model` (integrality ignored).
Solution solve_lp(const Model& model, const SimplexOptions& opts = {});

}  // namespace netsmith::lp
