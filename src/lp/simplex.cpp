#include "lp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/timer.hpp"

namespace netsmith::lp {

namespace {

enum : std::int8_t { kAtLb = 0, kAtUb = 1, kBasic = 2 };

struct Tableau {
  int m = 0;       // rows
  int total = 0;   // columns: structural + slack + artificial
  int n_struct = 0;
  std::vector<double> T;     // m x total, current tableau B^-1 * A
  std::vector<double> beta;  // m, values of basic variables
  std::vector<int> basis;    // m
  std::vector<std::int8_t> stat;  // total
  std::vector<double> lb, ub, xval;
  std::vector<double> d;  // reduced-cost row for the active phase
  double z = 0.0;         // active-phase objective value

  double& at(int i, int j) { return T[static_cast<std::size_t>(i) * total + j]; }
  double at(int i, int j) const { return T[static_cast<std::size_t>(i) * total + j]; }

  double value_of(int j) const {
    if (stat[j] == kBasic) {
      for (int i = 0; i < m; ++i)
        if (basis[i] == j) return beta[i];
      return 0.0;  // unreachable
    }
    return xval[j];
  }
};

// Builds the reduced-cost row d = c - c_B^T * T and objective z = c^T x for
// an arbitrary cost vector over all columns.
void price(Tableau& t, const std::vector<double>& cost) {
  t.d.assign(t.total, 0.0);
  for (int j = 0; j < t.total; ++j) t.d[j] = cost[j];
  for (int i = 0; i < t.m; ++i) {
    const double cb = cost[t.basis[i]];
    if (cb == 0.0) continue;
    const double* row = &t.T[static_cast<std::size_t>(i) * t.total];
    for (int j = 0; j < t.total; ++j) t.d[j] -= cb * row[j];
  }
  t.z = 0.0;
  for (int i = 0; i < t.m; ++i) t.z += cost[t.basis[i]] * t.beta[i];
  for (int j = 0; j < t.total; ++j)
    if (t.stat[j] != kBasic) t.z += cost[j] * t.xval[j];
}

enum class StepResult { kOptimal, kUnbounded, kMoved };

// One primal simplex iteration (minimization). Returns kOptimal when no
// eligible entering variable exists.
StepResult step(Tableau& t, const SimplexOptions& opts, bool bland) {
  // --- Pricing: pick entering column.
  int q = -1;
  int dir = 0;
  double best = opts.cost_tol;
  for (int j = 0; j < t.total; ++j) {
    if (t.stat[j] == kBasic) continue;
    if (t.lb[j] == t.ub[j]) continue;  // fixed, cannot move
    const double dj = t.d[j];
    if (t.stat[j] == kAtLb && dj < -opts.cost_tol) {
      if (bland) { q = j; dir = +1; break; }
      if (-dj > best) { best = -dj; q = j; dir = +1; }
    } else if (t.stat[j] == kAtUb && dj > opts.cost_tol) {
      if (bland) { q = j; dir = -1; break; }
      if (dj > best) { best = dj; q = j; dir = -1; }
    }
  }
  if (q < 0) return StepResult::kOptimal;

  // --- Ratio test. Two candidate limits: the entering variable reaching its
  // opposite bound (bound flip), and a basic variable reaching one of its
  // bounds (pivot).
  const double t_flip = (std::isfinite(t.ub[q]) && std::isfinite(t.lb[q]))
                            ? t.ub[q] - t.lb[q]
                            : kInf;
  double t_row = kInf;
  int leave_row = -1;
  int leave_to = kAtLb;
  double leave_pivot = 0.0;

  for (int i = 0; i < t.m; ++i) {
    const double a = t.at(i, q) * dir;
    if (std::abs(a) <= opts.pivot_tol) continue;
    const int k = t.basis[i];
    double limit;
    int to;
    if (a > 0.0) {  // basic var decreases toward its lb
      if (!std::isfinite(t.lb[k])) continue;
      limit = (t.beta[i] - t.lb[k]) / a;
      to = kAtLb;
    } else {  // basic var increases toward its ub
      if (!std::isfinite(t.ub[k])) continue;
      limit = (t.ub[k] - t.beta[i]) / (-a);
      to = kAtUb;
    }
    if (limit < 0.0) limit = 0.0;
    bool take = false;
    if (limit < t_row - 1e-12) {
      take = true;
    } else if (limit < t_row + 1e-12 && leave_row >= 0) {
      // Tie-break: Bland prefers the smallest leaving index (anti-cycling);
      // otherwise prefer the largest pivot magnitude for stability.
      take = bland ? t.basis[i] < t.basis[leave_row]
                   : std::abs(t.at(i, q)) > std::abs(leave_pivot);
    }
    if (take) {
      t_row = std::min(t_row, limit);
      leave_row = i;
      leave_to = to;
      leave_pivot = t.at(i, q);
    }
  }

  if (!std::isfinite(t_flip) && !std::isfinite(t_row))
    return StepResult::kUnbounded;

  const bool do_flip = t_flip <= t_row + 1e-12;
  const double step_len = std::max(do_flip ? t_flip : t_row, 0.0);

  // --- Apply the move of length step_len in direction dir.
  for (int i = 0; i < t.m; ++i) t.beta[i] -= t.at(i, q) * dir * step_len;
  t.z += t.d[q] * dir * step_len;

  if (do_flip) {
    // Bound flip: q moves to its opposite bound, basis unchanged.
    t.stat[q] = (dir > 0) ? kAtUb : kAtLb;
    t.xval[q] = (dir > 0) ? t.ub[q] : t.lb[q];
    return StepResult::kMoved;
  }

  // --- Pivot: q enters in leave_row, basis[leave_row] leaves.
  const double v_q = t.xval[q] + dir * step_len;
  const int k = t.basis[leave_row];
  t.stat[k] = static_cast<std::int8_t>(leave_to);
  t.xval[k] = (leave_to == kAtLb) ? t.lb[k] : t.ub[k];

  const double piv = t.at(leave_row, q);
  assert(std::abs(piv) > opts.pivot_tol);
  double* prow = &t.T[static_cast<std::size_t>(leave_row) * t.total];
  const double inv = 1.0 / piv;
  for (int j = 0; j < t.total; ++j) prow[j] *= inv;
  for (int i = 0; i < t.m; ++i) {
    if (i == leave_row) continue;
    const double f = t.at(i, q);
    if (f == 0.0) continue;
    double* row = &t.T[static_cast<std::size_t>(i) * t.total];
    for (int j = 0; j < t.total; ++j) row[j] -= f * prow[j];
  }
  {
    const double f = t.d[q];
    if (f != 0.0)
      for (int j = 0; j < t.total; ++j) t.d[j] -= f * prow[j];
  }
  t.basis[leave_row] = q;
  t.stat[q] = kBasic;
  t.beta[leave_row] = v_q;
  return StepResult::kMoved;
}

}  // namespace

Solution solve_lp(const Model& model, const SimplexOptions& opts) {
  util::WallTimer timer;
  Solution sol;
  const int n = model.num_vars();
  const int m = model.num_constraints();

  // Internally we always minimize; negate the objective for maximization.
  const double obj_sign = model.sense() == Sense::kMinimize ? 1.0 : -1.0;

  Tableau t;
  t.m = m;
  t.n_struct = n;
  // Columns: structural | slack (one per row) | artificial (allocated lazily
  // but we reserve one per row for simplicity).
  t.total = n + m + m;
  t.T.assign(static_cast<std::size_t>(m) * t.total, 0.0);
  t.beta.assign(m, 0.0);
  t.basis.assign(m, -1);
  t.stat.assign(t.total, kAtLb);
  t.lb.assign(t.total, 0.0);
  t.ub.assign(t.total, 0.0);
  t.xval.assign(t.total, 0.0);

  // Structural variables: nonbasic at a finite bound.
  for (int j = 0; j < n; ++j) {
    const auto& v = model.var(j);
    t.lb[j] = v.lb;
    t.ub[j] = v.ub;
    if (std::isfinite(v.lb)) {
      t.stat[j] = kAtLb;
      t.xval[j] = v.lb;
    } else if (std::isfinite(v.ub)) {
      t.stat[j] = kAtUb;
      t.xval[j] = v.ub;
    } else {
      throw std::invalid_argument("solve_lp: fully free variables unsupported");
    }
  }

  // Rows as equalities with slacks; artificials where the slack cannot cover
  // the initial residual.
  int artificials = 0;
  for (int i = 0; i < m; ++i) {
    const auto& c = model.constraint(i);
    double act = 0.0;
    for (const auto& term : c.terms) {
      t.at(i, term.var) += term.coef;
    }
    for (const auto& term : c.terms) act += term.coef * t.xval[term.var];

    const int s = n + i;  // slack column
    double slb = 0.0, sub = 0.0;
    switch (c.rel) {
      case Rel::kLe: slb = 0.0; sub = kInf; break;
      case Rel::kGe: slb = -kInf; sub = 0.0; break;
      case Rel::kEq: slb = 0.0; sub = 0.0; break;
    }
    t.at(i, s) = 1.0;
    t.lb[s] = slb;
    t.ub[s] = sub;

    const double resid = c.rhs - act;  // desired slack value
    if (resid >= slb - 1e-12 && resid <= sub + 1e-12) {
      // Slack absorbs the residual: make it basic.
      t.basis[i] = s;
      t.stat[s] = kBasic;
      t.beta[i] = resid;
    } else {
      // Clamp slack to its nearest bound and add an artificial.
      const double sv = std::clamp(resid, slb, sub);
      const double sv_clamped = std::isfinite(sv) ? sv : 0.0;
      t.stat[s] = (sv_clamped == slb) ? kAtLb : kAtUb;
      t.xval[s] = sv_clamped;
      double left = resid - sv_clamped;
      const int a = n + m + i;
      if (left < 0) {
        // Scale the row by -1 so the artificial enters with +1 and beta >= 0.
        double* row = &t.T[static_cast<std::size_t>(i) * t.total];
        for (int j = 0; j < t.total; ++j) row[j] = -row[j];
        left = -left;
      }
      t.at(i, a) = 1.0;
      t.lb[a] = 0.0;
      t.ub[a] = kInf;
      t.basis[i] = a;
      t.stat[a] = kBasic;
      t.beta[i] = left;
      ++artificials;
    }
  }

  auto run_phase = [&](const std::vector<double>& cost) -> SolveStatus {
    price(t, cost);
    long it = 0;
    while (true) {
      if (timer.seconds() > opts.time_limit_s) return SolveStatus::kTimeLimit;
      if (it > opts.max_iterations) return SolveStatus::kIterLimit;
      const bool bland = it > opts.bland_after;
      const StepResult r = step(t, opts, bland);
      ++it;
      sol.iterations++;
      if (r == StepResult::kOptimal) return SolveStatus::kOptimal;
      if (r == StepResult::kUnbounded) return SolveStatus::kUnbounded;
    }
  };

  // --- Phase 1: drive artificials to zero.
  if (artificials > 0) {
    std::vector<double> cost1(t.total, 0.0);
    for (int i = 0; i < m; ++i) {
      const int a = n + m + i;
      if (t.ub[a] > 0.0 || t.at(i, a) != 0.0) cost1[a] = 1.0;
    }
    const SolveStatus s1 = run_phase(cost1);
    if (s1 != SolveStatus::kOptimal) {
      sol.status = s1 == SolveStatus::kUnbounded ? SolveStatus::kInfeasible : s1;
      return sol;
    }
    if (t.z > 1e-6) {
      sol.status = SolveStatus::kInfeasible;
      return sol;
    }
    // Lock artificials at zero for phase 2.
    for (int i = 0; i < m; ++i) {
      const int a = n + m + i;
      t.lb[a] = 0.0;
      t.ub[a] = 0.0;
      if (t.stat[a] != kBasic) t.xval[a] = 0.0;
    }
  }

  // --- Phase 2: original objective.
  std::vector<double> cost2(t.total, 0.0);
  for (int j = 0; j < n; ++j) cost2[j] = obj_sign * model.var(j).obj;
  const SolveStatus s2 = run_phase(cost2);
  if (s2 == SolveStatus::kUnbounded) {
    sol.status = SolveStatus::kUnbounded;
    return sol;
  }
  if (s2 != SolveStatus::kOptimal) {
    sol.status = s2;
    return sol;
  }

  sol.status = SolveStatus::kOptimal;
  sol.x.assign(n, 0.0);
  for (int j = 0; j < n; ++j) sol.x[j] = t.value_of(j);
  sol.objective = model.objective_value(sol.x);
  sol.bound = sol.objective;
  return sol;
}

}  // namespace netsmith::lp
