#pragma once
// Branch-and-bound MILP solver over the simplex LP relaxation.
//
// Best-first node selection on the relaxation bound with depth-first
// "plunging" to find incumbents early (the same anytime behaviour the paper
// leans on: MIP solvers report an incumbent and an objective-bounds gap that
// narrows over time, Fig. 5). Supports time / node / gap limits and an
// optional progress callback receiving (seconds, incumbent, bound).

#include <functional>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace netsmith::lp {

struct MilpOptions {
  SimplexOptions lp;
  double time_limit_s = 60.0;
  long node_limit = 2000000;
  double gap_tol = 1e-6;       // relative objective-bounds gap to stop at
  double int_tol = 1e-6;       // integrality tolerance
  // Called whenever the incumbent or bound improves.
  std::function<void(double seconds, double incumbent, double bound)> progress;
};

Solution solve_milp(const Model& model, const MilpOptions& opts = {});

}  // namespace netsmith::lp
