#include "api/spec.hpp"

#include <stdexcept>

#include "util/json.hpp"

namespace netsmith::api {

using util::JsonValue;

// ------------------------------------------------- enum <-> string helpers --

const char* to_string(TopologySource s) {
  switch (s) {
    case TopologySource::kSynthesize: return "synthesize";
    case TopologySource::kBaseline: return "baseline";
    case TopologySource::kExplicit: return "explicit";
    case TopologySource::kCatalog: return "catalog";
  }
  return "baseline";
}

TopologySource topology_source_from_string(const std::string& s) {
  if (s == "synthesize") return TopologySource::kSynthesize;
  if (s == "baseline") return TopologySource::kBaseline;
  if (s == "explicit") return TopologySource::kExplicit;
  if (s == "catalog") return TopologySource::kCatalog;
  throw std::invalid_argument("spec: unknown topology source '" + s + "'");
}

core::Objective objective_from_string(const std::string& s) {
  if (s == "latop") return core::Objective::kLatOp;
  if (s == "scop") return core::Objective::kSCOp;
  if (s == "pattern") return core::Objective::kPattern;
  if (s == "channel_load") return core::Objective::kChannelLoad;
  if (s == "latload") return core::Objective::kLatLoad;
  throw std::invalid_argument("spec: unknown objective '" + s + "'");
}

const char* objective_to_string(core::Objective o) {
  switch (o) {
    case core::Objective::kLatOp: return "latop";
    case core::Objective::kSCOp: return "scop";
    case core::Objective::kPattern: return "pattern";
    case core::Objective::kChannelLoad: return "channel_load";
    case core::Objective::kLatLoad: return "latload";
  }
  return "latop";
}

topo::LinkClass link_class_from_string(const std::string& s) {
  if (s == "small") return topo::LinkClass::kSmall;
  if (s == "medium") return topo::LinkClass::kMedium;
  if (s == "large") return topo::LinkClass::kLarge;
  throw std::invalid_argument("spec: unknown link class '" + s + "'");
}

sim::SimConfig make_sim_config(const ExperimentSpec& spec) {
  sim::SimConfig c;
  c.num_vcs = spec.num_vcs;
  c.buf_flits = spec.sweep.buf_flits;
  c.router_delay = spec.sweep.router_delay;
  c.link_delay = spec.sweep.link_delay;
  c.io_flits_per_cycle = spec.sweep.io_flits_per_cycle;
  c.warmup = spec.sweep.warmup;
  c.measure = spec.sweep.measure;
  c.drain = spec.sweep.drain;
  c.seed = spec.sweep.sim_seed;
  return c;
}

// ----------------------------------------------------------- serializing ---

namespace {

JsonValue to_json(const TopologySpec& t) {
  JsonValue o = JsonValue::object();
  o.set("source", JsonValue::string(to_string(t.source)));
  o.set("name", JsonValue::string(t.name));
  o.set("baseline", JsonValue::string(t.baseline));
  o.set("catalog_routers", JsonValue::integer(t.catalog_routers));
  o.set("include_baselines", JsonValue::boolean(t.include_baselines));
  o.set("adjacency", JsonValue::string(t.adjacency));
  o.set("rows", JsonValue::integer(t.rows));
  o.set("cols", JsonValue::integer(t.cols));
  o.set("link_class", JsonValue::string(t.link_class));
  JsonValue objs = JsonValue::array();
  for (const auto& ob : t.objectives) objs.push_back(JsonValue::string(ob));
  o.set("objectives", std::move(objs));
  o.set("radix", JsonValue::integer(t.radix));
  o.set("symmetric_links", JsonValue::boolean(t.symmetric_links));
  o.set("diameter_bound", JsonValue::integer(t.diameter_bound));
  o.set("min_cut_bandwidth", JsonValue::number(t.min_cut_bandwidth));
  o.set("load_weight", JsonValue::number(t.load_weight));
  o.set("time_limit_s", JsonValue::number(t.time_limit_s));
  o.set("synth_seed", JsonValue::integer(static_cast<long long>(t.synth_seed)));
  o.set("restarts", JsonValue::integer(t.restarts));
  o.set("max_moves", JsonValue::integer(t.max_moves));
  o.set("landmark_sources", JsonValue::integer(t.landmark_sources));
  return o;
}

JsonValue to_json(const TrafficSpec& t) {
  JsonValue o = JsonValue::object();
  o.set("name", JsonValue::string(t.name));
  o.set("kind", JsonValue::string(t.kind));
  o.set("ctrl_flits", JsonValue::integer(t.ctrl_flits));
  o.set("data_flits", JsonValue::integer(t.data_flits));
  o.set("data_fraction", JsonValue::number(t.data_fraction));
  return o;
}

JsonValue to_json(const SweepSpec& s) {
  JsonValue o = JsonValue::object();
  o.set("points", JsonValue::integer(s.points));
  o.set("max_rate", JsonValue::number(s.max_rate));
  o.set("adaptive", JsonValue::boolean(s.adaptive));
  o.set("warmup", JsonValue::integer(s.warmup));
  o.set("measure", JsonValue::integer(s.measure));
  o.set("drain", JsonValue::integer(s.drain));
  o.set("buf_flits", JsonValue::integer(s.buf_flits));
  o.set("io_flits_per_cycle", JsonValue::integer(s.io_flits_per_cycle));
  o.set("router_delay", JsonValue::integer(s.router_delay));
  o.set("link_delay", JsonValue::integer(s.link_delay));
  o.set("sim_seed", JsonValue::integer(static_cast<long long>(s.sim_seed)));
  return o;
}

JsonValue to_json(const PowerSpec& p) {
  JsonValue o = JsonValue::object();
  o.set("enabled", JsonValue::boolean(p.enabled));
  o.set("flits_per_node_cycle", JsonValue::number(p.flits_per_node_cycle));
  return o;
}

JsonValue to_json(const fault::FaultEvent& e) {
  JsonValue o = JsonValue::object();
  o.set("cycle", JsonValue::integer(e.cycle));
  o.set("kind", JsonValue::string(fault::to_string(e.kind)));
  o.set("a", JsonValue::integer(e.a));
  o.set("b", JsonValue::integer(e.b));
  return o;
}

JsonValue to_json(const fault::FaultScenarioSpec& f) {
  JsonValue o = JsonValue::object();
  o.set("name", JsonValue::string(f.name));
  o.set("mode", JsonValue::string(f.mode));
  o.set("k", JsonValue::integer(f.k));
  o.set("fail_at", JsonValue::integer(f.fail_at));
  o.set("recover_at", JsonValue::integer(f.recover_at));
  o.set("link_mtbf", JsonValue::number(f.link_mtbf));
  o.set("link_mttr", JsonValue::number(f.link_mttr));
  o.set("router_mtbf", JsonValue::number(f.router_mtbf));
  o.set("router_mttr", JsonValue::number(f.router_mttr));
  o.set("seed", JsonValue::integer(static_cast<long long>(f.seed)));
  o.set("lossy", JsonValue::boolean(f.lossy));
  o.set("repair", JsonValue::boolean(f.repair));
  JsonValue events = JsonValue::array();
  for (const auto& e : f.events) events.push_back(to_json(e));
  o.set("events", std::move(events));
  return o;
}

}  // namespace

int spec_schema_version(const ExperimentSpec& spec) {
  return spec.faults.empty() ? kSpecMinSchemaVersion : kSpecSchemaVersion;
}

JsonValue spec_to_json(const ExperimentSpec& spec) {
  JsonValue o = JsonValue::object();
  o.set("schema_version", JsonValue::integer(spec_schema_version(spec)));
  o.set("name", JsonValue::string(spec.name));
  JsonValue topos = JsonValue::array();
  for (const auto& t : spec.topologies) topos.push_back(to_json(t));
  o.set("topologies", std::move(topos));
  o.set("routing", JsonValue::string(spec.routing));
  o.set("num_vcs", JsonValue::integer(spec.num_vcs));
  o.set("max_paths_per_flow", JsonValue::integer(spec.max_paths_per_flow));
  o.set("chiplet_system", JsonValue::boolean(spec.chiplet_system));
  JsonValue seeds = JsonValue::array();
  for (auto s : spec.seeds)
    seeds.push_back(JsonValue::integer(static_cast<long long>(s)));
  o.set("seeds", std::move(seeds));
  o.set("analytic", JsonValue::boolean(spec.analytic));
  JsonValue traffic = JsonValue::array();
  for (const auto& t : spec.traffic) traffic.push_back(to_json(t));
  o.set("traffic", std::move(traffic));
  o.set("sweep", to_json(spec.sweep));
  o.set("power", to_json(spec.power));
  // v2 key, emitted only when used: a faultless spec keeps the exact v1
  // byte layout (reports embed specs verbatim, so this preserves report
  // bytes too).
  if (!spec.faults.empty()) {
    JsonValue faults = JsonValue::array();
    for (const auto& f : spec.faults) faults.push_back(to_json(f));
    o.set("faults", std::move(faults));
  }
  o.set("threads", JsonValue::integer(spec.threads));
  return o;
}

std::string serialize(const ExperimentSpec& spec) {
  return spec_to_json(spec).dump();
}

// -------------------------------------------------------------- parsing ----

namespace {

// Strict-object cursor: typed getters with defaults, and a final check that
// every present key was consumed (catches typos in hand-written specs).
class ObjReader {
 public:
  ObjReader(const JsonValue& v, std::string where)
      : obj_(v), where_(std::move(where)) {
    if (!v.is_object())
      throw std::invalid_argument("spec: " + where_ + " must be an object");
  }

  const JsonValue* take(const std::string& key) {
    seen_.push_back(key);
    return obj_.find(key);
  }

  long long get_int(const std::string& key, long long def) {
    const JsonValue* v = take(key);
    return v ? typed(key, [&] { return v->as_int(); }) : def;
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t def) {
    const JsonValue* v = take(key);
    return v ? typed(key, [&] { return v->as_u64(); }) : def;
  }
  double get_double(const std::string& key, double def) {
    const JsonValue* v = take(key);
    return v ? typed(key, [&] { return v->as_double(); }) : def;
  }
  bool get_bool(const std::string& key, bool def) {
    const JsonValue* v = take(key);
    return v ? typed(key, [&] { return v->as_bool(); }) : def;
  }
  std::string get_string(const std::string& key, const std::string& def) {
    const JsonValue* v = take(key);
    return v ? typed(key, [&] { return v->as_string(); }) : def;
  }

  // Wraps a type-mismatched value in an error naming the full path to the
  // bad key, so "spec: bad value for 'warmup' in sweep" instead of a bare
  // json type error.
  template <class Fn>
  auto typed(const std::string& key, Fn fn) -> decltype(fn()) {
    try {
      return fn();
    } catch (const std::exception& e) {
      throw std::invalid_argument("spec: bad value for '" + key + "' in " +
                                  where_ + ": " + e.what());
    }
  }

  void finish() const {
    for (const auto& [key, v] : obj_.members()) {
      bool known = false;
      for (const auto& s : seen_)
        if (s == key) known = true;
      if (!known)
        throw std::invalid_argument("spec: unknown key '" + key + "' in " +
                                    where_);
    }
  }

 private:
  const JsonValue& obj_;
  std::string where_;
  std::vector<std::string> seen_;
};

TopologySpec parse_topology(const JsonValue& v, int index) {
  TopologySpec t;
  ObjReader r(v, "topologies[" + std::to_string(index) + "]");
  t.source = topology_source_from_string(r.get_string("source", "baseline"));
  t.name = r.get_string("name", t.name);
  t.baseline = r.get_string("baseline", t.baseline);
  t.catalog_routers =
      static_cast<int>(r.get_int("catalog_routers", t.catalog_routers));
  t.include_baselines = r.get_bool("include_baselines", t.include_baselines);
  t.adjacency = r.get_string("adjacency", t.adjacency);
  t.rows = static_cast<int>(r.get_int("rows", t.rows));
  t.cols = static_cast<int>(r.get_int("cols", t.cols));
  t.link_class = r.get_string("link_class", t.link_class);
  if (const JsonValue* objs = r.take("objectives")) {
    t.objectives.clear();
    for (const auto& o : objs->items()) {
      objective_from_string(o.as_string());  // validate early
      t.objectives.push_back(o.as_string());
    }
    if (t.objectives.empty())
      throw std::invalid_argument("spec: objectives must not be empty");
  }
  t.radix = static_cast<int>(r.get_int("radix", t.radix));
  t.symmetric_links = r.get_bool("symmetric_links", t.symmetric_links);
  t.diameter_bound = static_cast<int>(r.get_int("diameter_bound", t.diameter_bound));
  t.min_cut_bandwidth = r.get_double("min_cut_bandwidth", t.min_cut_bandwidth);
  t.load_weight = r.get_double("load_weight", t.load_weight);
  t.time_limit_s = r.get_double("time_limit_s", t.time_limit_s);
  t.synth_seed = r.get_u64("synth_seed", t.synth_seed);
  t.restarts = static_cast<int>(r.get_int("restarts", t.restarts));
  t.max_moves = r.get_int("max_moves", t.max_moves);
  t.landmark_sources =
      static_cast<int>(r.get_int("landmark_sources", t.landmark_sources));
  r.finish();

  // Range checks: reject values no synthesis/catalog run can honour.
  if (t.radix < 1)
    throw std::invalid_argument("spec: radix must be >= 1 in topologies[" +
                                std::to_string(index) + "]");
  if (t.restarts < 1)
    throw std::invalid_argument("spec: restarts must be >= 1 in topologies[" +
                                std::to_string(index) + "]");
  if (t.time_limit_s < 0 || t.max_moves < 0 || t.landmark_sources < 0 ||
      t.min_cut_bandwidth < 0 || t.diameter_bound < 0)
    throw std::invalid_argument(
        "spec: time_limit_s, max_moves, landmark_sources, min_cut_bandwidth "
        "and diameter_bound must be >= 0 in topologies[" +
        std::to_string(index) + "]");

  // Per-source structural validation.
  switch (t.source) {
    case TopologySource::kBaseline:
      if (t.baseline.empty())
        throw std::invalid_argument("spec: baseline source needs 'baseline'");
      break;
    case TopologySource::kExplicit:
      if (t.adjacency.empty() || t.rows <= 0 || t.cols <= 0)
        throw std::invalid_argument(
            "spec: explicit source needs adjacency + rows + cols");
      link_class_from_string(t.link_class);
      break;
    case TopologySource::kSynthesize:
      link_class_from_string(t.link_class);
      break;
    case TopologySource::kCatalog:
      if (t.catalog_routers != 20 && t.catalog_routers != 30 &&
          t.catalog_routers != 48)
        throw std::invalid_argument(
            "spec: catalog_routers must be 20, 30 or 48");
      if (!t.name.empty() && t.include_baselines)
        throw std::invalid_argument(
            "spec: catalog 'name' selects a single row and cannot combine "
            "with include_baselines");
      break;
  }
  return t;
}

TrafficSpec parse_traffic(const JsonValue& v, int index) {
  TrafficSpec t;
  ObjReader r(v, "traffic[" + std::to_string(index) + "]");
  t.kind = r.get_string("kind", t.kind);
  if (t.kind != "coherence" && t.kind != "memory" && t.kind != "shuffle" &&
      t.kind != "tornado")
    throw std::invalid_argument("spec: unknown traffic kind '" + t.kind + "'");
  t.name = r.get_string("name", t.name);
  t.ctrl_flits = static_cast<int>(r.get_int("ctrl_flits", t.ctrl_flits));
  t.data_flits = static_cast<int>(r.get_int("data_flits", t.data_flits));
  t.data_fraction = r.get_double("data_fraction", t.data_fraction);
  r.finish();
  if (t.ctrl_flits < 1 || t.data_flits < 1)
    throw std::invalid_argument(
        "spec: ctrl_flits and data_flits must be >= 1 in traffic[" +
        std::to_string(index) + "]");
  if (t.data_fraction < 0.0 || t.data_fraction > 1.0)
    throw std::invalid_argument(
        "spec: data_fraction must be in [0, 1] in traffic[" +
        std::to_string(index) + "]");
  return t;
}

SweepSpec parse_sweep(const JsonValue& v) {
  SweepSpec s;
  ObjReader r(v, "sweep");
  s.points = static_cast<int>(r.get_int("points", s.points));
  s.max_rate = r.get_double("max_rate", s.max_rate);
  s.adaptive = r.get_bool("adaptive", s.adaptive);
  s.warmup = r.get_int("warmup", s.warmup);
  s.measure = r.get_int("measure", s.measure);
  s.drain = r.get_int("drain", s.drain);
  s.buf_flits = static_cast<int>(r.get_int("buf_flits", s.buf_flits));
  s.io_flits_per_cycle =
      static_cast<int>(r.get_int("io_flits_per_cycle", s.io_flits_per_cycle));
  s.router_delay = static_cast<int>(r.get_int("router_delay", s.router_delay));
  s.link_delay = static_cast<int>(r.get_int("link_delay", s.link_delay));
  s.sim_seed = r.get_u64("sim_seed", s.sim_seed);
  r.finish();
  if (s.points <= 0)
    throw std::invalid_argument("spec: sweep.points must be positive");
  if (s.measure <= 0)
    throw std::invalid_argument("spec: sweep.measure must be positive");
  if (s.warmup < 0 || s.drain < 0)
    throw std::invalid_argument("spec: sweep.warmup and sweep.drain must be >= 0");
  if (s.max_rate < 0)
    throw std::invalid_argument("spec: sweep.max_rate must be >= 0");
  if (s.buf_flits < 1 || s.io_flits_per_cycle < 1)
    throw std::invalid_argument(
        "spec: sweep.buf_flits and sweep.io_flits_per_cycle must be >= 1");
  if (s.router_delay < 0 || s.link_delay < 0 ||
      s.router_delay + s.link_delay < 1)
    throw std::invalid_argument(
        "spec: sweep.router_delay and sweep.link_delay must be >= 0 and sum "
        "to >= 1");
  return s;
}

PowerSpec parse_power(const JsonValue& v) {
  PowerSpec p;
  ObjReader r(v, "power");
  p.enabled = r.get_bool("enabled", p.enabled);
  p.flits_per_node_cycle =
      r.get_double("flits_per_node_cycle", p.flits_per_node_cycle);
  r.finish();
  return p;
}

fault::FaultEvent parse_fault_event(const JsonValue& v, const std::string& at) {
  fault::FaultEvent e;
  ObjReader r(v, at);
  e.cycle = r.get_int("cycle", e.cycle);
  e.kind = fault::fault_event_kind_from_string(
      r.get_string("kind", fault::to_string(e.kind)));
  e.a = static_cast<int>(r.get_int("a", e.a));
  e.b = static_cast<int>(r.get_int("b", e.b));
  r.finish();
  if (e.cycle < 0)
    throw std::invalid_argument("spec: event cycle must be >= 0 in " + at);
  const bool link = e.kind == fault::FaultEventKind::kLinkDown ||
                    e.kind == fault::FaultEventKind::kLinkUp;
  if (e.a < 0 || (link && e.b < 0))
    throw std::invalid_argument(
        "spec: event endpoints must name routers (a" +
        std::string(link ? " and b" : "") + " >= 0) in " + at);
  return e;
}

fault::FaultScenarioSpec parse_fault_scenario(const JsonValue& v, int index) {
  fault::FaultScenarioSpec f;
  const std::string at = "faults[" + std::to_string(index) + "]";
  ObjReader r(v, at);
  f.name = r.get_string("name", f.name);
  f.mode = r.get_string("mode", f.mode);
  if (f.mode != "targeted" && f.mode != "random" && f.mode != "explicit")
    throw std::invalid_argument(
        "spec: mode must be targeted|random|explicit in " + at);
  f.k = static_cast<int>(r.get_int("k", f.k));
  f.fail_at = r.get_int("fail_at", f.fail_at);
  f.recover_at = r.get_int("recover_at", f.recover_at);
  f.link_mtbf = r.get_double("link_mtbf", f.link_mtbf);
  f.link_mttr = r.get_double("link_mttr", f.link_mttr);
  f.router_mtbf = r.get_double("router_mtbf", f.router_mtbf);
  f.router_mttr = r.get_double("router_mttr", f.router_mttr);
  f.seed = r.get_u64("seed", f.seed);
  f.lossy = r.get_bool("lossy", f.lossy);
  f.repair = r.get_bool("repair", f.repair);
  if (const JsonValue* events = r.take("events")) {
    int i = 0;
    for (const auto& e : events->items())
      f.events.push_back(
          parse_fault_event(e, at + ".events[" + std::to_string(i++) + "]"));
  }
  r.finish();
  if (f.k < 0)
    throw std::invalid_argument("spec: k must be >= 0 in " + at);
  if (f.fail_at < 0)
    throw std::invalid_argument("spec: fail_at must be >= 0 in " + at);
  if (f.recover_at >= 0 && f.recover_at <= f.fail_at)
    throw std::invalid_argument(
        "spec: recover_at must be > fail_at (or < 0 for permanent) in " + at);
  if (f.link_mtbf < 0 || f.link_mttr < 0 || f.router_mtbf < 0 ||
      f.router_mttr < 0)
    throw std::invalid_argument("spec: MTBF/MTTR must be >= 0 in " + at);
  if (f.mode == "explicit" && f.events.empty())
    throw std::invalid_argument("spec: explicit mode needs events in " + at);
  return f;
}

}  // namespace

ExperimentSpec spec_from_json(const JsonValue& root) {
  ExperimentSpec spec;
  ObjReader r(root, "spec");
  const long long schema = r.get_int("schema_version", kSpecSchemaVersion);
  if (schema < kSpecMinSchemaVersion || schema > kSpecSchemaVersion)
    throw std::invalid_argument(
        "spec: schema_version " + std::to_string(schema) +
        " unsupported (this build speaks " +
        std::to_string(kSpecMinSchemaVersion) + ".." +
        std::to_string(kSpecSchemaVersion) + ")");
  spec.name = r.get_string("name", spec.name);
  if (const JsonValue* topos = r.take("topologies")) {
    int i = 0;
    for (const auto& t : topos->items())
      spec.topologies.push_back(parse_topology(t, i++));
  }
  if (spec.topologies.empty())
    throw std::invalid_argument("spec: needs at least one topology");
  spec.routing = r.get_string("routing", spec.routing);
  if (spec.routing != "auto" && spec.routing != "mclb" &&
      spec.routing != "ndbt")
    throw std::invalid_argument("spec: routing must be auto|mclb|ndbt");
  spec.num_vcs = static_cast<int>(r.get_int("num_vcs", spec.num_vcs));
  spec.max_paths_per_flow = static_cast<int>(
      r.get_int("max_paths_per_flow", spec.max_paths_per_flow));
  spec.chiplet_system = r.get_bool("chiplet_system", spec.chiplet_system);
  if (const JsonValue* seeds = r.take("seeds")) {
    spec.seeds.clear();
    for (const auto& s : seeds->items()) spec.seeds.push_back(s.as_u64());
    if (spec.seeds.empty())
      throw std::invalid_argument("spec: seeds must not be empty");
  }
  spec.analytic = r.get_bool("analytic", spec.analytic);
  if (const JsonValue* traffic = r.take("traffic")) {
    int i = 0;
    for (const auto& t : traffic->items())
      spec.traffic.push_back(parse_traffic(t, i++));
  }
  if (const JsonValue* sweep = r.take("sweep")) spec.sweep = parse_sweep(*sweep);
  if (const JsonValue* power = r.take("power")) spec.power = parse_power(*power);
  if (const JsonValue* faults = r.take("faults")) {
    int i = 0;
    for (const auto& f : faults->items())
      spec.faults.push_back(parse_fault_scenario(f, i++));
  }
  spec.threads = static_cast<int>(r.get_int("threads", spec.threads));
  r.finish();
  if (spec.num_vcs < 1 || spec.max_paths_per_flow < 1)
    throw std::invalid_argument(
        "spec: num_vcs and max_paths_per_flow must be positive");
  if (spec.threads < 0)
    throw std::invalid_argument("spec: threads must be >= 0");
  return spec;
}

ExperimentSpec parse_spec(const std::string& json_text) {
  try {
    return spec_from_json(JsonValue::parse(json_text));
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("spec: ") + e.what());
  }
}

}  // namespace netsmith::api
