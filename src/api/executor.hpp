#pragma once
// External job executor: lets a host process run many Studies on one shared
// thread pool instead of each Study spawning its own workers.
//
// The Study runner only needs fire-and-forget submission — DAG ordering is
// the runner's own bookkeeping (a job is submitted only once its
// dependencies finished), and completion is observed through the submitted
// closures themselves. Tasks never block on other tasks, so any pool of
// width >= 1 makes progress and several concurrent Studies can interleave
// their jobs on the same workers without deadlock.
//
// serve::SharedPool is the production implementation, shared across all
// concurrent daemon requests.

#include <functional>

namespace netsmith::api {

class JobExecutor {
 public:
  virtual ~JobExecutor() = default;

  // Enqueues `task` to run on some worker thread, at some later point.
  // Must not run the task inline (the caller may hold locks) and must not
  // drop it: every submitted task is eventually executed.
  virtual void submit(std::function<void()> task) = 0;
};

}  // namespace netsmith::api
