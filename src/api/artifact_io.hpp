#pragma once
// Artifact serialization round-trips for the persistent cache
// (api/artifact_cache.hpp). One payload format per cached artifact kind:
//
//  - topology: the job-produced half of a TopologyArtifact — the synthesized
//    graph plus the synthesis provenance the report embeds (objective value,
//    bound, move count, progress trace) and the analytic metrics block.
//  - plan: a complete core::NetworkPlan (graph, per-flow routing table, VC
//    map, provenance scalars) plus the chiplet system when the plan wraps
//    one.
//  - sweep: the report-facing projection of a sim::SweepResult — zero-load /
//    saturation summaries and, per injection point, exactly the fields a
//    SweepPointRow carries. Raw SimStats conservation counters are NOT kept;
//    a cached sweep reproduces the report bytes, not the full simulator
//    state.
//
// Payloads are self-describing JSON ({"artifact": kind, "schema": N, ...})
// and restore_* validates shape, sizes and schema: ANY anomaly — parse
// error, wrong kind, unknown schema, mismatched array lengths, adjacency
// that contradicts the already-resolved topology — returns false so the
// caller treats the entry as a cache miss and recomputes. restore_* never
// throws.
//
// Round-trip contract (asserted in tests/test_serve.cpp): restoring a
// payload into a fresh artifact slot reproduces every report-visible field
// bit-exactly, including shortest-round-trip doubles, so cached and
// recomputed studies serialize byte-identical reports.

#include <string>

#include "api/study.hpp"
#include "sim/sweep.hpp"

namespace netsmith::api {

// Bumped when a payload layout changes; restore_* treats any other value as
// a miss, so stores populated by older builds are silently re-filled.
inline constexpr int kArtifactSchemaVersion = 1;

// `analytic` records whether the metrics block is populated; the Study keys
// cached topologies on it (";analytic=0|1" key suffix), so the payload flag
// is self-description, not dispatch.
std::string topology_artifact_payload(const TopologyArtifact& t,
                                      bool analytic);
// Restores into an expanded-but-unrun artifact (key/source/config already
// resolved). For synthesized sources the graph is taken from the payload;
// for pre-built sources the payload adjacency must match the resolved graph
// (a mismatch reads as a miss).
bool restore_topology_artifact(const std::string& payload, bool analytic,
                               TopologyArtifact& t);

std::string plan_artifact_payload(const PlanArtifact& p);
bool restore_plan_artifact(const std::string& payload, PlanArtifact& p);

std::string sweep_artifact_payload(const sim::SweepResult& r);
bool restore_sweep_artifact(const std::string& payload, sim::SweepResult& r);

}  // namespace netsmith::api
