#include "api/study.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "api/artifact_io.hpp"
#include "core/objective.hpp"
#include "fault/model.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/channel_load.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace netsmith::api {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// ----------------------------------------------------- job DAG executor ---

struct Job {
  std::function<void()> fn;
  std::string label;  // "kind:artifact key", for failure provenance
  std::vector<int> dependents;
  int pending = 0;  // unmet dependency count
  bool skip = false;
  std::string skip_reason;
  std::exception_ptr error;
};

using DoneCallback = std::function<void(const std::string&, int, int)>;

// Runs `jobs[id]`, then — under `m` — retires it: propagates skips, returns
// the newly unblocked dependents, and fires the completion callback. Shared
// by both DAG drivers below.
std::vector<int> retire_job(std::vector<Job>& jobs, int id, std::mutex& m,
                            std::size_t& remaining, int& done,
                            const DoneCallback& on_done) {
  if (!jobs[id].skip) {
    try {
      jobs[id].fn();
    } catch (...) {
      jobs[id].error = std::current_exception();
    }
  }
  std::lock_guard<std::mutex> lk(m);
  --remaining;
  ++done;
  const bool failed = jobs[id].skip || jobs[id].error != nullptr;
  std::vector<int> newly;
  for (int d : jobs[id].dependents) {
    if (failed && !jobs[d].skip) {
      jobs[d].skip = true;
      jobs[d].skip_reason = "dependency '" + jobs[id].label + "' " +
                            (jobs[id].error ? "failed" : "was skipped");
    }
    if (--jobs[d].pending == 0) newly.push_back(d);
  }
  if (on_done) on_done(jobs[id].label, done, static_cast<int>(jobs.size()));
  return newly;
}

// Runs the DAG on `width` workers. Jobs become ready as dependencies finish;
// a failed dependency skips its downstream jobs (recording which dependency
// failed). Never throws: errors stay on the jobs for the caller to collect —
// a failed job degrades the report, it does not abort the study.
void run_dag(std::vector<Job>& jobs, int width, const DoneCallback& on_done) {
  std::mutex m;
  std::condition_variable cv;
  std::deque<int> ready;
  for (int i = 0; i < static_cast<int>(jobs.size()); ++i)
    if (jobs[i].pending == 0) ready.push_back(i);
  std::size_t remaining = jobs.size();
  int done = 0;

  auto worker = [&] {
    std::unique_lock<std::mutex> lk(m);
    while (true) {
      cv.wait(lk, [&] { return !ready.empty() || remaining == 0; });
      if (ready.empty()) return;  // remaining == 0: drained
      const int id = ready.front();
      ready.pop_front();
      lk.unlock();
      const std::vector<int> newly =
          retire_job(jobs, id, m, remaining, done, on_done);
      lk.lock();
      for (int d : newly) ready.push_back(d);
      cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
}

// Executor-backed variant: jobs are submitted to an external pool (shared
// across concurrent studies) instead of dedicated workers. The calling
// thread blocks until the whole DAG has drained. Completion state is
// shared_ptr-held so in-flight task closures never dangle, whatever the
// pool's retirement order.
struct ExternalDag : std::enable_shared_from_this<ExternalDag> {
  std::vector<Job>* jobs = nullptr;
  api::JobExecutor* exec = nullptr;
  DoneCallback on_done;
  std::mutex m;
  std::condition_variable cv;
  std::size_t remaining = 0;
  int done = 0;

  void submit(int id) {
    exec->submit([self = shared_from_this(), id] {
      std::size_t left;
      std::vector<int> newly;
      {
        // retire_job locks internally; compute `left` under the same lock
        // ordering by re-locking after (remaining only decreases).
        newly = retire_job(*self->jobs, id, self->m, self->remaining,
                           self->done, self->on_done);
        std::lock_guard<std::mutex> lk(self->m);
        left = self->remaining;
      }
      for (int d : newly) self->submit(d);
      if (left == 0) self->cv.notify_all();
    });
  }
};

void run_dag_on(std::vector<Job>& jobs, api::JobExecutor& exec,
                const DoneCallback& on_done) {
  if (jobs.empty()) return;
  auto dag = std::make_shared<ExternalDag>();
  dag->jobs = &jobs;
  dag->exec = &exec;
  dag->on_done = on_done;
  dag->remaining = jobs.size();
  // Snapshot the ready set BEFORE the first submit: once a task is in
  // flight it may retire and drive a dependent's pending count to zero
  // (submitting it via `newly`), and this loop reading that same count
  // would submit the job a second time.
  std::vector<int> initial;
  for (int i = 0; i < static_cast<int>(jobs.size()); ++i)
    if (jobs[i].pending == 0) initial.push_back(i);
  for (int i : initial) dag->submit(i);
  std::unique_lock<std::mutex> lk(dag->m);
  dag->cv.wait(lk, [&] { return dag->remaining == 0; });
}

std::string error_message(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

// ------------------------------------------------------------- expansion --

Study::Study(ExperimentSpec spec, StudyOptions opts)
    : spec_(std::move(spec)), opts_(opts) {
  if (spec_.topologies.empty())
    throw std::invalid_argument("study: spec has no topologies");
  if (spec_.seeds.empty())
    throw std::invalid_argument("study: spec has no seeds");
  expand();
}

core::RoutingPolicy Study::policy_for(const TopologyArtifact& t) const {
  if (spec_.routing == "mclb") return core::RoutingPolicy::kMclb;
  if (spec_.routing == "ndbt") return core::RoutingPolicy::kNdbt;
  // "auto": the pairing the paper uses — MCLB for machine-made, parametric
  // and user-supplied topologies, NDBT for the published expert designs.
  if (t.source == TopologySource::kSynthesize ||
      t.source == TopologySource::kExplicit)
    return core::RoutingPolicy::kMclb;
  return t.topo.is_netsmith || t.topo.parametric ? core::RoutingPolicy::kMclb
                                                 : core::RoutingPolicy::kNdbt;
}

void Study::expand() {
  std::map<std::string, int> topo_index;
  // display_name: per-ref label ("" = the artifact's own name). Kept off
  // the cache key so renamed duplicates still share one artifact.
  auto add_ref = [&](TopologyArtifact art, const std::string& display_name) {
    ref_names_.push_back(display_name.empty() ? art.topo.name : display_name);
    const auto [it, inserted] =
        topo_index.emplace(art.key, static_cast<int>(utopos_.size()));
    if (inserted) utopos_.push_back(std::move(art));
    topo_refs_.push_back(it->second);
  };
  auto built = [](TopologySource src, topologies::NamedTopology nt,
                  std::string key) {
    TopologyArtifact art;
    art.source = src;
    art.key = std::move(key);
    art.topo = std::move(nt);
    return art;
  };

  for (const auto& ts : spec_.topologies) {
    switch (ts.source) {
      case TopologySource::kBaseline: {
        auto nt = topologies::make_spec(ts.baseline);
        const std::string key = "baseline:" + nt.spec;
        add_ref(built(ts.source, std::move(nt), key), ts.name);
        break;
      }
      case TopologySource::kCatalog: {
        auto cat = ts.catalog_routers == 48
                       ? topologies::catalog_48()
                       : topologies::catalog(ts.catalog_routers);
        const std::string prefix =
            "catalog:" + std::to_string(ts.catalog_routers) + ":";
        if (!ts.name.empty()) {
          if (ts.include_baselines)
            throw std::invalid_argument(
                "study: catalog row selector '" + ts.name +
                "' cannot combine with include_baselines");
          auto row = topologies::find(cat, ts.name);
          add_ref(built(ts.source, std::move(row), prefix + ts.name), "");
        } else {
          for (auto& row : cat) {
            const std::string key = prefix + row.name;
            add_ref(built(ts.source, std::move(row), key), "");
          }
          if (ts.include_baselines) {
            // Parametric rows are baseline artifacts (matching their cache
            // key), however they were reached.
            for (auto& row :
                 topologies::baseline_catalog(ts.catalog_routers)) {
              const std::string key = "baseline:" + row.spec;
              add_ref(built(TopologySource::kBaseline, std::move(row), key),
                      "");
            }
          }
        }
        break;
      }
      case TopologySource::kExplicit: {
        topologies::NamedTopology nt;
        nt.graph = topo::DiGraph::from_string(ts.adjacency);
        if (nt.graph.num_nodes() != ts.rows * ts.cols)
          throw std::invalid_argument(
              "study: explicit adjacency has " +
              std::to_string(nt.graph.num_nodes()) + " nodes but layout is " +
              std::to_string(ts.rows) + "x" + std::to_string(ts.cols));
        nt.layout = topo::Layout{ts.rows, ts.cols, 2.0};
        nt.link_class = link_class_from_string(ts.link_class);
        nt.name = "explicit-" + std::to_string(nt.graph.num_nodes());
        const std::string key = "explicit:" + std::to_string(ts.rows) + "x" +
                                std::to_string(ts.cols) + ":" + ts.link_class +
                                ":" + ts.adjacency;
        add_ref(built(ts.source, std::move(nt), key), ts.name);
        break;
      }
      case TopologySource::kSynthesize: {
        for (const auto& obj : ts.objectives) {
          TopologyArtifact art;
          art.source = ts.source;
          art.max_moves = ts.max_moves;
          art.landmark_sources = ts.landmark_sources;
          auto& cfg = art.synth_cfg;
          const int rows = ts.rows > 0 ? ts.rows : 4;
          const int cols = ts.cols > 0 ? ts.cols : 5;
          cfg.layout = topo::Layout{rows, cols, 2.0};
          cfg.link_class = link_class_from_string(ts.link_class);
          cfg.radix = ts.radix;
          cfg.symmetric_links = ts.symmetric_links;
          cfg.objective = objective_from_string(obj);
          cfg.diameter_bound = ts.diameter_bound;
          cfg.min_cut_bandwidth = ts.min_cut_bandwidth;
          cfg.load_weight = ts.load_weight;
          cfg.time_limit_s = ts.time_limit_s;
          cfg.seed = ts.synth_seed;
          cfg.restarts = ts.restarts;
          art.key = "synth:obj=" + obj + ";grid=" + std::to_string(rows) +
                    "x" + std::to_string(cols) + ";class=" + ts.link_class +
                    ";radix=" + std::to_string(ts.radix) +
                    ";sym=" + (ts.symmetric_links ? "1" : "0") +
                    ";diam=" + std::to_string(ts.diameter_bound) +
                    ";mincut=" + fmt_double(ts.min_cut_bandwidth) +
                    ";lw=" + fmt_double(ts.load_weight) +
                    ";t=" + fmt_double(ts.time_limit_s) +
                    ";seed=" + std::to_string(ts.synth_seed) +
                    ";restarts=" + std::to_string(ts.restarts) +
                    ";moves=" + std::to_string(ts.max_moves) +
                    ";lm=" + std::to_string(ts.landmark_sources);
          auto& nt = art.topo;
          nt.layout = cfg.layout;
          nt.link_class = cfg.link_class;
          nt.machine_generated = true;
          nt.is_netsmith = true;
          nt.name = "NS-" + obj + "-" + topo::to_string(cfg.link_class) +
                    "-" + std::to_string(cfg.layout.n());
          std::string display = ts.name;
          if (!display.empty() && ts.objectives.size() > 1)
            display += "-" + obj;
          add_ref(std::move(art), display);
        }
        break;
      }
    }
  }

  stats_.topology_refs = static_cast<int>(topo_refs_.size());
  stats_.unique_topologies = static_cast<int>(utopos_.size());
  stats_.topology_cache_hits = stats_.topology_refs - stats_.unique_topologies;

  // Plan grid: refs x seeds, deduped on (topology key, build parameters).
  std::map<std::string, int> plan_index;
  for (int ref = 0; ref < stats_.topology_refs; ++ref) {
    const int u = topo_refs_[ref];
    const auto policy = policy_for(utopos_[u]);
    for (std::uint64_t seed : spec_.seeds) {
      const std::string key =
          utopos_[u].key + "|policy=" + core::to_string(policy) +
          ";vcs=" + std::to_string(spec_.num_vcs) +
          ";paths=" + std::to_string(spec_.max_paths_per_flow) +
          ";seed=" + std::to_string(seed) +
          (spec_.chiplet_system ? ";chiplet" : "");
      const auto [it, inserted] =
          plan_index.emplace(key, static_cast<int>(uplans_.size()));
      if (inserted) {
        PlanArtifact p;
        p.key = key;
        p.topology = u;
        p.seed = seed;
        uplans_.push_back(std::move(p));
      }
      plan_refs_.push_back(it->second);
    }
  }
  stats_.plan_refs = static_cast<int>(plan_refs_.size());
  stats_.unique_plans = static_cast<int>(uplans_.size());
  stats_.plan_cache_hits = stats_.plan_refs - stats_.unique_plans;

  // Sweeps: unique plans x traffic scenarios.
  const int T = static_cast<int>(spec_.traffic.size());
  sweep_of_plan_traffic_.assign(
      static_cast<std::size_t>(stats_.unique_plans) * T, -1);
  for (int p = 0; p < stats_.unique_plans; ++p) {
    for (int t = 0; t < T; ++t) {
      USweep s;
      s.plan = p;
      s.traffic = t;
      sweep_of_plan_traffic_[static_cast<std::size_t>(p) * T + t] =
          static_cast<int>(usweeps_.size());
      usweeps_.push_back(std::move(s));
    }
  }
  stats_.sweep_jobs = static_cast<int>(usweeps_.size());
  stats_.power_jobs = spec_.power.enabled ? stats_.unique_topologies : 0;

  // Resilience: unique plans x traffic x fault scenarios, dense grid.
  const int C = static_cast<int>(spec_.faults.size());
  for (int p = 0; p < stats_.unique_plans; ++p) {
    for (int t = 0; t < T; ++t) {
      for (int c = 0; c < C; ++c) {
        UResilience r;
        r.plan = p;
        r.traffic = t;
        r.scenario = c;
        uresil_.push_back(std::move(r));
      }
    }
  }
  stats_.resilience_jobs = static_cast<int>(uresil_.size());

  stats_.jobs_total = stats_.unique_topologies + stats_.unique_plans +
                      stats_.sweep_jobs + stats_.power_jobs +
                      stats_.resilience_jobs;
  upower_.assign(static_cast<std::size_t>(utopos_.size()), power::PowerArea{});
}

// ------------------------------------------------------------ job bodies --

void Study::run_topology_job(TopologyArtifact& t) {
  // The analytic toggle changes what the job computes but is not part of
  // the canonical topology key (reports embed the key), so it rides on the
  // cache key instead.
  const std::string cache_key =
      t.key + (spec_.analytic ? ";analytic=1" : ";analytic=0");
  if (opts_.cache) {
    std::string payload;
    if (opts_.cache->load(kTopologyArtifactKind, cache_key, payload) &&
        restore_topology_artifact(payload, spec_.analytic, t)) {
      // Report determinism: syntheses_run counts synthesize jobs resolved,
      // however the artifact was produced, so cached and recomputed studies
      // stamp identical provenance.
      if (t.source == TopologySource::kSynthesize) synth_count_.fetch_add(1);
      topo_hits_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    topo_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  if (t.source == TopologySource::kSynthesize) {
    core::AnnealOptions ao;
    // One annealer thread per job: the Study pool is the parallelism layer,
    // and serial restarts keep the result independent of pool width.
    ao.threads = 1;
    ao.max_moves = t.max_moves;
    ao.landmark_sources = t.landmark_sources;
    t.synth = core::anneal_synthesize(t.synth_cfg, ao);
    t.topo.graph = t.synth.graph;
    t.synthesized = true;
    synth_count_.fetch_add(1);
  }
  if (spec_.analytic) {
    const auto& g = t.topo.graph;
    t.avg_hops = topo::average_hops(g);
    t.diameter = topo::diameter(g);
    t.bisection_bw = topo::bisection_bandwidth(g);
    // The sparsest-cut heuristic packs partitions into a 64-bit mask; past
    // that the cut bound is simply not reported (reads as 0) rather than
    // capping the whole analytic block at n = 64.
    if (g.num_nodes() <= 64) t.cut_bound = routing::cut_bound(g);
    if (t.topo.extra_edge_delay.rows() > 0 && g.num_directed_edges() > 0) {
      long extra = 0;
      for (const auto& [i, j] : g.edges()) extra += t.topo.extra_edge_delay(i, j);
      t.avg_extra_edge_delay =
          static_cast<double>(extra) / g.num_directed_edges();
    }
  }
  if (opts_.cache) {
    opts_.cache->store(kTopologyArtifactKind, cache_key,
                       topology_artifact_payload(t, spec_.analytic));
    cache_stores_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Study::run_plan_job(PlanArtifact& p) {
  if (opts_.cache) {
    std::string payload;
    if (opts_.cache->load(kPlanArtifactKind, p.key, payload) &&
        restore_plan_artifact(payload, p)) {
      plan_hits_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    plan_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto& t = utopos_[static_cast<std::size_t>(p.topology)];
  const auto policy = policy_for(t);
  if (spec_.chiplet_system) {
    p.system = system::build_chiplet_system(t.topo.graph, t.topo.layout);
    p.has_system = true;
    p.plan = core::plan_network(p.system.graph, t.topo.layout, policy,
                                spec_.num_vcs, p.seed,
                                spec_.max_paths_per_flow);
  } else {
    p.plan = core::plan_network(t.topo.graph, t.topo.layout, policy,
                                spec_.num_vcs, p.seed,
                                spec_.max_paths_per_flow);
  }
  if (opts_.cache) {
    opts_.cache->store(kPlanArtifactKind, p.key, plan_artifact_payload(p));
    cache_stores_.fetch_add(1, std::memory_order_relaxed);
  }
}

sim::TrafficConfig Study::traffic_for(const PlanArtifact& p,
                                      const TopologyArtifact& t,
                                      const TrafficSpec& ts,
                                      double& max_override) const {
  sim::TrafficConfig traffic;
  if (ts.kind == "tornado") {
    const auto pattern = core::tornado_pattern(p.plan.graph.num_nodes());
    traffic = sim::traffic_from_pattern(pattern, /*injection_rate=*/0.01);
    if (max_override <= 0.0) {
      // The uniform-traffic auto bound does not apply; cap by the pattern's
      // routed channel-load bound instead (mirrors sweep_to_saturation).
      const double bound =
          routing::analyze_pattern(p.plan.table, pattern).throughput_bound();
      const double rate = bound > 0.0 ? std::min(1.0, 1.6 * bound) : 0.5;
      const double avg_flits =
          ts.ctrl_flits + ts.data_fraction * (ts.data_flits - ts.ctrl_flits);
      max_override = rate / std::max(1.0, avg_flits);
    }
  } else if (ts.kind == "memory") {
    traffic.kind = sim::TrafficKind::kMemory;
    traffic.mc_nodes =
        p.has_system ? p.system.mc_routers : sim::mc_nodes(t.topo.layout);
  } else if (ts.kind == "shuffle") {
    traffic.kind = sim::TrafficKind::kShuffle;
  } else {
    traffic.kind = sim::TrafficKind::kCoherence;
  }
  traffic.ctrl_flits = ts.ctrl_flits;
  traffic.data_flits = ts.data_flits;
  traffic.data_fraction = ts.data_fraction;
  return traffic;
}

std::string Study::sweep_cache_key(const USweep& s) const {
  const auto& p = uplans_[static_cast<std::size_t>(s.plan)];
  const auto& ts = spec_.traffic[static_cast<std::size_t>(s.traffic)];
  const auto& sw = spec_.sweep;
#if defined(_OPENMP)
  const int omp_width = omp_get_max_threads();
#else
  const int omp_width = 1;
#endif
  // ts.name is presentation-only (report row labels) and deliberately not
  // part of the key; omp width is, because adaptive truncation and the
  // omp_threads provenance field both depend on it.
  return p.key + "|traffic=" + ts.kind +
         ";ctrl=" + std::to_string(ts.ctrl_flits) +
         ";data=" + std::to_string(ts.data_flits) +
         ";frac=" + fmt_double(ts.data_fraction) +
         "|sweep=points=" + std::to_string(sw.points) +
         ";max=" + fmt_double(sw.max_rate) +
         ";adaptive=" + (sw.adaptive ? "1" : "0") +
         ";warmup=" + std::to_string(sw.warmup) +
         ";measure=" + std::to_string(sw.measure) +
         ";drain=" + std::to_string(sw.drain) +
         ";buf=" + std::to_string(sw.buf_flits) +
         ";io=" + std::to_string(sw.io_flits_per_cycle) +
         ";rd=" + std::to_string(sw.router_delay) +
         ";ld=" + std::to_string(sw.link_delay) +
         ";simseed=" + std::to_string(sw.sim_seed) +
         ";omp=" + std::to_string(omp_width);
}

void Study::run_sweep_job(USweep& s) {
  std::string cache_key;
  if (opts_.cache) {
    cache_key = sweep_cache_key(s);
    std::string payload;
    if (opts_.cache->load(kSweepArtifactKind, cache_key, payload) &&
        restore_sweep_artifact(payload, s.result)) {
      sweep_hits_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    sweep_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto& p = uplans_[static_cast<std::size_t>(s.plan)];
  const auto& t = utopos_[static_cast<std::size_t>(p.topology)];
  const auto& ts = spec_.traffic[static_cast<std::size_t>(s.traffic)];

  sim::SimConfig cfg = make_sim_config(spec_);
  cfg.extra_edge_delay =
      p.has_system ? p.system.extra_delay : t.topo.extra_edge_delay;
  const double clock = topo::clock_ghz(t.topo.link_class);

  double max_override = spec_.sweep.max_rate;
  const sim::TrafficConfig traffic = traffic_for(p, t, ts, max_override);

  sim::SweepOptions opt;
  opt.adaptive = spec_.sweep.adaptive;
  s.result = sim::sweep_to_saturation(p.plan, traffic, cfg, clock,
                                      spec_.sweep.points, max_override, opt);
  if (opts_.cache) {
    opts_.cache->store(kSweepArtifactKind, cache_key,
                       sweep_artifact_payload(s.result));
    cache_stores_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Study::run_resilience_job(UResilience& r) {
  const auto& p = uplans_[static_cast<std::size_t>(r.plan)];
  const auto& t = utopos_[static_cast<std::size_t>(p.topology)];
  const auto& ts = spec_.traffic[static_cast<std::size_t>(r.traffic)];
  const auto& sc = spec_.faults[static_cast<std::size_t>(r.scenario)];

  sim::SimConfig cfg = make_sim_config(spec_);
  cfg.extra_edge_delay =
      p.has_system ? p.system.extra_delay : t.topo.extra_edge_delay;
  const double clock = topo::clock_ghz(t.topo.link_class);

  // Expand the scenario against this plan. Throws on invalid explicit events
  // or repairs exceeding the VC budget; run_dag records the job as failed.
  const long horizon = cfg.warmup + cfg.measure + cfg.drain;
  r.fplan = fault::prepare_fault_plan(p.plan, sc, horizon);
  cfg.faults = &r.fplan;

  double max_override = spec_.sweep.max_rate;
  const sim::TrafficConfig traffic = traffic_for(p, t, ts, max_override);

  sim::SweepOptions opt;
  // Adaptive truncation depends on the OpenMP wave size; resilience rows
  // promise byte-identical results across widths, so it is always off here.
  opt.adaptive = false;
  r.result = sim::sweep_to_saturation(p.plan, traffic, cfg, clock,
                                      spec_.sweep.points, max_override, opt);
}

// -------------------------------------------------------------- execution --

void Study::run_jobs() {
  std::vector<Job> jobs(static_cast<std::size_t>(stats_.jobs_total));
  const int UT = stats_.unique_topologies;
  const int UP = stats_.unique_plans;
  const int US = stats_.sweep_jobs;
  // Every job body runs under a lifecycle span (one track per pool worker in
  // the trace) and adds its wall time to the shared busy clock, from which
  // the post-DAG flush derives pool utilization. The jobs vector outlives
  // run_dag's join, so capturing busy_us by reference is safe.
  std::atomic<long long> busy_us{0};
  const auto timed = [&busy_us](const char* name, int index, auto&& body) {
    const double t0 = obs::now_us();
    {
      obs::Span span(name);
      span.arg("index", index);
      body();
    }
    busy_us.fetch_add(static_cast<long long>(obs::now_us() - t0),
                      std::memory_order_relaxed);
  };
  // Job ids: [0, UT) topologies, [UT, UT+UP) plans, then sweeps, then power,
  // then resilience.
  for (int i = 0; i < UT; ++i) {
    auto& j = jobs[static_cast<std::size_t>(i)];
    j.label = "topology:" + utopos_[static_cast<std::size_t>(i)].key;
    j.fn = [this, i, &timed] {
      timed("study/topology", i, [&] {
        run_topology_job(utopos_[static_cast<std::size_t>(i)]);
      });
    };
  }
  for (int i = 0; i < UP; ++i) {
    auto& j = jobs[static_cast<std::size_t>(UT + i)];
    j.label = "plan:" + uplans_[static_cast<std::size_t>(i)].key;
    j.fn = [this, i, &timed] {
      timed("study/plan", i,
            [&] { run_plan_job(uplans_[static_cast<std::size_t>(i)]); });
    };
    j.pending = 1;
    jobs[static_cast<std::size_t>(uplans_[static_cast<std::size_t>(i)].topology)]
        .dependents.push_back(UT + i);
  }
  for (int i = 0; i < US; ++i) {
    auto& j = jobs[static_cast<std::size_t>(UT + UP + i)];
    const auto& s = usweeps_[static_cast<std::size_t>(i)];
    j.label = "sweep:" + uplans_[static_cast<std::size_t>(s.plan)].key + "+" +
              spec_.traffic[static_cast<std::size_t>(s.traffic)].label();
    j.fn = [this, i, &timed] {
      timed("study/sweep", i,
            [&] { run_sweep_job(usweeps_[static_cast<std::size_t>(i)]); });
    };
    j.pending = 1;
    jobs[static_cast<std::size_t>(
             UT + usweeps_[static_cast<std::size_t>(i)].plan)]
        .dependents.push_back(UT + UP + i);
  }
  if (spec_.power.enabled) {
    for (int i = 0; i < UT; ++i) {
      auto& j = jobs[static_cast<std::size_t>(UT + UP + US + i)];
      j.label = "power:" + utopos_[static_cast<std::size_t>(i)].key;
      j.fn = [this, i, &timed] {
        timed("study/power", i, [&] {
          const auto& t = utopos_[static_cast<std::size_t>(i)];
          upower_[static_cast<std::size_t>(i)] = power::estimate(
              t.topo.graph, t.topo.layout, topo::clock_ghz(t.topo.link_class),
              spec_.power.flits_per_node_cycle, spec_.num_vcs);
        });
      };
      j.pending = 1;
      jobs[static_cast<std::size_t>(i)].dependents.push_back(UT + UP + US + i);
    }
  }
  const int base_resil = UT + UP + US + stats_.power_jobs;
  for (int i = 0; i < stats_.resilience_jobs; ++i) {
    auto& j = jobs[static_cast<std::size_t>(base_resil + i)];
    const auto& r = uresil_[static_cast<std::size_t>(i)];
    j.label =
        "resilience:" + uplans_[static_cast<std::size_t>(r.plan)].key + "+" +
        spec_.traffic[static_cast<std::size_t>(r.traffic)].label() + "+" +
        spec_.faults[static_cast<std::size_t>(r.scenario)].label();
    j.fn = [this, i, &timed] {
      timed("study/resilience", i, [&] {
        run_resilience_job(uresil_[static_cast<std::size_t>(i)]);
      });
    };
    j.pending = 1;
    jobs[static_cast<std::size_t>(UT + r.plan)].dependents.push_back(
        base_resil + i);
  }

  int width = opts_.threads >= 0 ? opts_.threads : spec_.threads;
  if (width <= 0) {
    width = static_cast<int>(std::thread::hardware_concurrency());
    if (width <= 0) width = 1;
  }
  width = std::min<int>(width, std::max(1, stats_.jobs_total));

  obs::WallTimer wall;
  if (opts_.executor != nullptr)
    run_dag_on(jobs, *opts_.executor, opts_.on_job_done);
  else
    run_dag(jobs, width, opts_.on_job_done);
  stats_.syntheses_run = synth_count_.load();

  // Failure provenance, in job-id order (deterministic across widths: which
  // jobs fail does not depend on scheduling, only on their inputs).
  for (const auto& j : jobs) {
    if (j.error)
      failed_jobs_.push_back({j.label, error_message(j.error), false});
    else if (j.skip)
      failed_jobs_.push_back({j.label, j.skip_reason, true});
  }
  stats_.failed_jobs = static_cast<int>(failed_jobs_.size());

  if (obs::metrics_enabled()) {
    obs::counter("study.jobs_run")
        .add(static_cast<std::uint64_t>(stats_.jobs_total));
    obs::counter("study.topology_cache_hits")
        .add(static_cast<std::uint64_t>(stats_.topology_cache_hits));
    obs::counter("study.plan_cache_hits")
        .add(static_cast<std::uint64_t>(stats_.plan_cache_hits));
    obs::counter("study.syntheses_run")
        .add(static_cast<std::uint64_t>(stats_.syntheses_run));
    const double wall_s = wall.seconds();
    const double busy_s =
        static_cast<double>(busy_us.load(std::memory_order_relaxed)) * 1e-6;
    obs::gauge("study.pool_width").set(width);
    obs::gauge("study.pool_busy_s").set(busy_s);
    obs::gauge("study.pool_wall_s").set(wall_s);
    if (wall_s > 0.0)
      obs::gauge("study.pool_utilization").set(busy_s / (wall_s * width));
  }
}

// --------------------------------------------------------------- assembly --

Report Study::assemble() const {
  Report rep;
  rep.spec = spec_;
  rep.stats = stats_;
#if defined(_OPENMP)
  rep.omp_max_threads = omp_get_max_threads();
#else
  rep.omp_max_threads = 1;
#endif

  const int S = static_cast<int>(spec_.seeds.size());
  const int T = static_cast<int>(spec_.traffic.size());

  for (int ref = 0; ref < stats_.topology_refs; ++ref) {
    const auto& t = utopos_[static_cast<std::size_t>(topo_refs_[ref])];
    TopologyRow row;
    row.name = ref_names_[static_cast<std::size_t>(ref)];
    row.key = t.key;
    row.factory_spec = t.topo.spec;
    row.source = to_string(t.source);
    row.link_class = topo::to_string(t.topo.link_class);
    row.clock_ghz = topo::clock_ghz(t.topo.link_class);
    row.routers = t.topo.graph.num_nodes();
    row.duplex_links = t.topo.graph.duplex_links();
    row.adjacency = t.topo.graph.to_string();
    row.is_netsmith = t.topo.is_netsmith;
    row.parametric = t.topo.parametric;
    row.avg_hops = t.avg_hops;
    row.diameter = t.diameter;
    row.bisection_bw = t.bisection_bw;
    row.cut_bound = t.cut_bound;
    row.avg_extra_edge_delay = t.avg_extra_edge_delay;
    row.synthesized = t.synthesized;
    if (t.synthesized) {
      row.objective = objective_to_string(t.synth_cfg.objective);
      row.objective_value = t.synth.objective_value;
      row.bound = t.synth.bound;
      row.moves = t.synth.moves;
      row.trace = t.synth.trace;
    }
    rep.topologies.push_back(std::move(row));
  }

  for (int ref = 0; ref < stats_.topology_refs; ++ref) {
    for (int s = 0; s < S; ++s) {
      const auto& p =
          uplans_[static_cast<std::size_t>(plan_refs_[ref * S + s])];
      PlanRow row;
      row.topology = ref;
      row.key = p.key;
      row.policy = core::to_string(p.plan.policy);
      row.num_vcs = p.plan.num_vcs;
      row.seed = p.plan.seed;
      row.max_paths_per_flow = p.plan.max_paths_per_flow;
      row.max_channel_load = p.plan.max_channel_load;
      row.routed_bound = p.plan.max_channel_load > 0.0
                             ? 1.0 / p.plan.max_channel_load
                             : 0.0;
      row.vc_layers = p.plan.vc_layers;
      row.ndbt_fallback_flows = p.plan.ndbt_fallback_flows;
      row.chiplet_system = p.has_system;
      row.system_routers = p.has_system ? p.system.graph.num_nodes() : 0;
      rep.plans.push_back(std::move(row));
    }
  }

  for (int ref = 0; ref < stats_.topology_refs; ++ref) {
    for (int s = 0; s < S; ++s) {
      const int uplan = plan_refs_[ref * S + s];
      for (int k = 0; k < T; ++k) {
        const auto& sw = usweeps_[static_cast<std::size_t>(
            sweep_of_plan_traffic_[static_cast<std::size_t>(uplan) * T + k])];
        SweepRow row;
        row.plan = ref * S + s;
        row.traffic = spec_.traffic[static_cast<std::size_t>(k)].label();
        row.zero_load_latency_cycles = sw.result.zero_load_latency_cycles;
        row.zero_load_latency_ns = sw.result.zero_load_latency_ns;
        row.saturation_pkt_node_cycle = sw.result.saturation_pkt_node_cycle;
        row.saturation_pkt_node_ns = sw.result.saturation_pkt_node_ns;
        row.omp_threads = sw.result.omp_threads;
        for (const auto& pt : sw.result.points) {
          SweepPointRow pr;
          pr.offered_pkt_node_cycle = pt.offered_pkt_node_cycle;
          pr.accepted_pkt_node_cycle = pt.stats.accepted;
          pr.accepted_pkt_node_ns = pt.accepted_pkt_node_ns;
          pr.latency_cycles = pt.stats.avg_latency_cycles;
          pr.latency_ns = pt.latency_ns;
          pr.saturated = pt.stats.saturated;
          row.points.push_back(pr);
        }
        rep.sweeps.push_back(std::move(row));
      }
    }
  }

  const int C = static_cast<int>(spec_.faults.size());
  for (int ref = 0; ref < stats_.topology_refs; ++ref) {
    for (int s = 0; s < S; ++s) {
      const int uplan = plan_refs_[ref * S + s];
      for (int k = 0; k < T; ++k) {
        const auto& base = usweeps_[static_cast<std::size_t>(
            sweep_of_plan_traffic_[static_cast<std::size_t>(uplan) * T + k])];
        for (int c = 0; c < C; ++c) {
          const auto& ur = uresil_[(static_cast<std::size_t>(uplan) * T + k) *
                                       C + c];
          const auto& sc = spec_.faults[static_cast<std::size_t>(c)];
          ResilienceRow row;
          row.plan = ref * S + s;
          row.traffic = spec_.traffic[static_cast<std::size_t>(k)].label();
          row.scenario = sc.label();
          row.key = sc.canonical_key();
          row.events = static_cast<int>(ur.fplan.events.size());
          row.links_down = ur.fplan.max_links_down;
          row.routers_down = ur.fplan.max_routers_down;
          row.lossy = sc.lossy;
          row.repair = sc.repair;
          row.flows_rerouted = ur.fplan.flows_rerouted;
          row.flows_unroutable = ur.fplan.flows_unroutable;
          row.saturation_pkt_node_cycle = ur.result.saturation_pkt_node_cycle;
          row.saturation_pkt_node_ns = ur.result.saturation_pkt_node_ns;
          row.baseline_saturation_pkt_node_cycle =
              base.result.saturation_pkt_node_cycle;
          row.baseline_saturation_pkt_node_ns =
              base.result.saturation_pkt_node_ns;
          for (const auto& pt : ur.result.points) {
            ResiliencePointRow pr;
            pr.offered_pkt_node_cycle = pt.offered_pkt_node_cycle;
            pr.accepted_pkt_node_cycle = pt.stats.accepted;
            pr.delivered_fraction = pt.stats.delivered_fraction;
            pr.latency_p50_cycles = pt.stats.latency_p50_cycles;
            pr.latency_p99_cycles = pt.stats.latency_p99_cycles;
            pr.flits_dropped = pt.stats.flits_dropped;
            pr.packets_dropped = pt.stats.packets_dropped;
            pr.packets_unroutable = pt.stats.packets_unroutable;
            pr.saturated = pt.stats.saturated;
            row.points.push_back(pr);
          }
          rep.resilience.push_back(std::move(row));
        }
      }
    }
  }
  rep.failed_jobs = failed_jobs_;

  if (spec_.power.enabled) {
    for (int ref = 0; ref < stats_.topology_refs; ++ref) {
      const auto& pa = upower_[static_cast<std::size_t>(topo_refs_[ref])];
      PowerRow row;
      row.topology = ref;
      row.dynamic_mw = pa.dynamic_mw;
      row.leakage_mw = pa.leakage_mw;
      row.router_area_mm2 = pa.router_area_mm2;
      row.wire_area_mm2 = pa.wire_area_mm2;
      rep.power.push_back(row);
    }
  }

  if (obs::metrics_enabled())
    rep.metrics = obs::metrics_to_json(obs::snapshot_metrics());
  return rep;
}

Report Study::run() {
  if (ran_) throw std::logic_error("study: run() already called");
  ran_ = true;
  obs::Span span("study/run");
  span.arg("name", spec_.name);
  span.arg("jobs", stats_.jobs_total);
  run_jobs();
  return assemble();
}

ArtifactCacheStats Study::artifact_cache_stats() const {
  ArtifactCacheStats s;
  s.topology_hits = topo_hits_.load(std::memory_order_relaxed);
  s.topology_misses = topo_misses_.load(std::memory_order_relaxed);
  s.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  s.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  s.sweep_hits = sweep_hits_.load(std::memory_order_relaxed);
  s.sweep_misses = sweep_misses_.load(std::memory_order_relaxed);
  s.stores = cache_stores_.load(std::memory_order_relaxed);
  return s;
}

const PlanArtifact& Study::plan_for(int topology_ref, int seed_index) const {
  const int S = static_cast<int>(spec_.seeds.size());
  return uplans_[static_cast<std::size_t>(
      plan_refs_[static_cast<std::size_t>(topology_ref) * S + seed_index])];
}

Report run_experiment(const ExperimentSpec& spec, StudyOptions opts) {
  Study study(spec, opts);
  return study.run();
}

}  // namespace netsmith::api
