#pragma once
// Structured experiment results. A Report is the Study runner's output: one
// flat row set per grid axis (topologies, plans = topologies x seeds, sweeps
// = plans x traffic, power), plus provenance (the spec verbatim, seeds,
// thread counts, cache/job counters, schema version), serialized to JSON.
//
// Rows are in deterministic grid order (spec declaration order x seed order
// x traffic order) regardless of how the runner scheduled the jobs, so a
// report is byte-identical across Study thread counts.

#include <cstdint>
#include <string>
#include <vector>

#include "api/spec.hpp"
#include "core/config.hpp"
#include "util/json.hpp"

namespace netsmith::api {

// v2: adds the top-level "metrics" block (obs registry snapshot; empty
// object unless the study ran with metrics collection enabled).
// v3: adds the "resilience" row set and the "failed_jobs" provenance list.
// Both are emitted only when non-empty, and a report using neither is
// stamped v2 (see report_schema_version(const Report&)), so fault-free
// studies stay byte-identical with pre-fault builds.
inline constexpr int kReportSchemaVersion = 3;

// One expanded topology grid entry (spec order; duplicates share cache keys).
struct TopologyRow {
  std::string name;
  std::string key;           // artifact cache key (see DESIGN.md)
  std::string factory_spec;  // registry "family:k=v" form; empty otherwise
  std::string source;        // synthesize|baseline|explicit|catalog
  std::string link_class;
  double clock_ghz = 0.0;
  int routers = 0;
  double duplex_links = 0.0;
  std::string adjacency;  // topo::DiGraph::to_string form
  bool is_netsmith = false;
  bool parametric = false;
  // spec.analytic metrics.
  double avg_hops = 0.0;
  int diameter = 0;
  int bisection_bw = 0;
  double cut_bound = 0.0;            // packets/node/cycle (uniform)
  double avg_extra_edge_delay = 0.0; // wire-retiming cycles per edge
  // Synthesis provenance (source == synthesize only).
  bool synthesized = false;
  std::string objective;
  double objective_value = 0.0;
  double bound = 0.0;
  long moves = 0;
  std::vector<core::ProgressPoint> trace;
};

// One plan grid entry: topology row x plan seed.
struct PlanRow {
  int topology = 0;  // index into Report::topologies
  std::string key;
  // Provenance copied from core::NetworkPlan.
  std::string policy;  // mclb | ndbt
  int num_vcs = 0;
  std::uint64_t seed = 0;
  int max_paths_per_flow = 0;
  double max_channel_load = 0.0;
  double routed_bound = 0.0;  // 1 / max_channel_load, packets/node/cycle
  int vc_layers = 0;
  int ndbt_fallback_flows = 0;
  bool chiplet_system = false;
  int system_routers = 0;  // chiplet system only (NoI + NoC)
};

struct SweepPointRow {
  double offered_pkt_node_cycle = 0.0;
  double accepted_pkt_node_cycle = 0.0;
  double accepted_pkt_node_ns = 0.0;
  double latency_cycles = 0.0;
  double latency_ns = 0.0;
  bool saturated = false;
};

// One sweep grid entry: plan row x traffic scenario.
struct SweepRow {
  int plan = 0;  // index into Report::plans
  std::string traffic;  // TrafficSpec label
  double zero_load_latency_cycles = 0.0;
  double zero_load_latency_ns = 0.0;
  double saturation_pkt_node_cycle = 0.0;
  double saturation_pkt_node_ns = 0.0;
  int omp_threads = 1;  // provenance: adaptive truncation depends on it
  std::vector<SweepPointRow> points;
};

// One injection point of a resilience sweep (fault-afflicted simulation).
struct ResiliencePointRow {
  double offered_pkt_node_cycle = 0.0;
  double accepted_pkt_node_cycle = 0.0;
  double delivered_fraction = 1.0;   // packets ejected / packets injected
  double latency_p50_cycles = 0.0;   // tagged delivered packets
  double latency_p99_cycles = 0.0;
  long flits_dropped = 0;    // lossy scenarios: purged by link failures
  long packets_dropped = 0;
  long packets_unroutable = 0;  // offered to flows with no surviving route
  bool saturated = false;
};

// One resilience grid entry: plan row x traffic scenario x fault scenario.
// `saturation_*` under faults vs the fault-free `baseline_saturation_*` of
// the same (plan, traffic) sweep quantifies the degradation shift.
struct ResilienceRow {
  int plan = 0;          // index into Report::plans
  std::string traffic;   // TrafficSpec label
  std::string scenario;  // FaultScenarioSpec label
  std::string key;       // scenario canonical key (cache/provenance)
  // Expanded schedule summary (FaultPlan).
  int events = 0;
  int links_down = 0;    // peak concurrent directed-edge failures
  int routers_down = 0;
  bool lossy = false;
  bool repair = true;
  int flows_rerouted = 0;
  int flows_unroutable = 0;
  double saturation_pkt_node_cycle = 0.0;
  double saturation_pkt_node_ns = 0.0;
  double baseline_saturation_pkt_node_cycle = 0.0;
  double baseline_saturation_pkt_node_ns = 0.0;
  std::vector<ResiliencePointRow> points;
};

// One job that threw (reason = the exception message) or was skipped because
// a dependency failed. Provenance: a report listing these is partial — rows
// whose producing job appears here hold default values.
struct FailedJob {
  std::string job;     // "kind:artifact key" label
  std::string reason;
  bool skipped = false;  // true = never ran (upstream failure)
};

struct PowerRow {
  int topology = 0;  // index into Report::topologies
  double dynamic_mw = 0.0;
  double leakage_mw = 0.0;
  double router_area_mm2 = 0.0;
  double wire_area_mm2 = 0.0;
};

// Job/cache counters (also provenance: proves the artifact sharing the
// grid expansion promised).
struct StudyStats {
  int topology_refs = 0;      // expanded topology grid entries
  int unique_topologies = 0;  // distinct artifact keys
  int topology_cache_hits = 0;
  int syntheses_run = 0;  // synthesize jobs resolved (annealer run or
                          // artifact-cache restore; keeps reports
                          // cache-oblivious)
  int plan_refs = 0;
  int unique_plans = 0;
  int plan_cache_hits = 0;
  int sweep_jobs = 0;  // unique (plan, traffic) simulations executed
  int power_jobs = 0;
  // v3 counters, serialized only when non-zero (fault-free studies keep the
  // v2 stats block byte-identical).
  int resilience_jobs = 0;  // (plan, traffic, fault scenario) simulations
  int failed_jobs = 0;      // jobs that threw or were skipped
  int jobs_total = 0;  // DAG nodes executed
};

struct Report {
  ExperimentSpec spec;  // embedded verbatim; round-trips via spec_from_json
  std::vector<TopologyRow> topologies;
  std::vector<PlanRow> plans;
  std::vector<SweepRow> sweeps;
  std::vector<ResilienceRow> resilience;
  std::vector<PowerRow> power;
  std::vector<FailedJob> failed_jobs;
  StudyStats stats;
  int omp_max_threads = 1;
  // obs registry snapshot (obs::metrics_to_json form) captured at assembly
  // when metrics collection was enabled; null/empty otherwise. Timing-valued
  // entries vary run to run, so determinism tests run with metrics off.
  util::JsonValue metrics;
};

// Schema version a serialization of `report` carries: v2 until the report
// uses a v3 feature (resilience rows or failed jobs).
int report_schema_version(const Report& report);

// Schema-stamped JSON document (trailing newline, deterministic field
// order). The "spec" member is api::serialize's DOM form.
std::string report_to_json(const Report& report);

// Extracts and parses the embedded spec of a serialized report — the
// round-trip contract `parse(report(spec)) == spec`.
ExperimentSpec spec_from_report(const std::string& report_json);

// Reads the schema_version stamp of a serialized report.
int report_schema_version(const std::string& report_json);

}  // namespace netsmith::api
