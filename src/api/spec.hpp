#pragma once
// Declarative experiment descriptions: everything a figure bench, ablation
// or service request needs to say about an evaluation, as one value type
// with an exact JSON round-trip (parse(serialize(spec)) == spec).
//
// A spec names WHAT to evaluate — topology sources, routing policy, VC
// budget, traffic scenarios, sweep windows, power model, seeds — and the
// Study runner (api/study.hpp) expands it into a job DAG and executes it.
// Schema versioning: kSpecSchemaVersion is embedded in every serialized
// spec and report; parse rejects documents from a different major schema.

#include <cstdint>
#include <string>
#include <vector>

#include "core/netsmith.hpp"
#include "fault/model.hpp"
#include "sim/network.hpp"
#include "sim/sweep.hpp"
#include "util/json.hpp"

namespace netsmith::api {

// v2 added the `faults` block. Serialization stamps v1 when the block is
// empty (see spec_schema_version), so faultless specs — and the reports
// embedding them — stay byte-identical with pre-fault builds; the parser
// accepts both versions.
inline constexpr int kSpecSchemaVersion = 2;
inline constexpr int kSpecMinSchemaVersion = 1;

// --------------------------------------------------------------- topology --

enum class TopologySource {
  kSynthesize,  // run the NetSmith annealer with the given config
  kBaseline,    // registry factory spec, e.g. "dragonfly:routers=48"
  kExplicit,    // literal adjacency "n:i>j,..." on a rows x cols grid
  kCatalog,     // frozen paper catalog rows (20/30/48), by name or all
};

// One topology source. Grid axes: a synthesize entry expands to one
// topology per listed objective; a catalog entry with an empty name expands
// to every row of that catalog (plus the parametric baselines on request).
struct TopologySpec {
  TopologySource source = TopologySource::kBaseline;
  std::string name;  // display-name override; catalog: row selector

  // kBaseline
  std::string baseline;  // "family:key=value,..." (topologies::make_spec)

  // kCatalog
  int catalog_routers = 20;
  bool include_baselines = false;

  // kExplicit
  std::string adjacency;  // topo::DiGraph::to_string form
  int rows = 0, cols = 0;
  std::string link_class = "medium";  // small|medium|large

  // kSynthesize (mirrors core::SynthesisConfig; layout is rows/cols above,
  // defaulting to 4x5 when unset)
  std::vector<std::string> objectives = {"latop"};  // grid axis
  int radix = 4;
  bool symmetric_links = false;
  int diameter_bound = 0;
  double min_cut_bandwidth = 0.0;
  double load_weight = 1.0;
  double time_limit_s = 2.0;
  std::uint64_t synth_seed = 1;
  int restarts = 3;
  // > 0: move-budgeted deterministic annealing (bit-reproducible reports);
  // 0: wall-clock budget (time_limit_s).
  long max_moves = 0;
  // > 0: landmark objective estimation — score moves from this many sampled
  // sources (hop-based objectives only; incumbents stay exact). 0 = full
  // per-move scoring. See AnnealOptions::landmark_sources.
  int landmark_sources = 0;

  bool operator==(const TopologySpec&) const = default;
};

// ---------------------------------------------------------------- traffic --

struct TrafficSpec {
  std::string name;  // row label in reports; empty = use `kind`
  // coherence|memory|shuffle|tornado (tornado: core::tornado_pattern as
  // kCustom traffic, rates capped by the pattern's routed bound).
  std::string kind = "coherence";

  const std::string& label() const { return name.empty() ? kind : name; }
  int ctrl_flits = 1;
  int data_flits = 9;
  double data_fraction = 0.5;

  bool operator==(const TrafficSpec&) const = default;
};

// ------------------------------------------------------------------ sweep --

// Injection-sweep and simulator windows (sim::SimConfig + sweep shape).
struct SweepSpec {
  int points = 10;
  double max_rate = 0.0;  // packets/node/cycle; 0 = analytic auto bound
  bool adaptive = true;
  long warmup = 2000;
  long measure = 6000;
  long drain = 24000;
  int buf_flits = 8;
  int io_flits_per_cycle = 2;
  int router_delay = 2;
  int link_delay = 1;
  std::uint64_t sim_seed = 1;

  bool operator==(const SweepSpec&) const = default;
};

// ------------------------------------------------------------------ power --

struct PowerSpec {
  bool enabled = false;
  double flits_per_node_cycle = 0.25;  // activity for the DSENT-lite model

  bool operator==(const PowerSpec&) const = default;
};

// ------------------------------------------------------------- experiment --

struct ExperimentSpec {
  std::string name = "experiment";
  std::vector<TopologySpec> topologies;

  // Routing + plan construction.
  std::string routing = "auto";  // auto (paper policy) | mclb | ndbt
  int num_vcs = 6;
  int max_paths_per_flow = 48;
  // Wrap each NoI into the 84-router chiplet full system before planning.
  bool chiplet_system = false;
  // Plan seeds: grid axis (plan_network's RNG drives NDBT path selection
  // and VC layer assignment).
  std::vector<std::uint64_t> seeds = {7};

  // What to evaluate. `analytic` adds per-plan graph/bound metrics (Fig. 1);
  // each TrafficSpec adds one injection sweep per plan (Figs. 6/10/11).
  bool analytic = true;
  std::vector<TrafficSpec> traffic;
  SweepSpec sweep;
  PowerSpec power;

  // Resilience scenarios (fault/model.hpp): each entry evaluates every
  // plan x traffic combination under that fault schedule, adding rows to the
  // Report's `resilience` block. Empty = no fault evaluation (and the spec
  // serializes exactly as schema v1 did).
  std::vector<fault::FaultScenarioSpec> faults;

  // Study thread-pool width (0 = hardware concurrency). Not part of the
  // result: reports are identical across thread counts.
  int threads = 0;

  bool operator==(const ExperimentSpec&) const = default;
};

// ------------------------------------------------------------------- JSON --

// Schema version a serialization of `spec` carries: v1 until the spec uses
// a v2 feature (a non-empty faults block).
int spec_schema_version(const ExperimentSpec& spec);

// Serializes with every field present (canonical full form), schema-stamped.
std::string serialize(const ExperimentSpec& spec);

// Parses a spec document. Strict: unknown keys, malformed values and schema
// mismatches throw std::invalid_argument with the offending key.
ExperimentSpec parse_spec(const std::string& json_text);

// DOM forms, for embedding a spec inside a larger document (reports carry
// their spec verbatim for provenance).
util::JsonValue spec_to_json(const ExperimentSpec& spec);
ExperimentSpec spec_from_json(const util::JsonValue& root);

// ------------------------------------------------- enum <-> string helpers --

const char* to_string(TopologySource s);
TopologySource topology_source_from_string(const std::string& s);

// Conversions used by the Study runner (throw std::invalid_argument on
// unknown names).
core::Objective objective_from_string(const std::string& s);
const char* objective_to_string(core::Objective o);
topo::LinkClass link_class_from_string(const std::string& s);

// Simulator window from the sweep + experiment knobs (extra_edge_delay is
// plan-specific and filled by the Study).
sim::SimConfig make_sim_config(const ExperimentSpec& spec);

}  // namespace netsmith::api
