#pragma once
// Study runner: expands an ExperimentSpec's grid (topologies x objectives x
// seeds x traffic) into a job DAG with shared-artifact caching and executes
// it on a thread pool.
//
// Artifact sharing: every distinct topology key is synthesized/built exactly
// once, every distinct plan key routed exactly once, and every distinct
// (plan, traffic) pair simulated exactly once, no matter how many grid rows
// reference it. Jobs run as their dependencies finish; each job writes only
// its own slot, so the assembled Report is byte-identical across thread
// counts (OpenMP width inside a sweep is the one environmental input, and it
// is recorded per sweep row).
//
// DAG shape:   topology ──► plan ──► sweep (x traffic)
//                   │          └───► resilience (x traffic x fault scenario)
//                   └─────► power
//
// Robustness: a throwing job records its artifact as failed instead of
// aborting the study; downstream jobs are skipped with a reason, and the
// Report carries the failure list as provenance (`failed_jobs`). Rows whose
// producing job failed keep default values.
//
// Keys (DESIGN.md "Experiment API"): topology keys canonicalize the source
// ("baseline:<family:k=v>", "catalog:<routers>:<row>", "explicit:<adjacency>",
// "synth:<full config>"); plan keys append policy/vcs/seed/path-budget/
// chiplet so caches never alias plans built differently.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "api/artifact_cache.hpp"
#include "api/executor.hpp"
#include "api/report.hpp"
#include "api/spec.hpp"
#include "power/dsent_lite.hpp"
#include "system/chiplet.hpp"
#include "topologies/registry.hpp"

namespace netsmith::api {

struct TopologyArtifact {
  std::string key;
  TopologySource source = TopologySource::kBaseline;
  topologies::NamedTopology topo;  // synthesize: graph filled by the job
  // Synthesize inputs (pending until the job runs).
  core::SynthesisConfig synth_cfg;
  long max_moves = 0;
  int landmark_sources = 0;
  bool synthesized = false;
  core::SynthesisResult synth;
  // spec.analytic metrics (filled by the topology job).
  double avg_hops = 0.0;
  int diameter = 0;
  int bisection_bw = 0;
  double cut_bound = 0.0;
  double avg_extra_edge_delay = 0.0;
};

struct PlanArtifact {
  std::string key;
  int topology = -1;  // index into Study::topology_artifacts()
  std::uint64_t seed = 0;
  core::NetworkPlan plan;
  bool has_system = false;
  system::ChipletSystem system;  // spec.chiplet_system only
};

struct StudyOptions {
  // Thread-pool width; -1 = spec.threads, 0 = hardware concurrency. Does
  // not affect results, only wall clock.
  int threads = -1;
  // Persistent artifact store consulted before running topology/plan/sweep
  // jobs and fed after (api/artifact_cache.hpp). Null = recompute
  // everything. Cached and recomputed studies assemble byte-identical
  // reports, so plugging a cache never changes results, only wall clock.
  ArtifactCache* cache = nullptr;
  // External executor (a process-wide pool shared across concurrent
  // studies, e.g. the serve daemon's). Null = the study spawns its own
  // `threads`-wide pool. With an executor the pool's width governs
  // parallelism and `threads` is ignored.
  JobExecutor* executor = nullptr;
  // Per-job completion callback (label, jobs completed, jobs total), called
  // serially in completion order while the DAG's bookkeeping lock is held —
  // keep it cheap; it is on the job handoff path, not the job bodies. The
  // serve layer streams these as progress events.
  std::function<void(const std::string&, int, int)> on_job_done;
};

class Study {
 public:
  // Expands the grid and resolves every non-synthesized topology; throws
  // std::invalid_argument on unknown factory specs / catalog rows.
  explicit Study(ExperimentSpec spec, StudyOptions opts = {});

  // Executes the job DAG and assembles the report. Callable once.
  Report run();

  const ExperimentSpec& spec() const { return spec_; }
  const StudyStats& stats() const { return stats_; }
  // Cache traffic against opts.cache (all-zero when no cache was plugged
  // in). Valid after run(). A fully warm run — every topology, plan and
  // sweep restored — has misses() == 0 and ran zero syntheses.
  ArtifactCacheStats artifact_cache_stats() const;

  // Shared artifacts (valid after run()), for callers that post-process
  // beyond the report — e.g. the full-system workload example replays
  // PARSEC traffic over the cached plans.
  const std::vector<TopologyArtifact>& topology_artifacts() const {
    return utopos_;
  }
  const std::vector<PlanArtifact>& plan_artifacts() const { return uplans_; }
  // Jobs that threw or were skipped because a dependency failed (valid after
  // run(); also embedded in the Report).
  const std::vector<FailedJob>& failed_jobs() const { return failed_jobs_; }
  // Unique plan artifact serving grid row (topology_ref, seed_index).
  const PlanArtifact& plan_for(int topology_ref, int seed_index = 0) const;

  // Routing policy a topology gets under spec.routing ("auto" = MCLB for
  // machine/parametric/explicit topologies, NDBT for expert designs).
  core::RoutingPolicy policy_for(const TopologyArtifact& t) const;

 private:
  struct USweep {
    int plan = -1;
    int traffic = -1;
    sim::SweepResult result;
  };
  // One (plan, traffic, fault scenario) evaluation: the expanded fault plan
  // plus a sweep run under it. Resilience sweeps force adaptive = false so
  // results are byte-identical across OpenMP widths (baseline sweeps record
  // their width instead).
  struct UResilience {
    int plan = -1;
    int traffic = -1;
    int scenario = -1;
    fault::FaultPlan fplan;
    sim::SweepResult result;
  };

  void expand();
  void run_jobs();
  void run_topology_job(TopologyArtifact& t);
  void run_plan_job(PlanArtifact& p);
  void run_sweep_job(USweep& s);
  void run_resilience_job(UResilience& r);
  // Cache key of a sweep job: the plan key extended with every input the
  // sweep depends on (traffic shape, sweep/sim windows, and the OpenMP
  // width, which adaptive truncation and the omp_threads provenance field
  // both observe).
  std::string sweep_cache_key(const USweep& s) const;
  // Traffic construction shared by sweep and resilience jobs; updates
  // max_override for patterns whose rate cap is not the uniform auto bound.
  sim::TrafficConfig traffic_for(const PlanArtifact& p,
                                 const TopologyArtifact& t,
                                 const TrafficSpec& ts,
                                 double& max_override) const;
  Report assemble() const;

  ExperimentSpec spec_;
  StudyOptions opts_;
  StudyStats stats_;
  bool ran_ = false;
  std::atomic<int> synth_count_{0};
  // Artifact-cache traffic (opts_.cache only; all stay zero without one).
  std::atomic<long> topo_hits_{0}, topo_misses_{0};
  std::atomic<long> plan_hits_{0}, plan_misses_{0};
  std::atomic<long> sweep_hits_{0}, sweep_misses_{0};
  std::atomic<long> cache_stores_{0};

  std::vector<TopologyArtifact> utopos_;
  std::vector<int> topo_refs_;  // grid ref -> unique topology index
  // Per-ref display names: name overrides are presentation-only and must
  // not defeat artifact dedup, so they live on the ref, not the key.
  std::vector<std::string> ref_names_;
  std::vector<PlanArtifact> uplans_;
  std::vector<int> plan_refs_;  // ref * seeds + seed_idx -> unique plan
  std::vector<USweep> usweeps_;
  std::vector<int> sweep_of_plan_traffic_;  // uplan * traffic -> usweep (-1)
  std::vector<power::PowerArea> upower_;    // per unique topology
  // Dense grid (uplan * T + t) * C + c over the spec's fault scenarios.
  std::vector<UResilience> uresil_;
  std::vector<FailedJob> failed_jobs_;
};

// Convenience one-shot: Study(spec).run().
Report run_experiment(const ExperimentSpec& spec, StudyOptions opts = {});

}  // namespace netsmith::api
