#pragma once
// Pluggable artifact cache: the Study runner's hook for keeping expensive
// artifacts (synthesized topologies, routed plans, finished sweeps) alive
// beyond one process run.
//
// Within a single Study, artifact sharing is structural — the grid expansion
// dedups on canonical keys, so each unique artifact is produced once. An
// ArtifactCache extends that sharing across Study instances and across
// processes: before running a topology/plan/sweep job, the runner asks the
// cache for a serialized artifact under the job's canonical key (plus the
// evaluation parameters that are not part of the key, e.g. the analytic
// toggle and the OpenMP sweep width); after producing one, it stores the
// serialization back. The serve daemon's persistent content-addressed store
// (serve/store.hpp) is the production implementation.
//
// Contract:
//  - load() returns true and fills `payload` on a hit; false on a miss.
//    A corrupt, truncated or otherwise unusable entry MUST read as a miss,
//    never an error — the runner recomputes and re-stores.
//  - store() is best-effort: failures must be swallowed (a cache that
//    cannot persist degrades to recompute-every-time, it does not abort
//    studies).
//  - Both methods must be safe to call concurrently from many threads.
//
// Determinism: payloads restore every report-visible field bit-exactly, so
// a Study resolving all jobs from cache assembles a report byte-identical
// to the run that populated the cache (see artifact_io.hpp).

#include <string>

namespace netsmith::api {

// Artifact kinds, used as the cache namespace (and as subdirectories by the
// on-disk store).
inline constexpr const char* kTopologyArtifactKind = "topology";
inline constexpr const char* kPlanArtifactKind = "plan";
inline constexpr const char* kSweepArtifactKind = "sweep";

class ArtifactCache {
 public:
  virtual ~ArtifactCache() = default;

  // True + payload filled on hit; false on miss (including corrupt entries).
  virtual bool load(const std::string& kind, const std::string& key,
                    std::string& payload) = 0;

  // Best-effort persist; must not throw.
  virtual void store(const std::string& kind, const std::string& key,
                     const std::string& payload) = 0;
};

// Per-Study cache traffic, split by artifact kind. A fully warm run has
// misses == 0 for every kind and ran zero syntheses — the serve layer
// returns these counters with every response so clients can assert reuse.
struct ArtifactCacheStats {
  long topology_hits = 0;
  long topology_misses = 0;
  long plan_hits = 0;
  long plan_misses = 0;
  long sweep_hits = 0;
  long sweep_misses = 0;
  long stores = 0;  // artifacts serialized and handed to store()

  long hits() const { return topology_hits + plan_hits + sweep_hits; }
  long misses() const { return topology_misses + plan_misses + sweep_misses; }
};

}  // namespace netsmith::api
