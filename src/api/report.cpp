#include "api/report.hpp"

#include "util/json.hpp"

namespace netsmith::api {

using util::JsonValue;

namespace {

JsonValue to_json(const TopologyRow& t) {
  JsonValue o = JsonValue::object();
  o.set("name", JsonValue::string(t.name));
  o.set("key", JsonValue::string(t.key));
  o.set("factory_spec", JsonValue::string(t.factory_spec));
  o.set("source", JsonValue::string(t.source));
  o.set("link_class", JsonValue::string(t.link_class));
  o.set("clock_ghz", JsonValue::number(t.clock_ghz));
  o.set("routers", JsonValue::integer(t.routers));
  o.set("duplex_links", JsonValue::number(t.duplex_links));
  o.set("adjacency", JsonValue::string(t.adjacency));
  o.set("is_netsmith", JsonValue::boolean(t.is_netsmith));
  o.set("parametric", JsonValue::boolean(t.parametric));
  o.set("avg_hops", JsonValue::number(t.avg_hops));
  o.set("diameter", JsonValue::integer(t.diameter));
  o.set("bisection_bw", JsonValue::integer(t.bisection_bw));
  o.set("cut_bound", JsonValue::number(t.cut_bound));
  o.set("avg_extra_edge_delay", JsonValue::number(t.avg_extra_edge_delay));
  o.set("synthesized", JsonValue::boolean(t.synthesized));
  if (t.synthesized) {
    o.set("objective", JsonValue::string(t.objective));
    o.set("objective_value", JsonValue::number(t.objective_value));
    o.set("bound", JsonValue::number(t.bound));
    o.set("moves", JsonValue::integer(t.moves));
    JsonValue trace = JsonValue::array();
    for (const auto& pt : t.trace) {
      JsonValue p = JsonValue::object();
      p.set("seconds", JsonValue::number(pt.seconds));
      p.set("incumbent", JsonValue::number(pt.incumbent));
      p.set("bound", JsonValue::number(pt.bound));
      trace.push_back(std::move(p));
    }
    o.set("trace", std::move(trace));
  }
  return o;
}

JsonValue to_json(const PlanRow& p) {
  JsonValue o = JsonValue::object();
  o.set("topology", JsonValue::integer(p.topology));
  o.set("key", JsonValue::string(p.key));
  o.set("policy", JsonValue::string(p.policy));
  o.set("num_vcs", JsonValue::integer(p.num_vcs));
  o.set("seed", JsonValue::integer(static_cast<long long>(p.seed)));
  o.set("max_paths_per_flow", JsonValue::integer(p.max_paths_per_flow));
  o.set("max_channel_load", JsonValue::number(p.max_channel_load));
  o.set("routed_bound", JsonValue::number(p.routed_bound));
  o.set("vc_layers", JsonValue::integer(p.vc_layers));
  o.set("ndbt_fallback_flows", JsonValue::integer(p.ndbt_fallback_flows));
  o.set("chiplet_system", JsonValue::boolean(p.chiplet_system));
  o.set("system_routers", JsonValue::integer(p.system_routers));
  return o;
}

JsonValue to_json(const SweepRow& s) {
  JsonValue o = JsonValue::object();
  o.set("plan", JsonValue::integer(s.plan));
  o.set("traffic", JsonValue::string(s.traffic));
  o.set("zero_load_latency_cycles",
        JsonValue::number(s.zero_load_latency_cycles));
  o.set("zero_load_latency_ns", JsonValue::number(s.zero_load_latency_ns));
  o.set("saturation_pkt_node_cycle",
        JsonValue::number(s.saturation_pkt_node_cycle));
  o.set("saturation_pkt_node_ns", JsonValue::number(s.saturation_pkt_node_ns));
  o.set("omp_threads", JsonValue::integer(s.omp_threads));
  JsonValue points = JsonValue::array();
  for (const auto& pt : s.points) {
    JsonValue p = JsonValue::object();
    p.set("offered_pkt_node_cycle",
          JsonValue::number(pt.offered_pkt_node_cycle));
    p.set("accepted_pkt_node_cycle",
          JsonValue::number(pt.accepted_pkt_node_cycle));
    p.set("accepted_pkt_node_ns", JsonValue::number(pt.accepted_pkt_node_ns));
    p.set("latency_cycles", JsonValue::number(pt.latency_cycles));
    p.set("latency_ns", JsonValue::number(pt.latency_ns));
    p.set("saturated", JsonValue::boolean(pt.saturated));
    points.push_back(std::move(p));
  }
  o.set("points", std::move(points));
  return o;
}

JsonValue to_json(const ResilienceRow& r) {
  JsonValue o = JsonValue::object();
  o.set("plan", JsonValue::integer(r.plan));
  o.set("traffic", JsonValue::string(r.traffic));
  o.set("scenario", JsonValue::string(r.scenario));
  o.set("key", JsonValue::string(r.key));
  o.set("events", JsonValue::integer(r.events));
  o.set("links_down", JsonValue::integer(r.links_down));
  o.set("routers_down", JsonValue::integer(r.routers_down));
  o.set("lossy", JsonValue::boolean(r.lossy));
  o.set("repair", JsonValue::boolean(r.repair));
  o.set("flows_rerouted", JsonValue::integer(r.flows_rerouted));
  o.set("flows_unroutable", JsonValue::integer(r.flows_unroutable));
  o.set("saturation_pkt_node_cycle",
        JsonValue::number(r.saturation_pkt_node_cycle));
  o.set("saturation_pkt_node_ns", JsonValue::number(r.saturation_pkt_node_ns));
  o.set("baseline_saturation_pkt_node_cycle",
        JsonValue::number(r.baseline_saturation_pkt_node_cycle));
  o.set("baseline_saturation_pkt_node_ns",
        JsonValue::number(r.baseline_saturation_pkt_node_ns));
  JsonValue points = JsonValue::array();
  for (const auto& pt : r.points) {
    JsonValue p = JsonValue::object();
    p.set("offered_pkt_node_cycle",
          JsonValue::number(pt.offered_pkt_node_cycle));
    p.set("accepted_pkt_node_cycle",
          JsonValue::number(pt.accepted_pkt_node_cycle));
    p.set("delivered_fraction", JsonValue::number(pt.delivered_fraction));
    p.set("latency_p50_cycles", JsonValue::number(pt.latency_p50_cycles));
    p.set("latency_p99_cycles", JsonValue::number(pt.latency_p99_cycles));
    p.set("flits_dropped", JsonValue::integer(pt.flits_dropped));
    p.set("packets_dropped", JsonValue::integer(pt.packets_dropped));
    p.set("packets_unroutable", JsonValue::integer(pt.packets_unroutable));
    p.set("saturated", JsonValue::boolean(pt.saturated));
    points.push_back(std::move(p));
  }
  o.set("points", std::move(points));
  return o;
}

JsonValue to_json(const FailedJob& f) {
  JsonValue o = JsonValue::object();
  o.set("job", JsonValue::string(f.job));
  o.set("reason", JsonValue::string(f.reason));
  o.set("skipped", JsonValue::boolean(f.skipped));
  return o;
}

JsonValue to_json(const PowerRow& p) {
  JsonValue o = JsonValue::object();
  o.set("topology", JsonValue::integer(p.topology));
  o.set("dynamic_mw", JsonValue::number(p.dynamic_mw));
  o.set("leakage_mw", JsonValue::number(p.leakage_mw));
  o.set("total_power_mw", JsonValue::number(p.dynamic_mw + p.leakage_mw));
  o.set("router_area_mm2", JsonValue::number(p.router_area_mm2));
  o.set("wire_area_mm2", JsonValue::number(p.wire_area_mm2));
  return o;
}

JsonValue to_json(const StudyStats& s) {
  JsonValue o = JsonValue::object();
  o.set("topology_refs", JsonValue::integer(s.topology_refs));
  o.set("unique_topologies", JsonValue::integer(s.unique_topologies));
  o.set("topology_cache_hits", JsonValue::integer(s.topology_cache_hits));
  o.set("syntheses_run", JsonValue::integer(s.syntheses_run));
  o.set("plan_refs", JsonValue::integer(s.plan_refs));
  o.set("unique_plans", JsonValue::integer(s.unique_plans));
  o.set("plan_cache_hits", JsonValue::integer(s.plan_cache_hits));
  o.set("sweep_jobs", JsonValue::integer(s.sweep_jobs));
  o.set("power_jobs", JsonValue::integer(s.power_jobs));
  // v3 counters: keyed only when used, so a fault-free, fully-successful
  // study's stats block is byte-identical with schema-v2 builds.
  if (s.resilience_jobs > 0)
    o.set("resilience_jobs", JsonValue::integer(s.resilience_jobs));
  if (s.failed_jobs > 0)
    o.set("failed_jobs", JsonValue::integer(s.failed_jobs));
  o.set("jobs_total", JsonValue::integer(s.jobs_total));
  return o;
}

}  // namespace

int report_schema_version(const Report& report) {
  return report.resilience.empty() && report.failed_jobs.empty()
             ? kReportSchemaVersion - 1
             : kReportSchemaVersion;
}

std::string report_to_json(const Report& report) {
  JsonValue o = JsonValue::object();
  o.set("schema_version", JsonValue::integer(report_schema_version(report)));
  o.set("name", JsonValue::string(report.spec.name));
  o.set("spec", spec_to_json(report.spec));

  JsonValue prov = JsonValue::object();
  prov.set("spec_schema_version",
           JsonValue::integer(spec_schema_version(report.spec)));
  prov.set("omp_max_threads", JsonValue::integer(report.omp_max_threads));
  JsonValue seeds = JsonValue::array();
  for (auto s : report.spec.seeds)
    seeds.push_back(JsonValue::integer(static_cast<long long>(s)));
  prov.set("seeds", std::move(seeds));
  prov.set("jobs", to_json(report.stats));
  if (!report.failed_jobs.empty()) {
    JsonValue failed = JsonValue::array();
    for (const auto& f : report.failed_jobs) failed.push_back(to_json(f));
    prov.set("failed_jobs", std::move(failed));
  }
  o.set("provenance", std::move(prov));

  JsonValue topos = JsonValue::array();
  for (const auto& t : report.topologies) topos.push_back(to_json(t));
  o.set("topologies", std::move(topos));
  JsonValue plans = JsonValue::array();
  for (const auto& p : report.plans) plans.push_back(to_json(p));
  o.set("plans", std::move(plans));
  JsonValue sweeps = JsonValue::array();
  for (const auto& s : report.sweeps) sweeps.push_back(to_json(s));
  o.set("sweeps", std::move(sweeps));
  if (!report.resilience.empty()) {
    JsonValue resil = JsonValue::array();
    for (const auto& r : report.resilience) resil.push_back(to_json(r));
    o.set("resilience", std::move(resil));
  }
  JsonValue power = JsonValue::array();
  for (const auto& p : report.power) power.push_back(to_json(p));
  o.set("power", std::move(power));
  // Always present (schema v2): the obs registry snapshot, or an empty
  // object when the study ran without metrics collection.
  o.set("metrics", report.metrics.type() == JsonValue::Type::kObject
                       ? report.metrics
                       : JsonValue::object());
  return o.dump();
}

ExperimentSpec spec_from_report(const std::string& report_json) {
  const JsonValue doc = JsonValue::parse(report_json);
  return spec_from_json(doc.at("spec"));
}

int report_schema_version(const std::string& report_json) {
  return static_cast<int>(
      JsonValue::parse(report_json).at("schema_version").as_int());
}

}  // namespace netsmith::api
