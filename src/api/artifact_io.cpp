#include "api/artifact_io.hpp"

#include <exception>
#include <utility>

#include "util/json.hpp"

namespace netsmith::api {

using util::JsonValue;

namespace {

JsonValue header(const char* kind) {
  JsonValue o = JsonValue::object();
  o.set("artifact", JsonValue::string(kind));
  o.set("schema", JsonValue::integer(kArtifactSchemaVersion));
  return o;
}

// Parses `payload` and checks the self-description; null-typed on any
// mismatch so callers fall through to a miss.
JsonValue parse_payload(const std::string& payload, const char* kind) {
  JsonValue doc = JsonValue::parse(payload);
  if (!doc.is_object()) return JsonValue::null();
  const JsonValue* k = doc.find("artifact");
  const JsonValue* s = doc.find("schema");
  if (!k || !s || k->as_string() != kind ||
      s->as_int() != kArtifactSchemaVersion)
    return JsonValue::null();
  return doc;
}

JsonValue int_array(const std::vector<int>& v) {
  JsonValue a = JsonValue::array();
  for (int x : v) a.push_back(JsonValue::integer(x));
  return a;
}

std::vector<int> as_int_vector(const JsonValue& a) {
  std::vector<int> v;
  v.reserve(a.items().size());
  for (const auto& x : a.items()) v.push_back(static_cast<int>(x.as_int()));
  return v;
}

}  // namespace

// ---------------------------------------------------------------- topology --

std::string topology_artifact_payload(const TopologyArtifact& t,
                                      bool analytic) {
  JsonValue o = header(kTopologyArtifactKind);
  o.set("adjacency", JsonValue::string(t.topo.graph.to_string()));
  o.set("analytic", JsonValue::boolean(analytic));
  if (analytic) {
    o.set("avg_hops", JsonValue::number(t.avg_hops));
    o.set("diameter", JsonValue::integer(t.diameter));
    o.set("bisection_bw", JsonValue::integer(t.bisection_bw));
    o.set("cut_bound", JsonValue::number(t.cut_bound));
    o.set("avg_extra_edge_delay", JsonValue::number(t.avg_extra_edge_delay));
  }
  o.set("synthesized", JsonValue::boolean(t.synthesized));
  if (t.synthesized) {
    JsonValue s = JsonValue::object();
    s.set("objective_value", JsonValue::number(t.synth.objective_value));
    s.set("bound", JsonValue::number(t.synth.bound));
    s.set("moves", JsonValue::integer(t.synth.moves));
    s.set("accepted", JsonValue::integer(t.synth.accepted));
    s.set("apsp_resweeps", JsonValue::integer(t.synth.apsp_resweeps));
    s.set("exact_rescores", JsonValue::integer(t.synth.exact_rescores));
    JsonValue trace = JsonValue::array();
    for (const auto& pt : t.synth.trace) {
      JsonValue p = JsonValue::object();
      p.set("seconds", JsonValue::number(pt.seconds));
      p.set("incumbent", JsonValue::number(pt.incumbent));
      p.set("bound", JsonValue::number(pt.bound));
      trace.push_back(std::move(p));
    }
    s.set("trace", std::move(trace));
    o.set("synth", std::move(s));
  }
  return o.dump();
}

bool restore_topology_artifact(const std::string& payload, bool analytic,
                               TopologyArtifact& t) {
  try {
    const JsonValue doc = parse_payload(payload, kTopologyArtifactKind);
    if (!doc.is_object()) return false;
    if (doc.at("analytic").as_bool() != analytic) return false;
    const std::string& adjacency = doc.at("adjacency").as_string();
    const bool synthesized = doc.at("synthesized").as_bool();
    if (t.source == TopologySource::kSynthesize) {
      if (!synthesized) return false;
      topo::DiGraph g = topo::DiGraph::from_string(adjacency);
      if (g.num_nodes() != t.synth_cfg.layout.n()) return false;
      t.topo.graph = std::move(g);
    } else {
      // Pre-built sources already resolved their graph during expansion; the
      // payload must describe the same topology or the entry is stale (a
      // hash collision or a store populated from a different build).
      if (synthesized || adjacency != t.topo.graph.to_string()) return false;
    }
    if (analytic) {
      t.avg_hops = doc.at("avg_hops").as_double();
      t.diameter = static_cast<int>(doc.at("diameter").as_int());
      t.bisection_bw = static_cast<int>(doc.at("bisection_bw").as_int());
      t.cut_bound = doc.at("cut_bound").as_double();
      t.avg_extra_edge_delay = doc.at("avg_extra_edge_delay").as_double();
    }
    if (synthesized) {
      const JsonValue& s = doc.at("synth");
      t.synth.graph = t.topo.graph;
      t.synth.objective_value = s.at("objective_value").as_double();
      t.synth.bound = s.at("bound").as_double();
      t.synth.moves = s.at("moves").as_int();
      t.synth.accepted = s.at("accepted").as_int();
      t.synth.apsp_resweeps = s.at("apsp_resweeps").as_int();
      t.synth.exact_rescores = s.at("exact_rescores").as_int();
      t.synth.trace.clear();
      for (const auto& pt : s.at("trace").items()) {
        core::ProgressPoint p;
        p.seconds = pt.at("seconds").as_double();
        p.incumbent = pt.at("incumbent").as_double();
        p.bound = pt.at("bound").as_double();
        t.synth.trace.push_back(p);
      }
      t.synthesized = true;
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

// -------------------------------------------------------------------- plan --

namespace {

JsonValue layout_to_json(const topo::Layout& l) {
  JsonValue o = JsonValue::object();
  o.set("rows", JsonValue::integer(l.rows));
  o.set("cols", JsonValue::integer(l.cols));
  o.set("pitch_mm", JsonValue::number(l.pitch_mm));
  return o;
}

topo::Layout layout_from_json(const JsonValue& o) {
  topo::Layout l;
  l.rows = static_cast<int>(o.at("rows").as_int());
  l.cols = static_cast<int>(o.at("cols").as_int());
  l.pitch_mm = o.at("pitch_mm").as_double();
  return l;
}

JsonValue matrix_to_json(const util::Matrix<int>& m) {
  JsonValue o = JsonValue::object();
  o.set("rows", JsonValue::integer(static_cast<long long>(m.rows())));
  o.set("cols", JsonValue::integer(static_cast<long long>(m.cols())));
  JsonValue data = JsonValue::array();
  const std::size_t total = m.rows() * m.cols();
  for (std::size_t i = 0; i < total; ++i)
    data.push_back(JsonValue::integer(m.data()[i]));
  o.set("data", std::move(data));
  return o;
}

util::Matrix<int> matrix_from_json(const JsonValue& o) {
  const auto rows = static_cast<std::size_t>(o.at("rows").as_int());
  const auto cols = static_cast<std::size_t>(o.at("cols").as_int());
  const auto& data = o.at("data").items();
  if (data.size() != rows * cols)
    throw std::runtime_error("matrix: data length mismatch");
  util::Matrix<int> m(rows, cols);
  for (std::size_t i = 0; i < data.size(); ++i)
    m.data()[i] = static_cast<int>(data[i].as_int());
  return m;
}

}  // namespace

std::string plan_artifact_payload(const PlanArtifact& p) {
  JsonValue o = header(kPlanArtifactKind);
  const auto& plan = p.plan;
  o.set("policy", JsonValue::string(core::to_string(plan.policy)));
  o.set("num_vcs", JsonValue::integer(plan.num_vcs));
  o.set("seed", JsonValue::integer(static_cast<long long>(plan.seed)));
  o.set("max_paths_per_flow", JsonValue::integer(plan.max_paths_per_flow));
  o.set("max_channel_load", JsonValue::number(plan.max_channel_load));
  o.set("vc_layers", JsonValue::integer(plan.vc_layers));
  o.set("ndbt_fallback_flows", JsonValue::integer(plan.ndbt_fallback_flows));
  o.set("graph", JsonValue::string(plan.graph.to_string()));
  // Routing table, flow-major (s * n + d): each route as its router
  // sequence; absent flows (s == d) as empty arrays.
  const int n = plan.table.num_nodes();
  JsonValue table = JsonValue::array();
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) table.push_back(int_array(plan.table.path(s, d)));
  o.set("table", std::move(table));
  JsonValue vc = JsonValue::object();
  vc.set("num_vcs", JsonValue::integer(plan.vc_map.num_vcs));
  vc.set("num_layers", JsonValue::integer(plan.vc_map.num_layers));
  vc.set("vc", int_array(plan.vc_map.vc));
  vc.set("layer_of_vc", int_array(plan.vc_map.layer_of_vc));
  JsonValue weights = JsonValue::array();
  for (double w : plan.vc_map.weight_of_vc)
    weights.push_back(JsonValue::number(w));
  vc.set("weight_of_vc", std::move(weights));
  o.set("vc_map", std::move(vc));
  if (p.has_system) {
    JsonValue sys = JsonValue::object();
    sys.set("graph", JsonValue::string(p.system.graph.to_string()));
    sys.set("noi_n", JsonValue::integer(p.system.noi_n));
    sys.set("num_cores", JsonValue::integer(p.system.num_cores));
    sys.set("core_routers", int_array(p.system.core_routers));
    sys.set("mc_routers", int_array(p.system.mc_routers));
    sys.set("extra_delay", matrix_to_json(p.system.extra_delay));
    sys.set("noi_layout", layout_to_json(p.system.noi_layout));
    o.set("system", std::move(sys));
  }
  return o.dump();
}

bool restore_plan_artifact(const std::string& payload, PlanArtifact& p) {
  try {
    const JsonValue doc = parse_payload(payload, kPlanArtifactKind);
    if (!doc.is_object()) return false;
    core::NetworkPlan plan;
    const std::string& policy = doc.at("policy").as_string();
    if (policy == core::to_string(core::RoutingPolicy::kMclb))
      plan.policy = core::RoutingPolicy::kMclb;
    else if (policy == core::to_string(core::RoutingPolicy::kNdbt))
      plan.policy = core::RoutingPolicy::kNdbt;
    else
      return false;
    plan.num_vcs = static_cast<int>(doc.at("num_vcs").as_int());
    plan.seed = doc.at("seed").as_u64();
    plan.max_paths_per_flow =
        static_cast<int>(doc.at("max_paths_per_flow").as_int());
    plan.max_channel_load = doc.at("max_channel_load").as_double();
    plan.vc_layers = static_cast<int>(doc.at("vc_layers").as_int());
    plan.ndbt_fallback_flows =
        static_cast<int>(doc.at("ndbt_fallback_flows").as_int());
    if (plan.seed != p.seed) return false;
    plan.graph = topo::DiGraph::from_string(doc.at("graph").as_string());
    const int n = plan.graph.num_nodes();
    const auto& table = doc.at("table").items();
    if (table.size() != static_cast<std::size_t>(n) * n) return false;
    plan.table = routing::RoutingTable(n);
    for (int s = 0; s < n; ++s) {
      for (int d = 0; d < n; ++d) {
        const auto& route = table[static_cast<std::size_t>(s) * n + d];
        plan.table.path(s, d) = as_int_vector(route);
      }
    }
    if (!plan.table.consistent_with(plan.graph)) return false;
    const JsonValue& vc = doc.at("vc_map");
    plan.vc_map.num_vcs = static_cast<int>(vc.at("num_vcs").as_int());
    plan.vc_map.num_layers = static_cast<int>(vc.at("num_layers").as_int());
    plan.vc_map.vc = as_int_vector(vc.at("vc"));
    plan.vc_map.layer_of_vc = as_int_vector(vc.at("layer_of_vc"));
    plan.vc_map.weight_of_vc.clear();
    for (const auto& w : vc.at("weight_of_vc").items())
      plan.vc_map.weight_of_vc.push_back(w.as_double());
    if (plan.vc_map.vc.size() != static_cast<std::size_t>(n) * n) return false;
    if (plan.vc_map.layer_of_vc.size() !=
            static_cast<std::size_t>(plan.vc_map.num_vcs) ||
        plan.vc_map.weight_of_vc.size() != plan.vc_map.layer_of_vc.size())
      return false;
    if (const JsonValue* sys = doc.find("system")) {
      system::ChipletSystem cs;
      cs.graph = topo::DiGraph::from_string(sys->at("graph").as_string());
      if (cs.graph.num_nodes() != n) return false;
      cs.noi_n = static_cast<int>(sys->at("noi_n").as_int());
      cs.num_cores = static_cast<int>(sys->at("num_cores").as_int());
      cs.core_routers = as_int_vector(sys->at("core_routers"));
      cs.mc_routers = as_int_vector(sys->at("mc_routers"));
      cs.extra_delay = matrix_from_json(sys->at("extra_delay"));
      cs.noi_layout = layout_from_json(sys->at("noi_layout"));
      p.system = std::move(cs);
      p.has_system = true;
    } else {
      p.has_system = false;
    }
    p.plan = std::move(plan);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

// ------------------------------------------------------------------- sweep --

std::string sweep_artifact_payload(const sim::SweepResult& r) {
  JsonValue o = header(kSweepArtifactKind);
  o.set("zero_load_latency_cycles",
        JsonValue::number(r.zero_load_latency_cycles));
  o.set("zero_load_latency_ns", JsonValue::number(r.zero_load_latency_ns));
  o.set("saturation_pkt_node_cycle",
        JsonValue::number(r.saturation_pkt_node_cycle));
  o.set("saturation_pkt_node_ns", JsonValue::number(r.saturation_pkt_node_ns));
  o.set("omp_threads", JsonValue::integer(r.omp_threads));
  JsonValue points = JsonValue::array();
  for (const auto& pt : r.points) {
    JsonValue p = JsonValue::object();
    p.set("offered_pkt_node_cycle",
          JsonValue::number(pt.offered_pkt_node_cycle));
    p.set("accepted", JsonValue::number(pt.stats.accepted));
    p.set("avg_latency_cycles", JsonValue::number(pt.stats.avg_latency_cycles));
    p.set("saturated", JsonValue::boolean(pt.stats.saturated));
    p.set("latency_ns", JsonValue::number(pt.latency_ns));
    p.set("accepted_pkt_node_ns", JsonValue::number(pt.accepted_pkt_node_ns));
    points.push_back(std::move(p));
  }
  o.set("points", std::move(points));
  return o.dump();
}

bool restore_sweep_artifact(const std::string& payload, sim::SweepResult& r) {
  try {
    const JsonValue doc = parse_payload(payload, kSweepArtifactKind);
    if (!doc.is_object()) return false;
    sim::SweepResult out;
    out.zero_load_latency_cycles =
        doc.at("zero_load_latency_cycles").as_double();
    out.zero_load_latency_ns = doc.at("zero_load_latency_ns").as_double();
    out.saturation_pkt_node_cycle =
        doc.at("saturation_pkt_node_cycle").as_double();
    out.saturation_pkt_node_ns = doc.at("saturation_pkt_node_ns").as_double();
    out.omp_threads = static_cast<int>(doc.at("omp_threads").as_int());
    for (const auto& pt : doc.at("points").items()) {
      sim::SweepPoint p;
      p.offered_pkt_node_cycle = pt.at("offered_pkt_node_cycle").as_double();
      p.stats.offered = p.offered_pkt_node_cycle;
      p.stats.accepted = pt.at("accepted").as_double();
      p.stats.avg_latency_cycles = pt.at("avg_latency_cycles").as_double();
      p.stats.saturated = pt.at("saturated").as_bool();
      p.latency_ns = pt.at("latency_ns").as_double();
      p.accepted_pkt_node_ns = pt.at("accepted_pkt_node_ns").as_double();
      out.points.push_back(std::move(p));
    }
    r = std::move(out);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace netsmith::api
