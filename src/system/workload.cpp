#include "system/workload.hpp"

namespace netsmith::system {

const std::vector<Benchmark>& parsec_benchmarks() {
  // Approximate L2 MPKI from PARSEC characterization studies; ordered
  // ascending, mirroring Fig. 8's X-axis (increasing network sensitivity).
  static const std::vector<Benchmark> kBenchmarks = {
      {"blackscholes", 0.08}, {"swaptions", 0.20},     {"raytrace", 0.30},
      {"bodytrack", 0.50},    {"freqmine", 0.70},      {"x264", 1.00},
      {"ferret", 1.30},       {"fluidanimate", 1.80},  {"dedup", 2.20},
      {"facesim", 2.80},      {"streamcluster", 5.50}, {"canneal", 9.00},
  };
  return kBenchmarks;
}

sim::TrafficConfig workload_traffic(const ChipletSystem& sys,
                                    const Benchmark& bench,
                                    const PerfModel& model) {
  sim::TrafficConfig t;
  t.kind = sim::TrafficKind::kCustom;
  t.custom_reply = true;  // every miss is a request + data reply
  t.custom.assign(sys.graph.num_nodes(), {});
  for (int c : sys.core_routers) {
    for (int mc : sys.mc_routers) t.custom[c].emplace_back(mc, 1.0);
  }
  t.sources = sys.core_routers;
  t.injection_rate =
      bench.mpki / 1000.0 * model.ipc_for_rate * model.l2_to_noi_fraction;
  return t;
}

WorkloadResult run_workload(const ChipletSystem& sys,
                            const core::NetworkPlan& plan,
                            const Benchmark& bench, const PerfModel& model,
                            const sim::SimConfig& cfg) {
  sim::SimConfig c = cfg;
  c.extra_edge_delay = sys.extra_delay;
  const auto traffic = workload_traffic(sys, bench, model);
  const auto stats = sim::simulate(plan, traffic, c);

  WorkloadResult r;
  r.benchmark = bench.name;
  r.injection_rate = traffic.injection_rate;
  r.avg_packet_latency_cycles = stats.avg_latency_cycles;
  // Round trip = request latency + reply latency ~ 2x the mean packet
  // latency (both directions are measured packets).
  const double round_trip = 2.0 * stats.avg_latency_cycles;
  r.cpi = model.cpi_base + bench.mpki / 1000.0 * round_trip / model.mlp;
  return r;
}

}  // namespace netsmith::system
