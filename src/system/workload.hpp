#pragma once
// PARSEC workload substitute (paper SV-C, Fig. 8; see DESIGN.md for the
// substitution argument).
//
// Each benchmark is characterized by its L2 misses-per-kilo-instruction
// (values approximated from the PARSEC characterization literature, ordered
// exactly as the paper's Fig. 8 X-axis is: increasing network sensitivity).
// A benchmark's cores inject request packets to the memory controllers at a
// rate proportional to its MPKI; the measured round-trip packet latency
// feeds an analytic CPI model:
//     CPI = CPI_base + (MPKI/1000) * round_trip_cycles / MLP
// Speedup vs the mesh NoI and per-benchmark packet-latency reduction are the
// Fig. 8 outputs.

#include <string>
#include <vector>

#include "sim/network.hpp"
#include "system/chiplet.hpp"

namespace netsmith::system {

struct Benchmark {
  std::string name;
  double mpki;  // L2 misses per kilo-instruction
};

// The simulated PARSEC set (vips excluded, as in the paper), ascending MPKI.
const std::vector<Benchmark>& parsec_benchmarks();

struct PerfModel {
  double cpi_base = 1.0;
  double mlp = 1.5;          // overlapped misses
  double ipc_for_rate = 1.0; // instructions/cycle when converting MPKI->rate
  // Fraction of L2 misses that actually cross the interposer (the rest are
  // chiplet-local directory hits / core-to-core transfers). Calibrated so
  // the heaviest benchmark (canneal) drives the mesh near — but not past —
  // saturation, matching the dynamic range of the paper's Fig. 8 bars.
  double l2_to_noi_fraction = 0.5;
};

struct WorkloadResult {
  std::string benchmark;
  double injection_rate = 0.0;        // packets/core/cycle offered
  double avg_packet_latency_cycles = 0.0;
  double cpi = 0.0;
};

// Simulates one benchmark's memory traffic over the full system and returns
// the measured latency + modeled CPI.
WorkloadResult run_workload(const ChipletSystem& sys,
                            const core::NetworkPlan& plan,
                            const Benchmark& bench, const PerfModel& model,
                            const sim::SimConfig& cfg);

// Builds the kCustom request/reply traffic (cores -> MCs) for a benchmark.
sim::TrafficConfig workload_traffic(const ChipletSystem& sys,
                                    const Benchmark& bench,
                                    const PerfModel& model);

}  // namespace netsmith::system
