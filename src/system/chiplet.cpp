#include "system/chiplet.hpp"

#include <cassert>
#include <stdexcept>

namespace netsmith::system {

ChipletSystem build_chiplet_system(const topo::DiGraph& noi,
                                   const topo::Layout& noi_layout,
                                   const ChipletConfig& cfg) {
  const int noi_n = noi.num_nodes();
  if (noi_n != noi_layout.n())
    throw std::invalid_argument("chiplet system: layout/topology mismatch");

  const int core_rows = cfg.chiplet_rows * cfg.chiplets_y;
  const int core_cols = cfg.chiplet_cols * cfg.chiplets_x;
  const int cores = core_rows * core_cols;

  ChipletSystem sys;
  sys.noi_n = noi_n;
  sys.num_cores = cores;
  sys.noi_layout = noi_layout;
  sys.graph = topo::DiGraph(noi_n + cores);
  sys.extra_delay = util::Matrix<int>(noi_n + cores, noi_n + cores, 0);

  // NoI links.
  for (const auto& [i, j] : noi.edges()) sys.graph.add_edge(i, j);

  auto core_id = [&](int gr, int gc) { return noi_n + gr * core_cols + gc; };

  // Per-chiplet NoC meshes: nearest-neighbour links that stay inside one
  // chiplet.
  for (int gr = 0; gr < core_rows; ++gr)
    for (int gc = 0; gc < core_cols; ++gc) {
      if (gc + 1 < core_cols && gc / cfg.chiplet_cols == (gc + 1) / cfg.chiplet_cols)
        sys.graph.add_duplex(core_id(gr, gc), core_id(gr, gc + 1));
      if (gr + 1 < core_rows && gr / cfg.chiplet_rows == (gr + 1) / cfg.chiplet_rows)
        sys.graph.add_duplex(core_id(gr, gc), core_id(gr + 1, gc));
    }

  // Core-grid column -> NoI column: edge NoI columns take the leftover
  // narrow strips ("two cores plus two memory controllers"), interior
  // columns take 2-wide strips ("four nearest cores").
  const int interior = noi_layout.cols - 2;
  const int edge_w = (core_cols - 2 * interior) / 2;
  if (edge_w < 1 || core_cols != 2 * interior + 2 * edge_w)
    throw std::invalid_argument("chiplet system: core/NoI column mismatch");
  auto noi_col = [&](int gc) {
    if (gc < edge_w) return 0;
    if (gc >= core_cols - edge_w) return noi_layout.cols - 1;
    return 1 + (gc - edge_w) / 2;
  };
  const int rows_per_noi = core_rows / noi_layout.rows;
  if (rows_per_noi * noi_layout.rows != core_rows)
    throw std::invalid_argument("chiplet system: core/NoI row mismatch");

  // CDC links: each core router attaches to its covering NoI router.
  for (int gr = 0; gr < core_rows; ++gr)
    for (int gc = 0; gc < core_cols; ++gc) {
      const int c = core_id(gr, gc);
      const int r = noi_layout.id(gr / rows_per_noi, noi_col(gc));
      sys.graph.add_duplex(c, r);
      sys.extra_delay(c, r) = cfg.cdc_delay;
      sys.extra_delay(r, c) = cfg.cdc_delay;
      sys.core_routers.push_back(c);
    }

  for (int r = 0; r < noi_layout.rows; ++r) {
    sys.mc_routers.push_back(noi_layout.id(r, 0));
    sys.mc_routers.push_back(noi_layout.id(r, noi_layout.cols - 1));
  }
  return sys;
}

}  // namespace netsmith::system
