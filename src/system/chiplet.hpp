#pragma once
// Full-system substrate (paper SIV, Table IV): 64 cores in 4 chiplets, each
// chiplet with a 4x4 mesh NoC, stacked over a 4x5 NoI whose topology is the
// subject under test. NoC<->NoI boundary links cross clock domains (CDC) and
// carry extra latency. The combined graph has 84 routers, matching the
// paper's "84 router, full-system configuration" MCLB sizing remark.

#include <vector>

#include "topo/graph.hpp"
#include "topo/layout.hpp"
#include "util/matrix.hpp"

namespace netsmith::system {

struct ChipletSystem {
  topo::DiGraph graph;      // NoI routers 0..noi_n-1, then NoC routers
  int noi_n = 0;            // number of interposer routers
  int num_cores = 0;        // NoC routers double as cores (1:1)
  std::vector<int> core_routers;  // global ids of NoC routers
  std::vector<int> mc_routers;    // NoI routers hosting memory controllers
  util::Matrix<int> extra_delay;  // per-edge CDC cycles
  topo::Layout noi_layout;
};

struct ChipletConfig {
  int chiplet_rows = 4, chiplet_cols = 4;  // per-chiplet NoC mesh
  int chiplets_x = 2, chiplets_y = 2;      // chiplet grid over the interposer
  int cdc_delay = 2;                       // Table IV: 2-cycle CDC
};

// Attaches the per-chiplet NoC meshes to the given NoI topology. Every NoC
// router gets a duplex CDC link to the NoI router covering its grid
// position (middle NoI columns cover 2x2 cores; edge columns cover 2x1,
// mirroring "four nearest cores" / "two cores plus two memory controllers").
ChipletSystem build_chiplet_system(const topo::DiGraph& noi,
                                   const topo::Layout& noi_layout,
                                   const ChipletConfig& cfg = {});

}  // namespace netsmith::system
