// Google-benchmark microbenchmarks for the hot kernels: APSP, sparsest-cut
// enumeration, simplex pivoting, MCLB local search, annealer move
// evaluation, and simulator cycle throughput.

#include <benchmark/benchmark.h>

#include "core/netsmith.hpp"
#include "lp/simplex.hpp"
#include "routing/mclb.hpp"
#include "sim/network.hpp"
#include "topo/builders.hpp"
#include "topo/cuts.hpp"
#include "topo/delta_apsp.hpp"
#include "topo/metrics.hpp"

using namespace netsmith;

namespace {

// Word-parallel (bitset frontier) APSP vs. the scalar queue-based kernel,
// head-to-head on the same graphs. {6, 8} is the n = 48 paper scale.
void BM_ApspBfs(benchmark::State& state) {
  const auto lay = topo::Layout{static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)), 2.0};
  util::Rng rng(1);
  const auto g = topo::build_random(lay, topo::LinkClass::kMedium, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::apsp_bfs(g));
  }
  state.SetItemsProcessed(state.iterations() * lay.n());
}
BENCHMARK(BM_ApspBfs)->Args({4, 5})->Args({6, 5})->Args({6, 8})->Args({8, 6});

void BM_ApspBfsScalar(benchmark::State& state) {
  const auto lay = topo::Layout{static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)), 2.0};
  util::Rng rng(1);
  const auto g = topo::build_random(lay, topo::LinkClass::kMedium, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::apsp_bfs_scalar(g));
  }
  state.SetItemsProcessed(state.iterations() * lay.n());
}
BENCHMARK(BM_ApspBfsScalar)->Args({4, 5})->Args({6, 5})->Args({6, 8})->Args({8, 6});

void BM_SparsestCutExact(benchmark::State& state) {
  const auto lay = topo::Layout{4, static_cast<int>(state.range(0)), 2.0};
  util::Rng rng(2);
  const auto g = topo::build_random(lay, topo::LinkClass::kMedium, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::sparsest_cut_exact(g));
  }
}
BENCHMARK(BM_SparsestCutExact)->Arg(4)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_BisectionExact20(benchmark::State& state) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::bisection_bandwidth(g));
  }
}
BENCHMARK(BM_BisectionExact20)->Unit(benchmark::kMillisecond);

void BM_SimplexTransport(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    lp::Model model;
    util::Rng rng(3);
    std::vector<std::vector<int>> v(m, std::vector<int>(m));
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < m; ++j)
        v[i][j] = model.add_continuous(0, lp::kInf, 1.0 + rng.uniform() * 9);
    for (int i = 0; i < m; ++i) {
      std::vector<lp::Term> row;
      for (int j = 0; j < m; ++j) row.push_back({v[i][j], 1.0});
      model.add_constraint(std::move(row), lp::Rel::kLe, 10.0);
    }
    for (int j = 0; j < m; ++j) {
      std::vector<lp::Term> col;
      for (int i = 0; i < m; ++i) col.push_back({v[i][j], 1.0});
      model.add_constraint(std::move(col), lp::Rel::kGe, 5.0);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(lp::solve_lp(model));
  }
}
BENCHMARK(BM_SimplexTransport)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_MclbLocalSearch20(benchmark::State& state) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto paths = routing::enumerate_shortest_paths(g);
  const auto cps = routing::compile_paths(paths);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::mclb_local_search(cps));
  }
}
BENCHMARK(BM_MclbLocalSearch20)->Unit(benchmark::kMillisecond);

void BM_MclbLocalSearchScan20(benchmark::State& state) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto paths = routing::enumerate_shortest_paths(g);
  const auto cps = routing::compile_paths(paths);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::mclb_local_search_scan(cps));
  }
}
BENCHMARK(BM_MclbLocalSearchScan20)->Unit(benchmark::kMillisecond);

void BM_CompilePaths20(benchmark::State& state) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto paths = routing::enumerate_shortest_paths(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::compile_paths(paths));
  }
}
BENCHMARK(BM_CompilePaths20)->Unit(benchmark::kMillisecond);

// Full channel-load move evaluation as the annealer pays it: capped path
// enumeration from a ready APSP, compile, flat MCLB.
void BM_ChannelLoadMoveEval(benchmark::State& state) {
  const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
  const auto dist = topo::apsp_bfs(g);
  for (auto _ : state) {
    const auto ps = routing::enumerate_shortest_paths_from_dist(g, dist, 8);
    const auto cps = routing::compile_paths(ps);
    benchmark::DoNotOptimize(routing::mclb_local_search(cps, {}, 8));
  }
}
BENCHMARK(BM_ChannelLoadMoveEval)->Unit(benchmark::kMillisecond);

void BM_PathEnumeration(benchmark::State& state) {
  const auto lay = topo::Layout{static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)), 2.0};
  util::Rng rng(4);
  const auto g = topo::build_random(lay, topo::LinkClass::kLarge, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::enumerate_shortest_paths(g, 32));
  }
}
BENCHMARK(BM_PathEnumeration)->Args({4, 5})->Args({8, 6})->Unit(benchmark::kMillisecond);

void BM_SimulatorCycles(benchmark::State& state) {
  const auto lay = topo::Layout::noi_4x5();
  const auto plan = core::plan_network(topo::build_folded_torus(lay), lay,
                                       core::RoutingPolicy::kMclb, 6);
  sim::TrafficConfig t;
  t.kind = sim::TrafficKind::kCoherence;
  t.injection_rate = 0.05;
  sim::SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 2000;
  cfg.drain = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(plan, t, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 4500);  // cycles per run
}
BENCHMARK(BM_SimulatorCycles)->Unit(benchmark::kMillisecond);

// One delta-APSP rewire move (remove + re-add, then rollback so successive
// iterations see the same graph): affected-row detection, journaled
// re-sweeps, and the rollback memcpys — the annealer's per-move APSP cost.
void BM_DeltaApspMove(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = static_cast<int>(state.range(1));
  const auto lay = topo::Layout{rows, cols, 2.0};
  util::Rng rng(11);
  auto g = topo::build_random(lay, topo::LinkClass::kMedium, 4, rng);
  topo::DeltaApsp engine(g.num_nodes());
  engine.rebuild(g);
  const auto edges = g.edges();
  std::size_t which = 0;
  for (auto _ : state) {
    const auto [u, v] = edges[which++ % edges.size()];
    topo::DeltaApsp::EdgeChange ch[2] = {{u, v, false}, {v, u, true}};
    const bool rewire = !g.has_edge(v, u);  // else a pure remove
    g.remove_edge(u, v);
    if (rewire) g.add_edge(v, u);
    benchmark::DoNotOptimize(engine.apply(g, ch, rewire ? 2 : 1));
    engine.rollback();
    if (rewire) g.remove_edge(v, u);
    g.add_edge(u, v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeltaApspMove)->Args({8, 6})->Args({16, 16})->Args({32, 32});

// Landmark objective estimate: maintained hop_sum over k sampled rows,
// scaled by n/k — the annealer's large-n move score.
void BM_LandmarkEstimate(benchmark::State& state) {
  const auto lay = topo::Layout{16, 16, 2.0};
  const int n = lay.n();
  const int k = static_cast<int>(state.range(0));
  util::Rng rng(12);
  auto g = topo::build_random(lay, topo::LinkClass::kMedium, 4, rng);
  std::vector<int> sources;
  for (int s = 0; s < k; ++s) sources.push_back(s * (n / k));
  topo::DeltaApsp engine(n, sources);
  engine.rebuild(g);
  const auto edges = g.edges();
  std::size_t which = 0;
  const double scale = static_cast<double>(n) / k;
  for (auto _ : state) {
    const auto [u, v] = edges[which++ % edges.size()];
    g.remove_edge(u, v);
    topo::DeltaApsp::EdgeChange ch[1] = {{u, v, false}};
    engine.apply(g, ch, 1);
    benchmark::DoNotOptimize(static_cast<double>(engine.hop_sum()) * scale);
    engine.rollback();
    g.add_edge(u, v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LandmarkEstimate)->Arg(32)->Arg(64)->Arg(128);

void BM_AnnealMoves(benchmark::State& state) {
  for (auto _ : state) {
    core::SynthesisConfig cfg;
    cfg.layout = topo::Layout::noi_4x5();
    cfg.link_class = topo::LinkClass::kMedium;
    cfg.objective = core::Objective::kLatOp;
    cfg.time_limit_s = 0.1;
    cfg.restarts = 1;
    cfg.seed = 6;
    const auto r = core::synthesize(cfg);
    state.counters["moves_per_s"] = static_cast<double>(r.moves) / 0.1;
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AnnealMoves)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
