// Ablation (paper SIII-C): router-radix scalability. The paper reports the
// (initially surprising) result that increasing router radix *decreases*
// convergence time and yields better solutions; this bench sweeps the radix
// at a fixed budget and reports solution quality and time-to-first-good.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"
#include "util/table.hpp"

using namespace netsmith;

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 6.0;

  std::printf(
      "NetSmith ablation — router radix sweep (LatOp, medium, 20 routers, "
      "%.0fs per run)\n\n",
      budget);

  util::TablePrinter table({"radix", "links", "avg hops", "bound",
                            "gap %", "bis BW", "t to within 5% (s)"});

  for (int radix = 3; radix <= 6; ++radix) {
    core::SynthesisConfig cfg;
    cfg.layout = topo::Layout::noi_4x5();
    cfg.link_class = topo::LinkClass::kMedium;
    cfg.radix = radix;
    cfg.objective = core::Objective::kLatOp;
    cfg.time_limit_s = budget;
    cfg.restarts = 2;
    cfg.seed = 0xAD1 + radix;
    const auto r = core::synthesize(cfg);

    // Time at which the incumbent first came within 5% of its final value.
    double t5 = budget;
    for (const auto& pt : r.trace) {
      if (pt.incumbent <= r.objective_value * 1.05) {
        t5 = pt.seconds;
        break;
      }
    }
    const double gap =
        (r.objective_value - r.bound) / std::max(1e-9, r.objective_value);
    table.add_row({std::to_string(radix),
                   util::TablePrinter::fmt(r.graph.duplex_links(), 0),
                   util::TablePrinter::fmt(r.objective_value, 3),
                   util::TablePrinter::fmt(r.bound, 3),
                   util::TablePrinter::fmt(gap * 100.0, 1),
                   std::to_string(topo::bisection_bandwidth(r.graph)),
                   util::TablePrinter::fmt(t5, 2)});
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape (paper SIII-C): higher radix reaches good solutions\n"
      "faster and lands at lower average hops (more ports = richer, easier\n"
      "search space), at the cost of more links.\n");
  return 0;
}
