// Resilience figure: graceful degradation under adversarial link failures.
//
// Sweeps k in {0, 1, 2, 4, 8} failed duplex links (targeted mode: the k
// most-loaded links go down permanently, route repair on) over the 48-router
// synthesized NoI and the scalable parametric baselines
// (Dragonfly/CMesh/HammingMesh), and reports the saturation throughput
// retained relative to each topology's fault-free (k = 0) arm plus the worst
// delivered fraction across the sweep.
//
// The declarative route: one ExperimentSpec with five fault scenarios; the
// Study runner shares the topology/plan artifacts across all arms, and
// resilience sweeps run with adaptive truncation off, so the emitted numbers
// are byte-reproducible across thread counts and OpenMP widths.

#include <cstdio>
#include <iostream>
#include <map>

#include "api/study.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace netsmith;

int main() {
  std::printf(
      "NetSmith reproduction — resilience under targeted link failures\n"
      "48-router medium class: NS-LatOp vs Dragonfly/CMesh/HammingMesh,\n"
      "k most-loaded duplex links failed permanently, MCLB route repair on.\n\n");

  api::ExperimentSpec spec;
  spec.name = "fig_resilience";
  api::TopologySpec ns;
  ns.source = api::TopologySource::kCatalog;
  ns.catalog_routers = 48;
  ns.name = "NS-LatOp-medium-48";
  api::TopologySpec df, cm, hm;
  df.source = api::TopologySource::kBaseline;
  df.baseline = "dragonfly:routers=48";
  cm.source = api::TopologySource::kBaseline;
  cm.baseline = "cmesh:routers=48";
  hm.source = api::TopologySource::kBaseline;
  hm.baseline = "hammingmesh:routers=48";
  spec.topologies = {ns, df, cm, hm};
  spec.analytic = false;
  spec.max_paths_per_flow = 24;
  spec.traffic = {api::TrafficSpec{"coherence", "coherence"}};
  spec.sweep.points = 6;
  spec.sweep.adaptive = false;  // resilience arms force this anyway

  // k = 0 is the fault-free control (an empty schedule: the simulator takes
  // the untouched hot path); the others fail the top-k loaded duplex links
  // at cycle 0, so every arm measures steady degraded state.
  for (const int k : {0, 1, 2, 4, 8}) {
    fault::FaultScenarioSpec sc;
    sc.name = "k" + std::to_string(k);
    sc.mode = "targeted";
    sc.k = k;
    sc.fail_at = 0;
    sc.repair = true;
    spec.faults.push_back(sc);
  }

  util::TablePrinter table({"topology", "k", "links down", "rerouted",
                            "unroutable", "sat (pkt/node/ns)", "retained",
                            "min delivered"});
  util::WallTimer timer;
  const api::Report report = api::run_experiment(spec);

  // Fault-free saturation per plan row (the k=0 arm) for the retained ratio.
  std::map<int, double> k0_sat;
  for (const auto& r : report.resilience)
    if (r.scenario == "k0") k0_sat[r.plan] = r.saturation_pkt_node_ns;

  for (const auto& r : report.resilience) {
    const auto& t = report.topologies[report.plans[r.plan].topology];
    double min_delivered = 1.0;
    for (const auto& pt : r.points)
      if (pt.delivered_fraction < min_delivered)
        min_delivered = pt.delivered_fraction;
    const double base = k0_sat[r.plan];
    table.add_row(
        {t.name, r.scenario.substr(1), std::to_string(r.links_down / 2),
         std::to_string(r.flows_rerouted), std::to_string(r.flows_unroutable),
         util::TablePrinter::fmt(r.saturation_pkt_node_ns, 4),
         base > 0.0 ? util::TablePrinter::fmt(r.saturation_pkt_node_ns / base,
                                              3)
                    : "-",
         util::TablePrinter::fmt(min_delivered, 4)});
  }
  table.print(std::cout);
  std::printf("[%.1f s of fixed-window sweeps via the Study API]\n",
              timer.seconds());
  std::printf(
      "\nExpected shape: saturation degrades gracefully with k on the\n"
      "path-diverse NS topology (repair absorbs single cuts almost fully),\n"
      "while low-diversity baselines shed proportionally more throughput;\n"
      "delivered fraction stays 1.0 everywhere because failures here are\n"
      "lossless and repaired.\n");
  return 0;
}
