// Ablation (paper SIII-B): symmetric vs asymmetric links. The paper reports
// that forcing symmetric links costs < 3% latency and no bandwidth; this
// bench reruns LatOp synthesis under both settings per class.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"
#include "util/table.hpp"

using namespace netsmith;

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 8.0;

  std::printf(
      "NetSmith ablation — asymmetric vs symmetric links (LatOp, 20 "
      "routers, %.0fs per run)\n\n",
      budget);

  util::TablePrinter table({"class", "links", "avg hops asym", "avg hops sym",
                            "latency cost %", "bis asym", "bis sym"});

  for (const auto cls : {topo::LinkClass::kSmall, topo::LinkClass::kMedium,
                         topo::LinkClass::kLarge}) {
    core::SynthesisConfig cfg;
    cfg.layout = topo::Layout::noi_4x5();
    cfg.link_class = cls;
    cfg.objective = core::Objective::kLatOp;
    cfg.time_limit_s = budget;
    cfg.restarts = 2;
    cfg.seed = 0xA5A5 + static_cast<int>(cls);

    const auto asym = core::synthesize(cfg);
    cfg.symmetric_links = true;
    const auto sym = core::synthesize(cfg);

    const double a = topo::average_hops(asym.graph);
    const double s = topo::average_hops(sym.graph);
    table.add_row({bench::class_name(cls),
                   util::TablePrinter::fmt(asym.graph.duplex_links(), 0),
                   util::TablePrinter::fmt(a, 3), util::TablePrinter::fmt(s, 3),
                   util::TablePrinter::fmt((s - a) / a * 100.0, 1),
                   std::to_string(topo::bisection_bandwidth(asym.graph)),
                   std::to_string(topo::bisection_bandwidth(sym.graph))});
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape (paper SIII-B): the symmetric-link penalty stays\n"
      "small (paper: <3%% latency, no bandwidth loss) — NetSmith is useful\n"
      "even when a design team rules out asymmetric links.\n");
  return 0;
}
