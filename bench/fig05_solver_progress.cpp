// Regenerates paper Fig. 5: solver progress over time. Runs NetSmith's
// anytime LatOp search live for each link-length class and prints the
// objective-bounds-gap trace (incumbent avg hops vs analytic lower bound).
// The paper's observations to reproduce: (a) smaller link classes converge
// faster; (b) even non-converged searches beat the expert topologies.
//
// The trajectory comes from the obs trace recorder: the annealer emits an
// "anneal/incumbent" counter sample on every incumbent update, so the same
// samples that render as a value track in chrome://tracing drive this table.
// Samples from concurrent restarts interleave; a monotone filter keeps the
// cross-restart best-so-far curve, which is what Fig. 5 plots.
//
// Args: [seconds_per_class=12] [include_30=1] [trace_out.json]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

using namespace netsmith;

namespace {

void run(const topo::Layout& lay, topo::LinkClass cls, double budget,
         const char* label) {
  core::SynthesisConfig cfg;
  cfg.layout = lay;
  cfg.link_class = cls;
  cfg.objective = core::Objective::kLatOp;
  cfg.time_limit_s = budget;
  cfg.restarts = 2;
  cfg.seed = 0xF16;

  obs::reset_trace();
  const double t0_us = obs::now_us();
  const auto r = core::synthesize(cfg);

  std::printf("-- %s (%s, %.0fs budget): bound=%.3f avg hops\n", label,
              bench::class_name(cls).c_str(), budget, r.bound);
  util::TablePrinter table({"t (s)", "incumbent avg hops", "gap %"});
  // LatOp minimizes: keep only samples that improve on everything seen so
  // far, regardless of which restart emitted them.
  bool have = false;
  double best = 0.0;
  for (const auto& ev : obs::collect_trace_events()) {
    if (ev.ph != 'C' || ev.name != "anneal/incumbent") continue;
    if (have && ev.value >= best) continue;
    have = true;
    best = ev.value;
    const double avg = ev.value;  // LatOp samples carry avg hops directly
    const double gap =
        avg > 0.0 ? std::abs(avg - r.bound) / avg * 100.0 : 0.0;
    table.add_row({util::TablePrinter::fmt((ev.ts_us - t0_us) * 1e-6, 2),
                   util::TablePrinter::fmt(avg, 3),
                   util::TablePrinter::fmt(gap, 1)});
  }
  table.print(std::cout);
  std::printf("final: avg hops %.3f, gap %.1f%%\n\n", r.objective_value,
              (r.objective_value - r.bound) / r.objective_value * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 12.0;
  const bool include_30 = argc > 2 ? std::atoi(argv[2]) != 0 : true;
  const std::string trace_out = argc > 3 ? argv[3] : "";

  obs::set_trace_enabled(true);

  std::printf(
      "NetSmith reproduction — Fig. 5 (objective-bounds gap vs solver "
      "time, LatOp)\n\n");

  std::printf("== Fig. 5(a): 20 routers (4x5) ==\n");
  for (const auto cls : {topo::LinkClass::kSmall, topo::LinkClass::kMedium,
                         topo::LinkClass::kLarge})
    run(topo::Layout::noi_4x5(), cls, budget, "20-router");

  if (include_30) {
    std::printf("== Fig. 5(b): 30 routers (6x5) — longer to converge ==\n");
    run(topo::Layout::noi_6x5(), topo::LinkClass::kMedium, budget * 2,
        "30-router");
  }

  if (!trace_out.empty()) {
    // Holds the last run's spans and samples (each run resets the buffers).
    obs::write_trace(trace_out);
    std::printf("trace (last run) -> %s\n", trace_out.c_str());
  }

  std::printf(
      "Expected shape: the small class closes its gap fastest; larger\n"
      "classes plateau at a nonzero gap yet still beat expert designs\n"
      "(compare final avg hops against Table II).\n");
  return 0;
}
