// Regenerates paper Fig. 5: solver progress over time. Runs NetSmith's
// anytime LatOp search live for each link-length class and prints the
// objective-bounds-gap trace (incumbent avg hops vs analytic lower bound).
// The paper's observations to reproduce: (a) smaller link classes converge
// faster; (b) even non-converged searches beat the expert topologies.
//
// Args: [seconds_per_class=12] [include_30=1]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "util/table.hpp"

using namespace netsmith;

namespace {

void run(const topo::Layout& lay, topo::LinkClass cls, double budget,
         const char* label) {
  core::SynthesisConfig cfg;
  cfg.layout = lay;
  cfg.link_class = cls;
  cfg.objective = core::Objective::kLatOp;
  cfg.time_limit_s = budget;
  cfg.restarts = 2;
  cfg.seed = 0xF16;

  const auto r = core::synthesize(cfg);

  std::printf("-- %s (%s, %.0fs budget): bound=%.3f avg hops\n", label,
              bench::class_name(cls).c_str(), budget, r.bound);
  util::TablePrinter table({"t (s)", "incumbent avg hops", "gap %"});
  for (const auto& pt : r.trace) {
    table.add_row({util::TablePrinter::fmt(pt.seconds, 2),
                   util::TablePrinter::fmt(pt.incumbent, 3),
                   util::TablePrinter::fmt(pt.gap() * 100.0, 1)});
  }
  table.print(std::cout);
  std::printf("final: avg hops %.3f, gap %.1f%%\n\n", r.objective_value,
              (r.objective_value - r.bound) / r.objective_value * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 12.0;
  const bool include_30 = argc > 2 ? std::atoi(argv[2]) != 0 : true;

  std::printf(
      "NetSmith reproduction — Fig. 5 (objective-bounds gap vs solver "
      "time, LatOp)\n\n");

  std::printf("== Fig. 5(a): 20 routers (4x5) ==\n");
  for (const auto cls : {topo::LinkClass::kSmall, topo::LinkClass::kMedium,
                         topo::LinkClass::kLarge})
    run(topo::Layout::noi_4x5(), cls, budget, "20-router");

  if (include_30) {
    std::printf("== Fig. 5(b): 30 routers (6x5) — longer to converge ==\n");
    run(topo::Layout::noi_6x5(), topo::LinkClass::kMedium, budget * 2,
        "30-router");
  }

  std::printf(
      "Expected shape: the small class closes its gap fastest; larger\n"
      "classes plateau at a nonzero gap yet still beat expert designs\n"
      "(compare final avg hops against Table II).\n");
  return 0;
}
