// Ablation (paper SIV-A): deadlock-free VC allocation for every catalogued
// topology. The paper's claims to reproduce: the DFSSSP-style partitioning
// needs at most 4 VC layers for all 20-router configurations, with Folded
// Torus the outlier needing 4 escape VCs; random back-edge selection with a
// few restarts suffices.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "vc/layers.hpp"
#include "util/table.hpp"

using namespace netsmith;

int main() {
  std::printf(
      "NetSmith ablation — VC layers required for deadlock freedom "
      "(MCLB routing)\n\n");

  util::TablePrinter table(
      {"class", "topology", "VC layers", "acyclic verified", "balanced VCs"});

  for (const auto& t : topologies::catalog(20)) {
    const auto plan = core::plan_network(t.graph, t.layout,
                                         core::RoutingPolicy::kMclb, 6);
    // Re-derive the layer assignment to verify it independently.
    util::Rng rng(7);
    const auto layers = vc::assign_layers(plan.table, t.graph, rng);
    const bool ok = vc::verify_acyclic(layers, plan.table, t.graph);
    const auto map = vc::balance_vcs(layers, plan.table, 6);
    double w_max = 0, w_sum = 0;
    for (double w : map.weight_of_vc) {
      w_max = std::max(w_max, w);
      w_sum += w;
    }
    table.add_row({bench::class_name(t.link_class), t.name,
                   std::to_string(layers.num_layers), ok ? "yes" : "NO",
                   util::TablePrinter::fmt(w_max / (w_sum / 6.0), 2)});
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape (paper SIV-A): <= 4 layers for every 20-router\n"
      "topology; the balanced-VC skew (max/mean weight) stays near 1.\n");
  return 0;
}
