#pragma once
// Shared helpers for the paper-reproduction bench harnesses.

#include <string>
#include <vector>

#include "core/netsmith.hpp"
#include "sim/sweep.hpp"
#include "topologies/registry.hpp"

namespace netsmith::bench {

// Standard simulation window for the figure sweeps: long enough for stable
// latency estimates, short enough that a full figure regenerates in tens of
// seconds.
inline sim::SimConfig default_sim() {
  sim::SimConfig cfg;
  cfg.warmup = 2000;
  cfg.measure = 6000;
  cfg.drain = 24000;
  return cfg;
}

// Routing policy the paper pairs with each topology: MCLB for machine
// topologies (NetSmith always routes with MCLB), NDBT for expert designs.
// The parametric baselines also route with MCLB — NDBT's x-monotonic rule
// assumes the Kite-style grid designs and has no published analogue for
// Dragonfly/CMesh/HammingMesh flattenings.
inline core::RoutingPolicy paper_policy(const topologies::NamedTopology& t) {
  return t.is_netsmith || t.parametric ? core::RoutingPolicy::kMclb
                                       : core::RoutingPolicy::kNdbt;
}

// Simulation window plus the topology's wire retiming (extra pipeline cycles
// on links beyond the clocking class's reach — parametric baselines only).
inline sim::SimConfig sim_for(const topologies::NamedTopology& t) {
  auto cfg = default_sim();
  cfg.extra_edge_delay = t.extra_edge_delay;
  return cfg;
}

// Catalog set + parametric baselines for one router count, in that order.
inline std::vector<topologies::NamedTopology> with_baselines(
    std::vector<topologies::NamedTopology> cat, int routers) {
  for (auto& t : topologies::baseline_catalog(routers))
    cat.push_back(std::move(t));
  return cat;
}

inline std::string class_name(topo::LinkClass c) { return topo::to_string(c); }

}  // namespace netsmith::bench
