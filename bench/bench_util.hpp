#pragma once
// Shared helpers for the paper-reproduction bench harnesses.

#include <string>
#include <vector>

#include "core/netsmith.hpp"
#include "sim/sweep.hpp"
#include "topologies/registry.hpp"

namespace netsmith::bench {

// Standard simulation window for the figure sweeps: long enough for stable
// latency estimates, short enough that a full figure regenerates in tens of
// seconds.
inline sim::SimConfig default_sim() {
  sim::SimConfig cfg;
  cfg.warmup = 2000;
  cfg.measure = 6000;
  cfg.drain = 24000;
  return cfg;
}

// Routing policy the paper pairs with each topology: MCLB for machine
// topologies (NetSmith always routes with MCLB), NDBT for expert designs.
inline core::RoutingPolicy paper_policy(const topologies::NamedTopology& t) {
  return t.is_netsmith ? core::RoutingPolicy::kMclb
                       : core::RoutingPolicy::kNdbt;
}

inline std::string class_name(topo::LinkClass c) { return topo::to_string(c); }

}  // namespace netsmith::bench
