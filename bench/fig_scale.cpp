// Scaling study: synthesis + simulation throughput and quality at
// n = 48 .. 1024 routers. This is the figure behind the delta-APSP /
// landmark-estimation work: one latency-optimized synthesis per grid size
// (move-budgeted, bit-reproducible), planned with a bounded MCLB budget and
// swept under coherence traffic, all through the declarative Study API.
//
// Usage: fig_scale [--smoke] [--n N]
//   --smoke  CI budget: only n = {48, 256}, reduced move/sweep windows
//            (the n = 256 point finishes well under two minutes)
//   --n N    run a single grid size from the table (48|128|256|512|1024)
//
// Synthesis at n >= 256 uses landmark objective estimation (64 sampled
// sources) — incumbents are exactly re-scored, so the reported objective is
// the true average hop count (see DESIGN.md, "Scaling to n = 1024").

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "api/study.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace netsmith;

namespace {

struct Point {
  int n, rows, cols;
  long moves;          // full-run move budget
  int landmarks;       // 0 = full per-move scoring
};

constexpr Point kPoints[] = {{48, 8, 6, 20000, 0},
                             {128, 16, 8, 8000, 0},
                             {256, 16, 16, 6000, 64},
                             {512, 32, 16, 3000, 64},
                             {1024, 32, 32, 2000, 64}};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int only_n = 0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) smoke = true;
    else if (!std::strcmp(argv[i], "--n") && i + 1 < argc)
      only_n = std::atoi(argv[++i]);
    else {
      std::fprintf(stderr, "usage: fig_scale [--smoke] [--n N]\n");
      return 2;
    }
  }

  std::printf(
      "NetSmith scaling study — synthesis + simulation at n = 48 .. 1024\n"
      "Latency-optimized (latop) synthesis per grid size; landmark objective\n"
      "estimation from n = 256 up, exact incumbents throughout.\n\n");

  util::TablePrinter table({"n", "grid", "moves", "lm", "avg hops", "diam",
                            "synth (s)", "moves/s", "lat@0 (ns)",
                            "sat (pkt/node/ns)", "total (s)"});
  util::WallTimer total;
  for (const auto& pt : kPoints) {
    if (only_n != 0 && pt.n != only_n) continue;
    if (only_n == 0 && smoke && pt.n != 48 && pt.n != 256) continue;

    api::ExperimentSpec spec;
    spec.name = "fig_scale_n" + std::to_string(pt.n);
    api::TopologySpec t;
    t.source = api::TopologySource::kSynthesize;
    t.rows = pt.rows;
    t.cols = pt.cols;
    t.objectives = {"latop"};
    t.radix = 4;
    t.time_limit_s = 600.0;  // the move budget terminates first
    t.synth_seed = 9;
    t.restarts = 1;
    t.max_moves = smoke ? std::min(pt.moves, 3000L) : pt.moves;
    t.landmark_sources = pt.landmarks;
    spec.topologies = {t};
    // Bounded routing + sweep windows: the point of this figure is the
    // throughput curve vs n, not saturation-sweep fidelity. The longer
    // routes at n >= 512 need a deeper VC stack for an acyclic layering.
    spec.num_vcs = pt.n >= 512 ? 10 : 6;
    spec.max_paths_per_flow = 4;
    spec.traffic = {api::TrafficSpec{"coherence", "coherence"}};
    spec.sweep.points = smoke ? 3 : 4;
    spec.sweep.warmup = 300;
    spec.sweep.measure = smoke ? 800 : 1500;
    spec.sweep.drain = 3000;

    util::WallTimer point_timer;
    const api::Report report = api::run_experiment(spec);
    const double point_s = point_timer.seconds();

    const auto& row = report.topologies.at(0);
    const double synth_s =
        row.trace.empty() ? 0.0 : row.trace.back().seconds;
    const auto& sw = report.sweeps.at(0);
    table.add_row(
        {std::to_string(pt.n),
         std::to_string(pt.rows) + "x" + std::to_string(pt.cols),
         std::to_string(row.moves), std::to_string(pt.landmarks),
         util::TablePrinter::fmt(row.avg_hops, 3),
         std::to_string(row.diameter), util::TablePrinter::fmt(synth_s, 2),
         util::TablePrinter::fmt(
             synth_s > 0.0 ? static_cast<double>(row.moves) / synth_s : 0.0,
             0),
         util::TablePrinter::fmt(sw.zero_load_latency_ns, 2),
         util::TablePrinter::fmt(sw.saturation_pkt_node_ns, 4),
         util::TablePrinter::fmt(point_s, 1)});
    std::printf("  [n=%d done in %.1f s]\n", pt.n, point_s);
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\n[%.1f s total. Machine-readable scaling numbers (moves/sec, APSP\n"
      "rows/move, sim cycles/sec) live in BENCH_perf.json \"n_scaling\";\n"
      "this figure exercises the same path through the declarative API.]\n",
      total.seconds());
  return 0;
}
