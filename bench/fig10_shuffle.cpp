// Regenerates paper Fig. 10: the shuffle traffic pattern on the 20-router
// NoIs, including the pattern-optimized NS-ShufOpt topologies, which should
// outperform everything else under shuffle.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/objective.hpp"
#include "routing/channel_load.hpp"
#include "sim/sweep.hpp"
#include "topologies/expert.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace netsmith;

int main() {
  std::printf(
      "NetSmith reproduction — Fig. 10 (shuffle traffic, 20-router NoIs)\n\n");
  util::WallTimer timer;

  util::TablePrinter table({"class", "topology", "lat@0 (ns)",
                            "saturation (pkt/node/ns)"});

  auto run = [&](const topologies::NamedTopology& t) {
    const auto plan =
        core::plan_network(t.graph, t.layout, bench::paper_policy(t), 6);
    sim::TrafficConfig traffic;
    traffic.kind = sim::TrafficKind::kShuffle;
    // Shuffle-specific offered-rate ceiling: the uniform channel-load bound
    // is meaningless for a permutation pattern.
    const auto load = routing::analyze_pattern(
        plan.table, core::shuffle_pattern(t.layout.n()));
    const double avg_flits = 5.0;
    const double ceiling =
        load.max_load > 0 ? 1.6 / (load.max_load * avg_flits) : 0.0;
    const auto sweep =
        sim::sweep_to_saturation(plan, traffic, bench::default_sim(),
                                 topo::clock_ghz(t.link_class), 10,
                                 std::min(0.9, ceiling));
    table.add_row({bench::class_name(t.link_class), t.name,
                   util::TablePrinter::fmt(sweep.zero_load_latency_ns, 2),
                   util::TablePrinter::fmt(sweep.saturation_pkt_node_ns, 4)});
  };

  const auto cat = topologies::catalog(20);
  for (const auto& t : cat) run(t);

  // The pattern-optimized topologies (solved against the shuffle matrix).
  for (const auto cls : {topo::LinkClass::kSmall, topo::LinkClass::kMedium,
                         topo::LinkClass::kLarge}) {
    topologies::NamedTopology t;
    t.name = "NS-ShufOpt-" + bench::class_name(cls) + "-20";
    t.layout = topo::Layout::noi_4x5();
    t.link_class = cls;
    t.graph = topologies::frozen(t.name);
    t.machine_generated = t.is_netsmith = true;
    run(t);
  }

  table.print(std::cout);
  std::printf("[%.1f s of adaptive sweeps]\n", timer.seconds());
  std::printf(
      "\nExpected shape (paper Fig. 10): topologies optimized for uniform\n"
      "random vary in shuffle performance; the NS-ShufOpt rows beat every\n"
      "other topology in their class under this pattern.\n");
  return 0;
}
