// Regenerates paper Fig. 1: the latency / saturation-throughput scatter for
// every 20-router topology. Latency is the analytic zero-load estimate
// (average hops at the class clock); throughput is the tighter of the
// cut-based and routed channel-load bounds, in packets/node/ns.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "routing/channel_load.hpp"
#include "topo/metrics.hpp"
#include "util/table.hpp"

using namespace netsmith;

int main() {
  std::printf(
      "NetSmith reproduction — Fig. 1 (analytic latency vs saturation "
      "throughput, 20 routers)\n"
      "Lower latency + higher throughput = bottom-right of the paper's "
      "scatter.\n"
      "Parametric baselines (Dragonfly/CMesh/HammingMesh) ride along after "
      "the catalog rows.\n\n");

  util::TablePrinter table({"class", "topology", "latency (ns)",
                            "cut bound", "routed bound", "sat est (pkt/node/ns)"});

  // Average packet is 5 flits (50/50 1-flit control / 9-flit data).
  constexpr double kAvgFlits = 5.0;

  for (const auto& t : bench::with_baselines(topologies::catalog(20), 20)) {
    const double clock = topo::clock_ghz(t.link_class);
    double hop_cycles = 3.0;  // 2-cycle router + 1-cycle link
    // Wire retiming: links beyond the class reach carry extra pipeline
    // stages; charge the per-edge average to every hop of the estimate.
    if (t.extra_edge_delay.rows() > 0 && t.graph.num_directed_edges() > 0) {
      long extra = 0;
      for (const auto& [i, j] : t.graph.edges())
        extra += t.extra_edge_delay(i, j);
      hop_cycles += static_cast<double>(extra) / t.graph.num_directed_edges();
    }
    const double latency_ns =
        (topo::average_hops(t.graph) * hop_cycles + kAvgFlits) / clock;

    const auto plan = core::plan_network(t.graph, t.layout,
                                         bench::paper_policy(t), 6);
    const double routed = 1.0 / std::max(1e-9, plan.max_channel_load);
    const double cut = routing::cut_bound(t.graph);
    const double sat_pkt_cycle = std::min(routed, cut) / kAvgFlits;

    table.add_row({bench::class_name(t.link_class), t.name,
                   util::TablePrinter::fmt(latency_ns, 2),
                   util::TablePrinter::fmt(cut / kAvgFlits * clock, 3),
                   util::TablePrinter::fmt(routed / kAvgFlits * clock, 3),
                   util::TablePrinter::fmt(sat_pkt_cycle * clock, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: NS-* rows dominate their class (lower latency and\n"
      "higher saturation estimate); Kite-small sits near NS-small.\n");
  return 0;
}
