// Regenerates paper Fig. 1: the latency / saturation-throughput scatter for
// every 20-router topology. Latency is the analytic zero-load estimate
// (average hops at the class clock); throughput is the tighter of the
// cut-based and routed channel-load bounds, in packets/node/ns.
//
// Declarative port: the whole figure is one ExperimentSpec (catalog +
// parametric baselines, analytic metrics only) run through the Study API;
// this file is just the formatter over the resulting Report.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "api/study.hpp"
#include "util/table.hpp"

using namespace netsmith;

int main() {
  std::printf(
      "NetSmith reproduction — Fig. 1 (analytic latency vs saturation "
      "throughput, 20 routers)\n"
      "Lower latency + higher throughput = bottom-right of the paper's "
      "scatter.\n"
      "Parametric baselines (Dragonfly/CMesh/HammingMesh) ride along after "
      "the catalog rows.\n\n");

  api::ExperimentSpec spec;
  spec.name = "fig01_pareto";
  api::TopologySpec cat;
  cat.source = api::TopologySource::kCatalog;
  cat.catalog_routers = 20;
  cat.include_baselines = true;
  spec.topologies = {cat};
  spec.analytic = true;  // no traffic scenarios: bounds only

  const api::Report report = api::run_experiment(spec);

  util::TablePrinter table({"class", "topology", "latency (ns)",
                            "cut bound", "routed bound", "sat est (pkt/node/ns)"});

  // Average packet is 5 flits (50/50 1-flit control / 9-flit data).
  constexpr double kAvgFlits = 5.0;

  for (std::size_t i = 0; i < report.topologies.size(); ++i) {
    const auto& t = report.topologies[i];
    const auto& plan = report.plans[i];  // one seed -> one plan per row
    // Wire retiming: links beyond the class reach carry extra pipeline
    // stages; charge the per-edge average to every hop of the estimate.
    const double hop_cycles = 3.0 + t.avg_extra_edge_delay;
    const double latency_ns =
        (t.avg_hops * hop_cycles + kAvgFlits) / t.clock_ghz;
    const double routed = 1.0 / std::max(1e-9, plan.max_channel_load);
    const double sat_pkt_cycle = std::min(routed, t.cut_bound) / kAvgFlits;

    table.add_row({t.link_class, t.name,
                   util::TablePrinter::fmt(latency_ns, 2),
                   util::TablePrinter::fmt(t.cut_bound / kAvgFlits * t.clock_ghz, 3),
                   util::TablePrinter::fmt(routed / kAvgFlits * t.clock_ghz, 3),
                   util::TablePrinter::fmt(sat_pkt_cycle * t.clock_ghz, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: NS-* rows dominate their class (lower latency and\n"
      "higher saturation estimate); Kite-small sits near NS-small.\n");
  return 0;
}
