// Performance trajectory harness: times the synthesis-loop hot paths
// (annealer move throughput, word-parallel vs scalar APSP, sparsest-cut
// refresh, simulator cycle throughput) and writes BENCH_perf.json so
// successive PRs can track the numbers.
//
// Usage: perf_report [--smoke] [--out PATH] [--min-apsp-speedup X]
//                    [--min-sim-speedup X] [--min-mclb-speedup X]
//                    [--max-obs-overhead-pct X] [--min-delta-apsp-speedup X]
//   --smoke              short budgets (CI-friendly, ~10 s total); the
//                        n_scaling block covers n = {48, 256} instead of the
//                        full {48, 128, 256, 512, 1024} curve
//   --out PATH           output JSON path (default: BENCH_perf.json in cwd)
//   --min-apsp-speedup X exit non-zero if bitset/scalar APSP speedup < X,
//                        so CI fails loudly on kernel regressions
//   --min-sim-speedup X  exit non-zero if the activity-driven simulator is
//                        not at least X times the reference full scan
//   --min-mclb-speedup X exit non-zero if the flat incremental MCLB engine
//                        is not at least X times the scan-based oracle
//   --max-obs-overhead-pct X exit non-zero if running with metrics + tracing
//                        enabled costs more than X% over the disabled
//                        baseline (sim or MCLB arm)
//   --min-delta-apsp-speedup X exit non-zero if the delta-APSP engine's
//                        per-move throughput at n = 256 is not at least X
//                        times the full n-source re-sweep (annealer-style
//                        rewire moves, arms interleaved)
//
// Speedups are measured as in-process ratios (optimized and reference runs
// interleaved in the same process), so they stay meaningful on a noisy
// 1-core CI runner where absolute throughput numbers drift with load.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include <utility>
#include <vector>

#include "core/netsmith.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/compiled.hpp"
#include "routing/mclb.hpp"
#include "sim/network.hpp"
#include "topo/builders.hpp"
#include "topo/cuts.hpp"
#include "topo/delta_apsp.hpp"
#include "topo/metrics.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

using namespace netsmith;

namespace {

// Runs fn repeatedly until budget_s elapsed (at least once); returns
// nanoseconds per call.
template <class Fn>
double time_ns_per_op(double budget_s, Fn&& fn) {
  util::WallTimer timer;
  long iters = 0;
  do {
    fn();
    ++iters;
  } while (timer.seconds() < budget_s);
  return timer.seconds() * 1e9 / static_cast<double>(iters);
}

struct Report {
  bool smoke = false;
  double anneal_moves_per_sec = 0.0;
  double anneal_accept_rate = 0.0;
  double apsp48_bitset_ns = 0.0;
  double apsp48_scalar_ns = 0.0;
  double apsp48_speedup = 0.0;
  double cut_exact20_ms = 0.0;
  double cut_heuristic48_ms = 0.0;
  double sim_cycles_per_sec = 0.0;
  double sim_ref_cycles_per_sec = 0.0;
  double sim_speedup = 0.0;
  double mclb_flat_routes_per_sec = 0.0;
  double mclb_scan_routes_per_sec = 0.0;
  double mclb_speedup = 0.0;
  double mclb_compile_ms = 0.0;
  double obs_sim_overhead_pct = 0.0;
  double obs_mclb_overhead_pct = 0.0;
  // Schema 4: delta-APSP per-move engine vs full re-sweep at n = 256.
  double dapsp_delta_ns = 0.0;
  double dapsp_full_ns = 0.0;
  double dapsp_speedup = 0.0;
  double dapsp_rows_per_move = 0.0;
  // Schema 4: synthesis + simulation throughput vs n.
  struct ScalePoint {
    int n = 0;
    double synth_moves_per_sec = 0.0;
    double apsp_rows_per_move = 0.0;  // delta-engine re-sweeps per move
    int landmark_sources = 0;         // 0 = full per-move scoring
    double sim_cycles_per_sec = 0.0;
  };
  std::vector<ScalePoint> scaling;
};

void write_json(const Report& r, const std::string& path) {
  // Streaming writer with explicit printf formats: the emitted fields stay
  // byte-compatible with the pre-writer (schema 2) handwritten output.
  util::JsonWriter w;
  w.begin_object();
  // v4: adds "delta_apsp" (incremental-APSP move engine vs full re-sweep)
  // and "n_scaling" (synthesis + sim throughput vs n); every pre-v4 field is
  // byte-compatible so the perf trajectory across PRs stays diffable.
  w.field_int("schema", 4);
  w.field_bool("smoke", r.smoke);
  w.begin_object("anneal");
  w.field_fmt("moves_per_sec", "%.1f", r.anneal_moves_per_sec);
  w.field_fmt("accept_rate", "%.4f", r.anneal_accept_rate);
  w.end();
  w.begin_object("apsp_n48");
  w.field_fmt("bitset_ns_per_op", "%.1f", r.apsp48_bitset_ns);
  w.field_fmt("scalar_ns_per_op", "%.1f", r.apsp48_scalar_ns);
  w.field_fmt("speedup", "%.2f", r.apsp48_speedup);
  w.end();
  w.begin_object("cut");
  w.field_fmt("exact_n20_ms", "%.3f", r.cut_exact20_ms);
  w.field_fmt("heuristic_n48_ms", "%.3f", r.cut_heuristic48_ms);
  w.end();
  w.begin_object("sim");
  w.field_fmt("cycles_per_sec", "%.1f", r.sim_cycles_per_sec);
  w.field_fmt("reference_cycles_per_sec", "%.1f", r.sim_ref_cycles_per_sec);
  w.field_fmt("speedup", "%.2f", r.sim_speedup);
  w.end();
  w.begin_object("mclb");
  w.field_fmt("flat_routes_per_sec", "%.1f", r.mclb_flat_routes_per_sec);
  w.field_fmt("scan_routes_per_sec", "%.1f", r.mclb_scan_routes_per_sec);
  w.field_fmt("speedup", "%.2f", r.mclb_speedup);
  w.field_fmt("compile_ms", "%.4f", r.mclb_compile_ms);
  w.end();
  w.begin_object("obs");
  w.field_fmt("sim_overhead_pct", "%.2f", r.obs_sim_overhead_pct);
  w.field_fmt("mclb_overhead_pct", "%.2f", r.obs_mclb_overhead_pct);
  w.end();
  w.begin_object("delta_apsp");
  w.field_int("n", 256);
  w.field_fmt("delta_ns_per_move", "%.1f", r.dapsp_delta_ns);
  w.field_fmt("full_ns_per_move", "%.1f", r.dapsp_full_ns);
  w.field_fmt("speedup", "%.2f", r.dapsp_speedup);
  w.field_fmt("rows_per_move", "%.2f", r.dapsp_rows_per_move);
  w.end();
  w.begin_array("n_scaling");
  for (const auto& p : r.scaling) {
    w.begin_object();
    w.field_int("n", p.n);
    w.field_fmt("synth_moves_per_sec", "%.1f", p.synth_moves_per_sec);
    w.field_fmt("apsp_rows_per_move", "%.2f", p.apsp_rows_per_move);
    w.field_int("landmark_sources", p.landmark_sources);
    w.field_fmt("sim_cycles_per_sec", "%.1f", p.sim_cycles_per_sec);
    w.end();
  }
  w.end();
  w.end();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "perf_report: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::fwrite(w.str().data(), 1, w.str().size(), f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  Report rep;
  std::string out = "BENCH_perf.json";
  double min_apsp_speedup = 0.0;
  double min_sim_speedup = 0.0;
  double min_mclb_speedup = 0.0;
  double max_obs_overhead_pct = 0.0;
  double min_dapsp_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) rep.smoke = true;
    else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) out = argv[++i];
    else if (!std::strcmp(argv[i], "--min-apsp-speedup") && i + 1 < argc)
      min_apsp_speedup = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--min-sim-speedup") && i + 1 < argc)
      min_sim_speedup = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--min-mclb-speedup") && i + 1 < argc)
      min_mclb_speedup = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--max-obs-overhead-pct") && i + 1 < argc)
      max_obs_overhead_pct = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--min-delta-apsp-speedup") && i + 1 < argc)
      min_dapsp_speedup = std::atof(argv[++i]);
    else {
      std::fprintf(stderr,
                   "usage: perf_report [--smoke] [--out PATH] "
                   "[--min-apsp-speedup X] [--min-sim-speedup X] "
                   "[--min-mclb-speedup X] [--max-obs-overhead-pct X] "
                   "[--min-delta-apsp-speedup X]\n");
      return 2;
    }
  }
  const double kernel_budget = rep.smoke ? 0.2 : 1.0;

  // --- APSP at n = 48 (paper scale): bitset vs scalar, same graph. --------
  {
    const topo::Layout lay{6, 8, 2.0};
    util::Rng rng(1);
    const auto g = topo::build_random(lay, topo::LinkClass::kMedium, 4, rng);
    rep.apsp48_bitset_ns = time_ns_per_op(kernel_budget, [&] {
      volatile auto d = topo::apsp_bfs(g).rows();
      (void)d;
    });
    rep.apsp48_scalar_ns = time_ns_per_op(kernel_budget, [&] {
      volatile auto d = topo::apsp_bfs_scalar(g).rows();
      (void)d;
    });
    rep.apsp48_speedup = rep.apsp48_scalar_ns / rep.apsp48_bitset_ns;
  }

  // --- Cut refresh: exact enumeration at n = 20, heuristic at n = 48. -----
  {
    const auto g20 = topo::build_folded_torus(topo::Layout::noi_4x5());
    rep.cut_exact20_ms = time_ns_per_op(kernel_budget, [&] {
      volatile auto bw = topo::sparsest_cut_exact(g20).bandwidth;
      (void)bw;
    }) / 1e6;
    const topo::Layout lay{6, 8, 2.0};
    util::Rng rng(2);
    const auto g48 = topo::build_random(lay, topo::LinkClass::kMedium, 4, rng);
    rep.cut_heuristic48_ms = time_ns_per_op(kernel_budget, [&] {
      util::Rng r(0x5EED);
      volatile auto bw = topo::sparsest_cut_heuristic(g48, r, 8).bandwidth;
      (void)bw;
    }) / 1e6;
  }

  // --- MCLB routing: flat incremental engine vs scan-based oracle. --------
  // Same compiled path set (folded torus at n = 20, full enumeration), runs
  // interleaved so machine-load noise cancels out of the ratio.
  {
    const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
    const auto ps = routing::enumerate_shortest_paths(g);
    rep.mclb_compile_ms = time_ns_per_op(kernel_budget * 0.25, [&] {
      volatile auto e = routing::compile_paths(ps).num_edges;
      (void)e;
    }) / 1e6;
    const auto cps = routing::compile_paths(ps);
    util::WallTimer total;
    double flat_s = 0.0, scan_s = 0.0;
    long flat_routes = 0, scan_routes = 0;
    do {
      {
        util::WallTimer w;
        volatile auto m = routing::mclb_local_search(cps).max_flows_on_link;
        (void)m;
        flat_s += w.seconds();
        ++flat_routes;
      }
      {
        util::WallTimer w;
        volatile auto m =
            routing::mclb_local_search_scan(cps).max_flows_on_link;
        (void)m;
        scan_s += w.seconds();
        ++scan_routes;
      }
    } while (total.seconds() < kernel_budget * 2.0);
    rep.mclb_flat_routes_per_sec = static_cast<double>(flat_routes) / flat_s;
    rep.mclb_scan_routes_per_sec = static_cast<double>(scan_routes) / scan_s;
    rep.mclb_speedup =
        rep.mclb_flat_routes_per_sec / rep.mclb_scan_routes_per_sec;
  }

  // --- Delta-APSP move engine vs full re-sweep at n = 256. ----------------
  // Two arms replay the annealer's real hot loop — its move distribution,
  // radix bound, kLatOp score, and Metropolis acceptance with the default
  // t0/t1 schedule — on identical graph/RNG streams, interleaved so
  // machine-load noise cancels out of the ratio. Replaying the acceptance
  // rule matters as much as the move mix: accepted moves bias the graph
  // toward low-hop, redundancy-rich states where few rows change per edit.
  // The full arm is exactly what the pre-delta HopEvaluator paid per scored
  // move: an n-source word-parallel sum_from sweep.
  {
    const int n = 256;
    const topo::Layout lay{16, 16, 2.0};

    struct RewireArm {
      topo::DiGraph g{0};
      std::vector<std::pair<int, int>> edges;
      const std::vector<std::vector<int>>* cand = nullptr;  // legal links
      util::Rng rng{0xB1D5};
      topo::DeltaApsp::EdgeChange ch[2];
      int nch = 0;

      // One move with the annealer's exact distribution: 15% pure add,
      // 10% pure remove, 75% rewire (remove + add elsewhere), where adds
      // come from the layout/link-class candidate set under the radix-4
      // degree bound. This matters for the measurement: arbitrary
      // long-range or degree-unbounded adds shortcut far more rows than
      // any move the synthesis hot loop can actually make.
      bool try_add(int radix) {
        const int n = g.num_nodes();
        for (int attempt = 0; attempt < 16; ++attempt) {
          const int u = static_cast<int>(rng.uniform_int(0, n - 1));
          if ((*cand)[u].empty()) continue;
          const int v = rng.pick((*cand)[u]);
          if (g.has_edge(u, v)) continue;
          if (g.out_degree(u) >= radix || g.in_degree(v) >= radix) continue;
          g.add_edge(u, v);
          edges.emplace_back(u, v);
          ch[nch++] = {u, v, true};
          return true;
        }
        return false;
      }

      bool mutate() {
        nch = 0;
        const double r = rng.uniform();
        if (r < 0.15) return try_add(4);  // pure add (fills radix slack)
        if (edges.empty()) return false;
        const auto idx = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(edges.size()) - 1));
        const auto [u, v] = edges[idx];
        g.remove_edge(u, v);
        edges[idx] = edges.back();
        edges.pop_back();
        ch[nch++] = {u, v, false};
        if (r < 0.25) return true;  // pure remove
        try_add(4);                 // rewire (a failed re-add stays a remove)
        return true;
      }
      void revert() {
        for (int i = nch; i-- > 0;) {
          if (ch[i].added) {
            g.remove_edge(ch[i].u, ch[i].v);
            edges.pop_back();
          } else {
            g.add_edge(ch[i].u, ch[i].v);
            edges.emplace_back(ch[i].u, ch[i].v);
          }
        }
      }
    };

    util::Rng grng(7);
    std::vector<std::vector<int>> cand(n);
    for (const auto& [i, j] : topo::valid_links(lay, topo::LinkClass::kMedium))
      cand[i].push_back(j);
    RewireArm delta_arm, full_arm;
    delta_arm.g = topo::build_random(lay, topo::LinkClass::kMedium, 4, grng);
    delta_arm.edges = delta_arm.g.edges();
    delta_arm.cand = &cand;
    full_arm.g = delta_arm.g;
    full_arm.edges = delta_arm.edges;
    full_arm.cand = &cand;

    topo::DeltaApsp engine(n);
    engine.rebuild(delta_arm.g);
    topo::BitBfs bfs(n);

    // kLatOp score, exactly as the annealer's search_score computes it: the
    // raw total hop sum (disconnection scored as a huge penalty). Both arms
    // compute it bit-exactly (the engine's hop_sum is proven identical to
    // the full sweep), so their accept decisions — and hence graphs and RNG
    // streams — stay in lockstep.
    const auto score_of = [](long long hops, long miss) {
      return miss > 0 ? 1e15 : static_cast<double>(hops);
    };
    double dscore = score_of(engine.hop_sum(), engine.unreachable());
    // Annealer default schedule (t0 = 8, t1 = 0.02) over a fixed horizon;
    // past it the temperature floors at t1, the annealer's steady state.
    const double t0 = 8.0, t1 = 0.02, horizon = 12000.0;
    const auto temp_at = [t0, t1, horizon](long move) {
      const double frac = std::min(1.0, static_cast<double>(move) / horizon);
      return t0 * std::pow(t1 / t0, frac);
    };

    // Untimed burn-in: run the cooling schedule to its floor so the timed
    // comparison happens on the low-temperature steady state, which is where
    // a move-budgeted annealer run spends nearly all of its moves.
    for (long m = 0; m < static_cast<long>(horizon); ++m) {
      if (!delta_arm.mutate()) continue;
      engine.apply(delta_arm.g, delta_arm.ch, delta_arm.nch);
      const double cand = score_of(engine.hop_sum(), engine.unreachable());
      const double d = cand - dscore;
      if (d <= 0.0 || delta_arm.rng.uniform() < std::exp(-d / temp_at(m))) {
        engine.commit();
        dscore = cand;
      } else {
        engine.rollback();
        delta_arm.revert();
      }
    }
    full_arm.g = delta_arm.g;
    full_arm.edges = delta_arm.edges;
    full_arm.rng = delta_arm.rng;  // identical streams from here on
    double fscore = dscore;
    const std::int64_t burnin_resweeps = engine.resweeps();

    const int batch = 16;
    util::WallTimer total;
    double delta_s = 0.0, full_s = 0.0;
    long delta_moves = 0, full_moves = 0;
    do {
      {
        util::WallTimer w;
        for (int b = 0; b < batch; ++b) {
          if (!delta_arm.mutate()) continue;
          engine.apply(delta_arm.g, delta_arm.ch, delta_arm.nch);
          const double cand = score_of(engine.hop_sum(), engine.unreachable());
          const double d = cand - dscore;
          if (d <= 0.0 || delta_arm.rng.uniform() < std::exp(-d / t1)) {
            engine.commit();
            dscore = cand;
          } else {
            engine.rollback();
            delta_arm.revert();
          }
          ++delta_moves;
        }
        delta_s += w.seconds();
      }
      {
        util::WallTimer w;
        for (int b = 0; b < batch; ++b) {
          if (!full_arm.mutate()) continue;
          long long hops = 0;
          int miss = 0;
          for (int s = 0; s < n; ++s)
            hops += bfs.sum_from(full_arm.g, s, &miss);
          const double cand = score_of(hops, miss);
          const double d = cand - fscore;
          if (d <= 0.0 || full_arm.rng.uniform() < std::exp(-d / t1)) {
            fscore = cand;
          } else {
            full_arm.revert();
          }
          ++full_moves;
        }
        full_s += w.seconds();
      }
    } while (total.seconds() < kernel_budget * 2.0);
    rep.dapsp_delta_ns = delta_s * 1e9 / static_cast<double>(delta_moves);
    rep.dapsp_full_ns = full_s * 1e9 / static_cast<double>(full_moves);
    rep.dapsp_speedup = rep.dapsp_full_ns / rep.dapsp_delta_ns;
    rep.dapsp_rows_per_move =
        static_cast<double>(engine.resweeps() - burnin_resweeps) /
        static_cast<double>(delta_moves);
  }

  // --- Synthesis + simulation throughput vs n (the scaling curve). --------
  // Move-budgeted kLatOp synthesis (landmark estimation from n = 256 up) and
  // a bounded coherence-traffic simulation of the synthesized fabric.
  {
    struct Pt {
      int n, rows, cols;
      long moves;
    };
    const Pt pts[] = {{48, 8, 6, 4000},
                      {128, 16, 8, 3000},
                      {256, 16, 16, 3000},
                      {512, 32, 16, 2000},
                      {1024, 32, 32, 1500}};
    for (const auto& pt : pts) {
      if (rep.smoke && pt.n != 48 && pt.n != 256) continue;
      Report::ScalePoint sp;
      sp.n = pt.n;
      core::SynthesisConfig cfg;
      cfg.layout = topo::Layout{pt.rows, pt.cols, 2.0};
      cfg.link_class = topo::LinkClass::kMedium;
      cfg.objective = core::Objective::kLatOp;
      cfg.time_limit_s = 600.0;  // the move budget terminates first
      cfg.restarts = 1;
      cfg.seed = 9;
      core::AnnealOptions ao;
      ao.threads = 1;
      ao.max_moves = rep.smoke ? std::min(pt.moves, 1500L) : pt.moves;
      ao.landmark_sources = pt.n >= 256 ? 64 : 0;
      sp.landmark_sources = ao.landmark_sources;
      util::WallTimer synth_t;
      const auto r = core::anneal_synthesize(cfg, ao);
      const double synth_s = synth_t.seconds();
      sp.synth_moves_per_sec = static_cast<double>(r.moves) / synth_s;
      sp.apsp_rows_per_move =
          r.moves > 0
              ? static_cast<double>(r.apsp_resweeps) / static_cast<double>(r.moves)
              : 0.0;

      // The longer routes at n >= 512 need a deeper VC stack for an acyclic
      // layering (same bound fig_scale uses).
      const auto plan = core::plan_network(
          r.graph, cfg.layout, core::RoutingPolicy::kMclb,
          /*num_vcs=*/pt.n >= 512 ? 10 : 6, 7, /*max_paths_per_flow=*/4);
      sim::TrafficConfig t;
      t.kind = sim::TrafficKind::kCoherence;
      t.injection_rate = 0.02;
      sim::SimConfig scfg;
      scfg.warmup = 200;
      scfg.measure = rep.smoke ? 600 : 1500;
      scfg.drain = 1000;
      util::WallTimer sim_t;
      const long cycles = sim::simulate(plan, t, scfg).cycles_run;
      sp.sim_cycles_per_sec = static_cast<double>(cycles) / sim_t.seconds();
      rep.scaling.push_back(sp);
      std::printf("  n_scaling n=%-5d synth %.0f moves/s (%.1f rows/move, "
                  "lm=%d) | sim %.2e cyc/s\n",
                  sp.n, sp.synth_moves_per_sec, sp.apsp_rows_per_move,
                  sp.landmark_sources, sp.sim_cycles_per_sec);
    }
  }

  // --- Annealer move throughput (LatOp on the 4x5 NoI). -------------------
  {
    core::SynthesisConfig cfg;
    cfg.layout = topo::Layout::noi_4x5();
    cfg.link_class = topo::LinkClass::kMedium;
    cfg.objective = core::Objective::kLatOp;
    cfg.time_limit_s = rep.smoke ? 0.5 : 4.0;
    cfg.restarts = 2;
    cfg.seed = 6;
    core::AnnealOptions opts;
    opts.threads = 0;  // auto: exercise the parallel restart path
    util::WallTimer timer;
    const auto r = core::anneal_synthesize(cfg, opts);
    const double secs = timer.seconds();
    rep.anneal_moves_per_sec = static_cast<double>(r.moves) / secs;
    rep.anneal_accept_rate =
        r.moves > 0 ? static_cast<double>(r.accepted) / r.moves : 0.0;
  }

  // --- Simulator cycle throughput: activity-driven vs reference scan. -----
  // Low-rate point (the regime that dominates every injection sweep's
  // wall-clock), folded torus, MCLB, coherence. Runs of the two modes are
  // interleaved so machine-load noise cancels out of the ratio.
  {
    const auto lay = topo::Layout::noi_4x5();
    const auto plan = core::plan_network(topo::build_folded_torus(lay), lay,
                                         core::RoutingPolicy::kMclb, 6);
    sim::TrafficConfig t;
    t.kind = sim::TrafficKind::kCoherence;
    t.injection_rate = 0.02;
    sim::SimConfig cfg;
    cfg.warmup = 500;
    cfg.measure = 2000;
    cfg.drain = 2000;
    util::WallTimer total;
    double opt_s = 0.0, ref_s = 0.0;
    long opt_cycles = 0, ref_cycles = 0;
    do {
      {
        sim::SimConfig c = cfg;
        util::WallTimer w;
        opt_cycles += sim::simulate(plan, t, c).cycles_run;
        opt_s += w.seconds();
      }
      {
        sim::SimConfig c = cfg;
        c.reference_mode = true;
        util::WallTimer w;
        ref_cycles += sim::simulate(plan, t, c).cycles_run;
        ref_s += w.seconds();
      }
    } while (total.seconds() < (rep.smoke ? 1.0 : 4.0));
    rep.sim_cycles_per_sec = static_cast<double>(opt_cycles) / opt_s;
    rep.sim_ref_cycles_per_sec = static_cast<double>(ref_cycles) / ref_s;
    rep.sim_speedup = rep.sim_cycles_per_sec / rep.sim_ref_cycles_per_sec;
  }

  // --- Observability overhead: metrics + tracing on vs off. ---------------
  // Same workloads as the speedup blocks (optimized sim run, flat MCLB
  // search), enabled/disabled arms interleaved and gated on the ratio of
  // accumulated totals, so machine-load noise largely cancels. This is the
  // contract check behind CI's --max-obs-overhead-pct: instrumentation must
  // stay in the noise even when it is switched on.
  {
    const auto lay = topo::Layout::noi_4x5();
    const auto plan = core::plan_network(topo::build_folded_torus(lay), lay,
                                         core::RoutingPolicy::kMclb, 6);
    sim::TrafficConfig t;
    t.kind = sim::TrafficKind::kCoherence;
    t.injection_rate = 0.02;
    sim::SimConfig cfg;
    cfg.warmup = 500;
    cfg.measure = 2000;
    cfg.drain = 2000;
    const auto cps = routing::compile_paths(
        routing::enumerate_shortest_paths(topo::build_folded_torus(lay)));

    const auto set_obs = [](bool on) {
      obs::set_metrics_enabled(on);
      obs::set_trace_enabled(on);
    };
    // Each workload gets its own loop so both arms accumulate comparable
    // sample mass (a sim run is ~50x one MCLB search; sharing one loop
    // leaves the MCLB ratio noise-dominated).
    const double arm_budget = rep.smoke ? 0.6 : 2.0;
    // Each pass does identical deterministic work, so the per-arm *minimum*
    // is the noise-free cost estimate — scheduler preemptions and co-tenant
    // spikes only ever inflate a sample, never deflate it. On/off order
    // alternates per pass so monotone drift biases neither arm.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    double sim_on_s = kInf, sim_off_s = kInf;
    {
      util::WallTimer total;
      for (long pass = 0; total.seconds() < arm_budget; ++pass) {
        for (const bool on : {pass % 2 == 0, pass % 2 != 0}) {
          set_obs(on);
          sim::SimConfig c = cfg;
          util::WallTimer w;
          volatile long cyc = sim::simulate(plan, t, c).cycles_run;
          (void)cyc;
          auto& best = on ? sim_on_s : sim_off_s;
          best = std::min(best, w.seconds());
        }
        // Keep the enabled arm at steady state: drop accumulated events and
        // counts outside the timed regions.
        obs::reset_trace();
        obs::reset_metrics();
      }
    }
    double mclb_on_s = kInf, mclb_off_s = kInf;
    {
      util::WallTimer total;
      for (long pass = 0; total.seconds() < arm_budget; ++pass) {
        for (const bool on : {pass % 2 == 0, pass % 2 != 0}) {
          set_obs(on);
          util::WallTimer w;
          for (int k = 0; k < 20; ++k) {
            volatile auto m =
                routing::mclb_local_search(cps).max_flows_on_link;
            (void)m;
          }
          auto& best = on ? mclb_on_s : mclb_off_s;
          best = std::min(best, w.seconds());
        }
        obs::reset_trace();
        obs::reset_metrics();
      }
    }
    set_obs(false);
    rep.obs_sim_overhead_pct = (sim_on_s / sim_off_s - 1.0) * 100.0;
    rep.obs_mclb_overhead_pct = (mclb_on_s / mclb_off_s - 1.0) * 100.0;
  }

  write_json(rep, out);
  std::printf("perf_report%s: anneal %.0f moves/s | apsp48 %.0f ns (scalar "
              "%.0f ns, %.2fx) | dapsp256 %.0f ns/move (full %.0f ns, %.2fx, "
              "%.1f rows/move) | cut20 %.2f ms | mclb %.0f routes/s (scan "
              "%.0f, %.2fx) | sim %.2e cyc/s (ref %.2e, %.2fx) | obs "
              "+%.1f%%/+%.1f%% -> %s\n",
              rep.smoke ? " [smoke]" : "", rep.anneal_moves_per_sec,
              rep.apsp48_bitset_ns, rep.apsp48_scalar_ns, rep.apsp48_speedup,
              rep.dapsp_delta_ns, rep.dapsp_full_ns, rep.dapsp_speedup,
              rep.dapsp_rows_per_move,
              rep.cut_exact20_ms, rep.mclb_flat_routes_per_sec,
              rep.mclb_scan_routes_per_sec, rep.mclb_speedup,
              rep.sim_cycles_per_sec, rep.sim_ref_cycles_per_sec,
              rep.sim_speedup, rep.obs_sim_overhead_pct,
              rep.obs_mclb_overhead_pct, out.c_str());

  if (min_apsp_speedup > 0.0 && rep.apsp48_speedup < min_apsp_speedup) {
    std::fprintf(stderr,
                 "perf_report: APSP bitset speedup %.2fx below required %.2fx\n",
                 rep.apsp48_speedup, min_apsp_speedup);
    return 1;
  }
  if (min_sim_speedup > 0.0 && rep.sim_speedup < min_sim_speedup) {
    std::fprintf(stderr,
                 "perf_report: simulator speedup %.2fx below required %.2fx\n",
                 rep.sim_speedup, min_sim_speedup);
    return 1;
  }
  if (min_mclb_speedup > 0.0 && rep.mclb_speedup < min_mclb_speedup) {
    std::fprintf(stderr,
                 "perf_report: MCLB flat-engine speedup %.2fx below required "
                 "%.2fx\n",
                 rep.mclb_speedup, min_mclb_speedup);
    return 1;
  }
  if (min_dapsp_speedup > 0.0 && rep.dapsp_speedup < min_dapsp_speedup) {
    std::fprintf(stderr,
                 "perf_report: delta-APSP per-move speedup %.2fx at n=256 "
                 "below required %.2fx\n",
                 rep.dapsp_speedup, min_dapsp_speedup);
    return 1;
  }
  if (max_obs_overhead_pct > 0.0 &&
      (rep.obs_sim_overhead_pct > max_obs_overhead_pct ||
       rep.obs_mclb_overhead_pct > max_obs_overhead_pct)) {
    std::fprintf(stderr,
                 "perf_report: observability overhead (sim %.2f%%, mclb "
                 "%.2f%%) exceeds allowed %.2f%%\n",
                 rep.obs_sim_overhead_pct, rep.obs_mclb_overhead_pct,
                 max_obs_overhead_pct);
    return 1;
  }
  return 0;
}
