// Performance trajectory harness: times the synthesis-loop hot paths
// (annealer move throughput, word-parallel vs scalar APSP, sparsest-cut
// refresh, simulator cycle throughput) and writes BENCH_perf.json so
// successive PRs can track the numbers.
//
// Usage: perf_report [--smoke] [--out PATH] [--min-apsp-speedup X]
//                    [--min-sim-speedup X] [--min-mclb-speedup X]
//                    [--max-obs-overhead-pct X]
//   --smoke              short budgets (CI-friendly, ~10 s total)
//   --out PATH           output JSON path (default: BENCH_perf.json in cwd)
//   --min-apsp-speedup X exit non-zero if bitset/scalar APSP speedup < X,
//                        so CI fails loudly on kernel regressions
//   --min-sim-speedup X  exit non-zero if the activity-driven simulator is
//                        not at least X times the reference full scan
//   --min-mclb-speedup X exit non-zero if the flat incremental MCLB engine
//                        is not at least X times the scan-based oracle
//   --max-obs-overhead-pct X exit non-zero if running with metrics + tracing
//                        enabled costs more than X% over the disabled
//                        baseline (sim or MCLB arm)
//
// Speedups are measured as in-process ratios (optimized and reference runs
// interleaved in the same process), so they stay meaningful on a noisy
// 1-core CI runner where absolute throughput numbers drift with load.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "core/netsmith.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/compiled.hpp"
#include "routing/mclb.hpp"
#include "sim/network.hpp"
#include "topo/builders.hpp"
#include "topo/cuts.hpp"
#include "topo/metrics.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

using namespace netsmith;

namespace {

// Runs fn repeatedly until budget_s elapsed (at least once); returns
// nanoseconds per call.
template <class Fn>
double time_ns_per_op(double budget_s, Fn&& fn) {
  util::WallTimer timer;
  long iters = 0;
  do {
    fn();
    ++iters;
  } while (timer.seconds() < budget_s);
  return timer.seconds() * 1e9 / static_cast<double>(iters);
}

struct Report {
  bool smoke = false;
  double anneal_moves_per_sec = 0.0;
  double anneal_accept_rate = 0.0;
  double apsp48_bitset_ns = 0.0;
  double apsp48_scalar_ns = 0.0;
  double apsp48_speedup = 0.0;
  double cut_exact20_ms = 0.0;
  double cut_heuristic48_ms = 0.0;
  double sim_cycles_per_sec = 0.0;
  double sim_ref_cycles_per_sec = 0.0;
  double sim_speedup = 0.0;
  double mclb_flat_routes_per_sec = 0.0;
  double mclb_scan_routes_per_sec = 0.0;
  double mclb_speedup = 0.0;
  double mclb_compile_ms = 0.0;
  double obs_sim_overhead_pct = 0.0;
  double obs_mclb_overhead_pct = 0.0;
};

void write_json(const Report& r, const std::string& path) {
  // Streaming writer with explicit printf formats: the emitted fields stay
  // byte-compatible with the pre-writer (schema 2) handwritten output.
  util::JsonWriter w;
  w.begin_object();
  w.field_int("schema", 3);  // v3: adds the "obs" instrumentation-overhead block
  w.field_bool("smoke", r.smoke);
  w.begin_object("anneal");
  w.field_fmt("moves_per_sec", "%.1f", r.anneal_moves_per_sec);
  w.field_fmt("accept_rate", "%.4f", r.anneal_accept_rate);
  w.end();
  w.begin_object("apsp_n48");
  w.field_fmt("bitset_ns_per_op", "%.1f", r.apsp48_bitset_ns);
  w.field_fmt("scalar_ns_per_op", "%.1f", r.apsp48_scalar_ns);
  w.field_fmt("speedup", "%.2f", r.apsp48_speedup);
  w.end();
  w.begin_object("cut");
  w.field_fmt("exact_n20_ms", "%.3f", r.cut_exact20_ms);
  w.field_fmt("heuristic_n48_ms", "%.3f", r.cut_heuristic48_ms);
  w.end();
  w.begin_object("sim");
  w.field_fmt("cycles_per_sec", "%.1f", r.sim_cycles_per_sec);
  w.field_fmt("reference_cycles_per_sec", "%.1f", r.sim_ref_cycles_per_sec);
  w.field_fmt("speedup", "%.2f", r.sim_speedup);
  w.end();
  w.begin_object("mclb");
  w.field_fmt("flat_routes_per_sec", "%.1f", r.mclb_flat_routes_per_sec);
  w.field_fmt("scan_routes_per_sec", "%.1f", r.mclb_scan_routes_per_sec);
  w.field_fmt("speedup", "%.2f", r.mclb_speedup);
  w.field_fmt("compile_ms", "%.4f", r.mclb_compile_ms);
  w.end();
  w.begin_object("obs");
  w.field_fmt("sim_overhead_pct", "%.2f", r.obs_sim_overhead_pct);
  w.field_fmt("mclb_overhead_pct", "%.2f", r.obs_mclb_overhead_pct);
  w.end();
  w.end();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "perf_report: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::fwrite(w.str().data(), 1, w.str().size(), f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  Report rep;
  std::string out = "BENCH_perf.json";
  double min_apsp_speedup = 0.0;
  double min_sim_speedup = 0.0;
  double min_mclb_speedup = 0.0;
  double max_obs_overhead_pct = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) rep.smoke = true;
    else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) out = argv[++i];
    else if (!std::strcmp(argv[i], "--min-apsp-speedup") && i + 1 < argc)
      min_apsp_speedup = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--min-sim-speedup") && i + 1 < argc)
      min_sim_speedup = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--min-mclb-speedup") && i + 1 < argc)
      min_mclb_speedup = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--max-obs-overhead-pct") && i + 1 < argc)
      max_obs_overhead_pct = std::atof(argv[++i]);
    else {
      std::fprintf(stderr,
                   "usage: perf_report [--smoke] [--out PATH] "
                   "[--min-apsp-speedup X] [--min-sim-speedup X] "
                   "[--min-mclb-speedup X] [--max-obs-overhead-pct X]\n");
      return 2;
    }
  }
  const double kernel_budget = rep.smoke ? 0.2 : 1.0;

  // --- APSP at n = 48 (paper scale): bitset vs scalar, same graph. --------
  {
    const topo::Layout lay{6, 8, 2.0};
    util::Rng rng(1);
    const auto g = topo::build_random(lay, topo::LinkClass::kMedium, 4, rng);
    rep.apsp48_bitset_ns = time_ns_per_op(kernel_budget, [&] {
      volatile auto d = topo::apsp_bfs(g).rows();
      (void)d;
    });
    rep.apsp48_scalar_ns = time_ns_per_op(kernel_budget, [&] {
      volatile auto d = topo::apsp_bfs_scalar(g).rows();
      (void)d;
    });
    rep.apsp48_speedup = rep.apsp48_scalar_ns / rep.apsp48_bitset_ns;
  }

  // --- Cut refresh: exact enumeration at n = 20, heuristic at n = 48. -----
  {
    const auto g20 = topo::build_folded_torus(topo::Layout::noi_4x5());
    rep.cut_exact20_ms = time_ns_per_op(kernel_budget, [&] {
      volatile auto bw = topo::sparsest_cut_exact(g20).bandwidth;
      (void)bw;
    }) / 1e6;
    const topo::Layout lay{6, 8, 2.0};
    util::Rng rng(2);
    const auto g48 = topo::build_random(lay, topo::LinkClass::kMedium, 4, rng);
    rep.cut_heuristic48_ms = time_ns_per_op(kernel_budget, [&] {
      util::Rng r(0x5EED);
      volatile auto bw = topo::sparsest_cut_heuristic(g48, r, 8).bandwidth;
      (void)bw;
    }) / 1e6;
  }

  // --- MCLB routing: flat incremental engine vs scan-based oracle. --------
  // Same compiled path set (folded torus at n = 20, full enumeration), runs
  // interleaved so machine-load noise cancels out of the ratio.
  {
    const auto g = topo::build_folded_torus(topo::Layout::noi_4x5());
    const auto ps = routing::enumerate_shortest_paths(g);
    rep.mclb_compile_ms = time_ns_per_op(kernel_budget * 0.25, [&] {
      volatile auto e = routing::compile_paths(ps).num_edges;
      (void)e;
    }) / 1e6;
    const auto cps = routing::compile_paths(ps);
    util::WallTimer total;
    double flat_s = 0.0, scan_s = 0.0;
    long flat_routes = 0, scan_routes = 0;
    do {
      {
        util::WallTimer w;
        volatile auto m = routing::mclb_local_search(cps).max_flows_on_link;
        (void)m;
        flat_s += w.seconds();
        ++flat_routes;
      }
      {
        util::WallTimer w;
        volatile auto m =
            routing::mclb_local_search_scan(cps).max_flows_on_link;
        (void)m;
        scan_s += w.seconds();
        ++scan_routes;
      }
    } while (total.seconds() < kernel_budget * 2.0);
    rep.mclb_flat_routes_per_sec = static_cast<double>(flat_routes) / flat_s;
    rep.mclb_scan_routes_per_sec = static_cast<double>(scan_routes) / scan_s;
    rep.mclb_speedup =
        rep.mclb_flat_routes_per_sec / rep.mclb_scan_routes_per_sec;
  }

  // --- Annealer move throughput (LatOp on the 4x5 NoI). -------------------
  {
    core::SynthesisConfig cfg;
    cfg.layout = topo::Layout::noi_4x5();
    cfg.link_class = topo::LinkClass::kMedium;
    cfg.objective = core::Objective::kLatOp;
    cfg.time_limit_s = rep.smoke ? 0.5 : 4.0;
    cfg.restarts = 2;
    cfg.seed = 6;
    core::AnnealOptions opts;
    opts.threads = 0;  // auto: exercise the parallel restart path
    util::WallTimer timer;
    const auto r = core::anneal_synthesize(cfg, opts);
    const double secs = timer.seconds();
    rep.anneal_moves_per_sec = static_cast<double>(r.moves) / secs;
    rep.anneal_accept_rate =
        r.moves > 0 ? static_cast<double>(r.accepted) / r.moves : 0.0;
  }

  // --- Simulator cycle throughput: activity-driven vs reference scan. -----
  // Low-rate point (the regime that dominates every injection sweep's
  // wall-clock), folded torus, MCLB, coherence. Runs of the two modes are
  // interleaved so machine-load noise cancels out of the ratio.
  {
    const auto lay = topo::Layout::noi_4x5();
    const auto plan = core::plan_network(topo::build_folded_torus(lay), lay,
                                         core::RoutingPolicy::kMclb, 6);
    sim::TrafficConfig t;
    t.kind = sim::TrafficKind::kCoherence;
    t.injection_rate = 0.02;
    sim::SimConfig cfg;
    cfg.warmup = 500;
    cfg.measure = 2000;
    cfg.drain = 2000;
    util::WallTimer total;
    double opt_s = 0.0, ref_s = 0.0;
    long opt_cycles = 0, ref_cycles = 0;
    do {
      {
        sim::SimConfig c = cfg;
        util::WallTimer w;
        opt_cycles += sim::simulate(plan, t, c).cycles_run;
        opt_s += w.seconds();
      }
      {
        sim::SimConfig c = cfg;
        c.reference_mode = true;
        util::WallTimer w;
        ref_cycles += sim::simulate(plan, t, c).cycles_run;
        ref_s += w.seconds();
      }
    } while (total.seconds() < (rep.smoke ? 1.0 : 4.0));
    rep.sim_cycles_per_sec = static_cast<double>(opt_cycles) / opt_s;
    rep.sim_ref_cycles_per_sec = static_cast<double>(ref_cycles) / ref_s;
    rep.sim_speedup = rep.sim_cycles_per_sec / rep.sim_ref_cycles_per_sec;
  }

  // --- Observability overhead: metrics + tracing on vs off. ---------------
  // Same workloads as the speedup blocks (optimized sim run, flat MCLB
  // search), enabled/disabled arms interleaved and gated on the ratio of
  // accumulated totals, so machine-load noise largely cancels. This is the
  // contract check behind CI's --max-obs-overhead-pct: instrumentation must
  // stay in the noise even when it is switched on.
  {
    const auto lay = topo::Layout::noi_4x5();
    const auto plan = core::plan_network(topo::build_folded_torus(lay), lay,
                                         core::RoutingPolicy::kMclb, 6);
    sim::TrafficConfig t;
    t.kind = sim::TrafficKind::kCoherence;
    t.injection_rate = 0.02;
    sim::SimConfig cfg;
    cfg.warmup = 500;
    cfg.measure = 2000;
    cfg.drain = 2000;
    const auto cps = routing::compile_paths(
        routing::enumerate_shortest_paths(topo::build_folded_torus(lay)));

    const auto set_obs = [](bool on) {
      obs::set_metrics_enabled(on);
      obs::set_trace_enabled(on);
    };
    // Each workload gets its own loop so both arms accumulate comparable
    // sample mass (a sim run is ~50x one MCLB search; sharing one loop
    // leaves the MCLB ratio noise-dominated).
    const double arm_budget = rep.smoke ? 0.6 : 2.0;
    // Each pass does identical deterministic work, so the per-arm *minimum*
    // is the noise-free cost estimate — scheduler preemptions and co-tenant
    // spikes only ever inflate a sample, never deflate it. On/off order
    // alternates per pass so monotone drift biases neither arm.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    double sim_on_s = kInf, sim_off_s = kInf;
    {
      util::WallTimer total;
      for (long pass = 0; total.seconds() < arm_budget; ++pass) {
        for (const bool on : {pass % 2 == 0, pass % 2 != 0}) {
          set_obs(on);
          sim::SimConfig c = cfg;
          util::WallTimer w;
          volatile long cyc = sim::simulate(plan, t, c).cycles_run;
          (void)cyc;
          auto& best = on ? sim_on_s : sim_off_s;
          best = std::min(best, w.seconds());
        }
        // Keep the enabled arm at steady state: drop accumulated events and
        // counts outside the timed regions.
        obs::reset_trace();
        obs::reset_metrics();
      }
    }
    double mclb_on_s = kInf, mclb_off_s = kInf;
    {
      util::WallTimer total;
      for (long pass = 0; total.seconds() < arm_budget; ++pass) {
        for (const bool on : {pass % 2 == 0, pass % 2 != 0}) {
          set_obs(on);
          util::WallTimer w;
          for (int k = 0; k < 20; ++k) {
            volatile auto m =
                routing::mclb_local_search(cps).max_flows_on_link;
            (void)m;
          }
          auto& best = on ? mclb_on_s : mclb_off_s;
          best = std::min(best, w.seconds());
        }
        obs::reset_trace();
        obs::reset_metrics();
      }
    }
    set_obs(false);
    rep.obs_sim_overhead_pct = (sim_on_s / sim_off_s - 1.0) * 100.0;
    rep.obs_mclb_overhead_pct = (mclb_on_s / mclb_off_s - 1.0) * 100.0;
  }

  write_json(rep, out);
  std::printf("perf_report%s: anneal %.0f moves/s | apsp48 %.0f ns (scalar "
              "%.0f ns, %.2fx) | cut20 %.2f ms | mclb %.0f routes/s (scan "
              "%.0f, %.2fx) | sim %.2e cyc/s (ref %.2e, %.2fx) | obs "
              "+%.1f%%/+%.1f%% -> %s\n",
              rep.smoke ? " [smoke]" : "", rep.anneal_moves_per_sec,
              rep.apsp48_bitset_ns, rep.apsp48_scalar_ns, rep.apsp48_speedup,
              rep.cut_exact20_ms, rep.mclb_flat_routes_per_sec,
              rep.mclb_scan_routes_per_sec, rep.mclb_speedup,
              rep.sim_cycles_per_sec, rep.sim_ref_cycles_per_sec,
              rep.sim_speedup, rep.obs_sim_overhead_pct,
              rep.obs_mclb_overhead_pct, out.c_str());

  if (min_apsp_speedup > 0.0 && rep.apsp48_speedup < min_apsp_speedup) {
    std::fprintf(stderr,
                 "perf_report: APSP bitset speedup %.2fx below required %.2fx\n",
                 rep.apsp48_speedup, min_apsp_speedup);
    return 1;
  }
  if (min_sim_speedup > 0.0 && rep.sim_speedup < min_sim_speedup) {
    std::fprintf(stderr,
                 "perf_report: simulator speedup %.2fx below required %.2fx\n",
                 rep.sim_speedup, min_sim_speedup);
    return 1;
  }
  if (min_mclb_speedup > 0.0 && rep.mclb_speedup < min_mclb_speedup) {
    std::fprintf(stderr,
                 "perf_report: MCLB flat-engine speedup %.2fx below required "
                 "%.2fx\n",
                 rep.mclb_speedup, min_mclb_speedup);
    return 1;
  }
  if (max_obs_overhead_pct > 0.0 &&
      (rep.obs_sim_overhead_pct > max_obs_overhead_pct ||
       rep.obs_mclb_overhead_pct > max_obs_overhead_pct)) {
    std::fprintf(stderr,
                 "perf_report: observability overhead (sim %.2f%%, mclb "
                 "%.2f%%) exceeds allowed %.2f%%\n",
                 rep.obs_sim_overhead_pct, rep.obs_mclb_overhead_pct,
                 max_obs_overhead_pct);
    return 1;
  }
  return 0;
}
