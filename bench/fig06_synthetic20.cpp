// Regenerates paper Fig. 6: synthetic-traffic latency/throughput curves for
// the 20-router (4x5) NoIs — (a) coherence traffic (uniform random, 50/50
// control/data) and (b) memory traffic (request/reply to the MC columns).
// Latency in ns and throughput in packets/node/ns at each class's clock.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace netsmith;

namespace {

void run_kind(sim::TrafficKind kind, const char* title) {
  std::printf("== Fig. 6%s ==\n", title);
  util::WallTimer timer;
  util::TablePrinter table({"class", "topology", "lat@0 (ns)",
                            "saturation (pkt/node/ns)"});
  const auto cat = topologies::catalog(20);
  for (const auto& t : cat) {
    const auto plan =
        core::plan_network(t.graph, t.layout, bench::paper_policy(t), 6);
    sim::TrafficConfig traffic;
    traffic.kind = kind;
    if (kind == sim::TrafficKind::kMemory)
      traffic.mc_nodes = sim::mc_nodes(t.layout);
    const double clock = topo::clock_ghz(t.link_class);
    const auto sweep = sim::sweep_to_saturation(plan, traffic,
                                                bench::default_sim(), clock, 10);
    table.add_row({bench::class_name(t.link_class), t.name,
                   util::TablePrinter::fmt(sweep.zero_load_latency_ns, 2),
                   util::TablePrinter::fmt(sweep.saturation_pkt_node_ns, 4)});
    // Emit the full curve for plotting.
    std::printf("curve %-20s", t.name.c_str());
    for (const auto& pt : sweep.points)
      std::printf(" (%.4f,%.1f)", pt.accepted_pkt_node_ns, pt.latency_ns);
    std::printf("\n");
  }
  table.print(std::cout);
  std::printf("[%.1f s of adaptive sweeps]\n\n", timer.seconds());
}

}  // namespace

int main() {
  std::printf(
      "NetSmith reproduction — Fig. 6 (synthetic traffic, 20-router NoIs)\n"
      "Each curve point: (accepted pkt/node/ns, avg latency ns).\n\n");
  run_kind(sim::TrafficKind::kCoherence, "(a): coherence traffic");
  run_kind(sim::TrafficKind::kMemory, "(b): memory traffic");
  std::printf(
      "Expected shape: NS-* saturate last within each class; LPBT variants\n"
      "saturate first; Kite is the best expert design. Memory traffic\n"
      "saturates everyone earlier (MC hot-spots), with small topologies\n"
      "helped by their faster clock.\n");
  return 0;
}
